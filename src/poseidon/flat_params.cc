#include "src/poseidon/flat_params.h"

#include <algorithm>

#include "src/common/logging.h"

namespace poseidon {

FlatParamView::FlatParamView(std::vector<ParamBlock> blocks) : blocks_(std::move(blocks)) {
  starts_.reserve(blocks_.size());
  for (const ParamBlock& block : blocks_) {
    CHECK_NOTNULL(block.value);
    CHECK_NOTNULL(block.grad);
    CHECK(block.value->SameShape(*block.grad));
    starts_.push_back(total_);
    total_ += block.value->size();
  }
}

template <typename Fn>
void FlatParamView::ForRange(int64_t offset, int64_t len, Fn&& fn) const {
  CHECK_GE(offset, 0);
  CHECK_LE(offset + len, total_);
  int64_t remaining = len;
  int64_t cursor = offset;
  int64_t out_pos = 0;
  for (size_t b = 0; b < blocks_.size() && remaining > 0; ++b) {
    const int64_t block_start = starts_[b];
    const int64_t block_size = blocks_[b].value->size();
    if (cursor >= block_start + block_size) {
      continue;
    }
    const int64_t intra = cursor - block_start;
    const int64_t take = std::min(remaining, block_size - intra);
    fn(b, intra, out_pos, take);
    cursor += take;
    out_pos += take;
    remaining -= take;
  }
  CHECK_EQ(remaining, 0);
}

void FlatParamView::GatherGradSlice(int64_t offset, std::vector<float>* out) const {
  GatherGradSlice(offset, out->data(), static_cast<int64_t>(out->size()));
}

void FlatParamView::GatherGradSlice(int64_t offset, float* out, int64_t len) const {
  ForRange(offset, len, [&](size_t b, int64_t intra, int64_t out_pos, int64_t take) {
    const float* src = blocks_[b].grad->data() + intra;
    std::copy(src, src + take, out + out_pos);
  });
}

void FlatParamView::GatherValueSlice(int64_t offset, std::vector<float>* out) const {
  GatherValueSlice(offset, out->data(), static_cast<int64_t>(out->size()));
}

void FlatParamView::GatherValueSlice(int64_t offset, float* out, int64_t len) const {
  ForRange(offset, len, [&](size_t b, int64_t intra, int64_t out_pos, int64_t take) {
    const float* src = blocks_[b].value->data() + intra;
    std::copy(src, src + take, out + out_pos);
  });
}

void FlatParamView::ScatterValueSlice(int64_t offset, const std::vector<float>& data) {
  ScatterValueSlice(offset, data.data(), static_cast<int64_t>(data.size()));
}

void FlatParamView::ScatterValueSlice(int64_t offset, const float* data, int64_t len) {
  ForRange(offset, len, [&](size_t b, int64_t intra, int64_t out_pos, int64_t take) {
    float* dst = blocks_[b].value->data() + intra;
    std::copy(data + out_pos, data + out_pos + take, dst);
  });
}

std::vector<float> FlatParamView::GatherValues() const {
  std::vector<float> out(static_cast<size_t>(total_));
  GatherValueSlice(0, &out);
  return out;
}

std::vector<float> FlatParamView::GatherGrads() const {
  std::vector<float> out(static_cast<size_t>(total_));
  GatherGradSlice(0, &out);
  return out;
}

void FlatParamView::ScatterValues(const std::vector<float>& data) {
  CHECK_EQ(static_cast<int64_t>(data.size()), total_);
  ScatterValueSlice(0, data);
}

}  // namespace poseidon

// End-to-end tests of the collective synchronization path in the threaded
// runtime: a conv+FC network trained under ring/tree allreduce must keep all
// replicas bitwise identical (the collective guarantees a rank-independent
// association order), actually learn, be deterministic across trainer
// lifecycles, and stay statistically equivalent to the dense-PS trajectory
// (the same averaged gradient up to float reassociation).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/builders.h"
#include "src/poseidon/trainer.h"

namespace poseidon {
namespace {

DatasetConfig SmallData() {
  DatasetConfig data;
  data.num_classes = 4;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 64;
  data.noise_stddev = 0.3f;
  data.seed = 515;
  return data;
}

NetworkFactory ConvFactory() {
  return [] {
    Rng rng(99);
    // Conv layers exercise the collective path for indecomposable gradients;
    // the FC head rides the same schemes.
    return BuildCifarQuick(/*channels=*/1, /*image_hw=*/8, /*classes=*/4, rng);
  };
}

std::vector<float> AllParams(Network& net) {
  std::vector<float> out;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      out.insert(out.end(), p.value->data(), p.value->data() + p.value->size());
    }
  }
  return out;
}

std::vector<float> TrainOnce(FcSyncPolicy policy, int workers, int iterations,
                             double* first_loss = nullptr, double* last_loss = nullptr) {
  SyntheticDataset dataset(SmallData());
  TrainerOptions options;
  options.num_workers = workers;
  options.num_servers = workers;
  options.batch_per_worker = 4;
  options.sgd = {.learning_rate = 0.05f, .momentum = 0.9f};
  options.fc_policy = policy;
  options.syncer_threads = 2;
  PoseidonTrainer trainer(ConvFactory(), options);
  const auto stats = trainer.Train(dataset, iterations);
  if (first_loss != nullptr) {
    *first_loss = stats.front().mean_loss;
  }
  if (last_loss != nullptr) {
    *last_loss = stats.back().mean_loss;
  }
  // Replicas must be bitwise identical under BSP.
  const std::vector<float> w0 = AllParams(trainer.worker_net(0));
  for (int w = 1; w < workers; ++w) {
    EXPECT_EQ(w0, AllParams(trainer.worker_net(w))) << "replica " << w << " diverged";
  }
  return w0;
}

class CollectiveRuntimeTest
    : public ::testing::TestWithParam<std::pair<FcSyncPolicy, int>> {};

TEST_P(CollectiveRuntimeTest, LearnsWithIdenticalReplicasDeterministically) {
  const auto [policy, workers] = GetParam();
  double first = 0.0;
  double last = 0.0;
  const std::vector<float> run1 = TrainOnce(policy, workers, /*iterations=*/12, &first, &last);
  EXPECT_LT(last, first) << "no learning";
  const std::vector<float> run2 = TrainOnce(policy, workers, /*iterations=*/12);
  EXPECT_EQ(run1, run2) << "not deterministic across trainer lifecycles";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CollectiveRuntimeTest,
    ::testing::Values(std::make_pair(FcSyncPolicy::kRingAllreduce, 2),
                      std::make_pair(FcSyncPolicy::kRingAllreduce, 4),
                      std::make_pair(FcSyncPolicy::kRingAllreduce, 5),
                      std::make_pair(FcSyncPolicy::kTreeAllreduce, 2),
                      std::make_pair(FcSyncPolicy::kTreeAllreduce, 4),
                      std::make_pair(FcSyncPolicy::kTreeAllreduce, 7),
                      std::make_pair(FcSyncPolicy::kHybridCollective, 4)));

TEST(CollectiveRuntimeTest, TrajectoryMatchesDensePsUpToReassociation) {
  // Ring/tree average the same per-worker gradients as the PS, only in a
  // different association order, so after a few iterations the parameter
  // vectors must agree to float-accumulation tolerance.
  const int iters = 10;
  const std::vector<float> dense = TrainOnce(FcSyncPolicy::kDense, 4, iters);
  for (FcSyncPolicy policy : {FcSyncPolicy::kRingAllreduce, FcSyncPolicy::kTreeAllreduce}) {
    const std::vector<float> collective = TrainOnce(policy, 4, iters);
    ASSERT_EQ(dense.size(), collective.size());
    double max_abs = 0.0;
    for (size_t i = 0; i < dense.size(); ++i) {
      max_abs = std::max(max_abs, static_cast<double>(std::abs(dense[i] - collective[i])));
    }
    EXPECT_LT(max_abs, 2e-4);
  }
}

TEST(CollectiveRuntimeTest, SingleWorkerFallsBackToPs) {
  // ResolveSchemes degrades a world-of-one collective to the PS, so training
  // still applies updates.
  double first = 0.0;
  double last = 0.0;
  TrainOnce(FcSyncPolicy::kRingAllreduce, /*workers=*/1, /*iterations=*/12, &first, &last);
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace poseidon

// NEON (AArch64) backend: the same fixed 8-wide blocks as AVX2, built from
// two 4-lane halves. Never uses vmla/fmla (those fuse the multiply-add and
// round once); every multiply-add is an explicit vmul + vadd so results are
// bit-identical to the scalar reference. This TU is compiled with
// -ffp-contract=off so its scalar tail expressions cannot contract either
// (AArch64 scalar code otherwise fuses to fmadd freely).
#include "src/simd/vec.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

#include "src/simd/bitpack.h"
#include "src/simd/quant.h"

namespace poseidon {
namespace simd {
namespace {

void NeonReduceAdd(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), vld1q_f32(src + i)));
    vst1q_f32(dst + i + 4, vaddq_f32(vld1q_f32(dst + i + 4), vld1q_f32(src + i + 4)));
  }
  ScalarKernels()->reduce_add(dst + i, src + i, n - i);
}

void NeonScale(float* dst, float alpha, int64_t n) {
  const float32x4_t a = vdupq_n_f32(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_f32(dst + i, vmulq_f32(vld1q_f32(dst + i), a));
    vst1q_f32(dst + i + 4, vmulq_f32(vld1q_f32(dst + i + 4), a));
  }
  ScalarKernels()->scale(dst + i, alpha, n - i);
}

void NeonAxpy(float* y, float alpha, const float* x, int64_t n) {
  const float32x4_t a = vdupq_n_f32(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vmulq_f32(a, vld1q_f32(x + i))));
    vst1q_f32(y + i + 4,
              vaddq_f32(vld1q_f32(y + i + 4), vmulq_f32(a, vld1q_f32(x + i + 4))));
  }
  ScalarKernels()->axpy(y + i, alpha, x + i, n - i);
}

void NeonSgdStep(float* v, float* value, const float* grad, float lr, float mu,
                 float wd, int64_t n) {
  const float32x4_t vmu = vdupq_n_f32(mu);
  const float32x4_t vwd = vdupq_n_f32(wd);
  const float32x4_t vlr = vdupq_n_f32(lr);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int64_t h = i; h < i + 8; h += 4) {
      const float32x4_t vel = vld1q_f32(v + h);
      const float32x4_t val = vld1q_f32(value + h);
      const float32x4_t g = vld1q_f32(grad + h);
      // (mu * v + g) + wd * value — the scalar expression's association.
      const float32x4_t nv =
          vaddq_f32(vaddq_f32(vmulq_f32(vmu, vel), g), vmulq_f32(vwd, val));
      vst1q_f32(v + h, nv);
      vst1q_f32(value + h, vsubq_f32(val, vmulq_f32(vlr, nv)));
    }
  }
  ScalarKernels()->sgd_step(v + i, value + i, grad + i, lr, mu, wd, n - i);
}

// Movemask emulation: 4 mask lanes (all-ones/all-zeros) -> 4 bits, using
// per-lane bit weights and a horizontal add.
inline uint32_t MoveMask4(uint32x4_t mask, uint32x4_t lane_bit) {
  return vaddvq_u32(vandq_u32(mask, lane_bit));
}

void NeonOneBitEncodeStats(const float* grad, const float* residual, int64_t rows,
                           int64_t cols, uint32_t* bits, double* pos_sum,
                           double* neg_sum, int32_t* pos_count, int32_t* neg_count) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const uint32x4_t bit_lo = {1u, 2u, 4u, 8u};
  const uint32x4_t bit_hi = {16u, 32u, 64u, 128u};
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      for (int half = 0; half < 2; ++half) {
        const int64_t f = flat + 4 * half;
        const int64_t col = c + 4 * half;
        const float32x4_t q =
            vaddq_f32(vld1q_f32(grad + f), vld1q_f32(residual + f));
        // q >= 0 (NaN classifies negative, like the scalar compare).
        const uint32x4_t mask = vcgeq_f32(q, zero);
        const uint32_t m4 = MoveMask4(mask, half == 0 ? bit_lo : bit_hi) >>
                            (half == 0 ? 0 : 4);
        internal::OrBits8(bits, f, m4);

        // Widen mask lanes to 64-bit all-ones via sign extension, then mask
        // the double contributions to +-q or +0.0.
        const int32x4_t maski = vreinterpretq_s32_u32(mask);
        const int64x2_t m64_lo = vmovl_s32(vget_low_s32(maski));
        const int64x2_t m64_hi = vmovl_s32(vget_high_s32(maski));
        const float64x2_t q_lo = vcvt_f64_f32(vget_low_f32(q));
        const float64x2_t q_hi = vcvt_high_f64_f32(q);
        const int64x2_t qb_lo = vreinterpretq_s64_f64(q_lo);
        const int64x2_t qb_hi = vreinterpretq_s64_f64(q_hi);
        const float64x2_t pos_lo = vreinterpretq_f64_s64(vandq_s64(qb_lo, m64_lo));
        const float64x2_t pos_hi = vreinterpretq_f64_s64(vandq_s64(qb_hi, m64_hi));
        const float64x2_t neg_lo = vreinterpretq_f64_s64(vbicq_s64(qb_lo, m64_lo));
        const float64x2_t neg_hi = vreinterpretq_f64_s64(vbicq_s64(qb_hi, m64_hi));
        vst1q_f64(pos_sum + col, vaddq_f64(vld1q_f64(pos_sum + col), pos_lo));
        vst1q_f64(pos_sum + col + 2, vaddq_f64(vld1q_f64(pos_sum + col + 2), pos_hi));
        vst1q_f64(neg_sum + col, vaddq_f64(vld1q_f64(neg_sum + col), neg_lo));
        vst1q_f64(neg_sum + col + 2, vaddq_f64(vld1q_f64(neg_sum + col + 2), neg_hi));

        // Counts: a set mask lane is -1; subtracting increments.
        const int32x4_t pc = vld1q_s32(pos_count + col);
        const int32x4_t nc = vld1q_s32(neg_count + col);
        vst1q_s32(pos_count + col, vsubq_s32(pc, maski));
        vst1q_s32(neg_count + col,
                  vsubq_s32(nc, vreinterpretq_s32_u32(vmvnq_u32(mask))));
      }
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = q >= 0.0f;
      if (positive) {
        bits[flat >> 5] |= 1u << (flat & 31);
      }
      pos_sum[c] += positive ? static_cast<double>(q) : 0.0;
      neg_sum[c] += positive ? 0.0 : static_cast<double>(q);
      pos_count[c] += positive ? 1 : 0;
      neg_count[c] += positive ? 0 : 1;
    }
  }
}

// Expands bits 0..3 (half 0) or 4..7 (half 1) of m8 into a 4-lane mask.
inline uint32x4_t Mask8ToLanes4(uint32_t m8, int half) {
  const uint32x4_t lane_bit =
      half == 0 ? uint32x4_t{1u, 2u, 4u, 8u} : uint32x4_t{16u, 32u, 64u, 128u};
  return vtstq_u32(vdupq_n_u32(m8), lane_bit);
}

void NeonOneBitResidualUpdate(const float* grad, int64_t rows, int64_t cols,
                              const uint32_t* bits, const float* pos_level,
                              const float* neg_level, float* residual) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const uint32_t m8 = internal::LoadBits8(bits, flat);
      for (int half = 0; half < 2; ++half) {
        const int64_t f = flat + 4 * half;
        const int64_t col = c + 4 * half;
        const float32x4_t q =
            vaddq_f32(vld1q_f32(grad + f), vld1q_f32(residual + f));
        const float32x4_t level =
            vbslq_f32(Mask8ToLanes4(m8, half), vld1q_f32(pos_level + col),
                      vld1q_f32(neg_level + col));
        vst1q_f32(residual + f, vsubq_f32(q, level));
      }
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      residual[flat] = q - (positive ? pos_level[c] : neg_level[c]);
    }
  }
}

void NeonOneBitDecode(const uint32_t* bits, const float* pos_level,
                      const float* neg_level, int64_t rows, int64_t cols,
                      float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const uint32_t m8 = internal::LoadBits8(bits, flat);
      for (int half = 0; half < 2; ++half) {
        const int64_t f = flat + 4 * half;
        const int64_t col = c + 4 * half;
        vst1q_f32(out + f, vbslq_f32(Mask8ToLanes4(m8, half),
                                     vld1q_f32(pos_level + col),
                                     vld1q_f32(neg_level + col)));
      }
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      out[flat] = positive ? pos_level[c] : neg_level[c];
    }
  }
}

// 4 lanes of the integer hash in src/simd/quant.h (xor/shift/mul-low only).
inline uint32x4_t MixBits4(uint32x4_t idx, uint32x4_t seed) {
  uint32x4_t h = veorq_u32(idx, seed);
  h = veorq_u32(h, vshrq_n_u32(h, 16));
  h = vmulq_u32(h, vdupq_n_u32(0x21f0aaadu));
  h = veorq_u32(h, vshrq_n_u32(h, 15));
  h = vmulq_u32(h, vdupq_n_u32(0x735a2d97u));
  h = veorq_u32(h, vshrq_n_u32(h, 15));
  return h;
}

// 4 lanes of internal::Fp16Pack, narrowed to the low 16 bits.
inline uint16x4_t Fp16Pack4(uint32x4_t u, uint32x4_t rnd13) {
  const uint32x4_t max_half = vdupq_n_u32(0x7BFF);
  const uint32x4_t sign = vandq_u32(vshrq_n_u32(u, 16), vdupq_n_u32(0x8000));
  const uint32x4_t absu = vandq_u32(u, vdupq_n_u32(0x7FFFFFFF));
  uint32x4_t h = vshrq_n_u32(
      vsubq_u32(vaddq_u32(absu, rnd13), vdupq_n_u32(0x38000000)), 13);
  h = vminq_u32(h, max_half);
  const uint32x4_t big = vcgeq_u32(absu, vdupq_n_u32(0x47800000));
  h = vbslq_u32(big, max_half, h);
  const uint32x4_t small = vcltq_u32(absu, vdupq_n_u32(0x38800000));
  h = vbicq_u32(h, small);
  return vmovn_u32(vorrq_u32(sign, h));
}

void NeonFp16EncodeSr(const float* src, int64_t n, uint32_t seed,
                      int64_t base_index, uint16_t* out) {
  const uint32x4_t vseed = vdupq_n_u32(seed);
  const uint32x4_t step = vdupq_n_u32(4);
  const uint32x4_t ramp = {0u, 1u, 2u, 3u};
  uint32x4_t idx = vaddq_u32(vdupq_n_u32(static_cast<uint32_t>(base_index)), ramp);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int half = 0; half < 2; ++half) {
      const int64_t f = i + 4 * half;
      const uint32x4_t rnd13 = vshrq_n_u32(MixBits4(idx, vseed), 19);
      const uint32x4_t u = vreinterpretq_u32_f32(vld1q_f32(src + f));
      vst1_u16(out + f, Fp16Pack4(u, rnd13));
      idx = vaddq_u32(idx, step);
    }
  }
  ScalarKernels()->fp16_encode_sr(src + i, n - i, seed, base_index + i, out + i);
}

void NeonFp16EncodeRn(const float* src, int64_t n, uint16_t* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int half = 0; half < 2; ++half) {
      const int64_t f = i + 4 * half;
      const uint32x4_t u = vreinterpretq_u32_f32(vld1q_f32(src + f));
      const uint32x4_t absu = vandq_u32(u, vdupq_n_u32(0x7FFFFFFF));
      const uint32x4_t rnd = vaddq_u32(
          vdupq_n_u32(0xFFF),
          vandq_u32(vshrq_n_u32(absu, 13), vdupq_n_u32(1)));
      vst1_u16(out + f, Fp16Pack4(u, rnd));
    }
  }
  ScalarKernels()->fp16_encode_rn(src + i, n - i, out + i);
}

void NeonFp16Decode(const uint16_t* src, int64_t n, float* out) {
  const uint32x4_t exp_mask = vdupq_n_u32(0x0F800000);
  const uint32x4_t bias = vdupq_n_u32(112u << 23);
  const float32x4_t magic = vreinterpretq_f32_u32(vdupq_n_u32(0x38800000));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int half = 0; half < 2; ++half) {
      const int64_t f = i + 4 * half;
      const uint32x4_t h = vmovl_u16(vld1_u16(src + f));
      const uint32x4_t sign =
          vshlq_n_u32(vandq_u32(h, vdupq_n_u32(0x8000)), 16);
      uint32x4_t o = vshlq_n_u32(vandq_u32(h, vdupq_n_u32(0x7FFF)), 13);
      const uint32x4_t exp = vandq_u32(o, exp_mask);
      o = vaddq_u32(o, bias);
      const uint32x4_t is_inf = vceqq_u32(exp, exp_mask);
      o = vbslq_u32(is_inf, vaddq_u32(o, bias), o);
      // Subnormal renormalization via one exact float subtract (same binade).
      const uint32x4_t is_sub = vceqq_u32(exp, vdupq_n_u32(0));
      const uint32x4_t sub_bits = vreinterpretq_u32_f32(vsubq_f32(
          vreinterpretq_f32_u32(vaddq_u32(o, vdupq_n_u32(1u << 23))), magic));
      o = vbslq_u32(is_sub, sub_bits, o);
      vst1q_f32(out + f, vreinterpretq_f32_u32(vorrq_u32(sign, o)));
    }
  }
  ScalarKernels()->fp16_decode(src + i, n - i, out + i);
}

void NeonInt8EncodeSr(const float* src, int64_t n, float inv_scale, uint32_t seed,
                      int64_t base_index, int8_t* out) {
  const float32x4_t vinv = vdupq_n_f32(inv_scale);
  const float32x4_t vhi = vdupq_n_f32(127.0f);
  const float32x4_t vlo = vdupq_n_f32(-127.0f);
  const float32x4_t v2p24 = vdupq_n_f32(0x1p-24f);
  const uint32x4_t one_bits = vreinterpretq_u32_f32(vdupq_n_f32(1.0f));
  const uint32x4_t vseed = vdupq_n_u32(seed);
  const uint32x4_t step = vdupq_n_u32(4);
  const uint32x4_t ramp = {0u, 1u, 2u, 3u};
  uint32x4_t idx = vaddq_u32(vdupq_n_u32(static_cast<uint32_t>(base_index)), ramp);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    int32x4_t qi[2];
    for (int half = 0; half < 2; ++half) {
      const int64_t f = i + 4 * half;
      const float32x4_t t = vmulq_f32(vld1q_f32(src + f), vinv);
      const float32x4_t fl = vrndmq_f32(t);  // floor
      const float32x4_t frac = vsubq_f32(t, fl);
      const uint32x4_t h = MixBits4(idx, vseed);
      // (h >> 8) < 2^24, so the unsigned int -> float conversion is exact.
      const float32x4_t r =
          vmulq_f32(vcvtq_f32_u32(vshrq_n_u32(h, 8)), v2p24);
      const float32x4_t inc = vreinterpretq_f32_u32(
          vandq_u32(vcgtq_f32(frac, r), one_bits));
      float32x4_t q = vaddq_f32(fl, inc);
      q = vbslq_f32(vcgtq_f32(q, vhi), vhi, q);
      q = vbslq_f32(vcltq_f32(q, vlo), vlo, q);
      q = vreinterpretq_f32_u32(
          vandq_u32(vreinterpretq_u32_f32(q), vceqq_f32(q, q)));  // NaN squash
      qi[half] = vcvtq_s32_f32(q);  // truncates toward zero, like the cast
      idx = vaddq_u32(idx, step);
    }
    const int16x8_t p16 = vcombine_s16(vmovn_s32(qi[0]), vmovn_s32(qi[1]));
    vst1_s8(out + i, vmovn_s16(p16));
  }
  ScalarKernels()->int8_encode_sr(src + i, n - i, inv_scale, seed, base_index + i,
                                  out + i);
}

void NeonInt8Decode(const int8_t* src, int64_t n, float scale, float* out) {
  const float32x4_t vscale = vdupq_n_f32(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t w = vmovl_s8(vld1_s8(src + i));
    const int32x4_t lo = vmovl_s16(vget_low_s16(w));
    const int32x4_t hi = vmovl_s16(vget_high_s16(w));
    vst1q_f32(out + i, vmulq_f32(vcvtq_f32_s32(lo), vscale));
    vst1q_f32(out + i + 4, vmulq_f32(vcvtq_f32_s32(hi), vscale));
  }
  ScalarKernels()->int8_decode(src + i, n - i, scale, out + i);
}

float NeonMaxAbs(const float* src, int64_t n) {
  float32x4_t vm = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int half = 0; half < 2; ++half) {
      const float32x4_t a = vabsq_f32(vld1q_f32(src + i + 4 * half));
      vm = vbslq_f32(vcgtq_f32(a, vm), a, vm);
    }
  }
  // max over non-negative magnitudes (NaNs ignored) is associative, so the
  // lane fold equals the scalar sequential max.
  float lanes[4];
  vst1q_f32(lanes, vm);
  float m = 0.0f;
  for (int l = 0; l < 4; ++l) {
    m = lanes[l] > m ? lanes[l] : m;
  }
  for (; i < n; ++i) {
    const float a = std::fabs(src[i]);
    m = a > m ? a : m;
  }
  return m;
}

int64_t NeonCountAbsGreater(const float* src, int64_t n, float threshold) {
  const float32x4_t thr = vdupq_n_f32(threshold);
  uint32x4_t cnt = vdupq_n_u32(0);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int half = 0; half < 2; ++half) {
      const float32x4_t a = vabsq_f32(vld1q_f32(src + i + 4 * half));
      cnt = vsubq_u32(cnt, vcgtq_f32(a, thr));
    }
  }
  uint32_t lanes[4];
  vst1q_u32(lanes, cnt);
  int64_t count = 0;
  for (int l = 0; l < 4; ++l) {
    count += lanes[l];
  }
  for (; i < n; ++i) {
    count += std::fabs(src[i]) > threshold ? 1 : 0;
  }
  return count;
}

const Kernels kNeonKernels = {
    Level::kNeon,           NeonReduceAdd,
    NeonScale,              NeonAxpy,
    NeonSgdStep,            NeonOneBitEncodeStats,
    NeonOneBitResidualUpdate, NeonOneBitDecode,
    NeonFp16EncodeSr,       NeonFp16EncodeRn,
    NeonFp16Decode,         NeonInt8EncodeSr,
    NeonInt8Decode,         NeonMaxAbs,
    NeonCountAbsGreater,
};

}  // namespace

const Kernels* NeonKernels() { return &kNeonKernels; }

}  // namespace simd
}  // namespace poseidon

#else  // !__aarch64__

namespace poseidon {
namespace simd {
const Kernels* NeonKernels() { return nullptr; }
}  // namespace simd
}  // namespace poseidon

#endif

#include "src/planner/comm_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/transport/message.h"

namespace poseidon {
namespace {

// ------------------------------------------------------------------ digest --

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Mix(uint64_t h, uint64_t v) { return SplitMix64(h ^ v); }

uint64_t MixString(uint64_t h, const std::string& s) {
  uint64_t f = 1469598103934665603ULL;
  for (char c : s) {
    f ^= static_cast<unsigned char>(c);
    f *= 1099511628211ULL;
  }
  return Mix(Mix(h, f), s.size());
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(h, bits);
}

// The cache-key digest runs on every PlanCache hit, so it is the whole cost
// of a warm lookup (the planner_cache_speedup series gates it at >= 100x
// under the cold search). A serial mix chain over every field is latency-
// bound (~5 cycles per field back to back), so the request is first
// serialized — plain stores, fully pipelined — into a reused thread-local
// word buffer, then hashed with four independent rotate-multiply lanes whose
// chains overlap; the dependent path shrinks to ~n/4 mixes. The encoding is
// injective (strings are length-prefixed, fields appear in a fixed schema
// order), and SplitMix64 finalizes each lane so low-entropy patterns still
// avalanche across the 128-bit key.
struct KeyWords {
  uint64_t* base;
  uint64_t* p;

  /// `max_words` must bound the number of Put() calls; writes are unchecked
  /// cursor stores so the serialization loop stays branch-free.
  explicit KeyWords(size_t max_words) : base(Buffer(max_words)), p(base) {}

  static uint64_t* Buffer(size_t max_words) {
    static thread_local std::vector<uint64_t> buffer;
    if (buffer.size() < max_words) {
      buffer.resize(max_words);
    }
    return buffer.data();
  }

  void Put(uint64_t v) { *p++ = v; }

  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Put(bits);
  }

  /// The final 1..8 bytes of a string, folded into one word with fixed-size
  /// (hence inlined) loads — a variable-length memcpy here is an out-of-line
  /// call that dominates the whole digest. The 4..7 case reads two
  /// overlapping 32-bit words; together with the length prefix the encoding
  /// stays injective (the overlap is decodable once the length is known).
  static uint64_t TailWord(const char* p, size_t n) {
    if (n >= 4) {
      uint32_t head = 0;
      uint32_t tail = 0;
      std::memcpy(&head, p, 4);
      std::memcpy(&tail, p + n - 4, 4);
      return static_cast<uint64_t>(head) | (static_cast<uint64_t>(tail) << 32);
    }
    const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
    return static_cast<uint64_t>(u[0]) | (static_cast<uint64_t>(u[n >> 1]) << 8) |
           (static_cast<uint64_t>(u[n - 1]) << 16);
  }

  void PutString(const std::string& s) {
    const size_t n = s.size();
    Put(n);
    if (n == 0) {
      return;
    }
    const char* c = s.data();
    if (n <= 8) {
      Put(TailWord(c, n));
      return;
    }
    size_t i = 0;
    uint64_t w = 0;
    for (; i + 8 <= n; i += 8) {
      std::memcpy(&w, c + i, 8);
      Put(w);
    }
    if (i < n) {
      Put(TailWord(c + i, n - i));
    }
  }

  static uint64_t FastMix(uint64_t h, uint64_t v) {
    h = (h ^ v) * 0x9e3779b97f4a7c15ULL;
    return (h << 26) | (h >> 38);
  }

  PlanKey Finish(uint64_t seed_a, uint64_t seed_b) const {
    uint64_t h0 = SplitMix64(seed_a);
    uint64_t h1 = SplitMix64(seed_a + 0x632be59bd9b4e019ULL);
    uint64_t h2 = SplitMix64(seed_b);
    uint64_t h3 = SplitMix64(seed_b + 0x632be59bd9b4e019ULL);
    const uint64_t* w = base;
    const size_t n = static_cast<size_t>(p - base);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      h0 = FastMix(h0, w[i]);
      h1 = FastMix(h1, w[i + 1]);
      h2 = FastMix(h2, w[i + 2]);
      h3 = FastMix(h3, w[i + 3]);
    }
    for (; i < n; ++i) {
      h0 = FastMix(h0, w[i]);
    }
    h0 = FastMix(h0, n);
    // Both halves fold in all four lanes, through different paths.
    PlanKey key;
    key.hi = SplitMix64(SplitMix64(SplitMix64(h0 ^ h1) ^ h2) ^ h3);
    key.lo = SplitMix64(SplitMix64(SplitMix64(h3 + h1) ^ h2) + h0);
    return key;
  }
};

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ------------------------------------------------------------- cost kernel --

/// A layer is stateless when it owns no parameters; nothing moves for it
/// (mirrors the coordinator's total_floats == 0 rule).
bool Stateless(const LayerSpec& layer) { return layer.params <= 0; }

CommCostQuery QueryFor(const LayerSpec& layer, const PlanRequest& r, int shards) {
  CommCostQuery q;
  q.m = layer.type == LayerType::kFC ? layer.fc_m : layer.params;
  q.n = layer.type == LayerType::kFC ? layer.fc_n : 1;
  q.batch_k = r.batch_per_worker;
  q.num_workers = r.num_workers;
  q.num_servers = r.num_servers;
  q.num_shards = shards;
  return q;
}

/// Approximate 1-bit PS row (per-worker wire bytes): 1 bit per element each
/// direction. Reachable only under the pinned kOneBit policy — the quantized
/// codecs superseded 1-bit, so it never enters the auto menu and the level
/// words are not worth modeling.
double OneBitWireBytes(const CommCostQuery& q) {
  return PsShardedColocatedFloats(q) / 2.0 * (0.125 + 0.125);
}

/// Rough per-worker wire-message count for the framing/batching model (not
/// part of the gated payload series; see docs/PLANNER.md).
double MessagesFor(PlannedScheme scheme, const LayerSpec& layer, const PlanRequest& r,
                   int shards) {
  switch (scheme) {
    case PlannedScheme::kNone:
      return 0.0;
    case PlannedScheme::kPS: {
      const int64_t pairs =
          std::max<int64_t>(1, (layer.params * 4 + r.kv_pair_bytes - 1) / r.kv_pair_bytes);
      const int64_t endpoints = static_cast<int64_t>(r.num_servers) * shards;
      return 2.0 * static_cast<double>(std::min(endpoints, pairs));
    }
    case PlannedScheme::kOneBit:
      return 2.0;  // whole-layer push + pull to/from the owner shard
    case PlannedScheme::kSFB:
      return static_cast<double>(std::max(0, r.num_workers - 1));
    case PlannedScheme::kRing:
      return 2.0 * std::max(0, r.num_workers - 1);
    case PlannedScheme::kTree:
      return 3.0;  // send up + one message per child of an internal node
  }
  return 0.0;
}

struct CandidateCost {
  PlannedScheme scheme = PlannedScheme::kPS;
  GradCompression codec = GradCompression::kNone;
  double payload_bytes = 0.0;
  double msgs = 0.0;
  double encode_floats = 0.0;  // elements run through a codec pass per iter
  double cost = 0.0;           // objective value (bytes or seconds)
};

struct CostBasis {
  bool time = false;
  double wire_bytes_per_s = 0.0;  // nic * transport_efficiency
  double latency_s = 0.0;
  double cpu_flops = 1.0;
};

CostBasis BasisFor(const PlanRequest& r) {
  CostBasis basis;
  basis.time = r.joint && r.nic_gbps > 0.0;
  if (basis.time) {
    basis.wire_bytes_per_s = GbpsToBytesPerSec(r.nic_gbps) * r.transport_efficiency;
    basis.latency_s = r.latency_s;
    basis.cpu_flops = r.cpu_flops;
  }
  return basis;
}

double Objective(const CandidateCost& c, const CostBasis& basis) {
  if (!basis.time) {
    return c.payload_bytes;
  }
  // One encode pass before the push plus the matching decode downstream,
  // charged like the simulator's quant_cpu_s row.
  return c.payload_bytes / basis.wire_bytes_per_s + c.msgs * basis.latency_s +
         2.0 * c.encode_floats / basis.cpu_flops;
}

CandidateCost EvalCandidate(PlannedScheme scheme, GradCompression codec,
                            const LayerSpec& layer, const PlanRequest& r, int shards,
                            const CostBasis& basis) {
  CandidateCost c;
  c.scheme = scheme;
  c.codec = codec;
  const CommCostQuery q = QueryFor(layer, r, shards);
  if (scheme == PlannedScheme::kOneBit) {
    c.payload_bytes = OneBitWireBytes(q);
    c.encode_floats = static_cast<double>(layer.params);
  } else {
    CommScheme comm = CommScheme::kPS;
    switch (scheme) {
      case PlannedScheme::kPS:
        comm = CommScheme::kPS;
        break;
      case PlannedScheme::kSFB:
        comm = CommScheme::kSFB;
        break;
      case PlannedScheme::kRing:
        comm = CommScheme::kRing;
        break;
      case PlannedScheme::kTree:
        comm = CommScheme::kTree;
        break;
      default:
        break;
    }
    c.payload_bytes = SchemeWireBytes(comm, codec, q, r.topk_density);
    if (scheme == PlannedScheme::kPS && codec != GradCompression::kNone) {
      c.encode_floats = static_cast<double>(layer.params);
    }
  }
  c.msgs = MessagesFor(scheme, layer, r, shards);
  c.cost = Objective(c, basis);
  return c;
}

/// Wire codecs the PS candidate may use for `layer`, in the canonical menu
/// order of BestSchemeExtendedCompressed (raw first; a fixed-codec policy is
/// a mandate, so it yields the single eligible candidate).
std::vector<GradCompression> PsCodecMenu(const LayerSpec& layer, const PlanRequest& r) {
  const bool eligible = layer.params >= r.compression_min_floats;
  switch (r.codec) {
    case PlanCodecPolicy::kNone:
      return {GradCompression::kNone};
    case PlanCodecPolicy::kFp16:
      return {eligible ? GradCompression::kFp16 : GradCompression::kNone};
    case PlanCodecPolicy::kInt8:
      return {eligible ? GradCompression::kInt8 : GradCompression::kNone};
    case PlanCodecPolicy::kTopK:
      return {eligible ? GradCompression::kTopK : GradCompression::kNone};
    case PlanCodecPolicy::kAuto: {
      std::vector<GradCompression> menu = {GradCompression::kNone};
      if (eligible) {
        menu.push_back(GradCompression::kFp16);
        menu.push_back(GradCompression::kInt8);
        if (r.topk_density > 0.0) {
          menu.push_back(GradCompression::kTopK);
        }
      }
      return menu;
    }
  }
  return {GradCompression::kNone};
}

/// The layer's candidate menu split into the shard-dependent head (the PS
/// family, whose rows vary with the shard count) and the shard-independent
/// tail (SFB and the collectives) — the dominance pruning: the tail is
/// evaluated once per layer and folded into every shard count's argmin.
struct LayerMenu {
  bool stateless = false;
  std::vector<GradCompression> ps_codecs;  // empty: no PS-family candidate
  bool one_bit = false;                    // PS family is the 1-bit row
  std::vector<PlannedScheme> tail;         // canonical order after PS
};

LayerMenu MenuFor(const LayerSpec& layer, const PlanRequest& r) {
  LayerMenu menu;
  if (Stateless(layer)) {
    menu.stateless = true;
    return menu;
  }
  const bool multi = r.num_workers > 1;
  const bool fc = layer.type == LayerType::kFC;
  if (!multi) {
    // No peers: every policy degenerates to the PS (legacy behaviour).
    menu.ps_codecs = PsCodecMenu(layer, r);
    return menu;
  }
  switch (r.policy) {
    case PlanPolicy::kDense:
      menu.ps_codecs = PsCodecMenu(layer, r);
      break;
    case PlanPolicy::kSfb:
      if (fc) {
        menu.tail = {PlannedScheme::kSFB};
      } else {
        menu.ps_codecs = PsCodecMenu(layer, r);
      }
      break;
    case PlanPolicy::kHybrid:
      menu.ps_codecs = PsCodecMenu(layer, r);
      if (fc) {
        menu.tail = {PlannedScheme::kSFB};
      }
      break;
    case PlanPolicy::kOneBit:
      if (fc) {
        menu.one_bit = true;
        menu.ps_codecs = {GradCompression::kNone};
      } else {
        menu.ps_codecs = PsCodecMenu(layer, r);
      }
      break;
    case PlanPolicy::kRingAllreduce:
      menu.tail = {PlannedScheme::kRing};
      break;
    case PlanPolicy::kTreeAllreduce:
      menu.tail = {PlannedScheme::kTree};
      break;
    case PlanPolicy::kAuto:
    case PlanPolicy::kHybridCollective:
      menu.ps_codecs = PsCodecMenu(layer, r);
      if (fc) {
        menu.tail = {PlannedScheme::kSFB, PlannedScheme::kRing, PlannedScheme::kTree};
      } else {
        menu.tail = {PlannedScheme::kRing, PlannedScheme::kTree};
      }
      break;
  }
  return menu;
}

/// Folds the layer's full menu at shard count `shards`, replacing only on
/// strict improvement so ties keep the earlier (paper-preferred) candidate.
/// `tail_costs` are the precomputed shard-independent candidates.
CandidateCost BestForLayer(const LayerSpec& layer, const PlanRequest& r,
                           const LayerMenu& menu,
                           const std::vector<CandidateCost>& tail_costs, int shards,
                           const CostBasis& basis) {
  CandidateCost best;
  bool have = false;
  auto fold = [&](const CandidateCost& c) {
    if (!have || c.cost < best.cost) {
      best = c;
      have = true;
    }
  };
  if (menu.one_bit) {
    fold(EvalCandidate(PlannedScheme::kOneBit, GradCompression::kNone, layer, r, shards,
                       basis));
  } else {
    for (GradCompression codec : menu.ps_codecs) {
      fold(EvalCandidate(PlannedScheme::kPS, codec, layer, r, shards, basis));
    }
  }
  for (const CandidateCost& c : tail_costs) {
    fold(c);
  }
  CHECK(have) << "empty candidate menu for layer " << layer.name;
  return best;
}

// ------------------------------------------------------------- paper mode --

/// The legacy per-layer scheme pass (ResolveSchemes semantics) at shard
/// count `shards`: float-basis choosers, collective policies gated on
/// multi-worker, conv layers pinned to the PS under the paper policies.
std::vector<PlannedScheme> PaperSchemes(const PlanRequest& r, int shards) {
  const bool multi = r.num_workers > 1;
  std::vector<PlannedScheme> schemes;
  schemes.reserve(r.layers.size());
  for (const LayerSpec& layer : r.layers) {
    if (Stateless(layer)) {
      schemes.push_back(PlannedScheme::kNone);
      continue;
    }
    const PlanPolicy policy =
        r.policy == PlanPolicy::kAuto ? PlanPolicy::kHybridCollective : r.policy;
    if (policy == PlanPolicy::kRingAllreduce) {
      schemes.push_back(multi ? PlannedScheme::kRing : PlannedScheme::kPS);
      continue;
    }
    if (policy == PlanPolicy::kTreeAllreduce) {
      schemes.push_back(multi ? PlannedScheme::kTree : PlannedScheme::kPS);
      continue;
    }
    if (policy == PlanPolicy::kHybridCollective) {
      switch (BestSchemeExtended(layer, r.batch_per_worker, r.num_workers, r.num_servers,
                                 shards)) {
        case CommScheme::kPS:
          schemes.push_back(PlannedScheme::kPS);
          break;
        case CommScheme::kSFB:
          schemes.push_back(PlannedScheme::kSFB);
          break;
        case CommScheme::kRing:
          schemes.push_back(PlannedScheme::kRing);
          break;
        case CommScheme::kTree:
          schemes.push_back(PlannedScheme::kTree);
          break;
      }
      continue;
    }
    if (layer.type != LayerType::kFC) {
      schemes.push_back(PlannedScheme::kPS);
      continue;
    }
    switch (policy) {
      case PlanPolicy::kDense:
        schemes.push_back(PlannedScheme::kPS);
        break;
      case PlanPolicy::kSfb:
        schemes.push_back(PlannedScheme::kSFB);
        break;
      case PlanPolicy::kHybrid:
        schemes.push_back(BestScheme(layer, r.batch_per_worker, r.num_workers,
                                     r.num_servers) == CommScheme::kSFB
                              ? PlannedScheme::kSFB
                              : PlannedScheme::kPS);
        break;
      case PlanPolicy::kOneBit:
        schemes.push_back(PlannedScheme::kOneBit);
        break;
      default:
        schemes.push_back(PlannedScheme::kPS);
        break;
    }
  }
  return schemes;
}

GradCompression PaperCodec(const LayerSpec& layer, const PlanRequest& r) {
  if (layer.params < r.compression_min_floats) {
    return GradCompression::kNone;
  }
  switch (r.codec) {
    case PlanCodecPolicy::kNone:
      return GradCompression::kNone;
    case PlanCodecPolicy::kFp16:
      return GradCompression::kFp16;
    case PlanCodecPolicy::kInt8:
      return GradCompression::kInt8;
    case PlanCodecPolicy::kTopK:
      return GradCompression::kTopK;
    case PlanCodecPolicy::kAuto:
      return BestCompression(layer.params, r.topk_density, r.compression_min_floats);
  }
  return GradCompression::kNone;
}

// -------------------------------------------------------------- assembly --

/// Fills the plan's framing/batching model and (time basis) the staleness
/// choice + predicted time from the finished per-layer assignments.
void FinishPlan(const PlanRequest& r, const CostBasis& basis, CommPlan* plan) {
  double payload = 0.0;
  double msgs = 0.0;
  double encode_floats = 0.0;
  for (size_t l = 0; l < plan->layers.size(); ++l) {
    const PlanLayerChoice& choice = plan->layers[l];
    payload += choice.predicted_bytes;
    msgs += MessagesFor(choice.scheme, r.layers[l], r, plan->ps_shards);
    if (choice.scheme == PlannedScheme::kOneBit ||
        (choice.scheme == PlannedScheme::kPS &&
         choice.compression != GradCompression::kNone)) {
      encode_floats += static_cast<double>(r.layers[l].params);
    }
  }
  plan->predicted_wire_bytes = payload;

  // Framing model: every wire frame pays kWireFrameBytes; a batched frame
  // pays it once for up to batch_max_messages entries, each entry paying the
  // chunk header instead. Destinations bound the achievable coalescing.
  const double destinations =
      std::max(1, std::max(r.num_workers, r.num_servers) - 1);
  const double frames_batched =
      std::max(destinations, std::ceil(msgs / std::max(1, r.batch_max_messages)));
  const double framing_unbatched = msgs * kWireFrameBytes;
  const double framing_batched =
      frames_batched * kWireFrameBytes + msgs * kWireChunkHeaderBytes;
  if (r.joint && r.allow_batching) {
    plan->batch_egress = framing_batched < framing_unbatched;
  } else {
    plan->batch_egress = r.batch_egress;
  }
  plan->predicted_msgs = plan->batch_egress ? frames_batched : msgs;
  plan->predicted_framing_bytes =
      plan->batch_egress ? framing_batched : framing_unbatched;

  plan->staleness = r.staleness;
  plan->planned_gbps = r.nic_gbps;
  if (basis.time) {
    const double comm_s = payload / basis.wire_bytes_per_s +
                          plan->predicted_msgs * basis.latency_s +
                          2.0 * encode_floats / basis.cpu_flops;
    // An SSP bound of s lets communication overlap the next s iterations, so
    // the steady-state visible tail divides by s + 1 (docs/PLANNER.md); the
    // ceiling is opt-in via max_staleness, and s = 0 keeps BSP.
    if (r.joint && r.max_staleness > r.staleness && comm_s > 0.0) {
      plan->staleness = r.max_staleness;
    }
    plan->predicted_time_s = comm_s / (1.0 + plan->staleness);
  }
}

}  // namespace

const char* PlanPolicyName(PlanPolicy policy) {
  switch (policy) {
    case PlanPolicy::kAuto:
      return "auto";
    case PlanPolicy::kDense:
      return "dense";
    case PlanPolicy::kSfb:
      return "sfb";
    case PlanPolicy::kHybrid:
      return "hybrid";
    case PlanPolicy::kOneBit:
      return "1bit";
    case PlanPolicy::kRingAllreduce:
      return "ring";
    case PlanPolicy::kTreeAllreduce:
      return "tree";
    case PlanPolicy::kHybridCollective:
      return "hybrid-collective";
  }
  return "?";
}

const char* PlanCodecPolicyName(PlanCodecPolicy policy) {
  switch (policy) {
    case PlanCodecPolicy::kNone:
      return "none";
    case PlanCodecPolicy::kFp16:
      return "fp16";
    case PlanCodecPolicy::kInt8:
      return "int8";
    case PlanCodecPolicy::kTopK:
      return "topk";
    case PlanCodecPolicy::kAuto:
      return "auto";
  }
  return "?";
}

PlanKey PlanRequestKey(const PlanRequest& r) {
  // Word-count bound for the unchecked serializer: every string costs
  // 1 length word + ceil(size/8) payload words.
  size_t bound = 32 + r.pinned_schemes.size();
  bound += 2 + r.model_name.size() / 8 + r.transport.size() / 8;
  for (const LayerSpec& layer : r.layers) {
    bound += 6 + layer.name.size() / 8;
  }
  KeyWords d(bound);
  d.PutString(r.model_name);
  d.Put(r.layers.size());
  for (const LayerSpec& layer : r.layers) {
    d.PutString(layer.name);
    d.Put(static_cast<uint64_t>(layer.type));
    d.Put(static_cast<uint64_t>(layer.params));
    d.Put(static_cast<uint64_t>(layer.fc_m));
    d.Put(static_cast<uint64_t>(layer.fc_n));
  }
  d.Put(static_cast<uint64_t>(r.num_workers));
  d.Put(static_cast<uint64_t>(r.num_servers));
  d.Put(static_cast<uint64_t>(r.batch_per_worker));
  d.Put(static_cast<uint64_t>(r.kv_pair_bytes));
  d.PutDouble(r.nic_gbps);
  d.PutDouble(r.latency_s);
  d.PutDouble(r.transport_efficiency);
  d.PutDouble(r.cpu_flops);
  d.PutString(r.transport);
  d.Put(static_cast<uint64_t>(r.ps_shards_pinned));
  d.Put(static_cast<uint64_t>(r.max_shards));
  d.Put(static_cast<uint64_t>(r.paper_eval_shards));
  d.Put(static_cast<uint64_t>(r.staleness));
  d.Put(static_cast<uint64_t>(r.max_staleness));
  d.Put((r.batch_egress ? 2ULL : 0ULL) | (r.allow_batching ? 1ULL : 0ULL));
  d.Put(static_cast<uint64_t>(r.batch_max_messages));
  d.Put(r.pinned_schemes.size());
  for (PlannedScheme scheme : r.pinned_schemes) {
    d.Put(static_cast<uint64_t>(scheme));
  }
  d.Put(static_cast<uint64_t>(r.policy));
  d.Put(static_cast<uint64_t>(r.codec));
  d.PutDouble(r.topk_density);
  d.Put(static_cast<uint64_t>(r.compression_min_floats));
  d.Put(r.joint ? 1 : 0);
  return d.Finish(0x706f736569646f6eULL, 0x636f6d6d706c616eULL);  // "poseidon commplan"
}

std::string PlanRequestSignature(const PlanRequest& r) {
  uint64_t layer_digest = 1469598103934665603ULL;
  for (const LayerSpec& layer : r.layers) {
    uint64_t h = 0;
    h = MixString(h, layer.name);
    h = Mix(h, static_cast<uint64_t>(layer.type));
    h = Mix(h, static_cast<uint64_t>(layer.params));
    h = Mix(h, static_cast<uint64_t>(layer.fc_m));
    h = Mix(h, static_cast<uint64_t>(layer.fc_n));
    layer_digest = Mix(layer_digest, h);
  }
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(layer_digest));
  std::string s;
  s += "model=" + r.model_name;
  s += "|layers=" + std::to_string(r.layers.size()) + ":" + digest_hex;
  s += "|w=" + std::to_string(r.num_workers);
  s += "|srv=" + std::to_string(r.num_servers);
  s += "|b=" + std::to_string(r.batch_per_worker);
  s += "|kv=" + std::to_string(r.kv_pair_bytes);
  s += "|bw=" + Fmt(r.nic_gbps);
  s += "|lat=" + Fmt(r.latency_s);
  s += "|eff=" + Fmt(r.transport_efficiency);
  s += "|cpu=" + Fmt(r.cpu_flops);
  s += "|tr=" + r.transport;
  s += "|pin=" + std::to_string(r.ps_shards_pinned);
  s += "|maxsh=" + std::to_string(r.max_shards);
  s += "|evalsh=" + std::to_string(r.paper_eval_shards);
  s += "|stale=" + std::to_string(r.staleness);
  s += "|maxstale=" + std::to_string(r.max_staleness);
  s += std::string("|batch=") + (r.batch_egress ? "1" : "0");
  s += std::string("|allowbatch=") + (r.allow_batching ? "1" : "0");
  s += "|bmax=" + std::to_string(r.batch_max_messages);
  if (!r.pinned_schemes.empty()) {
    s += "|pins=";
    for (PlannedScheme scheme : r.pinned_schemes) {
      s += std::to_string(static_cast<int>(scheme));
    }
  }
  s += std::string("|pol=") + PlanPolicyName(r.policy);
  s += std::string("|codec=") + PlanCodecPolicyName(r.codec);
  s += "|dens=" + Fmt(r.topk_density);
  s += "|minfl=" + std::to_string(r.compression_min_floats);
  s += std::string("|joint=") + (r.joint ? "1" : "0");
  return s;
}

CommPlan PlanComm(const PlanRequest& r) {
  CHECK_GT(r.num_workers, 0);
  CHECK_GT(r.num_servers, 0);
  CHECK_GT(r.batch_per_worker, 0);
  CHECK_GE(r.ps_shards_pinned, 0);
  CHECK_GT(r.max_shards, 0);
  CHECK_GE(r.staleness, 0);
  CHECK_GE(r.max_staleness, 0);
  if (r.codec == PlanCodecPolicy::kTopK || r.codec == PlanCodecPolicy::kAuto) {
    CHECK_GT(r.topk_density, 0.0);
    CHECK_LE(r.topk_density, 1.0);
  }
  const CostBasis basis = BasisFor(r);
  CommPlan plan;
  plan.model = r.model_name;
  plan.signature = PlanRequestSignature(r);
  plan.topk_density = r.topk_density;

  const size_t num_layers = r.layers.size();
  if (!r.joint) {
    // Paper mode: the legacy sequential decisions, reproduced exactly.
    const bool pinned_schemes = !r.pinned_schemes.empty();
    if (pinned_schemes) {
      CHECK_EQ(r.pinned_schemes.size(), num_layers);
    }
    const int s0 = r.ps_shards_pinned > 0 ? r.ps_shards_pinned : r.paper_eval_shards;
    const std::vector<PlannedScheme> schemes0 =
        pinned_schemes ? r.pinned_schemes : PaperSchemes(r, s0);
    int best_s = r.ps_shards_pinned > 0 ? r.ps_shards_pinned : 1;
    if (r.ps_shards_pinned == 0) {
      for (size_t l = 0; l < num_layers; ++l) {
        if (schemes0[l] != PlannedScheme::kPS) {
          continue;
        }
        const CommCostQuery q = QueryFor(r.layers[l], r, 1);
        best_s = std::max(best_s, BestPsShardCount(q, r.max_shards));
      }
    }
    const std::vector<PlannedScheme> schemes =
        (pinned_schemes || best_s == s0) ? schemes0 : PaperSchemes(r, best_s);
    plan.ps_shards = best_s;
    for (size_t l = 0; l < num_layers; ++l) {
      const LayerSpec& layer = r.layers[l];
      PlanLayerChoice choice;
      choice.layer = layer.name;
      choice.scheme = schemes[l];
      if (choice.scheme == PlannedScheme::kPS) {
        choice.compression = PaperCodec(layer, r);
      }
      if (choice.scheme != PlannedScheme::kNone) {
        choice.predicted_bytes =
            EvalCandidate(choice.scheme, choice.compression, layer, r, best_s, basis)
                .payload_bytes;
      }
      plan.layers.push_back(std::move(choice));
    }
  } else {
    // Joint mode: per-layer argmin over the full menu at every candidate
    // shard count. Tail candidates (SFB / collectives) are shard-independent
    // and evaluated once per layer (dominance pruning).
    std::vector<LayerMenu> menus;
    std::vector<std::vector<CandidateCost>> tails(num_layers);
    menus.reserve(num_layers);
    for (size_t l = 0; l < num_layers; ++l) {
      menus.push_back(MenuFor(r.layers[l], r));
      for (PlannedScheme scheme : menus[l].tail) {
        tails[l].push_back(EvalCandidate(scheme, GradCompression::kNone, r.layers[l], r,
                                         /*shards=*/1, basis));
      }
    }
    const int s_lo = r.ps_shards_pinned > 0 ? r.ps_shards_pinned : 1;
    const int s_hi = r.ps_shards_pinned > 0 ? r.ps_shards_pinned : r.max_shards;
    int best_s = s_lo;
    double best_total = 0.0;
    bool have_total = false;
    for (int s = s_lo; s <= s_hi; ++s) {
      double total = 0.0;
      for (size_t l = 0; l < num_layers; ++l) {
        if (menus[l].stateless) {
          continue;
        }
        total += BestForLayer(r.layers[l], r, menus[l], tails[l], s, basis).cost;
      }
      if (!have_total || total < best_total) {  // strict: ties keep fewer shards
        best_total = total;
        best_s = s;
        have_total = true;
      }
    }
    plan.ps_shards = best_s;
    for (size_t l = 0; l < num_layers; ++l) {
      const LayerSpec& layer = r.layers[l];
      PlanLayerChoice choice;
      choice.layer = layer.name;
      if (!menus[l].stateless) {
        const CandidateCost best =
            BestForLayer(layer, r, menus[l], tails[l], best_s, basis);
        choice.scheme = best.scheme;
        choice.compression = best.codec;
        choice.predicted_bytes = best.payload_bytes;
      }
      plan.layers.push_back(std::move(choice));
    }
  }

  FinishPlan(r, basis, &plan);
  plan.hash = plan.ComputeHash();
  return plan;
}

PlanRequest JointAutoRequest(const ModelSpec& model, int num_nodes, double nic_gbps,
                             int max_shards, double topk_density,
                             int64_t compression_min_floats) {
  PlanRequest req;
  req.model_name = model.name;
  req.layers = model.layers;
  req.num_workers = num_nodes;
  req.num_servers = num_nodes;
  req.batch_per_worker = model.default_batch;
  req.nic_gbps = nic_gbps;
  req.max_shards = max_shards;
  req.allow_batching = true;
  req.policy = PlanPolicy::kAuto;
  req.codec = PlanCodecPolicy::kAuto;
  req.topk_density = topk_density;
  req.compression_min_floats = compression_min_floats;
  req.joint = true;
  return req;
}

PlanRequest PaperDefaultRequest(const ModelSpec& model, int num_nodes, double nic_gbps) {
  PlanRequest req;
  req.model_name = model.name;
  req.layers = model.layers;
  req.num_workers = num_nodes;
  req.num_servers = num_nodes;
  req.batch_per_worker = model.default_batch;
  req.nic_gbps = nic_gbps;
  req.ps_shards_pinned = 1;
  req.policy = PlanPolicy::kHybrid;
  req.codec = PlanCodecPolicy::kNone;
  req.joint = false;
  return req;
}

}  // namespace poseidon

/// \file
/// Flattened view over a layer's parameter blocks (weight, bias, ...), giving
/// the KV machinery a single contiguous float address space per layer. Layout
/// is the blocks in declaration order, concatenated.
#ifndef POSEIDON_SRC_POSEIDON_FLAT_PARAMS_H_
#define POSEIDON_SRC_POSEIDON_FLAT_PARAMS_H_

#include <cstdint>
#include <vector>

#include "src/nn/layer.h"

namespace poseidon {

class FlatParamView {
 public:
  explicit FlatParamView(std::vector<ParamBlock> blocks);

  int64_t size() const { return total_; }

  /// Copies gradients [offset, offset+out->size()) into `out`.
  void GatherGradSlice(int64_t offset, std::vector<float>* out) const;
  /// Pointer variant: copies gradients [offset, offset+len) into `out`
  /// (used to stage straight into a wire Payload slab).
  void GatherGradSlice(int64_t offset, float* out, int64_t len) const;

  /// Copies values [offset, offset+out->size()) into `out`.
  void GatherValueSlice(int64_t offset, std::vector<float>* out) const;
  /// Pointer variant of GatherValueSlice.
  void GatherValueSlice(int64_t offset, float* out, int64_t len) const;

  /// Writes `data` into values at [offset, offset+data.size()).
  void ScatterValueSlice(int64_t offset, const std::vector<float>& data);
  /// Pointer variant: writes [data, data+len) into values at offset (used
  /// to apply straight from a wire PayloadView).
  void ScatterValueSlice(int64_t offset, const float* data, int64_t len);

  std::vector<float> GatherValues() const;
  std::vector<float> GatherGrads() const;
  void ScatterValues(const std::vector<float>& data);

 private:
  /// Maps a flat range to (block, intra-block offset) pieces and applies fn.
  template <typename Fn>
  void ForRange(int64_t offset, int64_t len, Fn&& fn) const;

  std::vector<ParamBlock> blocks_;
  std::vector<int64_t> starts_;  // flat start of each block
  int64_t total_ = 0;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_FLAT_PARAMS_H_

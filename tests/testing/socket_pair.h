/// \file
/// A two-process socket cluster in miniature for transport-level tests: node
/// 0 on "process" 0, node 1 on "process" 1, each with its own MessageBus and
/// SocketTransport, full mesh over real loopback TCP or AF_UNIX sockets.
/// Control records are collected per process, and Barrier() turns the
/// stream's FIFO guarantee into a sync point: a control record sent after
/// Flush() is processed only after every previously written data record, so
/// counter assertions never race late retransmissions or duplicates.
#ifndef POSEIDON_TESTS_TESTING_SOCKET_PAIR_H_
#define POSEIDON_TESTS_TESTING_SOCKET_PAIR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/transport/bus.h"
#include "src/transport/socket_transport.h"

namespace poseidon {
namespace testing {

/// One control record as observed by a process's handler.
struct ControlEvent {
  int src = -1;
  uint16_t opcode = 0;
  std::vector<uint8_t> body;
};

class SocketBusPair {
 public:
  /// Binds both listeners, attaches transports to fresh 2-node buses, and
  /// dials the mesh. CHECK-fails on any setup error.
  explicit SocketBusPair(bool unix_sockets, const FaultPlan& shim = {});
  ~SocketBusPair();

  SocketBusPair(const SocketBusPair&) = delete;
  SocketBusPair& operator=(const SocketBusPair&) = delete;

  MessageBus& bus(int p) { return *bus_[p]; }
  SocketTransport& transport(int p) { return *transport_[p]; }

  /// Blocks until process `p` has observed `count` control records total.
  bool AwaitControl(int p, size_t count, int timeout_ms = 10000);
  std::vector<ControlEvent> control(int p);

  /// Flushes `src`'s egress (including shim holdback) and round-trips one
  /// control record src -> dst: on return, every data record `src` sent
  /// before the barrier has been processed by `dst`'s bus.
  void Barrier(int src, int dst);

 private:
  std::string dir_;
  std::unique_ptr<MessageBus> bus_[2];
  std::shared_ptr<SocketTransport> transport_[2];
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<ControlEvent> control_[2];
};

}  // namespace testing
}  // namespace poseidon

#endif  // POSEIDON_TESTS_TESTING_SOCKET_PAIR_H_

// Architectural descriptors for the neural networks in the evaluation
// (Table 3). A ModelSpec records, per layer, what Poseidon's coordinator
// needs (layer type and FC shape, for HybComm's BestScheme) and what the
// cluster simulator needs (parameter and FLOP counts, for wire bytes and
// compute durations). Layers are ordered bottom (input side) to top (loss
// side); the backward pass visits them top to bottom.
#ifndef POSEIDON_SRC_MODELS_MODEL_SPEC_H_
#define POSEIDON_SRC_MODELS_MODEL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace poseidon {

enum class LayerType {
  kConv,  // convolution (or an aggregated conv block); gradient indecomposable
  kFC,    // fully connected: M x N matrix, rank-K gradient over a K-batch
};

const char* LayerTypeName(LayerType type);

struct LayerSpec {
  std::string name;
  LayerType type = LayerType::kConv;
  // Trainable parameter count (weights + biases).
  int64_t params = 0;
  // For kFC: weight matrix dimensions (M = output width, N = input height, in
  // the paper's notation an M x N layer).
  int64_t fc_m = 0;
  int64_t fc_n = 0;
  // Forward FLOPs per input sample; the backward pass is modeled as 2x.
  double fwd_flops = 0.0;

  double bwd_flops() const { return 2.0 * fwd_flops; }
  int64_t param_bytes() const { return params * 4; }
};

struct ModelSpec {
  std::string name;
  std::string dataset;
  int default_batch = 32;
  std::vector<LayerSpec> layers;

  int num_layers() const { return static_cast<int>(layers.size()); }
  int64_t total_params() const;
  double total_fwd_flops() const;
  // Fraction of parameters living in FC layers (VGG19-22K: ~0.91).
  double fc_param_fraction() const;
  std::string Summary() const;
};

// Helpers used by the zoo to derive realistic per-layer counts.
// A k x k convolution, in_c -> out_c channels, producing out_hw x out_hw maps.
LayerSpec ConvLayer(std::string name, int64_t in_c, int64_t out_c, int64_t kernel,
                    int64_t out_hw);
// Rectangular kernel (kh x kw), for Inception-style factorized convolutions.
LayerSpec ConvLayerRect(std::string name, int64_t in_c, int64_t out_c, int64_t kh, int64_t kw,
                        int64_t out_hw);
// A fully connected layer with an M x N weight matrix (paper orientation:
// output dim M, input dim N).
LayerSpec FcLayer(std::string name, int64_t m, int64_t n);

}  // namespace poseidon

#endif  // POSEIDON_SRC_MODELS_MODEL_SPEC_H_

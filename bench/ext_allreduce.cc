// Extension experiment: collective allreduce schemes (ring, binary tree) as
// first-class HybComm candidates, compared against the paper's PS and SFB.
//
// Part 1 extends Table 1 with the collective rows and self-verifies every
// printed value against the closed-form expressions (to 1e-6):
//   ring: 2*M*N*(P-1)/P floats per worker (per direction),
//   tree: M*N / 2*M*N / 3*M*N for P = 2 / 3..4 / >= 5 at the busiest node.
// Expected shape: ring always undercuts the colocated PS row; SFB still wins
// for large FC layers (its rank-K messages scale with M+N, not M*N); the
// crossover against ring moves with P and the layer size.
//
// Part 2 sweeps the protocol simulator across node counts and bandwidths:
// PS-only, SFB-only, Poseidon (two-way HybComm), pure ring, pure tree, and
// Poseidon++ (three-way HybComm). Expected shape: on conv-heavy models
// (ResNet-152) ring beats the sharded PS once bandwidth is scarce, and
// Poseidon++ tracks the best of all curves; on VGG19-22K SFB still carries
// the giant FC layers. The per-layer choices of Poseidon++ are printed for
// the largest swept cluster.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "src/common/cli.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/models/comm_cost.h"
#include "src/models/zoo.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

// Closed-form Table-1-extension rows, kept deliberately separate from the
// implementation in comm_cost.cc so the table is cross-checked, not
// self-checked.
double AnalyticRingFloats(double mn, int p) { return 2.0 * mn * (p - 1) / p; }

double AnalyticTreeFloats(double mn, int p) {
  if (p < 2) {
    return 0.0;
  }
  if (p == 2) {
    return mn;
  }
  return p <= 4 ? 2.0 * mn : 3.0 * mn;
}

void CheckClose(double got, double want, const char* what) {
  const double scale = std::max(1.0, std::abs(want));
  CHECK_LT(std::abs(got - want) / scale, 1e-6)
      << what << ": got " << got << ", want " << want;
}

struct CostRow {
  const char* label;
  LayerSpec layer;
  int64_t batch_k;
};

void CostTablePart(const std::vector<int>& workers) {
  std::printf("Table 1 extension: per-worker floats (millions) per iteration,\n");
  std::printf("P colocated worker+server nodes. best = three-way HybComm choice.\n\n");

  const std::vector<CostRow> rows = {
      {"fc 4096x4096", FcLayer("fc7", 4096, 4096), 32},
      {"fc 4096x25088", FcLayer("fc6", 4096, 25088), 32},
      {"fc 1000x1024", FcLayer("cls", 1000, 1024), 128},
      // A ResNet-style conv block: dense, indecomposable gradient.
      {"conv 2.36M", ConvLayer("res5", 512, 512, 3, 7), 32},
  };

  TextTable table({"layer", "K", "P", "PS.both", "SFB.wrk", "Ring.wrk", "Tree.max", "best"});
  for (const CostRow& row : rows) {
    for (int p : workers) {
      if (p < 2) {
        continue;  // collectives need peers
      }
      CommCostQuery q;
      q.m = row.layer.type == LayerType::kFC ? row.layer.fc_m : row.layer.params;
      q.n = row.layer.type == LayerType::kFC ? row.layer.fc_n : 1;
      q.batch_k = row.batch_k;
      q.num_workers = p;
      q.num_servers = p;

      const double mn = static_cast<double>(q.m) * static_cast<double>(q.n);
      const double ring = RingAllreduceWorkerFloats(q);
      const double tree = TreeAllreduceWorkerFloats(q);
      CheckClose(ring, AnalyticRingFloats(mn, p), "ring row");
      CheckClose(tree, AnalyticTreeFloats(mn, p), "tree row");
      CheckClose(PsColocatedFloats(q), 2.0 * mn * (2 * p - 2) / p, "PS row");
      if (row.layer.type == LayerType::kFC) {
        CheckClose(SfbWorkerFloats(q),
                   2.0 * static_cast<double>(q.batch_k) * (p - 1) *
                       static_cast<double>(q.m + q.n),
                   "SFB row");
      }

      const CommScheme best =
          BestSchemeExtended(row.layer, row.batch_k, /*num_workers=*/p, /*num_servers=*/p);
      table.AddRow({row.label, std::to_string(row.batch_k), std::to_string(p),
                    TextTable::Num(PsColocatedFloats(q) / 1e6, 2),
                    row.layer.type == LayerType::kFC
                        ? TextTable::Num(SfbWorkerFloats(q) / 1e6, 2)
                        : std::string("-"),
                    TextTable::Num(ring / 1e6, 2), TextTable::Num(tree / 1e6, 2),
                    CommSchemeName(best)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SimSweepPart(const BenchArgs& args, const std::vector<int>& nodes,
                  const std::vector<double>& bandwidths, bool batch_egress) {
  std::vector<SystemConfig> systems = {
      CaffePlusWfbp(),       SfbOnlySystem(),       PoseidonSystem(),
      RingAllreduceSystem(), TreeAllreduceSystem(), HybridCollectiveSystem(),
  };
  for (SystemConfig& system : systems) {
    system.batch_egress = batch_egress;
    if (batch_egress) {
      system.name += "-be";
    }
  }
  for (const char* name : {"resnet-152", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    for (double gbps : bandwidths) {
      // --plan=auto|fixed: the planner's joint choice replaces the
      // hand-enumerated scheme menu above.
      const auto results =
          RunPlannedScalingSweep(args, model, systems, nodes, gbps, Engine::kCaffe);
      char title[160];
      std::snprintf(title, sizeof(title),
                    "Allreduce extension: %s @ %.0f GbE (Caffe engine)",
                    model.name.c_str(), gbps);
      std::printf("%s\n", FormatSpeedupTable(title, results).c_str());
    }
    const std::string plan_summary =
        FormatPlanSummary(args, model, nodes.back(), bandwidths.front());
    if (!plan_summary.empty()) {
      std::printf("%s\n", plan_summary.c_str());
    }
  }

  // Show what the three-way chooser actually picked, per layer, at the
  // largest swept cluster and the lowest bandwidth.
  const int max_nodes = *std::max_element(nodes.begin(), nodes.end());
  if (max_nodes > 1) {
    ClusterSpec cluster;
    cluster.num_nodes = max_nodes;
    cluster.nic_gbps = *std::min_element(bandwidths.begin(), bandwidths.end());
    const ModelSpec model = ModelByName("resnet-152").value();
    const SimResult result = RunProtocolSimulation(model, HybridCollectiveSystem(), cluster,
                                                   Engine::kCaffe);
    std::map<std::string, int> counts;
    for (const auto& [layer, scheme] : result.layer_schemes) {
      ++counts[scheme];
    }
    std::printf("Poseidon++ per-layer choices, resnet-152 on %d nodes:", max_nodes);
    for (const auto& [scheme, count] : counts) {
      std::printf("  %s x%d", scheme.c_str(), count);
    }
    std::printf("\n\n");
    if (batch_egress) {
      std::printf("%s\n",
                  FormatBatchAblation("Egress-batcher ablation: ring allreduce", model,
                                      RingAllreduceSystem(), nodes, cluster.nic_gbps,
                                      Engine::kCaffe)
                      .c_str());
    }
  }
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  const std::vector<int> nodes = args.NodesOr({2, 4, 8, 16, 32, 64});
  poseidon::CostTablePart(nodes);
  poseidon::SimSweepPart(args, nodes, args.GbpsOr({10.0, 40.0}), args.batch_egress);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

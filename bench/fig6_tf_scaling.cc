// Regenerates Figure 6: throughput speedup vs number of nodes for
// Inception-V3, VGG19 and VGG19-22K with the TensorFlow engine at 40 GbE,
// comparing native distributed TF (per-tensor sharding, fetch at iteration
// start, gRPC transport), TF+WFBP (Poseidon's PS with overlap) and full
// Poseidon.
//
// Expected shape (paper): Poseidon ~31.5x on Inception-V3 at 32 nodes vs
// ~20x for TF; TF fails to scale on the VGG variants (big dense tensors pin
// single shards) while Poseidon stays near-linear.
#include <cstdio>

#include "src/common/cli.h"
#include "src/models/zoo.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

void Run(const BenchArgs& args) {
  const std::vector<int> nodes = args.NodesOr({1, 2, 4, 8, 16, 32});
  const std::vector<SystemConfig> systems = {TfNative(), TfPlusWfbp(), PoseidonSystem()};
  for (const char* name : {"inception-v3", "vgg19", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    for (double gbps : args.GbpsOr({40.0})) {
      const auto results = RunScalingSweep(model, systems, nodes, gbps, Engine::kTensorFlow);
      char title[128];
      std::snprintf(title, sizeof(title), "Fig 6: %s (TensorFlow engine, %.0f GbE)",
                    model.name.c_str(), gbps);
      std::printf("%s\n", FormatSpeedupTable(title, results).c_str());
    }
  }
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

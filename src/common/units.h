// Byte/bit/time unit helpers shared by the network fabric, the cost model and
// the benchmark harnesses. All wire sizes in the library are bytes (double to
// tolerate analytic fractions); all simulated time is seconds.
#ifndef POSEIDON_SRC_COMMON_UNITS_H_
#define POSEIDON_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace poseidon {

inline constexpr double kBitsPerByte = 8.0;
inline constexpr int64_t kBytesPerFloat = 4;  // fp32 everywhere on the wire
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

// Network vendors quote decimal gigabits: 10 GbE = 1e10 bit/s.
inline constexpr double GbpsToBytesPerSec(double gbps) { return gbps * 1e9 / kBitsPerByte; }
inline constexpr double BytesPerSecToGbps(double bps) { return bps * kBitsPerByte / 1e9; }

inline constexpr double BytesToGigabits(double bytes) { return bytes * kBitsPerByte / 1e9; }

// "12.3 MiB", "4.5 GiB" etc., for human-facing tables.
std::string FormatBytes(double bytes);

// "123.4 us", "5.67 ms", "8.9 s".
std::string FormatSeconds(double seconds);

}  // namespace poseidon

#endif  // POSEIDON_SRC_COMMON_UNITS_H_

// Tests for the coordinator's information book and KV partition plan, and
// the FlatParamView the KV machinery is built on.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/nn/builders.h"
#include "src/nn/layers.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/flat_params.h"
#include "src/poseidon/runtime_scheme.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

using testing::SmallClusterInfo;

TEST(CoordinatorTest, QueryInformationBook) {
  Rng rng(1);
  auto net = BuildMlp(64, 32, 2, 10, rng);
  Coordinator coordinator(*net, SmallClusterInfo(4, 2, 16));
  EXPECT_EQ(coordinator.Query("n_worker").value(), 4);
  EXPECT_EQ(coordinator.Query("n_server").value(), 2);
  EXPECT_EQ(coordinator.Query("batchsize").value(), 16);
  EXPECT_EQ(coordinator.Query("n_layer").value(), net->num_layers());
  EXPECT_FALSE(coordinator.Query("bogus").ok());
}

TEST(CoordinatorTest, PairsCoverEveryParameterExactlyOnce) {
  Rng rng(2);
  auto net = BuildCifarQuick(3, 16, 10, rng);
  Coordinator coordinator(*net, SmallClusterInfo(2, 3, 8, /*kv_bytes=*/4096));
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    const LayerInfo& info = coordinator.layer(l);
    int64_t covered = 0;
    int64_t expected_offset = 0;
    for (const KvPairInfo& pair : info.pairs) {
      EXPECT_EQ(pair.offset, expected_offset);
      EXPECT_GT(pair.length, 0);
      EXPECT_GE(pair.server, 0);
      EXPECT_LT(pair.server, 3);
      expected_offset += pair.length;
      covered += pair.length;
    }
    EXPECT_EQ(covered, info.total_floats);
  }
}

TEST(CoordinatorTest, KvPairsBalanceServerLoad) {
  // The point of fine-grained KV pairs (§5.1): no shard should hold much
  // more than its share, even when one tensor dominates the model.
  Rng rng(3);
  auto net = BuildMlp(/*input_dim=*/2048, /*hidden_dim=*/512, /*hidden_layers=*/1,
                      /*classes=*/10, rng);
  const int servers = 4;
  Coordinator coordinator(*net, SmallClusterInfo(4, servers, 8, /*kv_bytes=*/8192));
  const std::vector<int64_t> load = coordinator.ServerLoadFloats();
  const int64_t max = *std::max_element(load.begin(), load.end());
  const int64_t min = *std::min_element(load.begin(), load.end());
  EXPECT_LT(static_cast<double>(max) / static_cast<double>(min), 1.1);
}

TEST(CoordinatorTest, BestSchemeUsesAlgorithm1) {
  Rng rng(4);
  // Wide FC layers, tiny batch: SFB should win on multiple workers.
  auto net = BuildMlp(/*input_dim=*/4096, /*hidden_dim=*/1024, /*hidden_layers=*/1,
                      /*classes=*/10, rng);
  Coordinator multi(*net, SmallClusterInfo(8, 8, 8));
  bool any_sfb = false;
  for (int l = 0; l < multi.num_layers(); ++l) {
    if (multi.layer(l).type == LayerType::kFC && multi.BestScheme(l) == CommScheme::kSFB) {
      any_sfb = true;
    }
  }
  EXPECT_TRUE(any_sfb);

  // Single worker: everything through the PS.
  Coordinator single(*net, SmallClusterInfo(1, 1, 8));
  for (int l = 0; l < single.num_layers(); ++l) {
    EXPECT_EQ(single.BestScheme(l), CommScheme::kPS);
  }
}

TEST(CoordinatorTest, BestSchemeByNameAndUnknownName) {
  Rng rng(5);
  auto net = BuildMlp(64, 32, 1, 4, rng);
  Coordinator coordinator(*net, SmallClusterInfo(2, 2, 8));
  EXPECT_TRUE(coordinator.BestScheme("fc1").ok());
  EXPECT_FALSE(coordinator.BestScheme("nope").ok());
}

TEST(RuntimeSchemeTest, ResolvesPolicies) {
  Rng rng(6);
  auto net = BuildCifarQuick(3, 16, 10, rng);
  Coordinator coordinator(*net, SmallClusterInfo(4, 4, 8));

  const auto dense = ResolveSchemes(coordinator, FcSyncPolicy::kDense);
  const auto sfb = ResolveSchemes(coordinator, FcSyncPolicy::kSfb);
  const auto onebit = ResolveSchemes(coordinator, FcSyncPolicy::kOneBit);
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    const LayerInfo& info = coordinator.layer(l);
    if (info.total_floats == 0) {
      EXPECT_EQ(dense[l], RuntimeScheme::kNone);
      EXPECT_EQ(sfb[l], RuntimeScheme::kNone);
    } else if (info.type == LayerType::kFC) {
      EXPECT_EQ(dense[l], RuntimeScheme::kPsDense);
      EXPECT_EQ(sfb[l], RuntimeScheme::kSfb);
      EXPECT_EQ(onebit[l], RuntimeScheme::kOneBit);
    } else {
      EXPECT_EQ(dense[l], RuntimeScheme::kPsDense);
      EXPECT_EQ(sfb[l], RuntimeScheme::kPsDense);  // conv never broadcasts
    }
  }
}

TEST(FlatParamViewTest, GatherScatterRoundTrip) {
  Rng rng(7);
  FullyConnectedLayer fc("fc", 4, 6, rng);
  FlatParamView view(fc.Params());
  EXPECT_EQ(view.size(), 4 * 6 + 4);

  std::vector<float> values = view.GatherValues();
  for (float& v : values) {
    v += 1.0f;
  }
  view.ScatterValues(values);
  const std::vector<float> back = view.GatherValues();
  EXPECT_EQ(back, values);
}

TEST(FlatParamViewTest, SlicesSpanBlockBoundaries) {
  Rng rng(8);
  FullyConnectedLayer fc("fc", 2, 3, rng);  // weight 6 floats + bias 2 floats
  FlatParamView view(fc.Params());
  ASSERT_EQ(view.size(), 8);
  // A slice [4, 8) covers the last 2 weight floats and both bias floats.
  std::vector<float> slice(4);
  view.GatherValueSlice(4, &slice);
  std::vector<float> all = view.GatherValues();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(slice[static_cast<size_t>(i)], all[static_cast<size_t>(4 + i)]);
  }
  // Scatter through the same boundary.
  slice = {10.0f, 11.0f, 12.0f, 13.0f};
  view.ScatterValueSlice(4, slice);
  all = view.GatherValues();
  EXPECT_EQ(all[5], 11.0f);
  EXPECT_EQ(all[7], 13.0f);
}

TEST(FlatParamViewTest, GradGatherReadsGradients) {
  Rng rng(9);
  FullyConnectedLayer fc("fc", 2, 2, rng);
  fc.weight_grad().Fill(3.0f);
  FlatParamView view(fc.Params());
  std::vector<float> grads(static_cast<size_t>(view.size()));
  view.GatherGradSlice(0, &grads);
  EXPECT_EQ(grads[0], 3.0f);
  EXPECT_EQ(grads[3], 3.0f);
  EXPECT_EQ(grads[4], 0.0f);  // bias grad untouched
}

}  // namespace
}  // namespace poseidon

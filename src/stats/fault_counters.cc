#include "src/stats/fault_counters.h"

#include <sstream>

namespace poseidon {

std::string FormatFaultCounters(const FaultCountersSnapshot& snap) {
  std::ostringstream out;
  out << "faults{drops=" << snap.drops << " retx=" << snap.retransmits
      << " dups=" << snap.duplicates << " delays=" << snap.delays
      << " partition_holds=" << snap.partition_holds << " deduped=" << snap.deduped
      << " reordered=" << snap.reordered << " dropped_replies=" << snap.dropped_replies
      << "}";
  return out.str();
}

}  // namespace poseidon

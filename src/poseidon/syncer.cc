#include "src/poseidon/syncer.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/simd/vec.h"
#include "src/stats/trace.h"
#include "src/tensor/ops.h"

namespace poseidon {

Syncer::Syncer(int worker, int layer_index, RuntimeScheme scheme,
               const Coordinator& coordinator, MessageBus* bus, Layer* layer,
               SgdOptimizer* local_optimizer, GradCompression compression,
               double topk_density)
    : worker_(worker),
      layer_index_(layer_index),
      scheme_(scheme),
      compression_(scheme == RuntimeScheme::kPsDense ? compression
                                                     : GradCompression::kNone),
      topk_density_(topk_density),
      coordinator_(coordinator),
      bus_(bus),
      layer_(layer),
      fc_(dynamic_cast<FullyConnectedLayer*>(layer)),
      local_optimizer_(local_optimizer),
      view_(layer->Params()) {
  CHECK_NOTNULL(bus);
  if (compression_ == GradCompression::kTopK) {
    CHECK_GT(topk_density_, 0.0);
    CHECK_LE(topk_density_, 1.0);
  }
  if (compression_ != GradCompression::kNone) {
    // The error-feedback residual: zero-initialized (Payload::Allocate), one
    // float per parameter, carried across iterations.
    residual_ = Payload::Allocate(view_.size());
    quant_ = Payload::Allocate(view_.size());
  }
  mailbox_ = bus_->Register(Address{worker_, kSyncerPortBase + layer_index_});
  if (scheme_ == RuntimeScheme::kPsDense) {
    const int num_servers = coordinator_.cluster().num_servers;
    const int num_shards = coordinator_.cluster().shards_per_server;
    for (int s = 0; s < num_servers; ++s) {
      for (int shard = 0; shard < num_shards; ++shard) {
        std::vector<KvPairInfo> pairs = coordinator_.PairsOnShard(layer_index_, s, shard);
        if (pairs.empty()) {
          continue;
        }
        total_pairs_ += static_cast<int>(pairs.size());
        pairs_by_shard_.push_back(
            {coordinator_.cluster().ShardAddress(s, shard), std::move(pairs)});
      }
    }
  }
  if (scheme_ == RuntimeScheme::kSfb || scheme_ == RuntimeScheme::kOneBit) {
    CHECK_NOTNULL(fc_) << layer->name() << ": SFB/1-bit requires an FC layer";
  }
  if (scheme_ == RuntimeScheme::kSfb) {
    CHECK_NOTNULL(local_optimizer_);
  }
  if (scheme_ == RuntimeScheme::kRingAllreduce || scheme_ == RuntimeScheme::kTreeAllreduce) {
    const CollectiveAlgo algo = scheme_ == RuntimeScheme::kRingAllreduce
                                    ? CollectiveAlgo::kRing
                                    : CollectiveAlgo::kTree;
    collective_ = std::make_unique<CollectiveSyncer>(worker_, layer_index_, algo,
                                                     coordinator_, bus_, layer_,
                                                     local_optimizer_);
  }
}

void Syncer::MoveOut() {
  TraceSpan span("sync.move_out", "syncer", layer_index_);
  switch (scheme_) {
    case RuntimeScheme::kNone:
      break;
    case RuntimeScheme::kPsDense:
      // Stage straight into the wire slab; downstream the same slab is
      // referenced by every push chunk. Reuse is safe only while no receiver
      // holds a view (always true under BSP once the reply arrived; under
      // SSP a shard may still buffer last iteration's views).
      if (!staged_.valid() || staged_.size() != view_.size() || staged_.use_count() > 1) {
        staged_ = Payload::Allocate(view_.size());
      }
      view_.GatherGradSlice(0, staged_.data(), staged_.size());
      WireCopyStats::Add(staged_.size());
      break;
    case RuntimeScheme::kSfb: {
      std::vector<ParamBlock> params = layer_->Params();
      CHECK_EQ(params.size(), 2u);  // weight, bias
      const Tensor& bias_grad = *params[1].grad;
      sf_frame_ = SufficientFactorCodec::Encode(fc_->LastSufficientFactors(),
                                                bias_grad.data(), bias_grad.size());
      break;
    }
    case RuntimeScheme::kOneBit: {
      std::vector<ParamBlock> params = layer_->Params();
      const Tensor& bias_grad = *params[1].grad;
      onebit_frame_ = OneBitCodec::Encode(fc_->weight_grad(), &quantizer_,
                                          bias_grad.data(), bias_grad.size());
      break;
    }
    case RuntimeScheme::kRingAllreduce:
    case RuntimeScheme::kTreeAllreduce:
      collective_->MoveOut();
      break;
  }
}

void Syncer::Send(int64_t iter) {
  TraceSpan span("sync.send", "syncer", layer_index_);
  switch (scheme_) {
    case RuntimeScheme::kNone:
      break;
    case RuntimeScheme::kPsDense:
      SendPs(iter);
      break;
    case RuntimeScheme::kSfb:
      SendSfb(iter);
      break;
    case RuntimeScheme::kOneBit:
      SendOneBit(iter);
      break;
    case RuntimeScheme::kRingAllreduce:
    case RuntimeScheme::kTreeAllreduce:
      collective_->Send(iter);
      break;
  }
}

void Syncer::SendPs(int64_t iter) {
  WireCodec codec = WireCodec::kRawFloat;
  if (compression_ != GradCompression::kNone) {
    // Error feedback: quantize grad + residual, and let each pair's encoder
    // fold its slice's rounding error back into the residual. The hash seed
    // is a pure function of (layer, clock) — identical on every worker — and
    // each pair passes its flat layer offset as base_index, so the encoding
    // never depends on how the layer is striped across shards.
    simd::ReduceAdd(residual_.data(), staged_.data(), view_.size());
    std::swap(quant_, residual_);  // quant_ now holds grad + residual
    const uint32_t seed = QuantSeed(layer_index_, iter);
    push_frames_.clear();
    push_frames_.reserve(static_cast<size_t>(total_pairs_));
    for (const ShardDest& dest : pairs_by_shard_) {
      for (const KvPairInfo& pair : dest.pairs) {
        const float* q = quant_.data() + pair.offset;
        float* r = residual_.data() + pair.offset;
        switch (compression_) {
          case GradCompression::kFp16:
            codec = WireCodec::kFp16;
            push_frames_.push_back(
                Fp16Codec::EncodeSr(q, pair.length, seed, pair.offset, r, nullptr, 0));
            break;
          case GradCompression::kInt8:
            codec = WireCodec::kInt8;
            push_frames_.push_back(
                Int8Codec::EncodeSr(q, pair.length, seed, pair.offset, r, nullptr, 0));
            break;
          case GradCompression::kTopK: {
            codec = WireCodec::kTopK;
            const int64_t k = std::max<int64_t>(
                1, std::min<int64_t>(pair.length,
                                     static_cast<int64_t>(topk_density_ *
                                                          static_cast<double>(pair.length))));
            push_frames_.push_back(TopKCodec::Encode(q, pair.length, k, r, nullptr, 0));
            break;
          }
          case GradCompression::kNone:
            break;
        }
      }
    }
  }
  size_t frame = 0;
  for (const ShardDest& dest : pairs_by_shard_) {
    Message push;
    push.type = MessageType::kGradPush;
    push.from = Address{worker_, kSyncerPortBase + layer_index_};
    push.to = dest.address;
    push.layer = layer_index_;
    push.worker = worker_;
    push.iter = iter;
    push.codec = codec;
    push.chunks.reserve(dest.pairs.size());
    for (const KvPairInfo& pair : dest.pairs) {
      if (compression_ == GradCompression::kNone) {
        // Zero-copy: the chunk is a view into the staging slab.
        push.chunks.push_back({pair.offset, staged_.View(pair.offset, pair.length)});
      } else {
        push.chunks.push_back({pair.offset, push_frames_[frame++].View()});
      }
    }
    const Status status = bus_->Send(std::move(push));
    CHECK(status.ok()) << status.ToString();
  }
}

void Syncer::SendSfb(int64_t iter) {
  const int num_workers = coordinator_.cluster().num_workers;
  for (int peer = 0; peer < num_workers; ++peer) {
    if (peer == worker_) {
      continue;
    }
    Message sf;
    sf.type = MessageType::kSfBroadcast;
    sf.from = Address{worker_, kSyncerPortBase + layer_index_};
    sf.to = Address{peer, kSyncerPortBase + layer_index_};
    sf.layer = layer_index_;
    sf.worker = worker_;
    sf.iter = iter;
    sf.codec = WireCodec::kSufficientFactor;
    // Every peer's view references the one encoded frame: a P-1-way
    // broadcast of one slab.
    sf.chunks.push_back({0, sf_frame_.View()});
    const Status status = bus_->Send(std::move(sf));
    CHECK(status.ok()) << status.ToString();
  }
}

void Syncer::SendOneBit(int64_t iter) {
  Message push;
  push.type = MessageType::kOneBitPush;
  push.from = Address{worker_, kSyncerPortBase + layer_index_};
  push.to = coordinator_.cluster().ShardAddress(
      coordinator_.OneBitOwnerServer(layer_index_),
      coordinator_.OneBitOwnerShard(layer_index_));
  push.layer = layer_index_;
  push.worker = worker_;
  push.iter = iter;
  push.codec = WireCodec::kOneBit;
  push.chunks.push_back({0, onebit_frame_.View()});
  const Status status = bus_->Send(std::move(push));
  CHECK(status.ok()) << status.ToString();
}

void Syncer::Receive(int64_t iter) {
  TraceSpan span("sync.receive", "syncer", layer_index_);
  switch (scheme_) {
    case RuntimeScheme::kNone:
      break;
    case RuntimeScheme::kPsDense:
      ReceivePs();
      break;
    case RuntimeScheme::kSfb:
      ReceiveSfb(iter);
      break;
    case RuntimeScheme::kOneBit:
      ReceiveOneBit();
      break;
    case RuntimeScheme::kRingAllreduce:
    case RuntimeScheme::kTreeAllreduce:
      collective_->Receive(iter);
      break;
  }
}

void Syncer::ReceivePs() {
  int received = 0;
  while (received < total_pairs_) {
    std::optional<Message> message = mailbox_->Pop();
    if (!message.has_value()) {
      // Endpoint closed mid-iteration: this worker is being crash-simulated
      // (MessageBus::CloseEndpoints). Abandon the sync so the zombie job can
      // drain; the restarted incarnation replays this clock.
      LOG(Warning) << "worker " << worker_ << " layer " << layer_index_
                   << ": syncer mailbox closed mid-iteration; abandoning sync";
      return;
    }
    CHECK(message->type == MessageType::kParamReply);
    if (compression_ == GradCompression::kNone) {
      CHECK(message->codec == WireCodec::kRawFloat);
      for (const WireChunk& chunk : message->chunks) {
        // Move(CPU2GPU): the one staging copy on the receive side.
        view_.ScatterValueSlice(chunk.offset, chunk.view.data(), chunk.view.size());
        WireCopyStats::Add(chunk.view.size());
        ++received;
      }
    } else {
      // Compressed layers get binary16 round-to-nearest replies regardless
      // of the push codec (the reply is stateless; see docs/COMPRESSION.md).
      CHECK(message->codec == WireCodec::kFp16);
      Tensor dense;
      for (const WireChunk& chunk : message->chunks) {
        const Status decoded = Fp16Codec::DecodeDense(chunk.view, &dense);
        CHECK(decoded.ok()) << decoded.ToString();
        view_.ScatterValueSlice(chunk.offset, dense.data(), dense.size());
        ++received;
      }
    }
  }
}

void Syncer::ReceiveSfb(int64_t iter) {
  const int num_workers = coordinator_.cluster().num_workers;
  std::vector<PayloadView> frames(static_cast<size_t>(num_workers));
  frames[static_cast<size_t>(worker_)] = sf_frame_.View();
  int have = 1;

  auto frame_of = [](const Message& message) {
    CHECK(message.type == MessageType::kSfBroadcast);
    CHECK(message.codec == WireCodec::kSufficientFactor);
    CHECK_EQ(message.chunks.size(), 1u);
    return message.chunks[0].view;
  };

  // First drain anything deferred from a previous Receive that belongs to
  // this iteration (a peer may run at most one iteration ahead under BSP).
  std::vector<Message> still_deferred;
  for (Message& message : deferred_) {
    if (message.iter == iter) {
      frames[static_cast<size_t>(message.worker)] = frame_of(message);
      ++have;
    } else {
      still_deferred.push_back(std::move(message));
    }
  }
  deferred_ = std::move(still_deferred);

  while (have < num_workers) {
    std::optional<Message> message = mailbox_->Pop();
    if (!message.has_value()) {
      LOG(Warning) << "worker " << worker_ << " layer " << layer_index_
                   << ": syncer mailbox closed mid-iteration; abandoning sync";
      return;
    }
    if (message->iter != iter) {
      CHECK_GT(message->iter, iter) << "stale SF broadcast";
      deferred_.push_back(std::move(*message));
      continue;
    }
    frames[static_cast<size_t>(message->worker)] = frame_of(*message);
    ++have;
  }

  // Reconstruct the aggregate weight gradient in worker order (identical FP
  // operation order on every replica keeps parameters bitwise in sync).
  // Each worker's gradient is materialized separately and then added, which
  // matches the KV store's reduction of pre-summed dense pushes bit for bit
  // — so switching a layer between PS and SFB never changes the trajectory.
  std::vector<ParamBlock> params = layer_->Params();
  Tensor& weight = *params[0].value;
  Tensor& bias = *params[1].value;
  Tensor agg = Tensor::Zeros(weight.shape());
  Tensor scratch = Tensor::Zeros(weight.shape());
  std::vector<float> bias_agg(static_cast<size_t>(bias.size()), 0.0f);
  for (int w = 0; w < num_workers; ++w) {
    const PayloadView& frame = frames[static_cast<size_t>(w)];
    CHECK(frame.valid());
    const Status reconstructed = SufficientFactorCodec::DecodeReconstruct(frame, &scratch);
    CHECK(reconstructed.ok()) << reconstructed.ToString();
    Axpy(1.0f, scratch, &agg);
    StatusOr<SufficientFactorCodec::Frame> parsed = SufficientFactorCodec::Parse(frame);
    CHECK(parsed.ok()) << parsed.status().ToString();
    CHECK_EQ(parsed->bias.size(), static_cast<int64_t>(bias_agg.size()));
    const float* b = parsed->bias.data();
    for (size_t i = 0; i < bias_agg.size(); ++i) {
      bias_agg[i] += b[i];
    }
  }
  const float inv = 1.0f / static_cast<float>(num_workers);
  Scale(inv, &agg);
  for (float& b : bias_agg) {
    b *= inv;
  }
  const std::string key = "l" + std::to_string(layer_index_);
  local_optimizer_->Step(key + ".w", agg, &weight);
  local_optimizer_->StepSlice(key + ".b", bias_agg.data(), bias.data(), bias.size());
}

void Syncer::ReceiveOneBit() {
  std::optional<Message> message = mailbox_->Pop();
  if (!message.has_value()) {
    LOG(Warning) << "worker " << worker_ << " layer " << layer_index_
                 << ": syncer mailbox closed mid-iteration; abandoning sync";
    return;
  }
  CHECK(message->type == MessageType::kParamReply);
  CHECK(message->codec == WireCodec::kRawFloat);
  CHECK_EQ(message->chunks.size(), 1u);
  const PayloadView& values = message->chunks[0].view;
  CHECK_EQ(values.size(), view_.size());
  view_.ScatterValueSlice(0, values.data(), values.size());
  WireCopyStats::Add(values.size());
}

}  // namespace poseidon

// Behavioural tests for the cluster protocol simulator: single-node
// overheads, scaling shapes, WFBP's overlap benefit, HybComm's bandwidth
// savings, and the per-node traffic properties of Adam vs Poseidon.
#include <gtest/gtest.h>

#include "src/cluster/protocol_sim.h"
#include "src/cluster/system_config.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

ClusterSpec Cluster(int nodes, double gbps) {
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = gbps;
  return cluster;
}

TEST(ProtocolSimTest, SingleNodePoseidonHasLittleOverhead) {
  const ModelSpec model = MakeVgg19();
  const SimResult result = RunProtocolSimulation(model, PoseidonSystem(), Cluster(1, 40.0),
                                                 Engine::kCaffe);
  EXPECT_NEAR(result.speedup, 1.0, 0.05);
}

TEST(ProtocolSimTest, SingleNodeVanillaPsPaysMemcpyOverhead) {
  const ModelSpec model = MakeVgg19();
  const SimResult result =
      RunProtocolSimulation(model, CaffePlusPs(), Cluster(1, 40.0), Engine::kCaffe);
  // Caffe+PS on one node is measurably slower than unmodified Caffe
  // (paper: 21.3 vs 35.5 img/s); our memcpy model reproduces the direction.
  EXPECT_LT(result.speedup, 0.9);
}

TEST(ProtocolSimTest, PoseidonScalesNearLinearlyAt40GbE) {
  const ModelSpec model = MakeVgg19();
  const SimResult result = RunProtocolSimulation(model, PoseidonSystem(), Cluster(16, 40.0),
                                                 Engine::kCaffe);
  EXPECT_GT(result.speedup, 14.0);
  EXPECT_LE(result.speedup, 16.05);
}

TEST(ProtocolSimTest, WfbpBeatsSequentialPs) {
  const ModelSpec model = MakeVgg19();
  const SimResult ps =
      RunProtocolSimulation(model, CaffePlusPs(), Cluster(8, 40.0), Engine::kCaffe);
  const SimResult wfbp =
      RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(8, 40.0), Engine::kCaffe);
  EXPECT_GT(wfbp.speedup, ps.speedup * 1.1);
}

TEST(ProtocolSimTest, HybCommHelpsUnderLimitedBandwidth) {
  const ModelSpec model = MakeVgg19();
  const SimResult wfbp =
      RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(16, 10.0), Engine::kCaffe);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(16, 10.0), Engine::kCaffe);
  EXPECT_GT(poseidon.speedup, wfbp.speedup * 1.3);
  EXPECT_GT(poseidon.speedup, 13.0);  // paper: near-linear at 10 GbE
}

TEST(ProtocolSimTest, PoseidonNeverWorseThanPurePs) {
  // HybComm falls back to PS whenever SFB would cost more, so Poseidon's
  // speedup must dominate Caffe+WFBP across node counts (within noise).
  const ModelSpec model = MakeGoogLeNet();
  for (int nodes : {2, 4, 8, 16}) {
    const SimResult wfbp =
        RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(nodes, 10.0), Engine::kCaffe);
    const SimResult poseidon =
        RunProtocolSimulation(model, PoseidonSystem(), Cluster(nodes, 10.0), Engine::kCaffe);
    EXPECT_GE(poseidon.speedup, wfbp.speedup * 0.999) << "nodes=" << nodes;
  }
}

TEST(ProtocolSimTest, GoogLeNetAt16NodesReducesToPs) {
  // Paper §5.2: large batch (128) and a thin FC layer make SFB lose at 16
  // nodes, so Poseidon chooses PS for the classifier.
  const ModelSpec model = MakeGoogLeNet();
  const SimResult result = RunProtocolSimulation(model, PoseidonSystem(), Cluster(16, 10.0),
                                                 Engine::kCaffe);
  EXPECT_EQ(result.layer_schemes.at("loss3_classifier"), "PS");
}

TEST(ProtocolSimTest, Vgg19FcLayersUseSfb) {
  const ModelSpec model = MakeVgg19();
  const SimResult result =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 40.0), Engine::kCaffe);
  EXPECT_EQ(result.layer_schemes.at("fc6"), "SFB");
  EXPECT_EQ(result.layer_schemes.at("fc7"), "SFB");
  EXPECT_EQ(result.layer_schemes.at("conv5_4"), "PS");
}

TEST(ProtocolSimTest, TfNativeStallsMoreThanPoseidon) {
  const ModelSpec model = MakeVgg19();
  const SimResult tf =
      RunProtocolSimulation(model, TfNative(), Cluster(8, 40.0), Engine::kTensorFlow);
  const SimResult tf_wfbp =
      RunProtocolSimulation(model, TfPlusWfbp(), Cluster(8, 40.0), Engine::kTensorFlow);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 40.0), Engine::kTensorFlow);
  EXPECT_LT(tf.gpu_busy_frac, tf_wfbp.gpu_busy_frac);
  EXPECT_LT(tf_wfbp.gpu_busy_frac, poseidon.gpu_busy_frac + 1e-9);
  EXPECT_GT(poseidon.gpu_busy_frac, 0.85);
}

TEST(ProtocolSimTest, TfNegativeScalingOnVgg22K) {
  // Paper §1/§5.1: distributed TF on VGG19-22K can be slower than a single
  // machine because the 21841-way FC tensor pins one PS shard.
  const ModelSpec model = MakeVgg19_22K();
  const SimResult tf =
      RunProtocolSimulation(model, TfNative(), Cluster(32, 40.0), Engine::kTensorFlow);
  EXPECT_LT(tf.speedup, 8.0);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(32, 40.0), Engine::kTensorFlow);
  EXPECT_GT(poseidon.speedup, 25.0);
}

TEST(ProtocolSimTest, AdamTrafficIsImbalanced) {
  const ModelSpec model = MakeVgg19();
  const SimResult adam =
      RunProtocolSimulation(model, AdamSystem(), Cluster(8, 40.0), Engine::kTensorFlow);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 40.0), Engine::kTensorFlow);
  auto imbalance = [](const std::vector<double>& tx) {
    const double max = *std::max_element(tx.begin(), tx.end());
    const double min = *std::min_element(tx.begin(), tx.end());
    return max / std::max(min, 1e-9);
  };
  EXPECT_GT(imbalance(adam.tx_gbits_per_iter), 3.0);
  EXPECT_LT(imbalance(poseidon.tx_gbits_per_iter), 1.3);
  EXPECT_LT(poseidon.iter_time_s, adam.iter_time_s);
}

TEST(ProtocolSimTest, DeterministicAcrossRuns) {
  const ModelSpec model = MakeVgg19();
  const SimResult a =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 10.0), Engine::kCaffe);
  const SimResult b =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 10.0), Engine::kCaffe);
  EXPECT_DOUBLE_EQ(a.iter_time_s, b.iter_time_s);
  EXPECT_EQ(a.tx_gbits_per_iter, b.tx_gbits_per_iter);
}

TEST(ProtocolSimTest, SpeedupMonotonicInBandwidthForPs) {
  const ModelSpec model = MakeVgg19();
  double prev = 0.0;
  for (double gbps : {10.0, 20.0, 30.0, 40.0}) {
    const SimResult result =
        RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(16, gbps), Engine::kCaffe);
    EXPECT_GE(result.speedup, prev - 1e-9) << "gbps=" << gbps;
    prev = result.speedup;
  }
}

TEST(ProtocolSimTest, MultiGpuNodeAggregatesLocally) {
  ClusterSpec cluster = Cluster(4, 40.0);
  cluster.gpus_per_node = 8;
  const ModelSpec model = MakeGoogLeNet();
  const SimResult result =
      RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe);
  // Paper: 32x on 4 x p2.8xlarge (32 GPUs) for GoogLeNet; allow a generous
  // band around linear scaling.
  EXPECT_GT(result.speedup, 24.0);
  EXPECT_LE(result.speedup, 32.5);
}

double TotalTxGbits(const SimResult& result) {
  double total = 0.0;
  for (double gbits : result.tx_gbits_per_iter) {
    total += gbits;
  }
  return total;
}

TEST(ProtocolSimTest, CompressedPsCutsWireTraffic) {
  // The simulator's byte accounting must mirror the runtime codecs: fp16
  // roughly halves PS traffic (small layers stay raw under the size gate,
  // and frame headers don't shrink), int8 cuts deeper, top-k at 1% deeper
  // still. Scheme labels expose the per-layer codec choice.
  const ModelSpec model = MakeVgg19();
  const ClusterSpec cluster = Cluster(8, 40.0);
  const SimResult raw =
      RunProtocolSimulation(model, CaffePlusWfbp(), cluster, Engine::kCaffe);
  const SimResult fp16 = RunProtocolSimulation(
      model, CompressedPsSystem(GradCompression::kFp16), cluster, Engine::kCaffe);
  const SimResult int8 = RunProtocolSimulation(
      model, CompressedPsSystem(GradCompression::kInt8), cluster, Engine::kCaffe);
  const SimResult topk = RunProtocolSimulation(
      model, CompressedPsSystem(GradCompression::kTopK, 0.01), cluster, Engine::kCaffe);

  EXPECT_LT(TotalTxGbits(fp16), 0.6 * TotalTxGbits(raw));
  EXPECT_LT(TotalTxGbits(int8), TotalTxGbits(fp16));
  EXPECT_LT(TotalTxGbits(topk), TotalTxGbits(int8));

  EXPECT_EQ(fp16.layer_schemes.at("fc6"), "PS+fp16");
  EXPECT_EQ(int8.layer_schemes.at("fc6"), "PS+int8");
  EXPECT_EQ(topk.layer_schemes.at("fc6"), "PS+topk");
  // conv1_1 (1728 params) sits under kCompressionMinFloats and stays raw.
  EXPECT_EQ(fp16.layer_schemes.at("conv1_1"), "PS");

  // At 40 GbE WFBP already hides the wire, so compression must not hurt; on
  // a starved 5 GbE fabric (comm-bound) the byte savings must win end to end
  // despite the extra CPU quantization passes.
  EXPECT_LE(fp16.iter_time_s, raw.iter_time_s + 1e-9);
  const ClusterSpec starved = Cluster(8, 5.0);
  const SimResult raw_slow =
      RunProtocolSimulation(model, CaffePlusWfbp(), starved, Engine::kCaffe);
  const SimResult fp16_slow = RunProtocolSimulation(
      model, CompressedPsSystem(GradCompression::kFp16), starved, Engine::kCaffe);
  EXPECT_LT(fp16_slow.iter_time_s, 0.7 * raw_slow.iter_time_s);
}

TEST(ProtocolSimTest, AutoCompressionJoinsHybridCollectiveChooser) {
  const ModelSpec model = MakeVgg19();
  const ClusterSpec cluster = Cluster(16, 10.0);
  const SimResult plain = RunProtocolSimulation(model, HybridCollectiveSystem(), cluster,
                                                Engine::kCaffe);
  SystemConfig compressed = HybridCollectiveSystem();
  compressed.auto_ps_compression = true;
  const SimResult mixed =
      RunProtocolSimulation(model, compressed, cluster, Engine::kCaffe);

  int compressed_layers = 0;
  for (const auto& [layer, scheme] : mixed.layer_schemes) {
    if (scheme.find('+') != std::string::npos) {
      ++compressed_layers;
    }
  }
  EXPECT_GT(compressed_layers, 0)
      << "the byte-basis chooser never picked a compressed PS row";
  EXPECT_LT(TotalTxGbits(mixed), TotalTxGbits(plain));
}

TEST(ProtocolSimTest, CompressedRunsStayDeterministic) {
  const ModelSpec model = MakeVgg19();
  const SystemConfig system = CompressedPsSystem(GradCompression::kInt8);
  const SimResult a =
      RunProtocolSimulation(model, system, Cluster(8, 10.0), Engine::kCaffe);
  const SimResult b =
      RunProtocolSimulation(model, system, Cluster(8, 10.0), Engine::kCaffe);
  EXPECT_DOUBLE_EQ(a.iter_time_s, b.iter_time_s);
  EXPECT_EQ(a.tx_gbits_per_iter, b.tx_gbits_per_iter);
}

}  // namespace
}  // namespace poseidon

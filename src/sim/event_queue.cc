#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace poseidon {

void EventQueue::Push(double time, Callback callback) {
  CHECK_GE(time, 0.0);
  heap_.push(Event{time, next_seq_++, std::move(callback)});
}

double EventQueue::PeekTime() const {
  CHECK(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Callback EventQueue::Pop(double* time) {
  CHECK(!heap_.empty());
  // priority_queue::top() is const; the callback must be moved out via a
  // const_cast-free copy of the handle. Event is cheap to move except the
  // std::function, so copy-then-pop is acceptable here; use a move through
  // a mutable reference obtained before pop.
  Event event = heap_.top();
  heap_.pop();
  *time = event.time;
  return std::move(event.callback);
}

void EventQueue::Clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
  next_seq_ = 0;
}

}  // namespace poseidon

// Quickstart: distributed data-parallel training with Poseidon in ~40 lines.
//
// Builds a small MLP, trains it on 2 workers + 2 colocated KV-store shards
// with wait-free backpropagation and HybComm (the coordinator picks PS or
// SFB per layer), and prints the loss curve plus the schemes chosen.
//
//   ./quickstart
#include <cstdio>

#include "src/nn/builders.h"
#include "src/poseidon/trainer.h"

int main() {
  using namespace poseidon;

  // 1. Synthetic 4-class image dataset (deterministic).
  DatasetConfig data;
  data.num_classes = 4;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 256;
  data.noise_stddev = 0.4f;
  SyntheticDataset dataset(data);

  // 2. A deterministic network factory: every worker replica starts
  //    identical (same seed).
  NetworkFactory factory = [] {
    Rng rng(7);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/64, /*hidden_layers=*/2,
                    /*classes=*/4, rng);
  };

  // 3. Cluster shape: 2 workers, each also hosting a KV-store shard.
  TrainerOptions options;
  options.num_workers = 2;
  options.num_servers = 2;
  options.batch_per_worker = 16;
  options.sgd = {.learning_rate = 0.05f, .momentum = 0.9f};
  options.fc_policy = FcSyncPolicy::kHybrid;  // Algorithm 1 per layer

  PoseidonTrainer trainer(factory, options);

  // What did HybComm decide for each layer?
  std::printf("Per-layer communication schemes (batch=%d, P=2):\n",
              options.batch_per_worker);
  for (int l = 0; l < trainer.coordinator().num_layers(); ++l) {
    const LayerInfo& info = trainer.coordinator().layer(l);
    if (info.total_floats == 0) {
      continue;
    }
    std::printf("  %-8s %-5s -> %s\n", info.name.c_str(), LayerTypeName(info.type),
                RuntimeSchemeName(trainer.schemes()[static_cast<size_t>(l)]));
  }

  // 4. Train (Algorithm 2 runs inside: forward, per-layer backward + sync
  //    on the client library's thread pool, BSP barrier).
  std::printf("\nTraining 2 workers x batch 16:\n");
  const auto stats = trainer.Train(dataset, 50);
  for (size_t i = 0; i < stats.size(); i += 10) {
    std::printf("  iter %3lld  loss %.3f  acc %.2f\n",
                static_cast<long long>(stats[i].iter), stats[i].mean_loss,
                stats[i].mean_accuracy);
  }
  const LossResult test = trainer.EvaluateTest(dataset);
  std::printf("\nTest accuracy: %.1f%%\n", 100.0 * test.accuracy);
  return 0;
}

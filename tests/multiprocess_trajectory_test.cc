// The tentpole acceptance test: a real fork/exec Poseidon cluster — one
// coordinator process plus one OS process per bus node, spawned through
// tools/poseidon_launch and talking only over sockets — must follow a
// bitwise-identical parameter trajectory to the single-process in-memory
// trainer. Mean losses are reassembled from the workers' hexfloat logs in
// the trainer's summation order; final parameters come from worker 0's
// checkpoint. A cluster that hangs, crashes, or drifts by one ULP fails.
//
// CMake exports POSEIDON_LAUNCH_BIN (the poseidon_launch target path) into
// this test's environment; runs land in fresh TEST_TMPDIR directories and
// every child's stderr tail is attached to the assertion message on failure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/testing/harness.h"
#include "tests/testing/subprocess.h"

namespace poseidon {
namespace {

using testing::CaptureTrajectory;
using testing::FinalParamsFromRun;
using testing::LaunchRun;
using testing::MakeTempDir;
using testing::MeanLossesFromRun;
using testing::RunPoseidonLaunch;
using testing::SmallTrainerOptions;
using testing::Trajectory;

constexpr int kIterations = 6;

// Launches a cluster with the given shape flags and compares its artifacts
// against the in-process oracle, bitwise. Returns the run log so callers can
// make additional assertions about what the cluster reported.
std::string LaunchAndExpectOracle(std::vector<std::string> args, int workers,
                                  int servers, int shards, int staleness,
                                  FcSyncPolicy policy) {
  const std::string dir = MakeTempDir("mp_trajectory");
  args.push_back("--workers=" + std::to_string(workers));
  args.push_back("--servers=" + std::to_string(servers));
  args.push_back("--shards=" + std::to_string(shards));
  args.push_back("--staleness=" + std::to_string(staleness));
  args.push_back("--iters=" + std::to_string(kIterations));
  args.push_back("--out=" + dir);
  const LaunchRun run = RunPoseidonLaunch(dir, args);
  EXPECT_EQ(run.exit_code, 0) << "cluster failed:\n" << run.log;
  if (run.exit_code != 0) {
    return run.log;
  }

  const Trajectory oracle = CaptureTrajectory(
      SmallTrainerOptions(workers, servers, shards, staleness, policy),
      kIterations);
  const std::vector<double> mean = MeanLossesFromRun(dir, workers, kIterations);
  EXPECT_EQ(mean.size(), oracle.mean_losses.size());
  for (size_t i = 0; i < mean.size() && i < oracle.mean_losses.size(); ++i) {
    EXPECT_EQ(mean[i], oracle.mean_losses[i])
        << "mean loss diverged at iteration " << i << "\n"
        << run.log;
  }
  // Every worker replica must converge to the same parameters; compare each
  // against the oracle's worker-0 flattening.
  for (int w = 0; w < workers; ++w) {
    const std::vector<float> params = FinalParamsFromRun(dir, w);
    EXPECT_EQ(params.size(), oracle.final_params.size());
    if (params.size() != oracle.final_params.size()) {
      continue;
    }
    int mismatches = 0;
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i] != oracle.final_params[i]) {
        ++mismatches;
      }
    }
    EXPECT_EQ(mismatches, 0)
        << "worker " << w << " drifted in " << mismatches << " of "
        << params.size() << " floats\n"
        << run.log;
  }
  return run.log;
}

TEST(MultiprocessTrajectoryTest, TcpBspClusterMatchesInProcessBitwise) {
  LaunchAndExpectOracle({"--transport=tcp", "--policy=dense"},
                        /*workers=*/2, /*servers=*/2, /*shards=*/2,
                        /*staleness=*/0, FcSyncPolicy::kDense);
}

TEST(MultiprocessTrajectoryTest, ShardedSspS0ClusterMatchesInProcess) {
  // SSP with staleness 0 must remain bitwise BSP even when the parameter
  // space is striped over four shards per server and crosses real sockets.
  LaunchAndExpectOracle({"--transport=tcp", "--policy=dense"},
                        /*workers=*/2, /*servers=*/2, /*shards=*/4,
                        /*staleness=*/0, FcSyncPolicy::kDense);
}

TEST(MultiprocessTrajectoryTest, UnixColocatedClusterMatchesInProcess) {
  LaunchAndExpectOracle({"--transport=unix", "--policy=dense", "--colocate"},
                        /*workers=*/2, /*servers=*/2, /*shards=*/2,
                        /*staleness=*/0, FcSyncPolicy::kDense);
}

TEST(MultiprocessTrajectoryTest, BatchedEgressClusterMatchesInProcess) {
  LaunchAndExpectOracle({"--transport=tcp", "--policy=dense", "--batch-egress"},
                        /*workers=*/2, /*servers=*/2, /*shards=*/2,
                        /*staleness=*/0, FcSyncPolicy::kDense);
}

TEST(MultiprocessTrajectoryTest, LossySocketsPreserveTheTrajectory) {
  // Record-level weather on every process's egress: the cluster must train
  // to the exact clean trajectory, and the run must prove weather actually
  // happened (each node logs its shim counters at teardown; the tails of
  // those logs ride in run.log).
  const std::string log = LaunchAndExpectOracle(
      {"--transport=tcp", "--policy=dense", "--shim-seed=11",
       "--shim-drop=0.05", "--shim-dup=0.05", "--shim-delay=0.1"},
      /*workers=*/2, /*servers=*/2, /*shards=*/2,
      /*staleness=*/0, FcSyncPolicy::kDense);
  EXPECT_NE(log.find("shim: faults{"), std::string::npos)
      << "no process reported shim counters — the lossy run proved nothing:\n"
      << log;
}

TEST(MultiprocessTrajectoryTest, LauncherFailsLoudlyOnBadShape) {
  // A shape the parser rejects must exit nonzero quickly — the CI smoke
  // job's guarantee that a misconfigured cluster can never hang.
  const std::string dir = MakeTempDir("mp_badshape");
  const LaunchRun run =
      RunPoseidonLaunch(dir, {"--workers=0", "--out=" + dir},
                        /*timeout_ms=*/30000);
  EXPECT_NE(run.exit_code, 0);
}

}  // namespace
}  // namespace poseidon

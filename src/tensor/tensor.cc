#include "src/tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace poseidon {
namespace {

int64_t ElementCount(const std::vector<int64_t>& shape) {
  int64_t count = 1;
  for (int64_t d : shape) {
    CHECK_GT(d, 0) << "tensor dimensions must be positive";
    count *= d;
  }
  return count;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  CHECK(!shape_.empty());
  CHECK_LE(shape_.size(), 4u);
  data_.assign(static_cast<size_t>(ElementCount(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::RandomHe(std::vector<int64_t> shape, int64_t fan_in, Rng& rng) {
  CHECK_GT(fan_in, 0);
  Tensor t(std::move(shape));
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng.NextGaussian() * stddev;
  }
  return t;
}

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng.NextUniform(lo, hi);
  }
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  CHECK_EQ(t.size(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  Tensor t(std::move(new_shape));
  CHECK_EQ(t.size(), size()) << "reshape must preserve element count";
  std::copy(data_.begin(), data_.end(), t.data());
  return t;
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    out << (i == 0 ? "" : ",") << shape_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace poseidon

/// \file
/// Live loopback socket-bandwidth probe for the bench harnesses.
///
/// The figure benches sweep *modeled* NIC bandwidths through the protocol
/// simulator; this probe measures what the real socket transport actually
/// moves between two processes' buses on this machine (loopback TCP or a
/// Unix-domain socket), pumping raw-float wire frames through the same
/// SocketTransport path the multi-process cluster uses. Benches run it when
/// `--transport=tcp|unix` is given, print the measurement next to the
/// modeled sweep, and record it into their BenchRecord so the perf
/// trajectory gains a real-network datapoint (`BENCH_micro.json` carries
/// both variants unconditionally).
#ifndef POSEIDON_SRC_TRANSPORT_SOCKET_BENCH_H_
#define POSEIDON_SRC_TRANSPORT_SOCKET_BENCH_H_

#include <cstdint>

#include "src/common/status.h"

namespace poseidon {

struct SocketBandwidthOptions {
  /// AF_UNIX stream sockets instead of loopback TCP.
  bool unix_sockets = false;
  /// Floats per frame (1 << 18 = 1 MiB payload, a large dense layer chunk).
  int64_t payload_floats = 1 << 18;
  /// Timed frames pumped sender -> receiver.
  int frames = 48;
  /// Untimed frames first (connection + slab warmup).
  int warmup_frames = 8;
};

struct SocketBandwidthResult {
  /// Training payload bits over the send-to-last-pop wall-clock window.
  double payload_gbps = 0.0;
  /// Same window counted in actual stream bytes (wire frame headers + the
  /// 8-byte record header included).
  double wire_gbps = 0.0;
  int64_t payload_bytes = 0;
  int64_t wire_bytes = 0;
  double seconds = 0.0;
};

/// Stands up a two-process SocketTransport pair on this host, streams
/// `frames` raw-float kGradPush frames through it, and reports the achieved
/// bandwidth. Every byte crosses a real socket (the two buses live in one
/// process, but node 0 -> node 1 is never local to either transport).
StatusOr<SocketBandwidthResult> MeasureSocketBandwidth(
    const SocketBandwidthOptions& options);

struct BenchArgs;
class BenchRecord;

/// Bench-harness convenience: no-op (returns 0) unless the user passed
/// `--transport=tcp|unix`; otherwise runs the probe for that backend, prints
/// the measurement, appends `socket_payload_gbps` / `socket_wire_gbps` to
/// `record`, and returns the payload Gb/s so the caller can sweep it as an
/// extra bandwidth point. Probe failures warn and return 0 — the modeled
/// sweep outranks the live datapoint.
double MeasureTransportForBench(const BenchArgs& args, BenchRecord* record);

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_SOCKET_BENCH_H_

/// \file
/// The per-process runtime of a multi-process Poseidon cluster: one
/// ClusterNode hosts this process's slice of the bus node space — any subset
/// of worker replicas and KV servers — over a SocketTransport, and drives the
/// exact worker-loop arithmetic of PoseidonTrainer::RunWorkerLoop.
///
/// Every process constructs the full deterministic workload (dataset +
/// replica factory, src/poseidon/workloads.h) and the full Coordinator from
/// the shared cluster shape, then instantiates only the roles whose bus node
/// it owns. Training math never sees the placement: the trajectory of a
/// spawned N-process cluster is bitwise identical to the in-process trainer
/// (tests/multiprocess_trajectory_test.cc holds this as an oracle).
///
/// Worker results are written to `out_dir`:
///   worker_<w>_losses.txt — one line per iteration, `<iter> <loss> <acc>`
///     with doubles in C hexfloat (%a) so comparisons are bitwise;
///   worker_<w>.ckpt       — final replica parameters (SaveCheckpoint).
#ifndef POSEIDON_SRC_POSEIDON_CLUSTER_NODE_H_
#define POSEIDON_SRC_POSEIDON_CLUSTER_NODE_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/poseidon/trainer.h"
#include "src/transport/cluster_launcher.h"
#include "src/transport/socket_transport.h"

namespace poseidon {

/// Everything one process needs to join a cluster. The trainer/workload
/// fields must be identical across all processes (they are derived from the
/// same command line by tools/poseidon_launch); only `process` and
/// `transport.self` differ.
struct ClusterNodeConfig {
  /// Cluster shape + hyperparameters. Fault injection, crash plans and
  /// failure detection are in-process-trainer features and must be off;
  /// `shards_per_server` must be explicit (>= 1) — auto-sharding would
  /// require every process to agree on the resolved count.
  TrainerOptions trainer;
  /// Hidden layers of the canonical TinyMlp workload (workloads.h).
  int hidden_layers = 2;
  /// Iterations to train (iter 0 .. iterations-1).
  int iterations = 6;
  /// This process's index (== transport.self).
  int process = 0;
  /// Socket mesh: endpoints for every process and the node -> process map.
  SocketTransportOptions transport;
  /// Directory for worker losses + final checkpoints (must exist). Only
  /// worker-hosting processes write.
  std::string out_dir;
  int rendezvous_timeout_ms = 60000;
  int shutdown_timeout_ms = 300000;
};

/// One cluster member. Construct, then Run() once; Run blocks until the
/// whole cluster shuts down (or a deadline/transport failure aborts it).
class ClusterNode {
 public:
  explicit ClusterNode(ClusterNodeConfig config);
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Joins the cluster, trains, writes results, tears down. Non-OK on
  /// rendezvous/shutdown deadline or transport failure — the caller should
  /// exit nonzero so the launcher kills the rest of the cluster.
  Status Run();

  /// Post-Run() snapshots (all-zero before Run completes): what the lossy
  /// shim injected on this process's egress, and what the bus's wire-ingress
  /// sequencing layer observed (dedup / reorder / dropped replies).
  FaultCountersSnapshot shim_counters() const { return shim_counters_; }
  FaultCountersSnapshot wire_counters() const { return wire_counters_; }

 private:
  Status RunWorker(int w);
  Status WriteWorkerResults(int w);

  const ClusterNodeConfig config_;

  std::unique_ptr<Network> init_net_;
  std::unique_ptr<MessageBus> bus_;
  std::shared_ptr<SocketTransport> transport_;
  std::unique_ptr<ClusterControl> control_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<RuntimeScheme> schemes_;

  std::vector<int> local_workers_;               // worker ids hosted here
  std::vector<int> local_servers_;               // server ids hosted here
  std::vector<std::unique_ptr<Network>> worker_nets_;     // by local index
  std::vector<std::unique_ptr<ClientLibrary>> clients_;   // by local index
  std::vector<std::unique_ptr<KvServer>> servers_;        // by local index

  // Per local worker, per iteration.
  std::vector<std::vector<double>> losses_;
  std::vector<std::vector<double>> accuracies_;

  FaultCountersSnapshot shim_counters_;
  FaultCountersSnapshot wire_counters_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_CLUSTER_NODE_H_

// Regenerates Figure 6: throughput speedup vs number of nodes for
// Inception-V3, VGG19 and VGG19-22K with the TensorFlow engine at 40 GbE,
// comparing native distributed TF (per-tensor sharding, fetch at iteration
// start, gRPC transport), TF+WFBP (Poseidon's PS with overlap) and full
// Poseidon.
//
// Expected shape (paper): Poseidon ~31.5x on Inception-V3 at 32 nodes vs
// ~20x for TF; TF fails to scale on the VGG variants (big dense tensors pin
// single shards) while Poseidon stays near-linear.
#include <cstdio>

#include "src/models/zoo.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

void Run() {
  const std::vector<int> nodes = {1, 2, 4, 8, 16, 32};
  const std::vector<SystemConfig> systems = {TfNative(), TfPlusWfbp(), PoseidonSystem()};
  for (const char* name : {"inception-v3", "vgg19", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    const auto results = RunScalingSweep(model, systems, nodes, /*gbps=*/40.0,
                                         Engine::kTensorFlow);
    std::printf("%s\n",
                FormatSpeedupTable(
                    "Fig 6: " + model.name + " (TensorFlow engine, 40 GbE)", results)
                    .c_str());
  }
}

}  // namespace
}  // namespace poseidon

int main() {
  poseidon::Run();
  return 0;
}

/// \file
/// Refcounted arena payloads for the zero-copy wire layer.
///
/// A Payload is one contiguous slab of floats with shared ownership; a
/// PayloadView is a read-only span into a slab that keeps the slab alive.
/// Wire messages carry views, never owning float vectors, so
///   * a broadcast shares one slab across every receiver,
///   * a shard-coalesced push references the sender's staging slab without
///     copying per KV pair, and
///   * a parameter reply under BSP aliases the shard's live parameter slab
///     end to end (the clock protocol guarantees the worker finishes reading
///     before the slab can change; see docs/WIRE_FORMAT.md for the aliasing
///     safety rules).
///
/// The slab element type is the float word (4 bytes). Codecs that carry
/// non-float data (the 1-bit sign words, frame headers) bit-cast it into
/// float words with memcpy on both sides, so no float operation ever touches
/// those words and the bit patterns survive the trip exactly.
#ifndef POSEIDON_SRC_TRANSPORT_PAYLOAD_H_
#define POSEIDON_SRC_TRANSPORT_PAYLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace poseidon {

class PayloadView;

namespace internal {

/// The backing store of a Payload: a fixed-size float slab whose base
/// address is 64-byte aligned (one cache line; also the widest vector
/// register the SIMD kernels in src/simd use). Alignment is a performance
/// property, not a correctness requirement — the kernels use unaligned
/// loads — but aligned slabs keep 8-lane blocks from straddling cache
/// lines on the wire staging path.
class AlignedSlab {
 public:
  /// Allocates a zero-initialized slab of `floats` words.
  explicit AlignedSlab(int64_t floats);
  ~AlignedSlab();
  AlignedSlab(const AlignedSlab&) = delete;
  AlignedSlab& operator=(const AlignedSlab&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t size() const { return size_; }

 private:
  float* data_ = nullptr;
  int64_t size_ = 0;
};

}  // namespace internal

/// Process-wide counters of wire-path float staging copies. The zero-copy
/// refactor's acceptance metric: every copy of gradient/parameter floats on
/// the Move/Send/Receive path calls Add() once, so benches can report copies
/// and floats moved per iteration (see bench/micro_benchmarks.cc).
///
/// Backed by MetricsRegistry::Default() counters "wire.copied_floats" and
/// "wire.copies"; this facade keeps existing call sites and gives the
/// metrics JSON the same numbers for free.
class WireCopyStats {
 public:
  /// Records one staging copy of `floats` float words.
  static void Add(int64_t floats);
  /// Total float words copied since the last Reset.
  static int64_t Floats();
  /// Number of staging copies since the last Reset.
  static int64_t Copies();
  /// Zeroes both counters.
  static void Reset();
};

/// A refcounted slab of `size()` floats. Cheap to copy (shared ownership);
/// the backing store lives until the last Payload or PayloadView drops it.
class Payload {
 public:
  Payload() = default;

  /// Slab base alignment in bytes. Payload::data() of a valid non-empty
  /// payload is always aligned to this.
  static constexpr int64_t kAlignment = 64;

  /// A fresh zero-initialized slab of `floats` words.
  static Payload Allocate(int64_t floats);
  /// Copies an existing vector into a fresh aligned slab.
  static Payload FromVector(std::vector<float> values);

  bool valid() const { return slab_ != nullptr; }
  int64_t size() const;
  float* data();
  const float* data() const;

  /// Slab reference count (this handle plus all live views and copies).
  /// Used to decide whether a staging slab may be reused in place: a sole
  /// owner can overwrite, otherwise a receiver may still be reading and a
  /// fresh slab must be allocated.
  long use_count() const { return slab_.use_count(); }

  /// View of the whole slab.
  PayloadView View() const;
  /// View of [offset, offset + length). CHECKs bounds.
  PayloadView View(int64_t offset, int64_t length) const;

 private:
  std::shared_ptr<internal::AlignedSlab> slab_;
};

/// A read-only span into a Payload slab. Holds a reference on the slab, so a
/// view outliving the sending Payload handle is safe.
class PayloadView {
 public:
  PayloadView() = default;

  bool valid() const { return slab_ != nullptr; }
  int64_t size() const { return length_; }
  const float* data() const;

  /// Sub-span [offset, offset + length) of this view. CHECKs bounds.
  PayloadView Sub(int64_t offset, int64_t length) const;

  /// Identity of the backing slab, for zero-copy aliasing assertions in
  /// tests (two views into the same slab return the same id).
  const void* slab_id() const { return slab_.get(); }

 private:
  friend class Payload;
  std::shared_ptr<const internal::AlignedSlab> slab_;
  int64_t offset_ = 0;
  int64_t length_ = 0;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_PAYLOAD_H_

/// \file
/// PoseidonTrainer: end-to-end distributed data-parallel training inside one
/// process — W worker threads each driving an identical network replica
/// through paper Algorithm 2, S KV-store shard threads, and a coordinator —
/// wired together by the in-process message bus.
///
/// This is the executable counterpart of the paper's §4: it runs real
/// gradients through the real protocols (dense PS, SFB, HybComm, 1-bit), so
/// statistical experiments (Fig 9b, Fig 11) and BSP-consistency tests measure
/// the true algorithms rather than a model of them.
#ifndef POSEIDON_SRC_POSEIDON_TRAINER_H_
#define POSEIDON_SRC_POSEIDON_TRAINER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/nn/builders.h"
#include "src/nn/dataset.h"
#include "src/nn/network.h"
#include "src/nn/sgd.h"
#include "src/poseidon/checkpoint.h"
#include "src/poseidon/client_library.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/failure_detector.h"
#include "src/poseidon/kv_store.h"
#include "src/poseidon/runtime_scheme.h"
#include "src/planner/comm_plan.h"
#include "src/planner/replanner.h"
#include "src/transport/bus.h"

namespace poseidon {

/// Builds one network replica. Called once per worker plus once for server
/// initialization; must be deterministic so all replicas start identical.
using NetworkFactory = std::function<std::unique_ptr<Network>()>;

/// A test-injected worker crash: during iteration `iter`, worker `worker`
/// walks `layers_before_crash` backward steps (scheduling their syncs), then
/// dies without completing the iteration — no WaitAll, no cleanup, beats
/// cease. The failure detector notices and the trainer's recovery manager
/// restarts the worker from its latest checkpoint (docs/FAULT_TOLERANCE.md).
struct CrashPlan {
  int worker = -1;
  int64_t iter = -1;
  /// Backward steps taken before dying: 0 = before any push of the
  /// iteration; num_layers = after every push (crash in the receive phase).
  int layers_before_crash = 0;

  bool active() const { return worker >= 0 && iter >= 0; }
};

/// How the trainer picks its communication configuration.
enum class TrainerPlanMode {
  /// The paper's sequential decisions (fc_policy + ps_compression +
  /// shards_per_server), resolved through the planner's paper mode — bitwise
  /// identical to the pre-planner trainer.
  kPaper,
  /// Joint CommPlanner search over scheme x shards x codec x batching; the
  /// resulting plan supersedes fc_policy / ps_compression / shards_per_server
  /// / batch_egress.
  kAuto,
  /// Adopt a caller-provided CommPlan verbatim (e.g. --plan=fixed:<path>).
  kFixed,
};

struct TrainerOptions {
  int num_workers = 2;
  int num_servers = 2;        // colocated server nodes; may differ from workers
  /// First bus node hosting a server (ClusterInfo::server_node_base): 0
  /// colocates server s with worker s; a multi-process launch sets it to
  /// num_workers so every role gets its own node, hence its own process.
  /// Trajectory-invariant — node ids never enter the math.
  int server_node_base = 0;
  /// Key-range KV shards hosted per server node, each with its own mailbox
  /// and apply thread. 0 = auto: let the multi-shard cost rows pick (up to
  /// kMaxAutoShards) from the model's largest PS layer.
  int shards_per_server = 1;
  /// SSP staleness bound: workers may run up to this many iterations ahead
  /// of the slowest worker's applied updates. 0 = the paper's BSP (bitwise
  /// identical to the pre-SSP runtime). With staleness > 0 worker replicas
  /// legitimately diverge while training (each reads a different snapshot),
  /// so per-iteration replica-identity invariants only hold at 0.
  int staleness = 0;
  int batch_per_worker = 16;
  SgdConfig sgd;
  FcSyncPolicy fc_policy = FcSyncPolicy::kHybrid;
  /// Wire compression for PS-path layers (ResolveCompression): raw fp32 by
  /// default; fp16/int8/top-k push with error feedback, binary16 replies.
  /// Quantized trajectories are deterministic (seeded per layer x clock) but
  /// not bitwise equal to kNone runs.
  PsCompressionPolicy ps_compression = PsCompressionPolicy::kNone;
  /// Fraction of each pair's elements the top-k codec keeps, in (0, 1].
  double topk_density = 0.01;
  /// Layers below this many floats stay raw under any compression policy
  /// (tests and benches with tiny models lower it; see ResolveCompression).
  int64_t compression_min_floats = kCompressionMinFloats;
  int64_t kv_pair_bytes = 2 * 1024 * 1024;
  int syncer_threads = 2;     // client-library pool size per worker
  /// When true, the bus coalesces same-destination wire messages from
  /// different layer syncers into batched frames (MessageBus egress
  /// batching). Grouping is timing-dependent but content-deterministic:
  /// training trajectories are bitwise identical with or without it.
  bool batch_egress = false;
  /// Batching knobs, used when `batch_egress` is set.
  EgressBatchOptions batch_options;
  /// When non-empty, parameters and the iteration cursor are restored from
  /// this checkpoint before the KV shards are initialized.
  std::string restore_path;
  /// Seeded transport chaos (drop/duplicate/delay/partition); injected when
  /// any probability is non-zero or `enable_faults` is set. Sequencing +
  /// receiver-side dedup/reordering keep trajectories bitwise identical to
  /// fault-free runs under BSP (tests/chaos_property_test.cc).
  FaultPlan fault_plan;
  /// Forces the fault fabric on even with all probabilities zero (partition
  /// experiments drive faults through bus().Partition at runtime).
  bool enable_faults = false;
  /// Heartbeats + failure detector + automatic worker restart.
  FailureDetectorOptions failure_detection;
  /// Per-worker recovery checkpoints land in this directory (one file per
  /// worker), written after every `checkpoint_every` completed iterations.
  /// Bitwise-exact recovery of a crashed BSP worker needs `checkpoint_every
  /// = 1`: the replayed in-flight iteration then recomputes from exactly the
  /// parameters the dead incarnation held.
  std::string checkpoint_dir;
  int checkpoint_every = 0;  ///< 0 disables recovery checkpoints
  /// Test-injected crash (requires failure_detection.enabled and recovery
  /// checkpoints, or training will hang waiting for the dead worker).
  CrashPlan crash;
  /// Communication-plan source (see TrainerPlanMode). kPaper routes through
  /// the planner's paper mode and stays bitwise identical to the legacy flow.
  TrainerPlanMode plan_mode = TrainerPlanMode::kPaper;
  /// The plan to adopt when plan_mode = kFixed (layer names must match the
  /// model; shards/staleness/batching come from the plan).
  std::shared_ptr<const CommPlan> fixed_plan;
  /// Labels the plan request (plan cache keys hash the layer specs, so the
  /// name is cosmetic).
  std::string model_name = "trainer";
  /// Bandwidth-feedback re-planning (kAuto only): sample windowed link-stats
  /// deltas after each Train() window and re-plan when the observed bandwidth
  /// diverges past replan_options.hysteresis. Plan swaps happen only between
  /// windows, so trajectories stay deterministic given the same swap
  /// schedule; disabled, runs are bitwise identical to plan_feedback = false.
  bool plan_feedback = false;
  ReplanOptions replan_options;
};

/// Upper bound for shards_per_server = 0 (auto) selection.
inline constexpr int kMaxAutoShards = 8;

struct IterationStats {
  int64_t iter = 0;
  double mean_loss = 0.0;      // across workers
  double mean_accuracy = 0.0;  // train batch top-1
  /// Mean wall time per worker spent in forward + backward compute.
  double compute_ms = 0.0;
  /// Mean wall time per worker blocked in WaitAll (communication + any SSP
  /// gating at the shards). compute_ms + comm_wait_ms ~= iteration wall time.
  double comm_wait_ms = 0.0;
};

/// Cumulative where-did-the-time-go view across everything trained so far:
/// worker compute vs worker comm-wait (both summed over workers), and the
/// server-side SSP gate time (summed over shards; a subset of the comm wait
/// the gated workers observed). See docs/OBSERVABILITY.md.
struct StallBreakdown {
  double compute_s = 0.0;
  double comm_wait_s = 0.0;
  double ssp_stall_s = 0.0;

  double GpuBusyFrac() const {
    const double total = compute_s + comm_wait_s;
    return total > 0.0 ? compute_s / total : 0.0;
  }
};

class PoseidonTrainer {
 public:
  PoseidonTrainer(NetworkFactory factory, TrainerOptions options);
  ~PoseidonTrainer();

  PoseidonTrainer(const PoseidonTrainer&) = delete;
  PoseidonTrainer& operator=(const PoseidonTrainer&) = delete;

  /// Runs `iterations` BSP iterations over `dataset`; returns per-iteration
  /// training stats. May be called repeatedly (training continues).
  std::vector<IterationStats> Train(const SyntheticDataset& dataset, int iterations);

  /// Evaluates worker 0's replica (replicas are identical under BSP; under
  /// SSP staleness > 0 this is one of several legitimate snapshots).
  LossResult EvaluateTest(const SyntheticDataset& dataset);

  /// Persists the current parameters and iteration cursor (call between
  /// Train() invocations; replicas are quiescent, and identical under BSP).
  /// Under SSP (staleness > 0) this saves worker 0's snapshot, which may be
  /// missing up to `staleness` applied updates — a restored run resumes
  /// from that snapshot on every replica and KV master copy.
  Status SaveCheckpointTo(const std::string& path);

  int64_t next_iter() const { return next_iter_; }

  Network& worker_net(int w);
  const Coordinator& coordinator() const { return *coordinator_; }
  const std::vector<RuntimeScheme>& schemes() const { return schemes_; }
  /// The resolved per-layer wire-compression plan (parallel to schemes()).
  const std::vector<GradCompression>& compression() const { return compression_; }
  MessageBus& bus() { return *bus_; }
  /// The failure detector (null unless failure_detection.enabled).
  const FailureDetector* failure_detector() const { return detector_.get(); }
  /// Completed recovery episodes (a crashed worker restarted and replayed).
  int64_t recoveries() const { return recoveries_.load(); }
  /// Cumulative compute / comm-wait / SSP-stall seconds (see StallBreakdown).
  StallBreakdown stall_breakdown() const;
  /// The shard count actually in use (resolved when shards_per_server = 0).
  int shards_per_server() const;
  const KvServer& server(int s) const { return *servers_[static_cast<size_t>(s)]; }

  /// The communication plan in force (never null; paper mode's legacy
  /// decisions are expressed as a plan too).
  std::shared_ptr<const CommPlan> plan() const { return plan_; }
  /// Swaps the communication stack onto `new_plan` at an iteration boundary
  /// (call between Train() windows only; CHECKs staleness = 0 and no crash
  /// machinery). Parameters carry over bitwise — a swap changes how gradients
  /// move, never their values — so two runs adopting the same plans at the
  /// same boundaries train bitwise identically. No-op when the plan's hash
  /// already matches.
  void AdoptPlan(std::shared_ptr<const CommPlan> new_plan);
  /// Replan decisions taken so far (plan_feedback only).
  int64_t replan_count() const { return replan_count_; }

 private:
  void Shutdown();
  /// One worker's training loop from `from_iter` through the end of the
  /// Train() window (also the recovery replay path).
  void RunWorkerLoop(int w, int64_t from_iter);
  /// Detector callback; spawns the recovery thread for a crashed worker.
  void OnWorkerSuspected(int w);
  /// Restart protocol: fence the dead incarnation, rebuild the client from
  /// the latest checkpoint, re-register, replay the in-flight clock.
  void RecoverWorker(int w);
  void MaybeCheckpoint(int w, int64_t next_iter);
  std::string CheckpointPath(int w) const;

  /// Builds the paper-mode or joint-auto PlanRequest for the current model
  /// and cluster shape.
  PlanRequest BuildPlanRequest() const;
  /// Applies plan-driven knobs (schemes, compression, batching) after the
  /// coordinator exists.
  void ApplyPlanSchemes();
  /// Feedback hook run after each Train() window.
  void MaybeReplan();

  TrainerOptions options_;
  NetworkFactory factory_;
  std::unique_ptr<MessageBus> bus_;
  std::vector<std::unique_ptr<Network>> worker_nets_;
  std::unique_ptr<Network> init_net_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<RuntimeScheme> schemes_;
  std::vector<GradCompression> compression_;
  std::vector<std::unique_ptr<KvServer>> servers_;
  std::vector<std::unique_ptr<ClientLibrary>> clients_;
  std::shared_ptr<const CommPlan> plan_;
  std::unique_ptr<Replanner> replanner_;
  int64_t replan_count_ = 0;
  int64_t next_iter_ = 0;
  bool shut_down_ = false;

  // Liveness + recovery plumbing (only populated when enabled).
  std::vector<std::unique_ptr<HeartbeatTicker>> tickers_;
  std::unique_ptr<FailureDetector> detector_;
  std::atomic<bool> crash_fired_{false};
  std::vector<std::unique_ptr<std::atomic<bool>>> crashed_;
  std::atomic<int64_t> recoveries_{0};

  std::mutex recovery_mutex_;
  std::condition_variable recovery_cv_;
  std::vector<std::thread> recovery_threads_;
  int recoveries_in_flight_ = 0;

  // Live only while Train() runs; the recovery replay records into the same
  // per-iteration stat slots the dead incarnation would have filled.
  struct TrainWindow {
    const SyntheticDataset* dataset = nullptr;
    int64_t first_iter = 0;
    int iterations = 0;
    std::vector<std::vector<double>>* losses = nullptr;
    std::vector<std::vector<double>>* accuracies = nullptr;
    std::vector<std::vector<double>>* compute_ms = nullptr;
    std::vector<std::vector<double>>* comm_wait_ms = nullptr;
  };
  TrainWindow window_;

  // Cumulative stall accounting across Train() windows (summed over
  // workers); the per-iteration view lives in IterationStats.
  std::atomic<int64_t> compute_ns_total_{0};
  std::atomic<int64_t> comm_wait_ns_total_{0};
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_TRAINER_H_

// The distributed-training systems compared in the evaluation, expressed as
// combinations of three orthogonal mechanisms:
//   * overlap    — when layer synchronization may run relative to compute
//                  (§3.1: none / WFBP / TF's fetch-at-iteration-start),
//   * sharding   — how parameters map to PS shards (Poseidon's 2 MB KV pairs
//                  vs TensorFlow's one-server-per-tensor),
//   * scheme     — what bytes move for FC layers (dense PS, SFB, Adam's
//                  SF-push + matrix-pull, CNTK's 1-bit quantization,
//                  or HybComm's per-layer best choice).
#ifndef POSEIDON_SRC_CLUSTER_SYSTEM_CONFIG_H_
#define POSEIDON_SRC_CLUSTER_SYSTEM_CONFIG_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/models/comm_cost.h"
#include "src/planner/comm_plan.h"

namespace poseidon {

enum class OverlapMode {
  kNone,     // synchronize sequentially after the full backward pass
  kWfbp,     // per-layer sync as soon as the layer's gradient exists
  kTfFetch,  // pushes overlap backward; pulls wait for the iteration boundary
};

enum class ShardingMode {
  kKvPairs,    // parameters hashed into fixed-size KV pairs over all servers
  kPerTensor,  // each layer owned by one server (TensorFlow's partitioning)
};

enum class FcScheme {
  kDense,    // full gradient matrices through the PS
  kSfb,      // sufficient factor broadcasting among peers
  kAdam,     // SFs pushed to the owning server, dense matrices pulled back
  kOneBit,   // 1-bit quantized gradients through the PS
  kHybrid,   // per-layer BestScheme choice between kDense and kSfb
  // Collective extensions: unlike the FC-only schemes above, these apply to
  // every parameter layer (conv included) — allreduce needs no gradient
  // factorization.
  kRing,              // ring allreduce for all layers
  kTree,              // binary-tree reduce-broadcast for all layers
  kHybridCollective,  // three-way BestSchemeExtended per layer
};

struct SystemConfig {
  std::string name;
  OverlapMode overlap = OverlapMode::kWfbp;
  ShardingMode sharding = ShardingMode::kKvPairs;
  FcScheme fc_scheme = FcScheme::kDense;
  // Vanilla-PS behaviour: DRAM<->GPU staging copies block the GPU instead of
  // running on the async copy engine (explains Caffe+PS's single-node
  // overhead, §5.1).
  bool blocking_memcpy = false;
  // Fraction of wire bandwidth the system's transport sustains. Default 0.6:
  // sustained bidirectional TCP goodput on 40 GbE NICs (kernel stack + PCIe
  // contention) is well below line rate even for an efficient socket layer
  // like Poseidon's. TensorFlow r0.10's gRPC stack measured lower still
  // (serialization and extra copies), which is part of why native TF "fails
  // to scale" on large dense layers (§5.1, Fig 6).
  double transport_efficiency = 0.6;
  // BSP straggler policy (§4.1): when true, a shard broadcasts once P-1 of P
  // workers contributed (the slowest worker's update is dropped for the
  // iteration); SFB receivers likewise proceed one peer short.
  bool drop_stragglers = false;
  // Key-range KV shard endpoints per server node. Each shard applies updates
  // on its own thread, so the server-side apply path parallelizes by this
  // factor; NIC traffic is unchanged (the same bytes spread over more
  // endpoints).
  int shards_per_server = 1;
  // SSP staleness bound: a worker may start iteration t once iteration
  // t - 1 - staleness of every layer is synchronized, instead of t - 1
  // (BSP). Hides stragglers and sync-tail latency at the cost of stale
  // gradients; 0 reproduces BSP timing exactly.
  int staleness = 0;
  // Per-destination egress batching (the transport's batcher, modeled): a
  // node's same-destination messages within one iteration share one wire
  // frame, cutting per-message framing overhead and the message count the
  // simulation reports. Payload bytes and protocol timing are unchanged.
  bool batch_egress = false;
  // ---- fault model (mirrors the live transport's fault fabric; see
  // docs/FAULT_TOLERANCE.md). The modeled link layer is reliable: a lost
  // message is retransmitted, so loss costs time and bytes, never data.
  // Per-message wire loss probability. Modeled in expectation (the simulator
  // stays deterministic): every message's bytes inflate by 1/(1 - p) and its
  // delivery gains the expected retransmit latency p/(1 - p) * RTO.
  double loss_rate = 0.0;
  // Link-layer retransmit timeout charged per expected retransmission.
  double retransmit_timeout_s = 200e-6;
  // Crash-recovery episode costs (both zero = no failure model): suspicion
  // deadline of the heartbeat failure detector, plus worker restart +
  // checkpoint rehydration. The simulation charges one in-flight-iteration
  // replay on top and credits what the SSP bound lets survivors absorb
  // (SimResult::recovery_stall_s).
  double detect_timeout_s = 0.0;
  double restart_s = 0.0;
  // ---- wire compression of the PS path (mirrors the runtime's
  // TrainerOptions::ps_compression; see docs/COMPRESSION.md). A fixed codec
  // rescales every dense-PS layer clearing `compression_min_floats` by the
  // per-direction byte rows (PushBytesPerFloat / PullBytesPerFloat);
  // `auto_ps_compression` instead resolves each layer through
  // BestCompression — and, under kHybridCollective, routes the scheme choice
  // through BestSchemeExtendedCompressed so compressed PS competes with SFB
  // and the collectives on the byte basis. Quantized pushes also charge the
  // encoder's CPU pass (same aux engine as the 1-bit row).
  GradCompression ps_compression = GradCompression::kNone;
  bool auto_ps_compression = false;
  double topk_density = 0.01;
  int64_t compression_min_floats = kCompressionMinFloats;
  // ---- CommPlanner integration. When set, per-layer schemes and codecs come
  // from the plan's assignments (looked up by layer name) instead of the
  // fc_scheme/compression policy switches above; shards/staleness/batching
  // were copied from the plan by PlannedSystem(). Layers the plan does not
  // name fall back to the policy switches.
  std::shared_ptr<const CommPlan> plan;
};

// The named systems from Figures 5-11.
SystemConfig CaffePlusPs();       // "Caffe+PS"
SystemConfig CaffePlusWfbp();     // "Caffe+WFBP"
SystemConfig PoseidonSystem();    // "Poseidon" (WFBP + HybComm)
SystemConfig TfNative();          // "TF" (distributed TensorFlow)
SystemConfig TfPlusWfbp();        // "TF+WFBP"
SystemConfig AdamSystem();        // Project Adam's communication strategy
SystemConfig OneBitSystem();      // CNTK-style 1-bit quantization
SystemConfig SfbOnlySystem();     // pure SFB for every FC layer
SystemConfig RingAllreduceSystem();    // ring allreduce for every layer
SystemConfig TreeAllreduceSystem();    // binary-tree allreduce for every layer
SystemConfig HybridCollectiveSystem(); // Poseidon++ three-way HybComm
// Sharded-PS / SSP extensions of the dense-PS WFBP system: `shards` KV shard
// endpoints per server and an SSP bound of `staleness` iterations.
SystemConfig ShardedPsSystem(int shards, int staleness = 0);
// Poseidon (WFBP + HybComm) running under an SSP bound.
SystemConfig SspPoseidonSystem(int staleness, int shards = 1);
// Dense-PS WFBP with the PS path compressed by `compression` (kAuto per
// layer when `auto_per_layer`); topk density as configured.
SystemConfig CompressedPsSystem(GradCompression compression,
                                double topk_density = 0.01,
                                bool auto_per_layer = false);
// WFBP system driven by a CommPlan: per-layer schemes/codecs from the plan's
// assignments, shard count / staleness / egress batching / top-k density from
// its global knobs. This is what `--plan=auto` and `--plan=fixed:<path>`
// simulate.
SystemConfig PlannedSystem(std::shared_ptr<const CommPlan> plan);

}  // namespace poseidon

#endif  // POSEIDON_SRC_CLUSTER_SYSTEM_CONFIG_H_

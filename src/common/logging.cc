#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace poseidon {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

// Serializes whole lines so concurrent threads do not interleave output.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// Small dense thread ids (1, 2, ...) in registration order: stable within a
// run, readable next to trace tids, and free of the platform's opaque
// 15-digit native handles.
int LocalThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

// Monotonic (steady-clock) microseconds since the first log line: makes
// intra-run latency arithmetic valid even if the wall clock steps.
int64_t MonotonicMicros() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  const bool fatal = severity_ == LogSeverity::kFatal;
  if (fatal || static_cast<int>(severity_) >= g_min_severity.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
    const int64_t mono_us = MonotonicMicros();
    const int tid = LocalThreadId();
    std::lock_guard<std::mutex> lock(LogMutex());
    // Format: severity wall-seconds monotonic-seconds tid file:line] message
    std::fprintf(stderr, "%s %lld.%03lld %lld.%06lld t%d %s:%d] %s\n",
                 SeverityTag(severity_), static_cast<long long>(ms / 1000),
                 static_cast<long long>(ms % 1000),
                 static_cast<long long>(mono_us / 1000000),
                 static_cast<long long>(mono_us % 1000000), tid, Basename(file_), line_,
                 stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal) {
    std::abort();
  }
}

}  // namespace poseidon

// Regenerates Figure 5: throughput speedup vs number of nodes when training
// GoogLeNet, VGG19 and VGG19-22K with the Caffe engine at 40 GbE, comparing
// Caffe+PS (sequential sync), Caffe+WFBP (overlapped) and full Poseidon
// (WFBP + HybComm). Single-node unmodified Caffe is the baseline.
//
// Expected shape (paper): WFBP alone reaches near-linear scaling for
// GoogLeNet/VGG19; on VGG19-22K (91% FC parameters) WFBP saturates around
// ~21x at 32 nodes and HybComm recovers ~30x.
#include <cstdio>

#include "src/models/zoo.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

void Run() {
  const std::vector<int> nodes = {1, 2, 4, 8, 16, 32};
  const std::vector<SystemConfig> systems = {CaffePlusPs(), CaffePlusWfbp(),
                                             PoseidonSystem()};
  for (const char* name : {"googlenet", "vgg19", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    const auto results = RunScalingSweep(model, systems, nodes, /*gbps=*/40.0,
                                         Engine::kCaffe);
    std::printf("%s\n",
                FormatSpeedupTable("Fig 5: " + model.name + " (Caffe engine, 40 GbE)",
                                   results)
                    .c_str());
  }
}

}  // namespace
}  // namespace poseidon

int main() {
  poseidon::Run();
  return 0;
}

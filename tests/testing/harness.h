/// \file
/// Shared in-process cluster harness for the Poseidon test suite.
///
/// Before this library existed every trainer-level test re-declared the same
/// tiny dataset, MLP factory, trainer options and parameter-flattening
/// helpers; chaos testing made the duplication untenable (seeded runs,
/// golden-trajectory comparison, and crash orchestration all need one
/// authoritative definition of "the small cluster"). Tests link
/// `poseidon_testing` and use:
///
///   * TinyDataset() / TinyMlpFactory()       — the canonical 8x8 3-class
///     workload and a deterministic replica factory;
///   * SmallTrainerOptions(...)               — the canonical 4-worker /
///     2-server trainer configuration, knobs exposed;
///   * AllParams(net) / CaptureTrajectory(...) — golden-trajectory capture
///     (per-iteration mean losses + final flattened parameters) for bitwise
///     comparisons between runs;
///   * ChaosSeeds(n) / POSEIDON_CHAOS_SEED    — the seed matrix for chaos
///     property tests. CI sets the env var; on failure the offending seed is
///     printed so the run can be reproduced locally.
#ifndef POSEIDON_TESTS_TESTING_HARNESS_H_
#define POSEIDON_TESTS_TESTING_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/builders.h"
#include "src/nn/dataset.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/trainer.h"
#include "src/stats/fault_counters.h"

namespace poseidon {
namespace testing {

/// The canonical tiny workload: 8x8 single-channel images, 3 classes, 96
/// training samples, dataset seed 2024.
SyntheticDataset TinyDataset();

/// Deterministic factory for the canonical small MLP replica (64-20-...-3,
/// network seed 13). All replicas built from one factory are identical.
NetworkFactory TinyMlpFactory(int hidden_layers = 2);

/// The canonical small-cluster trainer options: 4 workers, 2 servers,
/// lr 0.05 / momentum 0.9, 6 samples per worker, 256-byte KV pairs, two
/// syncer threads. Tests override fields freely after construction.
TrainerOptions SmallTrainerOptions(int workers = 4, int servers = 2, int shards = 2,
                                   int staleness = 0,
                                   FcSyncPolicy policy = FcSyncPolicy::kDense);

/// The canonical coordinator-level cluster description (no live runtime).
ClusterInfo SmallClusterInfo(int workers, int servers, int batch,
                             int64_t kv_bytes = 1024);

/// Every parameter of every layer, flattened in (layer, block) order —
/// the unit of bitwise trajectory comparison.
std::vector<float> AllParams(Network& net);

/// One run's observable trajectory: per-iteration mean training loss and the
/// final flattened parameters of worker 0's replica. The fault counters ride
/// along for assertions but do not participate in equality (two runs are
/// "the same trajectory" precisely when the weather did not change the
/// computation).
struct Trajectory {
  std::vector<double> mean_losses;
  std::vector<float> final_params;
  FaultCountersSnapshot faults;

  bool operator==(const Trajectory& other) const {
    return mean_losses == other.mean_losses && final_params == other.final_params;
  }
};

/// Builds a fresh trainer from `options`, trains `iterations` over the tiny
/// dataset, and captures the trajectory. The golden-run helper: capture once
/// with clean options, once with chaos, and compare bitwise.
Trajectory CaptureTrajectory(const TrainerOptions& options, int iterations,
                             int hidden_layers = 2);

/// The chaos seed matrix: `count` distinct seeds starting from the base.
/// The base is POSEIDON_CHAOS_SEED when set (CI sweeps it), else 1.
std::vector<uint64_t> ChaosSeeds(int count);

/// Failure-message tag naming the seed, so any chaos assertion that fires
/// tells the reader how to reproduce:
///   SCOPED_TRACE(testing::SeedTrace(seed));
std::string SeedTrace(uint64_t seed);

}  // namespace testing
}  // namespace poseidon

#endif  // POSEIDON_TESTS_TESTING_HARNESS_H_

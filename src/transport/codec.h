/// \file
/// The unified wire-codec registry: every gradient representation that
/// crosses the wire (raw floats, 1-bit quantized, sufficient factors, fp16,
/// int8, top-k sparse) is serialized into a Payload slab by exactly one
/// Codec, and every receiver decodes through the same codec. No
/// scheme-specific encode/decode logic lives in the syncers or the KV store;
/// adding a compression is one codec class registered here.
///
/// Frame layout (in 4-byte float words; integers are bit-cast into words
/// with memcpy, never read as floats):
///   raw float           [payload floats...]           (offset rides in the
///                                                      enclosing WireChunk)
///   1-bit               [rows][cols][bias_len]
///                       [sign words: ceil(rows*cols/32)]
///                       [positive levels: cols][negative levels: cols]
///                       [bias: bias_len]
///   sufficient factor   [m][n][k][bias_len]
///                       [u: m*k][v: n*k][bias: bias_len]
///   fp16                [n][bias_len]
///                       [halves: ceil(n/2), two binary16 per word, low first]
///                       [bias: bias_len]
///   int8                [n][bias_len]
///                       [scales: ceil(n/256), one fp32 per chunk]
///                       [packed: ceil(n/4), four int8 per word, low first]
///                       [bias: bias_len]
///   top-k               [n][k][bias_len]
///                       [indices: k, uint32, strictly increasing, < n]
///                       [values: k][bias: bias_len]
///
/// Decoding validates framing and returns Status on truncated or corrupt
/// buffers — a malformed frame must never crash the server. Decode
/// arithmetic is bitwise identical to the historical in-line paths
/// (OneBitQuantizer::Decode, ReconstructGradient), which the s=0 BSP
/// trajectory tests rely on.
#ifndef POSEIDON_SRC_TRANSPORT_CODEC_H_
#define POSEIDON_SRC_TRANSPORT_CODEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/tensor/onebit.h"
#include "src/tensor/sufficient_factor.h"
#include "src/tensor/tensor.h"
#include "src/transport/payload.h"

namespace poseidon {

/// Wire identifier of a codec, carried in every Message header.
enum class WireCodec : uint8_t {
  kRawFloat = 0,
  kOneBit = 1,
  kSufficientFactor = 2,
  kFp16 = 3,
  kInt8 = 4,
  kTopK = 5,
};

const char* WireCodecName(WireCodec id);

/// The per-(layer, clock) seed for the stochastically rounded codecs.
/// Derived from a fixed base through Rng::Split (src/common/rng.h), so every
/// worker — and every rerun — draws the same rounding noise for the same
/// (layer, clock) pair, which is what keeps quantized trajectories bitwise
/// reproducible (docs/COMPRESSION.md).
uint32_t QuantSeed(int layer_index, int64_t clock);

/// One gradient representation's serializer/deserializer. Concrete codecs
/// additionally expose typed encode entry points (their inputs differ:
/// dense slices, quantizer state, factor pairs); the virtual surface is the
/// uniform wire-safety API every receiver and the property tests use.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual WireCodec id() const = 0;
  virtual const char* name() const = 0;

  /// Validates framing without decoding. Returns the dense float count the
  /// frame expands to (excluding any bias trailer), or InvalidArgument /
  /// OutOfRange on malformed or truncated input.
  virtual StatusOr<int64_t> Validate(const PayloadView& frame) const = 0;

  /// Decodes the frame into a dense gradient tensor (shape from the frame;
  /// raw frames decode 1-D) and, when the frame carries one, the bias
  /// gradient trailer. Returns Status instead of crashing on bad input.
  virtual Status Decode(const PayloadView& frame, Tensor* dense,
                        std::vector<float>* bias) const = 0;
};

/// Identity codec: a frame is the floats themselves.
class RawFloatCodec : public Codec {
 public:
  WireCodec id() const override { return WireCodec::kRawFloat; }
  const char* name() const override { return "raw_float"; }
  StatusOr<int64_t> Validate(const PayloadView& frame) const override;
  Status Decode(const PayloadView& frame, Tensor* dense,
                std::vector<float>* bias) const override;

  /// Stages `floats` floats into a fresh slab (the one unavoidable copy when
  /// the source is not already slab-resident).
  static Payload Encode(const float* src, int64_t floats);
};

/// CNTK-style 1-bit quantization frames (sign words + per-column levels),
/// with the FC bias gradient riding in the same frame.
class OneBitCodec : public Codec {
 public:
  /// Parsed frame: spans into the slab (bias may be empty). Sign words are
  /// bit-cast; read them through word(), not as floats.
  struct Frame {
    int64_t rows = 0;
    int64_t cols = 0;
    int64_t bias_len = 0;
    PayloadView words;   ///< sign words region (bit-cast floats)
    PayloadView positive_level;
    PayloadView negative_level;
    PayloadView bias;

    /// The i-th packed sign word.
    uint32_t word(int64_t i) const;
  };

  WireCodec id() const override { return WireCodec::kOneBit; }
  const char* name() const override { return "onebit"; }
  StatusOr<int64_t> Validate(const PayloadView& frame) const override;
  Status Decode(const PayloadView& frame, Tensor* dense,
                std::vector<float>* bias) const override;

  /// Quantizes `gradient` through `quantizer` (which carries the error
  /// feedback residual) and serializes the encoding plus the bias gradient
  /// into one frame.
  static Payload Encode(const Tensor& gradient, OneBitQuantizer* quantizer,
                        const float* bias, int64_t bias_len);

  /// Validated zero-copy access to a frame's regions.
  static StatusOr<Frame> Parse(const PayloadView& frame);

  /// Reconstructs the dense gradient, bitwise identical to
  /// OneBitQuantizer::Decode on the unserialized encoding.
  static Status DecodeDense(const PayloadView& frame, Tensor* out);
};

/// Sufficient-factor frames (U, V, bias); reconstruction is exact and
/// bitwise identical to ReconstructGradient on the unserialized factors.
class SufficientFactorCodec : public Codec {
 public:
  /// Parsed frame: spans into the slab (bias may be empty).
  struct Frame {
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;
    int64_t bias_len = 0;
    PayloadView u;  ///< [m, k] row-major
    PayloadView v;  ///< [n, k] row-major
    PayloadView bias;
  };

  WireCodec id() const override { return WireCodec::kSufficientFactor; }
  const char* name() const override { return "sufficient_factor"; }
  StatusOr<int64_t> Validate(const PayloadView& frame) const override;
  Status Decode(const PayloadView& frame, Tensor* dense,
                std::vector<float>* bias) const override;

  /// Serializes a factor pair plus the bias gradient into one frame.
  static Payload Encode(const SufficientFactors& factors, const float* bias,
                        int64_t bias_len);

  /// Validated zero-copy access to a frame's regions.
  static StatusOr<Frame> Parse(const PayloadView& frame);

  /// Overwrites `out` ([m, n]) with U V^T straight from the frame, using
  /// the same loop order as ReconstructGradient (GemmTransB) so the result
  /// is bitwise identical.
  static Status DecodeReconstruct(const PayloadView& frame, Tensor* out);
};

/// IEEE binary16 frames with the encoder's reduced range (subnormal halves
/// flush to signed zero, magnitudes >= 2^16 clamp to 65504 — error feedback
/// re-injects both next clock). Two encode modes: stochastic rounding with a
/// carried residual for the gradient-push direction, and round-to-nearest
/// (stateless) for the parameter-reply direction.
class Fp16Codec : public Codec {
 public:
  /// Parsed frame: spans into the slab (bias may be empty). Halves are
  /// bit-cast two to a word; read them through half(), not as floats.
  struct Frame {
    int64_t n = 0;
    int64_t bias_len = 0;
    PayloadView halves;  ///< ceil(n/2) words (bit-cast floats)
    PayloadView bias;

    /// The i-th packed binary16 value, i in [0, n).
    uint16_t half(int64_t i) const;
  };

  WireCodec id() const override { return WireCodec::kFp16; }
  const char* name() const override { return "fp16"; }
  StatusOr<int64_t> Validate(const PayloadView& frame) const override;
  Status Decode(const PayloadView& frame, Tensor* dense,
                std::vector<float>* bias) const override;

  /// Stochastically rounds `quant` (the gradient slice with the error
  /// residual already added, n floats) into one frame. The rounding noise is
  /// a pure function of (seed, base_index + i) — pass the slice's flat layer
  /// offset as `base_index` so sharding never changes the bits. When
  /// `residual` is non-null it is overwritten with quant - decode(frame),
  /// the error-feedback carry.
  static Payload EncodeSr(const float* quant, int64_t n, uint32_t seed,
                          int64_t base_index, float* residual, const float* bias,
                          int64_t bias_len);

  /// Round-to-nearest-even encode for the stateless reply direction.
  static Payload EncodeRn(const float* src, int64_t n, const float* bias,
                          int64_t bias_len);

  /// Validated zero-copy access to a frame's regions.
  static StatusOr<Frame> Parse(const PayloadView& frame);

  /// Reconstructs the dense (1-D) gradient via the exact Fp16Unpack formula.
  static Status DecodeDense(const PayloadView& frame, Tensor* out);
};

/// int8 frames with one fp32 scale per 256-element chunk
/// (simd::kInt8ChunkSize) and deterministic stochastic rounding. A chunk
/// whose max|x| is zero or non-finite gets scale 0 and decodes to zeros —
/// the residual re-injects the content next clock.
class Int8Codec : public Codec {
 public:
  /// Parsed frame: spans into the slab (bias may be empty). Packed bytes are
  /// bit-cast four to a word; read them through DecodeDense.
  struct Frame {
    int64_t n = 0;
    int64_t bias_len = 0;
    PayloadView scales;  ///< ceil(n/256) per-chunk scales
    PayloadView packed;  ///< ceil(n/4) words (bit-cast floats)
    PayloadView bias;
  };

  WireCodec id() const override { return WireCodec::kInt8; }
  const char* name() const override { return "int8"; }
  StatusOr<int64_t> Validate(const PayloadView& frame) const override;
  Status Decode(const PayloadView& frame, Tensor* dense,
                std::vector<float>* bias) const override;

  /// Stochastically rounds `quant` (gradient + residual, n floats) into one
  /// frame; same (seed, base_index) contract as Fp16Codec::EncodeSr. When
  /// `residual` is non-null it is overwritten with quant - decode(frame).
  static Payload EncodeSr(const float* quant, int64_t n, uint32_t seed,
                          int64_t base_index, float* residual, const float* bias,
                          int64_t bias_len);

  /// Validated zero-copy access to a frame's regions.
  static StatusOr<Frame> Parse(const PayloadView& frame);

  /// Reconstructs the dense (1-D) gradient: out[i] = q[i] * scale[chunk].
  static Status DecodeDense(const PayloadView& frame, Tensor* out);
};

/// Top-k sparse frames: the k largest-magnitude elements as (index, value)
/// pairs, values sent exact. Selection is deterministic — threshold from the
/// k-th largest magnitude, ties broken in index order — and the residual
/// keeps everything that was not sent, so every coordinate eventually
/// escapes (error feedback).
class TopKCodec : public Codec {
 public:
  /// Parsed frame: spans into the slab (bias may be empty). Indices are
  /// bit-cast uint32, validated strictly increasing and < n; read them
  /// through index(), not as floats.
  struct Frame {
    int64_t n = 0;
    int64_t k = 0;
    int64_t bias_len = 0;
    PayloadView indices;  ///< k words (bit-cast floats)
    PayloadView values;   ///< k floats
    PayloadView bias;

    /// The i-th selected flat index, i in [0, k).
    int64_t index(int64_t i) const;
  };

  WireCodec id() const override { return WireCodec::kTopK; }
  const char* name() const override { return "topk"; }
  StatusOr<int64_t> Validate(const PayloadView& frame) const override;
  Status Decode(const PayloadView& frame, Tensor* dense,
                std::vector<float>* bias) const override;

  /// Selects the k largest-magnitude elements of `quant` (gradient +
  /// residual, n floats; 1 <= k <= n) and serializes them exactly. When
  /// `residual` is non-null it is overwritten with quant everywhere except
  /// the selected coordinates, which carry zero residual.
  static Payload Encode(const float* quant, int64_t n, int64_t k, float* residual,
                        const float* bias, int64_t bias_len);

  /// Validated zero-copy access to a frame's regions (including the
  /// strictly-increasing index scan).
  static StatusOr<Frame> Parse(const PayloadView& frame);

  /// Scatters the (index, value) pairs into a zeroed dense (1-D) gradient.
  static Status DecodeDense(const PayloadView& frame, Tensor* out);
};

/// Process-wide codec registry. The six built-in codecs (the three paper
/// representations plus the fp16/int8/top-k compressions) are always
/// present; extensions register once at startup and are then addressable by
/// id from any Message.
class CodecRegistry {
 public:
  /// The codec for `id`; CHECK-fails on an unknown id (use Find on wire
  /// input paths).
  static const Codec& Get(WireCodec id);
  /// The codec for `id`, or nullptr when unregistered.
  static const Codec* Find(WireCodec id);
  /// Registers an extension codec; CHECK-fails on a duplicate id.
  static void Register(std::unique_ptr<Codec> codec);
  /// Ids currently registered, ascending.
  static std::vector<WireCodec> Ids();
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_CODEC_H_

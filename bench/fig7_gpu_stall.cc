// Regenerates Figure 7: breakdown of GPU computation vs stall time when
// training Inception-V3, VGG19 and VGG19-22K on 8 nodes with the TensorFlow
// engine, for TF / TF+WFBP / Poseidon.
//
// Expected shape (paper): Poseidon keeps GPUs busy most of the time;
// TF wastes a large fraction waiting on parameter synchronization, with
// TF+WFBP in between (balanced KV sharding but no HybComm).
#include <cstdio>

#include "src/cluster/protocol_sim.h"
#include "src/common/table.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

void Run() {
  std::printf("Fig 7: GPU computation vs stall time, 8 nodes, 40 GbE (TF engine)\n\n");
  TextTable table({"model", "system", "compute %", "stall %"});
  for (const char* name : {"inception-v3", "vgg19", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    for (const SystemConfig& system : {TfNative(), TfPlusWfbp(), PoseidonSystem()}) {
      ClusterSpec cluster;
      cluster.num_nodes = 8;
      cluster.nic_gbps = 40.0;
      const SimResult result =
          RunProtocolSimulation(model, system, cluster, Engine::kTensorFlow);
      table.AddRow({model.name, system.name,
                    TextTable::Num(100.0 * result.gpu_busy_frac, 1),
                    TextTable::Num(100.0 * (1.0 - result.gpu_busy_frac), 1)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main() {
  poseidon::Run();
  return 0;
}

// BLAS-like kernels over Tensor. These are the primitive operations the NN
// library's layers are built from; they are written as straightforward loops
// with a blocked GEMM, which is plenty for the convergence-scale experiments
// (the throughput experiments run on the analytic cluster simulator instead).
#ifndef POSEIDON_SRC_TENSOR_OPS_H_
#define POSEIDON_SRC_TENSOR_OPS_H_

#include "src/tensor/tensor.h"

namespace poseidon {

// out = a * b. a is [m,k], b is [k,n], out is [m,n] (overwritten).
void Gemm(const Tensor& a, const Tensor& b, Tensor* out);

// out = a^T * b. a is [k,m], b is [k,n], out is [m,n] (overwritten).
void GemmTransA(const Tensor& a, const Tensor& b, Tensor* out);

// out = a * b^T. a is [m,k], b is [n,k], out is [m,n] (overwritten).
void GemmTransB(const Tensor& a, const Tensor& b, Tensor* out);

// y += alpha * x (element-wise, shapes must match).
void Axpy(float alpha, const Tensor& x, Tensor* y);

// y = alpha * y.
void Scale(float alpha, Tensor* y);

// Element-wise sum of squares.
double SumSquares(const Tensor& x);

// L2 norm.
double Norm(const Tensor& x);

// max_i |x_i - y_i|.
double MaxAbsDiff(const Tensor& x, const Tensor& y);

// Adds `v` (length n) to every row of `m` ([r,n]).
void AddRowVector(const Tensor& v, Tensor* m);

// Sums the rows of `m` ([r,n]) into `v` (length n, overwritten).
void SumRows(const Tensor& m, Tensor* v);

}  // namespace poseidon

#endif  // POSEIDON_SRC_TENSOR_OPS_H_

#include "src/models/comm_cost.h"

#include "src/collective/topology.h"
#include "src/common/logging.h"

namespace poseidon {
namespace {

void ValidateQuery(const CommCostQuery& q) {
  CHECK_GT(q.m, 0);
  CHECK_GT(q.n, 0);
  CHECK_GT(q.batch_k, 0);
  CHECK_GT(q.num_workers, 0);
  CHECK_GT(q.num_servers, 0);
  CHECK_GT(q.num_shards, 0);
}

}  // namespace

const char* CommSchemeName(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::kPS:
      return "PS";
    case CommScheme::kSFB:
      return "SFB";
    case CommScheme::kRing:
      return "Ring";
    case CommScheme::kTree:
      return "Tree";
  }
  return "?";
}

double PsWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * static_cast<double>(q.m) * static_cast<double>(q.n);
}

double PsServerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * q.num_workers * static_cast<double>(q.m) * static_cast<double>(q.n) /
         q.num_servers;
}

double PsColocatedFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * static_cast<double>(q.m) * static_cast<double>(q.n) *
         (q.num_workers + q.num_servers - 2) / q.num_servers;
}

double SfbWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * static_cast<double>(q.batch_k) * (q.num_workers - 1) *
         static_cast<double>(q.m + q.n);
}

double AdamServerMaxFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return static_cast<double>(q.num_workers) * static_cast<double>(q.m) *
             static_cast<double>(q.n) +
         static_cast<double>(q.num_workers) * static_cast<double>(q.batch_k) *
             static_cast<double>(q.m + q.n);
}

double AdamWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return static_cast<double>(q.batch_k) * static_cast<double>(q.m + q.n) +
         static_cast<double>(q.m) * static_cast<double>(q.n);
}

double AdamColocatedMaxFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return static_cast<double>(q.num_workers - 1) *
         (static_cast<double>(q.m) * static_cast<double>(q.n) +
          static_cast<double>(q.batch_k) * static_cast<double>(q.m) +
          static_cast<double>(q.batch_k) * static_cast<double>(q.n));
}

double PsShardedServerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * q.num_workers * static_cast<double>(q.m) * static_cast<double>(q.n) /
         (static_cast<double>(q.num_servers) * q.num_shards);
}

double PsShardedColocatedFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  const double endpoints = static_cast<double>(q.num_servers) * q.num_shards;
  return 2.0 * static_cast<double>(q.m) * static_cast<double>(q.n) *
         (q.num_workers + endpoints - 2.0) / endpoints;
}

int BestPsShardCount(const CommCostQuery& q, int max_shards) {
  ValidateQuery(q);
  CHECK_GT(max_shards, 0);
  CommCostQuery candidate = q;
  candidate.num_shards = 1;
  int best = 1;
  double best_floats = PsShardedColocatedFloats(candidate);
  for (int s = 2; s <= max_shards; ++s) {
    candidate.num_shards = s;
    const double floats = PsShardedColocatedFloats(candidate);
    if (floats < best_floats) {  // strict: ties keep the smaller shard count
      best = s;
      best_floats = floats;
    }
  }
  return best;
}

double RingAllreduceWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return RingAllreduceNodeFloats(q.m * q.n, q.num_workers);
}

double TreeAllreduceWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return TreeAllreduceMaxNodeFloats(q.m * q.n, q.num_workers);
}

double SchemeWorkerFloats(CommScheme scheme, const CommCostQuery& q) {
  switch (scheme) {
    case CommScheme::kPS:
      return PsShardedColocatedFloats(q);  // == PsColocatedFloats at 1 shard
    case CommScheme::kSFB:
      return SfbWorkerFloats(q);
    case CommScheme::kRing:
      return RingAllreduceWorkerFloats(q);
    case CommScheme::kTree:
      return TreeAllreduceWorkerFloats(q);
  }
  return 0.0;
}

bool SfbWins(const CommCostQuery& q) {
  // Algorithm 1 line 7: 2K(P1-1)(M+N) <= 2MN(P1+P2-2)/P2, with the PS side
  // costed as actually sharded (identical to the paper's row at 1 shard).
  return SfbWorkerFloats(q) <= PsShardedColocatedFloats(q);
}

CommScheme BestScheme(const LayerSpec& layer, int64_t batch_k, int num_workers,
                      int num_servers) {
  if (layer.type != LayerType::kFC) {
    return CommScheme::kPS;  // CONV gradients are indecomposable and sparse
  }
  if (num_workers <= 1) {
    return CommScheme::kPS;  // no peers to broadcast to
  }
  CommCostQuery q;
  q.m = layer.fc_m;
  q.n = layer.fc_n;
  q.batch_k = batch_k;
  q.num_workers = num_workers;
  q.num_servers = num_servers;
  return SfbWins(q) ? CommScheme::kSFB : CommScheme::kPS;
}

CommScheme BestSchemeExtended(const LayerSpec& layer, int64_t batch_k, int num_workers,
                              int num_servers, int ps_shards) {
  if (num_workers <= 1) {
    return CommScheme::kPS;
  }
  CommCostQuery q;
  // Conv layers have no (M, N) factorization; model their dense parameter
  // tensor as M = params, N = 1 so the PS/ring/tree rows (which only use
  // M*N) stay exact. SFB is excluded for them below.
  q.m = layer.type == LayerType::kFC ? layer.fc_m : layer.params;
  q.n = layer.type == LayerType::kFC ? layer.fc_n : 1;
  q.batch_k = batch_k;
  q.num_workers = num_workers;
  q.num_servers = num_servers;
  q.num_shards = ps_shards;
  if (q.m <= 0 || q.n <= 0) {
    return CommScheme::kPS;  // stateless layer; nothing to synchronize
  }

  CommScheme best = CommScheme::kPS;
  double best_floats = SchemeWorkerFloats(best, q);
  const CommScheme candidates[] = {CommScheme::kSFB, CommScheme::kRing, CommScheme::kTree};
  for (CommScheme candidate : candidates) {
    if (candidate == CommScheme::kSFB && layer.type != LayerType::kFC) {
      continue;  // conv gradients are indecomposable
    }
    const double floats = SchemeWorkerFloats(candidate, q);
    if (floats < best_floats) {
      best = candidate;
      best_floats = floats;
    }
  }
  return best;
}

}  // namespace poseidon

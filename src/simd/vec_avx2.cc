// AVX2 backend: fixed 8-lane blocks, scalar tails, no FMA anywhere (vector
// code composes explicit mul/add intrinsics; AVX2 does not imply FMA, and
// this TU is additionally compiled with -ffp-contract=off), so every result
// is bit-identical to the scalar reference in vec_scalar.cc.
//
// Functions carry __attribute__((target("avx2"))) instead of the TU being
// built with -mavx2: the rest of the file (dispatch glue, tails) stays
// baseline-ISA, and the binary runs on non-AVX2 machines as long as dispatch
// never selects this backend.
#include "src/simd/vec.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>

#include "src/simd/bitpack.h"
#include "src/simd/quant.h"

namespace poseidon {
namespace simd {
namespace {

#define POSEIDON_AVX2 __attribute__((target("avx2")))

POSEIDON_AVX2 void Avx2ReduceAdd(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_loadu_ps(dst + i);
    const __m256 s = _mm256_loadu_ps(src + i);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(d, s));
  }
  ScalarKernels()->reduce_add(dst + i, src + i, n - i);
}

POSEIDON_AVX2 void Avx2Scale(float* dst, float alpha, int64_t n) {
  const __m256 a = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), a));
  }
  ScalarKernels()->scale(dst + i, alpha, n - i);
}

POSEIDON_AVX2 void Avx2Axpy(float* y, float alpha, const float* x, int64_t n) {
  const __m256 a = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 ax = _mm256_mul_ps(a, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), ax));
  }
  ScalarKernels()->axpy(y + i, alpha, x + i, n - i);
}

POSEIDON_AVX2 void Avx2SgdStep(float* v, float* value, const float* grad, float lr,
                               float mu, float wd, int64_t n) {
  const __m256 vmu = _mm256_set1_ps(mu);
  const __m256 vwd = _mm256_set1_ps(wd);
  const __m256 vlr = _mm256_set1_ps(lr);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vel = _mm256_loadu_ps(v + i);
    const __m256 val = _mm256_loadu_ps(value + i);
    const __m256 g = _mm256_loadu_ps(grad + i);
    // (mu * v + g) + wd * value — the scalar expression's association.
    const __m256 nv = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(vmu, vel), g),
                                    _mm256_mul_ps(vwd, val));
    _mm256_storeu_ps(v + i, nv);
    _mm256_storeu_ps(value + i, _mm256_sub_ps(val, _mm256_mul_ps(vlr, nv)));
  }
  ScalarKernels()->sgd_step(v + i, value + i, grad + i, lr, mu, wd, n - i);
}

// Widens the low/high 4 float lanes of `mask` (all-ones or all-zeros per
// lane) to 4 all-ones/all-zeros double lanes.
POSEIDON_AVX2 inline __m256d MaskLoPd(__m256 mask) {
  return _mm256_castsi256_pd(
      _mm256_cvtepi32_epi64(_mm_castps_si128(_mm256_castps256_ps128(mask))));
}
POSEIDON_AVX2 inline __m256d MaskHiPd(__m256 mask) {
  return _mm256_castsi256_pd(
      _mm256_cvtepi32_epi64(_mm_castps_si128(_mm256_extractf128_ps(mask, 1))));
}

POSEIDON_AVX2 void Avx2OneBitEncodeStats(const float* grad, const float* residual,
                                         int64_t rows, int64_t cols, uint32_t* bits,
                                         double* pos_sum, double* neg_sum,
                                         int32_t* pos_count, int32_t* neg_count) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256i ones = _mm256_set1_epi32(-1);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const __m256 q = _mm256_add_ps(_mm256_loadu_ps(grad + flat),
                                     _mm256_loadu_ps(residual + flat));
      // Movemask-style sign extraction: lane compare q >= 0 (ordered, so a
      // NaN classifies negative exactly like the scalar `q >= 0.0f`).
      const __m256 mask = _mm256_cmp_ps(q, zero, _CMP_GE_OQ);
      const uint32_t m8 = static_cast<uint32_t>(_mm256_movemask_ps(mask));
      internal::OrBits8(bits, flat, m8);

      // Per-column double accumulation: masked lanes contribute +0.0, which
      // is bit-exact on these sums (see the scalar reference).
      const __m256d qlo = _mm256_cvtps_pd(_mm256_castps256_ps128(q));
      const __m256d qhi = _mm256_cvtps_pd(_mm256_extractf128_ps(q, 1));
      const __m256d mlo = MaskLoPd(mask);
      const __m256d mhi = MaskHiPd(mask);
      _mm256_storeu_pd(pos_sum + c,
                       _mm256_add_pd(_mm256_loadu_pd(pos_sum + c),
                                     _mm256_and_pd(qlo, mlo)));
      _mm256_storeu_pd(pos_sum + c + 4,
                       _mm256_add_pd(_mm256_loadu_pd(pos_sum + c + 4),
                                     _mm256_and_pd(qhi, mhi)));
      _mm256_storeu_pd(neg_sum + c,
                       _mm256_add_pd(_mm256_loadu_pd(neg_sum + c),
                                     _mm256_andnot_pd(mlo, qlo)));
      _mm256_storeu_pd(neg_sum + c + 4,
                       _mm256_add_pd(_mm256_loadu_pd(neg_sum + c + 4),
                                     _mm256_andnot_pd(mhi, qhi)));

      // Counts: a set mask lane is integer -1, so subtracting the mask
      // increments; the complement increments the negative count.
      const __m256i maski = _mm256_castps_si256(mask);
      __m256i* pc = reinterpret_cast<__m256i*>(pos_count + c);
      __m256i* nc = reinterpret_cast<__m256i*>(neg_count + c);
      _mm256_storeu_si256(
          pc, _mm256_sub_epi32(_mm256_loadu_si256(pc), maski));
      _mm256_storeu_si256(
          nc, _mm256_sub_epi32(_mm256_loadu_si256(nc),
                               _mm256_andnot_si256(maski, ones)));
    }
    // Scalar tail for the row's trailing columns (same expressions as the
    // scalar reference; no multiplies, so contraction cannot differ).
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = q >= 0.0f;
      if (positive) {
        bits[flat >> 5] |= 1u << (flat & 31);
      }
      pos_sum[c] += positive ? static_cast<double>(q) : 0.0;
      neg_sum[c] += positive ? 0.0 : static_cast<double>(q);
      pos_count[c] += positive ? 1 : 0;
      neg_count[c] += positive ? 0 : 1;
    }
  }
}

// Expands the low 8 bits of m8 into an 8-lane all-ones/all-zeros mask.
POSEIDON_AVX2 inline __m256 Mask8ToLanes(uint32_t m8) {
  const __m256i lane_bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i v = _mm256_set1_epi32(static_cast<int>(m8));
  return _mm256_castsi256_ps(
      _mm256_cmpeq_epi32(_mm256_and_si256(v, lane_bit), lane_bit));
}

POSEIDON_AVX2 void Avx2OneBitResidualUpdate(const float* grad, int64_t rows,
                                            int64_t cols, const uint32_t* bits,
                                            const float* pos_level,
                                            const float* neg_level, float* residual) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const __m256 q = _mm256_add_ps(_mm256_loadu_ps(grad + flat),
                                     _mm256_loadu_ps(residual + flat));
      const __m256 mask = Mask8ToLanes(internal::LoadBits8(bits, flat));
      const __m256 level = _mm256_blendv_ps(_mm256_loadu_ps(neg_level + c),
                                            _mm256_loadu_ps(pos_level + c), mask);
      _mm256_storeu_ps(residual + flat, _mm256_sub_ps(q, level));
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      residual[flat] = q - (positive ? pos_level[c] : neg_level[c]);
    }
  }
}

POSEIDON_AVX2 void Avx2OneBitDecode(const uint32_t* bits, const float* pos_level,
                                    const float* neg_level, int64_t rows,
                                    int64_t cols, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const __m256 mask = Mask8ToLanes(internal::LoadBits8(bits, flat));
      _mm256_storeu_ps(out + flat,
                       _mm256_blendv_ps(_mm256_loadu_ps(neg_level + c),
                                        _mm256_loadu_ps(pos_level + c), mask));
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      out[flat] = positive ? pos_level[c] : neg_level[c];
    }
  }
}

// 8 lanes of the integer hash in src/simd/quant.h — xor/shift/mullo only,
// so the lanes equal eight scalar MixBits calls bit-for-bit.
POSEIDON_AVX2 inline __m256i MixBits8(__m256i idx, __m256i seed) {
  __m256i h = _mm256_xor_si256(idx, seed);
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 16));
  h = _mm256_mullo_epi32(h, _mm256_set1_epi32(static_cast<int>(0x21f0aaadu)));
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 15));
  h = _mm256_mullo_epi32(h, _mm256_set1_epi32(static_cast<int>(0x735a2d97u)));
  h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 15));
  return h;
}

// 8 lanes of internal::Fp16Pack: clamp-after-round via unsigned min, then
// the range overrides (mutually exclusive, so blend order is free). All
// compared quantities are < 2^31, so signed compares stand in for unsigned.
POSEIDON_AVX2 inline __m256i Fp16Pack8(__m256i u, __m256i rnd13) {
  const __m256i max_half = _mm256_set1_epi32(0x7BFF);
  const __m256i sign =
      _mm256_and_si256(_mm256_srli_epi32(u, 16), _mm256_set1_epi32(0x8000));
  const __m256i absu = _mm256_and_si256(u, _mm256_set1_epi32(0x7FFFFFFF));
  __m256i h = _mm256_srli_epi32(
      _mm256_sub_epi32(_mm256_add_epi32(absu, rnd13),
                       _mm256_set1_epi32(0x38000000)),
      13);
  h = _mm256_min_epu32(h, max_half);
  const __m256i big = _mm256_cmpgt_epi32(absu, _mm256_set1_epi32(0x477FFFFF));
  h = _mm256_blendv_epi8(h, max_half, big);
  const __m256i small = _mm256_cmpgt_epi32(_mm256_set1_epi32(0x38800000), absu);
  h = _mm256_andnot_si256(small, h);
  return _mm256_or_si256(sign, h);
}

// Stores 8 uint16 results held in the low 16 bits of 8 int32 lanes.
POSEIDON_AVX2 inline void StoreHalf8(uint16_t* out, __m256i r) {
  const __m256i packed = _mm256_packus_epi32(r, r);
  const __m256i perm = _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(0, 0, 2, 0));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm256_castsi256_si128(perm));
}

POSEIDON_AVX2 void Avx2Fp16EncodeSr(const float* src, int64_t n, uint32_t seed,
                                    int64_t base_index, uint16_t* out) {
  const __m256i vseed = _mm256_set1_epi32(static_cast<int>(seed));
  const __m256i step = _mm256_set1_epi32(8);
  __m256i idx = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(base_index))),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rnd13 = _mm256_srli_epi32(MixBits8(idx, vseed), 19);
    const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(src + i));
    StoreHalf8(out + i, Fp16Pack8(u, rnd13));
    idx = _mm256_add_epi32(idx, step);
  }
  ScalarKernels()->fp16_encode_sr(src + i, n - i, seed, base_index + i, out + i);
}

POSEIDON_AVX2 void Avx2Fp16EncodeRn(const float* src, int64_t n, uint16_t* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i u = _mm256_castps_si256(_mm256_loadu_ps(src + i));
    const __m256i absu = _mm256_and_si256(u, _mm256_set1_epi32(0x7FFFFFFF));
    const __m256i rnd = _mm256_add_epi32(
        _mm256_set1_epi32(0xFFF),
        _mm256_and_si256(_mm256_srli_epi32(absu, 13), _mm256_set1_epi32(1)));
    StoreHalf8(out + i, Fp16Pack8(u, rnd));
  }
  ScalarKernels()->fp16_encode_rn(src + i, n - i, out + i);
}

POSEIDON_AVX2 void Avx2Fp16Decode(const uint16_t* src, int64_t n, float* out) {
  const __m256i exp_mask = _mm256_set1_epi32(0x0F800000);
  const __m256i bias = _mm256_set1_epi32(112 << 23);
  const __m256 magic = _mm256_castsi256_ps(_mm256_set1_epi32(0x38800000));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i h = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    const __m256i sign =
        _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x8000)), 16);
    __m256i o =
        _mm256_slli_epi32(_mm256_and_si256(h, _mm256_set1_epi32(0x7FFF)), 13);
    const __m256i exp = _mm256_and_si256(o, exp_mask);
    o = _mm256_add_epi32(o, bias);
    const __m256i is_inf = _mm256_cmpeq_epi32(exp, exp_mask);
    o = _mm256_blendv_epi8(o, _mm256_add_epi32(o, bias), is_inf);
    // Subnormal renormalization: the float subtract is exact (same binade),
    // computed in every lane and blended in where the exponent field is 0.
    const __m256i is_sub = _mm256_cmpeq_epi32(exp, _mm256_setzero_si256());
    const __m256i sub_bits = _mm256_castps_si256(_mm256_sub_ps(
        _mm256_castsi256_ps(_mm256_add_epi32(o, _mm256_set1_epi32(1 << 23))),
        magic));
    o = _mm256_blendv_epi8(o, sub_bits, is_sub);
    _mm256_storeu_ps(out + i, _mm256_castsi256_ps(_mm256_or_si256(sign, o)));
  }
  ScalarKernels()->fp16_decode(src + i, n - i, out + i);
}

POSEIDON_AVX2 void Avx2Int8EncodeSr(const float* src, int64_t n, float inv_scale,
                                    uint32_t seed, int64_t base_index,
                                    int8_t* out) {
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256 vhi = _mm256_set1_ps(127.0f);
  const __m256 vlo = _mm256_set1_ps(-127.0f);
  const __m256 v2p24 = _mm256_set1_ps(0x1p-24f);
  const __m256i vseed = _mm256_set1_epi32(static_cast<int>(seed));
  const __m256i step = _mm256_set1_epi32(8);
  __m256i idx = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(base_index))),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(_mm256_loadu_ps(src + i), vinv);
    const __m256 fl = _mm256_floor_ps(t);
    const __m256 frac = _mm256_sub_ps(t, fl);
    const __m256i h = MixBits8(idx, vseed);
    // (h >> 8) is < 2^24, so the signed int -> float conversion is exact.
    const __m256 r =
        _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_srli_epi32(h, 8)), v2p24);
    const __m256 inc = _mm256_and_ps(_mm256_cmp_ps(frac, r, _CMP_GT_OQ), vone);
    __m256 q = _mm256_add_ps(fl, inc);
    q = _mm256_blendv_ps(q, vhi, _mm256_cmp_ps(q, vhi, _CMP_GT_OQ));
    q = _mm256_blendv_ps(q, vlo, _mm256_cmp_ps(q, vlo, _CMP_LT_OQ));
    q = _mm256_and_ps(q, _mm256_cmp_ps(q, q, _CMP_ORD_Q));  // NaN squash
    const __m256i qi = _mm256_cvttps_epi32(q);
    const __m256i p16 = _mm256_packs_epi32(qi, qi);
    const __m256i p8 = _mm256_packs_epi16(p16, p16);
    const __m256i perm = _mm256_permutevar8x32_epi32(
        p8, _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(perm));
    idx = _mm256_add_epi32(idx, step);
  }
  ScalarKernels()->int8_encode_sr(src + i, n - i, inv_scale, seed, base_index + i,
                                  out + i);
}

POSEIDON_AVX2 void Avx2Int8Decode(const int8_t* src, int64_t n, float scale,
                                  float* out) {
  const __m256 vscale = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i qi = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i)));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_cvtepi32_ps(qi), vscale));
  }
  ScalarKernels()->int8_decode(src + i, n - i, scale, out + i);
}

POSEIDON_AVX2 float Avx2MaxAbs(const float* src, int64_t n) {
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 vm = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_and_ps(_mm256_loadu_ps(src + i), absmask);
    vm = _mm256_blendv_ps(vm, a, _mm256_cmp_ps(a, vm, _CMP_GT_OQ));
  }
  // max over non-negative magnitudes (NaNs ignored by the ordered compare)
  // is associative, so the lane fold equals the scalar sequential max.
  float lanes[8];
  _mm256_storeu_ps(lanes, vm);
  float m = 0.0f;
  for (int l = 0; l < 8; ++l) {
    m = lanes[l] > m ? lanes[l] : m;
  }
  for (; i < n; ++i) {
    const float a = std::fabs(src[i]);
    m = a > m ? a : m;
  }
  return m;
}

POSEIDON_AVX2 int64_t Avx2CountAbsGreater(const float* src, int64_t n,
                                          float threshold) {
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  const __m256 thr = _mm256_set1_ps(threshold);
  __m256i cnt = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_and_ps(_mm256_loadu_ps(src + i), absmask);
    cnt = _mm256_sub_epi32(cnt,
                           _mm256_castps_si256(_mm256_cmp_ps(a, thr, _CMP_GT_OQ)));
  }
  int32_t lanes[8];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), cnt);
  int64_t count = 0;
  for (int l = 0; l < 8; ++l) {
    count += lanes[l];
  }
  for (; i < n; ++i) {
    count += std::fabs(src[i]) > threshold ? 1 : 0;
  }
  return count;
}

#undef POSEIDON_AVX2

const Kernels kAvx2Kernels = {
    Level::kAvx2,           Avx2ReduceAdd,
    Avx2Scale,              Avx2Axpy,
    Avx2SgdStep,            Avx2OneBitEncodeStats,
    Avx2OneBitResidualUpdate, Avx2OneBitDecode,
    Avx2Fp16EncodeSr,       Avx2Fp16EncodeRn,
    Avx2Fp16Decode,         Avx2Int8EncodeSr,
    Avx2Int8Decode,         Avx2MaxAbs,
    Avx2CountAbsGreater,
};

}  // namespace

const Kernels* Avx2Kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

}  // namespace simd
}  // namespace poseidon

#else  // !x86

namespace poseidon {
namespace simd {
const Kernels* Avx2Kernels() { return nullptr; }
}  // namespace simd
}  // namespace poseidon

#endif

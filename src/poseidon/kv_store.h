/// \file
/// The sharded KV-store parameter server (paper §4.1, extended with
/// key-range sharding and bounded staleness).
///
/// A server *node* (KvServer) hosts `shards_per_server` independent KvShard
/// endpoints. Each shard owns a disjoint subset of the KV pairs (the
/// coordinator's partition plan stripes every large layer across all shard
/// endpoints in the cluster), registers its own MessageBus mailbox at
/// {server, kServerPort + shard}, and applies updates on its own thread —
/// so a hot layer's serve path parallelizes across apply threads instead of
/// serializing behind one service loop.
///
/// Consistency is Stale Synchronous Parallel (SSP) with bound `s =
/// ClusterInfo::staleness`:
///   * every gradient push carries its worker's clock (iteration);
///   * a shard buffers pushes per clock and applies clock `c`'s aggregate
///     only when all workers' clock-`c` pushes arrived (folded per worker
///     slot and reduced in worker order — bit-deterministic regardless of
///     arrival order), advancing `applied_clock` strictly in clock order;
///   * the reply to worker `w`'s clock-`c` push is released once
///     `applied_clock >= c - s`, so no worker ever reads parameters missing
///     an update more than `s` clocks old.
/// With `s = 0` a reply is released exactly when clock `c` is applied:
/// the paper's BSP, reproduced bitwise. With `s > 0` a fast worker's push
/// is answered immediately from the freshest applied values and the worker
/// runs ahead — at most `s + 1` clocks ahead of the slowest worker.
///
/// Crash recovery (docs/FAULT_TOLERANCE.md): a restarted worker replays its
/// in-flight clock by re-pushing every layer. The shard reconciles replays
/// so each (layer, clock) aggregate is applied exactly once:
///   * a push whose clock is already applied buffers nothing — the shard
///     just releases a reply from the current parameters;
///   * a push whose per-worker slot for that clock is already filled keeps
///     the first contribution (recomputation is deterministic, so the bits
///     match anyway) and queues at most one pending read per (worker, clock).
/// Replies the shard sends into a crash window (endpoint closed) are
/// dropped and counted; the replayed push earns the replacement reply.
#ifndef POSEIDON_SRC_POSEIDON_KV_STORE_H_
#define POSEIDON_SRC_POSEIDON_KV_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/nn/network.h"
#include "src/stats/metrics.h"
#include "src/nn/sgd.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/runtime_scheme.h"
#include "src/transport/bus.h"
#include "src/transport/codec.h"
#include "src/transport/payload.h"

namespace poseidon {

/// One key-range shard: a mailbox, an apply thread, and the master copy (and
/// optimizer state) of every KV pair the coordinator assigned to
/// (`server_id`, `shard_id`), plus whole-layer state for 1-bit layers this
/// endpoint owns.
class KvShard {
 public:
  /// `init_net` supplies initial parameter values (every worker starts from
  /// the same replica). `first_iter` is the clock of the first training
  /// iteration this run will execute (non-zero after a checkpoint restore);
  /// the SSP clock starts at `first_iter - 1`.
  /// `compression` is the per-layer wire-compression plan
  /// (ResolveCompression); empty means every layer pushes raw fp32.
  KvShard(int server_id, int shard_id, int64_t first_iter, const Coordinator& coordinator,
          const std::vector<RuntimeScheme>& schemes, Network& init_net, MessageBus* bus,
          const SgdConfig& sgd,
          const std::vector<GradCompression>& compression = {});
  ~KvShard();

  KvShard(const KvShard&) = delete;
  KvShard& operator=(const KvShard&) = delete;

  /// Spawns the shard's service thread (Receive/Apply/Release loop).
  void Start();
  /// Joins after a kShutdown message has been delivered.
  void Join();

  int server() const { return server_; }
  int shard() const { return shard_; }

  /// Number of gradient-push messages processed (for tests).
  int64_t pushes_processed() const { return pushes_processed_; }
  /// Aggregate applications performed (one per (owned layer, clock)). The
  /// exactly-once invariant: equals owned layers x clocks run, crash or not.
  /// (Read after Join.)
  int64_t applies() const { return applies_; }
  /// Pushes answered without contributing to an aggregate: replays of an
  /// already-applied clock, or duplicates of an already-buffered slot.
  int64_t reconciled_pushes() const { return reconciled_pushes_; }
  /// Compressed pushes dropped whole for a codec mismatch or a malformed
  /// frame (a bad frame must never crash the server or poison an aggregate).
  int64_t rejected_pushes() const { return rejected_pushes_; }
  /// Replies that could not be delivered (receiver endpoint closed — the
  /// crash window between worker death and restart).
  int64_t replies_dropped() const { return replies_dropped_; }
  /// Layers with state hosted on this shard (dense pairs or 1-bit owner).
  int owned_layers() const {
    return static_cast<int>(dense_layers_.size() + onebit_layers_.size());
  }
  /// Max over pushes of (push clock - applied clock at arrival): how far the
  /// fastest worker ran ahead of the global aggregate. SSP bounds this by
  /// staleness + 1. (Read after Join.)
  int64_t max_push_lead() const { return max_push_lead_; }
  /// Max over released replies of (read clock - applied clock at release):
  /// the staleness a worker actually observed. SSP bounds this by
  /// `staleness`; under BSP (s = 0) it is always 0. (Read after Join.)
  int64_t max_reply_gap() const { return max_reply_gap_; }
  /// Total wall time replies spent parked behind the SSP gate (a read whose
  /// clock outran applied_clock + staleness waits here until the aggregate
  /// catches up). Summed over all gated reads; also recorded per-stall in
  /// the "kv.ssp_stall_ns" histogram and as "kv.ssp_stall" trace events.
  int64_t ssp_stall_ns() const { return ssp_stall_ns_.load(std::memory_order_relaxed); }

 private:
  struct PairState {
    KvPairInfo info;
    /// Float offset of this pair's master copy within the layer's parameter
    /// slab (pairs are concatenated in pair order).
    int64_t slab_offset = 0;
  };
  /// One parked parameter read awaiting the SSP gate. `enqueue_ns` (steady
  /// clock) and `deferred` drive the stall accounting: a read answered in
  /// the pass that queued it was never gated and records no stall.
  struct WaitingRead {
    int worker = -1;
    int64_t clock = -1;
    int64_t enqueue_ns = 0;
    bool deferred = false;
  };
  /// SSP bookkeeping for the dense pairs of one layer on this shard. The
  /// master copies live in one refcounted slab, so a BSP parameter reply
  /// can alias it zero-copy (the clock protocol guarantees every released
  /// reader finishes before the next apply can start; with staleness > 0
  /// later applies may overlap a reader, so replies snapshot instead).
  struct DenseLayerState {
    std::vector<PairState> pairs;
    Payload params;  ///< concatenated pair values, pair order
    /// clock -> per-worker pending push chunks, one view per pair (in pair
    /// order), referencing the sender's staging slab. Buffered zero-copy
    /// until the clock's aggregate is applied.
    std::map<int64_t, std::vector<std::vector<PayloadView>>> pending;
    std::map<int64_t, int> push_count;
    int64_t applied_clock = -1;
    std::vector<WaitingRead> waiting_reads;
  };
  struct OneBitLayerState {
    Payload value;  ///< whole flattened layer (weight then bias)
    int64_t rows = 0;
    int64_t cols = 0;
    /// clock -> per-worker pending 1-bit frames (views into sender slabs).
    std::map<int64_t, std::vector<PayloadView>> pending;
    std::map<int64_t, int> push_count;
    int64_t applied_clock = -1;
    std::vector<WaitingRead> waiting_reads;
  };

  void ServiceLoop();
  /// The layer's wire-compression mode (kNone when no plan was supplied).
  GradCompression layer_compression(int layer) const;
  /// The push codec `layer_compression` implies.
  static WireCodec ExpectedPushCodec(GradCompression compression);
  void HandleGradPush(const Message& message);
  void HandleOneBitPush(const Message& message);
  void ApplyDense(int layer, int64_t clock);
  void ApplyOneBit(int layer, int64_t clock);
  void ReleaseDenseReads(int layer);
  void ReleaseOneBitReads(int layer);
  /// Queues (worker, clock) for release unless already pending (replayed
  /// pushes must never earn a second reply).
  static void AddWaitingRead(std::vector<WaitingRead>* reads, int worker, int64_t clock);
  /// Accounts a gated read's stall on release (metric + histogram + trace).
  void RecordSspStall(const WaitingRead& read);
  /// Ships one parameter reply; tolerates a dead destination endpoint.
  void SendReply(int layer, int worker, int64_t clock, std::vector<WireChunk> chunks,
                 WireCodec codec = WireCodec::kRawFloat);

  const int server_;
  const int shard_;
  const int staleness_;
  const Coordinator& coordinator_;
  const std::vector<RuntimeScheme> schemes_;
  const std::vector<GradCompression> compression_;
  MessageBus* bus_;
  SgdOptimizer optimizer_;
  std::shared_ptr<MessageBus::Mailbox> mailbox_;
  std::thread thread_;

  std::unordered_map<int, DenseLayerState> dense_layers_;
  std::unordered_map<int, OneBitLayerState> onebit_layers_;
  int64_t pushes_processed_ = 0;
  int64_t applies_ = 0;
  int64_t reconciled_pushes_ = 0;
  int64_t rejected_pushes_ = 0;
  int64_t replies_dropped_ = 0;
  int64_t max_push_lead_ = 0;
  int64_t max_reply_gap_ = 0;
  /// Atomic: read by the trainer's stall breakdown while the shard serves.
  std::atomic<int64_t> ssp_stall_ns_{0};
  Histogram* ssp_stall_hist_ = nullptr;  // "kv.ssp_stall_ns" in the registry
};

/// One server node: the set of KvShard endpoints colocated on `server_id`.
/// Kept as the trainer-facing unit so node-level concerns (start/stop,
/// traffic accounting, colocated placement) stay in one place.
class KvServer {
 public:
  KvServer(int server_id, int64_t first_iter, const Coordinator& coordinator,
           const std::vector<RuntimeScheme>& schemes, Network& init_net, MessageBus* bus,
           const SgdConfig& sgd,
           const std::vector<GradCompression>& compression = {});

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Spawns every shard's service thread.
  void Start();
  /// Joins every shard (each after its kShutdown message).
  void Join();

  int id() const { return id_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const KvShard& shard(int i) const { return *shards_[static_cast<size_t>(i)]; }

  /// Gradient-push messages processed across all shards (for tests).
  int64_t pushes_processed() const;
  /// Aggregate applies / reconciled replays / dropped replies across shards
  /// (the exactly-once accounting; see KvShard).
  int64_t applies() const;
  int64_t reconciled_pushes() const;
  int64_t rejected_pushes() const;
  int64_t replies_dropped() const;
  /// Layers with state hosted on this server, summed over shards.
  int owned_layers() const;
  /// Max push lead / observed reply staleness across shards (see KvShard).
  int64_t max_push_lead() const;
  int64_t max_reply_gap() const;
  /// Total SSP gate time across shards (see KvShard::ssp_stall_ns).
  int64_t SspStallNs() const;

 private:
  const int id_;
  std::vector<std::unique_ptr<KvShard>> shards_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_KV_STORE_H_

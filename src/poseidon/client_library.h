/// \file
/// The client library (paper §4.1): plugged into a training program, it owns
/// one syncer per layer, a CPU thread pool for syncer jobs, and the binary
/// completion vector implementing the worker-side half of BSP.
///
/// Usage inside a worker's training loop (paper Algorithm 2):
///   net.Forward(...);
///   client.StartIteration();
///   for (int l = L - 1; l >= 0; --l) {
///     net.BackwardThrough(l);
///     client.ScheduleSync(l);   // wait-free: runs on the pool
///   }
///   client.WaitAll();           // sync_count == num param layers
#ifndef POSEIDON_SRC_POSEIDON_CLIENT_LIBRARY_H_
#define POSEIDON_SRC_POSEIDON_CLIENT_LIBRARY_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/nn/network.h"
#include "src/nn/sgd.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/runtime_scheme.h"
#include "src/poseidon/syncer.h"
#include "src/transport/bus.h"

namespace poseidon {

class ClientLibrary {
 public:
  /// `compression` is the per-layer wire-compression plan
  /// (ResolveCompression); empty means every layer pushes raw fp32.
  ClientLibrary(int worker, const Coordinator& coordinator,
                const std::vector<RuntimeScheme>& schemes, Network* net, MessageBus* bus,
                const SgdConfig& sgd, int num_threads,
                const std::vector<GradCompression>& compression = {},
                double topk_density = 0.01);

  ClientLibrary(const ClientLibrary&) = delete;
  ClientLibrary& operator=(const ClientLibrary&) = delete;

  /// Resets the completion vector for a new iteration.
  void StartIteration(int64_t iter);

  /// Schedules layer `l`'s sync job (Move-out, Send, Receive, Move-in) on the
  /// thread pool. No-op for stateless layers.
  void ScheduleSync(int l);

  /// Blocks until every scheduled sync of this iteration finished.
  void WaitAll();

  Syncer& syncer(int l) { return *syncers_[static_cast<size_t>(l)]; }
  int num_sync_layers() const { return num_sync_layers_; }

 private:
  const int worker_;
  const std::vector<RuntimeScheme> schemes_;
  SgdOptimizer local_optimizer_;  // applies SFB updates on this replica
  std::vector<std::unique_ptr<Syncer>> syncers_;
  ThreadPool pool_;
  int num_sync_layers_ = 0;

  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<bool> completion_;  // the paper's binary vector C
  int completed_ = 0;
  int64_t iter_ = -1;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_CLIENT_LIBRARY_H_

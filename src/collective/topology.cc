#include "src/collective/topology.h"

#include <algorithm>

#include "src/common/logging.h"

namespace poseidon {

ChunkRange CollectiveChunk(int64_t total, int world, int index) {
  CHECK_GE(total, 0);
  CHECK_GT(world, 0);
  CHECK_GE(index, 0);
  CHECK_LT(index, world);
  const int64_t base = total / world;
  const int64_t rem = total % world;
  ChunkRange range;
  range.offset = static_cast<int64_t>(index) * base + std::min<int64_t>(index, rem);
  range.length = base + (index < rem ? 1 : 0);
  return range;
}

int RingNext(int rank, int world) { return (rank + 1) % world; }

int RingPrev(int rank, int world) { return (rank + world - 1) % world; }

int TreeParent(int rank) { return rank == 0 ? -1 : (rank - 1) / 2; }

std::vector<int> TreeChildren(int rank, int world) {
  std::vector<int> children;
  for (int c = 2 * rank + 1; c <= 2 * rank + 2 && c < world; ++c) {
    children.push_back(c);
  }
  return children;
}

int TreeDepth(int world) {
  CHECK_GT(world, 0);
  int depth = 0;
  while ((1 << depth) < world) {
    ++depth;
  }
  return depth;
}

double RingAllreduceNodeFloats(int64_t elems, int world) {
  if (world <= 1) {
    return 0.0;
  }
  return 2.0 * static_cast<double>(elems) * (world - 1) / world;
}

double TreeAllreduceNodeFloats(int64_t elems, int world, int rank) {
  if (world <= 1) {
    return 0.0;
  }
  const double e = static_cast<double>(elems);
  double floats = 0.0;
  if (rank != 0) {
    floats += e;  // the reduce message up (the broadcast down is ingress)
  }
  floats += e * static_cast<double>(TreeChildren(rank, world).size());
  return floats;
}

double TreeAllreduceMaxNodeFloats(int64_t elems, int world) {
  double max_floats = 0.0;
  for (int r = 0; r < world; ++r) {
    max_floats = std::max(max_floats, TreeAllreduceNodeFloats(elems, world, r));
  }
  return max_floats;
}

}  // namespace poseidon

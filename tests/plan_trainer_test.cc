// Trainer-level CommPlan integration: plan modes, mid-training AdoptPlan
// swaps, and bandwidth-feedback determinism.
//
// The load-bearing invariants:
//   * kPaper trains bitwise identically to a kFixed run adopting the very
//     plan paper mode resolved — the plan object is a faithful encoding of
//     the legacy configuration, not an approximation of it;
//   * AdoptPlan between Train() windows changes how gradients move, never
//     their values, so a fixed swap schedule reproduces bitwise;
//   * plan_feedback that never fires (huge hysteresis) is bitwise identical
//     to feedback off — observation alone must not perturb training.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/planner/comm_plan.h"
#include "src/poseidon/trainer.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

using testing::AllParams;
using testing::CaptureTrajectory;
using testing::SmallTrainerOptions;
using testing::TinyDataset;
using testing::TinyMlpFactory;
using testing::Trajectory;

constexpr int kIters = 8;

TEST(PlanTrainerTest, PaperModeRecordsAPlan) {
  PoseidonTrainer trainer(TinyMlpFactory(), SmallTrainerOptions());
  const auto plan = trainer.plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->ps_shards, trainer.shards_per_server());
  EXPECT_EQ(plan->layers.size(), trainer.schemes().size());
  EXPECT_EQ(plan->hash, plan->ComputeHash());
}

TEST(PlanTrainerTest, FixedPlanCoincidingWithPaperIsBitwiseIdentical) {
  const TrainerOptions paper = SmallTrainerOptions();
  const Trajectory baseline = CaptureTrajectory(paper, kIters);

  // Capture the plan paper mode resolves, then train again adopting that
  // exact plan verbatim.
  std::shared_ptr<const CommPlan> plan;
  {
    PoseidonTrainer trainer(TinyMlpFactory(), paper);
    plan = trainer.plan();
  }
  TrainerOptions fixed = paper;
  fixed.plan_mode = TrainerPlanMode::kFixed;
  fixed.fixed_plan = plan;
  const Trajectory adopted = CaptureTrajectory(fixed, kIters);

  EXPECT_TRUE(adopted == baseline)
      << "adopting paper mode's own plan changed the trajectory";
}

TEST(PlanTrainerTest, AutoPlanIsDeterministicAndTrains) {
  TrainerOptions options = SmallTrainerOptions();
  options.plan_mode = TrainerPlanMode::kAuto;
  options.model_name = "tiny-mlp";

  const Trajectory first = CaptureTrajectory(options, kIters);
  const Trajectory second = CaptureTrajectory(options, kIters);
  EXPECT_TRUE(first == second) << "auto-planned training must be deterministic";
  ASSERT_GE(first.mean_losses.size(), 2u);
  EXPECT_LT(first.mean_losses.back(), first.mean_losses.front())
      << "auto-planned run failed to reduce the training loss";
}

TEST(PlanTrainerTest, AdoptPlanIsANoOpOnMatchingHash) {
  TrainerOptions options = SmallTrainerOptions();
  const SyntheticDataset dataset = TinyDataset();
  PoseidonTrainer trainer(TinyMlpFactory(), options);
  trainer.Train(dataset, 2);
  const auto before = trainer.plan();
  trainer.AdoptPlan(before);  // same hash: must not rebuild anything
  EXPECT_EQ(trainer.plan().get(), before.get());
  trainer.Train(dataset, 2);
  EXPECT_EQ(trainer.next_iter(), 4);
}

// Swapping between real plans mid-run: train under the paper plan, adopt the
// joint-auto plan at a window boundary, keep training. The swap schedule is
// fixed, so two runs must agree bitwise; and the run must agree with an
// unswapped run up to the swap point.
TEST(PlanTrainerTest, FixedSwapScheduleReproducesBitwise) {
  const TrainerOptions options = SmallTrainerOptions();
  const SyntheticDataset dataset = TinyDataset();

  auto run_with_swap = [&] {
    PoseidonTrainer trainer(TinyMlpFactory(), options);
    Trajectory trajectory;
    for (const IterationStats& stats : trainer.Train(dataset, kIters / 2)) {
      trajectory.mean_losses.push_back(stats.mean_loss);
    }
    // Swap onto the joint-auto plan for the same model and cluster shape. A
    // probe trainer resolves it exactly as kAuto mode would.
    TrainerOptions auto_options = options;
    auto_options.plan_mode = TrainerPlanMode::kAuto;
    std::shared_ptr<const CommPlan> joint_plan;
    {
      PoseidonTrainer probe(TinyMlpFactory(), auto_options);
      joint_plan = probe.plan();
    }
    trainer.AdoptPlan(joint_plan);
    for (const IterationStats& stats : trainer.Train(dataset, kIters / 2)) {
      trajectory.mean_losses.push_back(stats.mean_loss);
    }
    trainer.bus().FlushEgress();
    trajectory.final_params = AllParams(trainer.worker_net(0));
    return trajectory;
  };

  const Trajectory swapped_a = run_with_swap();
  const Trajectory swapped_b = run_with_swap();
  EXPECT_TRUE(swapped_a == swapped_b)
      << "the same swap schedule produced different trajectories";

  // Up to the swap the run is the plain paper-plan run, so the loss prefix
  // matches the never-swapped baseline bitwise. (Past the swap the joint
  // plan may route FC layers over SFB, whose receiver-side recompute sums
  // floats in a different order — deterministic, but not bitwise equal to
  // the dense-PS baseline.)
  const Trajectory baseline = CaptureTrajectory(options, kIters);
  ASSERT_GE(baseline.mean_losses.size(), static_cast<size_t>(kIters / 2));
  for (int i = 0; i < kIters / 2; ++i) {
    EXPECT_EQ(swapped_a.mean_losses[static_cast<size_t>(i)],
              baseline.mean_losses[static_cast<size_t>(i)])
        << "pre-swap loss diverged at iteration " << i;
  }
}

TEST(PlanTrainerTest, FeedbackThatNeverFiresIsBitwiseIdentical) {
  TrainerOptions off = SmallTrainerOptions();
  off.plan_mode = TrainerPlanMode::kAuto;

  TrainerOptions on = off;
  on.plan_feedback = true;
  on.replan_options.hysteresis = 1e9;  // can never trip

  const SyntheticDataset dataset = TinyDataset();
  auto run = [&](const TrainerOptions& options) {
    PoseidonTrainer trainer(TinyMlpFactory(), options);
    Trajectory trajectory;
    // Several windows so the feedback hook actually samples between them.
    for (int window = 0; window < 4; ++window) {
      for (const IterationStats& stats : trainer.Train(dataset, 2)) {
        trajectory.mean_losses.push_back(stats.mean_loss);
      }
    }
    EXPECT_EQ(trainer.replan_count(), 0);
    trainer.bus().FlushEgress();
    trajectory.final_params = AllParams(trainer.worker_net(0));
    return trajectory;
  };

  const Trajectory without = run(off);
  const Trajectory with = run(on);
  EXPECT_TRUE(with == without)
      << "link-stats observation without a replan changed the trajectory";
}

}  // namespace
}  // namespace poseidon

#include "src/collective/collective.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/simd/vec.h"
#include "src/stats/trace.h"

namespace poseidon {

const char* CollectiveAlgoName(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kRing:
      return "ring";
    case CollectiveAlgo::kTree:
      return "tree";
  }
  return "?";
}

CollectiveComm::CollectiveComm(MessageBus* bus, int rank, int world, int tag)
    : bus_(bus), rank_(rank), world_(world), tag_(tag) {
  CHECK_NOTNULL(bus);
  CHECK_GE(rank, 0);
  CHECK_LT(rank, world);
  mailbox_ = bus_->Register(Address{rank_, kCollectivePortBase + tag_});
}

void CollectiveComm::SendHop(int to, int step, int64_t offset, const float* data,
                             int64_t len) {
  TraceSpan span("collective.send_hop", "collective", step);
  Message hop;
  hop.type = MessageType::kCollective;
  hop.from = Address{rank_, kCollectivePortBase + tag_};
  hop.to = Address{to, kCollectivePortBase + tag_};
  hop.layer = tag_;
  hop.worker = rank_;
  hop.iter = seq_;
  hop.step = step;
  hop.codec = WireCodec::kRawFloat;
  // Collective hops copy into a fresh slab: the staging buffer is mutated
  // in place across hops, so aliasing it across ranks would race (see
  // docs/WIRE_FORMAT.md aliasing rules).
  hop.chunks.push_back({offset, RawFloatCodec::Encode(data, len).View()});
  ++messages_sent_;
  floats_sent_ += len;
  const Status status = bus_->Send(std::move(hop));
  CHECK(status.ok()) << status.ToString();
}

Message CollectiveComm::NextMessage(int expected_step, int expected_sender) {
  TraceSpan span("collective.recv_hop", "collective", expected_step);
  std::optional<Message> message = mailbox_->Pop();
  CHECK(message.has_value()) << "collective mailbox closed mid-operation";
  CHECK(message->type == MessageType::kCollective)
      << "rank " << rank_ << " tag " << tag_ << ": unexpected message type";
  CHECK_EQ(message->iter, seq_) << "collective sequence mismatch (peer ran ahead?)";
  CHECK_EQ(message->step, expected_step);
  CHECK_EQ(message->worker, expected_sender);
  CHECK(message->codec == WireCodec::kRawFloat);
  CHECK_EQ(message->chunks.size(), 1u);
  return std::move(*message);
}

void CollectiveComm::Start(CollectiveAlgo algo, int64_t seq, std::vector<float>* data) {
  CHECK(!pending_) << "previous collective not finished";
  CHECK_NOTNULL(data);
  pending_ = true;
  algo_ = algo;
  seq_ = seq;
  data_ = data;
  if (world_ == 1) {
    return;
  }
  switch (algo_) {
    case CollectiveAlgo::kRing: {
      // Step 0 of reduce-scatter: every rank sends its own chunk downstream.
      const ChunkRange own = CollectiveChunk(static_cast<int64_t>(data->size()), world_, rank_);
      SendHop(RingNext(rank_, world_), /*step=*/0, own.offset, data->data() + own.offset,
              own.length);
      break;
    }
    case CollectiveAlgo::kTree:
      // Leaves push their contribution immediately; internal ranks must wait
      // for their children, so their first send happens in Finish.
      if (TreeChildren(rank_, world_).empty()) {
        SendHop(TreeParent(rank_), kTreeReduceStep, 0, data->data(),
                static_cast<int64_t>(data->size()));
      }
      break;
  }
}

void CollectiveComm::FinishRing() {
  std::vector<float>& data = *data_;
  const int64_t total = static_cast<int64_t>(data.size());
  const int last_step = 2 * world_ - 3;
  for (int s = 0; s <= last_step; ++s) {
    // The chunk arriving at step s is (rank - s - 1) mod world: reduce-scatter
    // partial sums for s < world-1, fully reduced chunks afterwards.
    const int chunk_index = ((rank_ - s - 1) % world_ + world_) % world_;
    const ChunkRange range = CollectiveChunk(total, world_, chunk_index);
    Message message = NextMessage(s, RingPrev(rank_, world_));
    const WireChunk& payload = message.chunks[0];
    CHECK_EQ(payload.offset, range.offset);
    CHECK_EQ(payload.view.size(), range.length);
    const float* incoming = payload.view.data();
    float* local = data.data() + range.offset;
    if (s < world_ - 1) {
      // Reduce-scatter: fold the incoming partial sum with the local chunk.
      // The accumulation for chunk c runs along the ring starting at rank c,
      // so every rank observes the identical association order.
      simd::ReduceAdd(local, incoming, range.length);
    } else {
      // All-gather: adopt the fully reduced chunk.
      std::copy(incoming, incoming + range.length, local);
      WireCopyStats::Add(range.length);
    }
    if (s < last_step) {
      SendHop(RingNext(rank_, world_), s + 1, range.offset, local, range.length);
    }
  }
}

void CollectiveComm::FinishTree() {
  std::vector<float>& data = *data_;
  const int64_t total = static_cast<int64_t>(data.size());
  const std::vector<int> children = TreeChildren(rank_, world_);

  // Reduce phase: fold children's subtree sums into the local buffer in
  // child order (lower rank first), giving a deterministic association.
  // Children are distinct senders, so their messages may arrive in either
  // order; buffer by sender first.
  if (!children.empty()) {
    std::vector<PayloadView> arrived(children.size());
    for (size_t pending = children.size(); pending > 0; --pending) {
      std::optional<Message> message = mailbox_->Pop();
      CHECK(message.has_value()) << "collective mailbox closed mid-operation";
      CHECK(message->type == MessageType::kCollective);
      CHECK_EQ(message->iter, seq_);
      CHECK_EQ(message->step, kTreeReduceStep);
      CHECK_EQ(message->chunks.size(), 1u);
      const auto child_it = std::find(children.begin(), children.end(), message->worker);
      CHECK(child_it != children.end())
          << "rank " << rank_ << ": reduce message from non-child " << message->worker;
      const size_t slot = static_cast<size_t>(child_it - children.begin());
      CHECK(!arrived[slot].valid()) << "duplicate reduce message";
      arrived[slot] = message->chunks[0].view;
    }
    for (const PayloadView& view : arrived) {
      CHECK(view.valid());
      CHECK_EQ(view.size(), total);
      simd::ReduceAdd(data.data(), view.data(), total);
    }
    if (rank_ != 0) {
      SendHop(TreeParent(rank_), kTreeReduceStep, 0, data.data(), total);
    }
  }

  // Broadcast phase: the root already holds the global sum; everyone else
  // adopts the parent's copy, then forwards it downward.
  if (rank_ != 0) {
    Message message = NextMessage(kTreeBroadcastStep, TreeParent(rank_));
    const PayloadView& view = message.chunks[0].view;
    CHECK_EQ(view.size(), total);
    std::copy(view.data(), view.data() + total, data.begin());
    WireCopyStats::Add(total);
  }
  for (int child : children) {
    SendHop(child, kTreeBroadcastStep, 0, data.data(), total);
  }
}

void CollectiveComm::Finish() {
  CHECK(pending_) << "Finish without Start";
  if (world_ > 1) {
    switch (algo_) {
      case CollectiveAlgo::kRing:
        FinishRing();
        break;
      case CollectiveAlgo::kTree:
        FinishTree();
        break;
    }
  }
  pending_ = false;
  data_ = nullptr;
}

void CollectiveComm::Allreduce(CollectiveAlgo algo, int64_t seq, std::vector<float>* data) {
  Start(algo, seq, data);
  Finish();
}

}  // namespace poseidon

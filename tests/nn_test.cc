// Tests for the NN library: numerical gradient checks for every layer type,
// loss-head correctness, dataset determinism and the data-parallel partition
// property, optimizer semantics, and a single-node convergence smoke test.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/rng.h"
#include "src/nn/builders.h"
#include "src/nn/dataset.h"
#include "src/nn/layers.h"
#include "src/nn/network.h"
#include "src/nn/sgd.h"
#include "src/nn/single_trainer.h"
#include "src/tensor/ops.h"

namespace poseidon {
namespace {

// Central-difference gradient check for a network's total loss wrt sampled
// parameter coordinates. ReLU and max-pool make the loss piecewise smooth:
// a perturbation can flip a pool argmax or a ReLU gate, in which case the
// central difference straddles a kink and legitimately disagrees with the
// (one-sided) analytic derivative. The check therefore tolerates a small
// fraction of kinked coordinates but requires the bulk to match tightly.
void CheckGradients(Network& net, const Tensor& batch, const std::vector<int>& labels,
                    double tolerance) {
  net.Forward(batch, labels);
  net.Backward();

  Rng pick(12345);
  int checked = 0;
  int mismatched = 0;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      const int64_t size = p.value->size();
      const int64_t samples = std::min<int64_t>(size, 8);
      for (int64_t s = 0; s < samples; ++s) {
        const int64_t i =
            static_cast<int64_t>(pick.NextBounded(static_cast<uint64_t>(size)));
        const float original = (*p.value)[i];
        const float analytic = (*p.grad)[i];
        const float eps = 2e-3f;
        (*p.value)[i] = original + eps;
        const double loss_plus = net.Evaluate(batch, labels).loss;
        (*p.value)[i] = original - eps;
        const double loss_minus = net.Evaluate(batch, labels).loss;
        (*p.value)[i] = original;
        const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
        const double scale =
            std::max({1.0, std::fabs(numeric), static_cast<double>(std::fabs(analytic))});
        ++checked;
        if (std::fabs(analytic - numeric) > tolerance * scale) {
          ++mismatched;
          // Gross disagreement is a real bug, kink or not.
          EXPECT_LT(std::fabs(analytic - numeric), 0.5 * scale)
              << p.name << "[" << i << "]: analytic " << analytic << " vs numeric "
              << numeric;
        }
      }
    }
  }
  EXPECT_LE(mismatched, std::max(1, checked / 6))
      << mismatched << "/" << checked << " sampled coordinates disagreed";
}

Batch SmallBatch(int k, int channels, int hw, int classes, uint64_t seed) {
  DatasetConfig config;
  config.num_classes = classes;
  config.channels = channels;
  config.height = hw;
  config.width = hw;
  config.train_size = 64;
  config.seed = seed;
  SyntheticDataset dataset(config);
  return dataset.TrainBatch(0, k);
}

TEST(GradCheckTest, MlpGradientsMatchNumeric) {
  Rng rng(1);
  auto net = BuildMlp(/*input_dim=*/3 * 8 * 8, /*hidden_dim=*/16, /*hidden_layers=*/2,
                      /*classes=*/4, rng);
  const Batch batch = SmallBatch(5, 3, 8, 4, 7);
  CheckGradients(*net, batch.images, batch.labels, 2e-2);
}

TEST(GradCheckTest, ConvNetGradientsMatchNumeric) {
  Rng rng(2);
  Network net;
  net.Add(std::make_unique<Conv2dLayer>("c1", 2, 4, 3, 1, 1, rng));
  net.Add(std::make_unique<ReluLayer>("r1"));
  net.Add(std::make_unique<MaxPool2Layer>("p1"));
  net.Add(std::make_unique<FullyConnectedLayer>("fc", 3, 4 * 4 * 4, rng));
  const Batch batch = SmallBatch(4, 2, 8, 3, 9);
  CheckGradients(net, batch.images, batch.labels, 2e-2);
}

TEST(GradCheckTest, StridedPaddedConvGradients) {
  Rng rng(3);
  Network net;
  net.Add(std::make_unique<Conv2dLayer>("c1", 1, 3, 5, 2, 2, rng));  // 8x8 -> 4x4
  net.Add(std::make_unique<FullyConnectedLayer>("fc", 2, 3 * 4 * 4, rng));
  const Batch batch = SmallBatch(3, 1, 8, 2, 11);
  CheckGradients(net, batch.images, batch.labels, 2e-2);
}

TEST(GradCheckTest, ResidualBlockGradients) {
  Rng rng(4);
  auto net = BuildSmallResNet(/*channels=*/2, /*image_hw=*/8, /*classes=*/3, /*width=*/4,
                              /*blocks=*/2, rng);
  const Batch batch = SmallBatch(3, 2, 8, 3, 13);
  CheckGradients(*net, batch.images, batch.labels, 2e-2);
}

TEST(SoftmaxTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor grad;
  const LossResult result = SoftmaxCrossEntropy(logits, {1, 3}, &grad);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
  // Gradient rows sum to zero.
  for (int64_t r = 0; r < 2; ++r) {
    double row_sum = 0.0;
    for (int64_t c = 0; c < 4; ++c) {
      row_sum += grad.At(r, c);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-7);
  }
}

TEST(SoftmaxTest, PerfectPredictionLowLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {10.0f, -10.0f, -10.0f});
  Tensor grad;
  const LossResult result = SoftmaxCrossEntropy(logits, {0}, &grad);
  EXPECT_LT(result.loss, 1e-6);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromVector({1, 2}, {1000.0f, 999.0f});
  Tensor grad;
  const LossResult result = SoftmaxCrossEntropy(logits, {0}, &grad);
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_LT(result.loss, 1.0);
}

TEST(FcLayerTest, SufficientFactorsMatchDenseGradient) {
  // The SF view of an FC layer's gradient must reconstruct to exactly the
  // dense gradient the layer computed (this equality is what lets HybComm
  // switch schemes without changing the algorithm).
  Rng rng(5);
  FullyConnectedLayer fc("fc", 6, 10, rng);
  Tensor in = Tensor::RandomUniform({4, 10}, -1.0f, 1.0f, rng);
  Tensor out;
  fc.Forward(in, &out);
  Tensor dout = Tensor::RandomUniform({4, 6}, -1.0f, 1.0f, rng);
  Tensor din;
  fc.Backward(dout, &din);

  const SufficientFactors factors = fc.LastSufficientFactors();
  Tensor recon({6, 10});
  ReconstructGradient(factors, &recon);
  EXPECT_DOUBLE_EQ(MaxAbsDiff(recon, fc.weight_grad()), 0.0);
}

TEST(DatasetTest, DeterministicBatches) {
  DatasetConfig config;
  config.seed = 21;
  SyntheticDataset a(config);
  SyntheticDataset b(config);
  const Batch ba = a.TrainBatch(3, 16);
  const Batch bb = b.TrainBatch(3, 16);
  EXPECT_EQ(ba.labels, bb.labels);
  EXPECT_DOUBLE_EQ(MaxAbsDiff(ba.images, bb.images), 0.0);
}

TEST(DatasetTest, WorkerPartitionUnionEqualsBigBatch) {
  // P workers with batch K at iteration t must jointly see exactly the
  // single-node batch of size P*K — the property behind BSP equivalence.
  DatasetConfig config;
  config.seed = 22;
  SyntheticDataset dataset(config);
  const int p = 4;
  const int k = 8;
  const Batch big = dataset.TrainBatch(2, p * k);
  const int64_t pixels = 3 * 32 * 32;
  for (int w = 0; w < p; ++w) {
    const Batch part = dataset.TrainBatch(2, k, w, p);
    for (int j = 0; j < k; ++j) {
      const int big_index = w * k + j;
      EXPECT_EQ(part.labels[j], big.labels[big_index]);
      for (int64_t px = 0; px < pixels; ++px) {
        ASSERT_EQ(part.images[j * pixels + px], big.images[big_index * pixels + px]);
      }
    }
  }
}

TEST(DatasetTest, TrainAndTestDiffer) {
  DatasetConfig config;
  config.seed = 23;
  SyntheticDataset dataset(config);
  const Batch train = dataset.TrainBatch(0, 4);
  const Batch test = dataset.TestSet();
  // Same generator family but different streams; spot-check divergence.
  EXPECT_NE(train.images[0], test.images[0]);
}

TEST(SgdTest, PlainStep) {
  SgdOptimizer opt({.learning_rate = 0.1f});
  Tensor value = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor grad = Tensor::FromVector({2}, {1.0f, -1.0f});
  opt.Step("p", grad, &value);
  EXPECT_FLOAT_EQ(value[0], 0.9f);
  EXPECT_FLOAT_EQ(value[1], 2.1f);
}

TEST(SgdTest, MomentumAccumulates) {
  SgdOptimizer opt({.learning_rate = 1.0f, .momentum = 0.5f});
  Tensor value = Tensor::FromVector({1}, {0.0f});
  Tensor grad = Tensor::FromVector({1}, {1.0f});
  opt.Step("p", grad, &value);
  EXPECT_FLOAT_EQ(value[0], -1.0f);  // v = 1
  opt.Step("p", grad, &value);
  EXPECT_FLOAT_EQ(value[0], -2.5f);  // v = 1.5
}

TEST(SgdTest, WeightDecayShrinks)
{
  SgdOptimizer opt({.learning_rate = 0.5f, .momentum = 0.0f, .weight_decay = 0.1f});
  Tensor value = Tensor::FromVector({1}, {2.0f});
  Tensor grad = Tensor::FromVector({1}, {0.0f});
  opt.Step("p", grad, &value);
  EXPECT_FLOAT_EQ(value[0], 2.0f - 0.5f * 0.2f);
}

TEST(SgdTest, IndependentKeysIndependentVelocity) {
  SgdOptimizer opt({.learning_rate = 1.0f, .momentum = 0.9f});
  Tensor a = Tensor::FromVector({1}, {0.0f});
  Tensor b = Tensor::FromVector({1}, {0.0f});
  Tensor grad = Tensor::FromVector({1}, {1.0f});
  opt.Step("a", grad, &a);
  opt.Step("b", grad, &b);
  EXPECT_FLOAT_EQ(a[0], b[0]);
}

TEST(TrainingTest, MlpLearnsSyntheticTask) {
  DatasetConfig config;
  config.num_classes = 4;
  config.channels = 1;
  config.height = 8;
  config.width = 8;
  config.train_size = 256;
  config.test_size = 128;
  config.noise_stddev = 0.3f;
  config.seed = 77;
  SyntheticDataset dataset(config);

  Rng rng(42);
  auto net = BuildMlp(8 * 8, 32, 1, 4, rng);
  SgdOptimizer opt({.learning_rate = 0.1f, .momentum = 0.9f});
  const auto stats = TrainSingleNode(*net, dataset, opt, 60, 32);
  EXPECT_GT(stats.front().loss, 1.0);
  EXPECT_LT(stats.back().loss, 0.4);

  const Batch test = dataset.TestSet();
  const LossResult result = net->Evaluate(test.images, test.labels);
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(NetworkTest, BackwardOrderEnforced) {
  Rng rng(6);
  auto net = BuildMlp(16, 8, 1, 2, rng);
  DatasetConfig config;
  config.channels = 1;
  config.height = 4;
  config.width = 4;
  config.num_classes = 2;
  SyntheticDataset dataset(config);
  const Batch batch = dataset.TrainBatch(0, 2);
  net->Forward(batch.images, batch.labels);
  EXPECT_DEATH(net->BackwardThrough(0), "top-down");
}

TEST(NetworkTest, ParamCountsMatchBuilders) {
  Rng rng(8);
  auto quick = BuildCifarQuick(3, 32, 10, rng);
  // Caffe cifar10_quick: 145,578 trainable parameters.
  EXPECT_EQ(quick->total_params(), 145578);
}

}  // namespace
}  // namespace poseidon

/// \file
/// Bandwidth-feedback re-planning: turns windowed link-stats snapshots
/// (MessageBus::SnapshotLinkStatsDelta) into plan swaps. The Replanner owns a
/// base PlanRequest; each observation window it derives the busiest-node
/// egress bandwidth, compares it against the bandwidth the current plan was
/// costed at, and when the divergence exceeds a hysteresis threshold re-keys
/// the request at the observed bandwidth through the PlanCache. The caller
/// (Trainer) applies the returned plan only at an iteration boundary, so
/// trajectories stay deterministic given the same swap schedule.
///
/// The Replanner itself is deliberately bus-free — it consumes
/// ObservedLinkStats values, so tests can drive it with synthetic windows.
#ifndef POSEIDON_SRC_PLANNER_REPLANNER_H_
#define POSEIDON_SRC_PLANNER_REPLANNER_H_

#include <memory>

#include "src/planner/comm_plan.h"
#include "src/planner/comm_planner.h"
#include "src/planner/plan_cache.h"
#include "src/transport/bus.h"

namespace poseidon {

struct ReplanOptions {
  /// Re-plan when |observed / planned - 1| exceeds this. 0.3 keeps ordinary
  /// contention jitter from thrashing plans; tests use tighter values.
  double hysteresis = 0.3;
  /// Windows shorter than this are noise (a clock tick apart) and ignored.
  double min_window_s = 1e-6;
  /// Observed bandwidths below this are idle windows and ignored.
  double min_gbps = 1e-3;
};

/// One observation window's verdict.
struct ReplanDecision {
  bool replan = false;
  double observed_gbps = 0.0;  ///< busiest-node egress bandwidth, 0 if idle
  double divergence = 0.0;     ///< |observed / reference - 1|
  /// The re-keyed plan when `replan`; nullptr otherwise.
  std::shared_ptr<const CommPlan> plan;
};

class Replanner {
 public:
  /// `base` is re-keyed (only nic_gbps changes) on every re-plan. When
  /// `base.nic_gbps` is 0 (byte-basis plan, no bandwidth assumption), the
  /// first non-idle window calibrates the reference without re-planning.
  Replanner(PlanRequest base, ReplanOptions options, PlanCache* cache);

  /// Feeds one windowed snapshot; deterministic given the same sequence of
  /// windows (no internal clocks or RNG).
  ReplanDecision Observe(const ObservedLinkStats& window);

  /// Busiest-node egress bandwidth of `window` (max over source nodes of
  /// summed outbound bytes), or 0 for idle/degenerate windows.
  static double ObservedGbps(const ObservedLinkStats& window, double min_window_s);

  double reference_gbps() const { return reference_gbps_; }
  const PlanRequest& request() const { return base_; }

 private:
  PlanRequest base_;
  ReplanOptions options_;
  PlanCache* cache_;        // not owned
  double reference_gbps_;   // bandwidth the current plan is costed at
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_PLANNER_REPLANNER_H_

/// \file
/// Canonical named workloads shared by the test harness, the multi-process
/// launcher and the benches.
///
/// A multi-process cluster needs every process to construct the *same*
/// deterministic workload from nothing but a name on the command line — the
/// dataset, the replica factory and the hyperparameters cannot be shipped
/// over the wire. These definitions used to live in tests/testing/harness.cc;
/// they moved here so `tools/poseidon_launch` and the conformance tests are
/// guaranteed to train the same model the in-process oracle trains (the
/// harness now delegates to these).
#ifndef POSEIDON_SRC_POSEIDON_WORKLOADS_H_
#define POSEIDON_SRC_POSEIDON_WORKLOADS_H_

#include "src/nn/dataset.h"
#include "src/poseidon/trainer.h"

namespace poseidon {
namespace workloads {

/// The canonical tiny workload: 8x8 single-channel images, 3 classes, 96
/// training samples, dataset seed 2024.
SyntheticDataset TinyDataset();

/// Deterministic factory for the canonical small MLP replica
/// (64-20-...-20-3, network seed 13). Every replica built from one factory
/// call — in any process — is bit-identical.
NetworkFactory TinyMlpFactory(int hidden_layers = 2);

/// The canonical small-cluster trainer options: lr 0.05 / momentum 0.9, 6
/// samples per worker, 256-byte KV pairs, two syncer threads. Callers
/// override fields freely after construction.
TrainerOptions SmallTrainerOptions(int workers = 4, int servers = 2,
                                   int shards = 2, int staleness = 0,
                                   FcSyncPolicy policy = FcSyncPolicy::kDense);

}  // namespace workloads
}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_WORKLOADS_H_

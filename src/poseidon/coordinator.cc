#include "src/poseidon/coordinator.h"

#include "src/common/logging.h"

namespace poseidon {

Coordinator::Coordinator(Network& net, const ClusterInfo& cluster) : cluster_(cluster) {
  CHECK_GT(cluster_.num_workers, 0);
  CHECK_GT(cluster_.num_servers, 0);
  CHECK_GT(cluster_.shards_per_server, 0);
  CHECK_GE(cluster_.staleness, 0);
  CHECK_GT(cluster_.kv_pair_bytes, 0);
  const int64_t pair_floats = std::max<int64_t>(1, cluster_.kv_pair_bytes / 4);

  // Round-robin cursor over the flat shard-endpoint space, across *all*
  // pairs, all layers. The mapping is server-major — endpoint g lives on
  // server g % num_servers, shard (g / num_servers) % shards — so
  // consecutive pairs alternate server nodes first and shards second: a
  // layer with fewer pairs than endpoints still spreads its traffic over
  // every server NIC, and with one shard per server the cursor reduces to
  // the seed's round-robin over servers exactly.
  const int shards = cluster_.shards_per_server;
  const int num_endpoints = cluster_.num_servers * shards;
  int next_endpoint = 0;
  for (int l = 0; l < net.num_layers(); ++l) {
    Layer& layer = net.layer(l);
    LayerInfo info;
    info.name = layer.name();
    info.type = layer.type();
    info.fc_m = layer.fc_m();
    info.fc_n = layer.fc_n();
    info.total_floats = layer.num_params();

    int64_t offset = 0;
    int chunk = 0;
    while (offset < info.total_floats) {
      KvPairInfo pair;
      pair.layer = l;
      pair.chunk = chunk++;
      pair.offset = offset;
      pair.length = std::min(pair_floats, info.total_floats - offset);
      pair.server = next_endpoint % cluster_.num_servers;
      pair.shard = (next_endpoint / cluster_.num_servers) % shards;
      next_endpoint = (next_endpoint + 1) % num_endpoints;
      offset += pair.length;
      info.pairs.push_back(pair);
    }
    layers_.push_back(std::move(info));
  }
}

const LayerInfo& Coordinator::layer(int l) const {
  CHECK_GE(l, 0);
  CHECK_LT(l, num_layers());
  return layers_[static_cast<size_t>(l)];
}

StatusOr<int64_t> Coordinator::Query(const std::string& property) const {
  if (property == "n_worker") {
    return static_cast<int64_t>(cluster_.num_workers);
  }
  if (property == "n_server") {
    return static_cast<int64_t>(cluster_.num_servers);
  }
  if (property == "n_shard") {
    return static_cast<int64_t>(cluster_.shards_per_server);
  }
  if (property == "staleness") {
    return static_cast<int64_t>(cluster_.staleness);
  }
  if (property == "batchsize") {
    return static_cast<int64_t>(cluster_.batch_per_worker);
  }
  if (property == "n_layer") {
    return static_cast<int64_t>(num_layers());
  }
  if (property == "kv_pair_bytes") {
    return cluster_.kv_pair_bytes;
  }
  return NotFoundError("unknown property: " + property);
}

CommScheme Coordinator::BestScheme(int l) const {
  const LayerInfo& info = layer(l);
  LayerSpec spec;
  spec.name = info.name;
  spec.type = info.type;
  spec.fc_m = info.fc_m;
  spec.fc_n = info.fc_n;
  return poseidon::BestScheme(spec, cluster_.batch_per_worker, cluster_.num_workers,
                              cluster_.num_servers);
}

CommScheme Coordinator::BestSchemeExtended(int l) const {
  const LayerInfo& info = layer(l);
  LayerSpec spec;
  spec.name = info.name;
  spec.type = info.type;
  spec.fc_m = info.fc_m;
  spec.fc_n = info.fc_n;
  spec.params = info.total_floats;
  return poseidon::BestSchemeExtended(spec, cluster_.batch_per_worker, cluster_.num_workers,
                                      cluster_.num_servers, cluster_.shards_per_server);
}

StatusOr<CommScheme> Coordinator::BestScheme(const std::string& layer_name) const {
  for (int l = 0; l < num_layers(); ++l) {
    if (layers_[static_cast<size_t>(l)].name == layer_name) {
      return BestScheme(l);
    }
  }
  return NotFoundError("unknown layer: " + layer_name);
}

std::vector<KvPairInfo> Coordinator::PairsOnServer(int l, int server) const {
  std::vector<KvPairInfo> pairs;
  for (const KvPairInfo& pair : layer(l).pairs) {
    if (pair.server == server) {
      pairs.push_back(pair);
    }
  }
  return pairs;
}

std::vector<KvPairInfo> Coordinator::PairsOnShard(int l, int server, int shard) const {
  std::vector<KvPairInfo> pairs;
  for (const KvPairInfo& pair : layer(l).pairs) {
    if (pair.server == server && pair.shard == shard) {
      pairs.push_back(pair);
    }
  }
  return pairs;
}

int Coordinator::OneBitOwnerServer(int l) const { return l % cluster_.num_servers; }

int Coordinator::OneBitOwnerShard(int l) const {
  return (l / cluster_.num_servers) % cluster_.shards_per_server;
}

std::vector<int64_t> Coordinator::ServerLoadFloats() const {
  std::vector<int64_t> load(static_cast<size_t>(cluster_.num_servers), 0);
  for (const LayerInfo& info : layers_) {
    for (const KvPairInfo& pair : info.pairs) {
      load[static_cast<size_t>(pair.server)] += pair.length;
    }
  }
  return load;
}

std::vector<int64_t> Coordinator::ShardLoadFloats() const {
  const int shards = cluster_.shards_per_server;
  std::vector<int64_t> load(static_cast<size_t>(cluster_.num_servers * shards), 0);
  for (const LayerInfo& info : layers_) {
    for (const KvPairInfo& pair : info.pairs) {
      load[static_cast<size_t>(pair.server * shards + pair.shard)] += pair.length;
    }
  }
  return load;
}

}  // namespace poseidon

// End-to-end tests of the threaded Poseidon runtime: BSP consistency,
// scheme equivalence (PS == SFB == HybComm, bit-for-bit), equivalence with
// single-node large-batch SGD, determinism, and the statistical behaviour of
// 1-bit quantization.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/nn/builders.h"
#include "src/nn/single_trainer.h"
#include "src/poseidon/trainer.h"
#include "src/tensor/ops.h"

namespace poseidon {
namespace {

DatasetConfig TinyData() {
  DatasetConfig config;
  config.num_classes = 4;
  config.channels = 1;
  config.height = 8;
  config.width = 8;
  config.train_size = 128;
  config.test_size = 64;
  config.noise_stddev = 0.4f;
  config.seed = 1234;
  return config;
}

NetworkFactory MlpFactory(uint64_t seed = 555) {
  return [seed] {
    Rng rng(seed);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/24, /*hidden_layers=*/2,
                    /*classes=*/4, rng);
  };
}

NetworkFactory ConvFactory(uint64_t seed = 777) {
  return [seed] {
    Rng rng(seed);
    return BuildCifarQuick(/*channels=*/1, /*image_hw=*/8, /*classes=*/4, rng);
  };
}

TrainerOptions Options(int workers, FcSyncPolicy policy, int servers = 0) {
  TrainerOptions options;
  options.num_workers = workers;
  options.num_servers = servers == 0 ? workers : servers;
  options.batch_per_worker = 8;
  options.sgd = {.learning_rate = 0.05f, .momentum = 0.9f};
  options.fc_policy = policy;
  options.kv_pair_bytes = 512;  // force multi-pair sharding even for tiny nets
  return options;
}

// Collects all parameters of a network into one flat vector.
std::vector<float> AllParams(Network& net) {
  std::vector<float> out;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      out.insert(out.end(), p.value->data(), p.value->data() + p.value->size());
    }
  }
  return out;
}

double MaxDiff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return worst;
}

TEST(IntegrationTest, ReplicasStayBitwiseIdenticalUnderBsp) {
  SyntheticDataset dataset(TinyData());
  PoseidonTrainer trainer(MlpFactory(), Options(3, FcSyncPolicy::kHybrid));
  trainer.Train(dataset, 10);
  const std::vector<float> w0 = AllParams(trainer.worker_net(0));
  for (int w = 1; w < 3; ++w) {
    EXPECT_EQ(MaxDiff(w0, AllParams(trainer.worker_net(w))), 0.0)
        << "replica " << w << " diverged";
  }
}

TEST(IntegrationTest, SfbBitwiseEqualsDensePs) {
  // HybComm's guarantee: switching an FC layer from PS to SFB changes bytes
  // on the wire, never the algorithm. With reductions in fixed worker order
  // the trajectories are bitwise identical.
  SyntheticDataset dataset(TinyData());
  PoseidonTrainer dense(MlpFactory(), Options(2, FcSyncPolicy::kDense));
  PoseidonTrainer sfb(MlpFactory(), Options(2, FcSyncPolicy::kSfb));
  dense.Train(dataset, 8);
  sfb.Train(dataset, 8);
  EXPECT_EQ(MaxDiff(AllParams(dense.worker_net(0)), AllParams(sfb.worker_net(0))), 0.0);
}

TEST(IntegrationTest, HybridEqualsDensePs) {
  SyntheticDataset dataset(TinyData());
  PoseidonTrainer dense(ConvFactory(), Options(2, FcSyncPolicy::kDense));
  PoseidonTrainer hybrid(ConvFactory(), Options(2, FcSyncPolicy::kHybrid));
  dense.Train(dataset, 6);
  hybrid.Train(dataset, 6);
  EXPECT_EQ(MaxDiff(AllParams(dense.worker_net(0)), AllParams(hybrid.worker_net(0))), 0.0);
}

TEST(IntegrationTest, DistributedMatchesSingleNodeLargeBatch) {
  // Synchronous data-parallel SGD with P workers of batch K must follow the
  // same trajectory as one worker with batch P*K (up to float summation
  // order; §5.1 "synchronized replication ... enables many models to
  // converge in fewer steps").
  SyntheticDataset dataset(TinyData());
  const int iters = 10;

  PoseidonTrainer distributed(MlpFactory(), Options(4, FcSyncPolicy::kHybrid));
  distributed.Train(dataset, iters);

  auto reference = MlpFactory()();
  SgdOptimizer opt({.learning_rate = 0.05f, .momentum = 0.9f});
  TrainSingleNode(*reference, dataset, opt, iters, /*batch=*/4 * 8);

  const std::vector<float> dist = AllParams(distributed.worker_net(0));
  const std::vector<float> ref = AllParams(*reference);
  EXPECT_LT(MaxDiff(dist, ref), 2e-4) << "BSP trajectory diverged from large-batch SGD";
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  SyntheticDataset dataset(TinyData());
  PoseidonTrainer a(ConvFactory(), Options(3, FcSyncPolicy::kHybrid));
  PoseidonTrainer b(ConvFactory(), Options(3, FcSyncPolicy::kHybrid));
  a.Train(dataset, 5);
  b.Train(dataset, 5);
  EXPECT_EQ(MaxDiff(AllParams(a.worker_net(0)), AllParams(b.worker_net(0))), 0.0);
}

TEST(IntegrationTest, FewerServersThanWorkers) {
  SyntheticDataset dataset(TinyData());
  PoseidonTrainer trainer(MlpFactory(), Options(4, FcSyncPolicy::kDense, /*servers=*/2));
  const auto stats = trainer.Train(dataset, 8);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
  const std::vector<float> w0 = AllParams(trainer.worker_net(0));
  EXPECT_EQ(MaxDiff(w0, AllParams(trainer.worker_net(3))), 0.0);
}

TEST(IntegrationTest, TrainingReducesLossAndGeneralizes) {
  DatasetConfig config = TinyData();
  config.noise_stddev = 0.3f;
  SyntheticDataset dataset(config);
  PoseidonTrainer trainer(MlpFactory(), Options(2, FcSyncPolicy::kHybrid));
  const auto stats = trainer.Train(dataset, 60);
  EXPECT_LT(stats.back().mean_loss, 0.5 * stats.front().mean_loss);
  EXPECT_GT(trainer.EvaluateTest(dataset).accuracy, 0.8);
}

TEST(IntegrationTest, OneBitQuantizationDegradesButLearns) {
  // Fig 11's contrast: 1-bit quantization still reduces loss but trails the
  // exact schemes on the same iteration budget.
  SyntheticDataset dataset(TinyData());
  const int iters = 40;
  PoseidonTrainer exact(MlpFactory(), Options(4, FcSyncPolicy::kHybrid));
  PoseidonTrainer onebit(MlpFactory(), Options(4, FcSyncPolicy::kOneBit));
  const auto exact_stats = exact.Train(dataset, iters);
  const auto onebit_stats = onebit.Train(dataset, iters);

  EXPECT_LT(onebit_stats.back().mean_loss, onebit_stats.front().mean_loss);
  // The exact run should be at least as good (small slack for noise).
  EXPECT_LE(exact_stats.back().mean_loss, onebit_stats.back().mean_loss + 0.05);
  // And the parameter trajectories genuinely differ (it is a lossy codec).
  EXPECT_GT(MaxDiff(AllParams(exact.worker_net(0)), AllParams(onebit.worker_net(0))), 1e-4);
}

TEST(IntegrationTest, TrafficFollowsSchemeChoice) {
  // SFB for a wide-but-short FC stack should move fewer bytes than dense PS
  // when the cost model says so (and the runtime's accounting shows it).
  DatasetConfig config = TinyData();
  SyntheticDataset dataset(config);
  auto factory = [] {
    Rng rng(31);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/256, /*hidden_layers=*/1,
                    /*classes=*/4, rng);
  };
  TrainerOptions dense_opts = Options(4, FcSyncPolicy::kDense);
  dense_opts.batch_per_worker = 4;  // tiny K: SFs are much smaller than MN
  TrainerOptions sfb_opts = dense_opts;
  sfb_opts.fc_policy = FcSyncPolicy::kSfb;

  int64_t dense_bytes = 0;
  int64_t sfb_bytes = 0;
  {
    PoseidonTrainer trainer(factory, dense_opts);
    trainer.Train(dataset, 3);
    for (int64_t b : trainer.bus().TxBytes()) {
      dense_bytes += b;
    }
  }
  {
    PoseidonTrainer trainer(factory, sfb_opts);
    trainer.Train(dataset, 3);
    for (int64_t b : trainer.bus().TxBytes()) {
      sfb_bytes += b;
    }
  }
  EXPECT_LT(sfb_bytes, dense_bytes / 2);
}

TEST(IntegrationTest, TrainCanBeResumed) {
  SyntheticDataset dataset(TinyData());
  PoseidonTrainer trainer(MlpFactory(), Options(2, FcSyncPolicy::kHybrid));
  const auto first = trainer.Train(dataset, 5);
  const auto second = trainer.Train(dataset, 5);
  EXPECT_EQ(second.front().iter, 5);
  EXPECT_EQ(second.size(), 5u);
  EXPECT_LT(second.back().mean_loss, first.front().mean_loss);
}

}  // namespace
}  // namespace poseidon

// Unit tests for the discrete-event engine and the network fabric.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.h"
#include "src/sim/event_queue.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"

namespace poseidon {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(2.0, [&] { order.push_back(2); });
  queue.Push(1.0, [&] { order.push_back(1); });
  queue.Push(3.0, [&] { order.push_back(3); });
  double t = 0.0;
  while (!queue.empty()) {
    queue.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(t, 3.0);
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    queue.Push(1.0, [&order, i] { order.push_back(i); });
  }
  double t = 0.0;
  while (!queue.empty()) {
    queue.Pop(&t)();
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, AdvancesVirtualTime) {
  Simulator sim;
  double seen = -1.0;
  sim.Schedule(5.0, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimulatorTest, NestedSchedulingChains) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) {
      sim.Schedule(1.0, chain);
    }
  };
  sim.Schedule(1.0, chain);
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

class FabricTest : public ::testing::Test {
 protected:
  FabricConfig Config(double gbps) {
    FabricConfig config;
    config.egress_bytes_per_sec = GbpsToBytesPerSec(gbps);
    config.ingress_bytes_per_sec = GbpsToBytesPerSec(gbps);
    config.latency_s = 1e-6;
    return config;
  }
};

TEST_F(FabricTest, SingleTransferTakesBandwidthTime) {
  Simulator sim;
  NetworkFabric fabric(&sim, 2, Config(10.0));  // 1.25 GB/s
  double done = -1.0;
  const double bytes = 1.25e9;  // exactly one second of wire time
  fabric.Send(0, 1, bytes, [&] { done = sim.Now(); });
  sim.Run();
  // Pipelined store-and-forward: one second of egress, one extra chunk of
  // ingress, plus latency.
  EXPECT_GT(done, 1.0);
  EXPECT_LT(done, 1.01);
}

TEST_F(FabricTest, EgressSerializesConcurrentSends) {
  Simulator sim;
  NetworkFabric fabric(&sim, 3, Config(10.0));
  const double bytes = 1.25e9;
  std::vector<double> done(2, -1.0);
  fabric.Send(0, 1, bytes, [&] { done[0] = sim.Now(); });
  fabric.Send(0, 2, bytes, [&] { done[1] = sim.Now(); });
  sim.Run();
  // Both flows leave node 0's egress: total wire time ~2 s for the pair.
  const double last = std::max(done[0], done[1]);
  EXPECT_GT(last, 2.0);
  EXPECT_LT(last, 2.02);
}

TEST_F(FabricTest, IncastSerializesAtIngress) {
  Simulator sim;
  NetworkFabric fabric(&sim, 4, Config(10.0));
  const double bytes = 1.25e9;
  std::vector<double> done(3, -1.0);
  for (int src = 1; src <= 3; ++src) {
    fabric.Send(src, 0, bytes, [&, src] { done[src - 1] = sim.Now(); });
  }
  sim.Run();
  const double last = std::max({done[0], done[1], done[2]});
  EXPECT_GT(last, 3.0);  // node 0's ingress is the bottleneck
  EXPECT_LT(last, 3.05);
}

TEST_F(FabricTest, FullDuplexDirectionsAreIndependent) {
  Simulator sim;
  NetworkFabric fabric(&sim, 2, Config(10.0));
  const double bytes = 1.25e9;
  std::vector<double> done(2, -1.0);
  fabric.Send(0, 1, bytes, [&] { done[0] = sim.Now(); });
  fabric.Send(1, 0, bytes, [&] { done[1] = sim.Now(); });
  sim.Run();
  EXPECT_LT(std::max(done[0], done[1]), 1.05);  // no interference
}

TEST_F(FabricTest, LocalSendSkipsNic) {
  Simulator sim;
  NetworkFabric fabric(&sim, 2, Config(10.0));
  double done = -1.0;
  fabric.Send(0, 0, 1e9, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_LT(done, 1e-3);
  EXPECT_DOUBLE_EQ(fabric.stats().tx_bytes[0], 0.0);  // no NIC traffic
}

TEST_F(FabricTest, StatsAccountAllBytes) {
  Simulator sim;
  NetworkFabric fabric(&sim, 3, Config(40.0));
  fabric.Send(0, 1, 1000.0, [] {});
  fabric.Send(0, 2, 2000.0, [] {});
  fabric.Send(1, 2, 500.0, [] {});
  sim.Run();
  EXPECT_DOUBLE_EQ(fabric.stats().tx_bytes[0], 3000.0);
  EXPECT_DOUBLE_EQ(fabric.stats().tx_bytes[1], 500.0);
  EXPECT_DOUBLE_EQ(fabric.stats().rx_bytes[2], 2500.0);
  EXPECT_DOUBLE_EQ(fabric.stats().rx_bytes[1], 1000.0);
}

TEST_F(FabricTest, ZeroByteMessageDeliversAfterLatency) {
  Simulator sim;
  NetworkFabric fabric(&sim, 2, Config(10.0));
  double done = -1.0;
  fabric.Send(0, 1, 0.0, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(done, 1e-6);
}

TEST_F(FabricTest, ChunkingPipelinesLargeTransfers) {
  // A 100 MB transfer at 10 Gbps should take ~80 ms end to end, not ~160 ms
  // (which a non-pipelined store-and-forward model would give).
  Simulator sim;
  NetworkFabric fabric(&sim, 2, Config(10.0));
  double done = -1.0;
  fabric.Send(0, 1, 100e6, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_GT(done, 0.080);
  EXPECT_LT(done, 0.085);
}

TEST_F(FabricTest, ResetStatsClearsCounters) {
  Simulator sim;
  NetworkFabric fabric(&sim, 2, Config(10.0));
  fabric.Send(0, 1, 1000.0, [] {});
  sim.Run();
  fabric.ResetStats();
  EXPECT_DOUBLE_EQ(fabric.stats().tx_bytes[0], 0.0);
  EXPECT_EQ(fabric.stats().messages, 0);
}

}  // namespace
}  // namespace poseidon

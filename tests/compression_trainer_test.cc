// End-to-end tests of the compressed PS path: a real small-cluster training
// run under each wire codec (fp16 / int8 / top-k with error feedback) must
//   * converge — error feedback keeps the quantized trajectory close to the
//     raw one, and nothing may be silently dropped along the way;
//   * be bitwise reproducible — the per-(layer, clock) seeded rounding makes
//     two identical runs land on identical losses and final weights;
//   * be SIMD-dispatch invariant — scalar and vector encoders produce the
//     same bits (the PR-8 contract extended to the quantization kernels).
// Plus the plan-resolution seams: the size gate, the per-layer auto choice,
// and the server-side rejection of malformed compressed frames.
#include <gtest/gtest.h>

#include <vector>

#include "src/models/comm_cost.h"
#include "src/poseidon/runtime_scheme.h"
#include "src/poseidon/trainer.h"
#include "src/simd/vec.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

// The tiny MLP's layers sit far below kCompressionMinFloats, so trainer
// tests drop the gate to exercise the codecs on every PS layer.
TrainerOptions CompressedOptions(PsCompressionPolicy policy, double density = 0.25) {
  TrainerOptions options = testing::SmallTrainerOptions();
  options.ps_compression = policy;
  options.topk_density = density;
  options.compression_min_floats = 1;
  return options;
}

int64_t TotalRejectedPushes(PoseidonTrainer& trainer, int num_servers) {
  int64_t total = 0;
  for (int s = 0; s < num_servers; ++s) {
    total += trainer.server(s).rejected_pushes();
  }
  return total;
}

TEST(CompressionTrainerTest, EveryCodecConvergesWithoutDrops) {
  const SyntheticDataset dataset = testing::TinyDataset();
  for (PsCompressionPolicy policy :
       {PsCompressionPolicy::kFp16, PsCompressionPolicy::kInt8,
        PsCompressionPolicy::kTopK}) {
    SCOPED_TRACE(PsCompressionPolicyName(policy));
    TrainerOptions options = CompressedOptions(policy);
    PoseidonTrainer trainer(testing::TinyMlpFactory(), options);

    // The plan actually compresses: every PS layer runs the policy's codec.
    int compressed_layers = 0;
    for (size_t l = 0; l < trainer.compression().size(); ++l) {
      if (trainer.schemes()[l] == RuntimeScheme::kPsDense) {
        EXPECT_NE(trainer.compression()[l], GradCompression::kNone);
        ++compressed_layers;
      } else {
        EXPECT_EQ(trainer.compression()[l], GradCompression::kNone);
      }
    }
    ASSERT_GT(compressed_layers, 0);

    const std::vector<IterationStats> stats = trainer.Train(dataset, 12);
    ASSERT_EQ(stats.size(), 12u);
    EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss)
        << "compressed training did not reduce the loss";
    EXPECT_EQ(TotalRejectedPushes(trainer, options.num_servers), 0)
        << "well-formed compressed pushes must never be rejected";
  }
}

TEST(CompressionTrainerTest, QuantizedTrajectoryIsBitwiseReproducible) {
  for (PsCompressionPolicy policy :
       {PsCompressionPolicy::kFp16, PsCompressionPolicy::kInt8,
        PsCompressionPolicy::kTopK}) {
    SCOPED_TRACE(PsCompressionPolicyName(policy));
    const TrainerOptions options = CompressedOptions(policy);
    const testing::Trajectory first = testing::CaptureTrajectory(options, 8);
    const testing::Trajectory second = testing::CaptureTrajectory(options, 8);
    EXPECT_TRUE(first == second)
        << "two identical compressed runs diverged — the stochastic rounding "
           "is not a pure function of (layer, clock, index)";
  }
}

TEST(CompressionTrainerTest, QuantizedTrajectoryIsDispatchInvariant) {
  const TrainerOptions options = CompressedOptions(PsCompressionPolicy::kInt8);
  testing::Trajectory scalar_run, vector_run;
  {
    simd::ScopedLevel pinned(simd::Level::kScalar);
    scalar_run = testing::CaptureTrajectory(options, 6);
  }
  {
    simd::ScopedLevel pinned(simd::BestLevel());
    vector_run = testing::CaptureTrajectory(options, 6);
  }
  EXPECT_TRUE(scalar_run == vector_run)
      << "int8 trajectory differs between scalar and "
      << simd::LevelName(simd::BestLevel()) << " dispatch";

  const TrainerOptions fp16 = CompressedOptions(PsCompressionPolicy::kFp16);
  {
    simd::ScopedLevel pinned(simd::Level::kScalar);
    scalar_run = testing::CaptureTrajectory(fp16, 6);
  }
  {
    simd::ScopedLevel pinned(simd::BestLevel());
    vector_run = testing::CaptureTrajectory(fp16, 6);
  }
  EXPECT_TRUE(scalar_run == vector_run)
      << "fp16 trajectory differs between scalar and "
      << simd::LevelName(simd::BestLevel()) << " dispatch";
}

TEST(CompressionTrainerTest, SizeGateKeepsSmallLayersRaw) {
  // At the default gate the tiny MLP compresses nothing: the plan resolves
  // to kNone everywhere and training is the plain raw-fp32 runtime.
  TrainerOptions options = CompressedOptions(PsCompressionPolicy::kAuto);
  options.compression_min_floats = kCompressionMinFloats;
  PoseidonTrainer trainer(testing::TinyMlpFactory(), options);
  for (GradCompression compression : trainer.compression()) {
    EXPECT_EQ(compression, GradCompression::kNone);
  }
}

TEST(CompressionTrainerTest, AutoPolicyPicksTopKForPsLayers) {
  // At density 0.25 top-k costs 8 * 0.25 = 2 push bytes/float, tying fp16's
  // 2 but losing to int8's ~1.016; auto must therefore resolve int8. At
  // density 0.05 top-k (0.4 B/float) wins.
  EXPECT_EQ(BestCompression(1 << 20, 0.25), GradCompression::kInt8);
  EXPECT_EQ(BestCompression(1 << 20, 0.05), GradCompression::kTopK);
  EXPECT_EQ(BestCompression(1024, 0.05), GradCompression::kNone) << "below the gate";

  TrainerOptions options = CompressedOptions(PsCompressionPolicy::kAuto, 0.05);
  PoseidonTrainer trainer(testing::TinyMlpFactory(), options);
  int topk_layers = 0;
  for (size_t l = 0; l < trainer.compression().size(); ++l) {
    if (trainer.schemes()[l] == RuntimeScheme::kPsDense) {
      EXPECT_EQ(trainer.compression()[l], GradCompression::kTopK);
      ++topk_layers;
    }
  }
  EXPECT_GT(topk_layers, 0);
}

TEST(CompressionTrainerTest, SspRunsUnderCompression) {
  // Staleness > 0 exercises the snapshot-free binary16 reply path (the frame
  // is a fresh snapshot either way) and the SSP release gate together.
  TrainerOptions options = CompressedOptions(PsCompressionPolicy::kFp16);
  options.staleness = 1;
  PoseidonTrainer trainer(testing::TinyMlpFactory(), options);
  const std::vector<IterationStats> stats = trainer.Train(testing::TinyDataset(), 10);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss);
  EXPECT_EQ(TotalRejectedPushes(trainer, options.num_servers), 0);
}

}  // namespace
}  // namespace poseidon

#include "src/sim/simulator.h"

#include <utility>

#include "src/common/logging.h"

namespace poseidon {

void Simulator::Schedule(double delay, std::function<void()> callback) {
  CHECK_GE(delay, 0.0) << "cannot schedule into the past";
  queue_.Push(now_ + delay, std::move(callback));
}

void Simulator::ScheduleAt(double time, std::function<void()> callback) {
  CHECK_GE(time, now_) << "cannot schedule into the past";
  queue_.Push(time, std::move(callback));
}

uint64_t Simulator::Run() {
  stopped_ = false;
  uint64_t processed = 0;
  while (!queue_.empty() && !stopped_) {
    double time = 0.0;
    EventQueue::Callback callback = queue_.Pop(&time);
    CHECK_GE(time, now_);
    now_ = time;
    callback();
    ++processed;
    ++events_processed_;
  }
  return processed;
}

uint64_t Simulator::RunUntil(double deadline) {
  stopped_ = false;
  uint64_t processed = 0;
  while (!queue_.empty() && !stopped_ && queue_.PeekTime() <= deadline) {
    double time = 0.0;
    EventQueue::Callback callback = queue_.Pop(&time);
    now_ = time;
    callback();
    ++processed;
    ++events_processed_;
  }
  if (now_ < deadline && !stopped_) {
    now_ = deadline;
  }
  return processed;
}

}  // namespace poseidon

/// \file
/// Unbounded MPMC blocking queue used by the transport and thread pools.
///
/// Close() wakes all waiters; Pop() returns std::nullopt once the queue is
/// closed and drained, which is the shutdown signal for consumer threads.
#ifndef POSEIDON_SRC_COMMON_BLOCKING_QUEUE_H_
#define POSEIDON_SRC_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace poseidon {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is already closed (the item is dropped).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Bounded-wait variant: blocks at most `timeout`, then returns nullopt if
  // no item arrived (also nullopt when the queue closed empty). Consumers
  // that must interleave queue service with time-based work — the failure
  // detector's deadline scan — use this instead of polling TryPop.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking variant; returns nullopt when no item is ready.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_COMMON_BLOCKING_QUEUE_H_

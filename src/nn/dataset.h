// Synthetic image classification data.
//
// The paper trains on CIFAR-10 / ILSVRC12 / ImageNet22K; those corpora are
// not available offline, so convergence experiments use a deterministic
// class-conditional generator: each class gets a fixed random prototype
// image, and samples are prototype + Gaussian noise (difficulty controls the
// noise-to-signal ratio). This preserves what the statistical comparisons
// need — a non-trivial optimization landscape where faster/exact gradient
// aggregation converges in fewer iterations — while staying reproducible.
#ifndef POSEIDON_SRC_NN_DATASET_H_
#define POSEIDON_SRC_NN_DATASET_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace poseidon {

struct DatasetConfig {
  int num_classes = 10;
  int channels = 3;
  int height = 32;
  int width = 32;
  int train_size = 2000;
  int test_size = 500;
  float noise_stddev = 0.6f;  // relative to unit-norm prototypes
  uint64_t seed = 42;
};

struct Batch {
  Tensor images;            // [K, C, H, W]
  std::vector<int> labels;  // K entries
};

class SyntheticDataset {
 public:
  explicit SyntheticDataset(const DatasetConfig& config);

  // The `index`-th training batch of size `batch_size` for `worker` of
  // `num_workers`: workers draw disjoint, deterministic sample index ranges
  // (data-parallel partitioning, §2.1). A single-worker call with batch size
  // P*K sees exactly the union of P workers' K-sized batches, which is what
  // the BSP equivalence tests rely on.
  Batch TrainBatch(int64_t index, int batch_size, int worker = 0, int num_workers = 1) const;

  Batch TestSet() const;

  const DatasetConfig& config() const { return config_; }

 private:
  void MakeSample(int64_t global_index, bool test, float* out, int* label) const;

  DatasetConfig config_;
  std::vector<Tensor> prototypes_;  // per class, [C,H,W] flattened
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_NN_DATASET_H_

// GPU compute-time model.
//
// The simulator needs per-layer forward/backward durations. We distribute a
// model's per-batch GPU time across layers proportionally to FLOPs (backward
// costs 2x forward, the standard estimate), which preserves the property
// WFBP exploits: CONV layers at the bottom own ~90% of the compute while FC
// layers at the top own ~90% of the parameters.
//
// The total per-batch time comes from a calibration table holding the
// paper's measured single-node throughputs (§5.1); models not in the table
// fall back to an effective-FLOPS estimate for a Titan X (~2.2 TFLOP/s
// sustained, i.e. ~1/3 of peak, consistent with the paper's numbers).
#ifndef POSEIDON_SRC_CLUSTER_COMPUTE_MODEL_H_
#define POSEIDON_SRC_CLUSTER_COMPUTE_MODEL_H_

#include <string>
#include <vector>

#include "src/models/model_spec.h"

namespace poseidon {

enum class Engine {
  kCaffe,  // sequential layer-by-layer execution
  kTensorFlow,
};

const char* EngineName(Engine engine);

// Measured single-GPU throughput (images/s) for (model, engine); falls back
// to the FLOPS model when the pair was not reported in the paper.
double SingleNodeImagesPerSec(const ModelSpec& model, Engine engine);

struct LayerTiming {
  double fwd_s = 0.0;
  double bwd_s = 0.0;
};

struct ComputeTimings {
  std::vector<LayerTiming> layers;
  double batch_time_s = 0.0;  // sum of all fwd+bwd

  double total_fwd_s() const;
  double total_bwd_s() const;
};

// Per-layer durations for one batch of `batch` images.
ComputeTimings MakeComputeTimings(const ModelSpec& model, Engine engine, int batch);

}  // namespace poseidon

#endif  // POSEIDON_SRC_CLUSTER_COMPUTE_MODEL_H_

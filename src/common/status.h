// Error propagation without exceptions: Status and StatusOr<T>.
//
// The library never throws across public API boundaries; fallible operations
// return Status (or StatusOr<T> when they produce a value). Programming
// errors (precondition violations) use CHECK and abort instead.
#ifndef POSEIDON_SRC_COMMON_STATUS_H_
#define POSEIDON_SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace poseidon {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnavailable = 6,
  kInternal = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

// Holds either a value or a non-OK Status. value() CHECK-fails on error, so
// callers must test ok() first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define RETURN_IF_ERROR(expr)            \
  do {                                   \
    ::poseidon::Status status_ = (expr); \
    if (!status_.ok()) {                 \
      return status_;                    \
    }                                    \
  } while (false)

}  // namespace poseidon

#endif  // POSEIDON_SRC_COMMON_STATUS_H_

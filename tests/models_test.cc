// Tests for the model zoo (Table 3 parameter counts) and the Table 1 /
// Algorithm 1 communication cost model, including the worked example from
// paper §3.2.
#include <gtest/gtest.h>

#include "src/models/comm_cost.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

double Millions(int64_t v) { return static_cast<double>(v) / 1e6; }

TEST(ZooTest, Table3ParameterCounts) {
  // Paper Table 3: CIFAR-10 quick 145.6K, GoogLeNet ~5M, Inception-V3 27M,
  // VGG19 143M, VGG19-22K 229M, ResNet-152 60.2M.
  EXPECT_NEAR(static_cast<double>(MakeCifarQuick().total_params()), 145.6e3, 1.5e3);
  EXPECT_NEAR(Millions(MakeGoogLeNet().total_params()), 6.0, 1.2);
  EXPECT_NEAR(Millions(MakeInceptionV3().total_params()), 27.0, 2.5);
  EXPECT_NEAR(Millions(MakeVgg19().total_params()), 143.7, 1.5);
  EXPECT_NEAR(Millions(MakeVgg19_22K().total_params()), 229.0, 3.0);
  EXPECT_NEAR(Millions(MakeResNet152().total_params()), 60.2, 1.5);
  EXPECT_NEAR(Millions(MakeAlexNet().total_params()), 61.5, 1.5);
}

TEST(ZooTest, Vgg22KFcFractionIs91Percent) {
  // §5.1: VGG19-22K's "three FC layers occupy 91% of model parameters".
  EXPECT_NEAR(MakeVgg19_22K().fc_param_fraction(), 0.91, 0.015);
}

TEST(ZooTest, ConvComputeDominatesVgg) {
  // WFBP's premise: CONV layers own ~90% of FLOPs, FC layers ~90% of params.
  const ModelSpec vgg = MakeVgg19();
  double conv_flops = 0.0;
  double total_flops = 0.0;
  for (const LayerSpec& layer : vgg.layers) {
    total_flops += layer.fwd_flops;
    if (layer.type == LayerType::kConv) {
      conv_flops += layer.fwd_flops;
    }
  }
  EXPECT_GT(conv_flops / total_flops, 0.9);
  EXPECT_GT(vgg.fc_param_fraction(), 0.8);
}

TEST(ZooTest, DefaultBatchesMatchTable3) {
  EXPECT_EQ(MakeCifarQuick().default_batch, 100);
  EXPECT_EQ(MakeGoogLeNet().default_batch, 128);
  EXPECT_EQ(MakeInceptionV3().default_batch, 32);
  EXPECT_EQ(MakeVgg19().default_batch, 32);
  EXPECT_EQ(MakeVgg19_22K().default_batch, 32);
  EXPECT_EQ(MakeResNet152().default_batch, 32);
}

TEST(ZooTest, ModelByNameRoundTrips) {
  for (const ModelSpec& model : AllZooModels()) {
    const auto found = ModelByName(model.name);
    ASSERT_TRUE(found.ok()) << model.name;
    EXPECT_EQ(found->total_params(), model.total_params());
  }
  EXPECT_FALSE(ModelByName("nonexistent").ok());
}

TEST(ZooTest, LayersOrderedConvThenFc) {
  // Zoo networks put FC heads at the top (end), the property WFBP exploits.
  for (const ModelSpec& model : AllZooModels()) {
    bool seen_fc = false;
    for (const LayerSpec& layer : model.layers) {
      if (layer.type == LayerType::kFC) {
        seen_fc = true;
      } else {
        EXPECT_FALSE(seen_fc) << model.name << ": CONV layer above an FC layer";
      }
    }
    EXPECT_TRUE(seen_fc) << model.name << " has a classifier";
  }
}

// ------------------------------------------------------------ cost model ----

CommCostQuery PaperExample() {
  // §3.2 worked example: 4096x4096 FC layer, K = 32, P1 = P2 = 8.
  CommCostQuery q;
  q.m = 4096;
  q.n = 4096;
  q.batch_k = 32;
  q.num_workers = 8;
  q.num_servers = 8;
  return q;
}

TEST(CommCostTest, PaperWorkedExample) {
  const CommCostQuery q = PaperExample();
  // "synchronizing its parameters via PS will transfer 2MN ≈ 34 million
  // parameters for a worker node"
  EXPECT_NEAR(PsWorkerFloats(q) / 1e6, 33.6, 0.1);
  // "2*P1*M*N/P2 ≈ 34 million for a server node"
  EXPECT_NEAR(PsServerFloats(q) / 1e6, 33.6, 0.1);
  // "2MN(P1+P2-2)/P2 ≈ 58.7 million for a node that is both"
  EXPECT_NEAR(PsColocatedFloats(q) / 1e6, 58.7, 0.2);
  // "2K(M+N)(P1-1) ≈ 3.7 million for a single node using SFB"
  EXPECT_NEAR(SfbWorkerFloats(q) / 1e6, 3.67, 0.05);
  EXPECT_TRUE(SfbWins(q));
}

TEST(CommCostTest, AdamCosts) {
  const CommCostQuery q = PaperExample();
  EXPECT_DOUBLE_EQ(AdamServerMaxFloats(q),
                   8.0 * 4096 * 4096 + 8.0 * 32 * (4096 + 4096));
  EXPECT_DOUBLE_EQ(AdamWorkerFloats(q), 32.0 * (4096 + 4096) + 4096.0 * 4096);
  EXPECT_DOUBLE_EQ(AdamColocatedMaxFloats(q),
                   7.0 * (4096.0 * 4096 + 32.0 * 4096 + 32.0 * 4096));
}

TEST(CommCostTest, ConvAlwaysPs) {
  LayerSpec conv = ConvLayer("c", 64, 64, 3, 28);
  EXPECT_EQ(BestScheme(conv, 32, 8, 8), CommScheme::kPS);
}

TEST(CommCostTest, SingleWorkerAlwaysPs) {
  LayerSpec fc = FcLayer("fc", 4096, 4096);
  EXPECT_EQ(BestScheme(fc, 32, 1, 1), CommScheme::kPS);
}

TEST(CommCostTest, GoogLeNetClassifierFlipsWithScale) {
  // §5.2: GoogLeNet's thin 1000x1024 FC with batch 128 reduces to PS at 16
  // nodes, but SFB still wins on few nodes.
  LayerSpec fc = FcLayer("loss3", 1000, 1024);
  EXPECT_EQ(BestScheme(fc, 128, 16, 16), CommScheme::kPS);
  EXPECT_EQ(BestScheme(fc, 128, 2, 2), CommScheme::kSFB);
}

TEST(CommCostTest, BigSoftmaxPrefersSfbEvenAtScale) {
  // VGG19-22K's 21841x4096 classifier at K=32 stays SFB through 32 nodes.
  LayerSpec fc = FcLayer("fc8_22k", 21841, 4096);
  EXPECT_EQ(BestScheme(fc, 32, 32, 32), CommScheme::kSFB);
}

// Property sweep: the BestScheme decision must agree with comparing the two
// Table 1 cost rows it is defined from.
struct SweepParam {
  int64_t m;
  int64_t n;
  int64_t k;
  int p;
};

class BestSchemeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BestSchemeSweep, MatchesCostComparison) {
  const SweepParam param = GetParam();
  LayerSpec fc = FcLayer("fc", param.m, param.n);
  CommCostQuery q;
  q.m = param.m;
  q.n = param.n;
  q.batch_k = param.k;
  q.num_workers = param.p;
  q.num_servers = param.p;
  const bool sfb = BestScheme(fc, param.k, param.p, param.p) == CommScheme::kSFB;
  EXPECT_EQ(sfb, SfbWorkerFloats(q) <= PsColocatedFloats(q));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BestSchemeSweep,
    ::testing::Values(SweepParam{4096, 4096, 32, 2}, SweepParam{4096, 4096, 32, 8},
                      SweepParam{4096, 4096, 32, 32}, SweepParam{1000, 1024, 128, 4},
                      SweepParam{1000, 1024, 128, 16}, SweepParam{21841, 4096, 32, 32},
                      SweepParam{100, 100, 256, 8}, SweepParam{25088, 4096, 32, 16},
                      SweepParam{10, 10, 1, 2}, SweepParam{65536, 16, 64, 8}));

TEST(CommCostTest, SfbCostGrowsQuadraticallyWithWorkers) {
  // §2.1: "the overall communication overheads of SFB increase quadratically
  // with the number of workers" (total = per-worker * P1).
  CommCostQuery q = PaperExample();
  q.num_workers = 4;
  const double total4 = SfbWorkerFloats(q) * q.num_workers;
  q.num_workers = 8;
  const double total8 = SfbWorkerFloats(q) * q.num_workers;
  // Doubling P roughly quadruples total bytes: (8*7)/(4*3) = 14/3.
  EXPECT_NEAR(total8 / total4, 14.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace poseidon

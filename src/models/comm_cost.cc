#include "src/models/comm_cost.h"

#include "src/collective/topology.h"
#include "src/common/logging.h"
#include "src/simd/quant.h"

namespace poseidon {
namespace {

void ValidateQuery(const CommCostQuery& q) {
  CHECK_GT(q.m, 0);
  CHECK_GT(q.n, 0);
  CHECK_GT(q.batch_k, 0);
  CHECK_GT(q.num_workers, 0);
  CHECK_GT(q.num_servers, 0);
  CHECK_GT(q.num_shards, 0);
}

}  // namespace

const char* CommSchemeName(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::kPS:
      return "PS";
    case CommScheme::kSFB:
      return "SFB";
    case CommScheme::kRing:
      return "Ring";
    case CommScheme::kTree:
      return "Tree";
  }
  return "?";
}

double PsWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * static_cast<double>(q.m) * static_cast<double>(q.n);
}

double PsServerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * q.num_workers * static_cast<double>(q.m) * static_cast<double>(q.n) /
         q.num_servers;
}

double PsColocatedFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * static_cast<double>(q.m) * static_cast<double>(q.n) *
         (q.num_workers + q.num_servers - 2) / q.num_servers;
}

double SfbWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * static_cast<double>(q.batch_k) * (q.num_workers - 1) *
         static_cast<double>(q.m + q.n);
}

double AdamServerMaxFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return static_cast<double>(q.num_workers) * static_cast<double>(q.m) *
             static_cast<double>(q.n) +
         static_cast<double>(q.num_workers) * static_cast<double>(q.batch_k) *
             static_cast<double>(q.m + q.n);
}

double AdamWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return static_cast<double>(q.batch_k) * static_cast<double>(q.m + q.n) +
         static_cast<double>(q.m) * static_cast<double>(q.n);
}

double AdamColocatedMaxFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return static_cast<double>(q.num_workers - 1) *
         (static_cast<double>(q.m) * static_cast<double>(q.n) +
          static_cast<double>(q.batch_k) * static_cast<double>(q.m) +
          static_cast<double>(q.batch_k) * static_cast<double>(q.n));
}

double PsShardedServerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return 2.0 * q.num_workers * static_cast<double>(q.m) * static_cast<double>(q.n) /
         (static_cast<double>(q.num_servers) * q.num_shards);
}

double PsShardedColocatedFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  const double endpoints = static_cast<double>(q.num_servers) * q.num_shards;
  return 2.0 * static_cast<double>(q.m) * static_cast<double>(q.n) *
         (q.num_workers + endpoints - 2.0) / endpoints;
}

int BestPsShardCount(const CommCostQuery& q, int max_shards) {
  ValidateQuery(q);
  CHECK_GT(max_shards, 0);
  CommCostQuery candidate = q;
  candidate.num_shards = 1;
  int best = 1;
  double best_floats = PsShardedColocatedFloats(candidate);
  for (int s = 2; s <= max_shards; ++s) {
    candidate.num_shards = s;
    const double floats = PsShardedColocatedFloats(candidate);
    if (floats < best_floats) {  // strict: ties keep the smaller shard count
      best = s;
      best_floats = floats;
    }
  }
  return best;
}

double RingAllreduceWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return RingAllreduceNodeFloats(q.m * q.n, q.num_workers);
}

double TreeAllreduceWorkerFloats(const CommCostQuery& q) {
  ValidateQuery(q);
  return TreeAllreduceMaxNodeFloats(q.m * q.n, q.num_workers);
}

double SchemeWorkerFloats(CommScheme scheme, const CommCostQuery& q) {
  switch (scheme) {
    case CommScheme::kPS:
      return PsShardedColocatedFloats(q);  // == PsColocatedFloats at 1 shard
    case CommScheme::kSFB:
      return SfbWorkerFloats(q);
    case CommScheme::kRing:
      return RingAllreduceWorkerFloats(q);
    case CommScheme::kTree:
      return TreeAllreduceWorkerFloats(q);
  }
  return 0.0;
}

bool SfbWins(const CommCostQuery& q) {
  // Algorithm 1 line 7: 2K(P1-1)(M+N) <= 2MN(P1+P2-2)/P2, with the PS side
  // costed as actually sharded (identical to the paper's row at 1 shard).
  return SfbWorkerFloats(q) <= PsShardedColocatedFloats(q);
}

CommScheme BestScheme(const LayerSpec& layer, int64_t batch_k, int num_workers,
                      int num_servers) {
  if (layer.type != LayerType::kFC) {
    return CommScheme::kPS;  // CONV gradients are indecomposable and sparse
  }
  if (num_workers <= 1) {
    return CommScheme::kPS;  // no peers to broadcast to
  }
  CommCostQuery q;
  q.m = layer.fc_m;
  q.n = layer.fc_n;
  q.batch_k = batch_k;
  q.num_workers = num_workers;
  q.num_servers = num_servers;
  return SfbWins(q) ? CommScheme::kSFB : CommScheme::kPS;
}

const char* GradCompressionName(GradCompression compression) {
  switch (compression) {
    case GradCompression::kNone:
      return "none";
    case GradCompression::kFp16:
      return "fp16";
    case GradCompression::kInt8:
      return "int8";
    case GradCompression::kTopK:
      return "topk";
  }
  return "?";
}

double PushBytesPerFloat(GradCompression compression, double topk_density) {
  switch (compression) {
    case GradCompression::kNone:
      return 4.0;
    case GradCompression::kFp16:
      return 2.0;
    case GradCompression::kInt8:
      // one byte per element plus a shared fp32 scale per chunk
      return 1.0 + 4.0 / static_cast<double>(simd::kInt8ChunkSize);
    case GradCompression::kTopK:
      CHECK_GT(topk_density, 0.0);
      CHECK_LE(topk_density, 1.0);
      return 8.0 * topk_density;  // (index word, exact value) per selected
  }
  return 4.0;
}

double PullBytesPerFloat(GradCompression compression) {
  return compression == GradCompression::kNone ? 4.0 : 2.0;
}

double SchemeWireBytes(CommScheme scheme, GradCompression compression,
                       const CommCostQuery& q, double topk_density) {
  const double floats = SchemeWorkerFloats(scheme, q);
  if (scheme != CommScheme::kPS) {
    return floats * 4.0;  // collectives and SFB move raw fp32
  }
  // Every PS push has a matching pull of the same element count, so the
  // float row splits exactly in half per direction; each half pays its
  // direction's byte cost.
  const double per_direction = floats / 2.0;
  return per_direction * (PushBytesPerFloat(compression, topk_density) +
                          PullBytesPerFloat(compression));
}

GradCompression BestCompression(int64_t layer_floats, double topk_density,
                                int64_t min_floats) {
  if (layer_floats < min_floats) {
    return GradCompression::kNone;
  }
  GradCompression best = GradCompression::kNone;
  double best_bytes = PushBytesPerFloat(best, topk_density) + PullBytesPerFloat(best);
  const GradCompression candidates[] = {GradCompression::kFp16, GradCompression::kInt8,
                                        GradCompression::kTopK};
  for (GradCompression candidate : candidates) {
    if (candidate == GradCompression::kTopK && topk_density <= 0.0) {
      continue;
    }
    const double bytes =
        PushBytesPerFloat(candidate, topk_density) + PullBytesPerFloat(candidate);
    if (bytes < best_bytes) {
      best = candidate;
      best_bytes = bytes;
    }
  }
  return best;
}

SchemeChoice BestSchemeExtendedCompressed(const LayerSpec& layer, int64_t batch_k,
                                          int num_workers, int num_servers,
                                          int ps_shards, double topk_density) {
  SchemeChoice choice;
  CommCostQuery q;
  q.m = layer.type == LayerType::kFC ? layer.fc_m : layer.params;
  q.n = layer.type == LayerType::kFC ? layer.fc_n : 1;
  q.batch_k = batch_k;
  q.num_workers = num_workers;
  q.num_servers = num_servers;
  q.num_shards = ps_shards;
  if (q.m <= 0 || q.n <= 0) {
    return choice;  // stateless layer; nothing to synchronize
  }
  if (num_workers <= 1) {
    choice.bytes = SchemeWireBytes(choice.scheme, choice.compression, q, topk_density);
    return choice;
  }

  choice.bytes = SchemeWireBytes(CommScheme::kPS, GradCompression::kNone, q, topk_density);
  auto consider = [&](CommScheme scheme, GradCompression compression) {
    const double bytes = SchemeWireBytes(scheme, compression, q, topk_density);
    if (bytes < choice.bytes) {  // strict: ties keep the earlier candidate
      choice.scheme = scheme;
      choice.compression = compression;
      choice.bytes = bytes;
    }
  };
  if (q.m * q.n >= kCompressionMinFloats) {
    consider(CommScheme::kPS, GradCompression::kFp16);
    consider(CommScheme::kPS, GradCompression::kInt8);
    if (topk_density > 0.0) {
      consider(CommScheme::kPS, GradCompression::kTopK);
    }
  }
  if (layer.type == LayerType::kFC) {
    consider(CommScheme::kSFB, GradCompression::kNone);
  }
  consider(CommScheme::kRing, GradCompression::kNone);
  consider(CommScheme::kTree, GradCompression::kNone);
  return choice;
}

CommScheme BestSchemeExtended(const LayerSpec& layer, int64_t batch_k, int num_workers,
                              int num_servers, int ps_shards) {
  if (num_workers <= 1) {
    return CommScheme::kPS;
  }
  CommCostQuery q;
  // Conv layers have no (M, N) factorization; model their dense parameter
  // tensor as M = params, N = 1 so the PS/ring/tree rows (which only use
  // M*N) stay exact. SFB is excluded for them below.
  q.m = layer.type == LayerType::kFC ? layer.fc_m : layer.params;
  q.n = layer.type == LayerType::kFC ? layer.fc_n : 1;
  q.batch_k = batch_k;
  q.num_workers = num_workers;
  q.num_servers = num_servers;
  q.num_shards = ps_shards;
  if (q.m <= 0 || q.n <= 0) {
    return CommScheme::kPS;  // stateless layer; nothing to synchronize
  }

  CommScheme best = CommScheme::kPS;
  double best_floats = SchemeWorkerFloats(best, q);
  const CommScheme candidates[] = {CommScheme::kSFB, CommScheme::kRing, CommScheme::kTree};
  for (CommScheme candidate : candidates) {
    if (candidate == CommScheme::kSFB && layer.type != LayerType::kFC) {
      continue;  // conv gradients are indecomposable
    }
    const double floats = SchemeWorkerFloats(candidate, q);
    if (floats < best_floats) {
      best = candidate;
      best_floats = floats;
    }
  }
  return best;
}

}  // namespace poseidon

// Network fabric model: full-duplex NICs on a non-blocking switch.
//
// Every node has an egress link and an ingress link with independent
// capacities (full duplex). Messages are split into chunks (default 2 MiB,
// matching Poseidon's KV-pair granularity) that pipeline store-and-forward
// through the sender's egress queue, a propagation latency, and the
// receiver's ingress queue. FIFO queuing at both ends captures the two
// first-order effects the paper's evaluation turns on:
//   * egress serialization — a node pushing to P-1 peers takes
//     total_bytes/egress_bw (bursty end-of-iteration traffic, §2.2), and
//   * ingress/egress hotspots — Adam's full-matrix pull concentrates
//     P*M*N bytes on one server's egress (Fig 10).
// The switch core is assumed non-blocking (commodity ToR switches are), so
// contention exists only at NICs.
#ifndef POSEIDON_SRC_SIM_FABRIC_H_
#define POSEIDON_SRC_SIM_FABRIC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/simulator.h"

namespace poseidon {

struct FabricConfig {
  double egress_bytes_per_sec = 0.0;
  double ingress_bytes_per_sec = 0.0;
  // One-way propagation + per-chunk protocol latency.
  double latency_s = 40e-6;
  // Pipelining granularity; Poseidon uses 2 MiB KV pairs.
  int64_t chunk_bytes = 2 * 1024 * 1024;
  // Latency for node-local "transfers" (no NIC involved).
  double local_latency_s = 5e-6;
};

struct FabricStats {
  std::vector<double> tx_bytes;       // per node
  std::vector<double> rx_bytes;       // per node
  std::vector<double> egress_busy_s;  // per node
  std::vector<double> ingress_busy_s;
  int64_t messages = 0;
  int64_t chunks = 0;
};

class NetworkFabric {
 public:
  using DeliveredFn = std::function<void()>;

  NetworkFabric(Simulator* sim, int num_nodes, FabricConfig config);

  // Sends `bytes` from node `src` to node `dst`; invokes `on_delivered` in
  // virtual time once the last chunk has fully arrived. src == dst is a
  // node-local operation that only pays local latency. Zero-byte messages
  // deliver after latency (control messages).
  void Send(int src, int dst, double bytes, DeliveredFn on_delivered);

  const FabricStats& stats() const { return stats_; }
  void ResetStats();

  int num_nodes() const { return static_cast<int>(egress_free_at_.size()); }
  const FabricConfig& config() const { return config_; }

 private:
  Simulator* sim_;
  FabricConfig config_;
  // Each link is a FIFO server: free_at is when the link finishes everything
  // already accepted. Reservation is done at chunk-arrival time to preserve
  // arrival order.
  std::vector<double> egress_free_at_;
  std::vector<double> ingress_free_at_;
  FabricStats stats_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_SIM_FABRIC_H_

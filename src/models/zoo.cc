#include "src/models/zoo.h"

#include <utility>

#include "src/common/logging.h"

namespace poseidon {
namespace {

// Collapses a list of convolutions into one synchronization unit (used for
// inception modules and residual blocks, whose many small tensors Poseidon
// would hash into the same KV pool anyway).
LayerSpec AggregateBlock(std::string name, const std::vector<LayerSpec>& parts) {
  LayerSpec block;
  block.name = std::move(name);
  block.type = LayerType::kConv;
  for (const auto& part : parts) {
    block.params += part.params;
    block.fwd_flops += part.fwd_flops;
  }
  return block;
}

// GoogLeNet inception module: (in) -> 1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1.
LayerSpec Inception(std::string name, int64_t in, int64_t c1, int64_t c3r, int64_t c3,
                    int64_t c5r, int64_t c5, int64_t pp, int64_t hw) {
  return AggregateBlock(std::move(name), {
                                             ConvLayer("1x1", in, c1, 1, hw),
                                             ConvLayer("3x3r", in, c3r, 1, hw),
                                             ConvLayer("3x3", c3r, c3, 3, hw),
                                             ConvLayer("5x5r", in, c5r, 1, hw),
                                             ConvLayer("5x5", c5r, c5, 5, hw),
                                             ConvLayer("pool_proj", in, pp, 1, hw),
                                         });
}

// ResNet bottleneck: 1x1 in->mid, 3x3 mid->mid, 1x1 mid->out (+ projection on
// the first block of a stage).
LayerSpec Bottleneck(std::string name, int64_t in, int64_t mid, int64_t out, int64_t hw,
                     bool project) {
  std::vector<LayerSpec> parts = {
      ConvLayer("a", in, mid, 1, hw),
      ConvLayer("b", mid, mid, 3, hw),
      ConvLayer("c", mid, out, 1, hw),
  };
  if (project) {
    parts.push_back(ConvLayer("proj", in, out, 1, hw));
  }
  return AggregateBlock(std::move(name), parts);
}

}  // namespace

ModelSpec MakeCifarQuick() {
  ModelSpec model;
  model.name = "cifar-quick";
  model.dataset = "CIFAR10";
  model.default_batch = 100;
  model.layers = {
      ConvLayer("conv1", 3, 32, 5, 32),
      ConvLayer("conv2", 32, 32, 5, 16),
      ConvLayer("conv3", 32, 64, 5, 8),
      FcLayer("ip1", 64, 1024),
      FcLayer("ip2", 10, 64),
  };
  return model;
}

ModelSpec MakeAlexNet() {
  ModelSpec model;
  model.name = "alexnet";
  model.dataset = "ILSVRC12";
  model.default_batch = 256;
  model.layers = {
      ConvLayer("conv1", 3, 96, 11, 55),   ConvLayer("conv2", 96, 256, 5, 27),
      ConvLayer("conv3", 256, 384, 3, 13), ConvLayer("conv4", 384, 384, 3, 13),
      ConvLayer("conv5", 384, 256, 3, 13), FcLayer("fc6", 4096, 9216),
      FcLayer("fc7", 4096, 4096),          FcLayer("fc8", 1000, 4096),
  };
  return model;
}

ModelSpec MakeGoogLeNet() {
  ModelSpec model;
  model.name = "googlenet";
  model.dataset = "ILSVRC12";
  model.default_batch = 128;
  model.layers = {
      ConvLayer("conv1", 3, 64, 7, 112),
      ConvLayer("conv2_reduce", 64, 64, 1, 56),
      ConvLayer("conv2", 64, 192, 3, 56),
      Inception("inception_3a", 192, 64, 96, 128, 16, 32, 32, 28),
      Inception("inception_3b", 256, 128, 128, 192, 32, 96, 64, 28),
      Inception("inception_4a", 480, 192, 96, 208, 16, 48, 64, 14),
      Inception("inception_4b", 512, 160, 112, 224, 24, 64, 64, 14),
      Inception("inception_4c", 512, 128, 128, 256, 24, 64, 64, 14),
      Inception("inception_4d", 512, 112, 144, 288, 32, 64, 64, 14),
      Inception("inception_4e", 528, 256, 160, 320, 32, 128, 128, 14),
      Inception("inception_5a", 832, 256, 160, 320, 32, 128, 128, 7),
      Inception("inception_5b", 832, 384, 192, 384, 48, 128, 128, 7),
      FcLayer("loss3_classifier", 1000, 1024),
  };
  return model;
}

ModelSpec MakeInceptionV3() {
  ModelSpec model;
  model.name = "inception-v3";
  model.dataset = "ILSVRC12";
  model.default_batch = 32;
  // Stem.
  model.layers.push_back(AggregateBlock("stem", {
                                                    ConvLayer("c1", 3, 32, 3, 149),
                                                    ConvLayer("c2", 32, 32, 3, 147),
                                                    ConvLayer("c3", 32, 64, 3, 147),
                                                    ConvLayer("c4", 64, 80, 1, 73),
                                                    ConvLayer("c5", 80, 192, 3, 71),
                                                }));
  // 3 x InceptionA at 35x35.
  auto inception_a = [](std::string name, int64_t in, int64_t pool) {
    return AggregateBlock(std::move(name), {
                                               ConvLayer("1x1", in, 64, 1, 35),
                                               ConvLayer("5x5r", in, 48, 1, 35),
                                               ConvLayer("5x5", 48, 64, 5, 35),
                                               ConvLayer("3x3r", in, 64, 1, 35),
                                               ConvLayer("3x3a", 64, 96, 3, 35),
                                               ConvLayer("3x3b", 96, 96, 3, 35),
                                               ConvLayer("pool", in, pool, 1, 35),
                                           });
  };
  model.layers.push_back(inception_a("mixed_35a", 192, 32));
  model.layers.push_back(inception_a("mixed_35b", 256, 64));
  model.layers.push_back(inception_a("mixed_35c", 288, 64));
  // Grid reduction 35 -> 17.
  model.layers.push_back(AggregateBlock("reduction_17", {
                                                            ConvLayer("3x3", 288, 384, 3, 17),
                                                            ConvLayer("dblr", 288, 64, 1, 35),
                                                            ConvLayer("dbl1", 64, 96, 3, 35),
                                                            ConvLayer("dbl2", 96, 96, 3, 17),
                                                        }));
  // 4 x InceptionC at 17x17 with growing factorized-7x7 widths.
  auto inception_c = [](std::string name, int64_t c7) {
    const int64_t in = 768;
    return AggregateBlock(std::move(name),
                          {
                              ConvLayer("1x1", in, 192, 1, 17),
                              ConvLayer("7x7r", in, c7, 1, 17),
                              ConvLayerRect("1x7", c7, c7, 1, 7, 17),
                              ConvLayerRect("7x1", c7, 192, 7, 1, 17),
                              ConvLayer("d7r", in, c7, 1, 17),
                              ConvLayerRect("d7a", c7, c7, 7, 1, 17),
                              ConvLayerRect("d7b", c7, c7, 1, 7, 17),
                              ConvLayerRect("d7c", c7, c7, 7, 1, 17),
                              ConvLayerRect("d7d", c7, 192, 1, 7, 17),
                              ConvLayer("pool", in, 192, 1, 17),
                          });
  };
  model.layers.push_back(inception_c("mixed_17a", 128));
  model.layers.push_back(inception_c("mixed_17b", 160));
  model.layers.push_back(inception_c("mixed_17c", 160));
  model.layers.push_back(inception_c("mixed_17d", 192));
  // Auxiliary head (included in the trained parameter count).
  model.layers.push_back(AggregateBlock("aux_head", {
                                                        ConvLayer("proj", 768, 128, 1, 5),
                                                        ConvLayer("conv", 128, 768, 5, 1),
                                                    }));
  model.layers.back().params += 768 * 1000 + 1000;  // aux classifier FC
  // Grid reduction 17 -> 8.
  model.layers.push_back(
      AggregateBlock("reduction_8", {
                                        ConvLayer("3x3r", 768, 192, 1, 17),
                                        ConvLayer("3x3", 192, 320, 3, 8),
                                        ConvLayer("7x7r", 768, 192, 1, 17),
                                        ConvLayerRect("1x7", 192, 192, 1, 7, 17),
                                        ConvLayerRect("7x1", 192, 192, 7, 1, 17),
                                        ConvLayer("3x3b", 192, 192, 3, 8),
                                    }));
  // 2 x InceptionE at 8x8.
  auto inception_e = [](std::string name, int64_t in) {
    return AggregateBlock(std::move(name),
                          {
                              ConvLayer("1x1", in, 320, 1, 8),
                              ConvLayer("3x3r", in, 384, 1, 8),
                              ConvLayerRect("3x3a", 384, 384, 1, 3, 8),
                              ConvLayerRect("3x3b", 384, 384, 3, 1, 8),
                              ConvLayer("dr", in, 448, 1, 8),
                              ConvLayer("da", 448, 384, 3, 8),
                              ConvLayerRect("db", 384, 384, 1, 3, 8),
                              ConvLayerRect("dc", 384, 384, 3, 1, 8),
                              ConvLayer("pool", in, 192, 1, 8),
                          });
  };
  model.layers.push_back(inception_e("mixed_8a", 1280));
  model.layers.push_back(inception_e("mixed_8b", 2048));
  model.layers.push_back(FcLayer("logits", 1000, 2048));
  return model;
}

ModelSpec MakeVgg19() {
  ModelSpec model;
  model.name = "vgg19";
  model.dataset = "ILSVRC12";
  model.default_batch = 32;
  model.layers = {
      ConvLayer("conv1_1", 3, 64, 3, 224),    ConvLayer("conv1_2", 64, 64, 3, 224),
      ConvLayer("conv2_1", 64, 128, 3, 112),  ConvLayer("conv2_2", 128, 128, 3, 112),
      ConvLayer("conv3_1", 128, 256, 3, 56),  ConvLayer("conv3_2", 256, 256, 3, 56),
      ConvLayer("conv3_3", 256, 256, 3, 56),  ConvLayer("conv3_4", 256, 256, 3, 56),
      ConvLayer("conv4_1", 256, 512, 3, 28),  ConvLayer("conv4_2", 512, 512, 3, 28),
      ConvLayer("conv4_3", 512, 512, 3, 28),  ConvLayer("conv4_4", 512, 512, 3, 28),
      ConvLayer("conv5_1", 512, 512, 3, 14),  ConvLayer("conv5_2", 512, 512, 3, 14),
      ConvLayer("conv5_3", 512, 512, 3, 14),  ConvLayer("conv5_4", 512, 512, 3, 14),
      FcLayer("fc6", 4096, 25088),            FcLayer("fc7", 4096, 4096),
      FcLayer("fc8", 1000, 4096),
  };
  return model;
}

ModelSpec MakeVgg19_22K() {
  ModelSpec model = MakeVgg19();
  model.name = "vgg19-22k";
  model.dataset = "ImageNet22K";
  // Replace the 1000-way classifier with a 21841-way one (paper §5).
  model.layers.back() = FcLayer("fc8_22k", 21841, 4096);
  return model;
}

ModelSpec MakeResNet152() {
  ModelSpec model;
  model.name = "resnet-152";
  model.dataset = "ILSVRC12";
  model.default_batch = 32;
  model.layers.push_back(ConvLayer("conv1", 3, 64, 7, 112));
  struct Stage {
    const char* name;
    int blocks;
    int64_t mid;
    int64_t out;
    int64_t hw;
  };
  const Stage stages[] = {
      {"res2", 3, 64, 256, 56},
      {"res3", 8, 128, 512, 28},
      {"res4", 36, 256, 1024, 14},
      {"res5", 3, 512, 2048, 7},
  };
  int64_t in = 64;
  for (const Stage& stage : stages) {
    for (int b = 0; b < stage.blocks; ++b) {
      const std::string name = std::string(stage.name) + "_" + std::to_string(b + 1);
      model.layers.push_back(Bottleneck(name, in, stage.mid, stage.out, stage.hw, b == 0));
      in = stage.out;
    }
  }
  model.layers.push_back(FcLayer("fc1000", 1000, 2048));
  return model;
}

std::vector<ModelSpec> AllZooModels() {
  return {MakeCifarQuick(), MakeGoogLeNet(), MakeInceptionV3(),
          MakeVgg19(),      MakeVgg19_22K(), MakeResNet152()};
}

StatusOr<ModelSpec> ModelByName(const std::string& name) {
  if (name == "cifar-quick") {
    return MakeCifarQuick();
  }
  if (name == "alexnet") {
    return MakeAlexNet();
  }
  if (name == "googlenet") {
    return MakeGoogLeNet();
  }
  if (name == "inception-v3") {
    return MakeInceptionV3();
  }
  if (name == "vgg19") {
    return MakeVgg19();
  }
  if (name == "vgg19-22k") {
    return MakeVgg19_22K();
  }
  if (name == "resnet-152") {
    return MakeResNet152();
  }
  return NotFoundError("unknown model: " + name);
}

}  // namespace poseidon

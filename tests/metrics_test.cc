// Tests for the metrics registry (src/stats/metrics.h): exact concurrent
// counting, histogram bucketing, snapshot/JSON export — plus the consumers
// that migrated onto it (FaultCounters, WireCopyStats) and the per-link
// bandwidth accounting the registry's Histogram powers in the MessageBus.
#include "src/stats/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/stats/fault_counters.h"
#include "src/transport/bus.h"
#include "src/transport/payload.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.25);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, SamplesLandInTheRightBuckets) {
  // Buckets: <=10, <=100, <=1000, overflow.
  Histogram hist({10, 100, 1000});
  hist.Record(1);
  hist.Record(10);    // inclusive upper edge
  hist.Record(11);
  hist.Record(1000);
  hist.Record(5000);  // overflow
  const Histogram::Snapshot snap = hist.TakeSnapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.total_count, 5);
  EXPECT_EQ(snap.sum, 1 + 10 + 11 + 1000 + 5000);
  EXPECT_EQ(snap.max, 5000);
  EXPECT_DOUBLE_EQ(snap.Mean(), static_cast<double>(snap.sum) / 5.0);
}

TEST(HistogramTest, DefaultLatencyEdgesAreStrictlyIncreasing) {
  const std::vector<int64_t> edges = LatencyBucketsNs();
  ASSERT_FALSE(edges.empty());
  EXPECT_EQ(edges.front(), 1000);  // 1us floor
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(b->Value(), 7);
  Histogram* h1 = registry.GetHistogram("test.hist", {1, 2, 3});
  Histogram* h2 = registry.GetHistogram("test.hist", {99});  // edges of first win
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->edges().size(), 3u);
}

TEST(MetricsRegistryTest, SnapshotAndJsonCoverEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(5);
  registry.GetGauge("g.two")->Set(1.5);
  registry.GetHistogram("h.three", {10, 20})->Record(15);

  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c.one"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g.two"), 1.5);
  EXPECT_EQ(snap.histograms.at("h.three").total_count, 1);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"c.one\""), std::string::npos);
  EXPECT_NE(json.find("\"g.two\""), std::string::npos);
  EXPECT_NE(json.find("\"h.three\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  registry.ResetAll();
  const MetricsRegistry::Snapshot zeroed = registry.TakeSnapshot();
  EXPECT_EQ(zeroed.counters.at("c.one"), 0);
  EXPECT_EQ(zeroed.histograms.at("h.three").total_count, 0);
}

TEST(MetricsRegistryTest, FaultCountersMirrorIntoTheGlobalRegistry) {
  Counter* global = MetricsRegistry::Default().GetCounter("fault.drops");
  const int64_t before = global->Value();
  FaultCounters counters;
  counters.AddDrop();
  counters.AddDrop();
  EXPECT_EQ(counters.Snapshot().drops, 2);
  EXPECT_EQ(global->Value(), before + 2);

  // Per-instance isolation: a second FaultCounters starts at zero even
  // though the global mirror kept counting.
  FaultCounters fresh;
  EXPECT_EQ(fresh.Snapshot().drops, 0);
}

TEST(MetricsRegistryTest, WireCopyStatsAreRegistryBacked) {
  WireCopyStats::Reset();
  WireCopyStats::Add(128);
  WireCopyStats::Add(64);
  EXPECT_EQ(WireCopyStats::Floats(), 192);
  EXPECT_EQ(WireCopyStats::Copies(), 2);
  EXPECT_EQ(MetricsRegistry::Default().GetCounter("wire.copied_floats")->Value(), 192);
  EXPECT_EQ(MetricsRegistry::Default().GetCounter("wire.copies")->Value(), 2);
  WireCopyStats::Reset();
}

// ------------------------------------------------------------- link stats ---

TEST(LinkStatsTest, DisabledByDefaultAndEmpty) {
  MessageBus bus(2);
  EXPECT_FALSE(bus.link_stats_enabled());
  EXPECT_TRUE(bus.SnapshotLinkStats().links.empty());
}

TEST(LinkStatsTest, TrainingTrafficShowsUpPerLink) {
  const SyntheticDataset dataset = testing::TinyDataset();
  TrainerOptions options = testing::SmallTrainerOptions(/*workers=*/2, /*servers=*/2);
  PoseidonTrainer trainer(testing::TinyMlpFactory(), options);
  trainer.bus().EnableLinkStats();
  ASSERT_TRUE(trainer.bus().link_stats_enabled());
  trainer.Train(dataset, 3);
  trainer.bus().FlushEgress();

  const ObservedLinkStats stats = trainer.bus().SnapshotLinkStats();
  EXPECT_GT(stats.window_s, 0.0);
  ASSERT_FALSE(stats.links.empty());

  int64_t total_bytes = 0;
  for (const LinkStat& link : stats.links) {
    EXPECT_NE(link.src, link.dst) << "local delivery must not be accounted";
    EXPECT_GT(link.bytes, 0);
    EXPECT_GT(link.messages, 0);
    EXPECT_GE(link.observed_gbps, 0.0);
    total_bytes += link.bytes;
  }
  EXPECT_GT(total_bytes, 0);

  // Workers and servers are colocated (node w hosts worker w and server w),
  // so cross-node traffic is worker 0 pushing its shard halves to node 1's
  // server (and vice versa). That link must have carried traffic and its
  // delivery-latency histogram must have samples.
  const LinkStat* link = stats.Find(0, 1);
  ASSERT_NE(link, nullptr);
  EXPECT_GT(link->delivery_latency_ns.total_count, 0);
  EXPECT_GE(link->delivery_latency_ns.max, 0);
}

}  // namespace
}  // namespace poseidon

#include "src/cluster/protocol_sim.h"

#include "src/transport/bus.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/collective/topology.h"
#include "src/common/logging.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"

namespace poseidon {
namespace {

// Effective label for what a layer's synchronization does in a given system.
enum class WireScheme { kPsDense, kSfb, kAdamSf, kOneBit, kRing, kTree };

const char* WireSchemeName(WireScheme scheme) {
  switch (scheme) {
    case WireScheme::kPsDense:
      return "PS";
    case WireScheme::kSfb:
      return "SFB";
    case WireScheme::kAdamSf:
      return "SF->PS";
    case WireScheme::kOneBit:
      return "1bit";
    case WireScheme::kRing:
      return "Ring";
    case WireScheme::kTree:
      return "Tree";
  }
  return "?";
}

WireScheme WireFromCommScheme(CommScheme scheme) {
  switch (scheme) {
    case CommScheme::kPS:
      return WireScheme::kPsDense;
    case CommScheme::kSFB:
      return WireScheme::kSfb;
    case CommScheme::kRing:
      return WireScheme::kRing;
    case CommScheme::kTree:
      return WireScheme::kTree;
  }
  return WireScheme::kPsDense;
}

WireScheme WireFromPlannedScheme(PlannedScheme scheme) {
  switch (scheme) {
    case PlannedScheme::kNone:
    case PlannedScheme::kPS:
      return WireScheme::kPsDense;
    case PlannedScheme::kSFB:
      return WireScheme::kSfb;
    case PlannedScheme::kOneBit:
      return WireScheme::kOneBit;
    case PlannedScheme::kRing:
      return WireScheme::kRing;
    case PlannedScheme::kTree:
      return WireScheme::kTree;
  }
  return WireScheme::kPsDense;
}

// Static per-layer wire plan, precomputed before the simulation starts
// (HybComm's point: the model and cluster are known upfront, so the best
// scheme is decidable before any byte moves).
struct LayerWire {
  WireScheme scheme = WireScheme::kPsDense;
  // Wire codec of the dense-PS path (docs/COMPRESSION.md): rescales
  // push/pull bytes by the per-direction byte rows and charges the encode /
  // decode CPU passes through quant_cpu_s, like the 1-bit row.
  GradCompression compression = GradCompression::kNone;
  double dense_bytes = 0.0;    // full fp32 gradient/parameter size
  double push_bytes = 0.0;     // per destination server (PS-style schemes)
  double pull_bytes = 0.0;     // per source server
  int owner = 0;               // per-tensor / Adam owner node
  bool sharded = true;         // false: single owner server
  double sf_msg_bytes = 0.0;   // one worker's sufficient factors
  double recon_flops_per_sf = 0.0;
  double quant_cpu_s = 0.0;    // one-bit (de)quantization pass on the CPU
  double apply_cpu_s = 0.0;    // server-side update application per shard
  double local_reduce_s = 0.0; // multi-GPU intra-node aggregation
  // Collective (ring/tree) extensions.
  double collective_add_s = 0.0;  // one incoming-buffer reduction on the CPU
  double local_apply_s = 0.0;     // replicated SGD step on the whole layer
};

class ProtocolSim {
 public:
  ProtocolSim(const ModelSpec& model, const SystemConfig& system, const ClusterSpec& cluster,
              Engine engine, int batch, const SimOptions& options)
      : model_(model),
        system_(system),
        cluster_(cluster),
        engine_(engine),
        batch_(batch),
        options_(options),
        num_nodes_(cluster.num_nodes),
        num_layers_(model.num_layers()),
        total_iters_(options.warmup_iters + options.measure_iters + 1),
        timings_(MakeComputeTimings(model, engine, batch)) {
    CHECK_GT(num_nodes_, 0);
    CHECK_GT(num_layers_, 0);
    CHECK_GT(system.shards_per_server, 0);
    CHECK_GE(system.staleness, 0);
    CHECK_GE(system.loss_rate, 0.0);
    CHECK_LT(system.loss_rate, 1.0) << "a link that loses everything never delivers";
    FabricConfig fabric_config;
    const double wire_rate = cluster.nic_bytes_per_sec() * system.transport_efficiency;
    fabric_config.egress_bytes_per_sec = wire_rate;
    fabric_config.ingress_bytes_per_sec = wire_rate;
    fabric_config.latency_s = cluster.latency_s;
    fabric_ = std::make_unique<NetworkFabric>(&sim_, num_nodes_, fabric_config);
    BuildWirePlan();
    InitState();
  }

  SimResult Run() {
    for (int n = 0; n < num_nodes_; ++n) {
      TryRunOps(n);
    }
    sim_.Run();
    return Collect();
  }

 private:
  // ---------------------------------------------------------------- setup --
  void BuildWirePlan() {
    wires_.resize(num_layers_);
    const int p = num_nodes_;
    for (int l = 0; l < num_layers_; ++l) {
      const LayerSpec& layer = model_.layers[l];
      LayerWire& wire = wires_[l];
      wire.dense_bytes = static_cast<double>(layer.param_bytes());
      wire.owner = l % p;
      wire.apply_cpu_s =
          2.0 * static_cast<double>(layer.params) / p / cluster_.cpu_flops;

      // Pick the scheme for this layer under the configured system. The
      // collective modes apply to every parameter layer; the paper's FC
      // schemes only to FC layers.
      wire.scheme = WireScheme::kPsDense;
      GradCompression compression = GradCompression::kNone;
      // A CommPlan overrides the policy switches: the planner already made
      // the per-layer call, this simulator just prices it. Layers the plan
      // does not name (or marks stateless) fall through to the policies.
      bool planned = false;
      if (system_.plan != nullptr) {
        const PlanLayerChoice* choice = system_.plan->Find(layer.name);
        if (choice != nullptr && choice->scheme != PlannedScheme::kNone) {
          planned = true;
          if (p > 1) {
            wire.scheme = WireFromPlannedScheme(choice->scheme);
            compression = choice->compression;
          }
          // p == 1 degenerates to the raw dense PS, like the runtime.
        }
      }
      if (!planned && p > 1) {
        switch (system_.fc_scheme) {
          case FcScheme::kRing:
            wire.scheme = WireScheme::kRing;
            break;
          case FcScheme::kTree:
            wire.scheme = WireScheme::kTree;
            break;
          case FcScheme::kHybridCollective:
            if (system_.auto_ps_compression) {
              // Compression joins the scheme menu: the chooser minimizes
              // wire bytes over (PS, codec) and the raw-float alternatives.
              const SchemeChoice choice = BestSchemeExtendedCompressed(
                  layer, batch_, p, p, system_.shards_per_server,
                  system_.topk_density);
              wire.scheme = WireFromCommScheme(choice.scheme);
              compression = choice.compression;
            } else {
              wire.scheme = WireFromCommScheme(BestSchemeExtended(
                  layer, batch_, p, p, system_.shards_per_server));
            }
            break;
          case FcScheme::kDense:
            break;
          case FcScheme::kSfb:
            if (layer.type == LayerType::kFC) {
              wire.scheme = WireScheme::kSfb;
            }
            break;
          case FcScheme::kAdam:
            if (layer.type == LayerType::kFC) {
              wire.scheme = WireScheme::kAdamSf;
            }
            break;
          case FcScheme::kOneBit:
            if (layer.type == LayerType::kFC) {
              wire.scheme = WireScheme::kOneBit;
            }
            break;
          case FcScheme::kHybrid:
            if (layer.type == LayerType::kFC &&
                BestScheme(layer, batch_, p, p) == CommScheme::kSFB) {
              wire.scheme = WireScheme::kSfb;
            }
            break;
        }
      }

      // Fixed-policy compression of the dense-PS path (mirrors the runtime's
      // ResolveCompression): every PS layer clearing the size gate runs the
      // configured codec, or its per-layer BestCompression pick under auto.
      // The hybrid-collective chooser above resolved it jointly with the
      // scheme instead.
      if (!planned && p > 1 && wire.scheme == WireScheme::kPsDense &&
          system_.fc_scheme != FcScheme::kHybridCollective) {
        if (system_.auto_ps_compression) {
          compression = BestCompression(layer.params, system_.topk_density,
                                        system_.compression_min_floats);
        } else if (layer.params >= system_.compression_min_floats) {
          compression = system_.ps_compression;
        }
      }

      const int64_t m = layer.fc_m;
      const int64_t n = layer.fc_n;
      const int64_t k_eff = static_cast<int64_t>(batch_) * cluster_.gpus_per_node;
      switch (wire.scheme) {
        case WireScheme::kPsDense: {
          wire.sharded = system_.sharding == ShardingMode::kKvPairs;
          wire.compression = compression;
          // Per-direction byte rows (docs/COST_MODEL.md): the raw fp32 base
          // rescaled by push (quantized / sparse frames) and pull (binary16
          // round-to-nearest replies) bytes per float.
          const double base = wire.sharded ? wire.dense_bytes / p : wire.dense_bytes;
          wire.push_bytes =
              base * PushBytesPerFloat(compression, system_.topk_density) / 4.0;
          wire.pull_bytes = base * PullBytesPerFloat(compression) / 4.0;
          if (wire.sharded) {
            // Key-range shards apply their slices on independent threads, so
            // the per-server apply latency divides by the shard count; the
            // bytes on the wire do not change.
            wire.apply_cpu_s /= system_.shards_per_server;
          }
          if (compression != GradCompression::kNone) {
            // One encode pass over the gradient before each push, and the
            // matching decode passes downstream — charged on the same aux
            // engine as the 1-bit row's quantizer.
            wire.quant_cpu_s =
                2.0 * static_cast<double>(layer.params) / cluster_.cpu_flops;
          }
          break;
        }
        case WireScheme::kSfb:
          wire.sf_msg_bytes = static_cast<double>(k_eff) * static_cast<double>(m + n) * 4.0;
          wire.recon_flops_per_sf = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                                    static_cast<double>(k_eff);
          break;
        case WireScheme::kAdamSf:
          wire.sharded = false;
          wire.sf_msg_bytes = static_cast<double>(k_eff) * static_cast<double>(m + n) * 4.0;
          wire.recon_flops_per_sf = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                                    static_cast<double>(k_eff);
          wire.pull_bytes = wire.dense_bytes;
          break;
        case WireScheme::kOneBit: {
          // 1 bit per element plus two fp32 levels per column.
          const double compressed =
              static_cast<double>(m) * static_cast<double>(n) / 8.0 +
              2.0 * static_cast<double>(n) * 4.0;
          wire.sharded = system_.sharding == ShardingMode::kKvPairs;
          wire.push_bytes = wire.sharded ? compressed / p : compressed;
          wire.pull_bytes = wire.push_bytes;
          // No shards_per_server division: the runtime pins a 1-bit layer
          // wholly to one owner shard endpoint (its encoding is not
          // sliceable), so the per-layer apply stays serialized.
          wire.quant_cpu_s =
              2.0 * static_cast<double>(m) * static_cast<double>(n) / cluster_.cpu_flops;
          break;
        }
        case WireScheme::kRing:
          // One ring hop moves a 1/p chunk; each of the p-1 reduce-scatter
          // receives folds one chunk on the CPU, and the final averaged
          // gradient is applied locally on every node (replicated updates).
          wire.push_bytes = wire.dense_bytes / p;
          wire.collective_add_s =
              static_cast<double>(layer.params) / p / cluster_.cpu_flops;
          wire.local_apply_s = 2.0 * static_cast<double>(layer.params) / cluster_.cpu_flops;
          break;
        case WireScheme::kTree:
          // Reduce and broadcast messages both carry the dense tensor; each
          // child contribution is one full-tensor add at its parent.
          wire.push_bytes = wire.dense_bytes;
          wire.collective_add_s = static_cast<double>(layer.params) / cluster_.cpu_flops;
          wire.local_apply_s = 2.0 * static_cast<double>(layer.params) / cluster_.cpu_flops;
          break;
      }

      if (cluster_.gpus_per_node > 1) {
        // Leader-GPU aggregation over device-to-device copies (§5.1).
        wire.local_reduce_s = static_cast<double>(cluster_.gpus_per_node - 1) *
                              wire.dense_bytes / cluster_.d2d_bytes_per_sec;
      }
    }
  }

  struct ServerShardState {
    int pushes = 0;
    bool applied = false;
    std::vector<bool> requested;  // TF fetch mode: per worker
    std::vector<bool> sent;       // per worker
  };

  struct LayerSyncState {
    // Indexed by server node for sharded schemes; only [owner] used
    // otherwise.
    std::vector<ServerShardState> shards;
    std::vector<int> pull_parts;  // per worker: received server parts
    std::vector<int> sf_arrived;  // per worker: peer SF messages landed
    std::vector<bool> done;       // per worker
    // Collective state, per node. A node joins its collective once its d2h
    // staging finished (collective_started); ring hops arriving earlier are
    // buffered and drained then (single-predecessor FIFO keeps them in step
    // order).
    std::vector<bool> collective_started;
    std::vector<int> ring_buffered;   // arrived, not yet processed
    std::vector<int> ring_next_step;  // next hop step to process
    std::vector<int> tree_arrived;    // children subtree sums landed
  };

  struct NodeState {
    int iter = 0;
    int op = 0;              // 0..2L-1 within the iteration
    bool gpu_idle = true;    // true when not executing and not scheduled
    bool iter_marked = false;  // OnIterationStart already ran for `iter`
    bool finished = false;   // reached the final (unexecuted) iteration
    double gpu_busy = 0.0;   // cumulative compute seconds
    double copy_free_at = 0.0;
    double aux_free_at = 0.0;
    std::vector<int> synced_through;  // per layer: last iter fully synced
    int received_layers = 0;          // overlap-none: layers pulled this iter
  };

  void InitState() {
    nodes_.assign(num_nodes_, NodeState{});
    for (auto& node : nodes_) {
      node.synced_through.assign(num_layers_, -1);
    }
    sync_.resize(total_iters_);
    for (auto& per_iter : sync_) {
      per_iter.resize(num_layers_);
      for (auto& layer_state : per_iter) {
        layer_state.shards.assign(num_nodes_, ServerShardState{});
        for (auto& shard : layer_state.shards) {
          shard.requested.assign(num_nodes_, false);
          shard.sent.assign(num_nodes_, false);
        }
        layer_state.pull_parts.assign(num_nodes_, 0);
        layer_state.sf_arrived.assign(num_nodes_, 0);
        layer_state.done.assign(num_nodes_, false);
        layer_state.collective_started.assign(num_nodes_, false);
        layer_state.ring_buffered.assign(num_nodes_, 0);
        layer_state.ring_next_step.assign(num_nodes_, 0);
        layer_state.tree_arrived.assign(num_nodes_, 0);
      }
    }
    iter_start_.assign(total_iters_, -1.0);
    wire_msgs_.assign(num_nodes_, 0);
    logical_msgs_.assign(num_nodes_, 0);
    node_busy_at_begin_.assign(num_nodes_, 0.0);
    node_busy_at_end_.assign(num_nodes_, 0.0);
  }

  // ------------------------------------------------------------- op engine --
  int ForwardLayerOf(int op) const { return op; }
  int BackwardLayerOf(int op) const { return 2 * num_layers_ - 1 - op; }
  bool IsForward(int op) const { return op < num_layers_; }

  void TryRunOps(int n) {
    NodeState& node = nodes_[n];
    if (!node.gpu_idle || node.finished) {
      return;
    }
    const int op = node.op;
    double duration = 0.0;
    if (IsForward(op)) {
      const int layer = ForwardLayerOf(op);
      // BSP blocks until the previous iteration's sync landed; SSP tolerates
      // a bounded clock gap (the worker reads values at most `staleness`
      // iterations behind its own clock).
      if (node.iter > 0 && node.synced_through[layer] < node.iter - 1 - system_.staleness) {
        return;  // blocked on this layer's synchronization; stall
      }
      if (op == 0 && !node.iter_marked) {
        // The iteration's compute is actually beginning now.
        node.iter_marked = true;
        OnIterationStart(n);
        if (node.finished) {
          return;
        }
      }
      duration = timings_.layers[layer].fwd_s;
    } else {
      duration = timings_.layers[BackwardLayerOf(op)].bwd_s;
    }
    if (n == cluster_.straggler_node) {
      duration *= cluster_.straggler_slowdown;
    }
    node.gpu_idle = false;
    node.gpu_busy += duration;
    sim_.Schedule(duration, [this, n] { OnOpComplete(n); });
  }

  void OnIterationStart(int n) {
    NodeState& node = nodes_[n];
    if (n == 0) {
      CHECK_LT(node.iter, total_iters_);
      iter_start_[node.iter] = sim_.Now();
      // Frame groups of long-finished iterations can never match again
      // (keys embed the iteration); prune them so the map stays bounded.
      const int64_t done_iter =
          static_cast<int64_t>(node.iter) - system_.staleness - 2;
      if (system_.batch_egress && done_iter > 0) {
        const int64_t cutoff =
            done_iter * 4096 * num_nodes_ * num_nodes_;
        for (auto it = frame_groups_.begin(); it != frame_groups_.end();) {
          if (it->first < cutoff) {
            it = frame_groups_.erase(it);
          } else {
            ++it;
          }
        }
      }
      if (node.iter == options_.warmup_iters) {
        SnapshotTraffic(&traffic_begin_);
        for (int i = 0; i < num_nodes_; ++i) {
          node_busy_at_begin_[i] = nodes_[i].gpu_busy;
        }
        window_begin_ = sim_.Now();
      }
      if (node.iter == options_.warmup_iters + options_.measure_iters) {
        SnapshotTraffic(&traffic_end_);
        for (int i = 0; i < num_nodes_; ++i) {
          node_busy_at_end_[i] = nodes_[i].gpu_busy;
        }
        window_end_ = sim_.Now();
      }
    }
    if (node.iter == total_iters_ - 1) {
      node.finished = true;  // final iteration exists only to timestamp
    }
  }

  void OnOpComplete(int n) {
    NodeState& node = nodes_[n];
    node.gpu_idle = true;
    const int op = node.op;
    ++node.op;
    if (!IsForward(op)) {
      const int layer = BackwardLayerOf(op);
      if (system_.overlap != OverlapMode::kNone) {
        LaunchLayerSync(n, layer, node.iter);
      }
      if (node.op == 2 * num_layers_) {
        OnBackwardDone(n);
        return;
      }
    }
    TryRunOps(n);
  }

  void OnBackwardDone(int n) {
    NodeState& node = nodes_[n];
    const int iter = node.iter;
    node.op = 0;
    ++node.iter;
    node.iter_marked = false;
    node.received_layers = 0;

    if (system_.overlap == OverlapMode::kNone) {
      // Vanilla PS: one blocking DRAM<->GPU staging pass, then synchronize
      // every layer. The GPU sits idle throughout (stall time).
      double d2h_total = 0.0;
      for (const auto& wire : wires_) {
        d2h_total += DeviceCopyBytes(wire) / cluster_.pcie_bytes_per_sec;
      }
      sim_.Schedule(d2h_total, [this, n, iter] {
        for (int l = 0; l < num_layers_; ++l) {
          StartSend(n, l, iter);
        }
      });
      return;
    }

    if (system_.overlap == OverlapMode::kTfFetch) {
      // TensorFlow issues parameter fetches only at the iteration boundary:
      // send pull requests for every layer now.
      for (int l = 0; l < num_layers_; ++l) {
        if (wires_[l].scheme != WireScheme::kPsDense &&
            wires_[l].scheme != WireScheme::kOneBit) {
          continue;
        }
        SendPullRequests(n, l, iter);
      }
    }
    TryRunOps(n);
  }

  // ------------------------------------------------------- sync pipelines --
  double DeviceCopyBytes(const LayerWire& wire) const {
    switch (wire.scheme) {
      case WireScheme::kPsDense:
      case WireScheme::kOneBit:
      case WireScheme::kRing:
      case WireScheme::kTree:
        return wire.dense_bytes;
      case WireScheme::kSfb:
      case WireScheme::kAdamSf:
        return wire.sf_msg_bytes;
    }
    return 0.0;
  }

  // Reserves the node's copy engine and invokes `done` when the transfer
  // completes. Models CUDA async memcpy on a dedicated engine.
  void CopyEngine(int n, double bytes, std::function<void()> done) {
    NodeState& node = nodes_[n];
    const double start = std::max(node.copy_free_at, sim_.Now());
    const double finish = start + bytes / cluster_.pcie_bytes_per_sec;
    node.copy_free_at = finish;
    sim_.ScheduleAt(finish, std::move(done));
  }

  // Reserves the node's CPU worker (update application, quantization).
  void AuxEngine(int n, double seconds, std::function<void()> done) {
    NodeState& node = nodes_[n];
    const double start = std::max(node.aux_free_at, sim_.Now());
    const double finish = start + seconds;
    node.aux_free_at = finish;
    sim_.ScheduleAt(finish, std::move(done));
  }

  // All modeled wire traffic funnels through here so framing overhead and
  // message counts mirror the real transport (src/transport/message.h):
  // every message pays kWireFrameBytes, unless egress batching is on, in
  // which case same-(src, dst, iter) messages share one frame and pay only
  // the per-entry header after the first.
  // `frame_tag` separates sends that can never share a frame in the real
  // batcher because they are causally ordered (e.g. successive ring hops:
  // hop s+1 is only produced after hop s was received, so only same-step
  // hops of different layers coalesce). Frames are cut by the same
  // message-count and byte thresholds as the real batcher (its defaults),
  // so large layers that overflow max_batch_bytes get no modeled merging
  // the transport could not deliver.
  void WireSend(int src, int dst, double payload_bytes, int iter,
                std::function<void()> done, int frame_tag = 0) {
    if (src == dst) {
      // Loopback: the real bus bypasses the NIC for local traffic and
      // excludes it from framing and message accounting; mirror that.
      fabric_->Send(src, dst, payload_bytes, std::move(done));
      return;
    }
    double framed = payload_bytes;
    if (system_.batch_egress) {
      static const EgressBatchOptions kModeledBatch;  // the real defaults
      const int64_t key =
          ((static_cast<int64_t>(iter) * 4096 + frame_tag) * num_nodes_ + src) *
              num_nodes_ +
          dst;
      FrameGroup& group = frame_groups_[key];
      framed += static_cast<double>(kBatchEntryHeaderBytes);
      if (group.entries == 0) {
        // First entry of a (possibly continuation) frame: pay the frame
        // header, count one wire message.
        framed += static_cast<double>(kWireFrameBytes);
        ++wire_msgs_[static_cast<size_t>(src)];
      }
      ++group.entries;
      group.bytes += static_cast<double>(kBatchEntryHeaderBytes) + payload_bytes;
      if (group.entries >= kModeledBatch.max_batch_messages ||
          group.bytes >= static_cast<double>(kModeledBatch.max_batch_bytes)) {
        group = FrameGroup{};  // frame cut; the next send opens a new one
      }
    } else {
      framed += static_cast<double>(kWireFrameBytes);
      ++wire_msgs_[static_cast<size_t>(src)];
    }
    ++logical_msgs_[static_cast<size_t>(src)];
    if (system_.loss_rate > 0.0) {
      // Reliable link layer over a lossy wire, in expectation: the message
      // is transmitted 1/(1-p) times (bytes inflate) and arrives late by the
      // expected retransmit backlog p/(1-p) * RTO. Deterministic, so the
      // simulation stays bit-reproducible.
      const double p = system_.loss_rate;
      framed /= (1.0 - p);
      const double retx_delay_s = p / (1.0 - p) * system_.retransmit_timeout_s;
      fabric_->Send(src, dst, framed, [this, retx_delay_s, done = std::move(done)] {
        sim_.Schedule(retx_delay_s, done);
      });
      return;
    }
    fabric_->Send(src, dst, framed, std::move(done));
  }

  void LaunchLayerSync(int n, int layer, int iter) {
    const LayerWire& wire = wires_[layer];
    double pre = wire.local_reduce_s;
    const double d2h = DeviceCopyBytes(wire);
    // The copy engine runs the local reduce then the host transfer.
    NodeState& node = nodes_[n];
    const double start = std::max(node.copy_free_at, sim_.Now());
    const double finish = start + pre + d2h / cluster_.pcie_bytes_per_sec;
    node.copy_free_at = finish;
    sim_.ScheduleAt(finish, [this, n, layer, iter] {
      // Quantized schemes (1-bit, and the compressed dense-PS codecs) pay
      // the encode pass on the CPU before any byte moves.
      if (wires_[layer].quant_cpu_s > 0.0) {
        AuxEngine(n, wires_[layer].quant_cpu_s, [this, n, layer, iter] {
          StartSend(n, layer, iter);
        });
      } else {
        StartSend(n, layer, iter);
      }
    });
  }

  void StartSend(int n, int layer, int iter) {
    const LayerWire& wire = wires_[layer];
    switch (wire.scheme) {
      case WireScheme::kPsDense:
      case WireScheme::kOneBit:
        if (wire.sharded) {
          for (int s = 0; s < num_nodes_; ++s) {
            WireSend(n, s, wire.push_bytes, iter,
                     [this, layer, iter, s] { OnPushArrived(layer, iter, s); });
          }
        } else {
          WireSend(n, wire.owner, wire.push_bytes, iter,
                   [this, layer, iter, owner = wire.owner] {
                     OnPushArrived(layer, iter, owner);
                   });
        }
        break;
      case WireScheme::kSfb:
        for (int peer = 0; peer < num_nodes_; ++peer) {
          if (peer == n) {
            OnSfArrived(peer, layer, iter, /*local=*/true);
            continue;
          }
          WireSend(n, peer, wire.sf_msg_bytes, iter, [this, peer, layer, iter] {
            OnSfArrived(peer, layer, iter, /*local=*/false);
          });
        }
        break;
      case WireScheme::kAdamSf:
        WireSend(n, wire.owner, wire.sf_msg_bytes, iter,
                 [this, layer, iter, owner = wire.owner] {
                   OnPushArrived(layer, iter, owner);
                 });
        break;
      case WireScheme::kRing: {
        // The node's staged gradient exists now: join the ring by sending
        // hop 0 downstream, then drain any hops that arrived early.
        LayerSyncState& state = sync_[iter][layer];
        state.collective_started[n] = true;
        WireSend(
            n, RingNext(n, num_nodes_), wire.push_bytes, iter,
            [this, layer, iter, next = RingNext(n, num_nodes_)] {
              OnRingHopArrived(layer, iter, next);
            },
            /*frame_tag=*/1);
        DrainRingHops(layer, iter, n);
        break;
      }
      case WireScheme::kTree: {
        LayerSyncState& state = sync_[iter][layer];
        state.collective_started[n] = true;
        MaybeTreeReduceDone(layer, iter, n);
        break;
      }
    }
  }

  // ------------------------------------------- collective sync pipelines --
  // Ring allreduce: 2(P-1) pipelined hops of a 1/P chunk around the ring.
  // Receiving hop s triggers the node's hop s+1 send; the first P-1 hops
  // fold the incoming chunk on the CPU (reduce-scatter), the rest only relay
  // (all-gather). The final hop completes the node's buffer.
  void OnRingHopArrived(int layer, int iter, int node) {
    LayerSyncState& state = sync_[iter][layer];
    ++state.ring_buffered[node];
    DrainRingHops(layer, iter, node);
  }

  void DrainRingHops(int layer, int iter, int node) {
    LayerSyncState& state = sync_[iter][layer];
    if (!state.collective_started[node]) {
      return;  // gradients not staged yet; hops stay buffered
    }
    while (state.ring_buffered[node] > 0) {
      --state.ring_buffered[node];
      HandleRingHop(layer, iter, node, state.ring_next_step[node]++);
    }
  }

  void HandleRingHop(int layer, int iter, int node, int step) {
    const LayerWire& wire = wires_[layer];
    const int last_step = 2 * num_nodes_ - 3;
    auto forward = [this, layer, iter, node, step, last_step] {
      if (step < last_step) {
        WireSend(
            node, RingNext(node, num_nodes_), wires_[layer].push_bytes, iter,
            [this, layer, iter, next = RingNext(node, num_nodes_)] {
              OnRingHopArrived(layer, iter, next);
            },
            /*frame_tag=*/2 + step);
      } else {
        CompleteCollective(layer, iter, node);
      }
    };
    if (step < num_nodes_ - 1) {
      AuxEngine(node, wire.collective_add_s, forward);  // reduce-scatter fold
    } else {
      forward();  // all-gather relay
    }
  }

  // Binary-tree reduce-broadcast: subtree sums flow to the root, which
  // broadcasts the aggregate back down. A node reduces once its own staged
  // gradient and all children's sums are present.
  void OnTreeReduceArrived(int layer, int iter, int node) {
    LayerSyncState& state = sync_[iter][layer];
    ++state.tree_arrived[node];
    MaybeTreeReduceDone(layer, iter, node);
  }

  void MaybeTreeReduceDone(int layer, int iter, int node) {
    LayerSyncState& state = sync_[iter][layer];
    const int num_children = static_cast<int>(TreeChildren(node, num_nodes_).size());
    if (!state.collective_started[node] || state.tree_arrived[node] != num_children) {
      return;
    }
    const LayerWire& wire = wires_[layer];
    const double add_s = num_children * wire.collective_add_s;
    AuxEngine(node, add_s, [this, layer, iter, node] {
      if (node == 0) {
        OnTreeBroadcastArrived(layer, iter, 0);  // root holds the global sum
      } else {
        WireSend(node, TreeParent(node), wires_[layer].push_bytes, iter,
                 [this, layer, iter, parent = TreeParent(node)] {
                   OnTreeReduceArrived(layer, iter, parent);
                 });
      }
    });
  }

  void OnTreeBroadcastArrived(int layer, int iter, int node) {
    for (int child : TreeChildren(node, num_nodes_)) {
      WireSend(node, child, wires_[layer].push_bytes, iter, [this, layer, iter, child] {
        OnTreeBroadcastArrived(layer, iter, child);
      });
    }
    CompleteCollective(layer, iter, node);
  }

  // The node holds the full aggregate: replicated SGD apply on the CPU, then
  // stage the fresh parameters back into GPU memory.
  void CompleteCollective(int layer, int iter, int node) {
    AuxEngine(node, wires_[layer].local_apply_s, [this, layer, iter, node] {
      if (system_.overlap == OverlapMode::kNone) {
        OnLayerReceivedNoOverlap(layer, iter, node);
        return;
      }
      CopyEngine(node, wires_[layer].dense_bytes,
                 [this, layer, iter, node] { FinishSync(layer, iter, node); });
    });
  }

  // BSP quorum: all workers, or all-but-one under the drop-straggler policy.
  int PushQuorum() const {
    return (system_.drop_stragglers && num_nodes_ > 1) ? num_nodes_ - 1 : num_nodes_;
  }

  // A push (dense shard, compressed shard or SF set) arrived at server `s`.
  void OnPushArrived(int layer, int iter, int s) {
    LayerSyncState& state = sync_[iter][layer];
    ServerShardState& shard = state.shards[s];
    ++shard.pushes;
    if (shard.pushes != PushQuorum()) {
      return;  // either still waiting, or a dropped straggler arriving late
    }
    // All workers contributed: apply the update, then make the shard
    // available (bulk synchronous consistency, §4.1 "Managing Consistency").
    const LayerWire& wire = wires_[layer];
    double apply_s = wire.apply_cpu_s;
    if (wire.quant_cpu_s > 0.0) {
      // Dequantize P inputs + requantize the replies. For a sharded
      // compressed layer each of the P shards decodes P slices of 1/P of the
      // layer and re-encodes P reply slices, which sums to the same two
      // whole-layer passes the unsharded 1-bit row charges.
      apply_s += wire.quant_cpu_s * 2.0;
    }
    if (wire.scheme == WireScheme::kAdamSf) {
      // Reconstruct P workers' SF outer products on the server.
      apply_s += num_nodes_ * wire.recon_flops_per_sf / cluster_.recon_flops;
    }
    AuxEngine(s, apply_s, [this, layer, iter, s] { OnShardReady(layer, iter, s); });
  }

  void OnShardReady(int layer, int iter, int s) {
    LayerSyncState& state = sync_[iter][layer];
    ServerShardState& shard = state.shards[s];
    shard.applied = true;
    for (int w = 0; w < num_nodes_; ++w) {
      const bool eager = system_.overlap != OverlapMode::kTfFetch;
      if (eager || shard.requested[w]) {
        SendPull(layer, iter, s, w);
      }
    }
  }

  void SendPullRequests(int n, int layer, int iter) {
    const LayerWire& wire = wires_[layer];
    if (wire.sharded) {
      for (int s = 0; s < num_nodes_; ++s) {
        WireSend(
            n, s, 0.0, iter,
            [this, layer, iter, s, n] { OnPullRequest(layer, iter, s, n); },
            /*frame_tag=*/4000);
      }
    } else {
      WireSend(
          n, wire.owner, 0.0, iter,
          [this, layer, iter, owner = wire.owner, n] {
            OnPullRequest(layer, iter, owner, n);
          },
          /*frame_tag=*/4000);
    }
  }

  void OnPullRequest(int layer, int iter, int s, int w) {
    LayerSyncState& state = sync_[iter][layer];
    ServerShardState& shard = state.shards[s];
    shard.requested[w] = true;
    if (shard.applied) {
      SendPull(layer, iter, s, w);
    }
  }

  void SendPull(int layer, int iter, int s, int w) {
    LayerSyncState& state = sync_[iter][layer];
    ServerShardState& shard = state.shards[s];
    if (shard.sent[w]) {
      return;
    }
    shard.sent[w] = true;
    WireSend(s, w, wires_[layer].pull_bytes, iter,
             [this, layer, iter, w] { OnPullArrived(layer, iter, w); });
  }

  void OnPullArrived(int layer, int iter, int w) {
    LayerSyncState& state = sync_[iter][layer];
    const LayerWire& wire = wires_[layer];
    const int parts_needed = wire.sharded ? num_nodes_ : 1;
    if (++state.pull_parts[w] < parts_needed) {
      return;
    }
    // Whole layer received: optional CPU dequantization, then stage back
    // into GPU memory.
    auto stage_in = [this, layer, iter, w] {
      if (system_.overlap == OverlapMode::kNone) {
        OnLayerReceivedNoOverlap(layer, iter, w);
        return;
      }
      CopyEngine(w, wires_[layer].dense_bytes,
                 [this, layer, iter, w] { FinishSync(layer, iter, w); });
    };
    if (wire.quant_cpu_s > 0.0) {
      // Dequantize the reply (1-bit levels, or the binary16 frames of the
      // compressed PS codecs) before staging back to the GPU.
      AuxEngine(w, wire.quant_cpu_s, stage_in);
    } else {
      stage_in();
    }
  }

  void OnSfArrived(int peer, int layer, int iter, bool local) {
    const LayerWire& wire = wires_[layer];
    auto count = [this, peer, layer, iter] {
      LayerSyncState& state = sync_[iter][layer];
      if (++state.sf_arrived[peer] != PushQuorum()) {
        return;
      }
      // All peers' factors present: reconstruct (P-1) outer products on
      // spare GPU streams, then the layer is synchronized.
      const double recon_s =
          (num_nodes_ - 1) * wires_[layer].recon_flops_per_sf / cluster_.recon_flops;
      sim_.Schedule(recon_s, [this, layer, iter, peer] { FinishSync(layer, iter, peer); });
    };
    if (local) {
      count();
    } else {
      CopyEngine(peer, wire.sf_msg_bytes, count);  // stage peer SFs to GPU
    }
  }

  // Overlap-none: layers complete individually, but the node re-stages
  // everything in one blocking host->GPU pass at the end.
  void OnLayerReceivedNoOverlap(int /*layer*/, int iter, int w) {
    NodeState& node = nodes_[w];
    ++node.received_layers;
    if (node.received_layers < num_layers_) {
      return;
    }
    double h2d_total = 0.0;
    for (const auto& wire : wires_) {
      h2d_total += wire.dense_bytes / cluster_.pcie_bytes_per_sec;
    }
    sim_.Schedule(h2d_total, [this, iter, w] {
      for (int l = 0; l < num_layers_; ++l) {
        FinishSync(l, iter, w);
      }
    });
  }

  void FinishSync(int layer, int iter, int w) {
    LayerSyncState& state = sync_[iter][layer];
    if (state.done[w]) {
      return;
    }
    state.done[w] = true;
    NodeState& node = nodes_[w];
    node.synced_through[layer] = std::max(node.synced_through[layer], iter);
    TryRunOps(w);
  }

  // -------------------------------------------------------------- metrics --
  struct TrafficSnapshot {
    std::vector<double> tx;
    std::vector<double> rx;
    std::vector<int64_t> wire_msgs;
    std::vector<int64_t> logical_msgs;
  };

  void SnapshotTraffic(TrafficSnapshot* snap) {
    snap->tx = fabric_->stats().tx_bytes;
    snap->rx = fabric_->stats().rx_bytes;
    snap->wire_msgs = wire_msgs_;
    snap->logical_msgs = logical_msgs_;
  }

  SimResult Collect() {
    SimResult result;
    result.system = system_.name;
    result.model = model_.name;
    result.num_nodes = num_nodes_;
    result.nic_gbps = cluster_.nic_gbps;
    result.single_node_iter_s = timings_.batch_time_s;

    const int w = options_.warmup_iters;
    const int m = options_.measure_iters;
    CHECK_GE(iter_start_[w], 0.0) << "simulation ended before warmup completed";
    CHECK_GE(iter_start_[w + m], 0.0) << "simulation ended before measurement completed";
    result.iter_time_s = (iter_start_[w + m] - iter_start_[w]) / m;
    const double images_per_iter = static_cast<double>(batch_) * num_nodes_ *
                                   cluster_.gpus_per_node;
    result.images_per_sec = images_per_iter / result.iter_time_s;
    const double single_node_rate =
        static_cast<double>(batch_) * cluster_.gpus_per_node / timings_.batch_time_s;
    result.speedup = result.images_per_sec / (single_node_rate / cluster_.gpus_per_node);

    const double span = window_end_ - window_begin_;
    double busy_frac = 0.0;
    for (int n = 0; n < num_nodes_; ++n) {
      busy_frac += (node_busy_at_end_[n] - node_busy_at_begin_[n]) / span;
    }
    result.gpu_busy_frac = busy_frac / num_nodes_;

    result.tx_gbits_per_iter.resize(num_nodes_);
    result.rx_gbits_per_iter.resize(num_nodes_);
    result.wire_msgs_per_iter.resize(num_nodes_);
    result.logical_msgs_per_iter.resize(num_nodes_);
    for (int n = 0; n < num_nodes_; ++n) {
      result.tx_gbits_per_iter[n] =
          BytesToGigabits(traffic_end_.tx[n] - traffic_begin_.tx[n]) / m;
      result.rx_gbits_per_iter[n] =
          BytesToGigabits(traffic_end_.rx[n] - traffic_begin_.rx[n]) / m;
      result.wire_msgs_per_iter[n] = static_cast<double>(traffic_end_.wire_msgs[n] -
                                                         traffic_begin_.wire_msgs[n]) /
                                     m;
      result.logical_msgs_per_iter[n] =
          static_cast<double>(traffic_end_.logical_msgs[n] -
                              traffic_begin_.logical_msgs[n]) /
          m;
    }

    for (int l = 0; l < num_layers_; ++l) {
      // Compressed PS layers report as e.g. "PS+int8" so plan assertions and
      // bench tables can see the codec choice alongside the scheme.
      std::string scheme = WireSchemeName(wires_[l].scheme);
      if (wires_[l].compression != GradCompression::kNone) {
        scheme += std::string("+") + GradCompressionName(wires_[l].compression);
      }
      result.layer_schemes[model_.layers[l].name] = std::move(scheme);
    }

    result.expected_transmissions = 1.0 / (1.0 - system_.loss_rate);
    if (system_.detect_timeout_s > 0.0 || system_.restart_s > 0.0) {
      // One crash episode: the detector's deadline, the restart +
      // rehydration, and the replay of the in-flight iteration. Survivors
      // proceed up to `staleness` clocks before blocking on the dead
      // worker, so the SSP bound absorbs that much of the outage.
      const double outage =
          system_.detect_timeout_s + system_.restart_s + result.iter_time_s;
      const double absorbed =
          std::min(outage, static_cast<double>(system_.staleness) * result.iter_time_s);
      result.recovery_stall_s = outage - absorbed;
    }
    return result;
  }

  const ModelSpec& model_;
  const SystemConfig& system_;
  const ClusterSpec& cluster_;
  const Engine engine_;
  const int batch_;
  const SimOptions options_;
  const int num_nodes_;
  const int num_layers_;
  const int total_iters_;
  const ComputeTimings timings_;

  Simulator sim_;
  std::unique_ptr<NetworkFabric> fabric_;
  std::vector<LayerWire> wires_;
  std::vector<NodeState> nodes_;
  std::vector<std::vector<LayerSyncState>> sync_;  // [iter][layer]

  std::vector<double> iter_start_;  // node 0's forward start per iteration
  std::vector<int64_t> wire_msgs_;     // per node, cumulative wire frames
  std::vector<int64_t> logical_msgs_;  // per node, cumulative messages
  /// One modeled open frame per (iter, tag, src, dst) group.
  struct FrameGroup {
    int entries = 0;
    double bytes = 0.0;
  };
  std::unordered_map<int64_t, FrameGroup> frame_groups_;
  TrafficSnapshot traffic_begin_;
  TrafficSnapshot traffic_end_;
  std::vector<double> node_busy_at_begin_;
  std::vector<double> node_busy_at_end_;
  double window_begin_ = 0.0;
  double window_end_ = 0.0;
};

}  // namespace

SimResult RunProtocolSimulation(const ModelSpec& model, const SystemConfig& system,
                                const ClusterSpec& cluster, Engine engine, int batch_per_node,
                                const SimOptions& options) {
  ProtocolSim sim(model, system, cluster, engine, batch_per_node, options);
  return sim.Run();
}

SimResult RunProtocolSimulation(const ModelSpec& model, const SystemConfig& system,
                                const ClusterSpec& cluster, Engine engine) {
  return RunProtocolSimulation(model, system, cluster, engine, model.default_batch);
}

}  // namespace poseidon

// Regenerates Figure 9: (a) throughput speedup for ResNet-152, Poseidon vs
// native TF on 1-32 nodes; (b) top-1 test error vs epoch for synchronous
// data-parallel training at different node counts.
//
// (b) substitution: the paper trains ResNet-152 on ILSVRC12 for ~90 epochs
// on the real cluster; here a small ResNet trains on the synthetic dataset
// through the *real* threaded Poseidon runtime. The property being
// reproduced is the paper's: synchronous replication with the same aggregate
// batch gives the same error-vs-epoch trajectory regardless of how many
// workers the batch is split across (so speedup in throughput translates
// linearly into speedup in time-to-accuracy).
#include <cstdio>

#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/models/zoo.h"
#include "src/nn/builders.h"
#include "src/poseidon/trainer.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

void ThroughputPart(const BenchArgs& args) {
  const ModelSpec model = MakeResNet152();
  const double gbps = args.FirstGbpsOr(40.0);
  const auto results = RunScalingSweep(model, {TfNative(), PoseidonSystem()},
                                       args.NodesOr({1, 2, 4, 8, 16, 32}), gbps,
                                       Engine::kTensorFlow);
  char title[96];
  std::snprintf(title, sizeof(title), "Fig 9a: ResNet-152 throughput (TF engine, %.0f GbE)",
                gbps);
  std::printf("%s\n", FormatSpeedupTable(title, results).c_str());
}

void ConvergencePart(const BenchArgs& args) {
  std::printf("Fig 9b: top-1 test error vs epoch, synchronous SGD, aggregate batch 32\n");
  std::printf("(small ResNet on the synthetic dataset through the threaded runtime;\n");
  std::printf("the curves must coincide across node counts)\n\n");

  DatasetConfig data_config;
  data_config.num_classes = 8;
  data_config.channels = 2;
  data_config.height = 8;
  data_config.width = 8;
  data_config.train_size = 256;
  data_config.test_size = 128;
  data_config.noise_stddev = 1.8f;  // hard enough that error decays over epochs
  data_config.seed = 90210;
  SyntheticDataset dataset(data_config);

  const int total_batch = 32;
  const int iters_per_epoch = data_config.train_size / total_batch;
  const int epochs = args.ItersOr(/*normal=*/8, /*fast_iters=*/2);

  NetworkFactory factory = [] {
    Rng rng(4242);
    return BuildSmallResNet(/*channels=*/2, /*image_hw=*/8, /*classes=*/8, /*width=*/8,
                            /*blocks=*/2, rng);
  };

  TextTable table({"epoch", "err @2 workers", "err @4 workers", "err @8 workers"});
  std::vector<std::vector<double>> errors;
  for (int workers : {2, 4, 8}) {
    TrainerOptions options;
    options.num_workers = workers;
    options.num_servers = workers;
    options.batch_per_worker = total_batch / workers;
    options.sgd = {.learning_rate = 0.01f, .momentum = 0.9f};
    options.fc_policy = FcSyncPolicy::kHybrid;
    options.kv_pair_bytes = 4096;
    PoseidonTrainer trainer(factory, options);
    std::vector<double> per_epoch;
    for (int e = 0; e < epochs; ++e) {
      trainer.Train(dataset, iters_per_epoch);
      per_epoch.push_back(1.0 - trainer.EvaluateTest(dataset).accuracy);
    }
    errors.push_back(std::move(per_epoch));
  }
  for (int e = 0; e < epochs; ++e) {
    table.AddRow({std::to_string(e + 1), TextTable::Num(errors[0][e], 3),
                  TextTable::Num(errors[1][e], 3), TextTable::Num(errors[2][e], 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::ThroughputPart(args);
  poseidon::ConvergencePart(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

#include "tests/testing/socket_cluster.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/poseidon/workloads.h"
#include "src/transport/cluster_launcher.h"
#include "tests/testing/subprocess.h"

namespace poseidon {
namespace testing {
namespace {

void Accumulate(const FaultCountersSnapshot& add, FaultCountersSnapshot* into) {
  into->drops += add.drops;
  into->retransmits += add.retransmits;
  into->duplicates += add.duplicates;
  into->delays += add.delays;
  into->partition_holds += add.partition_holds;
  into->deduped += add.deduped;
  into->reordered += add.reordered;
  into->dropped_replies += add.dropped_replies;
}

}  // namespace

SocketClusterRun RunSocketCluster(const SocketClusterOptions& options) {
  const int base = options.colocate ? 0 : options.workers;
  const int num_nodes = std::max(options.workers, base + options.servers);
  const int num_processes = num_nodes + 1;  // + the controller, process 0
  const std::string dir = MakeTempDir("socket_cluster");

  std::vector<SocketEndpoint> endpoints;
  for (int p = 0; p < num_processes; ++p) {
    SocketEndpoint ep;
    if (options.unix_sockets) {
      ep.unix_path = MakeUnixSocketPath(dir, "member", p);
    } else {
      StatusOr<int> port = PickFreeTcpPort();
      CHECK(port.ok()) << port.status().ToString();
      ep.port = *port;
    }
    endpoints.push_back(ep);
  }
  std::vector<int> node_owner;
  for (int n = 0; n < num_nodes; ++n) {
    node_owner.push_back(n + 1);
  }

  std::vector<std::unique_ptr<ClusterNode>> members;
  for (int p = 0; p < num_processes; ++p) {
    ClusterNodeConfig config;
    config.trainer = workloads::SmallTrainerOptions(
        options.workers, options.servers, options.shards, options.staleness,
        options.policy);
    config.trainer.server_node_base = base;
    config.trainer.batch_egress = options.batch_egress;
    config.hidden_layers = options.hidden_layers;
    config.iterations = options.iterations;
    config.process = p;
    config.out_dir = dir;
    config.transport.self = p;
    config.transport.processes = endpoints;
    config.transport.node_owner = node_owner;
    config.transport.shim = options.shim;
    members.push_back(std::make_unique<ClusterNode>(std::move(config)));
  }

  std::vector<Status> results(members.size());
  std::vector<std::thread> threads;
  for (size_t p = 0; p < members.size(); ++p) {
    threads.emplace_back([&, p] { results[p] = members[p]->Run(); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (size_t p = 0; p < results.size(); ++p) {
    CHECK(results[p].ok()) << "cluster member " << p << ": "
                           << results[p].ToString();
  }

  SocketClusterRun run;
  run.trajectory.mean_losses =
      MeanLossesFromRun(dir, options.workers, options.iterations);
  run.trajectory.final_params =
      FinalParamsFromRun(dir, /*worker=*/0, options.hidden_layers);
  for (const auto& member : members) {
    Accumulate(member->shim_counters(), &run.shim);
    Accumulate(member->wire_counters(), &run.wire);
  }
  return run;
}

}  // namespace testing
}  // namespace poseidon

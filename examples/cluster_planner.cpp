// Cluster planner: capacity-planning for a training job before buying the
// hardware. Given a Table 3 model, a node count and a per-node bandwidth, it
// prints (a) HybComm's per-layer scheme decisions with the Table 1 cost
// arithmetic, and (b) the simulated throughput of Poseidon vs a plain PS on
// that cluster.
//
//   ./cluster_planner [model] [nodes] [gbps]
//   ./cluster_planner vgg19 16 10
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/cluster/protocol_sim.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/models/comm_cost.h"
#include "src/models/zoo.h"

int main(int argc, char** argv) {
  using namespace poseidon;

  const std::string model_name = argc > 1 ? argv[1] : "vgg19";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 16;
  const double gbps = argc > 3 ? std::atof(argv[3]) : 10.0;

  const auto model_or = ModelByName(model_name);
  if (!model_or.ok()) {
    std::fprintf(stderr, "unknown model '%s' (try: googlenet, vgg19, vgg19-22k, "
                         "inception-v3, resnet-152, alexnet, cifar-quick)\n",
                 model_name.c_str());
    return 1;
  }
  const ModelSpec model = *model_or;
  const int batch = model.default_batch;

  std::printf("%s\n", model.Summary().c_str());
  std::printf("Cluster: %d nodes (colocated worker + KV shard), %.0f GbE, batch %d/node\n\n",
              nodes, gbps, batch);

  TextTable table({"layer", "type", "params", "PS both (MB)", "SFB (MB)", "chosen"});
  double ps_total = 0.0;
  double chosen_total = 0.0;
  for (const LayerSpec& layer : model.layers) {
    const CommScheme scheme = BestScheme(layer, batch, nodes, nodes);
    double ps_mb = 0.0;
    double sfb_mb = 0.0;
    if (layer.type == LayerType::kFC && nodes > 1) {
      CommCostQuery q{layer.fc_m, layer.fc_n, batch, nodes, nodes};
      ps_mb = PsColocatedFloats(q) * 4 / 1e6;
      sfb_mb = SfbWorkerFloats(q) * 4 / 1e6;
    } else {
      ps_mb = 2.0 * static_cast<double>(layer.param_bytes()) * (2 * nodes - 2) / nodes / 1e6;
      sfb_mb = ps_mb;  // not applicable; PS is used
    }
    ps_total += ps_mb;
    chosen_total += scheme == CommScheme::kSFB ? sfb_mb : ps_mb;
    table.AddRow({layer.name, LayerTypeName(layer.type), std::to_string(layer.params),
                  TextTable::Num(ps_mb, 1), TextTable::Num(sfb_mb, 1),
                  CommSchemeName(scheme)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Per-node traffic per iteration: pure PS %.0f MB -> HybComm %.0f MB (%.1fx less)\n\n",
              ps_total, chosen_total, ps_total / std::max(chosen_total, 1e-9));

  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = gbps;
  const SimResult ps =
      RunProtocolSimulation(model, CaffePlusWfbp(), cluster, Engine::kCaffe);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe);
  std::printf("Predicted throughput (simulated):\n");
  std::printf("  PS + WFBP : %7.1f img/s  (speedup %.1fx of linear %d)\n",
              ps.images_per_sec, ps.speedup, nodes);
  std::printf("  Poseidon  : %7.1f img/s  (speedup %.1fx of linear %d)\n",
              poseidon.images_per_sec, poseidon.speedup, nodes);
  return 0;
}

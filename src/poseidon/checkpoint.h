/// \file
/// Parameter checkpointing (paper §4.1: the KV store "will regularly
/// checkpoint current parameter states for fault tolerance").
///
/// Under BSP every replica holds the full, current model between iterations,
/// so a checkpoint is one worker's parameter set plus the iteration cursor.
/// The format is a small self-describing binary: per parameter tensor its
/// name and raw float payload, so a restored run resumes on the exact sample
/// stream position with the exact parameters (optimizer velocities restart at
/// zero, like Caffe's plain snapshots).
#ifndef POSEIDON_SRC_POSEIDON_CHECKPOINT_H_
#define POSEIDON_SRC_POSEIDON_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/nn/network.h"

namespace poseidon {

/// Writes all of `net`'s parameters and the iteration cursor to `path`.
Status SaveCheckpoint(Network& net, int64_t next_iter, const std::string& path);

/// Loads a checkpoint into `net` (names and shapes must match) and returns
/// the stored iteration cursor.
StatusOr<int64_t> LoadCheckpoint(const std::string& path, Network* net);

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_CHECKPOINT_H_

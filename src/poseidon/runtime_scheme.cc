#include "src/poseidon/runtime_scheme.h"

namespace poseidon {

const char* RuntimeSchemeName(RuntimeScheme scheme) {
  switch (scheme) {
    case RuntimeScheme::kNone:
      return "none";
    case RuntimeScheme::kPsDense:
      return "PS";
    case RuntimeScheme::kSfb:
      return "SFB";
    case RuntimeScheme::kOneBit:
      return "1bit";
  }
  return "?";
}

std::vector<RuntimeScheme> ResolveSchemes(const Coordinator& coordinator,
                                          FcSyncPolicy policy) {
  std::vector<RuntimeScheme> schemes;
  schemes.reserve(static_cast<size_t>(coordinator.num_layers()));
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    const LayerInfo& info = coordinator.layer(l);
    if (info.total_floats == 0) {
      schemes.push_back(RuntimeScheme::kNone);
      continue;
    }
    if (info.type != LayerType::kFC) {
      schemes.push_back(RuntimeScheme::kPsDense);
      continue;
    }
    switch (policy) {
      case FcSyncPolicy::kDense:
        schemes.push_back(RuntimeScheme::kPsDense);
        break;
      case FcSyncPolicy::kSfb:
        schemes.push_back(RuntimeScheme::kSfb);
        break;
      case FcSyncPolicy::kHybrid:
        schemes.push_back(coordinator.BestScheme(l) == CommScheme::kSFB
                              ? RuntimeScheme::kSfb
                              : RuntimeScheme::kPsDense);
        break;
      case FcSyncPolicy::kOneBit:
        schemes.push_back(RuntimeScheme::kOneBit);
        break;
    }
  }
  return schemes;
}

}  // namespace poseidon

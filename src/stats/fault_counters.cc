#include "src/stats/fault_counters.h"

#include <sstream>

namespace poseidon {

FaultCounters::FaultCounters() {
  MetricsRegistry& registry = MetricsRegistry::Default();
  global_drops_ = registry.GetCounter("fault.drops");
  global_retransmits_ = registry.GetCounter("fault.retransmits");
  global_duplicates_ = registry.GetCounter("fault.duplicates");
  global_delays_ = registry.GetCounter("fault.delays");
  global_partition_holds_ = registry.GetCounter("fault.partition_holds");
  global_deduped_ = registry.GetCounter("fault.deduped");
  global_reordered_ = registry.GetCounter("fault.reordered");
  global_dropped_replies_ = registry.GetCounter("fault.dropped_replies");
}

std::string FormatFaultCounters(const FaultCountersSnapshot& snap) {
  std::ostringstream out;
  out << "faults{drops=" << snap.drops << " retx=" << snap.retransmits
      << " dups=" << snap.duplicates << " delays=" << snap.delays
      << " partition_holds=" << snap.partition_holds << " deduped=" << snap.deduped
      << " reordered=" << snap.reordered << " dropped_replies=" << snap.dropped_replies
      << "}";
  return out.str();
}

}  // namespace poseidon

#include "src/stats/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/logging.h"

namespace poseidon {

Histogram::Histogram(std::vector<int64_t> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1) {
  CHECK(!edges_.empty());
  for (size_t i = 1; i < edges_.size(); ++i) {
    CHECK_LT(edges_[i - 1], edges_[i]) << "histogram edges must be strictly increasing";
  }
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(int64_t sample) {
  size_t bucket = edges_.size();  // overflow bucket
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (sample <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  // Racy max: two concurrent recorders may both win their CAS round, but the
  // final value is always one of the recorded samples and never decreases.
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.edges = edges_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.total_count = total_count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  total_count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> LatencyBucketsNs() {
  // 1us, 4us, 16us, ..., ~1.07s: 11 buckets plus overflow.
  std::vector<int64_t> edges;
  for (int64_t e = 1000; e <= 1'100'000'000; e *= 4) {
    edges.push_back(e);
  }
  return edges;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(name, nullptr);
  if (inserted) {
    it->second = std::make_unique<Counter>();
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(name, nullptr);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> edges) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(name, nullptr);
  if (inserted) {
    it->second = std::make_unique<Histogram>(std::move(edges));
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->TakeSnapshot();
  }
  return snap;
}

namespace {

void AppendJsonNumber(std::ostringstream* out, double value) {
  // JSON has no NaN/Inf; clamp to null for safety.
  if (value != value) {
    *out << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out << buf;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  const Snapshot snap = TakeSnapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    AppendJsonNumber(&out, value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"edges\": [";
    for (size_t i = 0; i < hist.edges.size(); ++i) {
      out << (i == 0 ? "" : ", ") << hist.edges[i];
    }
    out << "], \"counts\": [";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      out << (i == 0 ? "" : ", ") << hist.counts[i];
    }
    out << "], \"count\": " << hist.total_count << ", \"sum\": " << hist.sum
        << ", \"max\": " << hist.max << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return UnavailableError("short write to " + path);
  }
  return Status::Ok();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace poseidon

// In-process message bus with per-endpoint mailboxes and optional egress
// rate limiting.
//
// This stands in for the paper's Ethernet + ZMQ layer: every endpoint
// (server service loop, worker syncer mailbox) registers a blocking queue;
// Send() routes by address. A token-bucket rate limiter can be attached per
// node to emulate a bounded-egress NIC in wall-clock time (used by examples;
// the quantitative bandwidth experiments use the virtual-time fabric in
// src/sim instead). Traffic is accounted per node for the load-balance
// experiments.
#ifndef POSEIDON_SRC_TRANSPORT_BUS_H_
#define POSEIDON_SRC_TRANSPORT_BUS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/blocking_queue.h"
#include "src/common/status.h"
#include "src/transport/message.h"
#include "src/transport/rate_limiter.h"

namespace poseidon {

class MessageBus {
 public:
  using Mailbox = BlockingQueue<Message>;

  explicit MessageBus(int num_nodes);

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  // Creates (or returns) the mailbox for `address`. Thread-safe.
  std::shared_ptr<Mailbox> Register(const Address& address);

  // Routes `message` to its destination mailbox. Returns NotFound if the
  // destination was never registered. Applies the sender's rate limit, if
  // any, based on the message's wire size.
  Status Send(Message message);

  // Attaches a wall-clock egress limit (bytes/s) to `node`; 0 removes it.
  void SetEgressLimit(int node, double bytes_per_sec);

  // Cumulative egress bytes per node (approximate wire sizes).
  std::vector<int64_t> TxBytes() const;
  int64_t TxBytes(int node) const;
  void ResetTraffic();

  // Closes every mailbox (wakes all blocked receivers).
  void CloseAll();

  int num_nodes() const { return static_cast<int>(tx_bytes_.size()); }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<Address, std::shared_ptr<Mailbox>, AddressHash> mailboxes_;
  std::vector<std::unique_ptr<RateLimiter>> limiters_;  // per node, may be null
  std::vector<std::atomic<int64_t>> tx_bytes_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_BUS_H_

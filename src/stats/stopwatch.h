/// \file
/// Shared wall-clock timing for the bench harnesses and runtime stall
/// accounting, so no bench hand-rolls its own std::chrono arithmetic.
///
/// Stopwatch measures one interval (restartable); WallTimer accumulates
/// disjoint intervals (Resume/Pause), which is what the trainer's
/// compute-vs-comm-wait breakdown needs.
#ifndef POSEIDON_SRC_STATS_STOPWATCH_H_
#define POSEIDON_SRC_STATS_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace poseidon {

/// Steady-clock interval timer, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  /// Re-arms the start point.
  void Restart() { start_ = Now(); }

  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - start_).count();
  }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNs()) * 1e-9; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNs()) * 1e-6; }

 private:
  static std::chrono::steady_clock::time_point Now() {
    return std::chrono::steady_clock::now();
  }
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates wall time across disjoint Resume()/Pause() windows.
class WallTimer {
 public:
  void Resume() {
    if (!running_) {
      running_ = true;
      watch_.Restart();
    }
  }
  void Pause() {
    if (running_) {
      running_ = false;
      total_ns_ += watch_.ElapsedNs();
    }
  }
  void Reset() {
    running_ = false;
    total_ns_ = 0;
  }

  /// Accumulated ns (a running window counts up to now).
  int64_t TotalNs() const { return total_ns_ + (running_ ? watch_.ElapsedNs() : 0); }
  double TotalSeconds() const { return static_cast<double>(TotalNs()) * 1e-9; }

 private:
  Stopwatch watch_;
  int64_t total_ns_ = 0;
  bool running_ = false;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_STATS_STOPWATCH_H_

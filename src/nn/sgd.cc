#include "src/nn/sgd.h"

#include "src/common/logging.h"
#include "src/simd/vec.h"

namespace poseidon {

void SgdOptimizer::Step(const std::string& key, const Tensor& grad, Tensor* value) {
  CHECK(grad.SameShape(*value));
  StepSlice(key, grad.data(), value->data(), grad.size());
}

void SgdOptimizer::StepSlice(const std::string& key, const float* grad, float* value,
                             int64_t len) {
  CHECK_GT(len, 0);
  Tensor* velocity_ptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = velocity_.try_emplace(key, Tensor({len}));
    velocity_ptr = &it->second;
  }
  Tensor& velocity = *velocity_ptr;
  CHECK_EQ(velocity.size(), len) << "parameter " << key << " changed size";
  float* v = velocity.data();
  const float lr = config_.learning_rate;
  const float mu = config_.momentum;
  const float wd = config_.weight_decay;
  simd::SgdStep(v, value, grad, lr, mu, wd, len);
}

}  // namespace poseidon

#include "src/transport/bus.h"

#include <utility>

namespace poseidon {

MessageBus::MessageBus(int num_nodes)
    : limiters_(static_cast<size_t>(num_nodes)), tx_bytes_(static_cast<size_t>(num_nodes)) {
  CHECK_GT(num_nodes, 0);
  for (auto& counter : tx_bytes_) {
    counter.store(0);
  }
}

std::shared_ptr<MessageBus::Mailbox> MessageBus::Register(const Address& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = mailboxes_.try_emplace(address, nullptr);
  if (inserted) {
    it->second = std::make_shared<Mailbox>();
  }
  return it->second;
}

Status MessageBus::Send(Message message) {
  const int src = message.from.node;
  CHECK_GE(src, 0);
  CHECK_LT(src, num_nodes());
  const int64_t bytes = message.WireBytes();

  RateLimiter* limiter = nullptr;
  std::shared_ptr<Mailbox> mailbox;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = mailboxes_.find(message.to);
    if (it == mailboxes_.end()) {
      return NotFoundError("no mailbox at node " + std::to_string(message.to.node) +
                           " port " + std::to_string(message.to.port));
    }
    mailbox = it->second;
    limiter = limiters_[static_cast<size_t>(src)].get();
  }
  if (limiter != nullptr && message.from.node != message.to.node) {
    limiter->Acquire(bytes);  // local traffic bypasses the NIC
  }
  if (message.from.node != message.to.node) {
    tx_bytes_[static_cast<size_t>(src)].fetch_add(bytes, std::memory_order_relaxed);
  }
  if (!mailbox->Push(std::move(message))) {
    return UnavailableError("mailbox closed");
  }
  return Status::Ok();
}

void MessageBus::SetEgressLimit(int node, double bytes_per_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  if (bytes_per_sec <= 0.0) {
    limiters_[static_cast<size_t>(node)].reset();
  } else {
    limiters_[static_cast<size_t>(node)] = std::make_unique<RateLimiter>(bytes_per_sec);
  }
}

std::vector<int64_t> MessageBus::TxBytes() const {
  std::vector<int64_t> out(tx_bytes_.size());
  for (size_t i = 0; i < tx_bytes_.size(); ++i) {
    out[i] = tx_bytes_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t MessageBus::TxBytes(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return tx_bytes_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
}

void MessageBus::ResetTraffic() {
  for (auto& counter : tx_bytes_) {
    counter.store(0, std::memory_order_relaxed);
  }
}

void MessageBus::CloseAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [address, mailbox] : mailboxes_) {
    mailbox->Close();
  }
}

}  // namespace poseidon

// The HybComm communication cost model (paper Table 1 and Algorithm 1).
//
// Costs are in *floats transferred per node per iteration* for synchronizing
// one M x N fully-connected layer across P1 workers and P2 servers with
// per-worker batch size K, exactly as the paper tabulates them. The selection
// rule BestScheme picks SFB for an FC layer iff its peer-broadcast cost is no
// larger than the colocated PS cost; everything else goes through the PS.
#ifndef POSEIDON_SRC_MODELS_COMM_COST_H_
#define POSEIDON_SRC_MODELS_COMM_COST_H_

#include <cstdint>

#include "src/models/model_spec.h"

namespace poseidon {

enum class CommScheme {
  kPS,   // sharded parameter server (full matrices)
  kSFB,  // peer-to-peer sufficient factor broadcasting
};

const char* CommSchemeName(CommScheme scheme);

struct CommCostQuery {
  int64_t m = 0;        // FC output dimension
  int64_t n = 0;        // FC input dimension
  int64_t batch_k = 0;  // per-worker batch size
  int num_workers = 0;  // P1
  int num_servers = 0;  // P2
};

// Table 1, row "PS": floats a pure worker sends+receives (2MN).
double PsWorkerFloats(const CommCostQuery& q);
// Table 1, row "PS": floats a pure server sends+receives (2*P1*M*N/P2).
double PsServerFloats(const CommCostQuery& q);
// Table 1, row "PS": a colocated server+worker node, 2MN(P1+P2-2)/P2.
double PsColocatedFloats(const CommCostQuery& q);
// Table 1, row "SFB": 2K(P1-1)(M+N) per worker.
double SfbWorkerFloats(const CommCostQuery& q);
// Table 1, row "Adam (max)": the server holding the layer,
// P1*M*N + P1*K*(M+N).
double AdamServerMaxFloats(const CommCostQuery& q);
// Table 1, row "Adam (max)": a pure worker, K(M+N) + MN.
double AdamWorkerFloats(const CommCostQuery& q);
// Table 1, row "Adam (max)": colocated, (P1-1)(MN + KM + KN).
double AdamColocatedMaxFloats(const CommCostQuery& q);

// Algorithm 1: the scheme Poseidon's coordinator selects for `layer`.
CommScheme BestScheme(const LayerSpec& layer, int64_t batch_k, int num_workers, int num_servers);

// Convenience: would SFB win for an M x N FC layer under this query?
bool SfbWins(const CommCostQuery& q);

}  // namespace poseidon

#endif  // POSEIDON_SRC_MODELS_COMM_COST_H_

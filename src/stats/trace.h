/// \file
/// Low-overhead span tracer: per-thread ring buffers of begin/end/instant
/// events with steady-clock-ns timestamps, exported as Chrome/Perfetto trace
/// JSON (chrome://tracing or https://ui.perfetto.dev load the file as-is).
///
/// The tracer is compiled in but off by default. Every instrumentation point
/// first does one relaxed atomic load of the global enable flag and returns
/// immediately when tracing is off — the measured disabled cost is a few
/// nanoseconds per span (bench_micro_benchmarks asserts the <2% hot-path
/// budget; see docs/OBSERVABILITY.md).
///
/// When enabled, recording an event is: one steady_clock read, one bump of a
/// thread-local ring cursor, one struct store. No locks and no allocation on
/// the hot path; the per-thread ring is registered with the global collector
/// once per thread (slow path, mutex). A full ring drops the new event and
/// increments the global drop counter — recording never blocks and never
/// perturbs the traced system beyond the clock read.
///
/// Event names and categories must be string literals (or otherwise outlive
/// the tracer): the ring stores the pointers, not copies.
#ifndef POSEIDON_SRC_STATS_TRACE_H_
#define POSEIDON_SRC_STATS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace poseidon {

/// One recorded trace event. `phase` follows the Chrome trace format:
/// 'B' begin, 'E' end, 'i' instant, 'X' complete (explicit duration).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'i';
  int64_t ts_ns = 0;   ///< steady-clock ns since Tracer::Enable
  int64_t dur_ns = 0;  ///< 'X' events only
  int32_t tid = 0;     ///< small dense thread id, assigned at registration
  int64_t arg = kNoArg;  ///< optional numeric payload (layer, iter, bytes)

  static constexpr int64_t kNoArg = INT64_MIN;
};

/// Global tracer control and event sinks. All methods are static: there is
/// one tracer per process, mirroring the Chrome trace model.
class Tracer {
 public:
  /// Turns tracing on. Threads allocate a ring of `ring_capacity` events on
  /// their first recorded event. Idempotent while enabled (capacity of
  /// already-allocated rings is unchanged).
  static void Enable(int64_t ring_capacity = kDefaultRingCapacity);
  /// Turns tracing off; recorded events are retained for export.
  static void Disable();
  static bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

  /// Discards all recorded events and zeroes the drop counter.
  static void Reset();

  /// Events dropped because a thread's ring was full.
  static int64_t dropped();
  /// Events currently buffered across all threads.
  static int64_t recorded();

  /// Records an instant event (a point in time on the calling thread).
  static void Instant(const char* name, const char* category = kDefaultCategory,
                      int64_t arg = TraceEvent::kNoArg);
  /// Records a begin/end pair edge; prefer TraceSpan for matched pairs.
  static void Begin(const char* name, const char* category = kDefaultCategory,
                    int64_t arg = TraceEvent::kNoArg);
  static void End(const char* name, const char* category = kDefaultCategory);
  /// Records a complete ('X') event with explicit start and duration, for
  /// durations measured outside a single call stack (e.g. an SSP stall that
  /// starts when a reply is gated and ends when it is released).
  static void Complete(const char* name, const char* category, int64_t start_ns,
                       int64_t dur_ns, int64_t arg = TraceEvent::kNoArg);

  /// Nanoseconds on the trace clock (steady clock, zeroed at Enable); usable
  /// as `start_ns` for Complete(). Returns 0 when tracing is disabled.
  static int64_t NowNs();

  /// Serializes every buffered event as Chrome trace JSON
  /// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
  static std::string ExportChromeJson();
  static Status WriteChromeJson(const std::string& path);

  static constexpr int64_t kDefaultRingCapacity = 1 << 16;
  static constexpr const char* kDefaultCategory = "poseidon";

 private:
  static std::atomic<bool>& enabled_flag();
};

/// RAII begin/end span on the calling thread. Construction and destruction
/// are no-ops (one relaxed load) while tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = Tracer::kDefaultCategory,
                     int64_t arg = TraceEvent::kNoArg)
      : name_(name), category_(category) {
    if (Tracer::enabled()) {
      active_ = true;
      Tracer::Begin(name_, category_, arg);
    }
  }
  ~TraceSpan() {
    if (active_) {
      Tracer::End(name_, category_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_ = false;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_STATS_TRACE_H_

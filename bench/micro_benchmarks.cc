// Micro-benchmarks (google-benchmark) for the building blocks: GEMM, the
// communication codecs, the event queue / network fabric, and the in-process
// transport. These are the knobs that determine how fast the convergence
// experiments and protocol simulations run.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/tensor/onebit.h"
#include "src/tensor/ops.h"
#include "src/tensor/sufficient_factor.h"
#include "src/transport/bus.h"

namespace poseidon {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_OneBitEncode(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor grad = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  for (auto _ : state) {
    OneBitEncoded encoded = quantizer.Encode(grad);
    benchmark::DoNotOptimize(encoded.bits.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n * 4);
}
BENCHMARK(BM_OneBitEncode)->Arg(128)->Arg(512);

void BM_OneBitDecode(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Tensor grad = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  const OneBitEncoded encoded = quantizer.Encode(grad);
  for (auto _ : state) {
    Tensor decoded = OneBitQuantizer::Decode(encoded);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n * 4);
}
BENCHMARK(BM_OneBitDecode)->Arg(128)->Arg(512);

void BM_SfReconstruct(benchmark::State& state) {
  const int64_t k = state.range(0);
  Rng rng(4);
  Tensor errors = Tensor::RandomUniform({k, 256}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({k, 512}, -1.0f, 1.0f, rng);
  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);
  Tensor out({256, 512});
  for (auto _ : state) {
    ReconstructGradient(factors, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 512 * k);
}
BENCHMARK(BM_SfReconstruct)->Arg(8)->Arg(32);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(static_cast<double>((i * 7919) % 1000), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_FabricAllToAll(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    FabricConfig config;
    config.egress_bytes_per_sec = 5e9;
    config.ingress_bytes_per_sec = 5e9;
    NetworkFabric fabric(&sim, nodes, config);
    int delivered = 0;
    for (int s = 0; s < nodes; ++s) {
      for (int d = 0; d < nodes; ++d) {
        fabric.Send(s, d, 8 * 1024 * 1024, [&delivered] { ++delivered; });
      }
    }
    sim.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * nodes * nodes);
}
BENCHMARK(BM_FabricAllToAll)->Arg(8)->Arg(32);

void BM_BusRoundTrip(benchmark::State& state) {
  MessageBus bus(2);
  auto server = bus.Register(Address{1, kServerPort});
  auto client = bus.Register(Address{0, kSyncerPortBase});
  for (auto _ : state) {
    Message m;
    m.type = MessageType::kGradPush;
    m.from = Address{0, kSyncerPortBase};
    m.to = Address{1, kServerPort};
    m.chunks = std::make_shared<std::vector<ChunkPayload>>(1);
    (*m.chunks)[0].data.assign(1024, 1.0f);
    benchmark::DoNotOptimize(bus.Send(std::move(m)));
    auto received = server->Pop();
    Message reply;
    reply.type = MessageType::kParamReply;
    reply.from = Address{1, kServerPort};
    reply.to = Address{0, kSyncerPortBase};
    reply.chunks = received->chunks;
    benchmark::DoNotOptimize(bus.Send(std::move(reply)));
    benchmark::DoNotOptimize(client->Pop());
  }
  state.SetBytesProcessed(state.iterations() * 1024 * 4 * 2);
}
BENCHMARK(BM_BusRoundTrip);

}  // namespace
}  // namespace poseidon

BENCHMARK_MAIN();

// The scalar reference backend. This translation unit defines the semantics
// every vector backend must reproduce bit-for-bit; CMake compiles it with
// -fno-tree-vectorize -ffp-contract=off so it stays an honest scalar
// baseline (no autovectorization inflating the roofline denominator, no
// fused multiply-adds changing rounding on FMA-capable ISAs).
#include "src/simd/bitpack.h"
#include "src/simd/vec.h"

namespace poseidon {
namespace simd {
namespace {

void ScalarReduceAdd(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] += src[i];
  }
}

void ScalarScale(float* dst, float alpha, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] *= alpha;
  }
}

void ScalarAxpy(float* y, float alpha, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void ScalarSgdStep(float* v, float* value, const float* grad, float lr, float mu,
                   float wd, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    v[i] = (mu * v[i] + grad[i]) + wd * value[i];
    value[i] -= lr * v[i];
  }
}

void ScalarOneBitEncodeStats(const float* grad, const float* residual, int64_t rows,
                             int64_t cols, uint32_t* bits, double* pos_sum,
                             double* neg_sum, int32_t* pos_count,
                             int32_t* neg_count) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = q >= 0.0f;
      if (positive) {
        bits[flat >> 5] |= 1u << (flat & 31);
      }
      // Blended accumulation — the vector backends mask lanes to +0.0, and
      // adding +0.0 to these sums is bit-exact (they can never be -0.0), so
      // this matches both the lanes and the historical branchy loop.
      pos_sum[c] += positive ? static_cast<double>(q) : 0.0;
      neg_sum[c] += positive ? 0.0 : static_cast<double>(q);
      pos_count[c] += positive ? 1 : 0;
      neg_count[c] += positive ? 0 : 1;
    }
  }
}

void ScalarOneBitResidualUpdate(const float* grad, int64_t rows, int64_t cols,
                                const uint32_t* bits, const float* pos_level,
                                const float* neg_level, float* residual) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      residual[flat] = q - (positive ? pos_level[c] : neg_level[c]);
    }
  }
}

void ScalarOneBitDecode(const uint32_t* bits, const float* pos_level,
                        const float* neg_level, int64_t rows, int64_t cols,
                        float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = base + c;
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      out[flat] = positive ? pos_level[c] : neg_level[c];
    }
  }
}

const Kernels kScalarKernels = {
    Level::kScalar,          ScalarReduceAdd,
    ScalarScale,             ScalarAxpy,
    ScalarSgdStep,           ScalarOneBitEncodeStats,
    ScalarOneBitResidualUpdate, ScalarOneBitDecode,
};

}  // namespace

const Kernels* ScalarKernels() { return &kScalarKernels; }

}  // namespace simd
}  // namespace poseidon

/// \file
/// The immutable output of the CommPlanner: per-layer communication
/// assignments plus the global knobs (shard count, staleness bound, egress
/// batching, top-k density) and the predicted cost breakdown they were chosen
/// under. A CommPlan is a pure value — once built it never changes, so it can
/// be shared by pointer between the trainer, the protocol simulator and the
/// bench harnesses, memoized in the PlanCache, and round-tripped through JSON
/// for `--plan=fixed:<path>` runs and the committed golden fixture.
///
/// See docs/PLANNER.md for the search space and the determinism contract.
#ifndef POSEIDON_SRC_PLANNER_COMM_PLAN_H_
#define POSEIDON_SRC_PLANNER_COMM_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/models/comm_cost.h"

namespace poseidon {

/// The planner's scheme vocabulary: CommScheme plus the no-op for stateless
/// layers and the legacy 1-bit PS path (reachable only by pinning the 1-bit
/// policy — the planner never volunteers it, the quantized codecs superseded
/// it).
enum class PlannedScheme {
  kNone,    // stateless layer, nothing to synchronize
  kPS,      // sharded parameter server (optionally compressed)
  kSFB,     // sufficient factor broadcasting
  kRing,    // ring allreduce
  kTree,    // binary-tree reduce + broadcast
  kOneBit,  // 1-bit quantized push to a single owner shard
};

const char* PlannedSchemeName(PlannedScheme scheme);

/// One layer's assignment: what moves on the wire and what the cost model
/// predicted it costs (per-worker payload bytes per iteration).
struct PlanLayerChoice {
  std::string layer;
  PlannedScheme scheme = PlannedScheme::kNone;
  GradCompression compression = GradCompression::kNone;
  double predicted_bytes = 0.0;
};

/// An immutable communication plan. `hash` is an FNV-1a digest over every
/// decision field (signature, globals, per-layer assignments, predicted
/// totals), so two plans are interchangeable iff their hashes match;
/// `signature` is the canonical request signature the PlanCache keyed on,
/// kept for debugging and for the JSON dump.
struct CommPlan {
  std::string model;
  std::string signature;

  // Global knobs.
  int ps_shards = 1;
  int staleness = 0;
  bool batch_egress = false;
  double topk_density = 0.01;

  // Per-layer assignments, in the model's layer order.
  std::vector<PlanLayerChoice> layers;

  // Predicted cost breakdown for the busiest worker, per iteration.
  double predicted_wire_bytes = 0.0;    // payload, summed over layers
  double predicted_framing_bytes = 0.0; // per-message framing after batching
  double predicted_msgs = 0.0;          // wire messages after batching
  double predicted_time_s = 0.0;        // 0 when planned on the byte basis
  double planned_gbps = 0.0;            // bandwidth the plan was costed at

  uint64_t hash = 0;

  /// FNV-1a over every field above except `hash` itself.
  uint64_t ComputeHash() const;

  /// Canonical JSON dump (stable field order, %.17g doubles — regenerating an
  /// identical plan reproduces the file byte for byte).
  std::string ToJson() const;
  static StatusOr<CommPlan> FromJson(const std::string& json);

  Status SaveToFile(const std::string& path) const;
  static StatusOr<CommPlan> LoadFromFile(const std::string& path);

  /// Human-readable per-layer table for bench output.
  std::string Summary() const;

  /// The assignment for `layer_name`, or nullptr.
  const PlanLayerChoice* Find(const std::string& layer_name) const;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_PLANNER_COMM_PLAN_H_

#include "src/nn/builders.h"

#include <vector>

#include "src/common/logging.h"
#include "src/nn/layers.h"

namespace poseidon {

std::unique_ptr<Network> BuildCifarQuick(int channels, int image_hw, int classes, Rng& rng) {
  CHECK_EQ(image_hw % 8, 0) << "three 2x2 pools require hw divisible by 8";
  auto net = std::make_unique<Network>();
  net->Add(std::make_unique<Conv2dLayer>("conv1", channels, 32, 5, 1, 2, rng));
  net->Add(std::make_unique<MaxPool2Layer>("pool1"));
  net->Add(std::make_unique<ReluLayer>("relu1"));
  net->Add(std::make_unique<Conv2dLayer>("conv2", 32, 32, 5, 1, 2, rng));
  net->Add(std::make_unique<ReluLayer>("relu2"));
  net->Add(std::make_unique<MaxPool2Layer>("pool2"));
  net->Add(std::make_unique<Conv2dLayer>("conv3", 32, 64, 5, 1, 2, rng));
  net->Add(std::make_unique<ReluLayer>("relu3"));
  net->Add(std::make_unique<MaxPool2Layer>("pool3"));
  const int64_t flat = 64LL * (image_hw / 8) * (image_hw / 8);
  net->Add(std::make_unique<FullyConnectedLayer>("ip1", 64, flat, rng));
  net->Add(std::make_unique<FullyConnectedLayer>("ip2", classes, 64, rng));
  return net;
}

std::unique_ptr<Network> BuildSmallResNet(int channels, int image_hw, int classes, int width,
                                          int blocks, Rng& rng) {
  CHECK_EQ(image_hw % 2, 0);
  auto net = std::make_unique<Network>();
  net->Add(std::make_unique<Conv2dLayer>("conv_in", channels, width, 3, 1, 1, rng));
  net->Add(std::make_unique<ReluLayer>("relu_in"));
  for (int b = 0; b < blocks; ++b) {
    const std::string name = "res" + std::to_string(b + 1);
    std::vector<std::unique_ptr<Layer>> inner;
    inner.push_back(std::make_unique<Conv2dLayer>(name + "_a", width, width, 3, 1, 1, rng));
    inner.push_back(std::make_unique<ReluLayer>(name + "_relu"));
    inner.push_back(std::make_unique<Conv2dLayer>(name + "_b", width, width, 3, 1, 1, rng));
    net->Add(std::make_unique<ResidualBlock>(name, std::move(inner)));
  }
  net->Add(std::make_unique<MaxPool2Layer>("pool"));
  const int64_t flat = static_cast<int64_t>(width) * (image_hw / 2) * (image_hw / 2);
  net->Add(std::make_unique<FullyConnectedLayer>("fc", classes, flat, rng));
  return net;
}

std::unique_ptr<Network> BuildMlp(int input_dim, int hidden_dim, int hidden_layers,
                                  int classes, Rng& rng) {
  CHECK_GE(hidden_layers, 1);
  auto net = std::make_unique<Network>();
  int64_t in = input_dim;
  for (int l = 0; l < hidden_layers; ++l) {
    const std::string name = "fc" + std::to_string(l + 1);
    net->Add(std::make_unique<FullyConnectedLayer>(name, hidden_dim, in, rng));
    net->Add(std::make_unique<ReluLayer>("relu" + std::to_string(l + 1)));
    in = hidden_dim;
  }
  net->Add(std::make_unique<FullyConnectedLayer>("fc_out", classes, in, rng));
  return net;
}

}  // namespace poseidon

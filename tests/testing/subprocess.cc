#include "tests/testing/subprocess.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/poseidon/checkpoint.h"
#include "src/poseidon/workloads.h"
#include "src/transport/cluster_launcher.h"

namespace poseidon {
namespace testing {

std::string MakeTempDir(const std::string& tag) {
  const char* base = std::getenv("TEST_TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/poseidon_" +
                     tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  CHECK(::mkdtemp(buf.data()) != nullptr) << "mkdtemp " << tmpl;
  return std::string(buf.data());
}

LaunchRun RunPoseidonLaunch(const std::string& out_dir,
                            const std::vector<std::string>& args,
                            int timeout_ms) {
  const char* binary = std::getenv("POSEIDON_LAUNCH_BIN");
  CHECK(binary != nullptr && binary[0] != '\0')
      << "POSEIDON_LAUNCH_BIN not set; run through ctest (CMake exports the "
         "poseidon_launch target path)";
  const std::string launcher_log = out_dir + "/launcher.stderr";
  StatusOr<ChildProcess> child = SpawnChild(binary, args, launcher_log);
  CHECK(child.ok()) << child.status().ToString();

  LaunchRun run;
  StatusOr<int> exit_code = WaitChild(*child, timeout_ms);
  if (!exit_code.ok()) {
    KillChild(*child);
    run.exit_code = -1;
    run.log = "launcher wedged: " + exit_code.status().ToString() + "\n";
  } else {
    run.exit_code = *exit_code;
  }
  run.log += "---- launcher ----\n" + ReadFileTail(launcher_log);
  // Child logs, if the launcher got far enough to create them.
  for (int p = 1; p < 64; ++p) {
    const std::string path = out_dir + "/process_" + std::to_string(p) + ".stderr";
    const std::string tail = ReadFileTail(path);
    if (tail.empty() && p > 8) break;
    if (!tail.empty()) {
      run.log += "\n---- process " + std::to_string(p) + " ----\n" + tail;
    }
  }
  return run;
}

std::vector<std::pair<double, double>> ReadWorkerLosses(const std::string& path) {
  std::vector<std::pair<double, double>> out;
  FILE* f = std::fopen(path.c_str(), "r");
  CHECK(f != nullptr) << "missing loss log " << path;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // `iter loss acc`, doubles in %a hexfloat (strtod round-trips exactly).
    char* at = line;
    (void)std::strtoll(at, &at, 10);
    const double loss = std::strtod(at, &at);
    const double acc = std::strtod(at, &at);
    out.emplace_back(loss, acc);
  }
  std::fclose(f);
  return out;
}

std::vector<double> MeanLossesFromRun(const std::string& dir, int workers,
                                      int iterations) {
  std::vector<double> mean(static_cast<size_t>(iterations), 0.0);
  for (int w = 0; w < workers; ++w) {
    const auto losses =
        ReadWorkerLosses(dir + "/worker_" + std::to_string(w) + "_losses.txt");
    CHECK_EQ(static_cast<int>(losses.size()), iterations)
        << "worker " << w << " trained a different window";
    for (int i = 0; i < iterations; ++i) {
      // Same accumulation order as PoseidonTrainer::Train: workers ascending,
      // then one divide — keeps the mean bitwise comparable.
      mean[static_cast<size_t>(i)] += losses[static_cast<size_t>(i)].first;
    }
  }
  for (double& m : mean) {
    m /= workers;
  }
  return mean;
}

std::vector<float> FinalParamsFromRun(const std::string& dir, int worker,
                                      int hidden_layers) {
  std::unique_ptr<Network> net = workloads::TinyMlpFactory(hidden_layers)();
  const std::string path = dir + "/worker_" + std::to_string(worker) + ".ckpt";
  StatusOr<int64_t> cursor = LoadCheckpoint(path, net.get());
  CHECK(cursor.ok()) << path << ": " << cursor.status().ToString();
  return AllParams(*net);
}

}  // namespace testing
}  // namespace poseidon

#include "src/transport/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <climits>
#include <cstddef>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/transport/bus.h"

namespace poseidon {
namespace {

Status ErrnoStatus(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  CHECK_GE(flags, 0) << "fcntl(F_GETFL) failed";
  CHECK_GE(fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0) << "fcntl(F_SETFL) failed";
}

void SetNoDelay(int fd) {
  // Latency over Nagle: the egress flusher already coalesces records into
  // one writev, so there is nothing left for the kernel to batch.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Builds the sockaddr for an endpoint; returns the family used.
int FillSockaddr(const SocketEndpoint& ep, sockaddr_storage* storage,
                 socklen_t* len) {
  std::memset(storage, 0, sizeof(*storage));
  if (ep.is_unix()) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    CHECK_LT(ep.unix_path.size(), sizeof(sun->sun_path))
        << "unix socket path too long: " << ep.unix_path;
    std::strncpy(sun->sun_path, ep.unix_path.c_str(), sizeof(sun->sun_path) - 1);
    *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  ep.unix_path.size() + 1);
    return AF_UNIX;
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<uint16_t>(ep.port));
  CHECK_EQ(inet_pton(AF_INET, ep.host.c_str(), &sin->sin_addr), 1)
      << "bad host address: " << ep.host;
  *len = sizeof(sockaddr_in);
  return AF_INET;
}

// Blocking write of the full iovec array (the flusher thread owns the fd and
// may block; everything else runs on other threads). Returns false on a
// connection error.
bool WriteAll(int fd, std::vector<iovec> iov) {
  size_t at = 0;
  while (at < iov.size()) {
    const ssize_t n = writev(fd, iov.data() + at,
                             static_cast<int>(std::min<size_t>(iov.size() - at, IOV_MAX)));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    size_t remaining = static_cast<size_t>(n);
    while (at < iov.size() && remaining >= iov[at].iov_len) {
      remaining -= iov[at].iov_len;
      ++at;
    }
    if (at < iov.size() && remaining > 0) {
      iov[at].iov_base = static_cast<uint8_t*>(iov[at].iov_base) + remaining;
      iov[at].iov_len -= remaining;
    }
  }
  return true;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)) {
  CHECK_GE(options_.self, 0);
  CHECK_LT(options_.self, static_cast<int>(options_.processes.size()));
  for (const int owner : options_.node_owner) {
    CHECK_GE(owner, 0);
    CHECK_LT(owner, static_cast<int>(options_.processes.size()));
  }
  peers_.resize(options_.processes.size());
  for (size_t p = 0; p < peers_.size(); ++p) {
    peers_[p] = std::make_unique<Peer>();
  }
  if (options_.shim.any()) {
    shim_ = std::make_unique<FaultInjector>(options_.shim);
  }
}

SocketTransport::~SocketTransport() { Stop(); }

void SocketTransport::SetControlHandler(SocketControlHandler handler) {
  CHECK(!started_.load()) << "control handler must be set before Start";
  control_handler_ = std::move(handler);
}

const char* SocketTransport::name() const {
  return options_.processes[static_cast<size_t>(options_.self)].is_unix()
             ? "unix"
             : "tcp";
}

bool SocketTransport::IsLocal(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, static_cast<int>(options_.node_owner.size()));
  return options_.node_owner[static_cast<size_t>(node)] == options_.self;
}

Status SocketTransport::Start(MessageBus* bus) {
  CHECK(!started_.load()) << "Start called twice";
  bus_ = bus;
  const SocketEndpoint& self_ep =
      options_.processes[static_cast<size_t>(options_.self)];
  if (self_ep.is_unix()) {
    unlink(self_ep.unix_path.c_str());  // stale path from a crashed run
  }
  sockaddr_storage addr;
  socklen_t addr_len = 0;
  const int family = FillSockaddr(self_ep, &addr, &addr_len);
  listen_fd_ = socket(family, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return ErrnoStatus("socket(listen)");
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), addr_len) < 0) {
    return ErrnoStatus("bind " + (self_ep.is_unix() ? self_ep.unix_path
                                                    : self_ep.host + ":" +
                                                          std::to_string(self_ep.port)));
  }
  if (listen(listen_fd_, SOMAXCONN) < 0) {
    return ErrnoStatus("listen");
  }
  if (family == AF_INET) {
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    CHECK_EQ(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                         &bound_len), 0);
    listen_port_ = ntohs(bound.sin_port);
  }
  SetNonBlocking(listen_fd_);
  CHECK_EQ(pipe(wake_pipe_), 0) << "pipe failed";
  SetNonBlocking(wake_pipe_[0]);
  started_.store(true);
  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

Status SocketTransport::DialPeer(int peer_index) {
  const SocketEndpoint& ep = options_.processes[static_cast<size_t>(peer_index)];
  sockaddr_storage addr;
  socklen_t addr_len = 0;
  const int family = FillSockaddr(ep, &addr, &addr_len);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.connect_timeout_ms);
  while (true) {
    const int fd = socket(family, SOCK_STREAM, 0);
    if (fd < 0) {
      return ErrnoStatus("socket(connect)");
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) == 0) {
      if (family == AF_INET) {
        SetNoDelay(fd);
      }
      peers_[static_cast<size_t>(peer_index)]->fd = fd;
      return Status::Ok();
    }
    const int err = errno;
    close(fd);
    // Peers bind in arbitrary order: refusal / missing unix path just means
    // "not up yet" until the deadline says otherwise.
    const bool retryable = err == ECONNREFUSED || err == ENOENT ||
                           err == ECONNRESET || err == EAGAIN;
    if (!retryable || std::chrono::steady_clock::now() >= deadline) {
      errno = err;
      return ErrnoStatus("connect to process " + std::to_string(peer_index));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status SocketTransport::ConnectAll() {
  CHECK(started_.load()) << "ConnectAll requires Start";
  for (int p = 0; p < num_processes(); ++p) {
    if (p == options_.self) {
      continue;
    }
    Status status = DialPeer(p);
    if (!status.ok()) {
      return status;
    }
    Peer& peer = *peers_[static_cast<size_t>(p)];
    peer.flusher = std::thread([this, p] { FlusherLoop(p); });
  }
  return Status::Ok();
}

std::vector<uint8_t> SocketTransport::BuildRecord(
    SocketRecordKind kind, const std::vector<uint8_t>& body) const {
  std::vector<uint8_t> record(kSocketRecordHeaderBytes + body.size());
  const uint32_t len = static_cast<uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    record[static_cast<size_t>(i)] = static_cast<uint8_t>((len >> (8 * i)) & 0xFF);
  }
  record[4] = kSocketRecordVersion;
  record[5] = static_cast<uint8_t>(kind);
  record[6] = static_cast<uint8_t>(options_.self & 0xFF);
  record[7] = static_cast<uint8_t>((options_.self >> 8) & 0xFF);
  if (!body.empty()) {
    std::memcpy(record.data() + kSocketRecordHeaderBytes, body.data(), body.size());
  }
  return record;
}

Status SocketTransport::SendFrame(int src_node, int dst_node,
                                  std::vector<uint8_t> frame) {
  CHECK(IsLocal(src_node)) << "frame source node " << src_node
                           << " is not hosted by process " << options_.self;
  const int dst_process = options_.node_owner[static_cast<size_t>(dst_node)];
  CHECK_NE(dst_process, options_.self)
      << "SendFrame for a local destination node " << dst_node;
  Peer& peer = *peers_[static_cast<size_t>(dst_process)];
  std::vector<uint8_t> record = BuildRecord(SocketRecordKind::kData, frame);
  {
    std::lock_guard<std::mutex> lock(peer.mutex);
    if (peer.stop || peer.dead) {
      return UnavailableError("connection to process " +
                              std::to_string(dst_process) + " is down");
    }
    const int64_t record_seq = peer.next_record_seq++;
    EnqueueData(peer, dst_process, std::move(record), record_seq, /*attempt=*/0);
  }
  peer.cv.notify_all();
  return Status::Ok();
}

void SocketTransport::EnqueueData(Peer& peer, int dst_process,
                                  std::vector<uint8_t> record,
                                  int64_t record_seq, int attempt) {
  // Caller holds peer.mutex.
  if (shim_ != nullptr) {
    // Roll the same seeded dice as the in-process fabric, keyed by the
    // record's identity on this process-pair "link".
    Message key;
    key.from = Address{options_.self, 0};
    key.to = Address{dst_process, 0};
    key.seq = record_seq;
    const FaultDecision decision = shim_->Decide(key, attempt);
    const auto now = std::chrono::steady_clock::now();
    FaultCounters& counters = shim_->counters();
    if (decision.drop) {
      // Lost on the wire: schedule the link-layer retransmission. The bytes
      // genuinely never reach the socket this attempt.
      counters.AddDrop();
      ShimItem retx;
      retx.due = now + std::chrono::microseconds(
                           shim_->plan().retransmit_timeout_us);
      retx.order = peer.shim_order++;
      retx.record = std::move(record);
      retx.record_seq = record_seq;
      retx.attempt = attempt + 1;
      retx.commit_only = false;
      peer.shim_queue.push(std::move(retx));
      return;
    }
    if (decision.duplicate) {
      counters.AddDuplicate();
      ShimItem copy;
      copy.due = now + std::chrono::microseconds(shim_->plan().duplicate_lag_us);
      copy.order = peer.shim_order++;
      copy.record = record;  // second identical copy of the same bytes
      copy.record_seq = record_seq;
      copy.attempt = attempt;
      copy.commit_only = true;
      peer.shim_queue.push(std::move(copy));
    }
    if (decision.delay_us > 0) {
      // Held back while later records go straight to the queue: genuine
      // on-the-wire reordering, not a simulation of one.
      counters.AddDelay();
      ShimItem delayed;
      delayed.due = now + std::chrono::microseconds(decision.delay_us);
      delayed.order = peer.shim_order++;
      delayed.record = std::move(record);
      delayed.record_seq = record_seq;
      delayed.attempt = attempt;
      delayed.commit_only = true;
      peer.shim_queue.push(std::move(delayed));
      return;
    }
  }
  peer.queue.push_back(std::move(record));
}

Status SocketTransport::SendControl(int dst_process, uint16_t opcode,
                                    std::vector<uint8_t> body) {
  std::vector<uint8_t> payload(2 + body.size());
  payload[0] = static_cast<uint8_t>(opcode & 0xFF);
  payload[1] = static_cast<uint8_t>((opcode >> 8) & 0xFF);
  if (!body.empty()) {
    std::memcpy(payload.data() + 2, body.data(), body.size());
  }
  if (dst_process == options_.self) {
    // Self-delivery stays in process (the launcher's proc-0 controller
    // counts itself in barriers).
    if (control_handler_) {
      control_handler_(options_.self, opcode,
                       std::vector<uint8_t>(body.begin(), body.end()));
    }
    return Status::Ok();
  }
  Peer& peer = *peers_[static_cast<size_t>(dst_process)];
  std::vector<uint8_t> record = BuildRecord(SocketRecordKind::kControl, payload);
  {
    std::lock_guard<std::mutex> lock(peer.mutex);
    if (peer.stop || peer.dead) {
      return UnavailableError("connection to process " +
                              std::to_string(dst_process) + " is down");
    }
    peer.queue.push_back(std::move(record));  // control bypasses the shim
  }
  peer.cv.notify_all();
  return Status::Ok();
}

void SocketTransport::FlusherLoop(int peer_index) {
  Peer& peer = *peers_[static_cast<size_t>(peer_index)];
  std::unique_lock<std::mutex> lock(peer.mutex);
  while (true) {
    // Promote shim records that have come due (retransmits roll fresh dice;
    // delayed/duplicate copies go out as-is).
    const auto now = std::chrono::steady_clock::now();
    while (!peer.shim_queue.empty() && peer.shim_queue.top().due <= now) {
      ShimItem item = peer.shim_queue.top();
      peer.shim_queue.pop();
      if (item.commit_only) {
        peer.queue.push_back(std::move(item.record));
      } else {
        shim_->counters().AddRetransmit();
        EnqueueData(peer, peer_index, std::move(item.record), item.record_seq,
                    item.attempt);
      }
    }
    if (peer.queue.empty()) {
      if (peer.writing == 0 && peer.shim_queue.empty()) {
        peer.idle_cv.notify_all();
      }
      if (peer.stop) {
        break;
      }
      if (peer.shim_queue.empty()) {
        peer.cv.wait(lock, [&] { return peer.stop || !peer.queue.empty() ||
                                        !peer.shim_queue.empty(); });
      } else {
        // Copy the deadline out: wait_until releases the mutex, and a
        // concurrent push into shim_queue may reallocate the storage the
        // top() reference points into.
        const auto due = peer.shim_queue.top().due;
        peer.cv.wait_until(lock, due);
      }
      continue;
    }
    // Cut up to max_writev_records into one writev: many records, one
    // syscall.
    std::vector<std::vector<uint8_t>> out;
    while (!peer.queue.empty() &&
           static_cast<int>(out.size()) < options_.max_writev_records) {
      out.push_back(std::move(peer.queue.front()));
      peer.queue.pop_front();
    }
    const bool dead = peer.dead;
    ++peer.writing;
    lock.unlock();
    if (!dead) {
      std::vector<iovec> iov;
      iov.reserve(out.size());
      int64_t batch_bytes = 0;
      for (std::vector<uint8_t>& record : out) {
        iov.push_back({record.data(), record.size()});
        batch_bytes += static_cast<int64_t>(record.size());
      }
      if (WriteAll(peer.fd, std::move(iov))) {
        records_sent_.fetch_add(static_cast<int64_t>(out.size()),
                                std::memory_order_relaxed);
        bytes_sent_.fetch_add(batch_bytes, std::memory_order_relaxed);
      } else {
        LOG(Warning) << "transport: write to process " << peer_index
                     << " failed (" << std::strerror(errno) << "); egress to it is dead";
        lock.lock();
        peer.dead = true;
        lock.unlock();
      }
    }
    lock.lock();
    --peer.writing;
  }
}

void SocketTransport::PollLoop() {
  std::vector<Ingress> conns;
  while (!stopped_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Ingress& in : conns) {
      fds.push_back({in.fd, POLLIN, 0});
    }
    const int ready = poll(fds.data(), static_cast<nfds_t>(fds.size()), 500);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      LOG(Warning) << "transport: poll failed: " << std::strerror(errno);
      break;
    }
    if (stopped_.load(std::memory_order_acquire)) {
      break;
    }
    // Only the first `polled` connections have a pollfd slot this round;
    // ones accepted below wait for the next poll.
    const size_t polled = conns.size();
    if (fds[0].revents & POLLIN) {
      while (true) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          break;  // EAGAIN: accepted everything pending
        }
        SetNonBlocking(fd);
        Ingress in;
        in.fd = fd;
        conns.push_back(std::move(in));
      }
    }
    if (fds[1].revents & POLLIN) {
      uint8_t sink[64];
      while (read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
      }
    }
    // `slot` walks the polled fd list, `i` the live conns vector; they drift
    // apart exactly when a connection is erased.
    size_t i = 0;
    for (size_t slot = 0; slot < polled; ++slot) {
      const short revents = fds[2 + slot].revents;
      bool drop = false;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        while (true) {
          uint8_t chunk[65536];
          const ssize_t n = recv(conns[i].fd, chunk, sizeof(chunk), 0);
          if (n > 0) {
            bytes_received_.fetch_add(n, std::memory_order_relaxed);
            conns[i].buffer.insert(conns[i].buffer.end(), chunk, chunk + n);
            continue;
          }
          if (n == 0) {
            drop = true;  // orderly peer close
          } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            drop = true;
          }
          break;
        }
        if (!DrainIngress(conns[i])) {
          drop = true;
        }
      }
      if (drop) {
        close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
  for (Ingress& in : conns) {
    close(in.fd);
  }
}

bool SocketTransport::DrainIngress(Ingress& in) {
  size_t at = 0;
  while (in.buffer.size() - at >= kSocketRecordHeaderBytes) {
    const uint8_t* h = in.buffer.data() + at;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(h[i]) << (8 * i);
    }
    if (h[4] != kSocketRecordVersion) {
      LOG(Warning) << "transport: record with unknown version "
                   << static_cast<int>(h[4]) << "; dropping connection";
      return false;
    }
    if (static_cast<int64_t>(len) > options_.max_record_bytes) {
      LOG(Warning) << "transport: oversized record (" << len
                   << " bytes); dropping connection";
      return false;
    }
    if (in.buffer.size() - at - kSocketRecordHeaderBytes < len) {
      break;  // incomplete: wait for more bytes
    }
    const uint16_t src = static_cast<uint16_t>(h[6] | (h[7] << 8));
    HandleRecord(h[5], src, h + kSocketRecordHeaderBytes, len);
    records_received_.fetch_add(1, std::memory_order_relaxed);
    at += kSocketRecordHeaderBytes + len;
  }
  if (at > 0) {
    in.buffer.erase(in.buffer.begin(), in.buffer.begin() + static_cast<long>(at));
  }
  return true;
}

void SocketTransport::HandleRecord(uint8_t kind, uint16_t src_process,
                                   const uint8_t* body, int64_t size) {
  switch (static_cast<SocketRecordKind>(kind)) {
    case SocketRecordKind::kData: {
      const Status status = bus_->DeliverWire(body, size);
      if (!status.ok()) {
        LOG(Warning) << "transport: bad data record from process "
                     << src_process << ": " << status.ToString();
      }
      return;
    }
    case SocketRecordKind::kControl: {
      if (size < 2) {
        LOG(Warning) << "transport: truncated control record from process "
                     << src_process;
        return;
      }
      const uint16_t opcode = static_cast<uint16_t>(body[0] | (body[1] << 8));
      if (control_handler_) {
        control_handler_(static_cast<int>(src_process), opcode,
                         std::vector<uint8_t>(body + 2, body + size));
      }
      return;
    }
  }
  LOG(Warning) << "transport: record with unknown kind " << static_cast<int>(kind)
               << " from process " << src_process;
}

void SocketTransport::Flush() {
  for (int p = 0; p < num_processes(); ++p) {
    if (p == options_.self) {
      continue;
    }
    Peer& peer = *peers_[static_cast<size_t>(p)];
    std::unique_lock<std::mutex> lock(peer.mutex);
    if (!peer.flusher.joinable()) {
      continue;
    }
    peer.cv.notify_all();
    peer.idle_cv.wait(lock, [&] {
      return peer.stop || peer.dead ||
             (peer.queue.empty() && peer.shim_queue.empty() && peer.writing == 0);
    });
  }
}

void SocketTransport::Stop() {
  if (!started_.load() || stopped_.exchange(true)) {
    return;  // never started, or another caller already ran the teardown
  }
  for (auto& peer_ptr : peers_) {
    Peer& peer = *peer_ptr;
    {
      std::lock_guard<std::mutex> lock(peer.mutex);
      peer.stop = true;
    }
    peer.cv.notify_all();
    peer.idle_cv.notify_all();
  }
  for (auto& peer_ptr : peers_) {
    if (peer_ptr->flusher.joinable()) {
      peer_ptr->flusher.join();
    }
    if (peer_ptr->fd >= 0) {
      close(peer_ptr->fd);
      peer_ptr->fd = -1;
    }
  }
  WakeOnSelfPipe();
  if (poll_thread_.joinable()) {
    poll_thread_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  const SocketEndpoint& self_ep =
      options_.processes[static_cast<size_t>(options_.self)];
  if (self_ep.is_unix()) {
    unlink(self_ep.unix_path.c_str());
  }
}

void SocketTransport::WakeOnSelfPipe() {
  if (wake_pipe_[1] >= 0) {
    const uint8_t byte = 1;
    [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], &byte, 1);
  }
}

int64_t SocketTransport::records_sent() const {
  return records_sent_.load(std::memory_order_relaxed);
}
int64_t SocketTransport::records_received() const {
  return records_received_.load(std::memory_order_relaxed);
}
int64_t SocketTransport::bytes_sent() const {
  return bytes_sent_.load(std::memory_order_relaxed);
}
int64_t SocketTransport::bytes_received() const {
  return bytes_received_.load(std::memory_order_relaxed);
}

FaultCountersSnapshot SocketTransport::ShimCounters() const {
  if (shim_ == nullptr) {
    return FaultCountersSnapshot{};
  }
  return shim_->Counters();
}

}  // namespace poseidon

#include "src/transport/fault_injector.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace poseidon {
namespace {

/// Mixes the stream identity, sequence number and attempt into one RNG seed.
/// Golden-ratio multipliers keep adjacent (seq, attempt) pairs decorrelated;
/// the Rng constructor's SplitMix pass finishes the scrambling.
uint64_t DecisionSeed(uint64_t seed, const Message& m, int attempt) {
  uint64_t h = seed;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(m.from.node));
  mix(static_cast<uint64_t>(m.from.port));
  mix(static_cast<uint64_t>(m.to.node));
  mix(static_cast<uint64_t>(m.to.port));
  mix(static_cast<uint64_t>(m.seq));
  mix(static_cast<uint64_t>(attempt));
  return h;
}

}  // namespace

FaultDecision FaultInjector::Decide(const Message& message, int attempt) const {
  FaultDecision decision;
  if (!plan_.any()) {
    return decision;
  }
  Rng rng(DecisionSeed(plan_.seed, message, attempt));
  // Fixed draw order keeps decisions stable if the plan gains knobs later.
  const double drop_draw = rng.NextDouble();
  const double dup_draw = rng.NextDouble();
  const double delay_draw = rng.NextDouble();

  if (drop_draw < plan_.drop_prob && attempt + 1 < plan_.max_transmissions) {
    decision.drop = true;
    return decision;  // the retransmission rolls its own dice
  }
  if (dup_draw < plan_.duplicate_prob) {
    decision.duplicate = true;
  }
  if (delay_draw < plan_.delay_prob && plan_.delay_max_us > 0) {
    const uint64_t span =
        static_cast<uint64_t>(std::max(1, plan_.delay_max_us - plan_.delay_min_us + 1));
    decision.delay_us =
        plan_.delay_min_us + static_cast<int>(rng.NextBounded(span));
  }
  return decision;
}

void FaultInjector::Partition(int a, int b) {
  CHECK_NE(a, b) << "cannot partition a node from itself";
  std::lock_guard<std::mutex> lock(mutex_);
  partitions_.insert({std::min(a, b), std::max(a, b)});
}

void FaultInjector::HealAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  partitions_.clear();
}

bool FaultInjector::IsPartitioned(int src, int dst) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (partitions_.empty()) {
    return false;
  }
  return partitions_.count({std::min(src, dst), std::max(src, dst)}) > 0;
}

}  // namespace poseidon

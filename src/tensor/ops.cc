#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/simd/vec.h"

namespace poseidon {
namespace {

// Cache-blocked inner kernel: C[m,n] += A[m,k] * B[k,n], raw pointers,
// row-major. The i-k-j loop order streams B rows and accumulates into C rows,
// which vectorizes well without intrinsics.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  constexpr int64_t kBlock = 64;
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(i0 + kBlock, m);
    for (int64_t p0 = 0; p0 < k; p0 += kBlock) {
      const int64_t p1 = std::min(p0 + kBlock, k);
      for (int64_t i = i0; i < i1; ++i) {
        float* c_row = c + i * n;
        for (int64_t p = p0; p < p1; ++p) {
          const float a_ip = a[i * k + p];
          if (a_ip == 0.0f) {
            continue;
          }
          const float* b_row = b + p * n;
          for (int64_t j = 0; j < n; ++j) {
            c_row[j] += a_ip * b_row[j];
          }
        }
      }
    }
  }
}

}  // namespace

void Gemm(const Tensor& a, const Tensor& b, Tensor* out) {
  CHECK_EQ(a.ndim(), 2);
  CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  CHECK_EQ(out->dim(0), m);
  CHECK_EQ(out->dim(1), n);
  out->SetZero();
  GemmAccumulate(a.data(), b.data(), out->data(), m, k, n);
}

void GemmTransA(const Tensor& a, const Tensor& b, Tensor* out) {
  CHECK_EQ(a.ndim(), 2);
  CHECK_EQ(b.ndim(), 2);
  const int64_t k = a.dim(0);
  const int64_t m = a.dim(1);
  CHECK_EQ(b.dim(0), k);
  const int64_t n = b.dim(1);
  CHECK_EQ(out->dim(0), m);
  CHECK_EQ(out->dim(1), n);
  out->SetZero();
  // out[i,j] = sum_p a[p,i] * b[p,j]: rank-1 accumulation per p keeps the
  // inner loop contiguous on both operands.
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = ad + p * m;
    const float* b_row = bd + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_pi = a_row[i];
      if (a_pi == 0.0f) {
        continue;
      }
      float* o_row = od + i * n;
      for (int64_t j = 0; j < n; ++j) {
        o_row[j] += a_pi * b_row[j];
      }
    }
  }
}

void GemmTransB(const Tensor& a, const Tensor& b, Tensor* out) {
  CHECK_EQ(a.ndim(), 2);
  CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  CHECK_EQ(b.dim(1), k);
  const int64_t n = b.dim(0);
  CHECK_EQ(out->dim(0), m);
  CHECK_EQ(out->dim(1), n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out->data();
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = ad + i * k;
    float* o_row = od + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      o_row[j] = acc;
    }
  }
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  CHECK(x.SameShape(*y));
  simd::Axpy(y->data(), alpha, x.data(), x.size());
}

void Scale(float alpha, Tensor* y) { simd::Scale(y->data(), alpha, y->size()); }

double SumSquares(const Tensor& x) {
  double acc = 0.0;
  const float* xd = x.data();
  for (int64_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(xd[i]) * xd[i];
  }
  return acc;
}

double Norm(const Tensor& x) { return std::sqrt(SumSquares(x)); }

double MaxAbsDiff(const Tensor& x, const Tensor& y) {
  CHECK(x.SameShape(y));
  double worst = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(x[i] - y[i])));
  }
  return worst;
}

void AddRowVector(const Tensor& v, Tensor* m) {
  CHECK_EQ(v.ndim(), 1);
  CHECK_EQ(m->ndim(), 2);
  CHECK_EQ(v.dim(0), m->dim(1));
  const int64_t rows = m->dim(0);
  const int64_t cols = m->dim(1);
  // Per-row simd::ReduceAdd keeps the per-element association identical to
  // the historical scalar loop (row[c] += v[c], elementwise).
  for (int64_t r = 0; r < rows; ++r) {
    simd::ReduceAdd(m->data() + r * cols, v.data(), cols);
  }
}

void SumRows(const Tensor& m, Tensor* v) {
  CHECK_EQ(m.ndim(), 2);
  CHECK_EQ(v->ndim(), 1);
  CHECK_EQ(v->dim(0), m.dim(1));
  v->SetZero();
  const int64_t rows = m.dim(0);
  const int64_t cols = m.dim(1);
  // Row-major accumulation in row order: each v[c] sees rows in the same
  // sequence as the historical loop, so the sums are bitwise unchanged.
  for (int64_t r = 0; r < rows; ++r) {
    simd::ReduceAdd(v->data(), m.data() + r * cols, cols);
  }
}

}  // namespace poseidon

#include "tests/testing/socket_pair.h"

#include <chrono>

#include "src/common/logging.h"
#include "src/transport/cluster_launcher.h"
#include "tests/testing/subprocess.h"

namespace poseidon {
namespace testing {
namespace {

/// Opcode reserved for Barrier round trips (cluster opcodes are small).
constexpr uint16_t kBarrierOpcode = 0x7FFF;

}  // namespace

SocketBusPair::SocketBusPair(bool unix_sockets, const FaultPlan& shim) {
  std::vector<SocketEndpoint> endpoints(2);
  if (unix_sockets) {
    dir_ = MakeTempDir("socket_pair");
    for (int p = 0; p < 2; ++p) {
      endpoints[static_cast<size_t>(p)].unix_path =
          MakeUnixSocketPath(dir_, "pair", p);
    }
  } else {
    for (int p = 0; p < 2; ++p) {
      StatusOr<int> port = PickFreeTcpPort();
      CHECK(port.ok()) << port.status().ToString();
      endpoints[static_cast<size_t>(p)].port = *port;
    }
  }
  for (int p = 0; p < 2; ++p) {
    SocketTransportOptions options;
    options.self = p;
    options.processes = endpoints;
    options.node_owner = {0, 1};
    options.shim = shim;
    bus_[p] = std::make_unique<MessageBus>(2);
    transport_[p] = std::make_shared<SocketTransport>(options);
    transport_[p]->SetControlHandler(
        [this, p](int src, uint16_t opcode, const std::vector<uint8_t>& body) {
          std::lock_guard<std::mutex> lock(mutex_);
          control_[p].push_back(ControlEvent{src, opcode, body});
          cv_.notify_all();
        });
    bus_[p]->AttachTransport(transport_[p]);
    const Status started = transport_[p]->Start(bus_[p].get());
    CHECK(started.ok()) << started.ToString();
  }
  for (int p = 0; p < 2; ++p) {
    const Status connected = transport_[p]->ConnectAll();
    CHECK(connected.ok()) << connected.ToString();
  }
}

SocketBusPair::~SocketBusPair() {
  for (int p = 0; p < 2; ++p) {
    bus_[p]->CloseAll();
    transport_[p]->Stop();
  }
}

bool SocketBusPair::AwaitControl(int p, size_t count, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return control_[p].size() >= count; });
}

std::vector<ControlEvent> SocketBusPair::control(int p) {
  std::lock_guard<std::mutex> lock(mutex_);
  return control_[p];
}

void SocketBusPair::Barrier(int src, int dst) {
  transport_[src]->Flush();
  size_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    target = control_[dst].size() + 1;
  }
  CHECK(transport_[src]->SendControl(dst, kBarrierOpcode).ok());
  CHECK(AwaitControl(dst, target))
      << "barrier control record never arrived (stream wedged?)";
}

}  // namespace testing
}  // namespace poseidon

// Tests for checkpoint save/restore: round-trips, error handling, and
// trainer resume semantics (restored runs continue on the same parameters
// and the same sample-stream position).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/common/rng.h"
#include "src/nn/builders.h"
#include "src/poseidon/checkpoint.h"
#include "src/poseidon/trainer.h"
#include "src/tensor/ops.h"

namespace poseidon {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<float> AllParams(Network& net) {
  std::vector<float> out;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      out.insert(out.end(), p.value->data(), p.value->data() + p.value->size());
    }
  }
  return out;
}

TEST(CheckpointTest, RoundTripIsBitwise) {
  Rng rng(1);
  auto net = BuildMlp(32, 16, 2, 4, rng);
  const std::vector<float> before = AllParams(*net);
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(*net, 42, path).ok());

  Rng rng2(999);  // deliberately different init
  auto restored = BuildMlp(32, 16, 2, 4, rng2);
  const StatusOr<int64_t> iter = LoadCheckpoint(path, restored.get());
  ASSERT_TRUE(iter.ok()) << iter.status().ToString();
  EXPECT_EQ(*iter, 42);
  EXPECT_EQ(AllParams(*restored), before);
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(2);
  auto net = BuildMlp(8, 8, 1, 2, rng);
  const StatusOr<int64_t> result = LoadCheckpoint(TempPath("nope.ckpt"), net.get());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  Rng rng(3);
  auto small = BuildMlp(8, 8, 1, 2, rng);
  const std::string path = TempPath("small.ckpt");
  ASSERT_TRUE(SaveCheckpoint(*small, 0, path).ok());
  auto big = BuildMlp(16, 8, 1, 2, rng);
  const StatusOr<int64_t> result = LoadCheckpoint(path, big.get());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a checkpoint at all, not even close............", f);
  std::fclose(f);
  Rng rng(4);
  auto net = BuildMlp(8, 8, 1, 2, rng);
  const StatusOr<int64_t> result = LoadCheckpoint(path, net.get());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, TrainerResumeContinuesSampleStream) {
  DatasetConfig data;
  data.num_classes = 4;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 128;
  data.seed = 55;
  SyntheticDataset dataset(data);

  NetworkFactory factory = [] {
    Rng rng(321);
    return BuildMlp(64, 16, 1, 4, rng);
  };
  TrainerOptions options;
  options.num_workers = 2;
  options.num_servers = 2;
  options.batch_per_worker = 8;
  options.sgd = {.learning_rate = 0.05f};  // no momentum: resume is then exact
  options.fc_policy = FcSyncPolicy::kHybrid;

  const std::string path = TempPath("resume.ckpt");
  std::vector<float> continuous;
  {
    PoseidonTrainer trainer(factory, options);
    trainer.Train(dataset, 6);
    ASSERT_TRUE(trainer.SaveCheckpointTo(path).ok());
    trainer.Train(dataset, 4);  // the uninterrupted reference
    continuous = AllParams(trainer.worker_net(0));
  }
  {
    TrainerOptions resumed = options;
    resumed.restore_path = path;
    PoseidonTrainer trainer(factory, resumed);
    EXPECT_EQ(trainer.next_iter(), 6);
    trainer.Train(dataset, 4);
    EXPECT_EQ(AllParams(trainer.worker_net(0)), continuous)
        << "resumed run must replay the same trajectory";
  }
}

}  // namespace
}  // namespace poseidon

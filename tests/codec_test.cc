// Tests for the communication codecs: sufficient factors (exact) and 1-bit
// quantization with error feedback (approximate but unbiased over time).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/tensor/onebit.h"
#include "src/tensor/ops.h"
#include "src/tensor/sufficient_factor.h"

namespace poseidon {
namespace {

// ------------------------------------------------------ sufficient factors --

TEST(SufficientFactorTest, ReconstructionIsExact) {
  Rng rng(3);
  const int64_t k = 8;
  const int64_t m = 12;
  const int64_t n = 20;
  Tensor errors = Tensor::RandomUniform({k, m}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({k, n}, -1.0f, 1.0f, rng);

  // Dense gradient: dW = errors^T * inputs.
  Tensor dense({m, n});
  GemmTransA(errors, inputs, &dense);

  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);
  Tensor recon({m, n});
  ReconstructGradient(factors, &recon);
  EXPECT_DOUBLE_EQ(MaxAbsDiff(dense, recon), 0.0)
      << "SF reconstruction must be bitwise exact";
}

TEST(SufficientFactorTest, AccumulateAddsWithoutZeroing) {
  Rng rng(5);
  Tensor errors = Tensor::RandomUniform({4, 6}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({4, 5}, -1.0f, 1.0f, rng);
  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);

  Tensor once({6, 5});
  ReconstructGradient(factors, &once);
  Tensor twice = Tensor::Zeros({6, 5});
  AccumulateGradient(factors, &twice);
  AccumulateGradient(factors, &twice);
  for (int64_t i = 0; i < once.size(); ++i) {
    EXPECT_FLOAT_EQ(twice[i], 2.0f * once[i]);
  }
}

TEST(SufficientFactorTest, WireBytesBeatDenseForWideLayers) {
  // VGG19's fc6 (4096 x 25088) at batch 32: SFs are ~86x smaller.
  Rng rng(7);
  Tensor errors = Tensor::RandomUniform({32, 64}, -1.0f, 1.0f, rng);   // scaled stand-in
  Tensor inputs = Tensor::RandomUniform({32, 392}, -1.0f, 1.0f, rng);
  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);
  EXPECT_LT(factors.WireBytes(), factors.DenseWireBytes());
  EXPECT_EQ(factors.rank(), 32);
  EXPECT_EQ(factors.rows(), 64);
  EXPECT_EQ(factors.cols(), 392);
}

TEST(SufficientFactorTest, RankOneOuterProduct) {
  Tensor errors = Tensor::FromVector({1, 2}, {2, 3});
  Tensor inputs = Tensor::FromVector({1, 3}, {1, 10, 100});
  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);
  Tensor recon({2, 3});
  ReconstructGradient(factors, &recon);
  EXPECT_FLOAT_EQ(recon.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(recon.At(0, 2), 200.0f);
  EXPECT_FLOAT_EQ(recon.At(1, 1), 30.0f);
}

// ------------------------------------------------------------- 1-bit codec --

TEST(OneBitTest, DecodePlusResidualRecoversInputExactly) {
  // Error feedback invariant: Decode(Encode(g)) + residual' == g + residual.
  Rng rng(11);
  Tensor grad = Tensor::RandomUniform({16, 24}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  const OneBitEncoded encoded = quantizer.Encode(grad);
  const Tensor decoded = OneBitQuantizer::Decode(encoded);
  for (int64_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(decoded[i] + quantizer.residual()[i], grad[i], 1e-6);
  }
}

TEST(OneBitTest, SignsArePreserved) {
  Tensor grad = Tensor::FromVector({2, 2}, {1.0f, -2.0f, 3.0f, -4.0f});
  OneBitQuantizer quantizer;
  const Tensor decoded = OneBitQuantizer::Decode(quantizer.Encode(grad));
  EXPECT_GE(decoded.At(0, 0), 0.0f);
  EXPECT_LT(decoded.At(0, 1), 0.0f);
  EXPECT_GE(decoded.At(1, 0), 0.0f);
  EXPECT_LT(decoded.At(1, 1), 0.0f);
}

TEST(OneBitTest, ColumnLevelsAreClassMeans) {
  // One column, values {1, 3, -2}: positive level (1+3)/2 = 2, negative -2.
  Tensor grad = Tensor::FromVector({3, 1}, {1.0f, 3.0f, -2.0f});
  OneBitQuantizer quantizer;
  const OneBitEncoded encoded = quantizer.Encode(grad);
  EXPECT_FLOAT_EQ(encoded.positive_level[0], 2.0f);
  EXPECT_FLOAT_EQ(encoded.negative_level[0], -2.0f);
}

TEST(OneBitTest, WireSizeIsRoughly32xSmaller) {
  Rng rng(13);
  Tensor grad = Tensor::RandomUniform({256, 256}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  const OneBitEncoded encoded = quantizer.Encode(grad);
  const int64_t dense_bytes = grad.size() * 4;
  EXPECT_LT(encoded.WireBytes(), dense_bytes / 20);  // bits + per-column levels
}

TEST(OneBitTest, ResidualCarriesAcrossSteps) {
  // Feeding the same gradient repeatedly: with error feedback, the running
  // sum of decoded outputs approaches the running sum of inputs.
  Rng rng(17);
  Tensor grad = Tensor::RandomUniform({8, 8}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  Tensor decoded_sum = Tensor::Zeros({8, 8});
  const int steps = 50;
  for (int s = 0; s < steps; ++s) {
    const Tensor decoded = OneBitQuantizer::Decode(quantizer.Encode(grad));
    Axpy(1.0f, decoded, &decoded_sum);
  }
  for (int64_t i = 0; i < grad.size(); ++i) {
    // Exact up to the final residual, which is bounded.
    EXPECT_NEAR(decoded_sum[i], steps * grad[i], 2.0f);
  }
}

TEST(OneBitTest, AllPositiveColumn) {
  Tensor grad = Tensor::FromVector({3, 1}, {1.0f, 2.0f, 3.0f});
  OneBitQuantizer quantizer;
  const OneBitEncoded encoded = quantizer.Encode(grad);
  EXPECT_FLOAT_EQ(encoded.positive_level[0], 2.0f);
  EXPECT_FLOAT_EQ(encoded.negative_level[0], 0.0f);  // empty class
  const Tensor decoded = OneBitQuantizer::Decode(encoded);
  EXPECT_FLOAT_EQ(decoded.At(1, 0), 2.0f);
}

TEST(OneBitTest, ZeroGradientIsStable) {
  Tensor grad = Tensor::Zeros({4, 4});
  OneBitQuantizer quantizer;
  const Tensor decoded = OneBitQuantizer::Decode(quantizer.Encode(grad));
  for (int64_t i = 0; i < decoded.size(); ++i) {
    EXPECT_FLOAT_EQ(decoded[i], 0.0f);
  }
  EXPECT_DOUBLE_EQ(Norm(quantizer.residual()), 0.0);
}

}  // namespace
}  // namespace poseidon

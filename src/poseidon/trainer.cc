#include "src/poseidon/trainer.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/planner/plan_cache.h"
#include "src/stats/stopwatch.h"
#include "src/stats/trace.h"

namespace poseidon {

PoseidonTrainer::PoseidonTrainer(NetworkFactory factory, TrainerOptions options)
    : options_(options), factory_(std::move(factory)) {
  CHECK_GT(options_.num_workers, 0);
  CHECK_GT(options_.num_servers, 0);
  CHECK_GE(options_.server_node_base, 0);
  const int num_nodes = std::max(options_.num_workers,
                                 options_.server_node_base + options_.num_servers);
  bus_ = std::make_unique<MessageBus>(num_nodes);
  if (options_.batch_egress) {
    bus_->EnableBatching(options_.batch_options);
  }
  if (options_.enable_faults || options_.fault_plan.any()) {
    bus_->EnableFaultInjection(options_.fault_plan);
  }
  if (options_.crash.active()) {
    CHECK(options_.failure_detection.enabled)
        << "a crash plan without failure detection deadlocks the cluster";
    CHECK_GT(options_.checkpoint_every, 0) << "recovery requires checkpoints";
    CHECK(!options_.checkpoint_dir.empty()) << "recovery requires a checkpoint dir";
  }

  // Identical replicas: the factory must be deterministic.
  init_net_ = factory_();
  for (int w = 0; w < options_.num_workers; ++w) {
    worker_nets_.push_back(factory_());
    CHECK_EQ(worker_nets_.back()->num_layers(), init_net_->num_layers());
    crashed_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  if (!options_.restore_path.empty()) {
    // Restore parameters into every replica (and into the init net the KV
    // shards take their master copies from) before anything starts serving.
    StatusOr<int64_t> restored = LoadCheckpoint(options_.restore_path, init_net_.get());
    CHECK(restored.ok()) << restored.status().ToString();
    next_iter_ = *restored;
    for (auto& net : worker_nets_) {
      CHECK(LoadCheckpoint(options_.restore_path, net.get()).ok());
    }
  }

  CHECK_GE(options_.shards_per_server, 0);
  CHECK_GE(options_.staleness, 0);
  ClusterInfo cluster;
  cluster.num_workers = options_.num_workers;
  cluster.num_servers = options_.num_servers;
  cluster.shards_per_server = std::max(1, options_.shards_per_server);
  cluster.server_node_base = options_.server_node_base;
  cluster.staleness = options_.staleness;
  cluster.batch_per_worker = options_.batch_per_worker;
  cluster.kv_pair_bytes = options_.kv_pair_bytes;
  coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
  switch (options_.plan_mode) {
    case TrainerPlanMode::kPaper: {
      if (options_.shards_per_server == 0) {
        // Auto-sharding: let the multi-shard cost rows size the shard pool,
        // then repartition the KV pairs over the chosen endpoint space.
        const SyncPlan plan =
            ResolveSchemesSharded(*coordinator_, options_.fc_policy, kMaxAutoShards);
        cluster.shards_per_server = plan.ps_shards;
        coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
      }
      schemes_ = ResolveSchemes(*coordinator_, options_.fc_policy);
      compression_ = ResolveCompression(*coordinator_, schemes_,
                                        options_.ps_compression, options_.topk_density,
                                        options_.compression_min_floats);
      // Record the equivalent plan so plan() always answers (the wrappers
      // above went through the same paper-mode search, so this is a hit).
      plan_ = PlanCache::Global().GetOrPlan(BuildPlanRequest());
      break;
    }
    case TrainerPlanMode::kAuto:
      plan_ = PlanCache::Global().GetOrPlan(BuildPlanRequest());
      cluster.shards_per_server = plan_->ps_shards;
      coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
      ApplyPlanSchemes();
      break;
    case TrainerPlanMode::kFixed:
      CHECK(options_.fixed_plan != nullptr) << "plan_mode = kFixed needs a fixed_plan";
      plan_ = options_.fixed_plan;
      cluster.shards_per_server = plan_->ps_shards;
      coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
      ApplyPlanSchemes();
      break;
  }

  for (int s = 0; s < options_.num_servers; ++s) {
    servers_.push_back(std::make_unique<KvServer>(s, next_iter_, *coordinator_, schemes_,
                                                  *init_net_, bus_.get(), options_.sgd,
                                                  compression_));
  }
  for (int w = 0; w < options_.num_workers; ++w) {
    clients_.push_back(std::make_unique<ClientLibrary>(
        w, *coordinator_, schemes_, worker_nets_[static_cast<size_t>(w)].get(), bus_.get(),
        options_.sgd, options_.syncer_threads, compression_, options_.topk_density));
  }
  for (auto& server : servers_) {
    server->Start();
  }

  if (options_.plan_feedback) {
    CHECK(options_.plan_mode == TrainerPlanMode::kAuto)
        << "bandwidth feedback re-plans the joint search; use plan_mode = kAuto";
    CHECK(!options_.crash.active() && !options_.failure_detection.enabled)
        << "plan swaps and failure recovery cannot compose";
    bus_->EnableLinkStats();
    replanner_ = std::make_unique<Replanner>(
        BuildPlanRequest(), options_.replan_options, &PlanCache::Global());
  }

  if (options_.failure_detection.enabled) {
    detector_ = std::make_unique<FailureDetector>(
        bus_.get(), options_.num_workers, options_.failure_detection,
        [this](int w) { OnWorkerSuspected(w); });
    detector_->Start();
    for (int w = 0; w < options_.num_workers; ++w) {
      tickers_.push_back(std::make_unique<HeartbeatTicker>(w, bus_.get(),
                                                           options_.failure_detection));
    }
  }
}

PlanRequest PoseidonTrainer::BuildPlanRequest() const {
  const ClusterInfo& cluster = coordinator_->cluster();
  PlanRequest req;
  req.model_name = options_.model_name;
  req.layers.reserve(static_cast<size_t>(coordinator_->num_layers()));
  for (int l = 0; l < coordinator_->num_layers(); ++l) {
    const LayerInfo& info = coordinator_->layer(l);
    LayerSpec spec;
    spec.name = info.name;
    spec.type = info.type;
    spec.params = info.total_floats;
    spec.fc_m = info.fc_m;
    spec.fc_n = info.fc_n;
    req.layers.push_back(std::move(spec));
  }
  req.num_workers = options_.num_workers;
  req.num_servers = options_.num_servers;
  req.batch_per_worker = options_.batch_per_worker;
  req.kv_pair_bytes = options_.kv_pair_bytes;
  req.staleness = options_.staleness;
  req.max_staleness = options_.staleness;
  req.topk_density = options_.topk_density;
  req.compression_min_floats = options_.compression_min_floats;
  req.batch_max_messages = options_.batch_options.max_batch_messages;
  if (options_.plan_mode == TrainerPlanMode::kAuto) {
    // Joint search over everything the options left open; a non-zero
    // shards_per_server stays a hard pin.
    req.ps_shards_pinned = options_.shards_per_server;
    req.max_shards = kMaxAutoShards;
    req.batch_egress = options_.batch_egress;
    req.allow_batching = true;
    req.policy = PlanPolicy::kAuto;
    req.codec = PlanCodecPolicy::kAuto;
    req.joint = true;
  } else {
    // Paper mode: express the resolved legacy decisions (the coordinator
    // already carries the final shard count) as a plan.
    req.ps_shards_pinned = std::max(1, cluster.shards_per_server);
    req.paper_eval_shards = std::max(1, cluster.shards_per_server);
    req.batch_egress = options_.batch_egress;
    req.policy = PlanPolicyFromFcPolicy(options_.fc_policy);
    req.codec = PlanCodecPolicyFromCompression(options_.ps_compression);
    req.joint = false;
  }
  return req;
}

void PoseidonTrainer::ApplyPlanSchemes() {
  CHECK_EQ(plan_->layers.size(), static_cast<size_t>(coordinator_->num_layers()))
      << "plan does not match the model (layer count)";
  schemes_.clear();
  compression_.clear();
  for (int l = 0; l < coordinator_->num_layers(); ++l) {
    const PlanLayerChoice& choice = plan_->layers[static_cast<size_t>(l)];
    CHECK(choice.layer == coordinator_->layer(l).name)
        << "plan layer " << l << " is '" << choice.layer << "', model has '"
        << coordinator_->layer(l).name << "'";
    schemes_.push_back(RuntimeSchemeFromPlanned(choice.scheme));
    compression_.push_back(choice.compression);
  }
  if (plan_->batch_egress && !options_.batch_egress) {
    bus_->EnableBatching(options_.batch_options);
  }
}

void PoseidonTrainer::AdoptPlan(std::shared_ptr<const CommPlan> new_plan) {
  CHECK(!shut_down_);
  CHECK(new_plan != nullptr);
  if (plan_ != nullptr && new_plan->hash == plan_->hash) {
    return;  // already running this plan
  }
  CHECK_EQ(options_.staleness, 0)
      << "plan swaps need BSP: replicas must be identical at the boundary";
  CHECK_EQ(new_plan->staleness, 0);
  CHECK(!options_.crash.active() && detector_ == nullptr)
      << "plan swaps and failure recovery cannot compose";
  CHECK_EQ(new_plan->layers.size(), static_cast<size_t>(coordinator_->num_layers()))
      << "plan does not match the model (layer count)";

  // Quiesce the old communication stack. Workers are parked between Train()
  // windows, so nothing is in flight beyond the shards' run loops.
  for (auto& server : servers_) {
    for (int shard = 0; shard < server->num_shards(); ++shard) {
      Message shutdown;
      shutdown.type = MessageType::kShutdown;
      shutdown.from = Address{0, kSyncerPortBase};
      shutdown.to = coordinator_->cluster().ShardAddress(server->id(), shard);
      const Status status = bus_->Send(std::move(shutdown));
      CHECK(status.ok()) << status.ToString();
    }
  }
  for (auto& server : servers_) {
    server->Join();
  }
  bus_->CloseAll();
  clients_.clear();
  servers_.clear();

  // Fresh fabric under the new plan's knobs.
  const int num_nodes = std::max(options_.num_workers,
                                 options_.server_node_base + options_.num_servers);
  bus_ = std::make_unique<MessageBus>(num_nodes);
  if (options_.batch_egress) {
    bus_->EnableBatching(options_.batch_options);
  }
  if (options_.enable_faults || options_.fault_plan.any()) {
    bus_->EnableFaultInjection(options_.fault_plan);
  }
  if (replanner_ != nullptr) {
    bus_->EnableLinkStats();
  }

  // Under BSP the replicas are identical here; refresh the init net so the
  // new KV masters adopt the live parameters bitwise.
  auto src = worker_nets_[0]->LayerParams();
  auto dst = init_net_->LayerParams();
  CHECK_EQ(src.size(), dst.size());
  for (size_t l = 0; l < src.size(); ++l) {
    CHECK_EQ(src[l].size(), dst[l].size());
    for (size_t b = 0; b < src[l].size(); ++b) {
      const Tensor& from = *src[l][b].value;
      Tensor& to = *dst[l][b].value;
      CHECK_EQ(from.size(), to.size());
      std::copy(from.data(), from.data() + from.size(), to.data());
    }
  }

  ClusterInfo cluster = coordinator_->cluster();
  cluster.shards_per_server = new_plan->ps_shards;
  coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
  plan_ = std::move(new_plan);
  ApplyPlanSchemes();

  for (int s = 0; s < options_.num_servers; ++s) {
    servers_.push_back(std::make_unique<KvServer>(s, next_iter_, *coordinator_, schemes_,
                                                  *init_net_, bus_.get(), options_.sgd,
                                                  compression_));
  }
  for (int w = 0; w < options_.num_workers; ++w) {
    clients_.push_back(std::make_unique<ClientLibrary>(
        w, *coordinator_, schemes_, worker_nets_[static_cast<size_t>(w)].get(),
        bus_.get(), options_.sgd, options_.syncer_threads, compression_,
        options_.topk_density));
  }
  for (auto& server : servers_) {
    server->Start();
  }
}

void PoseidonTrainer::MaybeReplan() {
  const ObservedLinkStats window = bus_->SnapshotLinkStatsDelta();
  const ReplanDecision decision = replanner_->Observe(window);
  if (!decision.replan || decision.plan == nullptr ||
      decision.plan->hash == plan_->hash) {
    return;
  }
  LOG(Info) << "replanning at iteration " << next_iter_ << ": observed "
            << decision.observed_gbps << " Gbps (divergence " << decision.divergence
            << "), plan " << std::hex << plan_->hash << " -> " << decision.plan->hash
            << std::dec;
  ++replan_count_;
  AdoptPlan(decision.plan);
}

PoseidonTrainer::~PoseidonTrainer() { Shutdown(); }

void PoseidonTrainer::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  // Liveness machinery first: no beats, suspicions, or recoveries may fire
  // once teardown starts.
  tickers_.clear();
  if (detector_ != nullptr) {
    detector_->Shutdown();
  }
  for (auto& server : servers_) {
    for (int shard = 0; shard < server->num_shards(); ++shard) {
      Message shutdown;
      shutdown.type = MessageType::kShutdown;
      shutdown.from = Address{0, kSyncerPortBase};
      shutdown.to = coordinator_->cluster().ShardAddress(server->id(), shard);
      const Status status = bus_->Send(std::move(shutdown));
      CHECK(status.ok()) << status.ToString();
    }
  }
  for (auto& server : servers_) {
    server->Join();
  }
  bus_->CloseAll();
}

void PoseidonTrainer::RunWorkerLoop(int w, int64_t from_iter) {
  const int num_workers = options_.num_workers;
  const int64_t end_iter = window_.first_iter + window_.iterations;
  Network& net = *worker_nets_[static_cast<size_t>(w)];
  ClientLibrary& client = *clients_[static_cast<size_t>(w)];
  for (int64_t iter = from_iter; iter < end_iter; ++iter) {
    TraceSpan iteration_span("iteration", "trainer", iter);
    const size_t i = static_cast<size_t>(iter - window_.first_iter);
    const Batch batch =
        window_.dataset->TrainBatch(iter, options_.batch_per_worker, w, num_workers);
    Stopwatch compute_watch;
    LossResult result;
    {
      TraceSpan forward_span("forward", "trainer", iter);
      result = net.Forward(batch.images, batch.labels);
    }
    (*window_.losses)[static_cast<size_t>(w)][i] = result.loss;
    (*window_.accuracies)[static_cast<size_t>(w)][i] = result.accuracy;
    client.StartIteration(iter);
    const bool crash_now = options_.crash.active() && w == options_.crash.worker &&
                           iter == options_.crash.iter &&
                           !crash_fired_.load(std::memory_order_acquire);
    int backward_steps = 0;
    for (int l = net.num_layers() - 1; l >= 0; --l) {
      if (crash_now && backward_steps >= options_.crash.layers_before_crash) {
        break;
      }
      {
        TraceSpan backward_span("backward", "trainer", l);
        net.BackwardThrough(l);
      }
      client.ScheduleSync(l);  // wait-free backpropagation
      ++backward_steps;
    }
    const int64_t compute_ns = compute_watch.ElapsedNs();
    if (crash_now) {
      // Simulated process death: in-flight sync jobs are orphaned, beats
      // cease, no WaitAll, no cleanup. The failure detector takes it from
      // here (OnWorkerSuspected -> RecoverWorker).
      crash_fired_.store(true, std::memory_order_release);
      crashed_[static_cast<size_t>(w)]->store(true, std::memory_order_release);
      tickers_[static_cast<size_t>(w)]->Stop();
      LOG(Warning) << "worker " << w << " crashed at iteration " << iter << " after "
                   << backward_steps << " backward steps";
      return;
    }
    Stopwatch wait_watch;
    {
      TraceSpan wait_span("wait_all", "trainer", iter);
      client.WaitAll();  // BSP barrier: every layer synchronized
    }
    const int64_t wait_ns = wait_watch.ElapsedNs();
    (*window_.compute_ms)[static_cast<size_t>(w)][i] =
        static_cast<double>(compute_ns) * 1e-6;
    (*window_.comm_wait_ms)[static_cast<size_t>(w)][i] =
        static_cast<double>(wait_ns) * 1e-6;
    compute_ns_total_.fetch_add(compute_ns, std::memory_order_relaxed);
    comm_wait_ns_total_.fetch_add(wait_ns, std::memory_order_relaxed);
    MaybeCheckpoint(w, iter + 1);
  }
}

std::string PoseidonTrainer::CheckpointPath(int w) const {
  return options_.checkpoint_dir + "/worker_" + std::to_string(w) + ".ckpt";
}

void PoseidonTrainer::MaybeCheckpoint(int w, int64_t next_iter) {
  if (options_.checkpoint_every <= 0 || options_.checkpoint_dir.empty()) {
    return;
  }
  if (next_iter % options_.checkpoint_every != 0 && next_iter != window_.first_iter) {
    return;
  }
  const Status saved =
      SaveCheckpoint(*worker_nets_[static_cast<size_t>(w)], next_iter, CheckpointPath(w));
  CHECK(saved.ok()) << saved.ToString();
}

void PoseidonTrainer::OnWorkerSuspected(int w) {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  if (!crashed_[static_cast<size_t>(w)]->load(std::memory_order_acquire)) {
    // False positive (late heartbeats under load). Clear the suspicion so
    // the detector re-arms — a latched suspicion would suppress the callback
    // for a later real crash of this worker and hang the cluster.
    LOG(Warning) << "failure detector suspected live worker " << w
                 << " (late heartbeats); clearing";
    detector_->NotifyRecovered(w);
    return;
  }
  ++recoveries_in_flight_;
  recovery_threads_.emplace_back([this, w] { RecoverWorker(w); });
}

void PoseidonTrainer::RecoverWorker(int w) {
  TraceSpan recovery_span("recovery", "trainer", w);
  // 1. Fence the dead incarnation: close + unregister its data endpoints
  // (syncer + collective ports, NOT the coordinator's monitor mailbox — a
  // colocated monitor survives the worker-process death) so orphaned sync
  // jobs wake (their Receive abandons) and the old client library can
  // drain. Replies the shards send into this window are dropped and
  // re-earned by the replay.
  bus_->CloseEndpoints(w, kSyncerPortBase, kMonitorPort);
  clients_[static_cast<size_t>(w)].reset();

  // 2. Rehydrate a fresh replica from the latest recovery checkpoint; its
  // cursor is the in-flight clock to replay.
  auto net = factory_();
  StatusOr<int64_t> cursor = LoadCheckpoint(CheckpointPath(w), net.get());
  CHECK(cursor.ok()) << "worker " << w << " restart: " << cursor.status().ToString();
  worker_nets_[static_cast<size_t>(w)] = std::move(net);

  // 3. Re-register with the shards: a fresh client library recreates every
  // syncer mailbox at the same addresses (sequence streams just continue).
  clients_[static_cast<size_t>(w)] = std::make_unique<ClientLibrary>(
      w, *coordinator_, schemes_, worker_nets_[static_cast<size_t>(w)].get(), bus_.get(),
      options_.sgd, options_.syncer_threads, compression_, options_.topk_density);

  // 4. Rejoin the cluster and replay from the checkpoint cursor. The replay
  // re-pushes the in-flight clock; shard reconciliation applies each
  // (layer, clock) aggregate exactly once (see KvShard).
  crashed_[static_cast<size_t>(w)]->store(false, std::memory_order_release);
  detector_->NotifyRecovered(w);
  tickers_[static_cast<size_t>(w)]->Resume();
  LOG(Info) << "worker " << w << " restarted from iteration " << *cursor;
  RunWorkerLoop(w, *cursor);
  recoveries_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    --recoveries_in_flight_;
  }
  recovery_cv_.notify_all();
}

std::vector<IterationStats> PoseidonTrainer::Train(const SyntheticDataset& dataset,
                                                   int iterations) {
  CHECK(!shut_down_);
  CHECK_GT(iterations, 0);
  const int num_workers = options_.num_workers;
  std::vector<std::vector<double>> losses(
      static_cast<size_t>(num_workers),
      std::vector<double>(static_cast<size_t>(iterations), 0.0));
  std::vector<std::vector<double>> accuracies = losses;
  std::vector<std::vector<double>> compute_ms = losses;
  std::vector<std::vector<double>> comm_wait_ms = losses;

  const int64_t first_iter = next_iter_;
  window_ = TrainWindow{&dataset,    first_iter,  iterations,   &losses,
                        &accuracies, &compute_ms, &comm_wait_ms};
  if (options_.checkpoint_every > 0 && !options_.checkpoint_dir.empty()) {
    // Baseline checkpoint so a crash in the very first window iteration can
    // restart (replicas are quiescent and identical here).
    for (int w = 0; w < num_workers; ++w) {
      MaybeCheckpoint(w, first_iter);
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([this, w, first_iter] { RunWorkerLoop(w, first_iter); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // A crashed worker's thread returned early; its recovery thread finishes
  // the window. Wait for the restart to be spawned and completed before
  // declaring the window done.
  if (options_.crash.active() && crash_fired_.load()) {
    std::unique_lock<std::mutex> lock(recovery_mutex_);
    recovery_cv_.wait(lock, [&] {
      return recoveries_in_flight_ == 0 &&
             !crashed_[static_cast<size_t>(options_.crash.worker)]->load();
    });
  }
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    for (auto& thread : recovery_threads_) {
      if (thread.joinable()) {
        thread.join();
      }
    }
    recovery_threads_.clear();
  }
  next_iter_ += iterations;
  if (replanner_ != nullptr) {
    // Bandwidth feedback fires only at this window boundary, never mid-
    // iteration, so the swap schedule is a pure function of the observed
    // windows (determinism contract, docs/PLANNER.md).
    MaybeReplan();
  }

  std::vector<IterationStats> stats(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    IterationStats& s = stats[static_cast<size_t>(i)];
    s.iter = first_iter + i;
    for (int w = 0; w < num_workers; ++w) {
      s.mean_loss += losses[static_cast<size_t>(w)][static_cast<size_t>(i)];
      s.mean_accuracy += accuracies[static_cast<size_t>(w)][static_cast<size_t>(i)];
      s.compute_ms += compute_ms[static_cast<size_t>(w)][static_cast<size_t>(i)];
      s.comm_wait_ms += comm_wait_ms[static_cast<size_t>(w)][static_cast<size_t>(i)];
    }
    s.mean_loss /= num_workers;
    s.mean_accuracy /= num_workers;
    s.compute_ms /= num_workers;
    s.comm_wait_ms /= num_workers;
  }
  return stats;
}

StallBreakdown PoseidonTrainer::stall_breakdown() const {
  StallBreakdown breakdown;
  breakdown.compute_s =
      static_cast<double>(compute_ns_total_.load(std::memory_order_relaxed)) * 1e-9;
  breakdown.comm_wait_s =
      static_cast<double>(comm_wait_ns_total_.load(std::memory_order_relaxed)) * 1e-9;
  int64_t ssp_ns = 0;
  for (const auto& server : servers_) {
    ssp_ns += server->SspStallNs();
  }
  breakdown.ssp_stall_s = static_cast<double>(ssp_ns) * 1e-9;
  return breakdown;
}

LossResult PoseidonTrainer::EvaluateTest(const SyntheticDataset& dataset) {
  const Batch test = dataset.TestSet();
  return worker_net(0).Evaluate(test.images, test.labels);
}

Status PoseidonTrainer::SaveCheckpointTo(const std::string& path) {
  return SaveCheckpoint(worker_net(0), next_iter_, path);
}

int PoseidonTrainer::shards_per_server() const {
  return coordinator_->cluster().shards_per_server;
}

Network& PoseidonTrainer::worker_net(int w) {
  CHECK_GE(w, 0);
  CHECK_LT(w, options_.num_workers);
  return *worker_nets_[static_cast<size_t>(w)];
}

}  // namespace poseidon

#include "src/nn/network.h"

#include <cmath>

#include "src/common/logging.h"

namespace poseidon {

LossResult SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                               Tensor* grad_logits) {
  CHECK_EQ(logits.ndim(), 2);
  const int64_t k = logits.dim(0);
  const int64_t classes = logits.dim(1);
  CHECK_EQ(static_cast<int64_t>(labels.size()), k);

  LossResult result;
  if (grad_logits != nullptr) {
    *grad_logits = Tensor({k, classes});
  }
  int correct = 0;
  double loss_sum = 0.0;
  for (int64_t i = 0; i < k; ++i) {
    const float* row = logits.data() + i * classes;
    const int label = labels[static_cast<size_t>(i)];
    CHECK_GE(label, 0);
    CHECK_LT(label, classes);

    float max_logit = row[0];
    int64_t argmax = 0;
    for (int64_t c = 1; c < classes; ++c) {
      if (row[c] > max_logit) {
        max_logit = row[c];
        argmax = c;
      }
    }
    if (argmax == label) {
      ++correct;
    }
    double denom = 0.0;
    for (int64_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c] - max_logit));
    }
    const double log_denom = std::log(denom);
    loss_sum += log_denom - static_cast<double>(row[label] - max_logit);
    if (grad_logits != nullptr) {
      float* grad_row = grad_logits->data() + i * classes;
      for (int64_t c = 0; c < classes; ++c) {
        const double p = std::exp(static_cast<double>(row[c] - max_logit)) / denom;
        grad_row[c] = static_cast<float>((p - (c == label ? 1.0 : 0.0)) / k);
      }
    }
  }
  result.loss = loss_sum / static_cast<double>(k);
  result.accuracy = static_cast<double>(correct) / static_cast<double>(k);
  return result;
}

void Network::Add(std::unique_ptr<Layer> layer) {
  CHECK_NOTNULL(layer.get());
  layers_.push_back(std::move(layer));
}

LossResult Network::Forward(const Tensor& batch, const std::vector<int>& labels) {
  CHECK(!layers_.empty());
  Tensor current = batch;
  for (auto& layer : layers_) {
    Tensor next;
    layer->Forward(current, &next);
    current = std::move(next);
  }
  LossResult result = SoftmaxCrossEntropy(current, labels, &grad_cursor_);
  next_backward_ = num_layers() - 1;
  return result;
}

void Network::BackwardThrough(int l) {
  CHECK_EQ(l, next_backward_) << "backward must proceed top-down, layer by layer";
  CHECK_GE(l, 0);
  Tensor grad_in;
  layers_[static_cast<size_t>(l)]->Backward(grad_cursor_, &grad_in);
  grad_cursor_ = std::move(grad_in);
  --next_backward_;
}

void Network::Backward() {
  for (int l = num_layers() - 1; l >= 0; --l) {
    BackwardThrough(l);
  }
}

std::vector<std::vector<ParamBlock>> Network::LayerParams() {
  std::vector<std::vector<ParamBlock>> params;
  params.reserve(layers_.size());
  for (auto& layer : layers_) {
    params.push_back(layer->Params());
  }
  return params;
}

int64_t Network::total_params() {
  int64_t total = 0;
  for (auto& layer : layers_) {
    total += layer->num_params();
  }
  return total;
}

LossResult Network::Evaluate(const Tensor& batch, const std::vector<int>& labels) {
  Tensor current = batch;
  for (auto& layer : layers_) {
    Tensor next;
    layer->Forward(current, &next);
    current = std::move(next);
  }
  return SoftmaxCrossEntropy(current, labels, nullptr);
}

}  // namespace poseidon

/// \file
/// Process-visible counters for the transport's fault-injection fabric.
///
/// Every injected fault increments exactly one counter at the moment the
/// fault is committed (not when it is decided), so after FlushFaults() the
/// counters describe what the network actually did to the byte stream. The
/// chaos tests assert on them both positively ("this run really did see
/// duplicates") and negatively ("nothing was deduplicated in a clean run").
///
/// Each FaultInjector owns one FaultCounters instance (per-bus isolation:
/// two buses in one test never mix their weather). The counters are built
/// on the stats::Counter metrics primitive, and every increment is also
/// mirrored into MetricsRegistry::Default() under "fault.*" so the process
/// metrics JSON carries aggregate fault totals alongside everything else.
#ifndef POSEIDON_SRC_STATS_FAULT_COUNTERS_H_
#define POSEIDON_SRC_STATS_FAULT_COUNTERS_H_

#include <cstdint>
#include <string>

#include "src/stats/metrics.h"

namespace poseidon {

/// Plain-value snapshot of FaultCounters, safe to copy and compare.
struct FaultCountersSnapshot {
  int64_t drops = 0;            ///< wire transmissions lost (later retransmitted)
  int64_t retransmits = 0;      ///< link-layer redeliveries of dropped messages
  int64_t duplicates = 0;       ///< extra copies injected on the wire
  int64_t delays = 0;           ///< messages held back by a delay fault
  int64_t partition_holds = 0;  ///< messages parked behind an active partition
  int64_t deduped = 0;          ///< receiver-side duplicate suppressions
  int64_t reordered = 0;        ///< arrivals buffered because an earlier seq was missing
  int64_t dropped_replies = 0;  ///< sends to an endpoint that died (crash window)

  int64_t TotalInjected() const {
    return drops + duplicates + delays + partition_holds;
  }
};

/// Monotonic counters owned by one FaultInjector (one per MessageBus).
/// Backed by the metrics registry primitives; see file comment.
class FaultCounters {
 public:
  FaultCounters();

  void AddDrop() { Bump(drops_, global_drops_); }
  void AddRetransmit() { Bump(retransmits_, global_retransmits_); }
  void AddDuplicate() { Bump(duplicates_, global_duplicates_); }
  void AddDelay() { Bump(delays_, global_delays_); }
  void AddPartitionHold() { Bump(partition_holds_, global_partition_holds_); }
  void AddDeduped() { Bump(deduped_, global_deduped_); }
  void AddReordered() { Bump(reordered_, global_reordered_); }
  void AddDroppedReply() { Bump(dropped_replies_, global_dropped_replies_); }

  FaultCountersSnapshot Snapshot() const {
    FaultCountersSnapshot snap;
    snap.drops = drops_.Value();
    snap.retransmits = retransmits_.Value();
    snap.duplicates = duplicates_.Value();
    snap.delays = delays_.Value();
    snap.partition_holds = partition_holds_.Value();
    snap.deduped = deduped_.Value();
    snap.reordered = reordered_.Value();
    snap.dropped_replies = dropped_replies_.Value();
    return snap;
  }

 private:
  static void Bump(Counter& local, Counter* global) {
    local.Add();
    global->Add();
  }

  Counter drops_;
  Counter retransmits_;
  Counter duplicates_;
  Counter delays_;
  Counter partition_holds_;
  Counter deduped_;
  Counter reordered_;
  Counter dropped_replies_;

  // Cached handles into MetricsRegistry::Default() ("fault.*"), shared by
  // every FaultCounters instance in the process.
  Counter* global_drops_;
  Counter* global_retransmits_;
  Counter* global_duplicates_;
  Counter* global_delays_;
  Counter* global_partition_holds_;
  Counter* global_deduped_;
  Counter* global_reordered_;
  Counter* global_dropped_replies_;
};

/// One-line human-readable rendering for bench output and test failures.
std::string FormatFaultCounters(const FaultCountersSnapshot& snap);

}  // namespace poseidon

#endif  // POSEIDON_SRC_STATS_FAULT_COUNTERS_H_

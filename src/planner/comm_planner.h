/// \file
/// CommPlanner: cost-model-driven search over the joint per-layer
/// communication space — scheme x KV shard count x wire codec x egress
/// batching x SSP staleness — against the byte- and time-basis rows of
/// src/models/comm_cost.h.
///
/// Two search modes share one entry point (PlanComm):
///
///  * paper mode (`joint = false`): reproduces the legacy sequential
///    decisions bit for bit — per-layer scheme on the float basis
///    (BestScheme / BestSchemeExtended), then the shard count
///    (BestPsShardCount, max over PS layers), then the codec given the
///    scheme (ResolveCompression semantics). The runtime's
///    ResolveSchemesSharded / ResolveCompression are thin wrappers over
///    this mode, so pre-planner trajectories are unchanged.
///  * joint mode (`joint = true`): per-layer argmin over the full
///    (scheme, codec) menu at every candidate shard count, on the byte
///    basis (nic_gbps == 0) or the time basis (nic_gbps > 0, adding
///    latency and encode-CPU terms), with dominance pruning: candidates
///    whose rows do not depend on the shard count are evaluated once per
///    layer and folded into every shard count's argmin, so the search is
///    exhaustive-equivalent at a fraction of the evaluations.
///
/// The search is pure closed-form arithmetic — no RNG, no clocks — so the
/// same request always yields a bitwise-identical plan (the PlanCache
/// memoization contract).
#ifndef POSEIDON_SRC_PLANNER_COMM_PLANNER_H_
#define POSEIDON_SRC_PLANNER_COMM_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/models/comm_cost.h"
#include "src/models/model_spec.h"
#include "src/planner/comm_plan.h"

namespace poseidon {

/// Scheme-policy constraint on the search (mirrors the runtime's
/// FcSyncPolicy, redeclared here so the planner does not depend on
/// src/poseidon; runtime_scheme.cc maps between the two). kAuto opens the
/// full menu — what `--plan=auto` and the replanner use.
enum class PlanPolicy {
  kAuto,              // full menu: PS (x codecs), SFB, ring, tree
  kDense,             // PS for every parameter layer
  kSfb,               // SFB for FC layers, PS for the rest
  kHybrid,            // Algorithm 1: PS vs SFB per FC layer
  kOneBit,            // 1-bit PS for FC layers
  kRingAllreduce,     // ring for every parameter layer
  kTreeAllreduce,     // tree for every parameter layer
  kHybridCollective,  // three-way BestSchemeExtended per layer
};

const char* PlanPolicyName(PlanPolicy policy);

/// Codec-policy constraint (mirrors PsCompressionPolicy): which wire codecs
/// the PS candidates may use. kAuto opens all of them.
enum class PlanCodecPolicy { kNone, kFp16, kInt8, kTopK, kAuto };

const char* PlanCodecPolicyName(PlanCodecPolicy policy);

/// Everything the plan depends on. Two requests with equal PlanRequestKey
/// digests get the same cached plan, so every field that can change the
/// answer must feed the key (PlanRequestKey / PlanRequestSignature).
struct PlanRequest {
  // --- model spec ---
  std::string model_name;
  std::vector<LayerSpec> layers;

  // --- cluster signature ---
  int num_workers = 1;
  int num_servers = 1;
  int batch_per_worker = 32;
  int64_t kv_pair_bytes = 2 * 1024 * 1024;
  /// Per-node NIC bandwidth. 0 = unknown: plan on the byte basis
  /// (minimize payload). > 0: plan on the time basis (wire + latency +
  /// encode CPU), which is what bandwidth-feedback re-planning varies.
  double nic_gbps = 0.0;
  double latency_s = 40e-6;
  /// Fraction of line rate the transport sustains (ClusterSpec mirror).
  double transport_efficiency = 0.6;
  /// CPU rate charged for codec encode/decode passes on the time basis.
  double cpu_flops = 50e9;
  std::string transport = "inproc";

  // --- knob gates ---
  /// > 0: the shard count is pinned (no search); PS rows are costed there.
  int ps_shards_pinned = 0;
  /// Search ceiling for the shard dimension when not pinned.
  int max_shards = 1;
  /// Shard count the paper-mode scheme pass evaluates at when the shard
  /// dimension is being searched (the legacy resolver costed schemes at the
  /// coordinator's configured count before picking shards; keeping it in the
  /// request keeps the wrapper bitwise-faithful).
  int paper_eval_shards = 1;
  /// Baseline staleness (pinned in paper mode and on the byte basis).
  int staleness = 0;
  /// Time-basis ceiling for the staleness dimension (>= staleness).
  int max_staleness = 0;
  /// Baseline egress batching (pinned in paper mode).
  bool batch_egress = false;
  /// Joint mode may turn batching on when it reduces framing/latency.
  bool allow_batching = false;
  /// Messages per batch frame the batching model assumes
  /// (EgressBatchOptions::max_batch_messages).
  int batch_max_messages = 16;

  // --- policy constraints ---
  /// Non-empty (paper mode only): per-layer schemes are pinned to these
  /// (size must match `layers`) and the scheme pass is skipped. This is how
  /// the ResolveCompression wrapper asks "codecs for *these* schemes" without
  /// re-deriving them.
  std::vector<PlannedScheme> pinned_schemes;
  PlanPolicy policy = PlanPolicy::kAuto;
  PlanCodecPolicy codec = PlanCodecPolicy::kNone;
  double topk_density = 0.01;
  int64_t compression_min_floats = kCompressionMinFloats;

  // --- search mode ---
  bool joint = false;
};

/// 128-bit request digest: the PlanCache key. Cheap to compute (a few mixes
/// per layer, no string assembly) so a cache hit costs a map lookup, not a
/// re-serialization.
struct PlanKey {
  uint64_t hi = 0;
  uint64_t lo = 0;
  bool operator==(const PlanKey& other) const {
    return hi == other.hi && lo == other.lo;
  }
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& key) const {
    return static_cast<size_t>(key.hi ^ (key.lo * 0x9e3779b97f4a7c15ULL));
  }
};

PlanKey PlanRequestKey(const PlanRequest& request);

/// Canonical human-readable signature (stored in CommPlan::signature; see
/// docs/PLANNER.md "Cache key derivation" for the format).
std::string PlanRequestSignature(const PlanRequest& request);

/// Cold search: runs the configured mode and returns the finished plan
/// (hash filled in). Deterministic; pure function of the request.
CommPlan PlanComm(const PlanRequest& request);

/// Convenience request builder for benches: full joint search over the given
/// model and symmetric cluster (every node a worker + colocated server).
/// `nic_gbps = 0` plans on the byte basis.
PlanRequest JointAutoRequest(const ModelSpec& model, int num_nodes, double nic_gbps,
                             int max_shards, double topk_density = 0.01,
                             int64_t compression_min_floats = kCompressionMinFloats);

/// The pre-planner hand-picked default for the same shape: paper mode,
/// Algorithm-1 hybrid policy, one shard, raw fp32 — the baseline the
/// "planned never costs more predicted bytes" acceptance gate compares
/// against.
PlanRequest PaperDefaultRequest(const ModelSpec& model, int num_nodes,
                                double nic_gbps = 0.0);

}  // namespace poseidon

#endif  // POSEIDON_SRC_PLANNER_COMM_PLANNER_H_

// Extension experiment: training under an imperfect network and worker
// failures (the fault model mirroring src/transport's live fault fabric;
// docs/FAULT_TOLERANCE.md).
//
// Part 1 sweeps wire loss rate x staleness on VGG19 over the protocol
// simulator. The modeled link layer retransmits, so loss inflates every
// message to 1/(1-p) expected transmissions plus p/(1-p)*RTO expected extra
// latency — time and bytes, never data. Expected shape: iteration time grows
// monotonically with loss; staleness hides part of the added sync tail
// exactly as it hides stragglers, so the SSP rows degrade more gently.
// Self-checks: iter time is monotone in loss and never exceeds the
// closed-form worst case (everything on the wire inflated by 1/(1-p), plus
// the full per-layer retransmit latency on every pipelined hop).
//
// Part 2 sweeps the crash-recovery cost model: detection timeout x restart
// cost x staleness. One failure episode stalls the cluster for
// detect + restart + replay(one iteration) minus what the SSP bound absorbs
// (survivors run s clocks ahead before blocking on the dead worker); the
// table reports the stall and the throughput retained at a given failure
// rate. Self-checked against the closed form computed independently here.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/models/zoo.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

void CheckClose(double got, double want, const char* what) {
  const double scale = std::max(1.0, std::abs(want));
  CHECK_LT(std::abs(got - want) / scale, 1e-6)
      << what << ": got " << got << ", want " << want;
}

void LossSweepPart(int nodes, double gbps, const std::vector<double>& losses,
                   const std::vector<int>& staleness) {
  const ModelSpec model = ModelByName("vgg19").value();
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = gbps;

  std::printf("Loss-rate sweep: %s, %d nodes @ %.0f GbE (Caffe engine)\n",
              model.name.c_str(), nodes, gbps);
  TextTable table({"system", "loss", "iter_ms", "vs clean", "E[tx/msg]"});
  for (int stale : staleness) {
    SystemConfig system = ShardedPsSystem(/*shards=*/2, stale);
    system.loss_rate = 0.0;
    const SimResult clean = RunProtocolSimulation(model, system, cluster, Engine::kCaffe);
    double previous = clean.iter_time_s;
    for (double loss : losses) {
      system.loss_rate = loss;
      const SimResult result =
          loss == 0.0 ? clean : RunProtocolSimulation(model, system, cluster, Engine::kCaffe);
      CheckClose(result.expected_transmissions, 1.0 / (1.0 - loss), "E[tx] closed form");
      // Monotone in loss: a lossier wire can never speed an iteration up.
      CHECK_GE(result.iter_time_s, previous - 1e-12)
          << system.name << ": iteration time fell when loss rose to " << loss;
      previous = result.iter_time_s;
      table.AddRow({system.name, TextTable::Num(loss, 4),
                    TextTable::Num(result.iter_time_s * 1e3, 2),
                    TextTable::Num(result.iter_time_s / clean.iter_time_s, 3),
                    TextTable::Num(result.expected_transmissions, 3)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("%s\n",
              FormatLossAblation("Loss ablation", model, ShardedPsSystem(2, 0), nodes,
                                 gbps, Engine::kCaffe, losses)
                  .c_str());
}

void RecoverySweepPart(int nodes, double gbps, const std::vector<double>& detect_ms,
                       const std::vector<double>& restart_ms,
                       const std::vector<int>& staleness) {
  const ModelSpec model = ModelByName("vgg19").value();
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = gbps;

  // Throughput retained with one worker failure per kFailEveryIters
  // iterations (a deliberately harsh rate so small stalls stay visible).
  constexpr double kFailEveryIters = 1000.0;

  std::printf("Crash-recovery cost model: %s, %d nodes @ %.0f GbE; one failure per %.0f "
              "iterations\n",
              model.name.c_str(), nodes, gbps, kFailEveryIters);
  TextTable table({"s", "detect_ms", "restart_ms", "iter_ms", "stall_ms", "retained"});
  for (int stale : staleness) {
    for (double detect : detect_ms) {
      for (double restart : restart_ms) {
        SystemConfig system = ShardedPsSystem(/*shards=*/2, stale);
        system.detect_timeout_s = detect * 1e-3;
        system.restart_s = restart * 1e-3;
        const SimResult result =
            RunProtocolSimulation(model, system, cluster, Engine::kCaffe);

        // Closed form, computed independently of Collect(): the episode is
        // detect + restart + one replay iteration, minus min(episode,
        // s * iter) absorbed by the staleness bound.
        const double outage = detect * 1e-3 + restart * 1e-3 + result.iter_time_s;
        const double absorbed =
            std::min(outage, static_cast<double>(stale) * result.iter_time_s);
        CheckClose(result.recovery_stall_s, outage - absorbed, "recovery stall");

        const double retained = kFailEveryIters * result.iter_time_s /
                                (kFailEveryIters * result.iter_time_s +
                                 result.recovery_stall_s);
        table.AddRow({std::to_string(stale), TextTable::Num(detect, 0),
                      TextTable::Num(restart, 0),
                      TextTable::Num(result.iter_time_s * 1e3, 2),
                      TextTable::Num(result.recovery_stall_s * 1e3, 1),
                      TextTable::Num(retained, 4)});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  const int nodes = args.FirstNodeOr(8);
  const double gbps = args.FirstGbpsOr(10.0);
  const std::vector<double> losses =
      args.FaultLossOr({0.0, 0.001, 0.01, 0.05});
  const std::vector<double> detect_ms = args.FaultDetectMsOr({50.0, 250.0, 1000.0});
  const std::vector<double> restart_ms = args.FaultRestartMsOr({100.0, 1000.0});
  const std::vector<int> staleness =
      args.fast ? std::vector<int>{0, 1} : std::vector<int>{0, 1, 3};

  poseidon::InitBenchTelemetry(args);
  poseidon::LossSweepPart(nodes, gbps, losses, staleness);
  poseidon::RecoverySweepPart(nodes, gbps, detect_ms, restart_ms, staleness);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

#include "src/common/rng.h"

#include <cmath>

#include "src/common/logging.h"

namespace poseidon {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  // xoshiro256** step.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0ull - bound) % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::NextUniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

float Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-12) {
    u1 = NextDouble();
  }
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = static_cast<float>(radius * std::sin(angle));
  has_cached_gaussian_ = true;
  return static_cast<float>(radius * std::cos(angle));
}

Rng Rng::Split(uint64_t salt) const {
  // Mix the current state with the salt through SplitMix to seed the child.
  uint64_t mix = state_[0] ^ Rotl(state_[3], 13) ^ (salt * 0x9E3779B97F4A7C15ull);
  return Rng(SplitMix64(mix));
}

}  // namespace poseidon

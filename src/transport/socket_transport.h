/// \file
/// TCP / Unix-domain socket backend for the Transport seam: real OS
/// processes exchanging the exact docs/WIRE_FORMAT.md frames the in-process
/// bus accounts for.
///
/// Topology: a cluster is N processes, each hosting one or more bus nodes
/// (`node_owner[node]` = process index). Every process listens on one
/// endpoint (TCP loopback/host port, or a Unix socket path) and dials one
/// egress connection to every other process — a full mesh where, per peer,
///   * the dialed connection carries this process's egress only, fed by a
///     dedicated flusher thread that drains a deque with batched writev
///     (many records per syscall, never one write per message — the
///     userspace-networking idiom from SNIPPETS.md), and
///   * accepted connections carry ingress only, served by a single poll
///     thread (nonblocking accept + level-triggered poll, incremental
///     record reassembly) that hands complete data records to
///     MessageBus::DeliverWire and control records to the registered
///     handler.
///
/// Stream records: each record is [u32 body bytes][u8 version][u8 kind]
/// [u16 src process] + body. kData bodies are wire frames byte-for-byte;
/// the 8-byte record header is transport overhead outside the accounted
/// WireBytes, like an Ethernet preamble. kControl bodies are
/// [u16 opcode] + payload and carry the rendezvous protocol
/// (src/transport/cluster_launcher.h).
///
/// Lossy shim: when `options.shim.any()`, egress data records roll the same
/// seeded fault dice as the in-process fabric (drop + retransmit-after-RTO,
/// duplicate-after-lag, delay-with-overtaking) *at the record layer*, so
/// the PR-4 sequencer properties are exercised against genuinely reordered,
/// duplicated and retransmitted socket traffic. Control records are exempt,
/// mirroring the kShutdown exemption. Decisions are deterministic in
/// (seed, src process, dst process, record seq, attempt).
#ifndef POSEIDON_SRC_TRANSPORT_SOCKET_TRANSPORT_H_
#define POSEIDON_SRC_TRANSPORT_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/stats/fault_counters.h"
#include "src/transport/fault_injector.h"
#include "src/transport/transport.h"

namespace poseidon {

class MessageBus;

/// Where one process listens. `unix_path` non-empty selects an AF_UNIX
/// stream socket (host/port ignored); otherwise TCP on host:port.
struct SocketEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string unix_path;

  bool is_unix() const { return !unix_path.empty(); }
};

/// Record kinds on the byte stream.
enum class SocketRecordKind : uint8_t {
  kData = 0,     ///< body = one wire frame (message or batch)
  kControl = 1,  ///< body = u16 opcode + payload (rendezvous protocol)
};

/// Fixed stream overhead per record (u32 length, u8 version, u8 kind,
/// u16 src process).
inline constexpr int64_t kSocketRecordHeaderBytes = 8;
inline constexpr uint8_t kSocketRecordVersion = 1;

struct SocketTransportOptions {
  /// This process's index into `processes`.
  int self = 0;
  /// Listen endpoint per process, cluster-wide (every process gets the same
  /// table; rendezvous is just "everyone knows everyone's port").
  std::vector<SocketEndpoint> processes;
  /// Bus node id -> owning process index. Size = number of bus nodes.
  std::vector<int> node_owner;
  /// How long ConnectAll keeps retrying a refused peer before giving up
  /// (peers start in arbitrary order; refusal just means "not up yet").
  int connect_timeout_ms = 20000;
  /// Egress records per writev batch.
  int max_writev_records = 16;
  /// Upper bound on one record body; larger ingress records are a protocol
  /// error (guards the reassembly buffer against corrupt length prefixes).
  int64_t max_record_bytes = 256ll << 20;
  /// Lossy egress shim (record-level chaos); inert when !shim.any().
  FaultPlan shim;
};

/// Receives control-plane records: (source process, opcode, body after the
/// opcode). Runs on the poll thread — handlers must not block on ingress.
using SocketControlHandler =
    std::function<void(int src_process, uint16_t opcode,
                       const std::vector<uint8_t>& body)>;

class SocketTransport : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Must be set before Start (the poll thread reads it unsynchronized).
  void SetControlHandler(SocketControlHandler handler);

  /// Binds + listens on our endpoint and starts the ingress poll thread.
  /// Data records are delivered into `bus` (DeliverWire). When our endpoint
  /// has port 0 (TCP), the kernel picks one — see listen_port().
  Status Start(MessageBus* bus);

  /// Dials every other process, retrying refusals until connect_timeout_ms,
  /// and starts one egress flusher per peer. Call after every process has
  /// had Start() invoked (the launcher guarantees this by publishing the
  /// endpoint table only after binding all listeners).
  Status ConnectAll();

  /// The port we actually listen on (after Start; = endpoint port unless it
  /// was 0). Unix endpoints return 0.
  int listen_port() const { return listen_port_; }

  /// Stops flushers and the poll thread, closes every socket, unlinks our
  /// Unix path. Idempotent; called by the destructor.
  void Stop();

  /// Enqueues a control record to `dst_process` (reliable: exempt from the
  /// lossy shim). To self is delivered inline on the caller's thread.
  Status SendControl(int dst_process, uint16_t opcode,
                     std::vector<uint8_t> body = {});

  // Transport interface -----------------------------------------------------
  const char* name() const override;
  bool IsLocal(int node) const override;
  Status SendFrame(int src_node, int dst_node,
                   std::vector<uint8_t> frame) override;
  /// Drains every peer's egress deque *and* shim holdback (delayed /
  /// pending-retransmit records) to the socket.
  void Flush() override;

  // Introspection -----------------------------------------------------------
  int self() const { return options_.self; }
  int num_processes() const { return static_cast<int>(options_.processes.size()); }
  int64_t records_sent() const;
  int64_t records_received() const;
  int64_t bytes_sent() const;
  int64_t bytes_received() const;
  /// Counters of the record-level lossy shim (drops/retransmits/duplicates/
  /// delays it injected). All zero when the shim is off.
  FaultCountersSnapshot ShimCounters() const;

 private:
  /// One record held back by the shim: a delayed or duplicated copy
  /// (commit_only) or a scheduled retransmission of a dropped record.
  struct ShimItem {
    std::chrono::steady_clock::time_point due;
    uint64_t order = 0;
    std::vector<uint8_t> record;  // header + body, ready to write
    int64_t record_seq = 0;
    int attempt = 0;
    bool commit_only = false;
  };
  struct ShimItemLater {
    bool operator()(const ShimItem& a, const ShimItem& b) const {
      return a.due != b.due ? a.due > b.due : a.order > b.order;
    }
  };

  /// Egress state toward one peer process.
  struct Peer {
    int fd = -1;
    std::mutex mutex;
    std::condition_variable cv;       // wakes the flusher
    std::condition_variable idle_cv;  // signals Flush waiters
    std::deque<std::vector<uint8_t>> queue;  // records ready to write
    std::priority_queue<ShimItem, std::vector<ShimItem>, ShimItemLater> shim_queue;
    int64_t next_record_seq = 0;
    uint64_t shim_order = 0;
    bool stop = false;
    bool dead = false;  // write error: peer is gone
    int writing = 0;
    std::thread flusher;
  };

  /// Ingress reassembly state for one accepted connection.
  struct Ingress {
    int fd = -1;
    std::vector<uint8_t> buffer;
  };

  std::vector<uint8_t> BuildRecord(SocketRecordKind kind,
                                   const std::vector<uint8_t>& body) const;
  /// Applies the shim dice to a data record and enqueues it (or schedules
  /// it) on `peer`. `attempt` > 0 marks a retransmission.
  void EnqueueData(Peer& peer, int dst_process, std::vector<uint8_t> record,
                   int64_t record_seq, int attempt);
  void FlusherLoop(int peer_index);
  void PollLoop();
  /// Parses complete records out of `in.buffer`; returns false on a protocol
  /// error (connection is then dropped).
  bool DrainIngress(Ingress& in);
  void HandleRecord(uint8_t kind, uint16_t src_process, const uint8_t* body,
                    int64_t size);
  Status DialPeer(int peer_index);
  void WakeOnSelfPipe();

  const SocketTransportOptions options_;
  SocketControlHandler control_handler_;
  MessageBus* bus_ = nullptr;

  int listen_fd_ = -1;
  int listen_port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // poll-thread wakeup for Stop
  std::thread poll_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::vector<std::unique_ptr<Peer>> peers_;  // indexed by process, self unused
  std::unique_ptr<FaultInjector> shim_;       // null when shim is off

  std::atomic<int64_t> records_sent_{0};
  std::atomic<int64_t> records_received_{0};
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> bytes_received_{0};
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_SOCKET_TRANSPORT_H_

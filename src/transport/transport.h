/// \file
/// The backend seam under MessageBus: where wire frames go once a
/// destination is not in this process.
///
/// The bus owns everything protocol-shaped — routing, sequencing, batching,
/// rate limits, link accounting, fault injection — and a Transport owns only
/// the physical question "how does an encoded frame reach another process?".
/// Two backends exist:
///
///   * InProcessTransport (this header): every node is local, so no frame is
///     ever serialized. This is the bus's historical behaviour and stays the
///     fast reference backend for the chaos/property suites.
///   * SocketTransport (src/transport/socket_transport.h): nodes map onto OS
///     processes; frames from docs/WIRE_FORMAT.md travel length-prefixed
///     over TCP or Unix-domain stream sockets.
///
/// Contract: the bus calls SendFrame() with a fully encoded wire frame
/// (src local, dst remote per IsLocal) after it has done its own accounting
/// and sequencing; the transport delivers the same bytes to the destination
/// process, which hands them to its bus via MessageBus::DeliverWire().
/// Delivery is at-least-once in-order per connection (a lossy shim may
/// duplicate or reorder records — the bus's wire reorder buffer restores
/// exactly-once FIFO per stream). See docs/TRANSPORT.md.
#ifndef POSEIDON_SRC_TRANSPORT_TRANSPORT_H_
#define POSEIDON_SRC_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace poseidon {

/// Abstract frame carrier under the bus. Implementations must be
/// thread-safe: the bus calls SendFrame concurrently from sender threads and
/// batch flushers.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Backend name for logs, bench records and test parameterization
  /// ("inproc", "tcp", "unix").
  virtual const char* name() const = 0;

  /// True when `node`'s mailboxes live in this process, i.e. the bus should
  /// deliver directly instead of serializing. The answer must be constant
  /// for the lifetime of the transport (node placement is fixed at cluster
  /// construction).
  virtual bool IsLocal(int node) const = 0;

  /// Ships one encoded wire frame (message or batch) toward the process
  /// hosting `dst_node`. Enqueue-and-return: actual socket writes happen on
  /// the destination's egress flusher. Returns Unavailable once the peer
  /// connection is down or the transport stopped.
  virtual Status SendFrame(int src_node, int dst_node,
                           std::vector<uint8_t> frame) = 0;

  /// Blocks until every frame accepted so far has left this process (written
  /// to the socket, or no-op for in-process). Cross-process *delivery* is
  /// not awaited — only the local egress is drained.
  virtual void Flush() {}
};

/// The degenerate backend: one process, every node local. Exists so code can
/// be written against the Transport seam uniformly; the bus never actually
/// calls SendFrame on it.
class InProcessTransport : public Transport {
 public:
  const char* name() const override { return "inproc"; }
  bool IsLocal(int /*node*/) const override { return true; }
  Status SendFrame(int /*src_node*/, int /*dst_node*/,
                   std::vector<uint8_t> /*frame*/) override {
    return InternalError("in-process transport has no wire");
  }
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_TRANSPORT_H_

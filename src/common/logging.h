// Minimal streaming logger with severity levels and CHECK macros.
//
// Follows the usual glog-style contract: LOG(INFO) << ...; CHECK(cond) << ...;
// FATAL severity and failed CHECKs abort the process after flushing the
// message, which is the appropriate failure mode for programming errors in a
// systems library (fail fast, no exception unwinding across module
// boundaries).
#ifndef POSEIDON_SRC_COMMON_LOGGING_H_
#define POSEIDON_SRC_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace poseidon {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum severity; messages below it are dropped. Defaults to kInfo.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// One log statement. Accumulates a message and emits it (with file:line and a
// timestamp) on destruction. Not for direct use; see the LOG/CHECK macros.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace poseidon

#define POSEIDON_LOG_INTERNAL(severity) \
  ::poseidon::LogMessage(__FILE__, __LINE__, ::poseidon::LogSeverity::severity).stream()

#define LOG(severity) POSEIDON_LOG_INTERNAL(k##severity)

#define LOG_IF(severity, cond) \
  (!(cond)) ? (void)0 : ::poseidon::LogMessageVoidify() & LOG(severity)

#define CHECK(cond) \
  LOG_IF(Fatal, !(cond)) << "Check failed: " #cond " "

#define CHECK_OP(op, a, b) CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK_OP(==, a, b)
#define CHECK_NE(a, b) CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) CHECK_OP(<, a, b)
#define CHECK_LE(a, b) CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) CHECK_OP(>, a, b)
#define CHECK_GE(a, b) CHECK_OP(>=, a, b)
#define CHECK_NOTNULL(p) CHECK((p) != nullptr)

#endif  // POSEIDON_SRC_COMMON_LOGGING_H_

// Plain-text table / CSV emitter used by every benchmark harness so that the
// regenerated tables and figure series have a uniform, diffable format.
#ifndef POSEIDON_SRC_COMMON_TABLE_H_
#define POSEIDON_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace poseidon {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  // Renders with aligned columns and a header rule.
  std::string ToString() const;

  // RFC-4180-ish CSV (no quoting needed for our cell contents).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_COMMON_TABLE_H_

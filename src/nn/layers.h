// Concrete layers: fully connected, 2-D convolution (im2col + GEMM), ReLU,
// 2x2 max pooling, and a residual block composite for small ResNets.
#ifndef POSEIDON_SRC_NN_LAYERS_H_
#define POSEIDON_SRC_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/layer.h"
#include "src/tensor/sufficient_factor.h"
#include "src/tensor/tensor.h"

namespace poseidon {

// y = x W^T + b with W in [M, N] (paper orientation: M outputs, N inputs).
// Accepts 2-D [K, N] input or 4-D input flattened to [K, C*H*W].
class FullyConnectedLayer : public Layer {
 public:
  FullyConnectedLayer(std::string name, int64_t m, int64_t n, Rng& rng);

  LayerType type() const override { return LayerType::kFC; }
  int64_t fc_m() const override { return m_; }
  int64_t fc_n() const override { return n_; }

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<ParamBlock> Params() override;

  // Sufficient factors of the last backward pass: the per-sample error and
  // input matrices whose outer product is the weight gradient (§2.1). Valid
  // until the next Forward.
  SufficientFactors LastSufficientFactors() const;

  Tensor& weight() { return weight_; }
  Tensor& weight_grad() { return weight_grad_; }

 private:
  int64_t m_;
  int64_t n_;
  Tensor weight_;       // [M, N]
  Tensor bias_;         // [M]
  Tensor weight_grad_;  // [M, N]
  Tensor bias_grad_;    // [M]
  Tensor last_input_;   // [K, N]
  Tensor last_errors_;  // [K, M], set by Backward
  std::vector<int64_t> last_in_shape_;  // original (possibly 4-D) input shape
};

// Direct 2-D convolution in NCHW via im2col + GEMM. Square kernels, square
// stride, symmetric zero padding.
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(std::string name, int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
              int64_t pad, Rng& rng);

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<ParamBlock> Params() override;

 private:
  int64_t OutDim(int64_t in_hw) const { return (in_hw + 2 * pad_ - kernel_) / stride_ + 1; }
  void Im2Col(const Tensor& in, Tensor* cols) const;
  void Col2Im(const Tensor& cols, Tensor* grad_in) const;

  int64_t in_c_;
  int64_t out_c_;
  int64_t kernel_;
  int64_t stride_;
  int64_t pad_;
  Tensor weight_;       // [out_c, in_c * k * k]
  Tensor bias_;         // [out_c]
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor last_cols_;    // [K * OH * OW, in_c * k * k]
  std::vector<int64_t> last_in_shape_;
};

class ReluLayer : public Layer {
 public:
  explicit ReluLayer(std::string name) : Layer(std::move(name)) {}

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  Tensor mask_;  // 1 where input > 0
};

// 2x2 max pooling with stride 2 over NCHW (even spatial dims required).
class MaxPool2Layer : public Layer {
 public:
  explicit MaxPool2Layer(std::string name) : Layer(std::move(name)) {}

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;

 private:
  Tensor argmax_;  // flat input index of each pooled maximum
  std::vector<int64_t> last_in_shape_;
};

// out = inner(x) + x, for a same-shape inner stack (pre-activation style
// residual used by the small-ResNet convergence experiments).
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, std::vector<std::unique_ptr<Layer>> inner);

  void Forward(const Tensor& in, Tensor* out) override;
  void Backward(const Tensor& grad_out, Tensor* grad_in) override;
  std::vector<ParamBlock> Params() override;

 private:
  std::vector<std::unique_ptr<Layer>> inner_;
  std::vector<Tensor> activations_;  // inputs to each inner layer
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_NN_LAYERS_H_

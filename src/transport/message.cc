#include "src/transport/message.h"

namespace poseidon {

int64_t Message::WireBytes() const {
  int64_t bytes = 32;  // header
  if (chunks != nullptr) {
    for (const ChunkPayload& chunk : *chunks) {
      bytes += 16 + static_cast<int64_t>(chunk.data.size()) * 4;
    }
  }
  if (sf != nullptr) {
    bytes += sf->WireBytes();
  }
  if (bias_grad != nullptr) {
    bytes += static_cast<int64_t>(bias_grad->size()) * 4;
  }
  if (onebit != nullptr) {
    bytes += onebit->WireBytes();
  }
  return bytes;
}

}  // namespace poseidon

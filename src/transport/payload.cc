#include "src/transport/payload.h"

#include <atomic>

#include "src/common/logging.h"

namespace poseidon {
namespace {

std::atomic<int64_t> g_copied_floats{0};
std::atomic<int64_t> g_copies{0};

}  // namespace

void WireCopyStats::Add(int64_t floats) {
  g_copied_floats.fetch_add(floats, std::memory_order_relaxed);
  g_copies.fetch_add(1, std::memory_order_relaxed);
}

int64_t WireCopyStats::Floats() { return g_copied_floats.load(std::memory_order_relaxed); }

int64_t WireCopyStats::Copies() { return g_copies.load(std::memory_order_relaxed); }

void WireCopyStats::Reset() {
  g_copied_floats.store(0, std::memory_order_relaxed);
  g_copies.store(0, std::memory_order_relaxed);
}

Payload Payload::Allocate(int64_t floats) {
  CHECK_GE(floats, 0);
  Payload payload;
  payload.slab_ = std::make_shared<std::vector<float>>(static_cast<size_t>(floats), 0.0f);
  return payload;
}

Payload Payload::FromVector(std::vector<float> values) {
  Payload payload;
  payload.slab_ = std::make_shared<std::vector<float>>(std::move(values));
  return payload;
}

int64_t Payload::size() const {
  return slab_ ? static_cast<int64_t>(slab_->size()) : 0;
}

float* Payload::data() {
  CHECK(valid());
  return slab_->data();
}

const float* Payload::data() const {
  CHECK(valid());
  return slab_->data();
}

PayloadView Payload::View() const { return View(0, size()); }

PayloadView Payload::View(int64_t offset, int64_t length) const {
  CHECK(valid());
  CHECK_GE(offset, 0);
  CHECK_GE(length, 0);
  CHECK_LE(offset + length, size());
  PayloadView view;
  view.slab_ = slab_;
  view.offset_ = offset;
  view.length_ = length;
  return view;
}

const float* PayloadView::data() const {
  CHECK(valid());
  return slab_->data() + offset_;
}

PayloadView PayloadView::Sub(int64_t offset, int64_t length) const {
  CHECK(valid());
  CHECK_GE(offset, 0);
  CHECK_GE(length, 0);
  CHECK_LE(offset + length, length_);
  PayloadView view;
  view.slab_ = slab_;
  view.offset_ = offset_ + offset;
  view.length_ = length;
  return view;
}

}  // namespace poseidon

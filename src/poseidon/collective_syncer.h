/// \file
/// The collective synchronization path (ring / tree allreduce) behind the
/// paper's per-layer Move/Send/Receive syncer API:
///   MoveOut — flattens the layer's gradients into a host staging buffer;
///   Send    — non-blocking: injects this worker's first collective message
///             (ring chunk or tree leaf contribution), so WFBP overlap is
///             preserved exactly as for the PS/SFB paths;
///   Receive — runs the remaining hops to completion, then averages and
///             applies the aggregate with the worker-local optimizer.
/// Like SFB, the optimizer is replicated: every worker folds the identical
/// bitwise sum (collectives guarantee a rank-independent association order)
/// through an identical SGD step, so replicas never diverge.
#ifndef POSEIDON_SRC_POSEIDON_COLLECTIVE_SYNCER_H_
#define POSEIDON_SRC_POSEIDON_COLLECTIVE_SYNCER_H_

#include <vector>

#include "src/collective/collective.h"
#include "src/nn/layer.h"
#include "src/nn/sgd.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/flat_params.h"
#include "src/transport/bus.h"

namespace poseidon {

class CollectiveSyncer {
 public:
  CollectiveSyncer(int worker, int layer_index, CollectiveAlgo algo,
                   const Coordinator& coordinator, MessageBus* bus, Layer* layer,
                   SgdOptimizer* local_optimizer);

  CollectiveSyncer(const CollectiveSyncer&) = delete;
  CollectiveSyncer& operator=(const CollectiveSyncer&) = delete;

  void MoveOut();
  void Send(int64_t iter);
  void Receive(int64_t iter);

  const CollectiveComm& comm() const { return comm_; }

 private:
  const int layer_index_;
  const CollectiveAlgo algo_;
  const int num_workers_;
  Layer* layer_;
  SgdOptimizer* local_optimizer_;
  FlatParamView view_;
  CollectiveComm comm_;
  std::vector<float> staged_grads_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_COLLECTIVE_SYNCER_H_

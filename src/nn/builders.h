// Trainable network builders for the convergence experiments.
#ifndef POSEIDON_SRC_NN_BUILDERS_H_
#define POSEIDON_SRC_NN_BUILDERS_H_

#include <memory>

#include "src/common/rng.h"
#include "src/nn/network.h"

namespace poseidon {

// Caffe's "CIFAR-10 quick" (Fig 11's workload): conv5x5(32)-pool-relu,
// conv5x5(32)-relu-pool, conv5x5(64)-relu-pool, fc(64), fc(classes).
// `image_hw` lets the benchmarks run a reduced-resolution variant (the full
// 32x32 network is the paper's exact configuration; 16x16 keeps the default
// bench run short on one CPU core).
std::unique_ptr<Network> BuildCifarQuick(int channels, int image_hw, int classes, Rng& rng);

// A small pre-activation ResNet for Fig 9b's epochs-to-error experiment:
// conv3x3(width) followed by `blocks` residual blocks and a linear head.
std::unique_ptr<Network> BuildSmallResNet(int channels, int image_hw, int classes, int width,
                                          int blocks, Rng& rng);

// A plain MLP (FC-only, all layers SFB-eligible) used by unit tests and the
// quickstart example.
std::unique_ptr<Network> BuildMlp(int input_dim, int hidden_dim, int hidden_layers,
                                  int classes, Rng& rng);

}  // namespace poseidon

#endif  // POSEIDON_SRC_NN_BUILDERS_H_

#include "src/planner/comm_plan.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace poseidon {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvBytes(uint64_t h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvString(uint64_t h, const std::string& s) {
  h = FnvBytes(h, s.data(), s.size());
  return FnvBytes(h, "\0", 1);  // length delimiter: "ab","c" != "a","bc"
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvU64(h, bits);
}

// Canonical double formatting: %.17g round-trips every IEEE double, so a
// regenerated plan reproduces its JSON byte for byte.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

StatusOr<GradCompression> CompressionFromName(const std::string& name) {
  if (name == "none") return GradCompression::kNone;
  if (name == "fp16") return GradCompression::kFp16;
  if (name == "int8") return GradCompression::kInt8;
  if (name == "topk") return GradCompression::kTopK;
  return InvalidArgumentError("unknown compression '" + name + "'");
}

StatusOr<PlannedScheme> SchemeFromName(const std::string& name) {
  if (name == "none") return PlannedScheme::kNone;
  if (name == "PS") return PlannedScheme::kPS;
  if (name == "SFB") return PlannedScheme::kSFB;
  if (name == "Ring") return PlannedScheme::kRing;
  if (name == "Tree") return PlannedScheme::kTree;
  if (name == "1bit") return PlannedScheme::kOneBit;
  return InvalidArgumentError("unknown scheme '" + name + "'");
}

// Minimal scanner for the plan's own canonical JSON (flat keys plus one
// "layers" array of flat objects). Not a general JSON parser; Find* report
// NotFound so FromJson rejects foreign or truncated input instead of
// guessing.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  /// The raw value token after `"key":` at or after `from` (object-local
  /// search when `until` bounds the enclosing object).
  StatusOr<std::string> Raw(const std::string& key, size_t from = 0,
                            size_t until = std::string::npos) const {
    const std::string needle = "\"" + key + "\"";
    size_t pos = text_.find(needle, from);
    if (pos == std::string::npos || (until != std::string::npos && pos >= until)) {
      return NotFoundError("missing key '" + key + "'");
    }
    pos = text_.find(':', pos + needle.size());
    if (pos == std::string::npos) {
      return InvalidArgumentError("no ':' after key '" + key + "'");
    }
    ++pos;
    while (pos < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos]))) {
      ++pos;
    }
    if (pos >= text_.size()) {
      return InvalidArgumentError("truncated value for key '" + key + "'");
    }
    if (text_[pos] == '"') {
      std::string out;
      for (size_t i = pos + 1; i < text_.size(); ++i) {
        if (text_[i] == '\\' && i + 1 < text_.size()) {
          out.push_back(text_[++i]);
          continue;
        }
        if (text_[i] == '"') {
          return out;
        }
        out.push_back(text_[i]);
      }
      return InvalidArgumentError("unterminated string for key '" + key + "'");
    }
    size_t end = pos;
    while (end < text_.size() && text_[end] != ',' && text_[end] != '}' &&
           text_[end] != ']' && !std::isspace(static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    return text_.substr(pos, end - pos);
  }

  StatusOr<double> Number(const std::string& key, size_t from = 0,
                          size_t until = std::string::npos) const {
    StatusOr<std::string> raw = Raw(key, from, until);
    if (!raw.ok()) {
      return raw.status();
    }
    char* end = nullptr;
    const double v = std::strtod(raw->c_str(), &end);
    if (end == raw->c_str()) {
      return InvalidArgumentError("non-numeric value for key '" + key + "'");
    }
    return v;
  }

  const std::string& text() const { return text_; }

 private:
  const std::string& text_;
};

}  // namespace

const char* PlannedSchemeName(PlannedScheme scheme) {
  switch (scheme) {
    case PlannedScheme::kNone:
      return "none";
    case PlannedScheme::kPS:
      return "PS";
    case PlannedScheme::kSFB:
      return "SFB";
    case PlannedScheme::kRing:
      return "Ring";
    case PlannedScheme::kTree:
      return "Tree";
    case PlannedScheme::kOneBit:
      return "1bit";
  }
  return "?";
}

uint64_t CommPlan::ComputeHash() const {
  uint64_t h = kFnvOffset;
  h = FnvString(h, model);
  h = FnvString(h, signature);
  h = FnvU64(h, static_cast<uint64_t>(ps_shards));
  h = FnvU64(h, static_cast<uint64_t>(staleness));
  h = FnvU64(h, batch_egress ? 1 : 0);
  h = FnvDouble(h, topk_density);
  h = FnvU64(h, layers.size());
  for (const PlanLayerChoice& choice : layers) {
    h = FnvString(h, choice.layer);
    h = FnvU64(h, static_cast<uint64_t>(choice.scheme));
    h = FnvU64(h, static_cast<uint64_t>(choice.compression));
    h = FnvDouble(h, choice.predicted_bytes);
  }
  h = FnvDouble(h, predicted_wire_bytes);
  h = FnvDouble(h, predicted_framing_bytes);
  h = FnvDouble(h, predicted_msgs);
  h = FnvDouble(h, predicted_time_s);
  h = FnvDouble(h, planned_gbps);
  return h;
}

std::string CommPlan::ToJson() const {
  std::string out;
  out += "{\n";
  out += "  \"plan\": \"comm_plan\",\n";
  out += "  \"model\": \"";
  AppendEscaped(&out, model);
  out += "\",\n";
  out += "  \"signature\": \"";
  AppendEscaped(&out, signature);
  out += "\",\n";
  char hash_hex[32];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016" PRIx64, hash);
  out += "  \"hash\": \"";
  out += hash_hex;
  out += "\",\n";
  out += "  \"ps_shards\": " + std::to_string(ps_shards) + ",\n";
  out += "  \"staleness\": " + std::to_string(staleness) + ",\n";
  out += "  \"batch_egress\": " + std::string(batch_egress ? "true" : "false") + ",\n";
  out += "  \"topk_density\": " + FormatDouble(topk_density) + ",\n";
  out += "  \"predicted_wire_bytes\": " + FormatDouble(predicted_wire_bytes) + ",\n";
  out += "  \"predicted_framing_bytes\": " + FormatDouble(predicted_framing_bytes) + ",\n";
  out += "  \"predicted_msgs\": " + FormatDouble(predicted_msgs) + ",\n";
  out += "  \"predicted_time_s\": " + FormatDouble(predicted_time_s) + ",\n";
  out += "  \"planned_gbps\": " + FormatDouble(planned_gbps) + ",\n";
  out += "  \"layers\": [\n";
  for (size_t i = 0; i < layers.size(); ++i) {
    const PlanLayerChoice& choice = layers[i];
    out += "    {\"name\": \"";
    AppendEscaped(&out, choice.layer);
    out += "\", \"scheme\": \"";
    out += PlannedSchemeName(choice.scheme);
    out += "\", \"compression\": \"";
    out += GradCompressionName(choice.compression);
    out += "\", \"bytes\": " + FormatDouble(choice.predicted_bytes) + "}";
    out += i + 1 < layers.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

StatusOr<CommPlan> CommPlan::FromJson(const std::string& json) {
  JsonScanner scan(json);
  StatusOr<std::string> kind = scan.Raw("plan");
  if (!kind.ok()) {
    return kind.status();
  }
  if (*kind != "comm_plan") {
    return InvalidArgumentError("not a comm_plan dump (plan = '" + *kind + "')");
  }
  CommPlan plan;
#define POSEIDON_PLAN_FIELD(expr, target)     \
  do {                                        \
    auto value_ = (expr);                     \
    if (!value_.ok()) return value_.status(); \
    target = *value_;                         \
  } while (false)
  POSEIDON_PLAN_FIELD(scan.Raw("model"), plan.model);
  POSEIDON_PLAN_FIELD(scan.Raw("signature"), plan.signature);
  std::string hash_hex;
  POSEIDON_PLAN_FIELD(scan.Raw("hash"), hash_hex);
  plan.hash = std::strtoull(hash_hex.c_str(), nullptr, 16);
  double value = 0.0;
  POSEIDON_PLAN_FIELD(scan.Number("ps_shards"), value);
  plan.ps_shards = static_cast<int>(value);
  POSEIDON_PLAN_FIELD(scan.Number("staleness"), value);
  plan.staleness = static_cast<int>(value);
  std::string flag;
  POSEIDON_PLAN_FIELD(scan.Raw("batch_egress"), flag);
  plan.batch_egress = flag == "true";
  POSEIDON_PLAN_FIELD(scan.Number("topk_density"), plan.topk_density);
  POSEIDON_PLAN_FIELD(scan.Number("predicted_wire_bytes"), plan.predicted_wire_bytes);
  POSEIDON_PLAN_FIELD(scan.Number("predicted_framing_bytes"),
                      plan.predicted_framing_bytes);
  POSEIDON_PLAN_FIELD(scan.Number("predicted_msgs"), plan.predicted_msgs);
  POSEIDON_PLAN_FIELD(scan.Number("predicted_time_s"), plan.predicted_time_s);
  POSEIDON_PLAN_FIELD(scan.Number("planned_gbps"), plan.planned_gbps);

  const size_t layers_pos = json.find("\"layers\"");
  if (layers_pos == std::string::npos) {
    return InvalidArgumentError("missing layers array");
  }
  size_t cursor = json.find('[', layers_pos);
  if (cursor == std::string::npos) {
    return InvalidArgumentError("malformed layers array");
  }
  const size_t layers_end = json.find(']', cursor);
  if (layers_end == std::string::npos) {
    return InvalidArgumentError("unterminated layers array");
  }
  while (true) {
    const size_t open = json.find('{', cursor);
    if (open == std::string::npos || open > layers_end) {
      break;
    }
    const size_t close = json.find('}', open);
    if (close == std::string::npos || close > layers_end) {
      return InvalidArgumentError("unterminated layer object");
    }
    PlanLayerChoice choice;
    POSEIDON_PLAN_FIELD(scan.Raw("name", open, close), choice.layer);
    std::string scheme_name;
    POSEIDON_PLAN_FIELD(scan.Raw("scheme", open, close), scheme_name);
    POSEIDON_PLAN_FIELD(SchemeFromName(scheme_name), choice.scheme);
    std::string codec_name;
    POSEIDON_PLAN_FIELD(scan.Raw("compression", open, close), codec_name);
    POSEIDON_PLAN_FIELD(CompressionFromName(codec_name), choice.compression);
    POSEIDON_PLAN_FIELD(scan.Number("bytes", open, close), choice.predicted_bytes);
    plan.layers.push_back(std::move(choice));
    cursor = close + 1;
  }
#undef POSEIDON_PLAN_FIELD
  if (plan.hash != plan.ComputeHash()) {
    return InvalidArgumentError("plan content hash mismatch (edited or corrupt dump)");
  }
  return plan;
}

Status CommPlan::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return UnavailableError("cannot open '" + path + "' for writing");
  }
  out << ToJson();
  out.flush();
  if (!out) {
    return UnavailableError("short write to '" + path + "'");
  }
  return Status::Ok();
}

StatusOr<CommPlan> CommPlan::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open plan file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str());
}

std::string CommPlan::Summary() const {
  std::ostringstream out;
  out << "plan " << model << " (shards=" << ps_shards << " staleness=" << staleness
      << " batch_egress=" << (batch_egress ? 1 : 0) << " bytes/iter="
      << predicted_wire_bytes << ")\n";
  for (const PlanLayerChoice& choice : layers) {
    if (choice.scheme == PlannedScheme::kNone) {
      continue;
    }
    out << "  " << choice.layer << ": " << PlannedSchemeName(choice.scheme);
    if (choice.compression != GradCompression::kNone) {
      out << "+" << GradCompressionName(choice.compression);
    }
    out << " (" << choice.predicted_bytes << " B)\n";
  }
  return out.str();
}

const PlanLayerChoice* CommPlan::Find(const std::string& layer_name) const {
  for (const PlanLayerChoice& choice : layers) {
    if (choice.layer == layer_name) {
      return &choice;
    }
  }
  return nullptr;
}

}  // namespace poseidon

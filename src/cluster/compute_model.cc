#include "src/cluster/compute_model.h"

#include "src/common/logging.h"

namespace poseidon {
namespace {

// Titan X sustained throughput for DL kernels; used only for models whose
// single-node rate the paper does not report.
constexpr double kEffectiveGpuFlops = 2.2e12;

struct Calibration {
  const char* model;
  Engine engine;
  double images_per_sec;
};

// Paper §5.1: single-node throughputs of the unmodified engines.
constexpr Calibration kCalibrations[] = {
    {"googlenet", Engine::kCaffe, 257.0},
    {"vgg19", Engine::kCaffe, 35.5},
    {"vgg19-22k", Engine::kCaffe, 34.6},
    {"inception-v3", Engine::kTensorFlow, 43.2},
    {"vgg19", Engine::kTensorFlow, 38.5},
    {"vgg19-22k", Engine::kTensorFlow, 34.8},
    // ResNet-152 single-GPU rate consistent with Fig 9a's batch-32 setup.
    {"resnet-152", Engine::kTensorFlow, 37.0},
    {"resnet-152", Engine::kCaffe, 35.0},
};

}  // namespace

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kCaffe:
      return "caffe";
    case Engine::kTensorFlow:
      return "tensorflow";
  }
  return "?";
}

double SingleNodeImagesPerSec(const ModelSpec& model, Engine engine) {
  for (const Calibration& cal : kCalibrations) {
    if (model.name == cal.model && engine == cal.engine) {
      return cal.images_per_sec;
    }
  }
  // FLOPS fallback: forward + backward = 3x forward FLOPs.
  const double flops_per_image = 3.0 * model.total_fwd_flops();
  CHECK_GT(flops_per_image, 0.0);
  return kEffectiveGpuFlops / flops_per_image;
}

double ComputeTimings::total_fwd_s() const {
  double total = 0.0;
  for (const auto& layer : layers) {
    total += layer.fwd_s;
  }
  return total;
}

double ComputeTimings::total_bwd_s() const {
  double total = 0.0;
  for (const auto& layer : layers) {
    total += layer.bwd_s;
  }
  return total;
}

ComputeTimings MakeComputeTimings(const ModelSpec& model, Engine engine, int batch) {
  CHECK_GT(batch, 0);
  const double images_per_sec = SingleNodeImagesPerSec(model, engine);
  const double batch_time = static_cast<double>(batch) / images_per_sec;

  const double total_flops = 3.0 * model.total_fwd_flops();  // fwd + 2x for bwd
  CHECK_GT(total_flops, 0.0);

  ComputeTimings timings;
  timings.batch_time_s = batch_time;
  timings.layers.reserve(model.layers.size());
  for (const auto& layer : model.layers) {
    LayerTiming t;
    t.fwd_s = batch_time * (layer.fwd_flops / total_flops);
    t.bwd_s = 2.0 * t.fwd_s;
    timings.layers.push_back(t);
  }
  return timings;
}

}  // namespace poseidon

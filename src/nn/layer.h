// Trainable layer interface for the CPU neural-network library.
//
// The library exists to run the paper's *statistical* experiments for real
// (Fig 11's 1-bit-quantization comparison, Fig 9b's epochs-to-error
// invariance): exact forward/backward math on CPU, mini-batch tensors in
// NCHW layout, one Layer object per network position. Layers own their
// parameters and gradient buffers; optimizers and communication schemes
// access them through ParamBlock views.
#ifndef POSEIDON_SRC_NN_LAYER_H_
#define POSEIDON_SRC_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/models/model_spec.h"
#include "src/tensor/tensor.h"

namespace poseidon {

// Non-owning view of one parameter tensor and its gradient.
struct ParamBlock {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }

  // Layer classification for HybComm decisions; FC layers additionally
  // report their (M, N) matrix shape through fc_m()/fc_n().
  virtual LayerType type() const { return LayerType::kConv; }
  virtual int64_t fc_m() const { return 0; }
  virtual int64_t fc_n() const { return 0; }

  // Computes the output for `in` (leading dimension = batch). The layer may
  // cache whatever it needs for Backward.
  virtual void Forward(const Tensor& in, Tensor* out) = 0;

  // Given d(loss)/d(out), accumulates parameter gradients (overwriting; the
  // trainer aggregates across workers, not across calls) and computes
  // d(loss)/d(in).
  virtual void Backward(const Tensor& grad_out, Tensor* grad_in) = 0;

  // Parameter views; empty for stateless layers.
  virtual std::vector<ParamBlock> Params() { return {}; }

  int64_t num_params() {
    int64_t total = 0;
    for (const ParamBlock& p : Params()) {
      total += p.value->size();
    }
    return total;
  }

 private:
  std::string name_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_NN_LAYER_H_

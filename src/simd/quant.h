/// \file
/// Internal per-element quantization primitives shared by the simd backends
/// and the codec layer: a vectorizable integer hash for deterministic
/// stochastic rounding, and the exact fp16 pack/unpack formulas every
/// backend must reproduce bit-for-bit (docs/COMPRESSION.md).
///
/// Everything here is pure integer arithmetic (or a single exact float
/// subtract in the subnormal-decode path), so scalar, AVX2 and NEON
/// translations agree bitwise by construction.
#ifndef POSEIDON_SRC_SIMD_QUANT_H_
#define POSEIDON_SRC_SIMD_QUANT_H_

#include <cstdint>
#include <cstring>

namespace poseidon {
namespace simd {

/// int8 frames carry one fp32 scale per this many elements
/// (src/transport/codec.cc). Lives here so the cost model and the codec
/// agree on the per-chunk overhead.
constexpr int64_t kInt8ChunkSize = 256;

namespace internal {

/// 32-bit finalizer-style mixer (xor-shift + odd-constant multiplies, the
/// lowbias32 recipe). Only uses ops with exact vector equivalents
/// (mullo/srli/xor), so the vector backends hash 8 indices per block and get
/// the same bits as the scalar reference. The (seed, index) pair fully
/// determines the rounding noise: seeding per (layer, clock) makes every
/// replica's stochastic rounding identical (docs/COMPRESSION.md).
inline uint32_t MixBits(uint32_t seed, uint32_t index) {
  uint32_t h = index ^ seed;
  h ^= h >> 16;
  h *= 0x21f0aaadu;
  h ^= h >> 15;
  h *= 0x735a2d97u;
  h ^= h >> 15;
  return h;
}

inline uint32_t FloatBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float BitsFloat(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

/// Packs fp32 bits into an IEEE binary16 pattern with the encoder's reduced
/// range: magnitudes below the smallest normal half (2^-14) flush to signed
/// zero (the codec's error feedback re-injects them next clock), magnitudes
/// at or above 2^16 — including inf/NaN bit patterns — clamp to the largest
/// finite half (65504). `rnd13` in [0, 0x1FFF] is added below the half
/// mantissa before truncation: 0 truncates, a uniform hash performs
/// stochastic rounding, 0xFFF + (bit 13 of the magnitude) rounds to
/// nearest-even. Branchless-equivalent order (clamp-SR-overflow, then the
/// range overrides) — the vector backends mirror it exactly.
inline uint16_t Fp16Pack(uint32_t u, uint32_t rnd13) {
  const uint32_t sign = (u >> 16) & 0x8000u;
  const uint32_t absu = u & 0x7FFFFFFFu;
  uint32_t h = ((absu + rnd13) - 0x38000000u) >> 13;
  if (h > 0x7BFFu) h = 0x7BFFu;
  if (absu >= 0x47800000u) h = 0x7BFFu;
  if (absu < 0x38800000u) h = 0;
  return static_cast<uint16_t>(sign | h);
}

/// The 13-bit round-to-nearest-even increment for magnitude bits `absu`.
inline uint32_t Fp16RnIncrement(uint32_t absu) { return 0xFFFu + ((absu >> 13) & 1u); }

/// Exact IEEE binary16 -> binary32 (all 65536 patterns, including the
/// subnormals and inf/NaN the encoder never emits but a hostile frame can
/// carry). The subnormal branch renormalizes with one float subtract that is
/// exact (both operands share the 2^-14 binade), so every backend rounds
/// identically.
inline float Fp16Unpack(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  uint32_t o = static_cast<uint32_t>(half & 0x7FFFu) << 13;
  const uint32_t exp = o & 0x0F800000u;
  o += 112u << 23;  // bias adjust 127 - 15
  if (exp == 0x0F800000u) {
    o += 112u << 23;  // inf/NaN: push the exponent to 255
  } else if (exp == 0) {
    o += 1u << 23;  // zero/subnormal: renormalize via exact subtract
    o = FloatBits(BitsFloat(o) - BitsFloat(0x38800000u));
  }
  return BitsFloat(sign | o);
}

}  // namespace internal
}  // namespace simd
}  // namespace poseidon

#endif  // POSEIDON_SRC_SIMD_QUANT_H_

// Regenerates Figure 10: per-node network traffic (gigabits per iteration)
// when training VGG19 on 8 nodes with the TensorFlow engine, comparing
// TF+WFBP (balanced KV-pair PS), Project Adam's SF-push/matrix-pull, and
// Poseidon.
//
// Expected shape (paper): TF-WFBP is balanced but heavy; Adam is highly
// imbalanced — the shards owning FC layers must broadcast full matrices
// (bursty hot nodes); Poseidon is both balanced and light. Adam lands around
// 5x speedup on 8 nodes vs Poseidon's near-linear.
#include <cstdio>

#include "src/cluster/protocol_sim.h"
#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

void Run(const BenchArgs& args) {
  const int nodes = args.FirstNodeOr(8);
  const double gbps = args.FirstGbpsOr(40.0);
  std::printf("Fig 10: per-node egress traffic, VGG19 on %d nodes (Gb per iteration)\n\n",
              nodes);
  const ModelSpec model = MakeVgg19();
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = gbps;

  std::vector<std::string> header = {"system"};
  for (int n = 0; n < nodes; ++n) {
    header.push_back("n" + std::to_string(n));
  }
  header.push_back("max/min");
  header.push_back("speedup");
  TextTable table(std::move(header));
  for (const SystemConfig& system : {TfPlusWfbp(), AdamSystem(), PoseidonSystem()}) {
    const SimResult result =
        RunProtocolSimulation(model, system, cluster, Engine::kTensorFlow);
    std::vector<std::string> row = {system.name};
    double max = 0.0;
    double min = 1e30;
    for (double gb : result.tx_gbits_per_iter) {
      row.push_back(TextTable::Num(gb, 2));
      max = std::max(max, gb);
      min = std::min(min, gb);
    }
    row.push_back(TextTable::Num(max / std::max(min, 1e-9), 1));
    row.push_back(TextTable::Num(result.speedup, 1));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

// Tests for the in-process message bus and rate limiter.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/transport/bus.h"
#include "src/transport/rate_limiter.h"

namespace poseidon {
namespace {

Message MakeChunkMessage(int src, int dst, int port, int floats) {
  Message m;
  m.type = MessageType::kGradPush;
  m.from = Address{src, kSyncerPortBase};
  m.to = Address{dst, port};
  m.layer = 0;
  m.worker = src;
  m.chunks = std::make_shared<std::vector<ChunkPayload>>();
  ChunkPayload chunk;
  chunk.data.assign(static_cast<size_t>(floats), 1.0f);
  m.chunks->push_back(std::move(chunk));
  return m;
}

TEST(BusTest, DeliversToRegisteredMailbox) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 4)).ok());
  auto received = mailbox->Pop();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->worker, 0);
  EXPECT_EQ((*received->chunks)[0].data.size(), 4u);
}

TEST(BusTest, UnknownDestinationIsNotFound) {
  MessageBus bus(2);
  const Status status = bus.Send(MakeChunkMessage(0, 1, 999, 4));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(BusTest, TrafficAccountingSkipsLocal) {
  MessageBus bus(2);
  bus.Register(Address{0, kServerPort});
  bus.Register(Address{1, kServerPort});
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 0, kServerPort, 100)).ok());  // local
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 100)).ok());  // remote
  EXPECT_EQ(bus.TxBytes(1), 0);
  const int64_t remote = bus.TxBytes(0);
  EXPECT_GT(remote, 400);  // 100 floats + headers
  bus.ResetTraffic();
  EXPECT_EQ(bus.TxBytes(0), 0);
}

TEST(BusTest, RegisterIsIdempotent) {
  MessageBus bus(1);
  auto a = bus.Register(Address{0, 5});
  auto b = bus.Register(Address{0, 5});
  EXPECT_EQ(a.get(), b.get());
}

TEST(BusTest, CloseAllWakesReceivers) {
  MessageBus bus(1);
  auto mailbox = bus.Register(Address{0, kServerPort});
  std::thread waiter([&] { EXPECT_FALSE(mailbox->Pop().has_value()); });
  bus.CloseAll();
  waiter.join();
}

TEST(BusTest, SharedPayloadNotCopiedPerReceiver) {
  MessageBus bus(3);
  auto m1 = bus.Register(Address{1, kServerPort});
  auto m2 = bus.Register(Address{2, kServerPort});
  Message base = MakeChunkMessage(0, 1, kServerPort, 8);
  Message copy = base;
  copy.to = Address{2, kServerPort};
  EXPECT_TRUE(bus.Send(base).ok());
  EXPECT_TRUE(bus.Send(copy).ok());
  auto r1 = m1->Pop();
  auto r2 = m2->Pop();
  EXPECT_EQ(r1->chunks.get(), r2->chunks.get());  // same shared buffer
}

TEST(MessageTest, WireBytesCountsPayloads) {
  Message m = MakeChunkMessage(0, 1, kServerPort, 100);
  EXPECT_GE(m.WireBytes(), 400);
  EXPECT_LT(m.WireBytes(), 500);
}

TEST(RateLimiterTest, ThrottlesToConfiguredRate) {
  RateLimiter limiter(1e6, /*burst_bytes=*/1e4);  // 1 MB/s
  const auto start = std::chrono::steady_clock::now();
  limiter.Acquire(50000);  // ~50 ms at 1 MB/s (minus the initial burst)
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(elapsed, 0.025);
  EXPECT_LT(elapsed, 0.5);
}

TEST(RateLimiterTest, SmallSendsWithinBurstAreFree) {
  RateLimiter limiter(1e6, /*burst_bytes=*/1e5);
  const auto start = std::chrono::steady_clock::now();
  limiter.Acquire(1000);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed, 0.01);
}

TEST(BusTest, EgressLimitSlowsRemoteSends) {
  MessageBus bus(2);
  bus.Register(Address{1, kServerPort});
  bus.SetEgressLimit(0, 1e6);  // 1 MB/s
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 100000)).ok());  // ~400 KB
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(elapsed, 0.1);
}

}  // namespace
}  // namespace poseidon

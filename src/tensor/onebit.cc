#include "src/tensor/onebit.h"

#include <cmath>
#include <vector>

#include "src/simd/vec.h"

namespace poseidon {

int64_t OneBitEncoded::WireBytes() const {
  return static_cast<int64_t>(bits.size()) * 4 +
         static_cast<int64_t>(positive_level.size() + negative_level.size()) * 4 +
         2 * 8;  // dimensions
}

OneBitEncoded OneBitQuantizer::Encode(const Tensor& gradient) {
  CHECK_EQ(gradient.ndim(), 2);
  if (residual_.empty()) {
    residual_ = Tensor::Zeros(gradient.shape());
  }
  CHECK(residual_.SameShape(gradient));

  const int64_t rows = gradient.dim(0);
  const int64_t cols = gradient.dim(1);
  OneBitEncoded encoded;
  encoded.rows = rows;
  encoded.cols = cols;
  encoded.bits.assign(static_cast<size_t>((rows * cols + 31) / 32), 0u);
  encoded.positive_level.assign(static_cast<size_t>(cols), 0.0f);
  encoded.negative_level.assign(static_cast<size_t>(cols), 0.0f);

  // Pass 1 (simd kernel): sign extraction plus per-column sums and counts of
  // each sign class for the effective values q = gradient + residual. The
  // kernel accumulates each column strictly in row order, so its result is
  // identical at every dispatch level.
  std::vector<double> pos_sum(static_cast<size_t>(cols), 0.0);
  std::vector<double> neg_sum(static_cast<size_t>(cols), 0.0);
  std::vector<int32_t> pos_count(static_cast<size_t>(cols), 0);
  std::vector<int32_t> neg_count(static_cast<size_t>(cols), 0);
  simd::OneBitEncodeStats(gradient.data(), residual_.data(), rows, cols,
                          encoded.bits.data(), pos_sum.data(), neg_sum.data(),
                          pos_count.data(), neg_count.data());
  for (int64_t c = 0; c < cols; ++c) {
    const size_t ci = static_cast<size_t>(c);
    encoded.positive_level[ci] =
        pos_count[ci] > 0 ? static_cast<float>(pos_sum[ci] / pos_count[ci]) : 0.0f;
    encoded.negative_level[ci] =
        neg_count[ci] > 0 ? static_cast<float>(neg_sum[ci] / neg_count[ci]) : 0.0f;
  }

  // Pass 2 (simd kernel): new residual = effective value - reconstruction.
  simd::OneBitResidualUpdate(gradient.data(), rows, cols, encoded.bits.data(),
                             encoded.positive_level.data(),
                             encoded.negative_level.data(), residual_.data());
  return encoded;
}

Tensor OneBitQuantizer::Decode(const OneBitEncoded& encoded) {
  Tensor out({encoded.rows, encoded.cols});
  simd::OneBitDecode(encoded.bits.data(), encoded.positive_level.data(),
                     encoded.negative_level.data(), encoded.rows, encoded.cols,
                     out.data());
  return out;
}

}  // namespace poseidon

#include "src/sim/fabric.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"

namespace poseidon {

NetworkFabric::NetworkFabric(Simulator* sim, int num_nodes, FabricConfig config)
    : sim_(sim), config_(config) {
  CHECK_NOTNULL(sim);
  CHECK_GT(num_nodes, 0);
  CHECK_GT(config_.egress_bytes_per_sec, 0.0);
  CHECK_GT(config_.ingress_bytes_per_sec, 0.0);
  CHECK_GT(config_.chunk_bytes, 0);
  egress_free_at_.assign(num_nodes, 0.0);
  ingress_free_at_.assign(num_nodes, 0.0);
  stats_.tx_bytes.assign(num_nodes, 0.0);
  stats_.rx_bytes.assign(num_nodes, 0.0);
  stats_.egress_busy_s.assign(num_nodes, 0.0);
  stats_.ingress_busy_s.assign(num_nodes, 0.0);
}

void NetworkFabric::ResetStats() {
  const int n = num_nodes();
  stats_ = FabricStats{};
  stats_.tx_bytes.assign(n, 0.0);
  stats_.rx_bytes.assign(n, 0.0);
  stats_.egress_busy_s.assign(n, 0.0);
  stats_.ingress_busy_s.assign(n, 0.0);
}

void NetworkFabric::Send(int src, int dst, double bytes, DeliveredFn on_delivered) {
  CHECK_GE(src, 0);
  CHECK_LT(src, num_nodes());
  CHECK_GE(dst, 0);
  CHECK_LT(dst, num_nodes());
  CHECK_GE(bytes, 0.0);
  ++stats_.messages;

  if (src == dst) {
    sim_->Schedule(config_.local_latency_s, std::move(on_delivered));
    return;
  }

  stats_.tx_bytes[src] += bytes;
  stats_.rx_bytes[dst] += bytes;

  if (bytes == 0.0) {
    sim_->Schedule(config_.latency_s, std::move(on_delivered));
    return;
  }

  const int64_t num_chunks =
      std::max<int64_t>(1, static_cast<int64_t>((bytes + config_.chunk_bytes - 1) /
                                                static_cast<double>(config_.chunk_bytes)));
  stats_.chunks += num_chunks;
  const double chunk_bytes = bytes / static_cast<double>(num_chunks);
  const double egress_dur = chunk_bytes / config_.egress_bytes_per_sec;
  const double ingress_dur = chunk_bytes / config_.ingress_bytes_per_sec;

  // Chunks reserve the egress link back-to-back now (FIFO), then each chunk
  // arrives at the receiver after the propagation latency and queues FIFO on
  // the ingress link. The callback fires when the final chunk finishes its
  // ingress service.
  auto remaining = std::make_shared<int64_t>(num_chunks);
  auto callback = std::make_shared<DeliveredFn>(std::move(on_delivered));
  for (int64_t c = 0; c < num_chunks; ++c) {
    const double egress_start = std::max(egress_free_at_[src], sim_->Now());
    const double egress_done = egress_start + egress_dur;
    egress_free_at_[src] = egress_done;
    stats_.egress_busy_s[src] += egress_dur;

    const double arrival = egress_done + config_.latency_s;
    sim_->ScheduleAt(arrival, [this, dst, ingress_dur, remaining, callback] {
      const double start = std::max(ingress_free_at_[dst], sim_->Now());
      const double done = start + ingress_dur;
      ingress_free_at_[dst] = done;
      stats_.ingress_busy_s[dst] += ingress_dur;
      sim_->ScheduleAt(done, [remaining, callback] {
        if (--*remaining == 0) {
          (*callback)();
        }
      });
    });
  }
}

}  // namespace poseidon

#include "src/transport/cluster_launcher.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/common/logging.h"

namespace poseidon {

StatusOr<int> PickFreeTcpPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // kernel picks
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("bind :0: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("getsockname: " + err);
  }
  ::close(fd);
  return static_cast<int>(ntohs(addr.sin_port));
}

std::string MakeUnixSocketPath(const std::string& dir, const std::string& tag,
                               int index) {
  std::string path = dir + "/" + tag + "." + std::to_string(::getpid()) + "." +
                     std::to_string(index) + ".sock";
  ::unlink(path.c_str());
  return path;
}

StatusOr<ChildProcess> SpawnChild(const std::string& binary,
                                  const std::vector<std::string>& args,
                                  const std::string& stderr_path) {
  // Build argv before forking; only async-signal-safe calls after fork().
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return InternalError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    const int fd = ::open(stderr_path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDERR_FILENO);
      if (fd != STDERR_FILENO) ::close(fd);
    }
    ::execv(binary.c_str(), argv.data());
    // Only reached when execv itself failed.
    ::dprintf(STDERR_FILENO, "execv %s: %s\n", binary.c_str(),
              std::strerror(errno));
    ::_exit(127);
  }
  ChildProcess child;
  child.pid = pid;
  child.stderr_path = stderr_path;
  return child;
}

StatusOr<int> WaitChild(const ChildProcess& child, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t got = ::waitpid(child.pid, &status, WNOHANG);
    if (got < 0) {
      return InternalError(std::string("waitpid: ") + std::strerror(errno));
    }
    if (got == child.pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
      return InternalError("waitpid: child neither exited nor signalled");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return DeadlineExceededError("child " + std::to_string(child.pid) +
                                   " still running after " +
                                   std::to_string(timeout_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void KillChild(const ChildProcess& child) {
  if (child.pid <= 0) return;
  ::kill(child.pid, SIGKILL);
  int status = 0;
  ::waitpid(child.pid, &status, 0);
}

std::string ReadFileTail(const std::string& path, int64_t max_bytes) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  const long start = size > max_bytes ? size - max_bytes : 0;
  std::fseek(f, start, SEEK_SET);
  std::string out(static_cast<size_t>(size - start), '\0');
  const size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

// -------------------------------------------------------------- rendezvous

ClusterControl::ClusterControl(SocketTransport* transport, int num_processes)
    : transport_(transport), num_processes_(num_processes) {
  CHECK(transport_ != nullptr);
  CHECK_GE(num_processes_, 1);
  transport_->SetControlHandler(
      [this](int src, uint16_t opcode, const std::vector<uint8_t>& body) {
        (void)body;
        OnControl(src, opcode);
      });
}

void ClusterControl::OnControl(int src_process, uint16_t opcode) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (opcode) {
    case kOpReady:
      ready_.insert(src_process);
      break;
    case kOpGo:
      go_ = true;
      break;
    case kOpWorkerDone:
      done_.insert(src_process);
      break;
    case kOpShutdown:
      shutdown_ = true;
      break;
    default:
      LOG(Warning) << "cluster control: unknown opcode " << opcode
                   << " from process " << src_process;
      break;
  }
  cv_.notify_all();
}

Status ClusterControl::Rendezvous(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const Status sent = transport_->SendControl(0, kOpReady, {});
  if (!sent.ok()) return sent;
  if (transport_->self() == 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_until(lock, deadline, [this] {
          return static_cast<int>(ready_.size()) == num_processes_;
        })) {
      return DeadlineExceededError(
          "rendezvous: " + std::to_string(ready_.size()) + "/" +
          std::to_string(num_processes_) + " processes ready");
    }
    lock.unlock();
    for (int p = 0; p < num_processes_; ++p) {
      const Status go = transport_->SendControl(p, kOpGo, {});
      if (!go.ok()) return go;
    }
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!cv_.wait_until(lock, deadline, [this] { return go_; })) {
    return DeadlineExceededError("rendezvous: no GO from process 0");
  }
  return Status::Ok();
}

Status ClusterControl::SignalWorkersDone() {
  return transport_->SendControl(0, kOpWorkerDone, {});
}

Status ClusterControl::AwaitWorkersAndBroadcastShutdown(
    const std::set<int>& worker_processes, int timeout_ms) {
  CHECK_EQ(transport_->self(), 0);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_until(lock, deadline, [this, &worker_processes] {
          for (int p : worker_processes) {
            if (done_.count(p) == 0) return false;
          }
          return true;
        })) {
      return DeadlineExceededError(
          "shutdown: " + std::to_string(done_.size()) + "/" +
          std::to_string(worker_processes.size()) + " worker processes done");
    }
  }
  for (int p = 0; p < num_processes_; ++p) {
    const Status down = transport_->SendControl(p, kOpShutdown, {});
    if (!down.ok()) return down;
  }
  return Status::Ok();
}

Status ClusterControl::AwaitShutdown(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!cv_.wait_until(lock,
                      std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms),
                      [this] { return shutdown_; })) {
    return DeadlineExceededError("no SHUTDOWN from process 0");
  }
  return Status::Ok();
}

}  // namespace poseidon

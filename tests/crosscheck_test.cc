// Cross-validation between the two independent implementations of the
// paper's communication arithmetic: the analytic Table 1 cost model
// (src/models/comm_cost) and the byte-level traffic the protocol simulator
// actually pushes through the fabric. For single-layer models the simulated
// per-node egress must equal the closed-form expressions.
#include <gtest/gtest.h>

#include "src/cluster/protocol_sim.h"
#include "src/common/units.h"
#include "src/models/comm_cost.h"
#include "src/models/model_spec.h"

namespace poseidon {
namespace {

// One-FC-layer model so the traffic is exactly one layer's worth. A token
// conv layer is prepended because a realistic network always has one (and it
// gives WFBP something to overlap); its bytes are subtracted analytically.
ModelSpec SingleFcModel(int64_t m, int64_t n, int batch) {
  ModelSpec model;
  model.name = "fc-only";
  model.dataset = "synthetic";
  model.default_batch = batch;
  model.layers = {ConvLayer("stem", 3, 8, 3, 32), FcLayer("fc", m, n)};
  return model;
}

struct Case {
  int64_t m;
  int64_t n;
  int batch;
  int nodes;
};

class CrossCheckTest : public ::testing::TestWithParam<Case> {};

double TotalTxBytes(const SimResult& result) {
  double total = 0.0;
  for (double gb : result.tx_gbits_per_iter) {
    total += gb * 1e9 / 8.0;
  }
  return total;
}

double ConvPsBytes(const ModelSpec& model, int nodes) {
  // Dense PS for the stem conv layer: push + pull of (P-1)/P of the layer
  // from every node.
  const double dense = static_cast<double>(model.layers[0].param_bytes());
  return 2.0 * dense * (nodes - 1) / nodes * nodes;  // cluster-wide
}

TEST_P(CrossCheckTest, DensePsMatchesTable1) {
  const Case param = GetParam();
  const ModelSpec model = SingleFcModel(param.m, param.n, param.batch);
  ClusterSpec cluster;
  cluster.num_nodes = param.nodes;
  const SimResult result =
      RunProtocolSimulation(model, CaffePlusWfbp(), cluster, Engine::kCaffe, param.batch);

  // Table 1 colocated row counts send+receive; egress is half of it. The FC
  // layer also carries its bias (M floats) through the PS.
  CommCostQuery q{param.m, param.n, param.batch, param.nodes, param.nodes};
  const double fc_floats = PsColocatedFloats(q) / 2.0 +
                           static_cast<double>(param.m) * (param.nodes - 1) / param.nodes;
  const double expected = fc_floats * 4.0 * param.nodes + ConvPsBytes(model, param.nodes);
  EXPECT_NEAR(TotalTxBytes(result), expected, 0.01 * expected);
}

TEST_P(CrossCheckTest, SfbMatchesTable1) {
  const Case param = GetParam();
  const ModelSpec model = SingleFcModel(param.m, param.n, param.batch);
  ClusterSpec cluster;
  cluster.num_nodes = param.nodes;
  const SimResult result =
      RunProtocolSimulation(model, SfbOnlySystem(), cluster, Engine::kCaffe, param.batch);

  CommCostQuery q{param.m, param.n, param.batch, param.nodes, param.nodes};
  // Table 1's SFB row counts send+receive; egress is half.
  const double fc_floats = SfbWorkerFloats(q) / 2.0;
  const double expected = fc_floats * 4.0 * param.nodes + ConvPsBytes(model, param.nodes);
  EXPECT_NEAR(TotalTxBytes(result), expected, 0.01 * expected);
}

TEST_P(CrossCheckTest, AdamHotNodeMatchesTable1) {
  const Case param = GetParam();
  const ModelSpec model = SingleFcModel(param.m, param.n, param.batch);
  ClusterSpec cluster;
  cluster.num_nodes = param.nodes;
  const SimResult result =
      RunProtocolSimulation(model, AdamSystem(), cluster, Engine::kCaffe, param.batch);

  // The FC owner broadcasts the full matrix to P-1 remote workers.
  const double mn_bytes =
      static_cast<double>(param.m) * static_cast<double>(param.n) * 4.0;
  const double owner_fc_egress = mn_bytes * (param.nodes - 1);
  const double max_tx =
      *std::max_element(result.tx_gbits_per_iter.begin(), result.tx_gbits_per_iter.end()) *
      1e9 / 8.0;
  // Owner also participates in the conv PS; bound within a few percent.
  EXPECT_GT(max_tx, owner_fc_egress);
  EXPECT_LT(max_tx, owner_fc_egress * 1.05 + ConvPsBytes(model, param.nodes));
}

INSTANTIATE_TEST_SUITE_P(Grid, CrossCheckTest,
                         ::testing::Values(Case{512, 1024, 16, 4}, Case{4096, 4096, 32, 8},
                                           Case{1000, 1024, 128, 16},
                                           Case{2048, 512, 8, 2}));

TEST(CrossCheckTest, HybridPicksTheCheaperMeasuredTraffic) {
  // End-to-end: for every grid point, HybComm's measured traffic must equal
  // the min of the PS-only and SFB-only measured traffic (within jitter).
  for (const Case& param : {Case{4096, 4096, 32, 8}, Case{1000, 1024, 128, 16}}) {
    const ModelSpec model = SingleFcModel(param.m, param.n, param.batch);
    ClusterSpec cluster;
    cluster.num_nodes = param.nodes;
    const double ps = TotalTxBytes(
        RunProtocolSimulation(model, CaffePlusWfbp(), cluster, Engine::kCaffe, param.batch));
    const double sfb = TotalTxBytes(
        RunProtocolSimulation(model, SfbOnlySystem(), cluster, Engine::kCaffe, param.batch));
    const double hybrid = TotalTxBytes(
        RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe, param.batch));
    EXPECT_NEAR(hybrid, std::min(ps, sfb), 0.02 * std::min(ps, sfb))
        << "m=" << param.m << " n=" << param.n;
  }
}

}  // namespace
}  // namespace poseidon

/// \file
/// Process-visible counters for the transport's fault-injection fabric.
///
/// Every injected fault increments exactly one counter at the moment the
/// fault is committed (not when it is decided), so after FlushFaults() the
/// counters describe what the network actually did to the byte stream. The
/// chaos tests assert on them both positively ("this run really did see
/// duplicates") and negatively ("nothing was deduplicated in a clean run").
#ifndef POSEIDON_SRC_STATS_FAULT_COUNTERS_H_
#define POSEIDON_SRC_STATS_FAULT_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace poseidon {

/// Plain-value snapshot of FaultCounters, safe to copy and compare.
struct FaultCountersSnapshot {
  int64_t drops = 0;            ///< wire transmissions lost (later retransmitted)
  int64_t retransmits = 0;      ///< link-layer redeliveries of dropped messages
  int64_t duplicates = 0;       ///< extra copies injected on the wire
  int64_t delays = 0;           ///< messages held back by a delay fault
  int64_t partition_holds = 0;  ///< messages parked behind an active partition
  int64_t deduped = 0;          ///< receiver-side duplicate suppressions
  int64_t reordered = 0;        ///< arrivals buffered because an earlier seq was missing
  int64_t dropped_replies = 0;  ///< sends to an endpoint that died (crash window)

  int64_t TotalInjected() const {
    return drops + duplicates + delays + partition_holds;
  }
};

/// Monotonic atomic counters owned by one FaultInjector (one per MessageBus).
class FaultCounters {
 public:
  void AddDrop() { drops_.fetch_add(1, std::memory_order_relaxed); }
  void AddRetransmit() { retransmits_.fetch_add(1, std::memory_order_relaxed); }
  void AddDuplicate() { duplicates_.fetch_add(1, std::memory_order_relaxed); }
  void AddDelay() { delays_.fetch_add(1, std::memory_order_relaxed); }
  void AddPartitionHold() { partition_holds_.fetch_add(1, std::memory_order_relaxed); }
  void AddDeduped() { deduped_.fetch_add(1, std::memory_order_relaxed); }
  void AddReordered() { reordered_.fetch_add(1, std::memory_order_relaxed); }
  void AddDroppedReply() { dropped_replies_.fetch_add(1, std::memory_order_relaxed); }

  FaultCountersSnapshot Snapshot() const {
    FaultCountersSnapshot snap;
    snap.drops = drops_.load(std::memory_order_relaxed);
    snap.retransmits = retransmits_.load(std::memory_order_relaxed);
    snap.duplicates = duplicates_.load(std::memory_order_relaxed);
    snap.delays = delays_.load(std::memory_order_relaxed);
    snap.partition_holds = partition_holds_.load(std::memory_order_relaxed);
    snap.deduped = deduped_.load(std::memory_order_relaxed);
    snap.reordered = reordered_.load(std::memory_order_relaxed);
    snap.dropped_replies = dropped_replies_.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  std::atomic<int64_t> drops_{0};
  std::atomic<int64_t> retransmits_{0};
  std::atomic<int64_t> duplicates_{0};
  std::atomic<int64_t> delays_{0};
  std::atomic<int64_t> partition_holds_{0};
  std::atomic<int64_t> deduped_{0};
  std::atomic<int64_t> reordered_{0};
  std::atomic<int64_t> dropped_replies_{0};
};

/// One-line human-readable rendering for bench output and test failures.
std::string FormatFaultCounters(const FaultCountersSnapshot& snap);

}  // namespace poseidon

#endif  // POSEIDON_SRC_STATS_FAULT_COUNTERS_H_

#include "src/transport/message.h"

namespace poseidon {

int64_t Message::PayloadBytes() const {
  int64_t bytes = 0;
  for (const WireChunk& chunk : chunks) {
    bytes += kWireChunkHeaderBytes + chunk.view.size() * 4;
  }
  return bytes;
}

int64_t Message::WireBytes() const { return kWireFrameBytes + PayloadBytes(); }

}  // namespace poseidon

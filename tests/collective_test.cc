// Transport-level tests for the collective primitives: ring reduce-scatter /
// all-gather and binary-tree reduce-broadcast over the MessageBus must
// produce sums that are bitwise identical across all ranks and bitwise equal
// to a serial reduction in the collective's deterministic association order,
// for 1-8 workers and sizes that do not divide evenly into chunks.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/collective/collective.h"
#include "src/collective/topology.h"
#include "src/transport/bus.h"

namespace poseidon {
namespace {

// Deterministic, rank- and index-dependent values with enough float
// round-off structure to catch association-order bugs.
std::vector<float> MakeInput(int rank, int64_t size) {
  std::vector<float> data(static_cast<size_t>(size));
  for (int64_t i = 0; i < size; ++i) {
    const float x = 0.001f * static_cast<float>((rank * 7919 + i * 104729) % 1000) - 0.5f;
    data[static_cast<size_t>(i)] = x + 1e-4f * static_cast<float>(rank) * (i % 7);
  }
  return data;
}

// Runs one allreduce on `world` threads; returns every rank's result buffer.
std::vector<std::vector<float>> RunAllreduce(CollectiveAlgo algo, int world, int64_t size,
                                             int64_t seq = 0,
                                             std::vector<int64_t>* floats_sent = nullptr) {
  MessageBus bus(world);
  std::vector<std::unique_ptr<CollectiveComm>> comms;
  for (int r = 0; r < world; ++r) {
    comms.push_back(std::make_unique<CollectiveComm>(&bus, r, world, /*tag=*/0));
  }
  std::vector<std::vector<float>> data(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    data[static_cast<size_t>(r)] = MakeInput(r, size);
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      comms[static_cast<size_t>(r)]->Allreduce(algo, seq, &data[static_cast<size_t>(r)]);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (floats_sent != nullptr) {
    floats_sent->clear();
    for (int r = 0; r < world; ++r) {
      floats_sent->push_back(comms[static_cast<size_t>(r)]->floats_sent());
    }
  }
  return data;
}

// The ring's serial mirror: chunk c folds inputs in ring order starting at
// rank c (the rank that injects the chunk at step 0).
std::vector<float> SerialRingSum(int world, int64_t size) {
  std::vector<std::vector<float>> inputs;
  for (int r = 0; r < world; ++r) {
    inputs.push_back(MakeInput(r, size));
  }
  std::vector<float> out(static_cast<size_t>(size), 0.0f);
  for (int c = 0; c < world; ++c) {
    const ChunkRange range = CollectiveChunk(size, world, c);
    for (int64_t i = range.offset; i < range.offset + range.length; ++i) {
      float acc = inputs[static_cast<size_t>(c)][static_cast<size_t>(i)];
      for (int k = 1; k < world; ++k) {
        acc += inputs[static_cast<size_t>((c + k) % world)][static_cast<size_t>(i)];
      }
      out[static_cast<size_t>(i)] = acc;
    }
  }
  return out;
}

// The tree's serial mirror: each node's subtree sum is own + left + right,
// folded in that order.
std::vector<float> SerialTreeSum(int node, int world, int64_t size) {
  std::vector<float> acc = MakeInput(node, size);
  for (int child : TreeChildren(node, world)) {
    const std::vector<float> sub = SerialTreeSum(child, world, size);
    for (int64_t i = 0; i < size; ++i) {
      acc[static_cast<size_t>(i)] += sub[static_cast<size_t>(i)];
    }
  }
  return acc;
}

TEST(ChunkTest, CoversExactlyOnce) {
  for (int64_t total : {0, 1, 5, 7, 16, 1000}) {
    for (int world : {1, 2, 3, 5, 8}) {
      int64_t expected_offset = 0;
      for (int i = 0; i < world; ++i) {
        const ChunkRange r = CollectiveChunk(total, world, i);
        EXPECT_EQ(r.offset, expected_offset);
        EXPECT_GE(r.length, 0);
        expected_offset += r.length;
      }
      EXPECT_EQ(expected_offset, total) << "total=" << total << " world=" << world;
    }
  }
}

TEST(TopologyTest, TreeShape) {
  EXPECT_EQ(TreeParent(0), -1);
  EXPECT_EQ(TreeParent(1), 0);
  EXPECT_EQ(TreeParent(2), 0);
  EXPECT_EQ(TreeParent(6), 2);
  EXPECT_EQ(TreeChildren(0, 5), (std::vector<int>{1, 2}));
  EXPECT_EQ(TreeChildren(1, 5), (std::vector<int>{3, 4}));
  EXPECT_EQ(TreeChildren(2, 5), std::vector<int>{});
  EXPECT_EQ(TreeDepth(1), 0);
  EXPECT_EQ(TreeDepth(2), 1);
  EXPECT_EQ(TreeDepth(8), 3);
  EXPECT_EQ(TreeDepth(9), 4);
}

class CollectiveWorldTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveWorldTest, RingMatchesSerialBitwise) {
  const int world = GetParam();
  // Sizes chosen to exercise empty, short and non-divisible chunks.
  for (int64_t size : {1, 3, 8, 61, 256}) {
    const auto results = RunAllreduce(CollectiveAlgo::kRing, world, size);
    const std::vector<float> expected = SerialRingSum(world, size);
    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(results[static_cast<size_t>(r)], expected)
          << "rank " << r << " world " << world << " size " << size;
    }
  }
}

TEST_P(CollectiveWorldTest, TreeMatchesSerialBitwise) {
  const int world = GetParam();
  for (int64_t size : {1, 3, 8, 61, 256}) {
    const auto results = RunAllreduce(CollectiveAlgo::kTree, world, size);
    const std::vector<float> expected = SerialTreeSum(0, world, size);
    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(results[static_cast<size_t>(r)], expected)
          << "rank " << r << " world " << world << " size " << size;
    }
  }
}

TEST_P(CollectiveWorldTest, RingTrafficMatchesAnalyticRow) {
  const int world = GetParam();
  const int64_t size = 240;  // divisible by 1..8, so the row is exact
  std::vector<int64_t> floats_sent;
  RunAllreduce(CollectiveAlgo::kRing, world, size, /*seq=*/0, &floats_sent);
  for (int r = 0; r < world; ++r) {
    // The Table-1-extension row counts per-direction (egress) traffic.
    EXPECT_DOUBLE_EQ(static_cast<double>(floats_sent[static_cast<size_t>(r)]),
                     RingAllreduceNodeFloats(size, world))
        << "rank " << r;
  }
}

TEST_P(CollectiveWorldTest, TreeTrafficMatchesAnalyticRow) {
  const int world = GetParam();
  const int64_t size = 64;
  std::vector<int64_t> floats_sent;
  RunAllreduce(CollectiveAlgo::kTree, world, size, /*seq=*/0, &floats_sent);
  for (int r = 0; r < world; ++r) {
    // Egress per node: size to the parent (non-root) + size per child.
    const int64_t expected =
        (r == 0 ? 0 : size) +
        size * static_cast<int64_t>(TreeChildren(r, world).size());
    EXPECT_EQ(floats_sent[static_cast<size_t>(r)], expected) << "rank " << r;
    if (world > 1) {
      EXPECT_DOUBLE_EQ(TreeAllreduceNodeFloats(size, world, r),
                       static_cast<double>(expected));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, CollectiveWorldTest, ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(CollectiveTest, BackToBackOperationsKeepSequence) {
  // Two consecutive allreduces through the same participants (distinct seq
  // numbers) must both match their serial mirrors.
  const int world = 4;
  const int64_t size = 33;
  MessageBus bus(world);
  std::vector<std::unique_ptr<CollectiveComm>> comms;
  for (int r = 0; r < world; ++r) {
    comms.push_back(std::make_unique<CollectiveComm>(&bus, r, world, /*tag=*/7));
  }
  std::vector<std::vector<float>> data(world);
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      for (int64_t seq = 0; seq < 3; ++seq) {
        data[static_cast<size_t>(r)] = MakeInput(r, size);
        comms[static_cast<size_t>(r)]->Allreduce(CollectiveAlgo::kRing, seq,
                                                 &data[static_cast<size_t>(r)]);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::vector<float> expected = SerialRingSum(world, size);
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(data[static_cast<size_t>(r)], expected);
  }
}

TEST(CollectiveTest, PerHopTrafficIsAccountedOnTheBus) {
  const int world = 3;
  const int64_t size = 30;
  MessageBus bus(world);
  std::vector<std::unique_ptr<CollectiveComm>> comms;
  for (int r = 0; r < world; ++r) {
    comms.push_back(std::make_unique<CollectiveComm>(&bus, r, world, /*tag=*/0));
  }
  std::vector<std::vector<float>> data(world);
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    data[static_cast<size_t>(r)] = MakeInput(r, size);
    threads.emplace_back([&, r] {
      comms[static_cast<size_t>(r)]->Allreduce(CollectiveAlgo::kRing, 0,
                                               &data[static_cast<size_t>(r)]);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int r = 0; r < world; ++r) {
    // 2(P-1) hops of a 10-float chunk, 4 bytes each, plus per-hop headers.
    EXPECT_GT(bus.TxBytes(r), 2 * (world - 1) * 10 * 4);
  }
}

}  // namespace
}  // namespace poseidon

// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. Overlap (WFBP) alone vs no overlap — how much of Poseidon's win is
//     scheduling, independent of HybComm (paper §3.1 / Fig 5's PS-vs-WFBP
//     gap isolated per bandwidth).
//  B. KV sharding granularity — Poseidon's fine-grained 2 MB pairs vs
//     TensorFlow's per-tensor placement, holding everything else fixed
//     (paper §5.1's first explanation of TF's stalls).
//  C. Straggler policy — BSP gated by the slowest worker vs the paper's
//     drop-the-straggler rule (§4.1), under an injected 2x straggler.
#include <cstdio>

#include "src/cluster/protocol_sim.h"
#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

void OverlapAblation(const BenchArgs& args) {
  const int nodes = args.FirstNodeOr(16);
  std::printf("Ablation A: overlap only (no HybComm), VGG19, %d nodes\n\n", nodes);
  TextTable table({"GbE", "no overlap (img/s)", "WFBP (img/s)", "WFBP gain"});
  const ModelSpec model = MakeVgg19();
  for (double gbps : args.GbpsOr({10.0, 20.0, 40.0})) {
    ClusterSpec cluster;
    cluster.num_nodes = nodes;
    cluster.nic_gbps = gbps;
    SystemConfig none = CaffePlusPs();
    none.blocking_memcpy = false;  // isolate scheduling, not memcpy
    const SimResult seq = RunProtocolSimulation(model, none, cluster, Engine::kCaffe);
    const SimResult wfbp =
        RunProtocolSimulation(model, CaffePlusWfbp(), cluster, Engine::kCaffe);
    table.AddRow({TextTable::Num(gbps, 0), TextTable::Num(seq.images_per_sec, 0),
                  TextTable::Num(wfbp.images_per_sec, 0),
                  TextTable::Num(wfbp.images_per_sec / seq.images_per_sec, 2) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void ShardingAblation(const BenchArgs& args) {
  const int nodes = args.FirstNodeOr(16);
  const double gbps = args.FirstGbpsOr(40.0);
  std::printf("Ablation B: KV-pair sharding vs per-tensor placement (WFBP overlap,\n");
  std::printf("dense PS), %d nodes, %.0f GbE\n\n", nodes, gbps);
  TextTable table({"model", "per-tensor (img/s)", "KV pairs (img/s)", "gain"});
  for (const char* name : {"googlenet", "vgg19", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    ClusterSpec cluster;
    cluster.num_nodes = nodes;
    cluster.nic_gbps = gbps;
    SystemConfig per_tensor = TfPlusWfbp();
    per_tensor.name = "per-tensor";
    per_tensor.sharding = ShardingMode::kPerTensor;
    const SimResult coarse =
        RunProtocolSimulation(model, per_tensor, cluster, Engine::kTensorFlow);
    const SimResult fine =
        RunProtocolSimulation(model, TfPlusWfbp(), cluster, Engine::kTensorFlow);
    table.AddRow({model.name, TextTable::Num(coarse.images_per_sec, 0),
                  TextTable::Num(fine.images_per_sec, 0),
                  TextTable::Num(fine.images_per_sec / coarse.images_per_sec, 2) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void StragglerAblation(const BenchArgs& args) {
  const int nodes = args.FirstNodeOr(8);
  const double gbps = args.FirstGbpsOr(40.0);
  std::printf("Ablation C: straggler policy, GoogLeNet on %d nodes (one node slowed)\n\n",
              nodes);
  TextTable table({"slowdown", "BSP wait (img/s)", "drop straggler (img/s)"});
  const ModelSpec model = MakeGoogLeNet();
  for (double slowdown : {1.0, 1.5, 2.0, 4.0}) {
    ClusterSpec cluster;
    cluster.num_nodes = nodes;
    cluster.nic_gbps = gbps;
    cluster.straggler_node = nodes - 1;  // not node 0: node 0 is the timing reference
    cluster.straggler_slowdown = slowdown;
    SystemConfig drop = PoseidonSystem();
    drop.drop_stragglers = true;
    const SimResult wait =
        RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe);
    const SimResult dropped = RunProtocolSimulation(model, drop, cluster, Engine::kCaffe);
    table.AddRow({TextTable::Num(slowdown, 1), TextTable::Num(wait.images_per_sec, 0),
                  TextTable::Num(dropped.images_per_sec, 0)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::OverlapAblation(args);
  poseidon::ShardingAblation(args);
  poseidon::StragglerAblation(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

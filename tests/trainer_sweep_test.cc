// Parameterized end-to-end sweep of the threaded runtime across cluster
// shapes, sync policies and KV granularities: every configuration must (a)
// keep replicas bitwise identical, (b) reduce the training loss, and (c) be
// deterministic. This is the broad-coverage counterpart to the targeted
// equivalence tests in integration_test.cc.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/nn/builders.h"
#include "src/poseidon/trainer.h"

namespace poseidon {
namespace {

struct SweepCase {
  int workers;
  int servers;
  FcSyncPolicy policy;
  int64_t kv_bytes;
  int threads;
  int shards = 1;  // KV shard endpoints per server (0 = auto)
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string policy;
  switch (c.policy) {
    case FcSyncPolicy::kDense:
      policy = "Dense";
      break;
    case FcSyncPolicy::kSfb:
      policy = "Sfb";
      break;
    case FcSyncPolicy::kHybrid:
      policy = "Hybrid";
      break;
    case FcSyncPolicy::kOneBit:
      policy = "OneBit";
      break;
    case FcSyncPolicy::kRingAllreduce:
      policy = "Ring";
      break;
    case FcSyncPolicy::kTreeAllreduce:
      policy = "Tree";
      break;
    case FcSyncPolicy::kHybridCollective:
      policy = "Hybrid3";
      break;
  }
  return "w" + std::to_string(c.workers) + "s" + std::to_string(c.servers) + policy + "kv" +
         std::to_string(c.kv_bytes) + "t" + std::to_string(c.threads) +
         (c.shards != 1 ? "sh" + std::to_string(c.shards) : "");
}

class TrainerSweepTest : public ::testing::TestWithParam<SweepCase> {};

std::vector<float> AllParams(Network& net) {
  std::vector<float> out;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      out.insert(out.end(), p.value->data(), p.value->data() + p.value->size());
    }
  }
  return out;
}

TEST_P(TrainerSweepTest, ConvergesConsistentlyAndDeterministically) {
  const SweepCase param = GetParam();

  DatasetConfig data;
  data.num_classes = 3;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 96;
  data.noise_stddev = 0.4f;
  data.seed = 2024;
  SyntheticDataset dataset(data);

  NetworkFactory factory = [] {
    Rng rng(13);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/20, /*hidden_layers=*/2,
                    /*classes=*/3, rng);
  };
  TrainerOptions options;
  options.num_workers = param.workers;
  options.num_servers = param.servers;
  options.shards_per_server = param.shards;
  options.batch_per_worker = 6;
  options.sgd = {.learning_rate = 0.05f, .momentum = 0.9f};
  options.fc_policy = param.policy;
  options.kv_pair_bytes = param.kv_bytes;
  options.syncer_threads = param.threads;

  auto run = [&] {
    PoseidonTrainer trainer(factory, options);
    const auto stats = trainer.Train(dataset, 15);
    EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss) << "no learning";
    // (a) replica identity
    const std::vector<float> w0 = AllParams(trainer.worker_net(0));
    for (int w = 1; w < param.workers; ++w) {
      EXPECT_EQ(w0, AllParams(trainer.worker_net(w))) << "replica " << w << " diverged";
    }
    return w0;
  };
  // (c) determinism across full trainer lifecycles
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TrainerSweepTest,
    ::testing::Values(
        SweepCase{1, 1, FcSyncPolicy::kDense, 2048, 1},
        SweepCase{2, 1, FcSyncPolicy::kDense, 2048, 2},
        SweepCase{2, 2, FcSyncPolicy::kSfb, 2048, 2},
        SweepCase{3, 2, FcSyncPolicy::kHybrid, 512, 2},
        SweepCase{4, 4, FcSyncPolicy::kHybrid, 128, 3},
        SweepCase{4, 2, FcSyncPolicy::kOneBit, 2048, 2},
        SweepCase{2, 4, FcSyncPolicy::kDense, 256, 1},   // more servers than workers
        SweepCase{5, 3, FcSyncPolicy::kHybrid, 1024, 4},
        SweepCase{2, 2, FcSyncPolicy::kOneBit, 64, 1},
        SweepCase{8, 8, FcSyncPolicy::kHybrid, 2048, 2},
        SweepCase{1, 1, FcSyncPolicy::kRingAllreduce, 2048, 1},  // degenerate world -> PS
        SweepCase{2, 2, FcSyncPolicy::kRingAllreduce, 2048, 2},
        SweepCase{5, 2, FcSyncPolicy::kRingAllreduce, 1024, 3},
        SweepCase{3, 3, FcSyncPolicy::kTreeAllreduce, 2048, 2},
        SweepCase{8, 4, FcSyncPolicy::kTreeAllreduce, 512, 2},
        SweepCase{4, 4, FcSyncPolicy::kHybridCollective, 1024, 3},
        SweepCase{8, 8, FcSyncPolicy::kHybridCollective, 2048, 2},
        SweepCase{3, 2, FcSyncPolicy::kDense, 512, 2, /*shards=*/3},
        SweepCase{4, 4, FcSyncPolicy::kHybrid, 128, 3, /*shards=*/2},
        SweepCase{4, 2, FcSyncPolicy::kOneBit, 2048, 2, /*shards=*/4},
        SweepCase{5, 3, FcSyncPolicy::kHybrid, 1024, 4, /*shards=*/0},  // auto
        SweepCase{2, 4, FcSyncPolicy::kDense, 256, 1, /*shards=*/8}),
    CaseName);

}  // namespace
}  // namespace poseidon

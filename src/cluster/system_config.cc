#include "src/cluster/system_config.h"

#include <string>

namespace poseidon {

SystemConfig CaffePlusPs() {
  SystemConfig config;
  config.name = "Caffe+PS";
  config.overlap = OverlapMode::kNone;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kDense;
  config.blocking_memcpy = true;
  return config;
}

SystemConfig CaffePlusWfbp() {
  SystemConfig config;
  config.name = "Caffe+WFBP";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kDense;
  return config;
}

SystemConfig PoseidonSystem() {
  SystemConfig config;
  config.name = "Poseidon";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kHybrid;
  return config;
}

SystemConfig TfNative() {
  SystemConfig config;
  config.name = "TF";
  config.overlap = OverlapMode::kTfFetch;
  config.sharding = ShardingMode::kPerTensor;
  config.fc_scheme = FcScheme::kDense;
  config.transport_efficiency = 0.3;  // gRPC goodput, r0.10 era
  return config;
}

SystemConfig TfPlusWfbp() {
  SystemConfig config;
  config.name = "TF+WFBP";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kDense;
  return config;
}

SystemConfig AdamSystem() {
  SystemConfig config;
  config.name = "Adam";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kAdam;
  return config;
}

SystemConfig OneBitSystem() {
  SystemConfig config;
  config.name = "CNTK-1bit";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kOneBit;
  return config;
}

SystemConfig SfbOnlySystem() {
  SystemConfig config;
  config.name = "SFB";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kSfb;
  return config;
}

SystemConfig RingAllreduceSystem() {
  SystemConfig config;
  config.name = "Ring";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kRing;
  return config;
}

SystemConfig TreeAllreduceSystem() {
  SystemConfig config;
  config.name = "Tree";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kTree;
  return config;
}

SystemConfig HybridCollectiveSystem() {
  SystemConfig config;
  config.name = "Poseidon++";
  config.overlap = OverlapMode::kWfbp;
  config.sharding = ShardingMode::kKvPairs;
  config.fc_scheme = FcScheme::kHybridCollective;
  return config;
}

SystemConfig ShardedPsSystem(int shards, int staleness) {
  SystemConfig config = CaffePlusWfbp();
  config.name = "PS-s" + std::to_string(shards) +
                (staleness > 0 ? "-ssp" + std::to_string(staleness) : "");
  config.shards_per_server = shards;
  config.staleness = staleness;
  return config;
}

SystemConfig SspPoseidonSystem(int staleness, int shards) {
  SystemConfig config = PoseidonSystem();
  config.name = "Poseidon-ssp" + std::to_string(staleness) +
                (shards > 1 ? "-s" + std::to_string(shards) : "");
  config.shards_per_server = shards;
  config.staleness = staleness;
  return config;
}

SystemConfig CompressedPsSystem(GradCompression compression, double topk_density,
                                bool auto_per_layer) {
  SystemConfig config = CaffePlusWfbp();
  config.name = std::string("PS-") +
                (auto_per_layer ? "auto" : GradCompressionName(compression));
  config.ps_compression = compression;
  config.auto_ps_compression = auto_per_layer;
  config.topk_density = topk_density;
  return config;
}

SystemConfig PlannedSystem(std::shared_ptr<const CommPlan> plan) {
  SystemConfig config = PoseidonSystem();
  config.name = "Planned";
  config.shards_per_server = plan->ps_shards;
  config.staleness = plan->staleness;
  config.batch_egress = plan->batch_egress;
  config.topk_density = plan->topk_density;
  config.plan = std::move(plan);
  return config;
}

}  // namespace poseidon

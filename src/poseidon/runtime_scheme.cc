#include "src/poseidon/runtime_scheme.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/planner/comm_planner.h"
#include "src/planner/plan_cache.h"

namespace poseidon {
namespace {

// The legacy resolvers below are thin wrappers over the CommPlanner's paper
// mode, which reproduces their original sequential decisions bit for bit
// (tests/planner_test.cc pins the equivalence). Routing them through
// PlanCache::Global() means repeated trainer construction and every bench
// sweep point reuse the memoized plan instead of re-searching.

PlannedScheme ToPlanned(RuntimeScheme scheme) {
  switch (scheme) {
    case RuntimeScheme::kNone:
      return PlannedScheme::kNone;
    case RuntimeScheme::kPsDense:
      return PlannedScheme::kPS;
    case RuntimeScheme::kSfb:
      return PlannedScheme::kSFB;
    case RuntimeScheme::kOneBit:
      return PlannedScheme::kOneBit;
    case RuntimeScheme::kRingAllreduce:
      return PlannedScheme::kRing;
    case RuntimeScheme::kTreeAllreduce:
      return PlannedScheme::kTree;
  }
  return PlannedScheme::kNone;
}

}  // namespace

PlanPolicy PlanPolicyFromFcPolicy(FcSyncPolicy policy) {
  switch (policy) {
    case FcSyncPolicy::kDense:
      return PlanPolicy::kDense;
    case FcSyncPolicy::kSfb:
      return PlanPolicy::kSfb;
    case FcSyncPolicy::kHybrid:
      return PlanPolicy::kHybrid;
    case FcSyncPolicy::kOneBit:
      return PlanPolicy::kOneBit;
    case FcSyncPolicy::kRingAllreduce:
      return PlanPolicy::kRingAllreduce;
    case FcSyncPolicy::kTreeAllreduce:
      return PlanPolicy::kTreeAllreduce;
    case FcSyncPolicy::kHybridCollective:
      return PlanPolicy::kHybridCollective;
  }
  return PlanPolicy::kDense;
}

PlanCodecPolicy PlanCodecPolicyFromCompression(PsCompressionPolicy policy) {
  switch (policy) {
    case PsCompressionPolicy::kNone:
      return PlanCodecPolicy::kNone;
    case PsCompressionPolicy::kFp16:
      return PlanCodecPolicy::kFp16;
    case PsCompressionPolicy::kInt8:
      return PlanCodecPolicy::kInt8;
    case PsCompressionPolicy::kTopK:
      return PlanCodecPolicy::kTopK;
    case PsCompressionPolicy::kAuto:
      return PlanCodecPolicy::kAuto;
  }
  return PlanCodecPolicy::kNone;
}

namespace {

/// Paper-mode request mirroring `coordinator`'s model and cluster shape. The
/// scheme pass is costed at the coordinator's configured shard count, exactly
/// where the legacy resolvers costed it.
PlanRequest RequestFor(const Coordinator& coordinator, FcSyncPolicy policy) {
  const ClusterInfo& cluster = coordinator.cluster();
  PlanRequest req;
  req.model_name = "runtime";
  req.layers.reserve(static_cast<size_t>(coordinator.num_layers()));
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    const LayerInfo& info = coordinator.layer(l);
    LayerSpec spec;
    spec.name = info.name;
    spec.type = info.type;
    spec.params = info.total_floats;
    spec.fc_m = info.fc_m;
    spec.fc_n = info.fc_n;
    req.layers.push_back(std::move(spec));
  }
  req.num_workers = cluster.num_workers;
  req.num_servers = cluster.num_servers;
  req.batch_per_worker = cluster.batch_per_worker;
  req.kv_pair_bytes = cluster.kv_pair_bytes;
  req.staleness = cluster.staleness;
  req.ps_shards_pinned = std::max(1, cluster.shards_per_server);
  req.paper_eval_shards = std::max(1, cluster.shards_per_server);
  req.policy = PlanPolicyFromFcPolicy(policy);
  req.codec = PlanCodecPolicy::kNone;
  req.joint = false;
  return req;
}

}  // namespace

RuntimeScheme RuntimeSchemeFromPlanned(PlannedScheme scheme) {
  switch (scheme) {
    case PlannedScheme::kNone:
      return RuntimeScheme::kNone;
    case PlannedScheme::kPS:
      return RuntimeScheme::kPsDense;
    case PlannedScheme::kSFB:
      return RuntimeScheme::kSfb;
    case PlannedScheme::kOneBit:
      return RuntimeScheme::kOneBit;
    case PlannedScheme::kRing:
      return RuntimeScheme::kRingAllreduce;
    case PlannedScheme::kTree:
      return RuntimeScheme::kTreeAllreduce;
  }
  return RuntimeScheme::kNone;
}

const char* RuntimeSchemeName(RuntimeScheme scheme) {
  switch (scheme) {
    case RuntimeScheme::kNone:
      return "none";
    case RuntimeScheme::kPsDense:
      return "PS";
    case RuntimeScheme::kSfb:
      return "SFB";
    case RuntimeScheme::kOneBit:
      return "1bit";
    case RuntimeScheme::kRingAllreduce:
      return "ring";
    case RuntimeScheme::kTreeAllreduce:
      return "tree";
  }
  return "?";
}

std::vector<RuntimeScheme> ResolveSchemes(const Coordinator& coordinator,
                                          FcSyncPolicy policy) {
  const std::shared_ptr<const CommPlan> plan =
      PlanCache::Global().GetOrPlan(RequestFor(coordinator, policy));
  std::vector<RuntimeScheme> schemes;
  schemes.reserve(plan->layers.size());
  for (const PlanLayerChoice& choice : plan->layers) {
    schemes.push_back(RuntimeSchemeFromPlanned(choice.scheme));
  }
  return schemes;
}

const char* PsCompressionPolicyName(PsCompressionPolicy policy) {
  switch (policy) {
    case PsCompressionPolicy::kNone:
      return "none";
    case PsCompressionPolicy::kFp16:
      return "fp16";
    case PsCompressionPolicy::kInt8:
      return "int8";
    case PsCompressionPolicy::kTopK:
      return "topk";
    case PsCompressionPolicy::kAuto:
      return "auto";
  }
  return "?";
}

std::vector<GradCompression> ResolveCompression(
    const Coordinator& coordinator, const std::vector<RuntimeScheme>& schemes,
    PsCompressionPolicy policy, double topk_density, int64_t min_floats) {
  CHECK_EQ(schemes.size(), static_cast<size_t>(coordinator.num_layers()));
  if (policy == PsCompressionPolicy::kTopK || policy == PsCompressionPolicy::kAuto) {
    CHECK_GT(topk_density, 0.0);
    CHECK_LE(topk_density, 1.0);
  }
  // Pin the caller's schemes so the planner only decides the codec column;
  // only PS layers clearing the size gate compress, as before.
  PlanRequest req = RequestFor(coordinator, FcSyncPolicy::kDense);
  req.pinned_schemes.reserve(schemes.size());
  for (RuntimeScheme scheme : schemes) {
    req.pinned_schemes.push_back(ToPlanned(scheme));
  }
  req.codec = PlanCodecPolicyFromCompression(policy);
  req.topk_density = topk_density;
  req.compression_min_floats = min_floats;
  const std::shared_ptr<const CommPlan> plan = PlanCache::Global().GetOrPlan(req);
  std::vector<GradCompression> compression;
  compression.reserve(plan->layers.size());
  for (const PlanLayerChoice& choice : plan->layers) {
    compression.push_back(choice.compression);
  }
  return compression;
}

SyncPlan ResolveSchemesSharded(const Coordinator& coordinator, FcSyncPolicy policy,
                               int max_shards) {
  CHECK_GT(max_shards, 0);
  SyncPlan plan;
  plan.schemes = ResolveSchemes(coordinator, policy);
  // The shard pass searches [1, max_shards] with the scheme pass still costed
  // at the coordinator's configured count (the legacy two-phase order the
  // trainer's rebuild-then-re-resolve flow depends on).
  PlanRequest req = RequestFor(coordinator, policy);
  req.ps_shards_pinned = 0;
  req.max_shards = max_shards;
  const std::shared_ptr<const CommPlan> sharded = PlanCache::Global().GetOrPlan(req);
  plan.ps_shards = sharded->ps_shards;
  return plan;
}

}  // namespace poseidon

#include "src/tensor/onebit.h"

#include <cmath>

namespace poseidon {

int64_t OneBitEncoded::WireBytes() const {
  return static_cast<int64_t>(bits.size()) * 4 +
         static_cast<int64_t>(positive_level.size() + negative_level.size()) * 4 +
         2 * 8;  // dimensions
}

OneBitEncoded OneBitQuantizer::Encode(const Tensor& gradient) {
  CHECK_EQ(gradient.ndim(), 2);
  if (residual_.empty()) {
    residual_ = Tensor::Zeros(gradient.shape());
  }
  CHECK(residual_.SameShape(gradient));

  const int64_t rows = gradient.dim(0);
  const int64_t cols = gradient.dim(1);
  OneBitEncoded encoded;
  encoded.rows = rows;
  encoded.cols = cols;
  encoded.bits.assign(static_cast<size_t>((rows * cols + 31) / 32), 0u);
  encoded.positive_level.assign(static_cast<size_t>(cols), 0.0f);
  encoded.negative_level.assign(static_cast<size_t>(cols), 0.0f);

  // Pass 1: effective values and per-column sums for each sign class.
  std::vector<double> pos_sum(static_cast<size_t>(cols), 0.0);
  std::vector<double> neg_sum(static_cast<size_t>(cols), 0.0);
  std::vector<int64_t> pos_count(static_cast<size_t>(cols), 0);
  std::vector<int64_t> neg_count(static_cast<size_t>(cols), 0);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = r * cols + c;
      const float q = gradient[flat] + residual_[flat];
      if (q >= 0.0f) {
        encoded.bits[static_cast<size_t>(flat / 32)] |= (1u << (flat % 32));
        pos_sum[static_cast<size_t>(c)] += q;
        ++pos_count[static_cast<size_t>(c)];
      } else {
        neg_sum[static_cast<size_t>(c)] += q;
        ++neg_count[static_cast<size_t>(c)];
      }
    }
  }
  for (int64_t c = 0; c < cols; ++c) {
    const size_t ci = static_cast<size_t>(c);
    encoded.positive_level[ci] =
        pos_count[ci] > 0 ? static_cast<float>(pos_sum[ci] / pos_count[ci]) : 0.0f;
    encoded.negative_level[ci] =
        neg_count[ci] > 0 ? static_cast<float>(neg_sum[ci] / neg_count[ci]) : 0.0f;
  }

  // Pass 2: new residual = effective value - reconstruction.
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = r * cols + c;
      const float q = gradient[flat] + residual_[flat];
      const bool positive = (encoded.bits[static_cast<size_t>(flat / 32)] >> (flat % 32)) & 1u;
      const float recon = positive ? encoded.positive_level[static_cast<size_t>(c)]
                                   : encoded.negative_level[static_cast<size_t>(c)];
      residual_[flat] = q - recon;
    }
  }
  return encoded;
}

Tensor OneBitQuantizer::Decode(const OneBitEncoded& encoded) {
  Tensor out({encoded.rows, encoded.cols});
  for (int64_t r = 0; r < encoded.rows; ++r) {
    for (int64_t c = 0; c < encoded.cols; ++c) {
      const int64_t flat = r * encoded.cols + c;
      const bool positive = (encoded.bits[static_cast<size_t>(flat / 32)] >> (flat % 32)) & 1u;
      out[flat] = positive ? encoded.positive_level[static_cast<size_t>(c)]
                           : encoded.negative_level[static_cast<size_t>(c)];
    }
  }
  return out;
}

}  // namespace poseidon

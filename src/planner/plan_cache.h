/// \file
/// Memoized CommPlan store in the style of a poplibs plan cache: search once
/// per canonical (model spec, cluster signature) digest, then every repeated
/// trainer construction and bench sweep point is a map lookup. Keys are the
/// 128-bit PlanRequestKey digest — computed with a few integer mixes per
/// layer, no string assembly — so a cache hit is orders of magnitude cheaper
/// than the cold search it replaces (the `planner_cache_speedup` series in
/// BENCH_micro.json gates the ratio at >= 100x).
///
/// Determinism contract: PlanComm is a pure function of the request, so a
/// cold miss and a warm hit hand back bitwise-identical plans; the cache can
/// never change an answer, only its latency. See docs/PLANNER.md.
#ifndef POSEIDON_SRC_PLANNER_PLAN_CACHE_H_
#define POSEIDON_SRC_PLANNER_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/planner/comm_plan.h"
#include "src/planner/comm_planner.h"

namespace poseidon {

/// Thread-safe memo table from PlanRequest digests to immutable plans.
class PlanCache {
 public:
  /// The plan for `request`: the memoized copy when the digest repeats,
  /// otherwise a cold PlanComm search whose result is stored and shared.
  /// The returned plan is immutable and safe to hold across cache lifetime.
  std::shared_ptr<const CommPlan> GetOrPlan(const PlanRequest& request);

  /// Lookup without planning: nullptr when the digest misses.
  std::shared_ptr<const CommPlan> Lookup(const PlanRequest& request) const;

  int64_t hits() const;
  int64_t misses() const;
  size_t size() const;
  void Clear();

  /// Process-wide cache shared by the trainer and the benches.
  static PlanCache& Global();

 private:
  mutable std::mutex mu_;
  std::unordered_map<PlanKey, std::shared_ptr<const CommPlan>, PlanKeyHash> plans_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_PLANNER_PLAN_CACHE_H_

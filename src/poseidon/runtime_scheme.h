/// \file
/// Per-layer synchronization plan for the threaded runtime.
#ifndef POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_
#define POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_

#include <string>
#include <vector>

#include "src/poseidon/coordinator.h"

namespace poseidon {

/// What the trainer is asked to do for parameter layers. Under the paper's
/// policies conv layers always use the parameter server and only FC layers
/// vary; the collective policies (ring/tree/hybrid-collective) instead apply
/// to every parameter layer, since allreduce needs no factorization.
/// Stateless layers synchronize nothing either way.
enum class FcSyncPolicy {
  kDense,       // full matrices through the KV store
  kSfb,         // sufficient factor broadcasting
  kHybrid,      // Algorithm 1: coordinator.BestScheme per layer
  kOneBit,      // 1-bit quantized gradients, whole layer to one shard
  kRingAllreduce,     // ring allreduce for every parameter layer
  kTreeAllreduce,     // binary-tree reduce-broadcast for every parameter layer
  kHybridCollective,  // three-way HybComm: BestSchemeExtended per layer
};

enum class RuntimeScheme {
  kNone,     // no parameters
  kPsDense,  // sharded PS, dense chunks
  kSfb,      // peer broadcast + local reconstruction/update
  kOneBit,   // quantized push to a single owner shard
  kRingAllreduce,  // peer ring allreduce + local update
  kTreeAllreduce,  // peer tree allreduce + local update
};

const char* RuntimeSchemeName(RuntimeScheme scheme);

/// Resolves the policy against the coordinator's information book.
std::vector<RuntimeScheme> ResolveSchemes(const Coordinator& coordinator,
                                          FcSyncPolicy policy);

/// A resolved synchronization plan: the per-layer schemes plus the KV shard
/// count per server the cost model recommends for the PS layers.
struct SyncPlan {
  std::vector<RuntimeScheme> schemes;
  int ps_shards = 1;
};

/// ResolveSchemes plus shard-count selection: for every layer the plan routes
/// through the PS, asks BestPsShardCount how many shard endpoints per server
/// (up to `max_shards`) the multi-shard cost rows justify, and recommends the
/// largest answer (the busiest layer sets the requirement; extra shards only
/// add idle endpoints for smaller layers).
SyncPlan ResolveSchemesSharded(const Coordinator& coordinator, FcSyncPolicy policy,
                               int max_shards);

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_

#include "src/poseidon/collective_syncer.h"

#include <string>

#include "src/common/logging.h"

namespace poseidon {

CollectiveSyncer::CollectiveSyncer(int worker, int layer_index, CollectiveAlgo algo,
                                   const Coordinator& coordinator, MessageBus* bus,
                                   Layer* layer, SgdOptimizer* local_optimizer)
    : layer_index_(layer_index),
      algo_(algo),
      num_workers_(coordinator.cluster().num_workers),
      layer_(layer),
      local_optimizer_(local_optimizer),
      view_(layer->Params()),
      comm_(bus, worker, coordinator.cluster().num_workers, layer_index) {
  CHECK_NOTNULL(local_optimizer);
  CHECK_GT(view_.size(), 0) << layer->name() << ": collective sync of a stateless layer";
}

void CollectiveSyncer::MoveOut() {
  staged_grads_.resize(static_cast<size_t>(view_.size()));
  view_.GatherGradSlice(0, &staged_grads_);
  WireCopyStats::Add(view_.size());
}

void CollectiveSyncer::Send(int64_t iter) { comm_.Start(algo_, iter, &staged_grads_); }

void CollectiveSyncer::Receive(int64_t iter) {
  (void)iter;  // the sequence was bound at Send; Finish validates it per hop
  comm_.Finish();
  const float inv = 1.0f / static_cast<float>(num_workers_);
  for (float& g : staged_grads_) {
    g *= inv;
  }
  // Apply the averaged gradient block by block with the replicated local
  // optimizer (identical inputs on every replica keep parameters bitwise in
  // sync, as on the SFB path).
  std::vector<ParamBlock> params = layer_->Params();
  int64_t start = 0;
  for (size_t b = 0; b < params.size(); ++b) {
    Tensor& value = *params[b].value;
    const std::string key =
        "l" + std::to_string(layer_index_) + ".p" + std::to_string(b);
    local_optimizer_->StepSlice(key, staged_grads_.data() + start, value.data(),
                                value.size());
    start += value.size();
  }
  CHECK_EQ(start, view_.size());
}

}  // namespace poseidon

#include "src/transport/bus.h"

#include <algorithm>
#include <string>
#include <utility>

namespace poseidon {

MessageBus::MessageBus(int num_nodes)
    : limiters_(static_cast<size_t>(num_nodes)),
      tx_bytes_(static_cast<size_t>(num_nodes)),
      tx_messages_(static_cast<size_t>(num_nodes)),
      tx_entries_(static_cast<size_t>(num_nodes)) {
  CHECK_GT(num_nodes, 0);
  for (size_t n = 0; n < tx_bytes_.size(); ++n) {
    tx_bytes_[n].store(0);
    tx_messages_[n].store(0);
    tx_entries_[n].store(0);
  }
}

MessageBus::~MessageBus() {
  if (batching_.load(std::memory_order_acquire)) {
    for (auto& egress : egress_) {
      {
        std::lock_guard<std::mutex> lock(egress->mutex);
        egress->stop = true;
      }
      egress->cv.notify_all();
    }
    for (auto& egress : egress_) {
      if (egress->flusher.joinable()) {
        egress->flusher.join();
      }
    }
  }
}

std::shared_ptr<MessageBus::Mailbox> MessageBus::Register(const Address& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = mailboxes_.try_emplace(address, nullptr);
  if (inserted) {
    it->second = std::make_shared<Mailbox>();
  }
  return it->second;
}

Status MessageBus::Route(const Message& message, std::shared_ptr<Mailbox>* mailbox,
                         std::shared_ptr<RateLimiter>* limiter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = mailboxes_.find(message.to);
  if (it == mailboxes_.end()) {
    return NotFoundError("no mailbox at node " + std::to_string(message.to.node) +
                         " port " + std::to_string(message.to.port));
  }
  *mailbox = it->second;
  // shared_ptr copy: a concurrent SetEgressLimit cannot invalidate the
  // limiter while a sender (or flusher) waits on it, and the wait itself
  // runs with no bus lock held.
  *limiter = limiters_[static_cast<size_t>(message.from.node)];
  return Status::Ok();
}

Status MessageBus::SendDirect(Message message, std::shared_ptr<Mailbox> mailbox,
                              std::shared_ptr<RateLimiter> limiter) {
  const int src = message.from.node;
  const bool remote = message.from.node != message.to.node;
  if (remote) {
    const int64_t bytes = message.WireBytes();
    if (limiter != nullptr) {
      limiter->Acquire(bytes);  // local traffic bypasses the NIC
    }
    tx_bytes_[static_cast<size_t>(src)].fetch_add(bytes, std::memory_order_relaxed);
    tx_messages_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
    tx_entries_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
  }
  if (!mailbox->Push(std::move(message))) {
    return UnavailableError("mailbox closed");
  }
  return Status::Ok();
}

Status MessageBus::Send(Message message) {
  const int src = message.from.node;
  CHECK_GE(src, 0);
  CHECK_LT(src, num_nodes());

  std::shared_ptr<Mailbox> mailbox;
  std::shared_ptr<RateLimiter> limiter;
  const Status routed = Route(message, &mailbox, &limiter);
  if (!routed.ok()) {
    return routed;
  }

  if (!batching_.load(std::memory_order_acquire) || message.to.node == src) {
    return SendDirect(std::move(message), std::move(mailbox), std::move(limiter));
  }

  NodeEgress& egress = *egress_[static_cast<size_t>(src)];
  const bool force_flush = message.type == MessageType::kShutdown;
  // Wake the flusher only when it has something new to react to: a batch
  // cut into the ready queue, or a fresh open batch whose aging timer it
  // must arm. Joining an existing open batch needs no wakeup.
  bool wake_flusher = false;
  {
    std::lock_guard<std::mutex> lock(egress.mutex);
    const int dst = message.to.node;
    Batch* batch = nullptr;
    for (Batch& open : egress.open) {
      if (open.dst_node == dst) {
        batch = &open;
        break;
      }
    }
    if (batch != nullptr && batch->iter != message.iter) {
      // Iteration boundary: cut the old batch first so per-destination FIFO
      // order is preserved.
      egress.ready.push_back(std::move(*batch));
      egress.open.erase(egress.open.begin() + (batch - egress.open.data()));
      batch = nullptr;
      wake_flusher = true;
    }
    if (batch == nullptr) {
      Batch fresh;
      fresh.dst_node = dst;
      fresh.iter = message.iter;
      fresh.opened = std::chrono::steady_clock::now();
      egress.open.push_back(std::move(fresh));
      batch = &egress.open.back();
      wake_flusher = true;
    }
    batch->payload_bytes += kBatchEntryHeaderBytes + message.PayloadBytes();
    batch->entries.emplace_back(std::move(mailbox), std::move(message));
    if (force_flush ||
        static_cast<int>(batch->entries.size()) >= batch_options_.max_batch_messages ||
        batch->payload_bytes >= batch_options_.max_batch_bytes) {
      egress.ready.push_back(std::move(*batch));
      egress.open.erase(egress.open.begin() + (batch - egress.open.data()));
      wake_flusher = true;
    }
  }
  if (wake_flusher) {
    egress.cv.notify_all();
  }
  return Status::Ok();
}

void MessageBus::EnableBatching(const EgressBatchOptions& options) {
  CHECK(!batching_.load(std::memory_order_acquire)) << "batching already enabled";
  CHECK_GT(options.max_batch_messages, 0);
  CHECK_GT(options.max_batch_bytes, 0);
  CHECK_GT(options.flush_interval_us, 0);
  batch_options_ = options;
  egress_.resize(static_cast<size_t>(num_nodes()));
  for (int n = 0; n < num_nodes(); ++n) {
    egress_[static_cast<size_t>(n)] = std::make_unique<NodeEgress>();
  }
  batching_.store(true, std::memory_order_release);
  for (int n = 0; n < num_nodes(); ++n) {
    egress_[static_cast<size_t>(n)]->flusher = std::thread([this, n] { FlusherLoop(n); });
  }
}

void MessageBus::DeliverBatch(int src, Batch batch) {
  const int64_t bytes = kWireFrameBytes + batch.payload_bytes;
  std::shared_ptr<RateLimiter> limiter;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    limiter = limiters_[static_cast<size_t>(src)];
  }
  if (limiter != nullptr) {
    limiter->Acquire(bytes);
  }
  tx_bytes_[static_cast<size_t>(src)].fetch_add(bytes, std::memory_order_relaxed);
  tx_messages_[static_cast<size_t>(src)].fetch_add(1, std::memory_order_relaxed);
  tx_entries_[static_cast<size_t>(src)].fetch_add(
      static_cast<int64_t>(batch.entries.size()), std::memory_order_relaxed);
  for (auto& [mailbox, message] : batch.entries) {
    const MessageType type = message.type;
    if (!mailbox->Push(std::move(message)) && type != MessageType::kShutdown) {
      // The unbatched path surfaces this as UnavailableError to the
      // sender; here the sender is long gone, so make the drop loud —
      // outside teardown it means a receiver will wait forever.
      LOG(Warning) << "egress batch from node " << src
                   << " dropped a message for a closed mailbox";
    }
  }
}

void MessageBus::FlusherLoop(int node) {
  NodeEgress& egress = *egress_[static_cast<size_t>(node)];
  const auto interval = std::chrono::microseconds(batch_options_.flush_interval_us);
  std::unique_lock<std::mutex> lock(egress.mutex);
  while (true) {
    if (egress.stop && egress.ready.empty() && egress.open.empty()) {
      break;
    }
    if (egress.ready.empty()) {
      if (egress.open.empty()) {
        if (egress.flush_requested && egress.delivering == 0) {
          egress.flush_requested = false;
          egress.idle_cv.notify_all();
        }
        egress.cv.wait(lock, [&] {
          return egress.stop || egress.flush_requested || !egress.ready.empty() ||
                 !egress.open.empty();
        });
        continue;
      }
      // Let young open batches age up to the flush interval before cutting
      // them (unless a flush/stop wants everything out now).
      if (!egress.stop && !egress.flush_requested) {
        auto earliest = egress.open.front().opened;
        for (const Batch& open : egress.open) {
          earliest = std::min(earliest, open.opened);
        }
        egress.cv.wait_until(lock, earliest + interval, [&] {
          return egress.stop || egress.flush_requested || !egress.ready.empty();
        });
      }
      const auto now = std::chrono::steady_clock::now();
      for (size_t i = 0; i < egress.open.size();) {
        if (egress.stop || egress.flush_requested || now - egress.open[i].opened >= interval) {
          egress.ready.push_back(std::move(egress.open[i]));
          egress.open.erase(egress.open.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }
    while (!egress.ready.empty()) {
      Batch batch = std::move(egress.ready.front());
      egress.ready.pop_front();
      ++egress.delivering;
      lock.unlock();
      DeliverBatch(node, std::move(batch));
      lock.lock();
      --egress.delivering;
    }
    if (egress.flush_requested && egress.open.empty() && egress.ready.empty() &&
        egress.delivering == 0) {
      egress.flush_requested = false;
      egress.idle_cv.notify_all();
    }
  }
}

void MessageBus::FlushEgress() {
  if (!batching_.load(std::memory_order_acquire)) {
    return;
  }
  for (auto& egress_ptr : egress_) {
    NodeEgress& egress = *egress_ptr;
    std::unique_lock<std::mutex> lock(egress.mutex);
    if (egress.open.empty() && egress.ready.empty() && egress.delivering == 0) {
      continue;
    }
    egress.flush_requested = true;
    egress.cv.notify_all();
    egress.idle_cv.wait(lock, [&] {
      return !egress.flush_requested ||
             (egress.open.empty() && egress.ready.empty() && egress.delivering == 0);
    });
  }
}

void MessageBus::SetEgressLimit(int node, double bytes_per_sec) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  if (bytes_per_sec <= 0.0) {
    limiters_[static_cast<size_t>(node)].reset();
  } else {
    limiters_[static_cast<size_t>(node)] = std::make_shared<RateLimiter>(bytes_per_sec);
  }
}

std::vector<int64_t> MessageBus::TxBytes() const {
  std::vector<int64_t> out(tx_bytes_.size());
  for (size_t i = 0; i < tx_bytes_.size(); ++i) {
    out[i] = tx_bytes_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t MessageBus::TxBytes(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return tx_bytes_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
}

std::vector<int64_t> MessageBus::TxMessages() const {
  std::vector<int64_t> out(tx_messages_.size());
  for (size_t i = 0; i < tx_messages_.size(); ++i) {
    out[i] = tx_messages_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t MessageBus::TxMessages(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return tx_messages_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
}

std::vector<int64_t> MessageBus::TxEntries() const {
  std::vector<int64_t> out(tx_entries_.size());
  for (size_t i = 0; i < tx_entries_.size(); ++i) {
    out[i] = tx_entries_[i].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t MessageBus::TxEntries(int node) const {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  return tx_entries_[static_cast<size_t>(node)].load(std::memory_order_relaxed);
}

void MessageBus::ResetTraffic() {
  for (size_t n = 0; n < tx_bytes_.size(); ++n) {
    tx_bytes_[n].store(0, std::memory_order_relaxed);
    tx_messages_[n].store(0, std::memory_order_relaxed);
    tx_entries_[n].store(0, std::memory_order_relaxed);
  }
}

void MessageBus::CloseAll() {
  FlushEgress();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [address, mailbox] : mailboxes_) {
    mailbox->Close();
  }
}

}  // namespace poseidon

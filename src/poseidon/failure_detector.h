/// \file
/// Coordinator-driven liveness: heartbeat tickers and a failure detector.
///
/// Every worker process runs a HeartbeatTicker — a background thread that
/// sends a kHeartbeat message to the coordinator's monitor mailbox every
/// `heartbeat_interval_ms`, exactly like a production process would ping its
/// cluster manager. The FailureDetector service loop (on the coordinator
/// node) timestamps each beat and declares a worker *suspected* once its
/// last beat is older than `suspect_after_ms`; the suspicion callback is the
/// hook the trainer's recovery manager hangs off.
///
/// Heartbeats ride the normal MessageBus, so they are subject to the fault
/// fabric: delayed or dropped-and-retransmitted beats arrive late, which is
/// why `suspect_after_ms` must comfortably exceed both the heartbeat
/// interval and the configured fault delays (the classic accuracy /
/// detection-latency trade-off).
#ifndef POSEIDON_SRC_POSEIDON_FAILURE_DETECTOR_H_
#define POSEIDON_SRC_POSEIDON_FAILURE_DETECTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/transport/bus.h"

namespace poseidon {

struct FailureDetectorOptions {
  bool enabled = false;
  /// Node hosting the monitor mailbox (the coordinator's node).
  int monitor_node = 0;
  int heartbeat_interval_ms = 5;
  /// A worker is suspected after this long without a beat. Must exceed the
  /// heartbeat interval plus worst-case injected delay by a wide margin.
  int suspect_after_ms = 150;
};

/// Worker-side liveness beacon. Stop() simulates the process dying (beats
/// cease instantly); Resume() is called by the recovery path after restart.
class HeartbeatTicker {
 public:
  HeartbeatTicker(int worker, MessageBus* bus, const FailureDetectorOptions& options);
  ~HeartbeatTicker();

  HeartbeatTicker(const HeartbeatTicker&) = delete;
  HeartbeatTicker& operator=(const HeartbeatTicker&) = delete;

  void Stop();
  void Resume();

 private:
  void Loop();

  const int worker_;
  MessageBus* bus_;
  const FailureDetectorOptions options_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool beating_ = true;
  bool beat_now_ = false;  // Resume() requests an immediate beat
  bool shutdown_ = false;
  std::thread thread_;
};

/// Coordinator-side detector. Runs its own service thread over the monitor
/// mailbox; invokes `on_suspect(worker)` (on the detector thread) exactly
/// once per failure episode.
class FailureDetector {
 public:
  using SuspectCallback = std::function<void(int worker)>;

  FailureDetector(MessageBus* bus, int num_workers, const FailureDetectorOptions& options,
                  SuspectCallback on_suspect);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Arms the deadlines and spawns the service thread.
  void Start();
  /// Stops the service thread (idempotent; also run by the destructor).
  void Shutdown();

  /// Recovery completed: clears the suspicion and re-arms the deadline, so
  /// a later crash of the same worker triggers a fresh callback.
  void NotifyRecovered(int worker);

  bool suspected(int worker) const;
  /// Cumulative suspicion episodes for `worker` (tests).
  int64_t suspicions(int worker) const;

  /// Completed deadline scans since Start() (one per service-loop pass).
  int64_t scans() const;
  /// Test hook: blocks until `n` more deadline scans complete — a condition
  /// wait on the service loop's observed progress, so "a couple of
  /// deadlines elapsed" never degrades into a wall-clock sleep that a slow
  /// CI box can undercut. False if `timeout_ms` passes first.
  bool AwaitScans(int64_t n, int timeout_ms);

 private:
  void Loop();

  MessageBus* bus_;
  const int num_workers_;
  const FailureDetectorOptions options_;
  const SuspectCallback on_suspect_;
  std::shared_ptr<MessageBus::Mailbox> mailbox_;

  mutable std::mutex mutex_;
  std::condition_variable scan_cv_;
  int64_t scans_ = 0;  // guarded by mutex_
  std::vector<std::chrono::steady_clock::time_point> last_beat_;
  std::vector<bool> suspected_;
  std::vector<int64_t> suspicions_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_FAILURE_DETECTOR_H_

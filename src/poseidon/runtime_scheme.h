/// \file
/// Per-layer synchronization plan for the threaded runtime.
#ifndef POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_
#define POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_

#include <string>
#include <vector>

#include "src/models/comm_cost.h"
#include "src/planner/comm_plan.h"
#include "src/planner/comm_planner.h"
#include "src/poseidon/coordinator.h"

namespace poseidon {

/// What the trainer is asked to do for parameter layers. Under the paper's
/// policies conv layers always use the parameter server and only FC layers
/// vary; the collective policies (ring/tree/hybrid-collective) instead apply
/// to every parameter layer, since allreduce needs no factorization.
/// Stateless layers synchronize nothing either way.
enum class FcSyncPolicy {
  kDense,       // full matrices through the KV store
  kSfb,         // sufficient factor broadcasting
  kHybrid,      // Algorithm 1: coordinator.BestScheme per layer
  kOneBit,      // 1-bit quantized gradients, whole layer to one shard
  kRingAllreduce,     // ring allreduce for every parameter layer
  kTreeAllreduce,     // binary-tree reduce-broadcast for every parameter layer
  kHybridCollective,  // three-way HybComm: BestSchemeExtended per layer
};

enum class RuntimeScheme {
  kNone,     // no parameters
  kPsDense,  // sharded PS, dense chunks
  kSfb,      // peer broadcast + local reconstruction/update
  kOneBit,   // quantized push to a single owner shard
  kRingAllreduce,  // peer ring allreduce + local update
  kTreeAllreduce,  // peer tree allreduce + local update
};

const char* RuntimeSchemeName(RuntimeScheme scheme);

/// Maps a CommPlan assignment onto the runtime's scheme vocabulary (the two
/// enums are 1:1; the planner's lives in src/planner so the planner does not
/// depend on src/poseidon).
RuntimeScheme RuntimeSchemeFromPlanned(PlannedScheme scheme);

/// Resolves the policy against the coordinator's information book.
std::vector<RuntimeScheme> ResolveSchemes(const Coordinator& coordinator,
                                          FcSyncPolicy policy);

/// A resolved synchronization plan: the per-layer schemes plus the KV shard
/// count per server the cost model recommends for the PS layers.
struct SyncPlan {
  std::vector<RuntimeScheme> schemes;
  int ps_shards = 1;
};

/// ResolveSchemes plus shard-count selection: for every layer the plan routes
/// through the PS, asks BestPsShardCount how many shard endpoints per server
/// (up to `max_shards`) the multi-shard cost rows justify, and recommends the
/// largest answer (the busiest layer sets the requirement; extra shards only
/// add idle endpoints for smaller layers).
SyncPlan ResolveSchemesSharded(const Coordinator& coordinator, FcSyncPolicy policy,
                               int max_shards);

/// What the trainer is asked to do about wire bytes on the PS path. The
/// first four pin one codec for every eligible layer; kAuto lets the byte
/// rows of the cost model pick per layer (BestCompression).
enum class PsCompressionPolicy {
  kNone,  // raw fp32 both directions (the paper's wire format)
  kFp16,  // binary16 push with stochastic rounding + error feedback
  kInt8,  // int8 push with per-chunk scales + error feedback
  kTopK,  // top-k sparse push with error feedback
  kAuto,  // per-layer: cheapest byte row (HybComm extended to compression)
};

const char* PsCompressionPolicyName(PsCompressionPolicy policy);

/// Planner-side equivalents of the runtime policies (1:1 mappings; the
/// trainer uses them to express its options as a PlanRequest).
PlanPolicy PlanPolicyFromFcPolicy(FcSyncPolicy policy);
PlanCodecPolicy PlanCodecPolicyFromCompression(PsCompressionPolicy policy);

/// Resolves the policy to a per-layer compression plan. Only layers routed
/// through the PS (RuntimeScheme::kPsDense) compress, and only once they
/// clear `min_floats` (kCompressionMinFloats by default; tests and benches
/// with tiny models lower it) — small layers stay raw, so a policy is a
/// ceiling, not a mandate. `topk_density` must be in (0, 1] when the policy
/// can select kTopK.
std::vector<GradCompression> ResolveCompression(
    const Coordinator& coordinator, const std::vector<RuntimeScheme>& schemes,
    PsCompressionPolicy policy, double topk_density,
    int64_t min_floats = kCompressionMinFloats);

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_

/// \file
/// Wire messages exchanged by Poseidon's client libraries and KV stores.
///
/// The in-process transport moves real payloads (gradient chunks, sufficient
/// factors, 1-bit encodings) between worker and server threads, so the
/// concurrent behaviour of the §4 architecture — BSP count vectors, per-layer
/// syncers, multi-threaded communication — is exercised for real, not just
/// simulated.
///
/// Messages are zero-copy: every payload is a PayloadView into a refcounted
/// slab (see src/transport/payload.h), tagged with the WireCodec that
/// serialized it. A broadcast shares one slab across all receivers, and a
/// shard-coalesced push references the sender's staging slab per KV pair
/// without per-pair copies. Framing sizes below feed the traffic accounting
/// and the egress batcher (docs/WIRE_FORMAT.md documents the full layout).
#ifndef POSEIDON_SRC_TRANSPORT_MESSAGE_H_
#define POSEIDON_SRC_TRANSPORT_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "src/transport/codec.h"
#include "src/transport/payload.h"

namespace poseidon {

/// Transport-level address. Server shard s listens on {node, kServerPort + s}
/// (ports [0, kSyncerPortBase) are reserved for shard endpoints, so a server
/// node can host up to 1000 key-range shards); each worker-side syncer has a
/// mailbox at {node, kSyncerPortBase + layer}.
struct Address {
  int node = 0;
  int port = 0;

  bool operator==(const Address& other) const {
    return node == other.node && port == other.port;
  }
};

inline constexpr int kServerPort = 0;
inline constexpr int kSyncerPortBase = 1000;
inline constexpr int kMaxShardsPerServer = kSyncerPortBase;  ///< shard port space

/// The mailbox address of shard `shard` on server node `server`.
inline Address ServerShardAddress(int server, int shard) {
  return Address{server, kServerPort + shard};
}
/// Collective-communication mailboxes live in their own port space so a
/// layer's collective participant never collides with its PS-style syncer
/// mailbox: {node, kCollectivePortBase + tag} where tag is the layer index.
inline constexpr int kCollectivePortBase = 1000000;
/// The failure detector's mailbox lives above every data-plane port: workers
/// heartbeat to {monitor node, kMonitorPort} (see
/// src/poseidon/failure_detector.h).
inline constexpr int kMonitorPort = 2000000;

struct AddressHash {
  size_t operator()(const Address& a) const {
    return static_cast<size_t>(a.node) * 1000003u + static_cast<size_t>(a.port);
  }
};

enum class MessageType {
  kGradPush,    ///< worker -> server: gradient chunks of one layer
  kParamReply,  ///< server -> worker: updated parameter chunks
  kSfBroadcast, ///< worker -> peer: sufficient-factor frame (bias included)
  kOneBitPush,  ///< worker -> server: 1-bit frame (bias included)
  kCollective,  ///< peer -> peer: one hop of a ring/tree collective
  kHeartbeat,   ///< worker -> failure detector: liveness beacon
  kShutdown,    ///< trainer -> server: stop serving
};

/// Per-wire-message framing overhead (type, addresses, layer/worker/iter/
/// step/codec headers).
inline constexpr int64_t kWireFrameBytes = 32;
/// Per-chunk header within a message (offset + length).
inline constexpr int64_t kWireChunkHeaderBytes = 16;
/// Per-sub-message header inside a batched frame (see MessageBus batching):
/// the batch carries from/iter once, each entry keeps its own to-port,
/// type, layer, worker and step.
inline constexpr int64_t kBatchEntryHeaderBytes = 12;

/// One encoded span of a layer's flattened parameter space: `offset` floats
/// into the layer (raw-float chunks; self-describing codec frames use 0)
/// and a view into the slab holding the encoded words.
struct WireChunk {
  int64_t offset = 0;
  PayloadView view;
};

struct Message {
  MessageType type = MessageType::kShutdown;
  Address from;
  Address to;
  int layer = -1;
  int worker = -1;   ///< originating worker id
  int64_t iter = -1;
  /// Collective protocol step: ring hop index (0..2(P-1)-1), or the tree
  /// phase (kTreeReduceStep / kTreeBroadcastStep). Unused otherwise.
  int step = -1;
  /// Per-stream sequence number, assigned by the bus when fault injection is
  /// on (a "stream" is one (from address, to address) pair). -1 means
  /// unsequenced: local traffic, shutdowns, and all traffic on a fault-free
  /// bus. The receiver-side reorder buffer uses it to deduplicate and
  /// re-order deliveries (see src/transport/sequencer.h); it rides in the
  /// existing kWireFrameBytes header budget.
  int64_t seq = -1;

  /// Steady-clock ns at which the bus accepted this message for a remote
  /// destination, stamped only while link stats are enabled (see
  /// MessageBus::EnableLinkStats). 0 means unstamped. Transport metadata
  /// like a NIC hardware timestamp — not part of the accounted wire bytes.
  int64_t send_ns = 0;

  /// Codec that serialized every chunk in this message.
  WireCodec codec = WireCodec::kRawFloat;
  std::vector<WireChunk> chunks;

  /// Approximate wire size including framing, for traffic accounting.
  int64_t WireBytes() const;
  /// Chunk headers + encoded words only (what a batched frame carries per
  /// entry, the message-level frame being shared).
  int64_t PayloadBytes() const;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_MESSAGE_H_

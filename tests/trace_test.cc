// Tests for the span tracer (src/stats/trace.h): recording semantics, ring
// overflow, Chrome-trace JSON export — and the flight-recorder guarantees
// that matter at the system level: a traced sharded-SSP training run emits
// the full WFBP span schema, tracing never changes the training trajectory,
// and the live stall breakdown is directionally consistent with the
// protocol simulator's GPU busy fraction.
#include "src/stats/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/protocol_sim.h"
#include "src/cluster/system_config.h"
#include "src/models/zoo.h"
#include "src/poseidon/trainer.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Every tracer test starts from a clean, disabled tracer. The tracer is
// process-global, so tests in this binary are written to be order-safe.
void ResetTracer() {
  Tracer::Disable();
  Tracer::Reset();
}

TEST(TracerTest, DisabledRecordsNothing) {
  ResetTracer();
  EXPECT_FALSE(Tracer::enabled());
  Tracer::Instant("noop");
  Tracer::Begin("noop");
  Tracer::End("noop");
  { TraceSpan span("noop"); }
  EXPECT_EQ(Tracer::recorded(), 0);
  EXPECT_EQ(Tracer::NowNs(), 0);
}

TEST(TracerTest, SpansExportAsChromeTraceJson) {
  ResetTracer();
  Tracer::Enable();
  {
    TraceSpan outer("outer", "test", /*arg=*/7);
    { TraceSpan inner("inner", "test"); }
    Tracer::Instant("tick", "test", /*arg=*/3);
  }
  Tracer::Complete("window", "test", /*start_ns=*/1000, /*dur_ns=*/2500);
  Tracer::Disable();

  EXPECT_EQ(Tracer::recorded(), 6);  // 2 begins + 2 ends + instant + complete
  const std::string json = Tracer::ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
  // Balanced begin/end pairs, one instant (with scope), one complete (with
  // duration), and the numeric args survive.
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""), 2);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"E\""), 2);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"i\""), 1);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"X\""), 1);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"v\": 7}"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"v\": 3}"), std::string::npos);
}

TEST(TracerTest, FullRingDropsInsteadOfBlocking) {
  ResetTracer();
  Tracer::Enable(/*ring_capacity=*/16);
  for (int i = 0; i < 100; ++i) {
    Tracer::Instant("flood", "test");
  }
  Tracer::Disable();
  EXPECT_EQ(Tracer::recorded(), 16);
  EXPECT_EQ(Tracer::dropped(), 84);

  Tracer::Reset();
  EXPECT_EQ(Tracer::recorded(), 0);
  EXPECT_EQ(Tracer::dropped(), 0);
}

// ------------------------------------------------------- system-level -------

// A traced sharded-SSP training run must contain the whole WFBP lifecycle:
// per-layer backward, syncer send/receive, shard apply, and SSP stall spans.
// Whether any read actually stalls depends on thread interleaving, so the
// run is repeated (fresh trace each time) until a stall has been observed.
TEST(TraceSchemaTest, ShardedSspRunEmitsWfbpSpans) {
  const SyntheticDataset dataset = testing::TinyDataset();
  std::string json;
  for (int attempt = 0; attempt < 6 && json.empty(); ++attempt) {
    ResetTracer();
    Tracer::Enable();
    // Later attempts fall back to staleness 0 (BSP is SSP with s=0 here):
    // gating every read on the full push quorum makes a deferred read — and
    // therefore a recorded stall — all but certain.
    const int staleness = attempt < 3 ? 1 : 0;
    TrainerOptions options = testing::SmallTrainerOptions(
        /*workers=*/4, /*servers=*/2, /*shards=*/2, staleness);
    PoseidonTrainer trainer(testing::TinyMlpFactory(/*hidden_layers=*/2), options);
    trainer.Train(dataset, 8);
    trainer.bus().FlushEgress();
    Tracer::Disable();
    const std::string exported = Tracer::ExportChromeJson();
    if (exported.find("kv.ssp_stall") != std::string::npos) {
      json = exported;
    }
  }
  ASSERT_FALSE(json.empty()) << "no SSP stall observed in any attempt";

  // The WFBP lifecycle, worker side...
  EXPECT_NE(json.find("\"iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"backward\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_all\""), std::string::npos);
  // ...the syncer pipeline...
  EXPECT_NE(json.find("\"sync.move_out\""), std::string::npos);
  EXPECT_NE(json.find("\"sync.send\""), std::string::npos);
  EXPECT_NE(json.find("\"sync.receive\""), std::string::npos);
  // ...and the server side.
  EXPECT_NE(json.find("\"kv.apply\""), std::string::npos);
  EXPECT_NE(json.find("\"kv.ssp_stall\""), std::string::npos);

  // Begin/end pairs must balance: every TraceSpan that began also ended.
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  ResetTracer();
}

// Tracing is observation only: a traced run must follow bitwise the same
// trajectory (losses and final parameters) as an untraced one.
TEST(TraceSchemaTest, TracingDoesNotPerturbTheTrajectory) {
  ResetTracer();
  TrainerOptions options = testing::SmallTrainerOptions();
  const testing::Trajectory untraced = testing::CaptureTrajectory(options, 6);

  Tracer::Enable();
  const testing::Trajectory traced = testing::CaptureTrajectory(options, 6);
  ResetTracer();

  EXPECT_TRUE(untraced == traced);
}

// The live trainer's compute/comm-wait/SSP-stall breakdown must be populated
// and directionally consistent with the protocol simulator's GPU busy
// fraction: both are fractions in (0, 1], and for the tiny MLP both must
// report that the GPU does real work (neither pure compute nor pure stall).
TEST(StallBreakdownTest, LiveBreakdownConsistentWithProtocolSim) {
  const SyntheticDataset dataset = testing::TinyDataset();
  TrainerOptions options = testing::SmallTrainerOptions(/*workers=*/2, /*servers=*/2);
  PoseidonTrainer trainer(testing::TinyMlpFactory(), options);
  const std::vector<IterationStats> stats = trainer.Train(dataset, 6);

  ASSERT_EQ(stats.size(), 6u);
  for (const IterationStats& s : stats) {
    EXPECT_GT(s.compute_ms, 0.0);
    EXPECT_GE(s.comm_wait_ms, 0.0);
  }

  const StallBreakdown live = trainer.stall_breakdown();
  EXPECT_GT(live.compute_s, 0.0);
  EXPECT_GE(live.comm_wait_s, 0.0);
  EXPECT_GE(live.ssp_stall_s, 0.0);
  const double live_busy = live.GpuBusyFrac();
  EXPECT_GT(live_busy, 0.0);
  EXPECT_LE(live_busy, 1.0);

  // The simulator's independent model of the same phenomenon (Fig 7): a
  // multi-node dense-PS run has a busy fraction strictly inside (0, 1).
  ClusterSpec cluster;
  cluster.num_nodes = 2;
  const SimResult sim =
      RunProtocolSimulation(MakeAlexNet(), CaffePlusWfbp(), cluster, Engine::kCaffe);
  EXPECT_GT(sim.gpu_busy_frac, 0.0);
  EXPECT_LE(sim.gpu_busy_frac, 1.0);
}

}  // namespace
}  // namespace poseidon

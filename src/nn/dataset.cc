#include "src/nn/dataset.h"

#include <cmath>

#include "src/common/logging.h"

namespace poseidon {

SyntheticDataset::SyntheticDataset(const DatasetConfig& config) : config_(config) {
  CHECK_GT(config_.num_classes, 1);
  CHECK_GT(config_.train_size, 0);
  Rng rng(config_.seed);
  const int64_t pixels = static_cast<int64_t>(config_.channels) * config_.height * config_.width;
  prototypes_.reserve(config_.num_classes);
  for (int c = 0; c < config_.num_classes; ++c) {
    Rng proto_rng = rng.Split(static_cast<uint64_t>(c) + 1);
    Tensor proto({pixels});
    double norm_sq = 0.0;
    for (int64_t i = 0; i < pixels; ++i) {
      proto[i] = proto_rng.NextGaussian();
      norm_sq += static_cast<double>(proto[i]) * proto[i];
    }
    // Unit RMS so noise_stddev is directly the noise-to-signal ratio.
    const float scale = static_cast<float>(1.0 / std::sqrt(norm_sq / pixels));
    for (int64_t i = 0; i < pixels; ++i) {
      proto[i] *= scale;
    }
    prototypes_.push_back(std::move(proto));
  }
}

void SyntheticDataset::MakeSample(int64_t global_index, bool test, float* out,
                                  int* label) const {
  const int64_t pixels =
      static_cast<int64_t>(config_.channels) * config_.height * config_.width;
  // Distinct streams for train and test samples.
  const uint64_t salt = (test ? 0x7E57ull << 32 : 0ull) ^ static_cast<uint64_t>(global_index);
  Rng rng = Rng(config_.seed).Split(salt + 1000003);
  *label = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(config_.num_classes)));
  const Tensor& proto = prototypes_[static_cast<size_t>(*label)];
  for (int64_t i = 0; i < pixels; ++i) {
    out[i] = proto[i] + config_.noise_stddev * rng.NextGaussian();
  }
}

Batch SyntheticDataset::TrainBatch(int64_t index, int batch_size, int worker,
                                   int num_workers) const {
  CHECK_GT(batch_size, 0);
  CHECK_GE(worker, 0);
  CHECK_LT(worker, num_workers);
  const int64_t pixels =
      static_cast<int64_t>(config_.channels) * config_.height * config_.width;
  Batch batch;
  batch.images = Tensor({batch_size, config_.channels, config_.height, config_.width});
  batch.labels.resize(static_cast<size_t>(batch_size));
  const int64_t total = static_cast<int64_t>(batch_size) * num_workers;
  for (int j = 0; j < batch_size; ++j) {
    // Global sample position: iteration-major, then worker-major, so the
    // union over workers equals one big single-node batch.
    const int64_t id = index * total + static_cast<int64_t>(worker) * batch_size + j;
    const int64_t sample = id % config_.train_size;
    MakeSample(sample, /*test=*/false, batch.images.data() + j * pixels,
               &batch.labels[static_cast<size_t>(j)]);
  }
  return batch;
}

Batch SyntheticDataset::TestSet() const {
  const int64_t pixels =
      static_cast<int64_t>(config_.channels) * config_.height * config_.width;
  Batch batch;
  batch.images =
      Tensor({config_.test_size, config_.channels, config_.height, config_.width});
  batch.labels.resize(static_cast<size_t>(config_.test_size));
  for (int j = 0; j < config_.test_size; ++j) {
    MakeSample(j, /*test=*/true, batch.images.data() + j * pixels,
               &batch.labels[static_cast<size_t>(j)]);
  }
  return batch;
}

}  // namespace poseidon

#include "src/stats/bench_record.h"

#include <cstdio>
#include <sstream>

#include "src/common/logging.h"

namespace poseidon {
namespace {

void AppendEscaped(std::ostringstream* out, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      *out << '\\';
    }
    *out << ch;
  }
}

void AppendNumber(std::ostringstream* out, double value) {
  if (value != value) {
    *out << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out << buf;
}

}  // namespace

void BenchRecord::SetMeta(const std::string& key, const std::string& value) {
  string_meta_[key] = value;
}

void BenchRecord::SetMeta(const std::string& key, double value) {
  numeric_meta_[key] = value;
}

void BenchRecord::Append(const std::string& series, double value) {
  series_[series].push_back(value);
}

void BenchRecord::Set(const std::string& series, double value) {
  series_[series] = {value};
}

bool BenchRecord::HasSeries(const std::string& series) const {
  return series_.count(series) > 0;
}

const std::vector<double>& BenchRecord::Series(const std::string& series) const {
  auto it = series_.find(series);
  CHECK(it != series_.end()) << "no such series: " << series;
  return it->second;
}

std::string BenchRecord::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"bench\": \"";
  AppendEscaped(&out, bench_name_);
  out << "\",\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : string_meta_) {
    out << (first ? "\n" : ",\n") << "    \"";
    AppendEscaped(&out, key);
    out << "\": \"";
    AppendEscaped(&out, value);
    out << "\"";
    first = false;
  }
  for (const auto& [key, value] : numeric_meta_) {
    out << (first ? "\n" : ",\n") << "    \"";
    AppendEscaped(&out, key);
    out << "\": ";
    AppendNumber(&out, value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [name, values] : series_) {
    out << (first ? "\n" : ",\n") << "    \"";
    AppendEscaped(&out, name);
    out << "\": [";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      AppendNumber(&out, values[i]);
    }
    out << "]";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

Status BenchRecord::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return UnavailableError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace poseidon

// The scalar reference backend. This translation unit defines the semantics
// every vector backend must reproduce bit-for-bit; CMake compiles it with
// -fno-tree-vectorize -ffp-contract=off so it stays an honest scalar
// baseline (no autovectorization inflating the roofline denominator, no
// fused multiply-adds changing rounding on FMA-capable ISAs).
#include <cmath>

#include "src/simd/bitpack.h"
#include "src/simd/quant.h"
#include "src/simd/vec.h"

namespace poseidon {
namespace simd {
namespace {

void ScalarReduceAdd(float* dst, const float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] += src[i];
  }
}

void ScalarScale(float* dst, float alpha, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] *= alpha;
  }
}

void ScalarAxpy(float* y, float alpha, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void ScalarSgdStep(float* v, float* value, const float* grad, float lr, float mu,
                   float wd, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    v[i] = (mu * v[i] + grad[i]) + wd * value[i];
    value[i] -= lr * v[i];
  }
}

void ScalarOneBitEncodeStats(const float* grad, const float* residual, int64_t rows,
                             int64_t cols, uint32_t* bits, double* pos_sum,
                             double* neg_sum, int32_t* pos_count,
                             int32_t* neg_count) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = q >= 0.0f;
      if (positive) {
        bits[flat >> 5] |= 1u << (flat & 31);
      }
      // Blended accumulation — the vector backends mask lanes to +0.0, and
      // adding +0.0 to these sums is bit-exact (they can never be -0.0), so
      // this matches both the lanes and the historical branchy loop.
      pos_sum[c] += positive ? static_cast<double>(q) : 0.0;
      neg_sum[c] += positive ? 0.0 : static_cast<double>(q);
      pos_count[c] += positive ? 1 : 0;
      neg_count[c] += positive ? 0 : 1;
    }
  }
}

void ScalarOneBitResidualUpdate(const float* grad, int64_t rows, int64_t cols,
                                const uint32_t* bits, const float* pos_level,
                                const float* neg_level, float* residual) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      residual[flat] = q - (positive ? pos_level[c] : neg_level[c]);
    }
  }
}

void ScalarOneBitDecode(const uint32_t* bits, const float* pos_level,
                        const float* neg_level, int64_t rows, int64_t cols,
                        float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      const int64_t flat = base + c;
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      out[flat] = positive ? pos_level[c] : neg_level[c];
    }
  }
}

void ScalarFp16EncodeSr(const float* src, int64_t n, uint32_t seed,
                        int64_t base_index, uint16_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t rnd13 =
        internal::MixBits(seed, static_cast<uint32_t>(base_index + i)) >> 19;
    out[i] = internal::Fp16Pack(internal::FloatBits(src[i]), rnd13);
  }
}

void ScalarFp16EncodeRn(const float* src, int64_t n, uint16_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t u = internal::FloatBits(src[i]);
    out[i] = internal::Fp16Pack(u, internal::Fp16RnIncrement(u & 0x7FFFFFFFu));
  }
}

void ScalarFp16Decode(const uint16_t* src, int64_t n, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = internal::Fp16Unpack(src[i]);
  }
}

void ScalarInt8EncodeSr(const float* src, int64_t n, float inv_scale, uint32_t seed,
                        int64_t base_index, int8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    const float t = src[i] * inv_scale;
    const float fl = std::floor(t);
    const float frac = t - fl;
    const uint32_t h =
        internal::MixBits(seed, static_cast<uint32_t>(base_index + i));
    // 24-bit uniform in [0, 1): the int -> float conversion and the
    // power-of-two multiply are both exact.
    const float r = static_cast<float>(h >> 8) * 0x1p-24f;
    float q = fl + (frac > r ? 1.0f : 0.0f);
    q = q > 127.0f ? 127.0f : q;
    q = q < -127.0f ? -127.0f : q;
    q = q == q ? q : 0.0f;  // NaN squash: the cast below must be defined
    out[i] = static_cast<int8_t>(static_cast<int32_t>(q));
  }
}

void ScalarInt8Decode(const int8_t* src, int64_t n, float scale, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(src[i]) * scale;
  }
}

float ScalarMaxAbs(const float* src, int64_t n) {
  float m = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(src[i]);
    m = a > m ? a : m;  // ordered compare: NaNs never enter the max
  }
  return m;
}

int64_t ScalarCountAbsGreater(const float* src, int64_t n, float threshold) {
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    count += std::fabs(src[i]) > threshold ? 1 : 0;
  }
  return count;
}

const Kernels kScalarKernels = {
    Level::kScalar,          ScalarReduceAdd,
    ScalarScale,             ScalarAxpy,
    ScalarSgdStep,           ScalarOneBitEncodeStats,
    ScalarOneBitResidualUpdate, ScalarOneBitDecode,
    ScalarFp16EncodeSr,      ScalarFp16EncodeRn,
    ScalarFp16Decode,        ScalarInt8EncodeSr,
    ScalarInt8Decode,        ScalarMaxAbs,
    ScalarCountAbsGreater,
};

}  // namespace

const Kernels* ScalarKernels() { return &kScalarKernels; }

}  // namespace simd
}  // namespace poseidon

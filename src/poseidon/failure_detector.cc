#include "src/poseidon/failure_detector.h"

#include <utility>

#include "src/common/logging.h"

namespace poseidon {

HeartbeatTicker::HeartbeatTicker(int worker, MessageBus* bus,
                                 const FailureDetectorOptions& options)
    : worker_(worker), bus_(bus), options_(options) {
  CHECK_NOTNULL(bus);
  thread_ = std::thread([this] { Loop(); });
}

HeartbeatTicker::~HeartbeatTicker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void HeartbeatTicker::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  beating_ = false;
}

void HeartbeatTicker::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    beating_ = true;
    beat_now_ = true;
  }
  cv_.notify_all();  // wakes the loop so recovery is visible at once
}

void HeartbeatTicker::Loop() {
  const auto interval = std::chrono::milliseconds(options_.heartbeat_interval_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    if (beating_) {
      lock.unlock();
      Message beat;
      beat.type = MessageType::kHeartbeat;
      beat.from = Address{worker_, kMonitorPort};
      beat.to = Address{options_.monitor_node, kMonitorPort};
      beat.worker = worker_;
      // Best effort by design: a beat sent before the detector registered
      // (or after it shut down) is just lost, like a UDP ping.
      (void)bus_->Send(std::move(beat));
      lock.lock();
    }
    cv_.wait_for(lock, interval, [this] { return shutdown_ || beat_now_; });
    beat_now_ = false;
  }
}

FailureDetector::FailureDetector(MessageBus* bus, int num_workers,
                                 const FailureDetectorOptions& options,
                                 SuspectCallback on_suspect)
    : bus_(bus),
      num_workers_(num_workers),
      options_(options),
      on_suspect_(std::move(on_suspect)) {
  CHECK_NOTNULL(bus);
  CHECK_GT(num_workers, 0);
  mailbox_ = bus_->Register(Address{options_.monitor_node, kMonitorPort});
  last_beat_.assign(static_cast<size_t>(num_workers), {});
  suspected_.assign(static_cast<size_t>(num_workers), false);
  suspicions_.assign(static_cast<size_t>(num_workers), 0);
}

FailureDetector::~FailureDetector() { Shutdown(); }

void FailureDetector::Start() {
  CHECK(!thread_.joinable());
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& beat : last_beat_) {
      beat = now;  // grace period: nobody is suspected at startup
    }
  }
  thread_ = std::thread([this] { Loop(); });
}

void FailureDetector::Shutdown() {
  if (stop_.exchange(true)) {
    return;
  }
  mailbox_->Close();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void FailureDetector::NotifyRecovered(int worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  suspected_[static_cast<size_t>(worker)] = false;
  last_beat_[static_cast<size_t>(worker)] = std::chrono::steady_clock::now();
}

bool FailureDetector::suspected(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suspected_[static_cast<size_t>(worker)];
}

int64_t FailureDetector::suspicions(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suspicions_[static_cast<size_t>(worker)];
}

int64_t FailureDetector::scans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scans_;
}

bool FailureDetector::AwaitScans(int64_t n, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const int64_t target = scans_ + n;
  return scan_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [&] { return scans_ >= target; });
}

void FailureDetector::Loop() {
  const auto scan_every = std::chrono::milliseconds(
      std::max(1, options_.heartbeat_interval_ms / 2));
  const auto deadline = std::chrono::milliseconds(options_.suspect_after_ms);
  while (!stop_.load()) {
    std::optional<Message> message = mailbox_->PopFor(scan_every);
    if (message.has_value() && message->type == MessageType::kHeartbeat) {
      std::lock_guard<std::mutex> lock(mutex_);
      const int w = message->worker;
      if (w >= 0 && w < num_workers_) {
        last_beat_[static_cast<size_t>(w)] = std::chrono::steady_clock::now();
      }
    }
    // Deadline scan: collect fresh suspicions under the lock, fire the
    // callback outside it (the recovery manager may call back into us).
    std::vector<int> newly_suspected;
    {
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(mutex_);
      for (int w = 0; w < num_workers_; ++w) {
        if (!suspected_[static_cast<size_t>(w)] &&
            now - last_beat_[static_cast<size_t>(w)] > deadline) {
          suspected_[static_cast<size_t>(w)] = true;
          ++suspicions_[static_cast<size_t>(w)];
          newly_suspected.push_back(w);
        }
      }
    }
    for (int w : newly_suspected) {
      LOG(Warning) << "failure detector: worker " << w << " suspected (no heartbeat for "
                   << options_.suspect_after_ms << " ms)";
      if (on_suspect_) {
        on_suspect_(w);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++scans_;
    }
    scan_cv_.notify_all();
  }
}

}  // namespace poseidon

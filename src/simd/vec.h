/// \file
/// Portable 8-lane vector kernels for the wire-path hot loops, with runtime
/// ISA dispatch (scalar reference, AVX2, NEON) that is **bitwise pinned**:
/// every backend produces bit-identical floats for every input, so the
/// golden-trajectory, chaos and multiprocess suites keep pinning correctness
/// regardless of which backend executes.
///
/// The determinism contract (see docs/PERFORMANCE.md):
///   * Every kernel processes elements in fixed 8-wide blocks with a scalar
///     tail, and every operation inside a block is elementwise (or, for the
///     1-bit column statistics, strictly sequential down the rows of each
///     column). No kernel ever reassociates a floating-point reduction, so
///     the lane width never changes a result.
///   * Backends never emit fused multiply-adds: vector code uses explicit
///     mul-then-add intrinsics, and the scalar reference translation unit is
///     compiled with -ffp-contract=off (see CMakeLists.txt), so AVX2/NEON
///     and scalar round identically.
///   * The 1-bit encoder's per-column sums use blended accumulation
///     (`sum += pos ? q : 0.0`) in *every* backend, including the scalar
///     reference. Adding a (+0.0) no-op term to a running sum that can never
///     be -0.0 is bit-exact, so the blended form equals the historical
///     branchy loop — proven by tests/simd_test.cc.
///
/// Dispatch: the first kernel call resolves the backend from the CPU
/// (AVX2 via CPUID on x86, NEON on AArch64, else scalar), overridable with
///   POSEIDON_SIMD=auto|avx2|neon|scalar      (environment)
///   --simd=auto|avx2|neon|scalar             (bench CLI, src/common/cli)
/// or programmatically with SetLevel (tests flip levels mid-process to prove
/// cross-ISA bit-equality). Requesting an unsupported backend falls back to
/// scalar with a warning — scalar is always a correct answer.
#ifndef POSEIDON_SRC_SIMD_VEC_H_
#define POSEIDON_SRC_SIMD_VEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace poseidon {
namespace simd {

/// A dispatchable backend. kScalar is the reference implementation and is
/// always supported; kAvx2/kNeon require hardware (and compile-time) support.
enum class Level {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Human-readable backend name ("scalar", "avx2", "neon").
const char* LevelName(Level level);

/// True when `level` can execute on this CPU with this binary.
bool Supported(Level level);

/// The fastest supported level (what POSEIDON_SIMD=auto resolves to).
Level BestLevel();

/// Every supported level, scalar first. Tests iterate this to prove
/// cross-ISA bit-equality on whatever hardware runs them.
std::vector<Level> SupportedLevels();

/// The level the kernel entry points currently dispatch to. Resolves the
/// POSEIDON_SIMD environment override on first use.
Level ActiveLevel();

/// Switches dispatch to `level`. Falls back to kScalar (with a logged
/// warning) when `level` is not supported. Thread-safe, but callers flipping
/// levels mid-run own the race with concurrent kernel calls — in practice
/// only tests and bench setup call this.
void SetLevel(Level level);

/// Parses "auto"/"scalar"/"avx2"/"neon" and applies it via SetLevel
/// ("auto" = BestLevel). Returns false (and changes nothing) on an unknown
/// name. Backs both the POSEIDON_SIMD env var and the --simd bench flag.
bool SetLevelFromString(const std::string& name);

/// RAII level override for tests: restores the previous level on scope exit.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : previous_(ActiveLevel()) { SetLevel(level); }
  ~ScopedLevel() { SetLevel(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

// --------------------------------------------------------------- kernels ----
// All pointers may be arbitrarily aligned (kernels use unaligned vector
// loads; Payload slabs are 64-byte aligned as a cache courtesy, but views
// carry arbitrary word offsets). Ranges must not overlap unless a parameter
// is documented as in-place.

/// dst[i] += src[i] for i in [0, n). The ring reduce-scatter / tree-reduce /
/// dense-apply accumulate loop.
void ReduceAdd(float* dst, const float* src, int64_t n);

/// dst[i] *= alpha. The gradient-averaging loop.
void Scale(float* dst, float alpha, int64_t n);

/// y[i] += alpha * x[i] (no FMA; mul then add, like the scalar expression).
void Axpy(float* y, float alpha, const float* x, int64_t n);

/// Momentum SGD update, the KV-store apply-thread inner loop:
///   v[i]     = (mu * v[i] + grad[i]) + wd * value[i]
///   value[i] = value[i] - lr * v[i]
void SgdStep(float* v, float* value, const float* grad, float lr, float mu,
             float wd, int64_t n);

/// 1-bit encode pass 1 over a row-major [rows, cols] gradient with carried
/// residual: for each element q = grad + residual, records the sign bit
/// (q >= 0, row-major packed 32 per word — `bits` must be zeroed, and have
/// ceil(rows*cols/32) words) and accumulates per-column statistics:
///   pos_sum[c] += q >= 0 ? (double)q : 0.0;   pos_count[c] += q >= 0;
///   neg_sum[c] += q >= 0 ? 0.0 : (double)q;   neg_count[c] += q < 0;
/// Columns accumulate strictly in row order, so lane width never changes a
/// sum. Sum/count arrays must be zeroed by the caller and hold `cols`
/// entries each.
void OneBitEncodeStats(const float* grad, const float* residual, int64_t rows,
                       int64_t cols, uint32_t* bits, double* pos_sum,
                       double* neg_sum, int32_t* pos_count, int32_t* neg_count);

/// 1-bit encode pass 2: residual[i] = (grad[i] + residual[i]) - level, where
/// level is pos_level[c] or neg_level[c] by the element's sign bit. In-place
/// on `residual`.
void OneBitResidualUpdate(const float* grad, int64_t rows, int64_t cols,
                          const uint32_t* bits, const float* pos_level,
                          const float* neg_level, float* residual);

/// 1-bit decode: out[i] = bit ? pos_level[c] : neg_level[c] over the
/// row-major [rows, cols] target.
void OneBitDecode(const uint32_t* bits, const float* pos_level,
                  const float* neg_level, int64_t rows, int64_t cols, float* out);

// Quantized-codec kernels (docs/COMPRESSION.md). The rounding noise for the
// stochastic variants comes from a per-element integer hash of
// (seed, base_index + i) — src/simd/quant.h — so the encodings are a pure
// function of (data, seed, flat element index): independent of lane width,
// of how a layer is sliced across shards, and of which backend runs.

/// fp32 -> fp16 with deterministic stochastic rounding. Magnitudes below the
/// smallest normal half flush to signed zero; values at or above 2^16 clamp
/// to the largest finite half (65504). `base_index` is the flat layer offset
/// of src[0].
void Fp16EncodeSr(const float* src, int64_t n, uint32_t seed, int64_t base_index,
                  uint16_t* out);

/// fp32 -> fp16 with round-to-nearest-even (same reduced range as the SR
/// variant). Used for the stateless parameter-reply direction, where there
/// is no residual accumulator to absorb rounding noise.
void Fp16EncodeRn(const float* src, int64_t n, uint16_t* out);

/// Exact fp16 -> fp32 for every 16-bit pattern (hostile frames included).
void Fp16Decode(const uint16_t* src, int64_t n, float* out);

/// fp32 -> int8 with deterministic stochastic rounding:
///   t = src[i] * inv_scale; q = floor(t) + (frac(t) > r ? 1 : 0)
/// with r a 24-bit uniform from the (seed, base_index + i) hash, clamped to
/// [-127, 127] (NaN squashes to 0 so the cast is always defined).
void Int8EncodeSr(const float* src, int64_t n, float inv_scale, uint32_t seed,
                  int64_t base_index, int8_t* out);

/// out[i] = src[i] * scale (int8 -> fp32 is exact; one correctly-rounded
/// multiply).
void Int8Decode(const int8_t* src, int64_t n, float scale, float* out);

/// max_i |src[i]|, ignoring NaNs, 0 for n == 0. |x| > m ? |x| : m is
/// associative over the non-negative magnitudes, so lane order cannot change
/// the result.
float MaxAbs(const float* src, int64_t n);

/// Number of elements with |src[i]| > threshold (ordered compare: NaN never
/// counts). The top-k codec's threshold-selection pass.
int64_t CountAbsGreater(const float* src, int64_t n, float threshold);

// ---------------------------------------------------------- backend table ---

/// One backend's kernel implementations. Exposed so tests can drive a
/// specific backend directly (bypassing dispatch) when proving bit-equality.
struct Kernels {
  Level level;
  void (*reduce_add)(float*, const float*, int64_t);
  void (*scale)(float*, float, int64_t);
  void (*axpy)(float*, float, const float*, int64_t);
  void (*sgd_step)(float*, float*, const float*, float, float, float, int64_t);
  void (*onebit_encode_stats)(const float*, const float*, int64_t, int64_t,
                              uint32_t*, double*, double*, int32_t*, int32_t*);
  void (*onebit_residual_update)(const float*, int64_t, int64_t, const uint32_t*,
                                 const float*, const float*, float*);
  void (*onebit_decode)(const uint32_t*, const float*, const float*, int64_t,
                        int64_t, float*);
  void (*fp16_encode_sr)(const float*, int64_t, uint32_t, int64_t, uint16_t*);
  void (*fp16_encode_rn)(const float*, int64_t, uint16_t*);
  void (*fp16_decode)(const uint16_t*, int64_t, float*);
  void (*int8_encode_sr)(const float*, int64_t, float, uint32_t, int64_t, int8_t*);
  void (*int8_decode)(const int8_t*, int64_t, float, float*);
  float (*max_abs)(const float*, int64_t);
  int64_t (*count_abs_greater)(const float*, int64_t, float);
};

/// The scalar reference backend (always available).
const Kernels* ScalarKernels();
/// The AVX2 backend, or nullptr when not compiled in or not supported here.
const Kernels* Avx2Kernels();
/// The NEON backend, or nullptr when not compiled in or not supported here.
const Kernels* NeonKernels();
/// The backend for `level`, or nullptr when unsupported.
const Kernels* KernelsFor(Level level);

}  // namespace simd
}  // namespace poseidon

#endif  // POSEIDON_SRC_SIMD_VEC_H_

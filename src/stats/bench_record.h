/// \file
/// BenchRecord: a small JSON writer for bench results, giving every bench
/// target a uniform `--json-out <path>` artifact (and producing the
/// `BENCH_micro.json` perf trajectory checked by CI).
///
/// The schema is deliberately flat so the CI checker and ad-hoc plotting
/// stay trivial:
///
/// \code{.json}
/// {
///   "bench": "micro_benchmarks",
///   "meta": {"git_describe": "...", "nproc": 1},
///   "series": {
///     "codec.dense.floats_per_s": [1.2e9],
///     "wire.copies_per_iter": [3.0]
///   }
/// }
/// \endcode
///
/// Series hold doubles; Append() grows a named series, Set() replaces it
/// with a single value. Not thread-safe — benches record from one thread.
#ifndef POSEIDON_SRC_STATS_BENCH_RECORD_H_
#define POSEIDON_SRC_STATS_BENCH_RECORD_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace poseidon {

class BenchRecord {
 public:
  explicit BenchRecord(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  /// Attaches a string key to the "meta" object (environment, config).
  void SetMeta(const std::string& key, const std::string& value);
  void SetMeta(const std::string& key, double value);

  /// Appends one sample to the named series (created on first use).
  void Append(const std::string& series, double value);
  /// Replaces the named series with a single value.
  void Set(const std::string& series, double value);

  bool HasSeries(const std::string& series) const;
  const std::vector<double>& Series(const std::string& series) const;

  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  const std::string& bench_name() const { return bench_name_; }

 private:
  std::string bench_name_;
  std::map<std::string, std::string> string_meta_;
  std::map<std::string, double> numeric_meta_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_STATS_BENCH_RECORD_H_

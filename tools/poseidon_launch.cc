// poseidon_launch: spawn a real multi-process Poseidon cluster on one
// machine and train the canonical TinyMlp workload over sockets.
//
// Launcher mode (the default) forks N-1 children of this same binary in
// --role=node mode and itself acts as process 0 (the coordinator/controller,
// hosting no bus nodes). Each remaining process hosts one bus node — one
// worker replica, one KV server, or (with --colocate) both. Rendezvous,
// go-signal and shutdown run as control records on the data connections
// (src/transport/cluster_launcher.h); any child crash or missed deadline
// kills the whole cluster and exits nonzero, so a wedged run can never hang
// CI.
//
//   poseidon_launch --workers=2 --servers=2 --shards=2 --iters=6 --out=DIR
//
// Worker results land in --out: worker_<w>_losses.txt (hexfloat, bitwise
// comparable) and worker_<w>.ckpt (final replica parameters). The
// multi-process trajectory test diffs them against the in-process oracle.
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/poseidon/cluster_node.h"
#include "src/poseidon/workloads.h"
#include "src/transport/cluster_launcher.h"

namespace poseidon {
namespace {

struct LaunchArgs {
  int workers = 2;
  int servers = 2;
  int shards = 2;
  int staleness = 0;
  int iters = 6;
  int hidden_layers = 2;
  std::string policy = "dense";
  std::string transport = "tcp";  // tcp | unix
  bool colocate = false;
  bool batch_egress = false;
  std::string out;
  int timeout_s = 180;

  // Record-level socket weather (SocketTransportOptions::shim): seeded
  // drop/duplicate/delay dice rolled per egress record on every process.
  uint64_t shim_seed = 1;
  double shim_drop = 0.0;
  double shim_dup = 0.0;
  double shim_delay = 0.0;

  // --role=node internals (set by the launcher, not by humans).
  bool node_role = false;
  int process = -1;
  std::vector<std::string> endpoints;
  std::vector<int> node_owner;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workers=N] [--servers=N] [--shards=N] [--staleness=N]\n"
      "          [--iters=N] [--hidden-layers=N] [--policy=dense|sfb|hybrid|onebit]\n"
      "          [--transport=tcp|unix] [--colocate] [--batch-egress]\n"
      "          [--shim-seed=N] [--shim-drop=P] [--shim-dup=P] [--shim-delay=P]\n"
      "          [--timeout-s=N] --out=DIR\n",
      argv0);
  std::exit(2);
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t at = 0;
  while (at <= s.size()) {
    const size_t comma = s.find(',', at);
    if (comma == std::string::npos) {
      out.push_back(s.substr(at));
      break;
    }
    out.push_back(s.substr(at, comma - at));
    at = comma + 1;
  }
  return out;
}

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

LaunchArgs Parse(int argc, char** argv) {
  LaunchArgs args;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (FlagValue(a, "--workers", &v)) {
      args.workers = std::atoi(v.c_str());
    } else if (FlagValue(a, "--servers", &v)) {
      args.servers = std::atoi(v.c_str());
    } else if (FlagValue(a, "--shards", &v)) {
      args.shards = std::atoi(v.c_str());
    } else if (FlagValue(a, "--staleness", &v)) {
      args.staleness = std::atoi(v.c_str());
    } else if (FlagValue(a, "--iters", &v)) {
      args.iters = std::atoi(v.c_str());
    } else if (FlagValue(a, "--hidden-layers", &v)) {
      args.hidden_layers = std::atoi(v.c_str());
    } else if (FlagValue(a, "--policy", &v)) {
      args.policy = v;
    } else if (FlagValue(a, "--transport", &v)) {
      args.transport = v;
    } else if (std::strcmp(a, "--colocate") == 0) {
      args.colocate = true;
    } else if (std::strcmp(a, "--batch-egress") == 0) {
      args.batch_egress = true;
    } else if (FlagValue(a, "--out", &v)) {
      args.out = v;
    } else if (FlagValue(a, "--timeout-s", &v)) {
      args.timeout_s = std::atoi(v.c_str());
    } else if (FlagValue(a, "--shim-seed", &v)) {
      args.shim_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(a, "--shim-drop", &v)) {
      args.shim_drop = std::atof(v.c_str());
    } else if (FlagValue(a, "--shim-dup", &v)) {
      args.shim_dup = std::atof(v.c_str());
    } else if (FlagValue(a, "--shim-delay", &v)) {
      args.shim_delay = std::atof(v.c_str());
    } else if (FlagValue(a, "--role", &v)) {
      if (v != "node") Usage(argv[0]);
      args.node_role = true;
    } else if (FlagValue(a, "--process", &v)) {
      args.process = std::atoi(v.c_str());
    } else if (FlagValue(a, "--endpoints", &v)) {
      args.endpoints = SplitCsv(v);
    } else if (FlagValue(a, "--node-owner", &v)) {
      for (const std::string& n : SplitCsv(v)) {
        args.node_owner.push_back(std::atoi(n.c_str()));
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      Usage(argv[0]);
    }
  }
  if (args.workers < 1 || args.servers < 1 || args.shards < 1 ||
      args.iters < 1 || args.out.empty()) {
    Usage(argv[0]);
  }
  if (args.transport != "tcp" && args.transport != "unix") Usage(argv[0]);
  return args;
}

FcSyncPolicy ParsePolicy(const std::string& name) {
  if (name == "dense") return FcSyncPolicy::kDense;
  if (name == "sfb") return FcSyncPolicy::kSfb;
  if (name == "hybrid") return FcSyncPolicy::kHybrid;
  if (name == "onebit") return FcSyncPolicy::kOneBit;
  std::fprintf(stderr, "unknown --policy=%s\n", name.c_str());
  std::exit(2);
}

SocketEndpoint ParseEndpoint(const std::string& spec) {
  SocketEndpoint ep;
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    ep.unix_path = spec;
  } else {
    ep.host = spec.substr(0, colon);
    ep.port = std::atoi(spec.c_str() + colon + 1);
  }
  return ep;
}

ClusterNodeConfig MakeNodeConfig(const LaunchArgs& args) {
  ClusterNodeConfig config;
  config.trainer = workloads::SmallTrainerOptions(
      args.workers, args.servers, args.shards, args.staleness,
      ParsePolicy(args.policy));
  config.trainer.server_node_base = args.colocate ? 0 : args.workers;
  config.trainer.batch_egress = args.batch_egress;
  config.hidden_layers = args.hidden_layers;
  config.iterations = args.iters;
  config.process = args.process;
  config.out_dir = args.out;
  config.rendezvous_timeout_ms = args.timeout_s * 1000;
  config.shutdown_timeout_ms = args.timeout_s * 1000;
  config.transport.self = args.process;
  for (const std::string& spec : args.endpoints) {
    config.transport.processes.push_back(ParseEndpoint(spec));
  }
  config.transport.node_owner = args.node_owner;
  config.transport.shim.seed = args.shim_seed;
  config.transport.shim.drop_prob = args.shim_drop;
  config.transport.shim.duplicate_prob = args.shim_dup;
  config.transport.shim.delay_prob = args.shim_delay;
  return config;
}

int RunNode(const LaunchArgs& args) {
  ClusterNode node(MakeNodeConfig(args));
  const Status status = node.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "process %d failed: %s\n", args.process,
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

std::string SelfBinary() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  CHECK_GT(n, 0) << "cannot resolve /proc/self/exe";
  buf[n] = '\0';
  return buf;
}

// mkdir -p for --out: the launcher owns the directory the whole cluster
// writes into (child stderr, worker results, unix socket paths).
bool MakeOutDir(const std::string& path) {
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    partial = path.substr(0, i == path.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "mkdir %s: %s\n", partial.c_str(),
                   std::strerror(errno));
      return false;
    }
  }
  return true;
}

int RunLauncher(const LaunchArgs& args, int argc, char** argv) {
  if (!MakeOutDir(args.out)) return 1;
  const int base = args.colocate ? 0 : args.workers;
  const int num_nodes = std::max(args.workers, base + args.servers);
  const int num_processes = num_nodes + 1;  // + the coordinator, process 0

  // Endpoint table: process 0 first, then one endpoint per node process.
  std::vector<std::string> endpoints;
  for (int p = 0; p < num_processes; ++p) {
    if (args.transport == "unix") {
      endpoints.push_back(MakeUnixSocketPath(args.out, "poseidon", p));
    } else {
      StatusOr<int> port = PickFreeTcpPort();
      CHECK(port.ok()) << port.status().ToString();
      endpoints.push_back("127.0.0.1:" + std::to_string(*port));
    }
  }
  std::vector<int> node_owner;
  for (int n = 0; n < num_nodes; ++n) {
    node_owner.push_back(n + 1);
  }

  std::string endpoints_csv, owner_csv;
  for (int p = 0; p < num_processes; ++p) {
    if (p > 0) endpoints_csv += ",";
    endpoints_csv += endpoints[static_cast<size_t>(p)];
  }
  for (int n = 0; n < num_nodes; ++n) {
    if (n > 0) owner_csv += ",";
    owner_csv += std::to_string(node_owner[static_cast<size_t>(n)]);
  }

  // Children re-run this binary with the original shape flags plus the
  // node-role internals.
  const std::string binary = SelfBinary();
  std::vector<ChildProcess> children;
  for (int p = 1; p < num_processes; ++p) {
    std::vector<std::string> child_args;
    for (int i = 1; i < argc; ++i) {
      child_args.push_back(argv[i]);
    }
    child_args.push_back("--role=node");
    child_args.push_back("--process=" + std::to_string(p));
    child_args.push_back("--endpoints=" + endpoints_csv);
    child_args.push_back("--node-owner=" + owner_csv);
    const std::string log =
        args.out + "/process_" + std::to_string(p) + ".stderr";
    StatusOr<ChildProcess> child = SpawnChild(binary, child_args, log);
    if (!child.ok()) {
      std::fprintf(stderr, "spawn process %d: %s\n", p,
                   child.status().ToString().c_str());
      for (const ChildProcess& c : children) KillChild(c);
      return 1;
    }
    children.push_back(*child);
  }

  // Process 0 runs inline — its Run() drives rendezvous and shutdown. A
  // child that dies early breaks the control protocol, which surfaces here
  // as a deadline error; the stderr tails below then tell the real story.
  LaunchArgs self = args;
  self.node_role = true;
  self.process = 0;
  self.endpoints = SplitCsv(endpoints_csv);
  self.node_owner = node_owner;
  const int zero_rc = RunNode(self);

  int rc = zero_rc;
  for (size_t i = 0; i < children.size(); ++i) {
    const int reap_ms = zero_rc == 0 ? args.timeout_s * 1000 : 2000;
    StatusOr<int> child_rc = WaitChild(children[i], reap_ms);
    if (!child_rc.ok()) {
      std::fprintf(stderr, "process %zu wedged (%s); killing\n", i + 1,
                   child_rc.status().ToString().c_str());
      KillChild(children[i]);
      rc = 1;
    } else if (*child_rc != 0) {
      std::fprintf(stderr, "process %zu exited %d\n", i + 1, *child_rc);
      rc = 1;
    }
  }
  if (rc != 0) {
    for (const ChildProcess& child : children) {
      const std::string tail = ReadFileTail(child.stderr_path);
      if (!tail.empty()) {
        std::fprintf(stderr, "---- %s ----\n%s\n", child.stderr_path.c_str(),
                     tail.c_str());
      }
    }
  } else {
    std::fprintf(stderr, "cluster of %d processes trained %d iterations\n",
                 num_processes, args.iters);
  }
  return rc;
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::LaunchArgs args = poseidon::Parse(argc, argv);
  if (args.node_role) {
    return poseidon::RunNode(args);
  }
  return poseidon::RunLauncher(args, argc, argv);
}

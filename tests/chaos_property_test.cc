// Chaos property tests: the fault fabric may change *when* bytes arrive but
// never *what* the training run computes.
//
// The load-bearing invariant: under seeded duplication + reordering (and
// even loss, because the modeled link layer retransmits), the per-stream
// message sequence each consumer pops is identical to the clean run's, so
// BSP — and sharded SSP with s = 0 — trajectories are bitwise identical to
// the fault-free trajectory. The tests verify this across a seed matrix
// (POSEIDON_CHAOS_SEED widens it in CI) and additionally assert from the
// fault counters that the weather actually happened (a vacuously clean run
// proves nothing).
#include <gtest/gtest.h>

#include <thread>

#include "src/poseidon/trainer.h"
#include "tests/testing/harness.h"
#include "tests/testing/socket_cluster.h"

namespace poseidon {
namespace {

using testing::CaptureTrajectory;
using testing::ChaosSeeds;
using testing::SeedTrace;
using testing::SmallTrainerOptions;
using testing::Trajectory;

constexpr int kIters = 10;

FaultPlan DupReorderPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.duplicate_prob = 0.15;
  plan.delay_prob = 0.35;  // delays are what reorder the wire
  plan.delay_min_us = 10;
  plan.delay_max_us = 400;
  return plan;
}

TEST(ChaosPropertyTest, BspBitwiseIdenticalUnderDuplicationAndReordering) {
  const Trajectory clean = CaptureTrajectory(SmallTrainerOptions(), kIters);
  ASSERT_EQ(clean.faults.TotalInjected(), 0);

  for (uint64_t seed : ChaosSeeds(5)) {
    SCOPED_TRACE(SeedTrace(seed));
    TrainerOptions options = SmallTrainerOptions();
    options.fault_plan = DupReorderPlan(seed);
    const Trajectory chaotic = CaptureTrajectory(options, kIters);
    EXPECT_GT(chaotic.faults.duplicates, 0) << "no duplicates injected; vacuous run";
    EXPECT_GT(chaotic.faults.delays, 0) << "no delays injected; vacuous run";
    EXPECT_GT(chaotic.faults.deduped, 0) << "duplicates never reached the dedup layer";
    EXPECT_TRUE(chaotic == clean)
        << "duplication + reordering changed the BSP trajectory; "
        << FormatFaultCounters(chaotic.faults);
  }
}

TEST(ChaosPropertyTest, ShardedSspZeroBitwiseIdenticalUnderChaos) {
  // s = 0 over 4-way sharding is the strongest consistency claim the SSP
  // runtime makes; the fabric must not weaken it.
  TrainerOptions base =
      SmallTrainerOptions(/*workers=*/4, /*servers=*/2, /*shards=*/4, /*staleness=*/0);
  const Trajectory clean = CaptureTrajectory(base, kIters);
  for (uint64_t seed : ChaosSeeds(5)) {
    SCOPED_TRACE(SeedTrace(seed));
    TrainerOptions options = base;
    options.fault_plan = DupReorderPlan(seed);
    const Trajectory chaotic = CaptureTrajectory(options, kIters);
    EXPECT_TRUE(chaotic == clean) << FormatFaultCounters(chaotic.faults);
  }
}

TEST(ChaosPropertyTest, HybridPolicyBitwiseIdenticalUnderChaos) {
  // SFB broadcasts and PS pushes share the fabric; both must survive it.
  TrainerOptions base = SmallTrainerOptions(/*workers=*/3, /*servers=*/2, /*shards=*/2,
                                            /*staleness=*/0, FcSyncPolicy::kHybrid);
  const Trajectory clean = CaptureTrajectory(base, kIters);
  for (uint64_t seed : ChaosSeeds(3)) {
    SCOPED_TRACE(SeedTrace(seed));
    TrainerOptions options = base;
    options.fault_plan = DupReorderPlan(seed);
    const Trajectory chaotic = CaptureTrajectory(options, kIters);
    EXPECT_TRUE(chaotic == clean) << FormatFaultCounters(chaotic.faults);
  }
}

TEST(ChaosPropertyTest, DropsWithRetransmitConvergeToTheCleanParameters) {
  // Loss adds latency, not divergence: the link layer retransmits and the
  // sequence layer deduplicates, so even the lossy run lands on the clean
  // final parameters exactly (a stronger statement than "converges").
  const Trajectory clean = CaptureTrajectory(SmallTrainerOptions(), kIters);
  for (uint64_t seed : ChaosSeeds(5)) {
    SCOPED_TRACE(SeedTrace(seed));
    TrainerOptions options = SmallTrainerOptions();
    options.fault_plan = DupReorderPlan(seed);
    options.fault_plan.drop_prob = 0.05;
    options.fault_plan.retransmit_timeout_us = 100;
    const Trajectory lossy = CaptureTrajectory(options, kIters);
    EXPECT_GT(lossy.faults.drops, 0) << "no losses injected; vacuous run";
    EXPECT_EQ(lossy.faults.retransmits, lossy.faults.drops);
    EXPECT_EQ(lossy.final_params, clean.final_params)
        << FormatFaultCounters(lossy.faults);
    ASSERT_FALSE(lossy.mean_losses.empty());
    EXPECT_LT(lossy.mean_losses.back(), lossy.mean_losses.front())
        << "training stopped learning under loss";
  }
}

// ------------------------------------------------------- socket backend ----
// The same trajectory invariants with the weather injected by the *socket*
// backend: cluster members run as threads but every remote byte crosses a
// real loopback socket, and the lossy shim drops/duplicates/delays whole
// records. The wire reorder buffer — not the in-process fault pump — is the
// machinery under test.

TEST(ChaosPropertyTest, SocketBackendBitwiseIdenticalUnderRecordWeather) {
  testing::SocketClusterOptions base;  // 2 workers / 2 servers / 2 shards, BSP
  base.iterations = kIters;
  const Trajectory clean = CaptureTrajectory(
      SmallTrainerOptions(base.workers, base.servers, base.shards,
                          base.staleness, base.policy),
      kIters, base.hidden_layers);
  for (uint64_t seed : ChaosSeeds(2)) {
    SCOPED_TRACE(SeedTrace(seed));
    testing::SocketClusterOptions options = base;
    options.shim.seed = seed;
    options.shim.duplicate_prob = 0.10;
    options.shim.delay_prob = 0.25;
    options.shim.delay_min_us = 10;
    options.shim.delay_max_us = 400;
    const testing::SocketClusterRun run = testing::RunSocketCluster(options);
    EXPECT_GT(run.shim.duplicates, 0) << "no duplicates injected; vacuous run";
    EXPECT_GT(run.shim.delays, 0) << "no delays injected; vacuous run";
    EXPECT_GT(run.wire.deduped, 0)
        << "duplicates never reached the wire dedup layer";
    EXPECT_TRUE(run.trajectory == clean)
        << "record weather changed the socket-cluster trajectory; "
        << FormatFaultCounters(run.shim);
  }
}

TEST(ChaosPropertyTest, SocketBackendDropsConvergeToTheCleanParameters) {
  testing::SocketClusterOptions base;
  base.iterations = kIters;
  const Trajectory clean = CaptureTrajectory(
      SmallTrainerOptions(base.workers, base.servers, base.shards,
                          base.staleness, base.policy),
      kIters, base.hidden_layers);
  for (uint64_t seed : ChaosSeeds(2)) {
    SCOPED_TRACE(SeedTrace(seed));
    testing::SocketClusterOptions options = base;
    options.shim.seed = seed;
    options.shim.drop_prob = 0.05;
    options.shim.retransmit_timeout_us = 100;
    const testing::SocketClusterRun run = testing::RunSocketCluster(options);
    EXPECT_GT(run.shim.drops, 0) << "no losses injected; vacuous run";
    EXPECT_GE(run.shim.retransmits, run.shim.drops);
    EXPECT_EQ(run.trajectory.final_params, clean.final_params)
        << FormatFaultCounters(run.shim);
  }
}

TEST(ChaosPropertyTest, PartitionStallsThenHealsWithoutDivergence) {
  // Cut worker/server node 1 off from node 0 mid-run; the link layer parks
  // traffic, BSP stalls, and on heal the run completes on the clean
  // trajectory (late delivery, same bytes).
  const Trajectory clean = CaptureTrajectory(SmallTrainerOptions(), kIters);

  const SyntheticDataset dataset = testing::TinyDataset();
  TrainerOptions options = SmallTrainerOptions();
  options.enable_faults = true;  // partitions only; no probabilistic weather
  PoseidonTrainer trainer(testing::TinyMlpFactory(), options);
  trainer.bus().Partition(0, 1);
  std::thread healer([&trainer] {
    // Heal only after the cut provably parked live traffic (condition wait
    // on the pump): the test can neither race the first hold nor be vacuous.
    EXPECT_TRUE(trainer.bus().AwaitPartitionHolds(1, /*timeout_ms=*/20000))
        << "partitioned traffic never reached the fabric";
    trainer.bus().HealPartitions();
  });
  trainer.Train(dataset, kIters);
  healer.join();
  trainer.bus().FlushFaults();
  EXPECT_GT(trainer.bus().fault_injector()->Counters().partition_holds, 0)
      << "the partition never touched live traffic; vacuous run";
  EXPECT_EQ(testing::AllParams(trainer.worker_net(0)), clean.final_params);
}

}  // namespace
}  // namespace poseidon

// Micro-benchmarks (google-benchmark) for the building blocks: GEMM, the
// communication codecs, the event queue / network fabric, and the in-process
// transport. These are the knobs that determine how fast the convergence
// experiments and protocol simulations run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/rng.h"
#include "src/simd/vec.h"
#include "src/stats/bench_record.h"
#include "src/stats/report.h"
#include "src/stats/stopwatch.h"
#include "src/stats/trace.h"
#include "src/models/zoo.h"
#include "src/nn/builders.h"
#include "src/planner/comm_planner.h"
#include "src/planner/plan_cache.h"
#include "src/poseidon/trainer.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/tensor/onebit.h"
#include "src/tensor/ops.h"
#include "src/tensor/sufficient_factor.h"
#include "src/transport/bus.h"
#include "src/transport/codec.h"
#include "src/transport/socket_bench.h"

namespace poseidon {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_OneBitEncode(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor grad = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  for (auto _ : state) {
    OneBitEncoded encoded = quantizer.Encode(grad);
    benchmark::DoNotOptimize(encoded.bits.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n * 4);
}
BENCHMARK(BM_OneBitEncode)->Arg(128)->Arg(512);

void BM_OneBitDecode(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Tensor grad = Tensor::RandomUniform({n, n}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  const OneBitEncoded encoded = quantizer.Encode(grad);
  for (auto _ : state) {
    Tensor decoded = OneBitQuantizer::Decode(encoded);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n * 4);
}
BENCHMARK(BM_OneBitDecode)->Arg(128)->Arg(512);

void BM_SfReconstruct(benchmark::State& state) {
  const int64_t k = state.range(0);
  Rng rng(4);
  Tensor errors = Tensor::RandomUniform({k, 256}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({k, 512}, -1.0f, 1.0f, rng);
  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);
  Tensor out({256, 512});
  for (auto _ : state) {
    ReconstructGradient(factors, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 512 * k);
}
BENCHMARK(BM_SfReconstruct)->Arg(8)->Arg(32);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(static_cast<double>((i * 7919) % 1000), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_FabricAllToAll(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    FabricConfig config;
    config.egress_bytes_per_sec = 5e9;
    config.ingress_bytes_per_sec = 5e9;
    NetworkFabric fabric(&sim, nodes, config);
    int delivered = 0;
    for (int s = 0; s < nodes; ++s) {
      for (int d = 0; d < nodes; ++d) {
        fabric.Send(s, d, 8 * 1024 * 1024, [&delivered] { ++delivered; });
      }
    }
    sim.Run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * nodes * nodes);
}
BENCHMARK(BM_FabricAllToAll)->Arg(8)->Arg(32);

void BM_BusRoundTrip(benchmark::State& state) {
  MessageBus bus(2);
  auto server = bus.Register(Address{1, kServerPort});
  auto client = bus.Register(Address{0, kSyncerPortBase});
  Payload grads = Payload::Allocate(1024);
  for (auto _ : state) {
    Message m;
    m.type = MessageType::kGradPush;
    m.from = Address{0, kSyncerPortBase};
    m.to = Address{1, kServerPort};
    m.chunks.push_back({0, grads.View()});
    benchmark::DoNotOptimize(bus.Send(std::move(m)));
    auto received = server->Pop();
    Message reply;
    reply.type = MessageType::kParamReply;
    reply.from = Address{1, kServerPort};
    reply.to = Address{0, kSyncerPortBase};
    reply.chunks = received->chunks;  // zero-copy: same slab back
    benchmark::DoNotOptimize(bus.Send(std::move(reply)));
    benchmark::DoNotOptimize(client->Pop());
  }
  state.SetBytesProcessed(state.iterations() * 1024 * 4 * 2);
}
BENCHMARK(BM_BusRoundTrip);

// ------------------------------------------------------------- wire path ----
//
// End-to-end accounting for the zero-copy wire layer: floats staged, staging
// copies, and wire messages per training iteration, per scheme, with and
// without egress batching (arg 1 = batched). Counters:
//   floats/iter   measured staging-copy floats per iteration (WireCopyStats)
//   copies/iter   measured staging-copy operations per iteration
//   msgs/iter     wire frames per iteration (a delivered batch counts once)
//   logical/iter  pre-batching message count per iteration
//   before_floats pre-refactor copy model for the same run (see below)
//   copy_reduction before_floats / floats-per-iter
//
// Pre-refactor PS copy model: per iteration the old wire path staged each of
// the W workers' T layer floats (1) into a host buffer, (2) into per-pair
// chunk vectors, and (3) into the server's pending buffers, then built one
// reply payload (T) and scattered it on each worker (W*T): (4W+1)*T floats.
// The zero-copy path keeps only the two end staging moves (gather+scatter,
// 2WT), so the modeled reduction is (4W+1)/(2W) ≈ 2.25x at W=2 — the ≥2x
// acceptance bar for this refactor.

struct WirePathCounters {
  double floats_per_iter = 0.0;
  double copies_per_iter = 0.0;
  double msgs_per_iter = 0.0;
  double logical_per_iter = 0.0;
  double model_floats = 0.0;  // total trainable floats, from the model itself
};

WirePathCounters RunWirePath(FcSyncPolicy policy, int workers, int hidden_layers,
                             bool batch, int iters) {
  DatasetConfig data;
  data.num_classes = 3;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 96;
  data.seed = 7;
  SyntheticDataset dataset(data);
  NetworkFactory factory = [hidden_layers] {
    Rng rng(13);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/24, hidden_layers, /*classes=*/3,
                    rng);
  };
  TrainerOptions options;
  options.num_workers = workers;
  options.num_servers = 2;
  options.batch_per_worker = 4;
  options.fc_policy = policy;
  options.kv_pair_bytes = 1024;
  options.batch_egress = batch;
  PoseidonTrainer trainer(factory, options);

  trainer.Train(dataset, 2);  // warm up staging slabs
  trainer.bus().FlushEgress();
  WireCopyStats::Reset();
  trainer.bus().ResetTraffic();
  trainer.Train(dataset, iters);
  trainer.bus().FlushEgress();

  WirePathCounters counters;
  for (auto& layer_params : trainer.worker_net(0).LayerParams()) {
    for (ParamBlock& p : layer_params) {
      counters.model_floats += static_cast<double>(p.value->size());
    }
  }
  counters.floats_per_iter = static_cast<double>(WireCopyStats::Floats()) / iters;
  counters.copies_per_iter = static_cast<double>(WireCopyStats::Copies()) / iters;
  for (int64_t m : trainer.bus().TxMessages()) {
    counters.msgs_per_iter += static_cast<double>(m) / iters;
  }
  for (int64_t e : trainer.bus().TxEntries()) {
    counters.logical_per_iter += static_cast<double>(e) / iters;
  }
  return counters;
}

void WirePathBench(benchmark::State& state, FcSyncPolicy policy, int hidden_layers) {
  const bool batch = state.range(0) != 0;
  const int workers = 2;
  WirePathCounters counters;
  for (auto _ : state) {
    counters = RunWirePath(policy, workers, hidden_layers, batch, /*iters=*/4);
  }
  state.counters["floats/iter"] = counters.floats_per_iter;
  state.counters["copies/iter"] = counters.copies_per_iter;
  state.counters["msgs/iter"] = counters.msgs_per_iter;
  state.counters["logical/iter"] = counters.logical_per_iter;
  if (policy == FcSyncPolicy::kDense) {
    // Pre-refactor model (see comment above), anchored on the model's own
    // parameter count T so the ratio is a real measurement: the old path
    // staged (4W+1)T floats per iteration; the measured counter should be
    // the two end moves, 2WT. A regression that adds staging copies shows
    // up as a falling copy_reduction.
    const double before = (4.0 * workers + 1.0) * counters.model_floats;
    state.counters["before_floats"] = before;
    state.counters["copy_reduction"] = before / counters.floats_per_iter;
  }
}

// 20-layer MLP on the PS path: the batcher's headline case.
void BM_WirePathPs20Layer(benchmark::State& state) {
  WirePathBench(state, FcSyncPolicy::kDense, /*hidden_layers=*/18);
}
BENCHMARK(BM_WirePathPs20Layer)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WirePathSfb(benchmark::State& state) {
  WirePathBench(state, FcSyncPolicy::kSfb, /*hidden_layers=*/2);
}
BENCHMARK(BM_WirePathSfb)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_WirePathOneBit(benchmark::State& state) {
  WirePathBench(state, FcSyncPolicy::kOneBit, /*hidden_layers=*/2);
}
BENCHMARK(BM_WirePathOneBit)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Codec round trips in isolation (encode + decode, no trainer).
void BM_CodecSfRoundTrip(benchmark::State& state) {
  Rng rng(5);
  Tensor errors = Tensor::RandomUniform({32, 256}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({32, 512}, -1.0f, 1.0f, rng);
  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);
  Tensor out({256, 512});
  for (auto _ : state) {
    Payload frame = SufficientFactorCodec::Encode(factors, nullptr, 0);
    benchmark::DoNotOptimize(SufficientFactorCodec::DecodeReconstruct(frame.View(), &out));
  }
  state.SetBytesProcessed(state.iterations() * 256 * 512 * 4);
}
BENCHMARK(BM_CodecSfRoundTrip);

void BM_CodecOneBitRoundTrip(benchmark::State& state) {
  Rng rng(6);
  Tensor grad = Tensor::RandomUniform({256, 256}, -1.0f, 1.0f, rng);
  OneBitQuantizer quantizer;
  Tensor out;
  for (auto _ : state) {
    Payload frame = OneBitCodec::Encode(grad, &quantizer, nullptr, 0);
    benchmark::DoNotOptimize(OneBitCodec::DecodeDense(frame.View(), &out));
  }
  state.SetBytesProcessed(state.iterations() * 256 * 256 * 4);
}
BENCHMARK(BM_CodecOneBitRoundTrip);

// ---------------- recorded perf trajectory + telemetry self-check ----------
//
// Beyond the google-benchmark suite above, this binary emits a machine-
// readable BenchRecord (--json-out; CI commits it as BENCH_micro.json) with
// the numbers the project tracks release-over-release: floats/s through each
// codec, staging-copy counts on the wire path, and the measured cost of a
// disabled TraceSpan. The self-check section runs BEFORE --trace-out arms the
// tracer, because the <2% budget is about the *disabled* instrumentation cost
// on the hot path (and re-enabling the tracer resets its clock epoch).

// Runs `fn` in small batches until ~20ms have elapsed; returns ns per call.
// A ~2ms untimed warmup runs first: the first calls through a fresh slab
// fault in pages and miss cold caches, which used to put ~2x run-to-run
// variance on the short raw-encode series. Warming until the allocator's
// slab pages are touched makes the timed section measure steady state.
template <typename Fn>
double NsPerCall(Fn&& fn) {
  {
    Stopwatch warmup;
    do {
      fn();
    } while (warmup.ElapsedNs() < 2 * 1000 * 1000);
  }
  Stopwatch watch;
  int64_t calls = 0;
  do {
    for (int i = 0; i < 8; ++i) {
      fn();
    }
    calls += 8;
  } while (watch.ElapsedNs() < 20 * 1000 * 1000);
  return static_cast<double>(watch.ElapsedNs()) / static_cast<double>(calls);
}

// ------------------------------------------------------------- roofline ----
//
// SIMD roofline section (docs/PERFORMANCE.md): the same hot kernels timed
// under pinned scalar dispatch and under the best available SIMD level, plus
// a streaming memory-bandwidth measurement that bounds what any bandwidth-
// limited kernel can reach. Emitted series:
//   onebit_roundtrip_floats_per_s_{scalar,simd}   codec round trip
//   ring_reduce_floats_per_s_{scalar,simd}        collective accumulate loop
//   mem_bw_gbps                                   large-buffer copy bandwidth
// When the host has no SIMD backend (meta simd_available = 0) the _simd
// series repeat the scalar numbers so the required-series contract holds;
// the CI ratio gate skips itself in that case (tools/check_bench_json.py).
void RecordRoofline(BenchRecord* record) {
  const simd::Level best = simd::BestLevel();
  const bool simd_available = best != simd::Level::kScalar;
  record->SetMeta("simd_available", simd_available ? 1.0 : 0.0);
  record->SetMeta("simd_best_level", simd::LevelName(best));

  Rng rng(17);
  Tensor onebit_grad = Tensor::RandomUniform({256, 256}, -1.0f, 1.0f, rng);
  Tensor onebit_out;
  // Ring reduce working set: one collective chunk's worth of floats, sized
  // to live in cache so the scalar/simd contrast measures compute, not DRAM.
  const int64_t reduce_n = 64 * 1024;
  std::vector<float> reduce_dst(static_cast<size_t>(reduce_n), 0.5f);
  std::vector<float> reduce_src(static_cast<size_t>(reduce_n), 0.25f);

  for (const bool use_simd : {false, true}) {
    const simd::ScopedLevel pinned(use_simd ? best : simd::Level::kScalar);
    const char* suffix = use_simd ? "simd" : "scalar";
    OneBitQuantizer quantizer;
    for (int rep = 0; rep < 3; ++rep) {
      const double onebit_ns = NsPerCall([&] {
        Payload frame = OneBitCodec::Encode(onebit_grad, &quantizer, nullptr, 0);
        benchmark::DoNotOptimize(OneBitCodec::DecodeDense(frame.View(), &onebit_out));
      });
      record->Append(std::string("onebit_roundtrip_floats_per_s_") + suffix,
                     1e9 * (256.0 * 256.0) / onebit_ns);
      const double reduce_ns = NsPerCall([&] {
        simd::ReduceAdd(reduce_dst.data(), reduce_src.data(), reduce_n);
        benchmark::DoNotOptimize(reduce_dst.data());
      });
      record->Append(std::string("ring_reduce_floats_per_s_") + suffix,
                     1e9 * static_cast<double>(reduce_n) / reduce_ns);
    }
  }

  // Streaming bandwidth: copy a buffer much larger than the last-level
  // cache; each call moves the bytes twice (read + write).
  const int64_t bw_floats = 16 * 1024 * 1024;
  std::vector<float> bw_src(static_cast<size_t>(bw_floats), 1.0f);
  std::vector<float> bw_dst(static_cast<size_t>(bw_floats), 0.0f);
  for (int rep = 0; rep < 3; ++rep) {
    const double copy_ns = NsPerCall([&] {
      std::memcpy(bw_dst.data(), bw_src.data(),
                  static_cast<size_t>(bw_floats) * sizeof(float));
      benchmark::DoNotOptimize(bw_dst.data());
    });
    record->Append("mem_bw_gbps",
                   8.0 * 2.0 * static_cast<double>(bw_floats) * 4.0 / copy_ns);
  }

  const double scalar =
      record->Series("onebit_roundtrip_floats_per_s_scalar").front();
  const double vec = record->Series("onebit_roundtrip_floats_per_s_simd").front();
  std::printf("roofline: onebit %s %.0fM floats/s vs scalar %.0fM floats/s "
              "(%.1fx), mem_bw %.1f Gb/s\n",
              simd::LevelName(best), vec / 1e6, scalar / 1e6, vec / scalar,
              record->Series("mem_bw_gbps").front());
}

void RecordWirePath(const char* prefix, FcSyncPolicy policy, int hidden_layers,
                    BenchRecord* record) {
  const int workers = 2;
  const WirePathCounters counters =
      RunWirePath(policy, workers, hidden_layers, /*batch=*/true, /*iters=*/4);
  const std::string p(prefix);
  record->Append(p + "_floats_per_iter", counters.floats_per_iter);
  record->Append(p + "_copies_per_iter", counters.copies_per_iter);
  record->Append(p + "_msgs_per_iter", counters.msgs_per_iter);
  if (policy == FcSyncPolicy::kDense) {
    // Same pre-refactor copy model as BM_WirePathPs20Layer above.
    const double before = (4.0 * workers + 1.0) * counters.model_floats;
    record->Append(p + "_copy_reduction", before / counters.floats_per_iter);
  }
}

// ------------------------------------------------- compression trajectory ----
//
// Bytes-vs-final-loss point for each PS wire codec (docs/COMPRESSION.md),
// measured on a real seeded training run through the bus. Recorded series:
//   ext_compression_{raw,fp16,int8,topk}_bytes_per_iter   bus egress bytes
//   ext_compression_{raw,fp16,int8,topk}_final_loss       after 16 iters
//   ext_compression_best_matched_reduction                see below
// The headline number is the best byte reduction among codecs whose run is
// "matched": it recovers at least 90% of the raw run's loss improvement.
// The acceptance bar — and the CI gate in tools/check_bench_json.py — is a
// >= 2x reduction at matched loss. bench_ext_compression sweeps the wider
// grid; this section pins the tracked trajectory.
bool RecordCompressionAblation(BenchRecord* record) {
  const int iters = 16;
  const double density = 0.25;
  const CompressionAblationPoint raw =
      RunCompressionAblation(PsCompressionPolicy::kNone, density, iters);
  record->Append("ext_compression_raw_bytes_per_iter", raw.wire_bytes_per_iter);
  record->Append("ext_compression_raw_final_loss", raw.final_loss);
  const double raw_gain = raw.first_loss - raw.final_loss;

  double best_matched = 0.0;
  const struct {
    const char* name;
    PsCompressionPolicy policy;
  } codecs[] = {{"fp16", PsCompressionPolicy::kFp16},
                {"int8", PsCompressionPolicy::kInt8},
                {"topk", PsCompressionPolicy::kTopK}};
  for (const auto& codec : codecs) {
    const CompressionAblationPoint point =
        RunCompressionAblation(codec.policy, density, iters);
    const double reduction = raw.wire_bytes_per_iter / point.wire_bytes_per_iter;
    const bool matched = raw.first_loss - point.final_loss >= 0.9 * raw_gain;
    record->Append(std::string("ext_compression_") + codec.name + "_bytes_per_iter",
                   point.wire_bytes_per_iter);
    record->Append(std::string("ext_compression_") + codec.name + "_final_loss",
                   point.final_loss);
    if (matched) {
      best_matched = std::max(best_matched, reduction);
    }
    std::printf("ext_compression %s: %.0f B/iter (%.2fx vs raw), final loss %.4f "
                "(raw %.4f)%s\n",
                codec.name, point.wire_bytes_per_iter, reduction, point.final_loss,
                raw.final_loss, matched ? "" : " [NOT loss-matched]");
  }
  record->Append("ext_compression_best_matched_reduction", best_matched);
  if (best_matched < 2.0) {
    std::fprintf(stderr,
                 "FAIL: best loss-matched wire-byte reduction %.2fx is below the "
                 "2x acceptance bar\n",
                 best_matched);
    return false;
  }
  return true;
}

// ------------------------------------------------------ planner trajectory ----
//
// CommPlanner cost trajectory (docs/PLANNER.md). Recorded series:
//   planner_cold_search_us      full joint search, vgg19 @ 16 nodes
//   planner_cached_lookup_us    the same request through a warm PlanCache
//   planner_cache_speedup       cold / cached — the memoization headline;
//                               the acceptance bar (and the CI gate in
//                               tools/check_bench_json.py) is >= 100x
//   planner_default_bytes_per_iter   paper-default predicted wire bytes
//   planner_planned_bytes_per_iter   joint-plan predicted wire bytes
//   planner_bytes_ratio              default / planned, >= 1: the joint
//                                    search may never predict more traffic
//                                    than the hand-picked configuration
bool RecordPlanner(BenchRecord* record) {
  const ModelSpec model = ModelByName("vgg19").value();
  const int nodes = 16;
  const PlanRequest joint = JointAutoRequest(model, nodes, /*nic_gbps=*/40.0,
                                             /*max_shards=*/8);

  double cold_us = 0.0;
  double cached_us = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double cold_ns = NsPerCall([&] {
      CommPlan plan = PlanComm(joint);
      benchmark::DoNotOptimize(&plan);
    });
    record->Append("planner_cold_search_us", cold_ns / 1e3);
    cold_us = cold_ns / 1e3;

    PlanCache cache;
    auto warm = cache.GetOrPlan(joint);  // prime: one miss, then all hits
    benchmark::DoNotOptimize(warm.get());
    const double cached_ns = NsPerCall([&] {
      benchmark::DoNotOptimize(cache.GetOrPlan(joint).get());
    });
    record->Append("planner_cached_lookup_us", cached_ns / 1e3);
    cached_us = cached_ns / 1e3;
  }
  const double speedup = cold_us / cached_us;
  record->Append("planner_cache_speedup", speedup);

  const CommPlan planned = PlanComm(JointAutoRequest(model, nodes, /*nic_gbps=*/0.0,
                                                     /*max_shards=*/8));
  const CommPlan fallback = PlanComm(PaperDefaultRequest(model, nodes));
  const double ratio = fallback.predicted_wire_bytes / planned.predicted_wire_bytes;
  record->Append("planner_default_bytes_per_iter", fallback.predicted_wire_bytes);
  record->Append("planner_planned_bytes_per_iter", planned.predicted_wire_bytes);
  record->Append("planner_bytes_ratio", ratio);

  std::printf("planner: cold search %.1f us, cached lookup %.3f us (%.0fx), "
              "planned %.1f MB/iter vs default %.1f MB/iter (%.2fx)\n",
              cold_us, cached_us, speedup, planned.predicted_wire_bytes / 1e6,
              fallback.predicted_wire_bytes / 1e6, ratio);
  if (speedup < 100.0) {
    std::fprintf(stderr,
                 "FAIL: plan-cache speedup %.0fx is below the 100x floor\n", speedup);
    return false;
  }
  if (ratio < 1.0) {
    std::fprintf(stderr,
                 "FAIL: joint plan predicts %.2fx the default's wire bytes; the "
                 "search must never lose to the hand-picked configuration\n",
                 1.0 / ratio);
    return false;
  }
  return true;
}

bool SelfCheckAndRecord(BenchRecord* record) {
  record->SetMeta("wire_workers", 2.0);
  record->SetMeta("wire_iters", 4.0);
  record->SetMeta("overhead_bound", 0.02);

  // Per-codec throughput trajectory: three repeats each, floats per second.
  // Raw is encode-only (the staging copy); SF and one-bit are round trips,
  // credited with the dense floats they transport.
  Rng rng(11);
  Tensor dense = Tensor::RandomUniform({256, 512}, -1.0f, 1.0f, rng);
  Tensor errors = Tensor::RandomUniform({32, 256}, -1.0f, 1.0f, rng);
  Tensor inputs = Tensor::RandomUniform({32, 512}, -1.0f, 1.0f, rng);
  const SufficientFactors factors = MakeSufficientFactors(errors, inputs);
  Tensor sf_out({256, 512});
  OneBitQuantizer quantizer;
  Tensor onebit_grad = Tensor::RandomUniform({256, 256}, -1.0f, 1.0f, rng);
  Tensor onebit_out;
  for (int rep = 0; rep < 3; ++rep) {
    const double raw_ns = NsPerCall([&] {
      Payload frame = RawFloatCodec::Encode(dense.data(), dense.size());
      benchmark::DoNotOptimize(frame);
    });
    record->Append("raw_encode_floats_per_s", 1e9 * dense.size() / raw_ns);
    const double sf_ns = NsPerCall([&] {
      Payload frame = SufficientFactorCodec::Encode(factors, nullptr, 0);
      benchmark::DoNotOptimize(SufficientFactorCodec::DecodeReconstruct(frame.View(), &sf_out));
    });
    record->Append("sf_roundtrip_floats_per_s", 1e9 * (256.0 * 512.0) / sf_ns);
    const double onebit_ns = NsPerCall([&] {
      Payload frame = OneBitCodec::Encode(onebit_grad, &quantizer, nullptr, 0);
      benchmark::DoNotOptimize(OneBitCodec::DecodeDense(frame.View(), &onebit_out));
    });
    record->Append("onebit_roundtrip_floats_per_s", 1e9 * (256.0 * 256.0) / onebit_ns);
  }

  // SIMD roofline: scalar-vs-dispatched kernel throughput + memory bandwidth.
  RecordRoofline(record);

  // Wire-path staging-copy counts per training iteration, per scheme.
  RecordWirePath("wire_ps", FcSyncPolicy::kDense, /*hidden_layers=*/18, record);
  RecordWirePath("wire_sfb", FcSyncPolicy::kSfb, /*hidden_layers=*/2, record);
  RecordWirePath("wire_onebit", FcSyncPolicy::kOneBit, /*hidden_layers=*/2, record);

  // Compressed-PS bytes-vs-loss trajectory and its 2x matched-loss gate.
  if (!RecordCompressionAblation(record)) {
    return false;
  }

  // CommPlanner search cost, cache speedup, and the bytes-never-worse gate.
  if (!RecordPlanner(record)) {
    return false;
  }

  // Real-network datapoint: payload Gb/s through the socket transport on
  // loopback TCP and a Unix-domain socket (the multi-process cluster's data
  // path, wire frames and all). A regression here is a socket-path
  // serialization or flusher problem, not a codec one.
  for (const bool unix_sockets : {false, true}) {
    SocketBandwidthOptions options;
    options.unix_sockets = unix_sockets;
    const StatusOr<SocketBandwidthResult> measured = MeasureSocketBandwidth(options);
    const char* series = unix_sockets ? "socket_unix_gbps" : "socket_tcp_gbps";
    if (!measured.ok()) {
      std::fprintf(stderr, "FAIL: %s probe: %s\n", series,
                   measured.status().ToString().c_str());
      return false;
    }
    record->Append(series, measured->payload_gbps);
    std::printf("%s: %.2f Gb/s payload (%.2f Gb/s on the stream)\n", series,
                measured->payload_gbps, measured->wire_gbps);
  }

  // Disabled-overhead budget: a TraceSpan while tracing is off costs one
  // relaxed atomic load at construction and a flag test at destruction. The
  // densest instrumentation on the wire path is one span per codec call, so
  // the bound compared here is span cost over the cheapest traced encode (a
  // small 16 KiB raw staging copy) — the worst realistic ratio.
  if (Tracer::enabled()) {
    std::fprintf(stderr,
                 "self-check: tracer unexpectedly enabled; overhead measurement "
                 "reflects the ENABLED cost\n");
  }
  const double span_ns = NsPerCall([&] {
    TraceSpan span("selfcheck.noop", "bench");
    benchmark::DoNotOptimize(&span);
  });
  Tensor small = Tensor::RandomUniform({64, 64}, -1.0f, 1.0f, rng);
  const double small_encode_ns = NsPerCall([&] {
    Payload frame = RawFloatCodec::Encode(small.data(), small.size());
    benchmark::DoNotOptimize(frame);
  });
  const double overhead_frac = span_ns / small_encode_ns;
  record->Append("disabled_span_ns", span_ns);
  record->Append("telemetry_overhead_frac", overhead_frac);
  std::printf("telemetry self-check: disabled span %.2f ns, %.0f ns/16KiB encode, "
              "overhead %.4f%% (budget 2%%)\n",
              span_ns, small_encode_ns, 100.0 * overhead_frac);
  if (overhead_frac >= 0.02) {
    std::fprintf(stderr,
                 "FAIL: disabled tracing overhead %.3f%% exceeds the 2%% budget\n",
                 100.0 * overhead_frac);
    return false;
  }
  return true;
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  // Split argv: the shared telemetry flags are ours; everything else goes to
  // google-benchmark untouched (--benchmark_filter and friends still work).
  poseidon::BenchArgs args;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> std::string {
      std::string v = arg.substr(std::strlen(prefix));
      if (!v.empty() && v[0] == '=') {
        return v.substr(1);
      }
      if (v.empty() && i + 1 < argc) {
        return argv[++i];
      }
      return v;
    };
    if (arg.rfind("--simd", 0) == 0) {
      args.simd = value_of("--simd");
      if (!poseidon::simd::SetLevelFromString(args.simd)) {
        std::fprintf(stderr, "invalid --simd value: '%s' (auto|avx2|neon|scalar)\n",
                     args.simd.c_str());
        return 2;
      }
    } else if (arg.rfind("--json-out", 0) == 0) {
      args.json_out = value_of("--json-out");
    } else if (arg.rfind("--trace-out", 0) == 0) {
      args.trace_out = value_of("--trace-out");
    } else if (arg.rfind("--metrics-json", 0) == 0) {
      args.metrics_json = value_of("--metrics-json");
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());

  poseidon::BenchRecord record("micro_benchmarks");
  const bool overhead_ok = poseidon::SelfCheckAndRecord(&record);

  poseidon::InitBenchTelemetry(args);
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  poseidon::FinishBenchTelemetry(args, &record);
  return overhead_ok ? 0 : 1;
}

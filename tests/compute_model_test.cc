// Tests for the GPU compute model: calibration against the paper's measured
// single-node throughputs, FLOP-proportional layer timing, and straggler /
// drop-straggler behaviour of the protocol simulator.
#include <gtest/gtest.h>

#include "src/cluster/compute_model.h"
#include "src/cluster/protocol_sim.h"
#include "src/cluster/system_config.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

TEST(ComputeModelTest, CalibratedThroughputsMatchPaper) {
  EXPECT_DOUBLE_EQ(SingleNodeImagesPerSec(MakeGoogLeNet(), Engine::kCaffe), 257.0);
  EXPECT_DOUBLE_EQ(SingleNodeImagesPerSec(MakeVgg19(), Engine::kCaffe), 35.5);
  EXPECT_DOUBLE_EQ(SingleNodeImagesPerSec(MakeVgg19(), Engine::kTensorFlow), 38.5);
  EXPECT_DOUBLE_EQ(SingleNodeImagesPerSec(MakeInceptionV3(), Engine::kTensorFlow), 43.2);
}

TEST(ComputeModelTest, UncalibratedModelUsesFlopsFallback) {
  // AlexNet isn't in the calibration table; the fallback must be sane
  // (hundreds of images/s on a Titan-X-class device at batch 256).
  const double rate = SingleNodeImagesPerSec(MakeAlexNet(), Engine::kCaffe);
  EXPECT_GT(rate, 100.0);
  EXPECT_LT(rate, 2000.0);
}

TEST(ComputeModelTest, LayerTimesSumToBatchTime) {
  const ModelSpec model = MakeVgg19();
  const ComputeTimings timings = MakeComputeTimings(model, Engine::kCaffe, 32);
  EXPECT_NEAR(timings.total_fwd_s() + timings.total_bwd_s(), timings.batch_time_s,
              timings.batch_time_s * 1e-9);
  EXPECT_NEAR(timings.batch_time_s, 32.0 / 35.5, 1e-9);
}

TEST(ComputeModelTest, BackwardIsTwiceForward) {
  const ComputeTimings timings = MakeComputeTimings(MakeGoogLeNet(), Engine::kCaffe, 64);
  for (const LayerTiming& layer : timings.layers) {
    EXPECT_DOUBLE_EQ(layer.bwd_s, 2.0 * layer.fwd_s);
  }
}

TEST(ComputeModelTest, TimeProportionalToFlops) {
  const ModelSpec model = MakeVgg19();
  const ComputeTimings timings = MakeComputeTimings(model, Engine::kCaffe, 32);
  // conv1_2 has ~twice the FLOPs of conv2_2's successor relationships; just
  // verify proportionality against the spec for a few pairs.
  for (size_t a = 0; a < model.layers.size(); ++a) {
    for (size_t b = a + 1; b < model.layers.size(); b += 7) {
      const double flop_ratio = model.layers[a].fwd_flops / model.layers[b].fwd_flops;
      const double time_ratio = timings.layers[a].fwd_s / timings.layers[b].fwd_s;
      EXPECT_NEAR(flop_ratio, time_ratio, 1e-6 * flop_ratio);
    }
  }
}

TEST(ComputeModelTest, ScalesLinearlyWithBatch) {
  const ModelSpec model = MakeGoogLeNet();
  const ComputeTimings b32 = MakeComputeTimings(model, Engine::kCaffe, 32);
  const ComputeTimings b128 = MakeComputeTimings(model, Engine::kCaffe, 128);
  EXPECT_NEAR(b128.batch_time_s, 4.0 * b32.batch_time_s, 1e-9);
}

// ----------------------------------------------------------- stragglers ----

ClusterSpec StragglerCluster(double slowdown) {
  ClusterSpec cluster;
  cluster.num_nodes = 8;
  cluster.nic_gbps = 40.0;
  cluster.straggler_node = 3;
  cluster.straggler_slowdown = slowdown;
  return cluster;
}

TEST(StragglerTest, BspIsGatedByTheSlowestWorker) {
  const ModelSpec model = MakeGoogLeNet();
  ClusterSpec healthy = StragglerCluster(1.0);
  ClusterSpec degraded = StragglerCluster(2.0);
  const SimResult base =
      RunProtocolSimulation(model, PoseidonSystem(), healthy, Engine::kCaffe);
  const SimResult slow =
      RunProtocolSimulation(model, PoseidonSystem(), degraded, Engine::kCaffe);
  // One 2x-slow node drags the whole BSP cluster to ~2x iteration time.
  EXPECT_GT(slow.iter_time_s, 1.8 * base.iter_time_s);
}

TEST(StragglerTest, DroppingTheStragglerRestoresThroughput) {
  const ModelSpec model = MakeGoogLeNet();
  ClusterSpec degraded = StragglerCluster(3.0);
  SystemConfig drop = PoseidonSystem();
  drop.drop_stragglers = true;
  const SimResult kept =
      RunProtocolSimulation(model, PoseidonSystem(), degraded, Engine::kCaffe);
  const SimResult dropped = RunProtocolSimulation(model, drop, degraded, Engine::kCaffe);
  EXPECT_LT(dropped.iter_time_s, 0.5 * kept.iter_time_s);
}

TEST(StragglerTest, DropPolicyHarmlessWithoutStragglers) {
  const ModelSpec model = MakeVgg19();
  ClusterSpec cluster;
  cluster.num_nodes = 8;
  cluster.nic_gbps = 40.0;
  SystemConfig drop = PoseidonSystem();
  drop.drop_stragglers = true;
  const SimResult base =
      RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe);
  const SimResult with_drop = RunProtocolSimulation(model, drop, cluster, Engine::kCaffe);
  // Symmetric nodes: the quorum fills immediately either way; timing shifts
  // only marginally (the last arrival no longer gates the broadcast).
  EXPECT_NEAR(with_drop.iter_time_s, base.iter_time_s, 0.15 * base.iter_time_s);
}

}  // namespace
}  // namespace poseidon

// Cross-ISA property suite for the SIMD kernel layer (src/simd): every
// backend the host can run must produce bitwise-identical results to the
// scalar reference — on every length (vector blocks plus 0..15-element
// tails), on unaligned inputs, and through a full training run. This is the
// determinism contract of docs/PERFORMANCE.md, enforced rather than assumed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "src/simd/vec.h"
#include "src/tensor/onebit.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace {

// Fuzzed fill: well-scaled magnitudes with sign flips, a sprinkling of
// exact zeros (both signs), and denormals. NaN-free by construction — the
// kernels classify NaN deterministically, but quantizing a NaN gradient is
// already a bug upstream of this layer.
std::vector<float> FuzzFloats(std::mt19937* gen, size_t n) {
  std::uniform_real_distribution<float> value(-2.0f, 2.0f);
  std::uniform_int_distribution<int> kind(0, 19);
  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) {
    switch (kind(*gen)) {
      case 0:
        out[i] = 0.0f;
        break;
      case 1:
        out[i] = -0.0f;
        break;
      case 2:
        out[i] = std::ldexp(value(*gen), -140);  // denormal territory
        break;
      default:
        out[i] = value(*gen);
    }
  }
  return out;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// Non-scalar levels this host can actually execute.
std::vector<simd::Level> VectorLevels() {
  std::vector<simd::Level> levels;
  for (simd::Level level : simd::SupportedLevels()) {
    if (level != simd::Level::kScalar) {
      levels.push_back(level);
    }
  }
  return levels;
}

// The fuzzed length set: everything from empty through two full blocks plus
// every tail remainder, then a few larger sizes with each tail length.
std::vector<int64_t> FuzzLengths() {
  std::vector<int64_t> lengths;
  for (int64_t n = 0; n <= 33; ++n) {
    lengths.push_back(n);
  }
  for (int64_t tail = 0; tail <= 15; ++tail) {
    lengths.push_back(256 + tail);
  }
  return lengths;
}

TEST(SimdDispatchTest, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(simd::Supported(simd::Level::kScalar));
  EXPECT_NE(simd::KernelsFor(simd::Level::kScalar), nullptr);
}

TEST(SimdDispatchTest, LevelFromStringRoundTrips) {
  EXPECT_TRUE(simd::SetLevelFromString("scalar"));
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_TRUE(simd::SetLevelFromString("auto"));
  EXPECT_EQ(simd::ActiveLevel(), simd::BestLevel());
  EXPECT_FALSE(simd::SetLevelFromString("avx512"));
  EXPECT_FALSE(simd::SetLevelFromString(""));
  // A rejected string must not have clobbered the active level.
  EXPECT_EQ(simd::ActiveLevel(), simd::BestLevel());
}

TEST(SimdDispatchTest, ScopedLevelRestores) {
  const simd::Level before = simd::ActiveLevel();
  {
    simd::ScopedLevel pinned(simd::Level::kScalar);
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::ActiveLevel(), before);
}

TEST(SimdKernelTest, ElementwiseKernelsMatchScalarBitwise) {
  std::mt19937 gen(20250808);
  const simd::Kernels* scalar = simd::KernelsFor(simd::Level::kScalar);
  for (simd::Level level : VectorLevels()) {
    const simd::Kernels* vec = simd::KernelsFor(level);
    ASSERT_NE(vec, nullptr);
    for (int64_t n : FuzzLengths()) {
      // Offsets 0..7 shift the working pointers off any 32-byte boundary;
      // the kernels use unaligned loads so results must not change.
      for (int64_t offset : {0, 1, 3, 7}) {
        SCOPED_TRACE(std::string(simd::LevelName(level)) + " n=" +
                     std::to_string(n) + " offset=" + std::to_string(offset));
        const size_t total = static_cast<size_t>(n + offset);
        const std::vector<float> x = FuzzFloats(&gen, total);
        const std::vector<float> y0 = FuzzFloats(&gen, total);
        const std::vector<float> v0 = FuzzFloats(&gen, total);

        std::vector<float> a = y0, b = y0;
        scalar->reduce_add(a.data() + offset, x.data() + offset, n);
        vec->reduce_add(b.data() + offset, x.data() + offset, n);
        EXPECT_TRUE(BitwiseEqual(a, b)) << "reduce_add";

        a = y0, b = y0;
        scalar->scale(a.data() + offset, 0.3125f, n);
        vec->scale(b.data() + offset, 0.3125f, n);
        EXPECT_TRUE(BitwiseEqual(a, b)) << "scale";

        a = y0, b = y0;
        scalar->axpy(a.data() + offset, -1.7f, x.data() + offset, n);
        vec->axpy(b.data() + offset, -1.7f, x.data() + offset, n);
        EXPECT_TRUE(BitwiseEqual(a, b)) << "axpy";

        std::vector<float> va = v0, vb = v0;
        a = y0, b = y0;
        scalar->sgd_step(va.data() + offset, a.data() + offset, x.data() + offset,
                         0.05f, 0.9f, 0.0001f, n);
        vec->sgd_step(vb.data() + offset, b.data() + offset, x.data() + offset,
                      0.05f, 0.9f, 0.0001f, n);
        EXPECT_TRUE(BitwiseEqual(va, vb)) << "sgd_step velocity";
        EXPECT_TRUE(BitwiseEqual(a, b)) << "sgd_step value";
      }
    }
  }
}

TEST(SimdKernelTest, OneBitKernelsMatchScalarBitwise) {
  std::mt19937 gen(7);
  const simd::Kernels* scalar = simd::KernelsFor(simd::Level::kScalar);
  for (simd::Level level : VectorLevels()) {
    const simd::Kernels* vec = simd::KernelsFor(level);
    ASSERT_NE(vec, nullptr);
    // Column counts sweep every 8-wide tail (1..16 plus wider), rows keep
    // the bit cursor landing at arbitrary non-word-aligned offsets.
    for (int64_t cols = 1; cols <= 40; cols += (cols < 18 ? 1 : 5)) {
      for (int64_t rows : {1, 3, 5}) {
        SCOPED_TRACE(std::string(simd::LevelName(level)) + " " +
                     std::to_string(rows) + "x" + std::to_string(cols));
        const size_t elems = static_cast<size_t>(rows * cols);
        const std::vector<float> grad = FuzzFloats(&gen, elems);
        const std::vector<float> residual = FuzzFloats(&gen, elems);
        const size_t words = (elems + 31) / 32;

        std::vector<uint32_t> bits_a(words, 0u), bits_b(words, 0u);
        std::vector<double> pos_a(static_cast<size_t>(cols), 0.0), neg_a = pos_a;
        std::vector<double> pos_b = pos_a, neg_b = pos_a;
        std::vector<int32_t> pc_a(static_cast<size_t>(cols), 0), nc_a = pc_a;
        std::vector<int32_t> pc_b = pc_a, nc_b = pc_a;
        scalar->onebit_encode_stats(grad.data(), residual.data(), rows, cols,
                                    bits_a.data(), pos_a.data(), neg_a.data(),
                                    pc_a.data(), nc_a.data());
        vec->onebit_encode_stats(grad.data(), residual.data(), rows, cols,
                                 bits_b.data(), pos_b.data(), neg_b.data(),
                                 pc_b.data(), nc_b.data());
        EXPECT_EQ(bits_a, bits_b);
        EXPECT_EQ(pc_a, pc_b);
        EXPECT_EQ(nc_a, nc_b);
        // Double sums must match to the bit, not approximately.
        ASSERT_EQ(pos_a.size(), pos_b.size());
        EXPECT_EQ(std::memcmp(pos_a.data(), pos_b.data(),
                              pos_a.size() * sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(neg_a.data(), neg_b.data(),
                              neg_a.size() * sizeof(double)), 0);

        // Levels derived the same way the quantizer derives them.
        std::vector<float> pos_level(static_cast<size_t>(cols), 0.0f);
        std::vector<float> neg_level(static_cast<size_t>(cols), 0.0f);
        for (int64_t c = 0; c < cols; ++c) {
          const size_t ci = static_cast<size_t>(c);
          if (pc_a[ci] > 0) pos_level[ci] = static_cast<float>(pos_a[ci] / pc_a[ci]);
          if (nc_a[ci] > 0) neg_level[ci] = static_cast<float>(neg_a[ci] / nc_a[ci]);
        }

        std::vector<float> res_a = residual, res_b = residual;
        scalar->onebit_residual_update(grad.data(), rows, cols, bits_a.data(),
                                       pos_level.data(), neg_level.data(),
                                       res_a.data());
        vec->onebit_residual_update(grad.data(), rows, cols, bits_a.data(),
                                    pos_level.data(), neg_level.data(),
                                    res_b.data());
        EXPECT_TRUE(BitwiseEqual(res_a, res_b)) << "residual update";

        std::vector<float> out_a(elems), out_b(elems);
        scalar->onebit_decode(bits_a.data(), pos_level.data(), neg_level.data(),
                              rows, cols, out_a.data());
        vec->onebit_decode(bits_a.data(), pos_level.data(), neg_level.data(),
                           rows, cols, out_b.data());
        EXPECT_TRUE(BitwiseEqual(out_a, out_b)) << "decode";
      }
    }
  }
}

TEST(SimdKernelTest, QuantKernelsMatchScalarBitwise) {
  std::mt19937 gen(20260808);
  const simd::Kernels* scalar = simd::KernelsFor(simd::Level::kScalar);
  for (simd::Level level : VectorLevels()) {
    const simd::Kernels* vec = simd::KernelsFor(level);
    ASSERT_NE(vec, nullptr);
    for (int64_t n : FuzzLengths()) {
      SCOPED_TRACE(std::string(simd::LevelName(level)) + " n=" + std::to_string(n));
      const std::vector<float> x = FuzzFloats(&gen, static_cast<size_t>(n));
      const uint32_t seed = gen();
      const int64_t base = static_cast<int64_t>(gen() % 4096);

      std::vector<uint16_t> ha(static_cast<size_t>(n), 0), hb = ha;
      scalar->fp16_encode_sr(x.data(), n, seed, base, ha.data());
      vec->fp16_encode_sr(x.data(), n, seed, base, hb.data());
      EXPECT_EQ(ha, hb) << "fp16_encode_sr";

      std::fill(ha.begin(), ha.end(), 0);
      std::fill(hb.begin(), hb.end(), 0);
      scalar->fp16_encode_rn(x.data(), n, ha.data());
      vec->fp16_encode_rn(x.data(), n, hb.data());
      EXPECT_EQ(ha, hb) << "fp16_encode_rn";

      // Decode every 16-bit pattern the encoder produced plus raw junk
      // halves (a hostile frame can carry any bits, inf/NaN included).
      std::vector<uint16_t> halves(static_cast<size_t>(n));
      for (auto& h : halves) {
        h = static_cast<uint16_t>(gen());
      }
      std::vector<float> fa(static_cast<size_t>(n), 0.0f), fb = fa;
      scalar->fp16_decode(halves.data(), n, fa.data());
      vec->fp16_decode(halves.data(), n, fb.data());
      EXPECT_TRUE(BitwiseEqual(fa, fb)) << "fp16_decode";

      const float max_abs_a = scalar->max_abs(x.data(), n);
      const float max_abs_b = vec->max_abs(x.data(), n);
      EXPECT_EQ(std::memcmp(&max_abs_a, &max_abs_b, sizeof(float)), 0) << "max_abs";

      const float inv_scale = max_abs_a > 0.0f ? 127.0f / max_abs_a : 0.0f;
      std::vector<int8_t> qa(static_cast<size_t>(n), 0), qb = qa;
      scalar->int8_encode_sr(x.data(), n, inv_scale, seed, base, qa.data());
      vec->int8_encode_sr(x.data(), n, inv_scale, seed, base, qb.data());
      EXPECT_EQ(qa, qb) << "int8_encode_sr";

      const float scale = max_abs_a / 127.0f;
      std::fill(fa.begin(), fa.end(), 0.0f);
      std::fill(fb.begin(), fb.end(), 0.0f);
      scalar->int8_decode(qa.data(), n, scale, fa.data());
      vec->int8_decode(qa.data(), n, scale, fb.data());
      EXPECT_TRUE(BitwiseEqual(fa, fb)) << "int8_decode";

      EXPECT_EQ(scalar->count_abs_greater(x.data(), n, 0.5f),
                vec->count_abs_greater(x.data(), n, 0.5f))
          << "count_abs_greater";
      EXPECT_EQ(scalar->count_abs_greater(x.data(), n, 0.0f),
                vec->count_abs_greater(x.data(), n, 0.0f))
          << "count_abs_greater at zero threshold";
    }
  }
}

// The end-to-end stake in the ground: a full small-cluster training run —
// quantized gradients, collectives, server applies, SGD — lands on exactly
// the same losses and final weights with vectorization on and off.
TEST(SimdTrajectoryTest, TrainerTrajectoryIsDispatchInvariant) {
  TrainerOptions options = testing::SmallTrainerOptions();
  options.fc_policy = FcSyncPolicy::kOneBit;
  testing::Trajectory scalar_run, auto_run;
  {
    simd::ScopedLevel pinned(simd::Level::kScalar);
    scalar_run = testing::CaptureTrajectory(options, /*iterations=*/6);
  }
  {
    simd::ScopedLevel pinned(simd::BestLevel());
    auto_run = testing::CaptureTrajectory(options, /*iterations=*/6);
  }
  EXPECT_EQ(scalar_run.mean_losses.size(), 6u);
  EXPECT_TRUE(scalar_run == auto_run)
      << "training trajectory differs between scalar and "
      << simd::LevelName(simd::BestLevel()) << " dispatch";
}

}  // namespace
}  // namespace poseidon

/// \file
/// The coordinator (paper §4.1): holds the "information book" — cluster
/// configuration, model architecture, and the KV partition plan — and answers
/// Query / BestScheme requests from client libraries and KV stores.
///
/// At construction it inspects the client program's network, flattens each
/// layer's parameters, carves them into fixed-size KV pairs and hashes the
/// pairs round-robin across server shard endpoints, "so as to partition and
/// distribute model parameters to server nodes as equally as possible". With
/// `shards_per_server > 1` every server node hosts that many independent
/// key-range shards (own mailbox, own apply thread); the round-robin cursor
/// runs over the flat `num_servers * shards_per_server` endpoint space, so a
/// large layer stripes across every endpoint in the cluster.
#ifndef POSEIDON_SRC_POSEIDON_COORDINATOR_H_
#define POSEIDON_SRC_POSEIDON_COORDINATOR_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/models/comm_cost.h"
#include "src/models/model_spec.h"
#include "src/nn/network.h"
#include "src/transport/message.h"

namespace poseidon {

/// Cluster shape and consistency policy shared by every runtime component.
struct ClusterInfo {
  int num_workers = 1;
  int num_servers = 1;
  /// Independent key-range shards hosted per server node. Each shard owns a
  /// disjoint subset of the KV pairs, listens on its own MessageBus endpoint
  /// and applies updates on its own thread.
  int shards_per_server = 1;
  /// Bounded staleness (SSP, Ho et al. NIPS'13): a worker at clock `c` may
  /// proceed once every update through clock `c - staleness` is applied.
  /// 0 reproduces the paper's BSP bitwise.
  int staleness = 0;
  int batch_per_worker = 32;
  int64_t kv_pair_bytes = 2 * 1024 * 1024;  ///< paper: fixed small pairs (2 MB)
  /// First bus node hosting a server. 0 (the default) colocates server s
  /// with worker s — the single-process trainer's historical layout, where
  /// one machine runs both roles. A multi-process launch sets it past the
  /// worker nodes (typically = num_workers) so every role maps onto its own
  /// OS process. Node ids never enter the arithmetic — shard striping,
  /// worker slots and reply scattering all key on worker/server *ids* — so
  /// the training trajectory is invariant under the placement.
  int server_node_base = 0;

  /// The bus node hosting server `server`.
  int ServerNode(int server) const { return server_node_base + server; }
  /// Bus nodes needed for this cluster shape.
  int NumNodes() const {
    return std::max(num_workers, server_node_base + num_servers);
  }
  /// The mailbox address of shard `shard` on server `server` under this
  /// cluster's placement (see ServerShardAddress for the port layout).
  Address ShardAddress(int server, int shard) const {
    return Address{ServerNode(server), kServerPort + shard};
  }
};

/// One KV pair: a contiguous slice of a layer's flattened parameter vector,
/// owned by exactly one shard endpoint (`server`, `shard`).
struct KvPairInfo {
  int layer = 0;
  int chunk = 0;       ///< index within the layer
  int64_t offset = 0;  ///< float offset into the flattened layer
  int64_t length = 0;  ///< floats
  int server = 0;      ///< owning server node
  int shard = 0;       ///< owning shard within that server
};

/// Architecture facts the coordinator records per layer.
struct LayerInfo {
  std::string name;
  LayerType type = LayerType::kConv;
  int64_t fc_m = 0;
  int64_t fc_n = 0;
  int64_t total_floats = 0;
  std::vector<KvPairInfo> pairs;
};

/// The information book: model + cluster facts and the KV partition plan.
class Coordinator {
 public:
  /// Builds the information book from a live network (the client program's
  /// model, discovered during network assembly).
  Coordinator(Network& net, const ClusterInfo& cluster);

  const ClusterInfo& cluster() const { return cluster_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerInfo& layer(int l) const;

  /// Table 2 "Query": information-book lookups by property name. Supported:
  /// "n_worker", "n_server", "n_shard" (per server), "staleness",
  /// "batchsize", "n_layer", "kv_pair_bytes".
  StatusOr<int64_t> Query(const std::string& property) const;

  /// Table 2 / Algorithm 1 "BestScheme": the communication method for layer
  /// `l` given the current model and cluster shape.
  CommScheme BestScheme(int l) const;
  StatusOr<CommScheme> BestScheme(const std::string& layer_name) const;

  /// The three-way HybComm extension: PS vs SFB vs ring/tree allreduce, by
  /// minimum modeled per-node floats (see comm_cost.h BestSchemeExtended).
  /// The PS candidate is costed at the cluster's configured shard count.
  CommScheme BestSchemeExtended(int l) const;

  /// KV pairs of layer `l` owned by `server` (all of its shards).
  std::vector<KvPairInfo> PairsOnServer(int l, int server) const;

  /// KV pairs of layer `l` owned by endpoint (`server`, `shard`).
  std::vector<KvPairInfo> PairsOnShard(int l, int server, int shard) const;

  /// 1-bit layers move whole (their encoding is not sliceable); layer `l`'s
  /// owning endpoint is fixed by these two functions, which the worker-side
  /// syncer and the serving shard must agree on.
  int OneBitOwnerServer(int l) const;
  int OneBitOwnerShard(int l) const;

  /// Total floats hosted by each server node, for balance checks (the
  /// paper's motivation for fine-grained pairs).
  std::vector<int64_t> ServerLoadFloats() const;

  /// Total floats hosted by each shard endpoint, indexed
  /// `server * shards_per_server + shard`. Striping should keep these as
  /// balanced as the per-server loads.
  std::vector<int64_t> ShardLoadFloats() const;

 private:
  ClusterInfo cluster_;
  std::vector<LayerInfo> layers_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_COORDINATOR_H_

// Regenerates Table 3: the networks used in the evaluation, their parameter
// counts, datasets and batch sizes — plus the per-layer statistics (FC
// parameter share, compute distribution) that motivate WFBP and HybComm.
#include <cstdio>

#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

void Run() {
  std::printf("Table 3: neural networks for evaluation\n\n");
  TextTable table({"model", "#params", "dataset", "batchsize", "layers", "FC param %",
                   "GFLOP/img (fwd)"});
  for (const ModelSpec& model : AllZooModels()) {
    const double params = static_cast<double>(model.total_params());
    std::string count = params >= 1e6 ? TextTable::Num(params / 1e6, 1) + "M"
                                      : TextTable::Num(params / 1e3, 1) + "K";
    table.AddRow({model.name, count, model.dataset, std::to_string(model.default_batch),
                  std::to_string(model.num_layers()),
                  TextTable::Num(100.0 * model.fc_param_fraction(), 1),
                  TextTable::Num(model.total_fwd_flops() / 1e9, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Per-layer breakdown of VGG19 (WFBP's premise: params at the top,\n");
  std::printf("compute at the bottom):\n\n");
  const ModelSpec vgg = MakeVgg19();
  TextTable layers({"layer", "type", "params (M)", "fwd GFLOP"});
  for (const LayerSpec& layer : vgg.layers) {
    layers.AddRow({layer.name, LayerTypeName(layer.type),
                   TextTable::Num(static_cast<double>(layer.params) / 1e6, 3),
                   TextTable::Num(layer.fwd_flops / 1e9, 3)});
  }
  std::printf("%s\n", layers.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run();
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

#include "src/tensor/sufficient_factor.h"

#include "src/tensor/ops.h"

namespace poseidon {

int64_t SufficientFactors::WireBytes() const {
  return (u.size() + v.size()) * 4 + 3 * 8;  // factors + dimensions
}

SufficientFactors MakeSufficientFactors(const Tensor& errors_km, const Tensor& inputs_kn) {
  CHECK_EQ(errors_km.ndim(), 2);
  CHECK_EQ(inputs_kn.ndim(), 2);
  const int64_t k = errors_km.dim(0);
  CHECK_EQ(inputs_kn.dim(0), k);
  const int64_t m = errors_km.dim(1);
  const int64_t n = inputs_kn.dim(1);

  SufficientFactors factors;
  factors.u = Tensor({m, k});
  factors.v = Tensor({n, k});
  // Transpose [K,M] -> [M,K] and [K,N] -> [N,K].
  for (int64_t s = 0; s < k; ++s) {
    for (int64_t i = 0; i < m; ++i) {
      factors.u.At(i, s) = errors_km.At(s, i);
    }
    for (int64_t j = 0; j < n; ++j) {
      factors.v.At(j, s) = inputs_kn.At(s, j);
    }
  }
  return factors;
}

void ReconstructGradient(const SufficientFactors& factors, Tensor* out) {
  CHECK_EQ(out->dim(0), factors.rows());
  CHECK_EQ(out->dim(1), factors.cols());
  // U [M,K] * V^T [K,N].
  GemmTransB(factors.u, factors.v, out);
}

void AccumulateGradient(const SufficientFactors& factors, Tensor* out) {
  CHECK_EQ(out->dim(0), factors.rows());
  CHECK_EQ(out->dim(1), factors.cols());
  const int64_t m = factors.rows();
  const int64_t n = factors.cols();
  const int64_t k = factors.rank();
  for (int64_t i = 0; i < m; ++i) {
    float* out_row = out->data() + i * n;
    for (int64_t s = 0; s < k; ++s) {
      const float u_is = factors.u.At(i, s);
      if (u_is == 0.0f) {
        continue;
      }
      const float* v_col = factors.v.data();
      for (int64_t j = 0; j < n; ++j) {
        out_row[j] += u_is * v_col[j * k + s];
      }
    }
  }
}

}  // namespace poseidon

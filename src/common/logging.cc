#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace poseidon {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

// Serializes whole lines so concurrent threads do not interleave output.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : file_(file), line_(line), severity_(severity) {}

LogMessage::~LogMessage() {
  const bool fatal = severity_ == LogSeverity::kFatal;
  if (fatal || static_cast<int>(severity_) >= g_min_severity.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::system_clock::now().time_since_epoch();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s %lld.%03lld %s:%d] %s\n", SeverityTag(severity_),
                 static_cast<long long>(ms / 1000), static_cast<long long>(ms % 1000),
                 Basename(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal) {
    std::abort();
  }
}

}  // namespace poseidon

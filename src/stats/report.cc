#include "src/stats/report.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/nn/builders.h"
#include "src/planner/comm_planner.h"
#include "src/planner/plan_cache.h"
#include "src/poseidon/trainer.h"

namespace poseidon {
namespace {

double Mean(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) {
    total += x;
  }
  return v.empty() ? 0.0 : total / static_cast<double>(v.size());
}

}  // namespace

std::vector<SweepResult> RunScalingSweep(const ModelSpec& model,
                                         const std::vector<SystemConfig>& systems,
                                         const std::vector<int>& node_counts, double gbps,
                                         Engine engine) {
  std::vector<SweepResult> results;
  for (const SystemConfig& system : systems) {
    for (int nodes : node_counts) {
      ClusterSpec cluster;
      cluster.num_nodes = nodes;
      cluster.nic_gbps = gbps;
      SweepResult result;
      result.system = system.name;
      result.nodes = nodes;
      result.gbps = gbps;
      result.sim = RunProtocolSimulation(model, system, cluster, engine);
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::shared_ptr<const CommPlan> PlanForBench(const BenchArgs& args, const ModelSpec& model,
                                             int nodes, double gbps) {
  if (args.AutoPlan()) {
    return PlanCache::Global().GetOrPlan(
        JointAutoRequest(model, nodes, gbps, kMaxAutoShards));
  }
  if (args.FixedPlan()) {
    StatusOr<CommPlan> loaded = CommPlan::LoadFromFile(args.FixedPlanPath());
    CHECK(loaded.ok()) << "--plan=" << args.plan << ": "
                       << loaded.status().ToString();
    return std::make_shared<const CommPlan>(std::move(loaded).value());
  }
  return nullptr;
}

std::vector<SweepResult> RunPlannedScalingSweep(const BenchArgs& args, const ModelSpec& model,
                                                const std::vector<SystemConfig>& paper_systems,
                                                const std::vector<int>& node_counts,
                                                double gbps, Engine engine) {
  if (!args.AutoPlan() && !args.FixedPlan()) {
    return RunScalingSweep(model, paper_systems, node_counts, gbps, engine);
  }
  // The plan depends on the cluster shape, so each node count gets its own
  // (memoized) plan; a fixed plan is simply the same file at every point.
  std::vector<SweepResult> results;
  for (int nodes : node_counts) {
    const auto point =
        RunScalingSweep(model, {PlannedSystem(PlanForBench(args, model, nodes, gbps))},
                        {nodes}, gbps, engine);
    results.insert(results.end(), point.begin(), point.end());
  }
  return results;
}

std::string FormatPlanSummary(const BenchArgs& args, const ModelSpec& model, int nodes,
                              double gbps) {
  const std::shared_ptr<const CommPlan> plan = PlanForBench(args, model, nodes, gbps);
  if (plan == nullptr) {
    return std::string();
  }
  std::ostringstream out;
  out << "Plan (" << args.plan << ") for " << model.name << " on " << nodes
      << " nodes @ " << gbps << " GbE:\n"
      << plan->Summary();
  return out.str();
}

std::string FormatSpeedupTable(const std::string& title,
                               const std::vector<SweepResult>& results) {
  // Preserve first-appearance order of systems and node counts.
  std::vector<std::string> systems;
  std::vector<int> nodes;
  std::map<std::pair<std::string, int>, double> speedup;
  for (const SweepResult& r : results) {
    if (std::find(systems.begin(), systems.end(), r.system) == systems.end()) {
      systems.push_back(r.system);
    }
    if (std::find(nodes.begin(), nodes.end(), r.nodes) == nodes.end()) {
      nodes.push_back(r.nodes);
    }
    speedup[{r.system, r.nodes}] = r.sim.speedup;
  }

  std::vector<std::string> header = {"nodes", "linear"};
  for (const std::string& system : systems) {
    header.push_back(system);
  }
  TextTable table(std::move(header));
  for (int n : nodes) {
    std::vector<std::string> row = {std::to_string(n), std::to_string(n)};
    for (const std::string& system : systems) {
      auto it = speedup.find({system, n});
      row.push_back(it == speedup.end() ? "-" : TextTable::Num(it->second, 1));
    }
    table.AddRow(std::move(row));
  }

  std::ostringstream out;
  out << "== " << title << " ==\n" << table.ToString();
  return out.str();
}

std::string FormatBatchAblation(const std::string& title, const ModelSpec& model,
                                SystemConfig system, const std::vector<int>& node_counts,
                                double gbps, Engine engine) {
  TextTable table({"nodes", "msgs/iter", "msgs/iter(batched)", "reduction", "tx gbit/iter",
                   "tx gbit/iter(batched)"});
  for (int nodes : node_counts) {
    ClusterSpec cluster;
    cluster.num_nodes = nodes;
    cluster.nic_gbps = gbps;
    system.batch_egress = false;
    const SimResult plain = RunProtocolSimulation(model, system, cluster, engine);
    system.batch_egress = true;
    const SimResult batched = RunProtocolSimulation(model, system, cluster, engine);

    const double plain_msgs = Mean(plain.wire_msgs_per_iter);
    const double batched_msgs = Mean(batched.wire_msgs_per_iter);
    table.AddRow({std::to_string(nodes), TextTable::Num(plain_msgs, 1),
                  TextTable::Num(batched_msgs, 1),
                  TextTable::Num(batched_msgs > 0.0 ? plain_msgs / batched_msgs : 0.0, 2),
                  TextTable::Num(Mean(plain.tx_gbits_per_iter), 4),
                  TextTable::Num(Mean(batched.tx_gbits_per_iter), 4)});
  }
  std::ostringstream out;
  out << title << " (" << system.name << ", per-node averages)\n" << table.ToString();
  return out.str();
}

std::string FormatLossAblation(const std::string& title, const ModelSpec& model,
                               SystemConfig system, int nodes, double gbps, Engine engine,
                               const std::vector<double>& loss_rates) {
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = gbps;

  system.loss_rate = 0.0;
  const SimResult clean = RunProtocolSimulation(model, system, cluster, engine);

  TextTable table({"loss", "iter_ms", "vs clean", "E[tx/msg]", "tx gbit/iter"});
  for (double loss : loss_rates) {
    system.loss_rate = loss;
    const SimResult result = loss == 0.0 ? clean
                                         : RunProtocolSimulation(model, system, cluster,
                                                                 engine);
    table.AddRow({TextTable::Num(loss, 4), TextTable::Num(result.iter_time_s * 1e3, 2),
                  TextTable::Num(result.iter_time_s / clean.iter_time_s, 3),
                  TextTable::Num(result.expected_transmissions, 3),
                  TextTable::Num(Mean(result.tx_gbits_per_iter), 4)});
  }
  std::ostringstream out;
  out << title << " (" << system.name << ", " << nodes << " nodes @ " << gbps
      << " GbE)\n"
      << table.ToString();
  return out.str();
}

CompressionAblationPoint RunCompressionAblation(PsCompressionPolicy policy,
                                                double topk_density, int iters) {
  DatasetConfig data;
  data.num_classes = 3;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 96;
  data.seed = 7;
  SyntheticDataset dataset(data);
  NetworkFactory factory = [] {
    Rng rng(13);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/24, /*hidden_layers=*/2,
                    /*classes=*/3, rng);
  };
  TrainerOptions options;
  options.num_workers = 2;
  options.num_servers = 2;
  options.batch_per_worker = 4;
  options.fc_policy = FcSyncPolicy::kDense;  // every layer on the PS path
  options.kv_pair_bytes = 1024;
  options.ps_compression = policy;
  options.topk_density = topk_density;
  options.compression_min_floats = 1;  // the tiny MLP sits under the gate
  PoseidonTrainer trainer(factory, options);

  trainer.bus().FlushEgress();
  trainer.bus().ResetTraffic();
  const std::vector<IterationStats> stats = trainer.Train(dataset, iters);
  trainer.bus().FlushEgress();

  CompressionAblationPoint point;
  for (int64_t bytes : trainer.bus().TxBytes()) {
    point.wire_bytes_per_iter += static_cast<double>(bytes) / iters;
  }
  point.first_loss = stats.front().mean_loss;
  point.final_loss = stats.back().mean_loss;
  return point;
}

}  // namespace poseidon

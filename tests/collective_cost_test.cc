// Property tests for the Table-1 extension (ring/tree allreduce rows) and
// the three-way HybComm chooser:
//  * the ring row's crossover against PS and SFB is monotone in P1 and in
//    the layer size M*N (the winner can flip at most once along each axis),
//  * BestSchemeExtended never returns a scheme whose modeled cost is
//    strictly higher than any admissible alternative,
//  * ResolveSchemes hands ResNet-style conv layers to a collective scheme
//    under a high-worker-count cluster (the acceptance scenario).
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/models/comm_cost.h"
#include "src/models/zoo.h"
#include "src/nn/builders.h"
#include "src/poseidon/runtime_scheme.h"

namespace poseidon {
namespace {

CommCostQuery MakeQuery(int64_t m, int64_t n, int64_t k, int p) {
  CommCostQuery q;
  q.m = m;
  q.n = n;
  q.batch_k = k;
  q.num_workers = p;
  q.num_servers = p;
  return q;
}

TEST(CollectiveCostTest, RingRowFormula) {
  const CommCostQuery q = MakeQuery(4096, 4096, 32, 8);
  EXPECT_DOUBLE_EQ(RingAllreduceWorkerFloats(q), 2.0 * 4096.0 * 4096.0 * 7.0 / 8.0);
}

TEST(CollectiveCostTest, TreeRowPiecewiseClosedForm) {
  const double mn = 1000.0 * 50.0;
  for (int p = 2; p <= 33; ++p) {
    const CommCostQuery q = MakeQuery(1000, 50, 16, p);
    const double want = p == 2 ? mn : (p <= 4 ? 2.0 * mn : 3.0 * mn);
    EXPECT_DOUBLE_EQ(TreeAllreduceWorkerFloats(q), want) << "P=" << p;
  }
}

TEST(CollectiveCostTest, RingAlwaysUndercutsColocatedPs) {
  // 2MN(P-1)/P < 2MN(2P-2)/P for every P >= 2. Note this is partly a basis
  // convention (see comm_cost.h): the PS row counts sends+receives as the
  // paper publishes it, the ring row per-direction volume, so the chooser
  // credits ring with the PS round trip. The property under test is that
  // the chooser's inputs behave as documented, not a physical 2x win.
  for (int p = 2; p <= 64; p *= 2) {
    for (int64_t mn_side : {8, 256, 4096}) {
      const CommCostQuery q = MakeQuery(mn_side, mn_side, 32, p);
      EXPECT_LT(RingAllreduceWorkerFloats(q), PsColocatedFloats(q))
          << "P=" << p << " side=" << mn_side;
    }
  }
}

// Crossover monotonicity in P1: at fixed layer and batch, once ring beats
// SFB it keeps beating it for every larger worker count.
TEST(CollectiveCostTest, RingVsSfbCrossoverMonotoneInWorkers) {
  for (int64_t side : {64, 512, 4096}) {
    for (int64_t k : {1, 32, 256}) {
      bool ring_won = false;
      int flips = 0;
      for (int p = 2; p <= 512; ++p) {
        const CommCostQuery q = MakeQuery(side, side, k, p);
        const bool ring_wins = RingAllreduceWorkerFloats(q) < SfbWorkerFloats(q);
        if (ring_wins != ring_won) {
          ++flips;
          ring_won = ring_wins;
        }
      }
      EXPECT_LE(flips, 1) << "side=" << side << " K=" << k;
      // And the flip, when it happens, is SFB -> ring (ring gains as P
      // grows: its cost saturates at 2MN while SFB's grows linearly in P).
      if (flips == 1) {
        EXPECT_TRUE(ring_won);
      }
    }
  }
}

// Crossover monotonicity in M*N: at fixed P and K and aspect ratio, scaling
// the layer up flips the winner at most once, from ring (small layers) to
// SFB (large layers, whose rank-K messages grow like sqrt(M*N)).
TEST(CollectiveCostTest, RingVsSfbCrossoverMonotoneInLayerSize) {
  for (int p : {2, 8, 32}) {
    for (int64_t k : {16, 128}) {
      bool sfb_won = false;
      int flips = 0;
      for (int64_t side = 4; side <= 1 << 16; side *= 2) {
        const CommCostQuery q = MakeQuery(side, side, k, p);
        const bool sfb_wins = SfbWorkerFloats(q) < RingAllreduceWorkerFloats(q);
        if (sfb_wins != sfb_won) {
          ++flips;
          sfb_won = sfb_wins;
        }
      }
      EXPECT_LE(flips, 1) << "P=" << p << " K=" << k;
      if (flips == 1) {
        EXPECT_TRUE(sfb_won) << "P=" << p << " K=" << k;
      }
    }
  }
}

// The chooser is optimal by construction; verify against brute force over a
// grid of FC and conv layers.
TEST(CollectiveCostTest, BestSchemeExtendedNeverDominated) {
  for (int p : {1, 2, 3, 5, 8, 16, 64}) {
    for (int64_t m : {16, 1000, 4096}) {
      for (int64_t n : {16, 1024, 25088}) {
        for (int64_t k : {8, 128}) {
          for (LayerType type : {LayerType::kFC, LayerType::kConv}) {
            LayerSpec layer;
            layer.name = "l";
            layer.type = type;
            layer.fc_m = type == LayerType::kFC ? m : 0;
            layer.fc_n = type == LayerType::kFC ? n : 0;
            layer.params = m * n;
            const CommScheme best = BestSchemeExtended(layer, k, p, p);
            if (p == 1) {
              EXPECT_EQ(best, CommScheme::kPS);
              continue;
            }
            CommCostQuery q = MakeQuery(type == LayerType::kFC ? m : m * n,
                                        type == LayerType::kFC ? n : 1, k, p);
            const double best_cost = SchemeWorkerFloats(best, q);
            for (CommScheme alt : {CommScheme::kPS, CommScheme::kSFB, CommScheme::kRing,
                                   CommScheme::kTree}) {
              if (alt == CommScheme::kSFB && type != LayerType::kFC) {
                continue;  // not admissible for conv
              }
              EXPECT_LE(best_cost, SchemeWorkerFloats(alt, q))
                  << CommSchemeName(best) << " dominated by " << CommSchemeName(alt)
                  << " at P=" << p << " m=" << m << " n=" << n << " k=" << k;
            }
          }
        }
      }
    }
  }
}

// Acceptance scenario: a ResNet-style model under a high-worker-count
// cluster must hand at least one layer to a collective scheme.
TEST(CollectiveCostTest, ResNetResolvesToCollectiveUnderManyWorkers) {
  Rng rng(7);
  std::unique_ptr<Network> net =
      BuildSmallResNet(/*channels=*/2, /*image_hw=*/8, /*classes=*/8, /*width=*/8,
                       /*blocks=*/2, rng);
  ClusterInfo cluster;
  cluster.num_workers = 32;
  cluster.num_servers = 32;
  cluster.batch_per_worker = 32;
  Coordinator coordinator(*net, cluster);
  const std::vector<RuntimeScheme> schemes =
      ResolveSchemes(coordinator, FcSyncPolicy::kHybridCollective);
  int collective_layers = 0;
  for (RuntimeScheme scheme : schemes) {
    if (scheme == RuntimeScheme::kRingAllreduce || scheme == RuntimeScheme::kTreeAllreduce) {
      ++collective_layers;
    }
  }
  EXPECT_GT(collective_layers, 0);
}

// Same property on the spec-level zoo model (the full ResNet-152): the
// three-way chooser must move its conv bulk off the PS at scale.
TEST(CollectiveCostTest, ResNet152SpecPrefersCollectiveConv) {
  const ModelSpec model = MakeResNet152();
  int collective_layers = 0;
  for (const LayerSpec& layer : model.layers) {
    const CommScheme best = BestSchemeExtended(layer, /*batch_k=*/32, /*num_workers=*/32,
                                               /*num_servers=*/32);
    if (best == CommScheme::kRing || best == CommScheme::kTree) {
      ++collective_layers;
    }
  }
  EXPECT_GT(collective_layers, 0);
}

// The compressed chooser is optimal on the byte basis by construction;
// verify against brute force over every admissible (scheme, codec) pair.
TEST(CollectiveCostTest, BestSchemeExtendedCompressedNeverDominated) {
  const double density = 0.05;
  for (int p : {2, 3, 8, 32}) {
    for (int64_t m : {16, 1000, 4096}) {
      for (int64_t n : {16, 1024, 25088}) {
        for (LayerType type : {LayerType::kFC, LayerType::kConv}) {
          LayerSpec layer;
          layer.name = "l";
          layer.type = type;
          layer.fc_m = type == LayerType::kFC ? m : 0;
          layer.fc_n = type == LayerType::kFC ? n : 0;
          layer.params = m * n;
          const SchemeChoice choice =
              BestSchemeExtendedCompressed(layer, /*batch_k=*/32, p, p,
                                           /*ps_shards=*/1, density);
          CommCostQuery q = MakeQuery(type == LayerType::kFC ? m : m * n,
                                      type == LayerType::kFC ? n : 1, 32, p);
          EXPECT_DOUBLE_EQ(choice.bytes,
                           SchemeWireBytes(choice.scheme, choice.compression, q, density));
          for (CommScheme alt : {CommScheme::kPS, CommScheme::kSFB, CommScheme::kRing,
                                 CommScheme::kTree}) {
            if (alt == CommScheme::kSFB && type != LayerType::kFC) {
              continue;  // not admissible for conv
            }
            for (GradCompression codec :
                 {GradCompression::kNone, GradCompression::kFp16, GradCompression::kInt8,
                  GradCompression::kTopK}) {
              if (codec != GradCompression::kNone &&
                  (alt != CommScheme::kPS || m * n < kCompressionMinFloats)) {
                continue;  // only the PS path compresses, above the size gate
              }
              EXPECT_LE(choice.bytes, SchemeWireBytes(alt, codec, q, density))
                  << CommSchemeName(choice.scheme) << "+"
                  << GradCompressionName(choice.compression) << " dominated by "
                  << CommSchemeName(alt) << "+" << GradCompressionName(codec)
                  << " at P=" << p << " m=" << m << " n=" << n;
            }
          }
        }
      }
    }
  }
}

// Acceptance scenario for the byte-basis chooser: on ResNet-152 at 32
// workers the big conv layers leave raw PS for a *compressed* PS row (the
// quantized round trip undercuts even ring allreduce), while layers under
// the size gate stay raw.
TEST(CollectiveCostTest, CompressedChooserMovesLargeConvOntoCompressedPs) {
  const ModelSpec model = MakeResNet152();
  int compressed_ps = 0;
  for (const LayerSpec& layer : model.layers) {
    const SchemeChoice choice = BestSchemeExtendedCompressed(
        layer, /*batch_k=*/32, /*num_workers=*/32, /*num_servers=*/32);
    if (choice.compression != GradCompression::kNone) {
      EXPECT_EQ(choice.scheme, CommScheme::kPS) << layer.name;
      EXPECT_GE(layer.params, kCompressionMinFloats) << layer.name;
      ++compressed_ps;
    }
  }
  EXPECT_GT(compressed_ps, 0)
      << "no layer class chose a compressed scheme on the byte basis";
}

TEST(CollectiveCostTest, CompressedChooserBreaksTiesTowardEarlierCandidate) {
  // Density chosen so top-k's round trip (8d + 2) exactly ties int8's
  // (1 + 4/256 + 2); the strict-improvement rule keeps the earlier int8.
  const double tie_density = (1.0 + 4.0 / 256.0) / 8.0;
  LayerSpec layer;
  layer.name = "conv";
  layer.type = LayerType::kConv;
  layer.params = int64_t{1} << 20;
  const SchemeChoice choice = BestSchemeExtendedCompressed(
      layer, /*batch_k=*/32, /*num_workers=*/32, /*num_servers=*/32,
      /*ps_shards=*/1, tie_density);
  EXPECT_EQ(choice.compression, GradCompression::kInt8);

  // And a single worker never compresses: there is no wire to save.
  const SchemeChoice solo = BestSchemeExtendedCompressed(
      layer, /*batch_k=*/32, /*num_workers=*/1, /*num_servers=*/1);
  EXPECT_EQ(solo.scheme, CommScheme::kPS);
  EXPECT_EQ(solo.compression, GradCompression::kNone);
}

}  // namespace
}  // namespace poseidon

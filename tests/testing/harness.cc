#include "tests/testing/harness.h"

#include <cstdlib>

#include "src/common/rng.h"

namespace poseidon {
namespace testing {

SyntheticDataset TinyDataset() {
  DatasetConfig data;
  data.num_classes = 3;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 96;
  data.noise_stddev = 0.4f;
  data.seed = 2024;
  return SyntheticDataset(data);
}

NetworkFactory TinyMlpFactory(int hidden_layers) {
  return [hidden_layers] {
    Rng rng(13);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/20, hidden_layers,
                    /*classes=*/3, rng);
  };
}

TrainerOptions SmallTrainerOptions(int workers, int servers, int shards, int staleness,
                                   FcSyncPolicy policy) {
  TrainerOptions options;
  options.num_workers = workers;
  options.num_servers = servers;
  options.shards_per_server = shards;
  options.staleness = staleness;
  options.batch_per_worker = 6;
  options.sgd = {.learning_rate = 0.05f, .momentum = 0.9f};
  options.fc_policy = policy;
  options.kv_pair_bytes = 256;
  options.syncer_threads = 2;
  return options;
}

ClusterInfo SmallClusterInfo(int workers, int servers, int batch, int64_t kv_bytes) {
  ClusterInfo cluster;
  cluster.num_workers = workers;
  cluster.num_servers = servers;
  cluster.batch_per_worker = batch;
  cluster.kv_pair_bytes = kv_bytes;
  return cluster;
}

std::vector<float> AllParams(Network& net) {
  std::vector<float> out;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      out.insert(out.end(), p.value->data(), p.value->data() + p.value->size());
    }
  }
  return out;
}

Trajectory CaptureTrajectory(const TrainerOptions& options, int iterations,
                             int hidden_layers) {
  const SyntheticDataset dataset = TinyDataset();
  PoseidonTrainer trainer(TinyMlpFactory(hidden_layers), options);
  Trajectory trajectory;
  for (const IterationStats& stats : trainer.Train(dataset, iterations)) {
    trajectory.mean_losses.push_back(stats.mean_loss);
  }
  trainer.bus().FlushEgress();
  trainer.bus().FlushFaults();
  trajectory.final_params = AllParams(trainer.worker_net(0));
  if (trainer.bus().fault_injector() != nullptr) {
    trajectory.faults = trainer.bus().fault_injector()->Counters();
  }
  return trajectory;
}

std::vector<uint64_t> ChaosSeeds(int count) {
  uint64_t base = 1;
  if (const char* env = std::getenv("POSEIDON_CHAOS_SEED")) {
    base = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
    if (base == 0) {
      base = 1;
    }
  }
  std::vector<uint64_t> seeds;
  seeds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Spread the bases out so consecutive CI shards never overlap seeds.
    seeds.push_back(base * 1000 + static_cast<uint64_t>(i));
  }
  return seeds;
}

std::string SeedTrace(uint64_t seed) {
  return "chaos seed " + std::to_string(seed) +
         " (reproduce with POSEIDON_CHAOS_SEED and this test filter)";
}

}  // namespace testing
}  // namespace poseidon

#include "src/planner/replanner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/logging.h"

namespace poseidon {

Replanner::Replanner(PlanRequest base, ReplanOptions options, PlanCache* cache)
    : base_(std::move(base)), options_(options), cache_(cache),
      reference_gbps_(base_.nic_gbps) {
  CHECK(cache_ != nullptr);
  CHECK_GT(options_.hysteresis, 0.0);
}

double Replanner::ObservedGbps(const ObservedLinkStats& window, double min_window_s) {
  if (window.window_s < min_window_s) {
    return 0.0;
  }
  std::unordered_map<int, int64_t> egress_bytes;
  for (const LinkStat& link : window.links) {
    egress_bytes[link.src] += link.bytes;
  }
  int64_t busiest = 0;
  for (const auto& [src, bytes] : egress_bytes) {
    busiest = std::max(busiest, bytes);
  }
  return static_cast<double>(busiest) * 8.0 / 1e9 / window.window_s;
}

ReplanDecision Replanner::Observe(const ObservedLinkStats& window) {
  ReplanDecision decision;
  decision.observed_gbps = ObservedGbps(window, options_.min_window_s);
  if (decision.observed_gbps < options_.min_gbps) {
    return decision;  // idle window: no evidence either way
  }
  if (reference_gbps_ <= 0.0) {
    // Byte-basis plan: the first live window calibrates the reference; the
    // plan itself made no bandwidth assumption, so there is nothing to
    // diverge from yet.
    reference_gbps_ = decision.observed_gbps;
    return decision;
  }
  decision.divergence = std::abs(decision.observed_gbps / reference_gbps_ - 1.0);
  if (decision.divergence <= options_.hysteresis) {
    return decision;
  }
  decision.replan = true;
  base_.nic_gbps = decision.observed_gbps;
  reference_gbps_ = decision.observed_gbps;
  decision.plan = cache_->GetOrPlan(base_);
  return decision;
}

}  // namespace poseidon

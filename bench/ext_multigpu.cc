// Extension experiment (paper §5.1 "Multi-GPU Settings"): scaling with
// multiple GPUs per node, where Poseidon aggregates gradients on a leader
// GPU over device-to-device copies before touching the NIC. Reproduces the
// reported AWS p2.8xlarge result: ~32x / ~28x speedup for GoogLeNet / VGG19
// on 4 nodes x 8 GPUs.
#include <cstdio>

#include "src/cluster/protocol_sim.h"
#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

void Run(const BenchArgs& args) {
  const int nodes = args.FirstNodeOr(4);
  const double gbps = args.FirstGbpsOr(40.0);
  std::printf("Multi-GPU extension: speedup vs single GPU (Poseidon, %.0f GbE)\n\n", gbps);
  TextTable table({"model", "nodes", "gpus/node", "total gpus", "speedup"});
  const std::vector<int> gpu_counts =
      args.fast ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  for (const char* name : {"googlenet", "vgg19"}) {
    const ModelSpec model = ModelByName(name).value();
    for (int gpus : gpu_counts) {
      ClusterSpec cluster;
      cluster.num_nodes = nodes;
      cluster.nic_gbps = gbps;
      cluster.gpus_per_node = gpus;
      SystemConfig system = PoseidonSystem();
      system.batch_egress = args.batch_egress;  // --batch-egress ablation knob
      const SimResult result =
          RunProtocolSimulation(model, system, cluster, Engine::kCaffe);
      table.AddRow({model.name, std::to_string(nodes), std::to_string(gpus),
                    std::to_string(nodes * gpus), TextTable::Num(result.speedup, 1)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

// Minimal command-line handling shared by the bench harnesses, so CI can run
// a fast smoke subset and users can point a sweep at their own cluster shape
// without recompiling:
//   --nodes=1,2,4   worker/node counts to sweep (default: the paper's)
//   --gbps=10,40    per-node NIC bandwidths to sweep
//   --shards=1,4    KV shard endpoints per server to sweep (PS-path benches)
//   --fast          smoke mode: truncate default sweeps (and iteration
//                   counts, where a bench honours it) to a quick subset
//   --full          paper-sized configuration (fig11's 32x32 CIFAR run)
//   --batch-egress  coalesce same-destination wire messages (ablates the
//                   transport's egress batcher in the supported benches)
//   --transport=inproc|tcp|unix  bus backend: socket choices add a live
//                   loopback bandwidth measurement (supported benches)
//   --fault-loss=0.001,0.01     per-message loss rates to sweep (fault-model
//                   benches; the modeled link layer retransmits)
//   --fault-detect-ms=50,250    failure-detection timeouts to sweep, ms
//   --fault-restart-ms=100,1000 worker restart/rehydrate costs to sweep, ms
//   --simd=auto|avx2|neon|scalar  SIMD dispatch level for the hot kernels
//                   (src/simd); same values as POSEIDON_SIMD, flag wins
// Telemetry flags (every bench; see docs/OBSERVABILITY.md):
//   --json-out=PATH      write the bench's BenchRecord result JSON to PATH
//   --trace-out=PATH     enable the span tracer and export Chrome/Perfetto
//                        trace JSON to PATH at exit
//   --metrics-json=PATH  export the process metrics registry to PATH at exit
// Explicit --nodes/--gbps/--shards always win over --fast truncation.
#ifndef POSEIDON_SRC_COMMON_CLI_H_
#define POSEIDON_SRC_COMMON_CLI_H_

#include <string>
#include <vector>

namespace poseidon {

class BenchRecord;

struct BenchArgs {
  std::vector<int> nodes;
  std::vector<double> gbps;
  std::vector<int> shards;
  bool fast = false;
  bool full = false;
  // --batch-egress: enable per-destination egress batching in the modeled
  // wire accounting (and the threaded runtime where a bench uses it), so
  // the batcher's message-count/framing effect can be ablated.
  bool batch_egress = false;
  // --transport=inproc|tcp|unix: which bus backend the bench exercises.
  // "inproc" (default) keeps the modeled/in-memory path; "tcp"/"unix" add a
  // live loopback socket-bandwidth measurement next to the modeled sweep
  // (see src/transport/socket_bench.h).
  std::string transport = "inproc";
  // Fault-model sweeps (bench_ext_faults; see docs/FAULT_TOLERANCE.md).
  std::vector<double> fault_loss;
  std::vector<double> fault_detect_ms;
  std::vector<double> fault_restart_ms;
  // --simd=auto|avx2|neon|scalar: pins the SIMD dispatch level before the
  // bench runs (ParseBenchArgs applies it immediately). Empty = leave the
  // POSEIDON_SIMD / CPUID-derived default in place.
  std::string simd;
  // --plan=paper|auto|fixed:<path.json>: how the planner-aware benches pick
  // their communication configuration. "paper" (default) keeps the bench's
  // hand-picked paper-mode settings; "auto" runs the CommPlanner's joint
  // search per sweep point (memoized in the plan cache); "fixed:<path>"
  // adopts a CommPlan JSON dump verbatim (CommPlan::LoadFromFile).
  std::string plan = "paper";
  // Telemetry sinks (empty = off); see InitBenchTelemetry/FinishBenchTelemetry.
  std::string json_out;
  std::string trace_out;
  std::string metrics_json;

  // The node counts to sweep: the explicit --nodes list, else `defaults`
  // (truncated to its first two entries under --fast).
  std::vector<int> NodesOr(std::vector<int> defaults) const;
  // Same for bandwidths; --fast keeps only the first default.
  std::vector<double> GbpsOr(std::vector<double> defaults) const;
  // Same for per-server shard counts; --fast keeps the first two defaults.
  std::vector<int> ShardsOr(std::vector<int> defaults) const;
  // Single-configuration variant of --shards (see FirstNodeOr).
  int FirstShardOr(int default_value) const;
  // Iteration-count knob for the threaded-runtime benches.
  int ItersOr(int normal, int fast_iters) const { return fast ? fast_iters : normal; }
  // --transport asked for a socket backend (tcp or unix).
  bool SocketTransportRequested() const { return transport != "inproc"; }
  bool UnixTransport() const { return transport == "unix"; }
  // --plan mode helpers (cli stays planner-independent; benches do the I/O).
  bool AutoPlan() const { return plan == "auto"; }
  bool FixedPlan() const { return plan.rfind("fixed:", 0) == 0; }
  // The <path.json> of --plan=fixed:<path.json> (empty otherwise).
  std::string FixedPlanPath() const {
    return FixedPlan() ? plan.substr(6) : std::string();
  }
  // For single-configuration benches that cannot sweep: the first entry,
  // with a stderr warning when a multi-value list was given (so a truncated
  // sweep never looks like it completed).
  int FirstNodeOr(int default_value) const;
  double FirstGbpsOr(double default_value) const;
  // Fault-model lists: the explicit flag values, else `defaults` (--fast
  // keeps the first two loss rates and the first detect/restart values).
  std::vector<double> FaultLossOr(std::vector<double> defaults) const;
  std::vector<double> FaultDetectMsOr(std::vector<double> defaults) const;
  std::vector<double> FaultRestartMsOr(std::vector<double> defaults) const;
};

// Parses argv; prints usage and exits on --help or an unknown argument.
BenchArgs ParseBenchArgs(int argc, char** argv);

// Call right after ParseBenchArgs: arms the span tracer when --trace-out was
// given (tracing stays compiled-in but off otherwise).
void InitBenchTelemetry(const BenchArgs& args);

// Call at the end of main: exports the trace (--trace-out), the process
// metrics registry (--metrics-json), and the bench's result record
// (--json-out, when the bench produced one). Failures are logged, not fatal
// — a bench run's numbers outrank its telemetry files.
void FinishBenchTelemetry(const BenchArgs& args, const BenchRecord* record = nullptr);

}  // namespace poseidon

#endif  // POSEIDON_SRC_COMMON_CLI_H_

// Tests for the common runtime: RNG, blocking queue, thread pool, tables,
// units.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/common/blocking_queue.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace poseidon {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float g = rng.NextGaussian();
    sum += g;
    sum_sq += static_cast<double>(g) * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(99);
  Rng child1 = parent.Split(1);
  Rng child2 = parent.Split(2);
  Rng child1_again = parent.Split(1);
  EXPECT_EQ(child1.Next(), child1_again.Next());
  EXPECT_NE(child1.Next(), child2.Next());
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(queue.Pop().value(), i);
  }
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> queue;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.Pop().has_value());
    woke = true;
  });
  queue.Close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(BlockingQueueTest, PushAfterCloseFails) {
  BlockingQueue<int> queue;
  queue.Close();
  EXPECT_FALSE(queue.Push(1));
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.TryPop().has_value());
  queue.Push(5);
  EXPECT_EQ(queue.TryPop().value(), 5);
}

TEST(BlockingQueueTest, DrainsRemainingAfterClose) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Close();
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, TasksCanScheduleTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&] {
    counter.fetch_add(1);
    pool.Schedule([&] { counter.fetch_add(10); });
  });
  // Wait twice: first for the outer, then the nested task is also counted by
  // pending bookkeeping, so one Wait covers both.
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"model", "speedup"});
  table.AddRow({"vgg19", TextTable::Num(15.5, 1)});
  table.AddRow({"googlenet", TextTable::Num(31.0, 1)});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("vgg19"), std::string::npos);
  EXPECT_NE(out.find("15.5"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, CsvFormat) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(40.0), 5e9);
  EXPECT_DOUBLE_EQ(BytesPerSecToGbps(5e9), 40.0);
  EXPECT_DOUBLE_EQ(BytesToGigabits(1.25e9), 10.0);
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(FormatBytes(2.0 * kMiB), "2.00 MiB");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatSeconds(0.0025), "2.50 ms");
}

}  // namespace
}  // namespace poseidon

/// \file
/// Per-layer syncer (paper §4.1, Table 2): each NN layer maps one-to-one to
/// a syncer that owns its parameter synchronization. The syncer exposes the
/// paper's three APIs:
///   Move    — staging between "GPU" and host memory plus SF/gradient
///             transformations and update application (in-process, the
///             staging is a flatten/scatter pass);
///   Send    — non-blocking push of the layer's updates, using the scheme
///             the coordinator selected;
///   Receive — blocks until fresh parameters (PS) or all peers' sufficient
///             factors (SFB) have arrived, then applies them.
///
/// On the PS path the layer's KV pairs are grouped by destination shard
/// endpoint at construction; Send coalesces each endpoint's pairs into one
/// kGradPush message (request coalescing), so a layer striped over E shard
/// endpoints costs E messages per iteration, not one per pair.
#ifndef POSEIDON_SRC_POSEIDON_SYNCER_H_
#define POSEIDON_SRC_POSEIDON_SYNCER_H_

#include <memory>
#include <vector>

#include "src/nn/layers.h"
#include "src/nn/sgd.h"
#include "src/poseidon/collective_syncer.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/flat_params.h"
#include "src/poseidon/runtime_scheme.h"
#include "src/tensor/onebit.h"
#include "src/transport/bus.h"
#include "src/transport/codec.h"
#include "src/transport/payload.h"

namespace poseidon {

class Syncer {
 public:
  /// `local_optimizer` applies SFB updates on the worker (shared across this
  /// worker's syncers; may be null for PS-only layers). `compression` selects
  /// the wire codec for the PS path (ResolveCompression); non-PS schemes
  /// ignore it. `topk_density` sizes the top-k selection per pair.
  Syncer(int worker, int layer_index, RuntimeScheme scheme, const Coordinator& coordinator,
         MessageBus* bus, Layer* layer, SgdOptimizer* local_optimizer,
         GradCompression compression = GradCompression::kNone,
         double topk_density = 0.01);

  Syncer(const Syncer&) = delete;
  Syncer& operator=(const Syncer&) = delete;

  RuntimeScheme scheme() const { return scheme_; }
  GradCompression compression() const { return compression_; }

  /// Move(GPU2CPU): stages gradients (or extracts sufficient factors) out of
  /// the layer into send buffers.
  void MoveOut();

  /// Non-blocking send of the staged updates for iteration `iter`.
  void Send(int64_t iter);

  /// Blocks until iteration `iter`'s synchronization completes, then
  /// Move(CPU2GPU): writes fresh parameters back (PS/1-bit) or reconstructs +
  /// applies the aggregate gradient locally (SFB). SF broadcasts from peers
  /// running one iteration ahead are deferred, not lost.
  void Receive(int64_t iter);

 private:
  void SendPs(int64_t iter);
  void SendSfb(int64_t iter);
  void SendOneBit(int64_t iter);
  void ReceivePs();
  void ReceiveSfb(int64_t iter);
  void ReceiveOneBit();

  const int worker_;
  const int layer_index_;
  const RuntimeScheme scheme_;
  const GradCompression compression_;
  const double topk_density_;
  const Coordinator& coordinator_;
  MessageBus* bus_;
  Layer* layer_;
  FullyConnectedLayer* fc_;  // non-null for SFB/1-bit layers
  SgdOptimizer* local_optimizer_;

  FlatParamView view_;
  std::shared_ptr<MessageBus::Mailbox> mailbox_;
  /// One coalesced push per destination shard endpoint, fixed at
  /// construction.
  struct ShardDest {
    Address address;
    std::vector<KvPairInfo> pairs;
  };
  std::vector<ShardDest> pairs_by_shard_;
  int total_pairs_ = 0;

  /// PS staging slab: MoveOut gathers the layer's gradient straight into it
  /// and Send ships per-pair views, zero-copy. Reused across iterations
  /// while this syncer is the sole owner; reallocated when a receiver still
  /// holds views (possible under SSP staleness > 0).
  Payload staged_;
  /// Compressed-PS state: the layer-sized error-feedback residual (zeroed at
  /// construction, carried across iterations), the quantizer input scratch
  /// (gradient + residual), and the per-pair encoded frames of the most
  /// recent Send — kept alive here because shards buffer views into them
  /// until the clock's aggregate is applied.
  Payload residual_;
  Payload quant_;
  std::vector<Payload> push_frames_;
  std::unique_ptr<CollectiveSyncer> collective_;  // ring/tree path
  Payload sf_frame_;                              // SFB frame (factors + bias)
  Payload onebit_frame_;                          // 1-bit frame (signs + levels + bias)
  OneBitQuantizer quantizer_;                     // persistent residual
  std::vector<Message> deferred_;                 // SFs from future iterations
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_SYNCER_H_

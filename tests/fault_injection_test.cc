// Unit tests for the transport fault fabric: deterministic fault decisions,
// the sequencer/reorder correctness layer, and bus-level delivery under
// drops, duplicates, delays, partitions and endpoint death — on both
// backends. The in-process fabric (EnableFaultInjection) and the socket
// transport's record-level shim inject the same weather through different
// machinery; the SocketBackend tests at the bottom re-prove the dedup /
// in-order / retransmit-on-drop properties over real loopback sockets.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/transport/bus.h"
#include "src/transport/fault_injector.h"
#include "src/transport/sequencer.h"
#include "tests/testing/harness.h"
#include "tests/testing/socket_pair.h"

namespace poseidon {
namespace {

Message MakeMessage(int src, int dst, int64_t seq = -1, int layer = 0) {
  Message m;
  m.type = MessageType::kGradPush;
  m.from = Address{src, kSyncerPortBase};
  m.to = Address{dst, kServerPort};
  m.layer = layer;
  m.worker = src;
  m.iter = 0;
  m.seq = seq;
  Payload payload = Payload::Allocate(4);
  m.chunks.push_back({0, payload.View()});
  return m;
}

TEST(FaultInjectorTest, DecisionsAreDeterministicInSeedStreamSeqAttempt) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_prob = 0.3;
  plan.duplicate_prob = 0.3;
  plan.delay_prob = 0.3;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int64_t seq = 0; seq < 200; ++seq) {
    Message m = MakeMessage(0, 1, seq);
    for (int attempt = 0; attempt < 3; ++attempt) {
      const FaultDecision da = a.Decide(m, attempt);
      const FaultDecision db = b.Decide(m, attempt);
      EXPECT_EQ(da.drop, db.drop);
      EXPECT_EQ(da.duplicate, db.duplicate);
      EXPECT_EQ(da.delay_us, db.delay_us);
    }
  }
  // A different seed must give a different fault pattern.
  plan.seed = 43;
  FaultInjector c(plan);
  int differing = 0;
  for (int64_t seq = 0; seq < 200; ++seq) {
    Message m = MakeMessage(0, 1, seq);
    const FaultDecision da = a.Decide(m, 0);
    const FaultDecision dc = c.Decide(m, 0);
    if (da.drop != dc.drop || da.duplicate != dc.duplicate ||
        da.delay_us != dc.delay_us) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, ZeroProbabilitiesInjectNothing) {
  FaultPlan plan;  // all probabilities zero
  FaultInjector injector(plan);
  for (int64_t seq = 0; seq < 50; ++seq) {
    const FaultDecision d = injector.Decide(MakeMessage(0, 1, seq), 0);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.delay_us, 0);
  }
}

TEST(FaultInjectorTest, RetransmitCapForcesDeliveryEventually) {
  FaultPlan plan;
  plan.drop_prob = 1.0;  // every roll says drop...
  plan.max_transmissions = 4;
  FaultInjector injector(plan);
  const Message m = MakeMessage(0, 1, 7);
  EXPECT_TRUE(injector.Decide(m, 0).drop);
  // ...but the cap forces attempt max_transmissions - 1 through.
  EXPECT_FALSE(injector.Decide(m, plan.max_transmissions - 1).drop);
}

TEST(ReorderBufferTest, RestoresSequenceOrderAndDropsDuplicates) {
  FaultCounters counters;
  ReorderBuffer buffer(&counters);
  std::vector<Message> out;

  buffer.Admit(MakeMessage(0, 1, /*seq=*/1), &out);
  EXPECT_TRUE(out.empty());  // gap: seq 0 missing
  EXPECT_EQ(buffer.buffered(), 1);

  buffer.Admit(MakeMessage(0, 1, /*seq=*/1), &out);  // duplicate of parked
  EXPECT_TRUE(out.empty());

  buffer.Admit(MakeMessage(0, 1, /*seq=*/0), &out);  // fills the gap
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 0);
  EXPECT_EQ(out[1].seq, 1);
  EXPECT_EQ(buffer.buffered(), 0);

  out.clear();
  buffer.Admit(MakeMessage(0, 1, /*seq=*/0), &out);  // duplicate of released
  EXPECT_TRUE(out.empty());

  const FaultCountersSnapshot snap = counters.Snapshot();
  EXPECT_EQ(snap.deduped, 2);
  EXPECT_EQ(snap.reordered, 1);
}

TEST(ReorderBufferTest, StreamsAreIndependent) {
  FaultCounters counters;
  ReorderBuffer buffer(&counters);
  std::vector<Message> out;
  // Stream (0 -> 1) is gapped; stream (2 -> 1) must still flow.
  buffer.Admit(MakeMessage(0, 1, /*seq=*/5), &out);
  EXPECT_TRUE(out.empty());
  buffer.Admit(MakeMessage(2, 1, /*seq=*/0), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from.node, 2);
}

TEST(ReorderBufferTest, UnsequencedMessagesBypass) {
  FaultCounters counters;
  ReorderBuffer buffer(&counters);
  std::vector<Message> out;
  buffer.Admit(MakeMessage(0, 1, /*seq=*/-1), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(StreamSequencerTest, PerStreamMonotoneFromZero) {
  StreamSequencer sequencer;
  const Address a{0, kSyncerPortBase};
  const Address b{1, kServerPort};
  const Address c{1, kServerPort + 1};
  EXPECT_EQ(sequencer.NextSeq(a, b), 0);
  EXPECT_EQ(sequencer.NextSeq(a, b), 1);
  EXPECT_EQ(sequencer.NextSeq(a, c), 0);  // distinct stream
  EXPECT_EQ(sequencer.NextSeq(a, b), 2);
}

// ------------------------------------------------------------ bus-level ----

TEST(FaultyBusTest, DuplicatesAreInjectedAndDeduplicated) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  FaultPlan plan;
  plan.seed = 5;
  plan.duplicate_prob = 1.0;
  bus.EnableFaultInjection(plan);

  const int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(bus.Send(MakeMessage(0, 1, /*seq=*/-1, /*layer=*/i)).ok());
  }
  bus.FlushFaults();
  const FaultCountersSnapshot snap = bus.fault_injector()->Counters();
  EXPECT_EQ(snap.duplicates, kMessages);
  EXPECT_EQ(snap.deduped, kMessages);
  // Exactly one copy of each, in send order.
  for (int i = 0; i < kMessages; ++i) {
    auto received = mailbox->TryPop();
    ASSERT_TRUE(received.has_value()) << "message " << i << " missing";
    EXPECT_EQ(received->layer, i);
    EXPECT_EQ(received->seq, i);  // the bus sequenced the stream
  }
  EXPECT_FALSE(mailbox->TryPop().has_value()) << "a duplicate leaked through";
}

TEST(FaultyBusTest, DropsAreRetransmittedUntilDelivered) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 0.5;
  plan.retransmit_timeout_us = 50;
  bus.EnableFaultInjection(plan);

  const int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(bus.Send(MakeMessage(0, 1, /*seq=*/-1, /*layer=*/i)).ok());
  }
  bus.FlushFaults();
  const FaultCountersSnapshot snap = bus.fault_injector()->Counters();
  EXPECT_GT(snap.drops, 0);
  EXPECT_EQ(snap.retransmits, snap.drops);  // every loss was retried
  for (int i = 0; i < kMessages; ++i) {
    auto received = mailbox->TryPop();
    ASSERT_TRUE(received.has_value()) << "message " << i << " lost for good";
    EXPECT_EQ(received->layer, i) << "stream order broken";
  }
}

TEST(FaultyBusTest, DelayedStreamStillArrivesInOrder) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  FaultPlan plan;
  plan.seed = 23;
  plan.delay_prob = 0.7;
  plan.delay_min_us = 10;
  plan.delay_max_us = 2000;
  bus.EnableFaultInjection(plan);

  const int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(bus.Send(MakeMessage(0, 1, /*seq=*/-1, /*layer=*/i)).ok());
  }
  bus.FlushFaults();
  EXPECT_GT(bus.fault_injector()->Counters().delays, 0);
  for (int i = 0; i < kMessages; ++i) {
    auto received = mailbox->TryPop();
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(received->layer, i) << "per-stream FIFO violated";
  }
}

TEST(FaultyBusTest, PartitionParksTrafficAndHealReplays) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  FaultPlan plan;  // no probabilistic faults; partitions only
  bus.EnableFaultInjection(plan);

  bus.Partition(0, 1);
  EXPECT_TRUE(bus.Send(MakeMessage(0, 1)).ok());
  EXPECT_TRUE(bus.Send(MakeMessage(0, 1)).ok());
  bus.FlushFaults();
  EXPECT_FALSE(mailbox->TryPop().has_value()) << "partitioned traffic leaked";
  EXPECT_EQ(bus.fault_injector()->Counters().partition_holds, 2);

  bus.HealPartitions();
  bus.FlushFaults();
  EXPECT_TRUE(mailbox->TryPop().has_value());
  EXPECT_TRUE(mailbox->TryPop().has_value());
}

TEST(FaultyBusTest, ShutdownBypassesTheFaultFabric) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_prob = 0.9;
  plan.delay_prob = 0.9;
  plan.delay_max_us = 1000000;
  bus.EnableFaultInjection(plan);
  Message shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.from = Address{0, kSyncerPortBase};
  shutdown.to = Address{1, kServerPort};
  EXPECT_TRUE(bus.Send(std::move(shutdown)).ok());
  // Inline delivery: no flush needed, no weather applied.
  auto received = mailbox->TryPop();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, MessageType::kShutdown);
}

// ------------------------------------------------------- socket backend ----
// The same properties as the FaultyBusTest suite, but injected by the
// socket transport's record-level shim and repaired by the receiving bus's
// wire reorder buffer. Each test pops every message (blocking: delivery is
// eventual), then uses a stream barrier before reading counters so late
// duplicates and retransmissions have definitely been processed.

TEST(SocketBackendFaultTest, DuplicatesAreInjectedAndDeduplicated) {
  FaultPlan shim;
  shim.seed = 5;
  shim.duplicate_prob = 1.0;
  testing::SocketBusPair pair(/*unix_sockets=*/false, shim);
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});

  const int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(pair.bus(0).Send(MakeMessage(0, 1, /*seq=*/-1, /*layer=*/i)).ok());
  }
  for (int i = 0; i < kMessages; ++i) {
    std::optional<Message> received = mailbox->Pop();
    ASSERT_TRUE(received.has_value()) << "message " << i << " missing";
    EXPECT_EQ(received->layer, i);
    EXPECT_EQ(received->seq, i);  // the bus sequenced the wire stream
  }
  pair.Barrier(0, 1);
  const FaultCountersSnapshot shim_counters = pair.transport(0).ShimCounters();
  EXPECT_EQ(shim_counters.duplicates, kMessages);
  EXPECT_EQ(pair.bus(1).WireCounters().deduped, kMessages);
  EXPECT_FALSE(mailbox->TryPop().has_value()) << "a duplicate leaked through";
}

TEST(SocketBackendFaultTest, DropsAreRetransmittedUntilDelivered) {
  FaultPlan shim;
  shim.seed = 11;
  shim.drop_prob = 0.5;
  shim.retransmit_timeout_us = 50;
  testing::SocketBusPair pair(/*unix_sockets=*/false, shim);
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});

  const int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(pair.bus(0).Send(MakeMessage(0, 1, /*seq=*/-1, /*layer=*/i)).ok());
  }
  for (int i = 0; i < kMessages; ++i) {
    std::optional<Message> received = mailbox->Pop();
    ASSERT_TRUE(received.has_value()) << "message " << i << " lost for good";
    EXPECT_EQ(received->layer, i) << "stream order broken";
  }
  pair.Barrier(0, 1);
  const FaultCountersSnapshot shim_counters = pair.transport(0).ShimCounters();
  EXPECT_GT(shim_counters.drops, 0);
  EXPECT_GE(shim_counters.retransmits, shim_counters.drops);
}

TEST(SocketBackendFaultTest, DelayedStreamStillArrivesInOrder) {
  FaultPlan shim;
  shim.seed = 23;
  shim.delay_prob = 0.7;
  shim.delay_min_us = 10;
  shim.delay_max_us = 2000;
  testing::SocketBusPair pair(/*unix_sockets=*/false, shim);
  auto mailbox = pair.bus(1).Register(Address{1, kServerPort});

  const int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(pair.bus(0).Send(MakeMessage(0, 1, /*seq=*/-1, /*layer=*/i)).ok());
  }
  for (int i = 0; i < kMessages; ++i) {
    std::optional<Message> received = mailbox->Pop();
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(received->layer, i) << "per-stream FIFO violated";
  }
  pair.Barrier(0, 1);
  EXPECT_GT(pair.transport(0).ShimCounters().delays, 0);
}

TEST(FaultyBusTest, CloseEndpointsWakesReceiversAndAllowsReRegistration) {
  MessageBus bus(2);
  auto old_mailbox = bus.Register(Address{1, kSyncerPortBase + 3});
  bus.CloseEndpoints(1, kSyncerPortBase);
  EXPECT_FALSE(old_mailbox->Pop().has_value()) << "closed mailbox should drain";
  auto fresh = bus.Register(Address{1, kSyncerPortBase + 3});
  EXPECT_NE(fresh.get(), old_mailbox.get()) << "restart must get a fresh mailbox";
  // Shard-port mailboxes (below kSyncerPortBase) must survive a worker-side
  // close: the colocated server process did not die.
  auto shard = bus.Register(Address{1, kServerPort});
  bus.CloseEndpoints(1, kSyncerPortBase);
  EXPECT_FALSE(shard->closed());
  // ... and so must endpoints above the bound (the coordinator's monitor
  // mailbox when the dead worker shares its node).
  auto monitor = bus.Register(Address{1, kMonitorPort});
  bus.CloseEndpoints(1, kSyncerPortBase, kMonitorPort);
  EXPECT_FALSE(monitor->closed());
}

}  // namespace
}  // namespace poseidon

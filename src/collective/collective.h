/// \file
/// Collective-communication primitives over the in-process MessageBus: ring
/// allreduce (chunked reduce-scatter + all-gather, the bandwidth-optimal
/// scheme that moves 2*T*(P-1)/P floats per node) and binary-tree
/// reduce-broadcast (2*ceil(log2 P) latency hops, at most 6*T floats at the
/// busiest internal node).
///
/// One CollectiveComm object is one rank's endpoint in one group, identified
/// by a tag (the runtime uses the layer index, mirroring the per-layer syncer
/// mailboxes). The protocol is split into a non-blocking Start — which
/// injects this rank's first message, preserving the paper's wait-free Send
/// semantics — and a blocking Finish that runs the remaining hops. On return
/// from Finish every rank holds the bitwise-identical elementwise sum: ring
/// chunks are folded in ring order starting at the chunk's index, tree
/// subtrees in child order, so no rank-dependent association order exists.
///
/// Ordering relies only on per-sender FIFO delivery (which MessageBus
/// mailboxes provide): every ring message a rank consumes comes from its
/// predecessor, and tree children cannot start iteration t+1 before their
/// parent broadcast for t, so messages are consumed strictly in protocol
/// order. Sequence/step numbers are CHECKed on every hop.
#ifndef POSEIDON_SRC_COLLECTIVE_COLLECTIVE_H_
#define POSEIDON_SRC_COLLECTIVE_COLLECTIVE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/collective/topology.h"
#include "src/transport/bus.h"

namespace poseidon {

enum class CollectiveAlgo {
  kRing,  // chunked reduce-scatter + all-gather around the rank ring
  kTree,  // reduce up the binary tree, broadcast the root sum back down
};

const char* CollectiveAlgoName(CollectiveAlgo algo);

/// Tree protocol phases carried in Message::step.
inline constexpr int kTreeReduceStep = 0;
inline constexpr int kTreeBroadcastStep = 1;

class CollectiveComm {
 public:
  /// Registers this rank's mailbox at {rank, kCollectivePortBase + tag}.
  CollectiveComm(MessageBus* bus, int rank, int world, int tag);

  CollectiveComm(const CollectiveComm&) = delete;
  CollectiveComm& operator=(const CollectiveComm&) = delete;

  /// Non-blocking kickoff of one allreduce over *data (kept by the caller,
  /// unmodified until Finish): sends this rank's first ring chunk, or a
  /// leaf's subtree contribution. `seq` tags the operation (the runtime uses
  /// the iteration number) and is validated on every received hop.
  void Start(CollectiveAlgo algo, int64_t seq, std::vector<float>* data);

  /// Blocks until the allreduce finishes; *data then holds the elementwise
  /// sum across all ranks, bitwise identical on every rank.
  void Finish();

  /// Blocking convenience: Start + Finish.
  void Allreduce(CollectiveAlgo algo, int64_t seq, std::vector<float>* data);

  int rank() const { return rank_; }
  int world() const { return world_; }

  /// Per-hop accounting (this rank's egress), for traffic tests.
  int64_t messages_sent() const { return messages_sent_; }
  int64_t floats_sent() const { return floats_sent_; }

 private:
  void SendHop(int to, int step, int64_t offset, const float* data, int64_t len);
  /// Pops the next message, checking type, sequence and sender.
  Message NextMessage(int expected_step, int expected_sender);
  void FinishRing();
  void FinishTree();

  MessageBus* bus_;
  const int rank_;
  const int world_;
  const int tag_;
  std::shared_ptr<MessageBus::Mailbox> mailbox_;

  /// In-flight operation state between Start and Finish.
  bool pending_ = false;
  CollectiveAlgo algo_ = CollectiveAlgo::kRing;
  int64_t seq_ = -1;
  std::vector<float>* data_ = nullptr;

  int64_t messages_sent_ = 0;
  int64_t floats_sent_ = 0;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_COLLECTIVE_COLLECTIVE_H_

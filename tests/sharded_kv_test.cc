// Sharded KV-store invariants: the coordinator's partition plan must give
// every key exactly one owning shard endpoint, striping must stay balanced,
// and — the acceptance bar for the sharding refactor — a layer striped over
// any number of shard endpoints must reassemble bitwise: the number of
// shards is a pure serving-topology knob with zero effect on the training
// trajectory under BSP.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/builders.h"
#include "src/poseidon/coordinator.h"
#include "src/poseidon/runtime_scheme.h"
#include "src/poseidon/trainer.h"

namespace poseidon {
namespace {

ClusterInfo ShardedCluster(int workers, int servers, int shards, int64_t kv_bytes = 1024) {
  ClusterInfo cluster;
  cluster.num_workers = workers;
  cluster.num_servers = servers;
  cluster.shards_per_server = shards;
  cluster.batch_per_worker = 8;
  cluster.kv_pair_bytes = kv_bytes;
  return cluster;
}

TEST(ShardedPartitionTest, EveryKeyOwnedByExactlyOneShard) {
  Rng rng(21);
  auto net = BuildCifarQuick(3, 16, 10, rng);
  const int servers = 3;
  const int shards = 4;
  Coordinator coordinator(*net, ShardedCluster(2, servers, shards, /*kv_bytes=*/4096));
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    const LayerInfo& info = coordinator.layer(l);
    // Contiguous full coverage of the flat parameter space...
    int64_t expected_offset = 0;
    for (const KvPairInfo& pair : info.pairs) {
      EXPECT_EQ(pair.offset, expected_offset);
      EXPECT_GT(pair.length, 0);
      EXPECT_GE(pair.server, 0);
      EXPECT_LT(pair.server, servers);
      EXPECT_GE(pair.shard, 0);
      EXPECT_LT(pair.shard, shards);
      expected_offset += pair.length;
    }
    EXPECT_EQ(expected_offset, info.total_floats);
    // ...and the per-endpoint views partition it: each pair shows up in
    // exactly one PairsOnShard answer.
    size_t across_shards = 0;
    for (int s = 0; s < servers; ++s) {
      size_t on_server = 0;
      for (int h = 0; h < shards; ++h) {
        on_server += coordinator.PairsOnShard(l, s, h).size();
      }
      EXPECT_EQ(on_server, coordinator.PairsOnServer(l, s).size());
      across_shards += on_server;
    }
    EXPECT_EQ(across_shards, info.pairs.size());
  }
}

TEST(ShardedPartitionTest, SmallLayersStillSpreadAcrossServers) {
  // The endpoint cursor is server-major: consecutive pairs alternate server
  // nodes before reusing a node's next shard, so even a layer with fewer
  // pairs than total endpoints spreads its push traffic over every server
  // NIC it can reach (a shard-major cursor would pile such a layer onto one
  // node while the others idle).
  Rng rng(26);
  auto net = BuildCifarQuick(3, 16, 10, rng);
  const int servers = 4;
  Coordinator coordinator(*net, ShardedCluster(2, servers, /*shards=*/4,
                                               /*kv_bytes=*/4096));
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    const LayerInfo& info = coordinator.layer(l);
    std::vector<bool> seen(static_cast<size_t>(servers), false);
    int distinct = 0;
    for (const KvPairInfo& pair : info.pairs) {
      if (!seen[static_cast<size_t>(pair.server)]) {
        seen[static_cast<size_t>(pair.server)] = true;
        ++distinct;
      }
    }
    const int want = static_cast<int>(
        std::min<size_t>(info.pairs.size(), static_cast<size_t>(servers)));
    EXPECT_EQ(distinct, want) << "layer " << l << " (" << info.pairs.size()
                              << " pairs) does not alternate servers";
  }
}

TEST(ShardedPartitionTest, StripingBalancesShardEndpoints) {
  Rng rng(22);
  auto net = BuildMlp(/*input_dim=*/2048, /*hidden_dim=*/512, /*hidden_layers=*/1,
                      /*classes=*/10, rng);
  const int servers = 2;
  const int shards = 4;
  Coordinator coordinator(*net, ShardedCluster(4, servers, shards, /*kv_bytes=*/8192));
  const std::vector<int64_t> load = coordinator.ShardLoadFloats();
  ASSERT_EQ(load.size(), static_cast<size_t>(servers * shards));
  const int64_t max = *std::max_element(load.begin(), load.end());
  const int64_t min = *std::min_element(load.begin(), load.end());
  EXPECT_GT(min, 0);
  EXPECT_LT(static_cast<double>(max) / static_cast<double>(min), 1.2);
  // Shard loads must sum to the server loads they subdivide.
  const std::vector<int64_t> server_load = coordinator.ServerLoadFloats();
  for (int s = 0; s < servers; ++s) {
    int64_t sum = 0;
    for (int h = 0; h < shards; ++h) {
      sum += load[static_cast<size_t>(s * shards + h)];
    }
    EXPECT_EQ(sum, server_load[static_cast<size_t>(s)]);
  }
}

TEST(ShardedPartitionTest, SingleShardReproducesSeedPartition) {
  // With one shard per server the partition must be the seed's round-robin
  // over servers: pair i of the global sequence lands on server i mod S.
  Rng rng(23);
  auto net = BuildMlp(256, 64, 1, 4, rng);
  Coordinator coordinator(*net, ShardedCluster(2, 3, 1, /*kv_bytes=*/512));
  int global = 0;
  for (int l = 0; l < coordinator.num_layers(); ++l) {
    for (const KvPairInfo& pair : coordinator.layer(l).pairs) {
      EXPECT_EQ(pair.server, global % 3);
      EXPECT_EQ(pair.shard, 0);
      ++global;
    }
  }
}

std::vector<float> AllParams(Network& net) {
  std::vector<float> out;
  for (auto& layer_params : net.LayerParams()) {
    for (ParamBlock& p : layer_params) {
      out.insert(out.end(), p.value->data(), p.value->data() + p.value->size());
    }
  }
  return out;
}

std::vector<float> TrainWithShards(int shards, FcSyncPolicy policy, int staleness = 0) {
  DatasetConfig data;
  data.num_classes = 3;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 96;
  data.noise_stddev = 0.4f;
  data.seed = 2024;
  SyntheticDataset dataset(data);

  NetworkFactory factory = [] {
    Rng rng(13);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/20, /*hidden_layers=*/2,
                    /*classes=*/3, rng);
  };
  TrainerOptions options;
  options.num_workers = 3;
  options.num_servers = 2;
  options.shards_per_server = shards;
  options.staleness = staleness;
  options.batch_per_worker = 6;
  options.sgd = {.learning_rate = 0.05f, .momentum = 0.9f};
  options.fc_policy = policy;
  options.kv_pair_bytes = 256;  // many pairs, so layers really stripe
  options.syncer_threads = 2;

  PoseidonTrainer trainer(factory, options);
  const auto stats = trainer.Train(dataset, 12);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss) << "no learning";
  for (int w = 1; w < options.num_workers; ++w) {
    EXPECT_EQ(AllParams(trainer.worker_net(0)), AllParams(trainer.worker_net(w)))
        << "replica " << w << " diverged";
  }
  return AllParams(trainer.worker_net(0));
}

TEST(ShardedKvStoreTest, StripedLayersReassembleBitwise) {
  // The acceptance criterion: under BSP (s = 0) the shard count must not
  // perturb a single bit of the trajectory — 1 shard (the seed's PS path),
  // 2 and 4 shards must produce identical parameters.
  const std::vector<float> one = TrainWithShards(1, FcSyncPolicy::kDense);
  EXPECT_EQ(one, TrainWithShards(2, FcSyncPolicy::kDense));
  EXPECT_EQ(one, TrainWithShards(4, FcSyncPolicy::kDense));
}

TEST(ShardedKvStoreTest, OneBitLayersFollowTheirOwnerShard) {
  // 1-bit layers route whole to one owner endpoint; sharding must relocate
  // them without corrupting training (the trajectory is shard-invariant
  // there too: a single endpoint applies the same worker-ordered math).
  const std::vector<float> one = TrainWithShards(1, FcSyncPolicy::kOneBit);
  EXPECT_EQ(one, TrainWithShards(3, FcSyncPolicy::kOneBit));
}

TEST(ShardedKvStoreTest, AutoShardCountFollowsCostModel) {
  Rng rng(24);
  auto net = BuildMlp(64, 20, 2, 3, rng);
  ClusterInfo cluster = ShardedCluster(3, 2, 1);
  Coordinator coordinator(*net, cluster);
  const SyncPlan plan =
      ResolveSchemesSharded(coordinator, FcSyncPolicy::kDense, kMaxAutoShards);
  ASSERT_GE(plan.ps_shards, 1);
  ASSERT_LE(plan.ps_shards, kMaxAutoShards);
  // P1 = 3 > 2: the sharded colocated row is strictly decreasing in the
  // shard count, so the recommendation saturates at the cap.
  EXPECT_EQ(plan.ps_shards, kMaxAutoShards);

  // shards_per_server = 0 asks the trainer to adopt exactly that plan.
  NetworkFactory factory = [] {
    Rng rng_inner(13);
    return BuildMlp(64, 20, 2, 3, rng_inner);
  };
  TrainerOptions options;
  options.num_workers = 3;
  options.num_servers = 2;
  options.shards_per_server = 0;  // auto
  options.batch_per_worker = 8;
  options.fc_policy = FcSyncPolicy::kDense;
  PoseidonTrainer trainer(factory, options);
  EXPECT_EQ(trainer.shards_per_server(), plan.ps_shards);
}

TEST(ShardedKvStoreTest, TwoWorkersNeverAutoShard) {
  // P1 = 2: each endpoint already serves exactly one remote worker's worth
  // of traffic; the row is flat in S and auto-sharding must stay at 1.
  Rng rng(25);
  auto net = BuildMlp(64, 20, 1, 3, rng);
  Coordinator coordinator(*net, ShardedCluster(2, 2, 1));
  const SyncPlan plan =
      ResolveSchemesSharded(coordinator, FcSyncPolicy::kDense, kMaxAutoShards);
  EXPECT_EQ(plan.ps_shards, 1);
}

}  // namespace
}  // namespace poseidon

// Property tests for the network fabric under randomized traffic: byte
// conservation, delivery-time bounds, and pipelining behaviour across
// message sizes and node counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"

namespace poseidon {
namespace {

struct TrafficParam {
  int nodes;
  int messages;
  uint64_t seed;
};

class FabricTrafficTest : public ::testing::TestWithParam<TrafficParam> {};

TEST_P(FabricTrafficTest, ConservationAndBounds) {
  const TrafficParam param = GetParam();
  Simulator sim;
  FabricConfig config;
  config.egress_bytes_per_sec = GbpsToBytesPerSec(10.0);
  config.ingress_bytes_per_sec = GbpsToBytesPerSec(10.0);
  config.latency_s = 20e-6;
  NetworkFabric fabric(&sim, param.nodes, config);

  Rng rng(param.seed);
  std::vector<double> sent_per_node(static_cast<size_t>(param.nodes), 0.0);
  std::vector<double> recv_per_node(static_cast<size_t>(param.nodes), 0.0);
  double total_bytes = 0.0;
  int delivered = 0;
  std::vector<double> delivery_times;
  delivery_times.reserve(static_cast<size_t>(param.messages));

  for (int m = 0; m < param.messages; ++m) {
    const int src = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(param.nodes)));
    int dst = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(param.nodes)));
    if (dst == src) {
      dst = (dst + 1) % param.nodes;
    }
    const double bytes = 1000.0 + static_cast<double>(rng.NextBounded(8 * 1024 * 1024));
    sent_per_node[static_cast<size_t>(src)] += bytes;
    recv_per_node[static_cast<size_t>(dst)] += bytes;
    total_bytes += bytes;
    fabric.Send(src, dst, bytes, [&, m] {
      ++delivered;
      delivery_times.push_back(sim.Now());
    });
  }
  sim.Run();

  // Every message delivered exactly once.
  EXPECT_EQ(delivered, param.messages);
  // Stats agree with what we injected, per node.
  for (int n = 0; n < param.nodes; ++n) {
    EXPECT_DOUBLE_EQ(fabric.stats().tx_bytes[static_cast<size_t>(n)],
                     sent_per_node[static_cast<size_t>(n)]);
    EXPECT_DOUBLE_EQ(fabric.stats().rx_bytes[static_cast<size_t>(n)],
                     recv_per_node[static_cast<size_t>(n)]);
  }
  // No delivery can beat the physical lower bound of the busiest link, and
  // the whole exchange cannot outrun aggregate bandwidth.
  const double max_link_bytes =
      std::max(*std::max_element(sent_per_node.begin(), sent_per_node.end()),
               *std::max_element(recv_per_node.begin(), recv_per_node.end()));
  const double lower_bound = max_link_bytes / config.egress_bytes_per_sec;
  const double finish = *std::max_element(delivery_times.begin(), delivery_times.end());
  EXPECT_GE(finish, lower_bound * 0.999);
  // And it should not be absurdly slow either: everything fits within the
  // serialized total across the slowest single link plus latency slack.
  EXPECT_LE(finish, total_bytes / config.egress_bytes_per_sec + 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomTraffic, FabricTrafficTest,
                         ::testing::Values(TrafficParam{2, 50, 1}, TrafficParam{4, 100, 2},
                                           TrafficParam{8, 200, 3}, TrafficParam{16, 100, 4},
                                           TrafficParam{32, 300, 5}));

class ChunkPipelineTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ChunkPipelineTest, LargeTransfersApproachWireRate) {
  // For any chunk size, a large point-to-point transfer must finish in
  // bytes/rate + one chunk of store-and-forward slack + latency.
  const int64_t chunk = GetParam();
  Simulator sim;
  FabricConfig config;
  config.egress_bytes_per_sec = 1e9;
  config.ingress_bytes_per_sec = 1e9;
  config.latency_s = 1e-5;
  config.chunk_bytes = chunk;
  NetworkFabric fabric(&sim, 2, config);
  const double bytes = 64e6;
  double done = -1.0;
  fabric.Send(0, 1, bytes, [&] { done = sim.Now(); });
  sim.Run();
  const double ideal = bytes / 1e9;
  const double slack = static_cast<double>(chunk) / 1e9 + 10 * config.latency_s;
  EXPECT_GE(done, ideal);
  EXPECT_LE(done, ideal + slack + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkPipelineTest,
                         ::testing::Values(64 * 1024, 512 * 1024, 2 * 1024 * 1024,
                                           16 * 1024 * 1024));

TEST(FabricDeterminismTest, IdenticalRunsIdenticalTimings) {
  auto run = [] {
    Simulator sim;
    FabricConfig config;
    config.egress_bytes_per_sec = 5e9;
    config.ingress_bytes_per_sec = 5e9;
    NetworkFabric fabric(&sim, 8, config);
    std::vector<double> times;
    Rng rng(77);
    for (int m = 0; m < 100; ++m) {
      const int src = static_cast<int>(rng.NextBounded(8));
      const int dst = static_cast<int>((src + 1 + rng.NextBounded(7)) % 8);
      fabric.Send(src, dst, 1e6 + static_cast<double>(rng.NextBounded(1000000)),
                  [&times, &sim] { times.push_back(sim.Now()); });
    }
    sim.Run();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace poseidon

// Wire messages exchanged by Poseidon's client libraries and KV stores.
//
// The in-process transport moves real payloads (gradient chunks, sufficient
// factors, 1-bit encodings) between worker and server threads, so the
// concurrent behaviour of the §4 architecture — BSP count vectors, per-layer
// syncers, multi-threaded communication — is exercised for real, not just
// simulated. Payload buffers are shared_ptr so a broadcast does not copy per
// receiver (receivers never mutate payloads).
#ifndef POSEIDON_SRC_TRANSPORT_MESSAGE_H_
#define POSEIDON_SRC_TRANSPORT_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/onebit.h"
#include "src/tensor/sufficient_factor.h"

namespace poseidon {

// Transport-level address. Server shard s listens on {node, kServerPort + s}
// (ports [0, kSyncerPortBase) are reserved for shard endpoints, so a server
// node can host up to 1000 key-range shards); each worker-side syncer has a
// mailbox at {node, kSyncerPortBase + layer}.
struct Address {
  int node = 0;
  int port = 0;

  bool operator==(const Address& other) const {
    return node == other.node && port == other.port;
  }
};

inline constexpr int kServerPort = 0;
inline constexpr int kSyncerPortBase = 1000;
inline constexpr int kMaxShardsPerServer = kSyncerPortBase;  // shard port space

// The mailbox address of shard `shard` on server node `server`.
inline Address ServerShardAddress(int server, int shard) {
  return Address{server, kServerPort + shard};
}
// Collective-communication mailboxes live in their own port space so a
// layer's collective participant never collides with its PS-style syncer
// mailbox: {node, kCollectivePortBase + tag} where tag is the layer index.
inline constexpr int kCollectivePortBase = 1000000;

struct AddressHash {
  size_t operator()(const Address& a) const {
    return static_cast<size_t>(a.node) * 1000003u + static_cast<size_t>(a.port);
  }
};

enum class MessageType {
  kGradPush,    // worker -> server: gradient chunks of one layer
  kParamReply,  // server -> worker: updated parameter chunks
  kSfBroadcast, // worker -> peer: sufficient factors (+ bias gradient)
  kOneBitPush,  // worker -> server: 1-bit encoded FC gradient (+ bias)
  kCollective,  // peer -> peer: one hop of a ring/tree collective
  kShutdown,    // trainer -> server: stop serving
};

// One KV pair's worth of contiguous floats within a layer's flattened
// parameter vector (Poseidon partitions parameters into fixed-size KV pairs
// hashed across shards, §4.1).
struct ChunkPayload {
  int64_t offset = 0;  // into the layer's flattened params
  std::vector<float> data;
};

struct Message {
  MessageType type = MessageType::kShutdown;
  Address from;
  Address to;
  int layer = -1;
  int worker = -1;   // originating worker id
  int64_t iter = -1;
  // Collective protocol step: ring hop index (0..2(P-1)-1), or the tree
  // phase (kTreeReducePhase / kTreeBroadcastPhase). Unused otherwise.
  int step = -1;

  std::shared_ptr<std::vector<ChunkPayload>> chunks;
  std::shared_ptr<SufficientFactors> sf;
  std::shared_ptr<std::vector<float>> bias_grad;  // rides along with SF/1-bit
  std::shared_ptr<OneBitEncoded> onebit;

  // Approximate wire size, for traffic accounting.
  int64_t WireBytes() const;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_MESSAGE_H_

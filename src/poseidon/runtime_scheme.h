// Per-layer synchronization plan for the threaded runtime.
#ifndef POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_
#define POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_

#include <string>
#include <vector>

#include "src/poseidon/coordinator.h"

namespace poseidon {

// What the trainer is asked to do for FC layers (conv layers always use the
// parameter server; stateless layers synchronize nothing).
enum class FcSyncPolicy {
  kDense,   // full matrices through the KV store
  kSfb,     // sufficient factor broadcasting
  kHybrid,  // Algorithm 1: coordinator.BestScheme per layer
  kOneBit,  // 1-bit quantized gradients, whole layer to one shard
};

enum class RuntimeScheme {
  kNone,     // no parameters
  kPsDense,  // sharded PS, dense chunks
  kSfb,      // peer broadcast + local reconstruction/update
  kOneBit,   // quantized push to a single owner shard
};

const char* RuntimeSchemeName(RuntimeScheme scheme);

// Resolves the policy against the coordinator's information book.
std::vector<RuntimeScheme> ResolveSchemes(const Coordinator& coordinator,
                                          FcSyncPolicy policy);

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_RUNTIME_SCHEME_H_

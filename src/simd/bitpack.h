/// \file
/// Internal helpers shared by the simd backends: packing and unpacking 8
/// consecutive row-major sign bits at an arbitrary bit offset in a uint32
/// word array. Pure integer ops — identical on every backend by definition.
#ifndef POSEIDON_SRC_SIMD_BITPACK_H_
#define POSEIDON_SRC_SIMD_BITPACK_H_

#include <cstdint>

namespace poseidon {
namespace simd {
namespace internal {

/// ORs the low 8 bits of `mask8` into `bits` at bit offset `flat`
/// (bit i of mask8 lands at flat + i). The word array must be pre-zeroed and
/// long enough to hold bit flat + 7; each bit is set at most once, so OR
/// order never matters.
inline void OrBits8(uint32_t* bits, int64_t flat, uint32_t mask8) {
  const int64_t word = flat >> 5;
  const int shift = static_cast<int>(flat & 31);
  bits[word] |= mask8 << shift;
  if (shift > 24) {
    // The 8 bits straddle a word boundary; bit flat + 7 < total guarantees
    // word + 1 is in range.
    bits[word + 1] |= mask8 >> (32 - shift);
  }
}

/// Reads the 8 consecutive bits starting at bit offset `flat`, as the low
/// byte of the result (bit i of the result is bit flat + i).
inline uint32_t LoadBits8(const uint32_t* bits, int64_t flat) {
  const int64_t word = flat >> 5;
  const int shift = static_cast<int>(flat & 31);
  uint32_t out = bits[word] >> shift;
  if (shift > 24) {
    out |= bits[word + 1] << (32 - shift);
  }
  return out & 0xFFu;
}

}  // namespace internal
}  // namespace simd
}  // namespace poseidon

#endif  // POSEIDON_SRC_SIMD_BITPACK_H_

/// \file
/// Subprocess helpers for the multi-process suites: temp run directories,
/// spawning the poseidon_launch binary (with reap-or-kill timeouts and
/// stderr capture on failure), and parsing the artifacts a cluster writes
/// (hexfloat loss logs, final checkpoints).
#ifndef POSEIDON_TESTS_TESTING_SUBPROCESS_H_
#define POSEIDON_TESTS_TESTING_SUBPROCESS_H_

#include <string>
#include <utility>
#include <vector>

#include "tests/testing/harness.h"

namespace poseidon {
namespace testing {

/// A fresh private directory under TEST_TMPDIR (or /tmp) for one cluster
/// run. CHECK-fails when mkdtemp fails.
std::string MakeTempDir(const std::string& tag);

/// One poseidon_launch run.
struct LaunchRun {
  int exit_code = -1;
  /// The launcher's stderr tail plus every child's stderr tail — attach to
  /// assertion messages so a red run tells the whole story.
  std::string log;
};

/// Runs $POSEIDON_LAUNCH_BIN with `args` (the test adds --out itself), reaps
/// with a timeout, kills on a wedge. `out_dir` is where child stderr files
/// land and must match the --out argument. Skips gracefully: CHECK-fails
/// when POSEIDON_LAUNCH_BIN is unset (CMake sets it for this suite).
LaunchRun RunPoseidonLaunch(const std::string& out_dir,
                            const std::vector<std::string>& args,
                            int timeout_ms = 180000);

/// Parses worker_<w>_losses.txt (hexfloat `iter loss acc` lines) back into
/// (loss, accuracy) doubles, bit-exact.
std::vector<std::pair<double, double>> ReadWorkerLosses(const std::string& path);

/// Reassembles the per-iteration mean training loss over all workers from a
/// cluster run directory, using the same summation order as
/// PoseidonTrainer::Train (worker 0 first), so the result is bitwise
/// comparable to the in-process Trajectory.
std::vector<double> MeanLossesFromRun(const std::string& dir, int workers,
                                      int iterations);

/// Loads worker `w`'s final checkpoint from a run directory into a fresh
/// canonical replica and flattens it (harness AllParams order).
std::vector<float> FinalParamsFromRun(const std::string& dir, int worker,
                                      int hidden_layers = 2);

}  // namespace testing
}  // namespace poseidon

#endif  // POSEIDON_TESTS_TESTING_SUBPROCESS_H_

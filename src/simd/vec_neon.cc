// NEON (AArch64) backend: the same fixed 8-wide blocks as AVX2, built from
// two 4-lane halves. Never uses vmla/fmla (those fuse the multiply-add and
// round once); every multiply-add is an explicit vmul + vadd so results are
// bit-identical to the scalar reference. This TU is compiled with
// -ffp-contract=off so its scalar tail expressions cannot contract either
// (AArch64 scalar code otherwise fuses to fmadd freely).
#include "src/simd/vec.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "src/simd/bitpack.h"

namespace poseidon {
namespace simd {
namespace {

void NeonReduceAdd(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(dst + i), vld1q_f32(src + i)));
    vst1q_f32(dst + i + 4, vaddq_f32(vld1q_f32(dst + i + 4), vld1q_f32(src + i + 4)));
  }
  ScalarKernels()->reduce_add(dst + i, src + i, n - i);
}

void NeonScale(float* dst, float alpha, int64_t n) {
  const float32x4_t a = vdupq_n_f32(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_f32(dst + i, vmulq_f32(vld1q_f32(dst + i), a));
    vst1q_f32(dst + i + 4, vmulq_f32(vld1q_f32(dst + i + 4), a));
  }
  ScalarKernels()->scale(dst + i, alpha, n - i);
}

void NeonAxpy(float* y, float alpha, const float* x, int64_t n) {
  const float32x4_t a = vdupq_n_f32(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vmulq_f32(a, vld1q_f32(x + i))));
    vst1q_f32(y + i + 4,
              vaddq_f32(vld1q_f32(y + i + 4), vmulq_f32(a, vld1q_f32(x + i + 4))));
  }
  ScalarKernels()->axpy(y + i, alpha, x + i, n - i);
}

void NeonSgdStep(float* v, float* value, const float* grad, float lr, float mu,
                 float wd, int64_t n) {
  const float32x4_t vmu = vdupq_n_f32(mu);
  const float32x4_t vwd = vdupq_n_f32(wd);
  const float32x4_t vlr = vdupq_n_f32(lr);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (int64_t h = i; h < i + 8; h += 4) {
      const float32x4_t vel = vld1q_f32(v + h);
      const float32x4_t val = vld1q_f32(value + h);
      const float32x4_t g = vld1q_f32(grad + h);
      // (mu * v + g) + wd * value — the scalar expression's association.
      const float32x4_t nv =
          vaddq_f32(vaddq_f32(vmulq_f32(vmu, vel), g), vmulq_f32(vwd, val));
      vst1q_f32(v + h, nv);
      vst1q_f32(value + h, vsubq_f32(val, vmulq_f32(vlr, nv)));
    }
  }
  ScalarKernels()->sgd_step(v + i, value + i, grad + i, lr, mu, wd, n - i);
}

// Movemask emulation: 4 mask lanes (all-ones/all-zeros) -> 4 bits, using
// per-lane bit weights and a horizontal add.
inline uint32_t MoveMask4(uint32x4_t mask, uint32x4_t lane_bit) {
  return vaddvq_u32(vandq_u32(mask, lane_bit));
}

void NeonOneBitEncodeStats(const float* grad, const float* residual, int64_t rows,
                           int64_t cols, uint32_t* bits, double* pos_sum,
                           double* neg_sum, int32_t* pos_count, int32_t* neg_count) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const uint32x4_t bit_lo = {1u, 2u, 4u, 8u};
  const uint32x4_t bit_hi = {16u, 32u, 64u, 128u};
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      for (int half = 0; half < 2; ++half) {
        const int64_t f = flat + 4 * half;
        const int64_t col = c + 4 * half;
        const float32x4_t q =
            vaddq_f32(vld1q_f32(grad + f), vld1q_f32(residual + f));
        // q >= 0 (NaN classifies negative, like the scalar compare).
        const uint32x4_t mask = vcgeq_f32(q, zero);
        const uint32_t m4 = MoveMask4(mask, half == 0 ? bit_lo : bit_hi) >>
                            (half == 0 ? 0 : 4);
        internal::OrBits8(bits, f, m4);

        // Widen mask lanes to 64-bit all-ones via sign extension, then mask
        // the double contributions to +-q or +0.0.
        const int32x4_t maski = vreinterpretq_s32_u32(mask);
        const int64x2_t m64_lo = vmovl_s32(vget_low_s32(maski));
        const int64x2_t m64_hi = vmovl_s32(vget_high_s32(maski));
        const float64x2_t q_lo = vcvt_f64_f32(vget_low_f32(q));
        const float64x2_t q_hi = vcvt_high_f64_f32(q);
        const int64x2_t qb_lo = vreinterpretq_s64_f64(q_lo);
        const int64x2_t qb_hi = vreinterpretq_s64_f64(q_hi);
        const float64x2_t pos_lo = vreinterpretq_f64_s64(vandq_s64(qb_lo, m64_lo));
        const float64x2_t pos_hi = vreinterpretq_f64_s64(vandq_s64(qb_hi, m64_hi));
        const float64x2_t neg_lo = vreinterpretq_f64_s64(vbicq_s64(qb_lo, m64_lo));
        const float64x2_t neg_hi = vreinterpretq_f64_s64(vbicq_s64(qb_hi, m64_hi));
        vst1q_f64(pos_sum + col, vaddq_f64(vld1q_f64(pos_sum + col), pos_lo));
        vst1q_f64(pos_sum + col + 2, vaddq_f64(vld1q_f64(pos_sum + col + 2), pos_hi));
        vst1q_f64(neg_sum + col, vaddq_f64(vld1q_f64(neg_sum + col), neg_lo));
        vst1q_f64(neg_sum + col + 2, vaddq_f64(vld1q_f64(neg_sum + col + 2), neg_hi));

        // Counts: a set mask lane is -1; subtracting increments.
        const int32x4_t pc = vld1q_s32(pos_count + col);
        const int32x4_t nc = vld1q_s32(neg_count + col);
        vst1q_s32(pos_count + col, vsubq_s32(pc, maski));
        vst1q_s32(neg_count + col,
                  vsubq_s32(nc, vreinterpretq_s32_u32(vmvnq_u32(mask))));
      }
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = q >= 0.0f;
      if (positive) {
        bits[flat >> 5] |= 1u << (flat & 31);
      }
      pos_sum[c] += positive ? static_cast<double>(q) : 0.0;
      neg_sum[c] += positive ? 0.0 : static_cast<double>(q);
      pos_count[c] += positive ? 1 : 0;
      neg_count[c] += positive ? 0 : 1;
    }
  }
}

// Expands bits 0..3 (half 0) or 4..7 (half 1) of m8 into a 4-lane mask.
inline uint32x4_t Mask8ToLanes4(uint32_t m8, int half) {
  const uint32x4_t lane_bit =
      half == 0 ? uint32x4_t{1u, 2u, 4u, 8u} : uint32x4_t{16u, 32u, 64u, 128u};
  return vtstq_u32(vdupq_n_u32(m8), lane_bit);
}

void NeonOneBitResidualUpdate(const float* grad, int64_t rows, int64_t cols,
                              const uint32_t* bits, const float* pos_level,
                              const float* neg_level, float* residual) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const uint32_t m8 = internal::LoadBits8(bits, flat);
      for (int half = 0; half < 2; ++half) {
        const int64_t f = flat + 4 * half;
        const int64_t col = c + 4 * half;
        const float32x4_t q =
            vaddq_f32(vld1q_f32(grad + f), vld1q_f32(residual + f));
        const float32x4_t level =
            vbslq_f32(Mask8ToLanes4(m8, half), vld1q_f32(pos_level + col),
                      vld1q_f32(neg_level + col));
        vst1q_f32(residual + f, vsubq_f32(q, level));
      }
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      residual[flat] = q - (positive ? pos_level[c] : neg_level[c]);
    }
  }
}

void NeonOneBitDecode(const uint32_t* bits, const float* pos_level,
                      const float* neg_level, int64_t rows, int64_t cols,
                      float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const uint32_t m8 = internal::LoadBits8(bits, flat);
      for (int half = 0; half < 2; ++half) {
        const int64_t f = flat + 4 * half;
        const int64_t col = c + 4 * half;
        vst1q_f32(out + f, vbslq_f32(Mask8ToLanes4(m8, half),
                                     vld1q_f32(pos_level + col),
                                     vld1q_f32(neg_level + col)));
      }
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      out[flat] = positive ? pos_level[c] : neg_level[c];
    }
  }
}

const Kernels kNeonKernels = {
    Level::kNeon,           NeonReduceAdd,
    NeonScale,              NeonAxpy,
    NeonSgdStep,            NeonOneBitEncodeStats,
    NeonOneBitResidualUpdate, NeonOneBitDecode,
};

}  // namespace

const Kernels* NeonKernels() { return &kNeonKernels; }

}  // namespace simd
}  // namespace poseidon

#else  // !__aarch64__

namespace poseidon {
namespace simd {
const Kernels* NeonKernels() { return nullptr; }
}  // namespace simd
}  // namespace poseidon

#endif

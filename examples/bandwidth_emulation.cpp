// Bandwidth-limited training in wall-clock time: attaches token-bucket
// egress limiters to every node of the in-process bus (emulating a slow
// Ethernet), then compares wall-clock iteration times of dense-PS vs SFB
// synchronization for an FC-heavy model — the §5.2 story, but measured on
// the real runtime rather than the simulator.
//
//   ./bandwidth_emulation [egress_MB_per_s]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/nn/builders.h"
#include "src/poseidon/trainer.h"

namespace {

double TrainTimed(poseidon::FcSyncPolicy policy, double egress_bytes_per_sec, int iters) {
  using namespace poseidon;
  DatasetConfig data;
  data.num_classes = 4;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 128;
  SyntheticDataset dataset(data);

  // FC-heavy: one wide hidden layer; with a small batch the SFs are far
  // smaller than the dense matrices.
  NetworkFactory factory = [] {
    Rng rng(5);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/1024, /*hidden_layers=*/1,
                    /*classes=*/4, rng);
  };
  TrainerOptions options;
  options.num_workers = 2;
  options.num_servers = 2;
  options.batch_per_worker = 4;
  options.sgd = {.learning_rate = 0.05f};
  options.fc_policy = policy;
  PoseidonTrainer trainer(factory, options);
  for (int n = 0; n < 2; ++n) {
    trainer.bus().SetEgressLimit(n, egress_bytes_per_sec);
  }

  const auto start = std::chrono::steady_clock::now();
  trainer.Train(dataset, iters);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() /
         iters;
}

}  // namespace

int main(int argc, char** argv) {
  const double mb_per_s = argc > 1 ? std::atof(argv[1]) : 40.0;
  const double rate = mb_per_s * 1e6;
  const int iters = 10;
  std::printf("Emulated egress limit: %.0f MB/s per node, 2 workers, FC-heavy MLP\n\n",
              mb_per_s);
  const double dense = TrainTimed(poseidon::FcSyncPolicy::kDense, rate, iters);
  const double sfb = TrainTimed(poseidon::FcSyncPolicy::kSfb, rate, iters);
  std::printf("  dense PS : %.1f ms/iteration\n", 1e3 * dense);
  std::printf("  SFB      : %.1f ms/iteration\n", 1e3 * sfb);
  std::printf("\nSFB is %.1fx faster under this bandwidth (the HybComm rationale).\n",
              dense / sfb);
  return 0;
}

#include "src/poseidon/workloads.h"

#include "src/common/rng.h"
#include "src/nn/builders.h"

namespace poseidon {
namespace workloads {

SyntheticDataset TinyDataset() {
  DatasetConfig data;
  data.num_classes = 3;
  data.channels = 1;
  data.height = 8;
  data.width = 8;
  data.train_size = 96;
  data.noise_stddev = 0.4f;
  data.seed = 2024;
  return SyntheticDataset(data);
}

NetworkFactory TinyMlpFactory(int hidden_layers) {
  return [hidden_layers] {
    Rng rng(13);
    return BuildMlp(/*input_dim=*/64, /*hidden_dim=*/20, hidden_layers,
                    /*classes=*/3, rng);
  };
}

TrainerOptions SmallTrainerOptions(int workers, int servers, int shards,
                                   int staleness, FcSyncPolicy policy) {
  TrainerOptions options;
  options.num_workers = workers;
  options.num_servers = servers;
  options.shards_per_server = shards;
  options.staleness = staleness;
  options.batch_per_worker = 6;
  options.sgd = {.learning_rate = 0.05f, .momentum = 0.9f};
  options.fc_policy = policy;
  options.kv_pair_bytes = 256;
  options.syncer_threads = 2;
  return options;
}

}  // namespace workloads
}  // namespace poseidon

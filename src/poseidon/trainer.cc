#include "src/poseidon/trainer.h"

#include <algorithm>
#include <thread>

#include "src/common/logging.h"

namespace poseidon {

PoseidonTrainer::PoseidonTrainer(NetworkFactory factory, TrainerOptions options)
    : options_(options) {
  CHECK_GT(options_.num_workers, 0);
  CHECK_GT(options_.num_servers, 0);
  const int num_nodes = std::max(options_.num_workers, options_.num_servers);
  bus_ = std::make_unique<MessageBus>(num_nodes);
  if (options_.batch_egress) {
    bus_->EnableBatching(options_.batch_options);
  }

  // Identical replicas: the factory must be deterministic.
  init_net_ = factory();
  for (int w = 0; w < options_.num_workers; ++w) {
    worker_nets_.push_back(factory());
    CHECK_EQ(worker_nets_.back()->num_layers(), init_net_->num_layers());
  }
  if (!options_.restore_path.empty()) {
    // Restore parameters into every replica (and into the init net the KV
    // shards take their master copies from) before anything starts serving.
    StatusOr<int64_t> restored = LoadCheckpoint(options_.restore_path, init_net_.get());
    CHECK(restored.ok()) << restored.status().ToString();
    next_iter_ = *restored;
    for (auto& net : worker_nets_) {
      CHECK(LoadCheckpoint(options_.restore_path, net.get()).ok());
    }
  }

  CHECK_GE(options_.shards_per_server, 0);
  CHECK_GE(options_.staleness, 0);
  ClusterInfo cluster;
  cluster.num_workers = options_.num_workers;
  cluster.num_servers = options_.num_servers;
  cluster.shards_per_server = std::max(1, options_.shards_per_server);
  cluster.staleness = options_.staleness;
  cluster.batch_per_worker = options_.batch_per_worker;
  cluster.kv_pair_bytes = options_.kv_pair_bytes;
  coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
  if (options_.shards_per_server == 0) {
    // Auto-sharding: let the multi-shard cost rows size the shard pool, then
    // repartition the KV pairs over the chosen endpoint space.
    const SyncPlan plan =
        ResolveSchemesSharded(*coordinator_, options_.fc_policy, kMaxAutoShards);
    cluster.shards_per_server = plan.ps_shards;
    coordinator_ = std::make_unique<Coordinator>(*init_net_, cluster);
  }
  schemes_ = ResolveSchemes(*coordinator_, options_.fc_policy);

  for (int s = 0; s < options_.num_servers; ++s) {
    servers_.push_back(std::make_unique<KvServer>(s, next_iter_, *coordinator_, schemes_,
                                                  *init_net_, bus_.get(), options_.sgd));
  }
  for (int w = 0; w < options_.num_workers; ++w) {
    clients_.push_back(std::make_unique<ClientLibrary>(
        w, *coordinator_, schemes_, worker_nets_[static_cast<size_t>(w)].get(), bus_.get(),
        options_.sgd, options_.syncer_threads));
  }
  for (auto& server : servers_) {
    server->Start();
  }
}

PoseidonTrainer::~PoseidonTrainer() { Shutdown(); }

void PoseidonTrainer::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  for (auto& server : servers_) {
    for (int shard = 0; shard < server->num_shards(); ++shard) {
      Message shutdown;
      shutdown.type = MessageType::kShutdown;
      shutdown.from = Address{0, kSyncerPortBase};
      shutdown.to = ServerShardAddress(server->id(), shard);
      const Status status = bus_->Send(std::move(shutdown));
      CHECK(status.ok()) << status.ToString();
    }
  }
  for (auto& server : servers_) {
    server->Join();
  }
  bus_->CloseAll();
}

std::vector<IterationStats> PoseidonTrainer::Train(const SyntheticDataset& dataset,
                                                   int iterations) {
  CHECK(!shut_down_);
  CHECK_GT(iterations, 0);
  const int num_workers = options_.num_workers;
  std::vector<std::vector<double>> losses(
      static_cast<size_t>(num_workers),
      std::vector<double>(static_cast<size_t>(iterations), 0.0));
  std::vector<std::vector<double>> accuracies = losses;

  const int64_t first_iter = next_iter_;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back([&, w] {
      Network& net = *worker_nets_[static_cast<size_t>(w)];
      ClientLibrary& client = *clients_[static_cast<size_t>(w)];
      for (int i = 0; i < iterations; ++i) {
        const int64_t iter = first_iter + i;
        const Batch batch =
            dataset.TrainBatch(iter, options_.batch_per_worker, w, num_workers);
        const LossResult result = net.Forward(batch.images, batch.labels);
        losses[static_cast<size_t>(w)][static_cast<size_t>(i)] = result.loss;
        accuracies[static_cast<size_t>(w)][static_cast<size_t>(i)] = result.accuracy;
        client.StartIteration(iter);
        for (int l = net.num_layers() - 1; l >= 0; --l) {
          net.BackwardThrough(l);
          client.ScheduleSync(l);  // wait-free backpropagation
        }
        client.WaitAll();  // BSP barrier: every layer synchronized
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  next_iter_ += iterations;

  std::vector<IterationStats> stats(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    IterationStats& s = stats[static_cast<size_t>(i)];
    s.iter = first_iter + i;
    for (int w = 0; w < num_workers; ++w) {
      s.mean_loss += losses[static_cast<size_t>(w)][static_cast<size_t>(i)];
      s.mean_accuracy += accuracies[static_cast<size_t>(w)][static_cast<size_t>(i)];
    }
    s.mean_loss /= num_workers;
    s.mean_accuracy /= num_workers;
  }
  return stats;
}

LossResult PoseidonTrainer::EvaluateTest(const SyntheticDataset& dataset) {
  const Batch test = dataset.TestSet();
  return worker_net(0).Evaluate(test.images, test.labels);
}

Status PoseidonTrainer::SaveCheckpointTo(const std::string& path) {
  return SaveCheckpoint(worker_net(0), next_iter_, path);
}

int PoseidonTrainer::shards_per_server() const {
  return coordinator_->cluster().shards_per_server;
}

Network& PoseidonTrainer::worker_net(int w) {
  CHECK_GE(w, 0);
  CHECK_LT(w, options_.num_workers);
  return *worker_nets_[static_cast<size_t>(w)];
}

}  // namespace poseidon

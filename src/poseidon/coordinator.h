// The coordinator (paper §4.1): holds the "information book" — cluster
// configuration, model architecture, and the KV partition plan — and answers
// Query / BestScheme requests from client libraries and KV stores.
//
// At construction it inspects the client program's network, flattens each
// layer's parameters, carves them into fixed-size KV pairs and hashes the
// pairs round-robin across server shards, "so as to partition and distribute
// model parameters to server nodes as equally as possible".
#ifndef POSEIDON_SRC_POSEIDON_COORDINATOR_H_
#define POSEIDON_SRC_POSEIDON_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/models/comm_cost.h"
#include "src/models/model_spec.h"
#include "src/nn/network.h"

namespace poseidon {

struct ClusterInfo {
  int num_workers = 1;
  int num_servers = 1;
  int batch_per_worker = 32;
  int64_t kv_pair_bytes = 2 * 1024 * 1024;  // paper: fixed small pairs (2 MB)
};

// One KV pair: a contiguous slice of a layer's flattened parameter vector,
// owned by one server shard.
struct KvPairInfo {
  int layer = 0;
  int chunk = 0;       // index within the layer
  int64_t offset = 0;  // float offset into the flattened layer
  int64_t length = 0;  // floats
  int server = 0;      // owning shard
};

struct LayerInfo {
  std::string name;
  LayerType type = LayerType::kConv;
  int64_t fc_m = 0;
  int64_t fc_n = 0;
  int64_t total_floats = 0;
  std::vector<KvPairInfo> pairs;
};

class Coordinator {
 public:
  // Builds the information book from a live network (the client program's
  // model, discovered during network assembly).
  Coordinator(Network& net, const ClusterInfo& cluster);

  const ClusterInfo& cluster() const { return cluster_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerInfo& layer(int l) const;

  // Table 2 "Query": information-book lookups by property name. Supported:
  // "n_worker", "n_server", "batchsize", "n_layer", "kv_pair_bytes".
  StatusOr<int64_t> Query(const std::string& property) const;

  // Table 2 / Algorithm 1 "BestScheme": the communication method for layer
  // `l` given the current model and cluster shape.
  CommScheme BestScheme(int l) const;
  StatusOr<CommScheme> BestScheme(const std::string& layer_name) const;

  // The three-way HybComm extension: PS vs SFB vs ring/tree allreduce, by
  // minimum modeled per-node floats (see comm_cost.h BestSchemeExtended).
  CommScheme BestSchemeExtended(int l) const;

  // KV pairs of layer `l` owned by `server`.
  std::vector<KvPairInfo> PairsOnServer(int l, int server) const;

  // Total floats hosted by each server, for balance checks (the paper's
  // motivation for fine-grained pairs).
  std::vector<int64_t> ServerLoadFloats() const;

 private:
  ClusterInfo cluster_;
  std::vector<LayerInfo> layers_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_POSEIDON_COORDINATOR_H_

#include "src/transport/payload.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/stats/metrics.h"

namespace poseidon {
namespace {

// Registry-backed counters ("wire.copied_floats" / "wire.copies"), cached
// once so the hot path stays one relaxed fetch_add per field.
Counter& CopiedFloatsCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter("wire.copied_floats");
  return *c;
}

Counter& CopiesCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter("wire.copies");
  return *c;
}

}  // namespace

void WireCopyStats::Add(int64_t floats) {
  CopiedFloatsCounter().Add(floats);
  CopiesCounter().Add(1);
}

int64_t WireCopyStats::Floats() { return CopiedFloatsCounter().Value(); }

int64_t WireCopyStats::Copies() { return CopiesCounter().Value(); }

void WireCopyStats::Reset() {
  CopiedFloatsCounter().Reset();
  CopiesCounter().Reset();
}

namespace internal {

AlignedSlab::AlignedSlab(int64_t floats) : size_(floats) {
  CHECK_GE(floats, 0);
  if (floats > 0) {
    // aligned_alloc needs the byte count rounded up to a multiple of the
    // alignment; the zero-fill covers the padding too so reads of the last
    // partial cache line are defined.
    const size_t bytes =
        (static_cast<size_t>(floats) * sizeof(float) + Payload::kAlignment - 1) /
        Payload::kAlignment * Payload::kAlignment;
    data_ = static_cast<float*>(std::aligned_alloc(Payload::kAlignment, bytes));
    CHECK_NOTNULL(data_);
    std::memset(data_, 0, bytes);
  }
}

AlignedSlab::~AlignedSlab() { std::free(data_); }

}  // namespace internal

Payload Payload::Allocate(int64_t floats) {
  CHECK_GE(floats, 0);
  Payload payload;
  payload.slab_ = std::make_shared<internal::AlignedSlab>(floats);
  return payload;
}

Payload Payload::FromVector(std::vector<float> values) {
  Payload payload = Allocate(static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), payload.slab_->data());
  return payload;
}

int64_t Payload::size() const { return slab_ ? slab_->size() : 0; }

float* Payload::data() {
  CHECK(valid());
  return slab_->data();
}

const float* Payload::data() const {
  CHECK(valid());
  return slab_->data();
}

PayloadView Payload::View() const { return View(0, size()); }

PayloadView Payload::View(int64_t offset, int64_t length) const {
  CHECK(valid());
  CHECK_GE(offset, 0);
  CHECK_GE(length, 0);
  CHECK_LE(offset + length, size());
  PayloadView view;
  view.slab_ = slab_;
  view.offset_ = offset;
  view.length_ = length;
  return view;
}

const float* PayloadView::data() const {
  CHECK(valid());
  return slab_->data() + offset_;
}

PayloadView PayloadView::Sub(int64_t offset, int64_t length) const {
  CHECK(valid());
  CHECK_GE(offset, 0);
  CHECK_GE(length, 0);
  CHECK_LE(offset + length, length_);
  PayloadView view;
  view.slab_ = slab_;
  view.offset_ = offset_ + offset;
  view.length_ = length;
  return view;
}

}  // namespace poseidon

#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/logging.h"

namespace poseidon {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << ",";
      }
      out << row[c];
    }
    out << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace poseidon

/// \file
/// Token-bucket egress limiter (wall-clock). Acquire(bytes) blocks the caller
/// until the bucket holds enough tokens, emulating a NIC that serializes a
/// node's outgoing traffic at a fixed rate.
#ifndef POSEIDON_SRC_TRANSPORT_RATE_LIMITER_H_
#define POSEIDON_SRC_TRANSPORT_RATE_LIMITER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

namespace poseidon {

class RateLimiter {
 public:
  // bytes_per_sec > 0; burst_bytes bounds how much can be sent back-to-back.
  RateLimiter(double bytes_per_sec, double burst_bytes = 256 * 1024.0);

  // Blocks until `bytes` tokens are available, then consumes them.
  void Acquire(int64_t bytes);

  double bytes_per_sec() const { return bytes_per_sec_; }

 private:
  void Refill();

  const double bytes_per_sec_;
  const double burst_bytes_;
  std::mutex mutex_;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_RATE_LIMITER_H_

// Regenerates Figure 8: throughput speedup under limited per-node bandwidth
// (Caffe engine), comparing Caffe+WFBP (pure PS) against Poseidon
// (HybComm): GoogLeNet at 2/5/10 GbE, VGG19 and VGG19-22K at 10/20/30 GbE,
// on 1-16 nodes.
//
// Expected shape (paper): at 10 GbE a PS-only system reaches ~8x on VGG19 at
// 16 nodes while Poseidon stays near-linear; Poseidon never does worse than
// PS because HybComm falls back to it (GoogLeNet at 16 nodes reduces to pure
// PS).
#include <cstdio>
#include <string>

#include "src/common/cli.h"
#include "src/models/zoo.h"
#include "src/stats/bench_record.h"
#include "src/stats/report.h"
#include "src/transport/socket_bench.h"

namespace poseidon {
namespace {

struct Config {
  const char* model;
  std::vector<double> gbps;
};

// `measured_gbps` > 0 is the live socket probe's payload bandwidth
// (--transport=tcp|unix); it rides the sweep as an extra bandwidth point so
// the modeled tables include what this machine's sockets actually achieve.
void Run(const BenchArgs& args, double measured_gbps) {
  const std::vector<int> nodes = args.NodesOr({1, 2, 4, 8, 16});
  // PS serve paths are costed at the configured shard count (--shards,
  // default 1 = the paper's single-endpoint servers), matching the
  // multi-shard cost rows in table1_comm_cost/ext_shards.
  const int shards = args.FirstShardOr(1);
  SystemConfig ps = CaffePlusWfbp();
  SystemConfig poseidon_sys = PoseidonSystem();
  ps.shards_per_server = shards;
  poseidon_sys.shards_per_server = shards;
  // --batch-egress: same-destination wire messages share one frame (the
  // transport's egress batcher, modeled); ablation table printed below.
  ps.batch_egress = args.batch_egress;
  poseidon_sys.batch_egress = args.batch_egress;
  if (shards > 1) {
    ps.name += "-s" + std::to_string(shards);
    poseidon_sys.name += "-s" + std::to_string(shards);
  }
  if (args.batch_egress) {
    ps.name += "-be";
    poseidon_sys.name += "-be";
  }
  const std::vector<Config> configs = {
      {"googlenet", {2.0, 5.0, 10.0}},
      {"vgg19", {10.0, 20.0, 30.0}},
      {"vgg19-22k", {10.0, 20.0, 30.0}},
  };
  for (const Config& config : configs) {
    const ModelSpec model = ModelByName(config.model).value();
    std::vector<double> sweep = args.GbpsOr(config.gbps);
    if (measured_gbps > 0.0) {
      sweep.push_back(measured_gbps);
    }
    for (double gbps : sweep) {
      // --plan=auto|fixed: replaces the hand-picked shard/batching stack
      // above with the CommPlanner's (or the dumped plan's) configuration.
      const auto results = RunPlannedScalingSweep(args, model, {ps, poseidon_sys}, nodes,
                                                  gbps, Engine::kCaffe);
      char title[128];
      std::snprintf(title, sizeof(title), "Fig 8: %s @ %.0f GbE (Caffe engine)",
                    model.name.c_str(), gbps);
      std::printf("%s\n", FormatSpeedupTable(title, results).c_str());
    }
    const std::string plan_summary =
        FormatPlanSummary(args, model, nodes.back(), sweep.front());
    if (!plan_summary.empty()) {
      std::printf("%s\n", plan_summary.c_str());
    }
    if (args.batch_egress) {
      std::printf("%s\n",
                  FormatBatchAblation("Egress-batcher ablation: " + model.name, model, ps,
                                      nodes, args.GbpsOr(config.gbps).front(),
                                      Engine::kCaffe)
                      .c_str());
    }
  }
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::BenchRecord record("fig8_bandwidth");
  const double measured_gbps = poseidon::MeasureTransportForBench(args, &record);
  poseidon::Run(args, measured_gbps);
  poseidon::FinishBenchTelemetry(args, &record);
  return 0;
}

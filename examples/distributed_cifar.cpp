// Domain example: the paper's flagship workload — image classification with
// a convolutional network — trained data-parallel on 4 workers through the
// real threaded runtime. Shows the loss trajectory, the per-node traffic the
// chosen schemes produce, and verifies that all replicas remain identical
// under bulk-synchronous consistency.
//
//   ./distributed_cifar [iterations]
#include <cstdio>
#include <cstdlib>

#include "src/common/units.h"
#include "src/nn/builders.h"
#include "src/poseidon/trainer.h"
#include "src/tensor/ops.h"

int main(int argc, char** argv) {
  using namespace poseidon;
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 150;

  DatasetConfig data;
  data.num_classes = 10;
  data.channels = 3;
  data.height = 16;
  data.width = 16;
  data.train_size = 512;
  data.test_size = 200;
  data.noise_stddev = 0.5f;
  data.seed = 101;
  SyntheticDataset dataset(data);

  NetworkFactory factory = [] {
    Rng rng(20170711);
    return BuildCifarQuick(/*channels=*/3, /*image_hw=*/16, /*classes=*/10, rng);
  };

  TrainerOptions options;
  options.num_workers = 4;
  options.num_servers = 4;
  options.batch_per_worker = 8;
  options.sgd = {.learning_rate = 0.01f, .momentum = 0.9f, .weight_decay = 1e-4f};
  options.fc_policy = FcSyncPolicy::kHybrid;
  options.kv_pair_bytes = 64 * 1024;  // finer pairs -> better shard balance

  PoseidonTrainer trainer(factory, options);
  std::printf("CIFAR-quick (reduced 16x16) on 4 workers, aggregate batch %d\n\n",
              4 * options.batch_per_worker);

  const auto stats = trainer.Train(dataset, iterations);
  for (size_t i = 0; i < stats.size(); i += 15) {
    std::printf("  iter %3lld  loss %.3f  train-acc %.2f\n",
                static_cast<long long>(stats[i].iter), stats[i].mean_loss,
                stats[i].mean_accuracy);
  }
  std::printf("\nTest accuracy after %d iterations: %.1f%%\n", iterations,
              100.0 * trainer.EvaluateTest(dataset).accuracy);

  std::printf("\nPer-node egress over the run:\n");
  const auto tx = trainer.bus().TxBytes();
  for (size_t n = 0; n < tx.size(); ++n) {
    std::printf("  node %zu: %s\n", n, FormatBytes(static_cast<double>(tx[n])).c_str());
  }

  // BSP keeps replicas bitwise identical; prove it.
  double worst = 0.0;
  auto params0 = trainer.worker_net(0).LayerParams();
  for (int w = 1; w < 4; ++w) {
    auto params = trainer.worker_net(w).LayerParams();
    for (size_t l = 0; l < params.size(); ++l) {
      for (size_t p = 0; p < params[l].size(); ++p) {
        worst = std::max(worst, MaxAbsDiff(*params0[l][p].value, *params[l][p].value));
      }
    }
  }
  std::printf("\nMax parameter divergence across replicas: %g (must be 0)\n", worst);
  return worst == 0.0 ? 0 : 1;
}

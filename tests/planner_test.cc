// CommPlanner test suite: the joint search against a brute-force oracle, the
// PlanCache determinism contract, the JSON round trip behind
// --plan=fixed:<path>, the committed golden plan dump, the windowed
// link-stats delta snapshots, and the bandwidth-feedback Replanner.
//
// The oracle is the load-bearing test: the planner prunes the search (the
// SFB/collective tail is shard-independent, so it is evaluated once per
// layer), and the oracle re-enumerates every (scheme, codec, shards)
// candidate the slow way from the public cost rows. Equal answers prove the
// pruning is exhaustive-equivalent, not just fast.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/models/comm_cost.h"
#include "src/models/zoo.h"
#include "src/planner/comm_plan.h"
#include "src/planner/comm_planner.h"
#include "src/planner/plan_cache.h"
#include "src/planner/replanner.h"
#include "src/transport/bus.h"

namespace poseidon {
namespace {

// ----------------------------------------------------------------- oracle --

struct OracleChoice {
  PlannedScheme scheme = PlannedScheme::kNone;
  GradCompression codec = GradCompression::kNone;
  double bytes = 0.0;
};

// Per-worker payload bytes of one candidate, straight from the public cost
// rows (the same rows the planner prices, reached without any of its menu or
// pruning machinery).
double OracleBytes(PlannedScheme scheme, GradCompression codec, const LayerSpec& layer,
                   const PlanRequest& r, int shards) {
  CommCostQuery q;
  q.m = layer.type == LayerType::kFC ? layer.fc_m : layer.params;
  q.n = layer.type == LayerType::kFC ? layer.fc_n : 1;
  q.batch_k = r.batch_per_worker;
  q.num_workers = r.num_workers;
  q.num_servers = r.num_servers;
  q.num_shards = shards;
  CommScheme comm = CommScheme::kPS;
  switch (scheme) {
    case PlannedScheme::kPS:
      comm = CommScheme::kPS;
      break;
    case PlannedScheme::kSFB:
      comm = CommScheme::kSFB;
      break;
    case PlannedScheme::kRing:
      comm = CommScheme::kRing;
      break;
    case PlannedScheme::kTree:
      comm = CommScheme::kTree;
      break;
    default:
      ADD_FAILURE() << "oracle asked for scheme " << static_cast<int>(scheme);
      break;
  }
  return SchemeWireBytes(comm, codec, q, r.topk_density);
}

// Exhaustive per-layer argmin on the byte basis at one shard count, in the
// planner's canonical candidate order (PS raw, PS fp16, PS int8, PS topk,
// SFB, ring, tree) with strict-improvement folding, so ties land on the same
// candidate the planner prefers.
OracleChoice OracleBestForLayer(const LayerSpec& layer, const PlanRequest& r, int shards) {
  OracleChoice best;
  if (layer.params <= 0) {
    return best;  // stateless
  }
  bool have = false;
  auto fold = [&](PlannedScheme scheme, GradCompression codec) {
    const double bytes = OracleBytes(scheme, codec, layer, r, shards);
    if (!have || bytes < best.bytes) {
      best = {scheme, codec, bytes};
      have = true;
    }
  };
  fold(PlannedScheme::kPS, GradCompression::kNone);
  if (r.num_workers > 1) {
    if (layer.params >= r.compression_min_floats) {
      fold(PlannedScheme::kPS, GradCompression::kFp16);
      fold(PlannedScheme::kPS, GradCompression::kInt8);
      fold(PlannedScheme::kPS, GradCompression::kTopK);
    }
    if (layer.type == LayerType::kFC) {
      fold(PlannedScheme::kSFB, GradCompression::kNone);
    }
    fold(PlannedScheme::kRing, GradCompression::kNone);
    fold(PlannedScheme::kTree, GradCompression::kNone);
  }
  return best;
}

TEST(PlannerOracleTest, JointByteBasisMatchesBruteForce) {
  for (const char* name : {"googlenet", "vgg19", "vgg19-22k", "resnet-152"}) {
    const ModelSpec model = ModelByName(name).value();
    for (int p : {1, 2, 8, 16}) {
      const PlanRequest request =
          JointAutoRequest(model, p, /*nic_gbps=*/0.0, /*max_shards=*/8);
      const CommPlan plan = PlanComm(request);

      // Brute force: total payload at every shard count, ties to fewer shards.
      int oracle_shards = 1;
      double oracle_total = 0.0;
      bool have = false;
      for (int s = 1; s <= request.max_shards; ++s) {
        double total = 0.0;
        for (const LayerSpec& layer : model.layers) {
          total += OracleBestForLayer(layer, request, s).bytes;
        }
        if (!have || total < oracle_total) {
          oracle_total = total;
          oracle_shards = s;
          have = true;
        }
      }
      SCOPED_TRACE(std::string(name) + " @ " + std::to_string(p) + " nodes");
      EXPECT_EQ(plan.ps_shards, oracle_shards);
      // Both sides price candidates through the same closed forms, so the
      // totals must agree bitwise, not just approximately.
      EXPECT_EQ(plan.predicted_wire_bytes, oracle_total);
      ASSERT_EQ(plan.layers.size(), model.layers.size());
      for (size_t l = 0; l < model.layers.size(); ++l) {
        const OracleChoice oracle =
            OracleBestForLayer(model.layers[l], request, oracle_shards);
        EXPECT_EQ(plan.layers[l].scheme, oracle.scheme) << model.layers[l].name;
        EXPECT_EQ(plan.layers[l].compression, oracle.codec) << model.layers[l].name;
        EXPECT_EQ(plan.layers[l].predicted_bytes, oracle.bytes) << model.layers[l].name;
      }
    }
  }
}

TEST(PlannerOracleTest, PlannedNeverCostsMoreBytesThanPaperDefault) {
  // The acceptance gate's invariant, across the zoo: the joint search's
  // predicted payload never exceeds the hand-picked default's (the paper
  // config is in the joint search space, so worse would mean a search bug).
  for (const char* name :
       {"alexnet", "googlenet", "inception-v3", "vgg19", "vgg19-22k", "resnet-152"}) {
    const ModelSpec model = ModelByName(name).value();
    for (int p : {2, 4, 8, 16, 32}) {
      const CommPlan planned =
          PlanComm(JointAutoRequest(model, p, /*nic_gbps=*/0.0, /*max_shards=*/8));
      const CommPlan paper = PlanComm(PaperDefaultRequest(model, p));
      EXPECT_LE(planned.predicted_wire_bytes, paper.predicted_wire_bytes)
          << name << " @ " << p << " nodes";
    }
  }
}

TEST(PlannerOracleTest, TimeBasisAddsLatencyAndStalenessDecisions) {
  const ModelSpec model = ModelByName("vgg19").value();
  PlanRequest request = JointAutoRequest(model, 8, /*nic_gbps=*/10.0, /*max_shards=*/8);
  const CommPlan plan = PlanComm(request);
  EXPECT_GT(plan.predicted_time_s, 0.0);
  EXPECT_EQ(plan.planned_gbps, 10.0);
  EXPECT_EQ(plan.staleness, 0);  // SSP is opt-in via max_staleness

  request.max_staleness = 2;
  const CommPlan ssp = PlanComm(request);
  EXPECT_EQ(ssp.staleness, 2);
  EXPECT_LT(ssp.predicted_time_s, plan.predicted_time_s);
}

TEST(PlannerOracleTest, PaperModePinsTheHandPickedConfiguration) {
  const ModelSpec model = ModelByName("vgg19").value();
  const CommPlan plan = PlanComm(PaperDefaultRequest(model, 8));
  EXPECT_EQ(plan.ps_shards, 1);
  EXPECT_FALSE(plan.batch_egress);
  for (const PlanLayerChoice& choice : plan.layers) {
    EXPECT_EQ(choice.compression, GradCompression::kNone) << choice.layer;
    EXPECT_TRUE(choice.scheme == PlannedScheme::kPS ||
                choice.scheme == PlannedScheme::kSFB)
        << choice.layer << ": paper hybrid only picks PS or SFB";
  }
}

// ------------------------------------------------------------------ cache --

TEST(PlanCacheTest, ColdAndCachedPlansAreBitwiseIdentical) {
  const ModelSpec model = ModelByName("googlenet").value();
  const PlanRequest request = JointAutoRequest(model, 8, 10.0, 8);

  PlanCache cache;
  EXPECT_EQ(cache.Lookup(request), nullptr);
  const auto cold = cache.GetOrPlan(request);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cache.misses(), 1);

  const auto warm = cache.GetOrPlan(request);
  EXPECT_EQ(warm.get(), cold.get()) << "a hit must hand back the memoized object";
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1u);

  // The memoized plan is bitwise what a fresh search computes.
  const CommPlan fresh = PlanComm(request);
  EXPECT_EQ(fresh.hash, cold->hash);
  EXPECT_EQ(fresh.ToJson(), cold->ToJson());
}

TEST(PlanCacheTest, DistinctRequestsGetDistinctKeys) {
  const ModelSpec model = ModelByName("vgg19").value();
  const PlanRequest base = JointAutoRequest(model, 8, 10.0, 8);

  PlanRequest other = base;
  other.nic_gbps = 20.0;
  EXPECT_FALSE(PlanRequestKey(base) == PlanRequestKey(other));
  EXPECT_NE(PlanRequestSignature(base), PlanRequestSignature(other));

  other = base;
  other.num_workers = other.num_servers = 16;
  EXPECT_FALSE(PlanRequestKey(base) == PlanRequestKey(other));

  other = base;
  other.pinned_schemes.assign(base.layers.size(), PlannedScheme::kPS);
  EXPECT_FALSE(PlanRequestKey(base) == PlanRequestKey(other))
      << "pinned schemes must feed the digest";

  PlanCache cache;
  cache.GetOrPlan(base);
  other = base;
  other.max_shards = 4;
  cache.GetOrPlan(other);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, RepeatedSearchesAreDeterministic) {
  const ModelSpec model = ModelByName("resnet-152").value();
  const PlanRequest request = JointAutoRequest(model, 16, 40.0, 8);
  const std::string first = PlanComm(request).ToJson();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(PlanComm(request).ToJson(), first);
  }
}

// ------------------------------------------------------------------- json --

TEST(PlanJsonTest, RoundTripIsByteExact) {
  const ModelSpec model = ModelByName("vgg19-22k").value();
  const CommPlan plan = PlanComm(JointAutoRequest(model, 16, 10.0, 8));
  const std::string json = plan.ToJson();

  const StatusOr<CommPlan> parsed = CommPlan::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().hash, plan.hash);
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(PlanJsonTest, TamperedDumpIsRejected) {
  const ModelSpec model = ModelByName("googlenet").value();
  const CommPlan plan = PlanComm(PaperDefaultRequest(model, 8));
  std::string json = plan.ToJson();
  // Bump the shard count without re-hashing: the content hash must catch it.
  const size_t pos = json.find("\"ps_shards\": 1");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 14, "\"ps_shards\": 2");
  EXPECT_FALSE(CommPlan::FromJson(json).ok());
}

TEST(PlanJsonTest, FileRoundTripBacksFixedPlanRuns) {
  const ModelSpec model = ModelByName("vgg19").value();
  const CommPlan plan = PlanComm(JointAutoRequest(model, 8, 0.0, 8));
  const std::string path =
      ::testing::TempDir() + "/poseidon_plan_roundtrip.json";
  ASSERT_TRUE(plan.SaveToFile(path).ok());
  const StatusOr<CommPlan> loaded = CommPlan::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().hash, plan.hash);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- golden --

// The committed plan-dump fixture: the joint plan for VGG19 on 8 nodes at
// 10 GbE must reproduce tests/golden/plan_dump.json byte for byte. A
// legitimate cost-model change regenerates it with POSEIDON_REGEN_GOLDEN=1
// (the docs CI job validates the committed file stays in sync).
TEST(PlanGoldenTest, CommittedPlanDumpIsReproduced) {
  const char* dir = std::getenv("POSEIDON_GOLDEN_DIR");
  ASSERT_NE(dir, nullptr) << "POSEIDON_GOLDEN_DIR not set (ctest sets it)";
  const std::string path = std::string(dir) + "/plan_dump.json";

  const ModelSpec model = ModelByName("vgg19").value();
  const CommPlan plan =
      PlanComm(JointAutoRequest(model, 8, /*nic_gbps=*/10.0, /*max_shards=*/8));
  const std::string json = plan.ToJson();

  if (const char* regen = std::getenv("POSEIDON_REGEN_GOLDEN");
      regen != nullptr && regen[0] == '1') {
    ASSERT_TRUE(plan.SaveToFile(path).ok());
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path
                         << " missing; run with POSEIDON_REGEN_GOLDEN=1 to create it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json)
      << "plan dump drifted from the committed golden; if the cost model "
         "changed intentionally, regenerate with POSEIDON_REGEN_GOLDEN=1";
}

// ------------------------------------------------------- link-stats delta --

Message ChunkMessage(int src, int dst, int floats) {
  Message m;
  m.type = MessageType::kGradPush;
  m.from = Address{src, kSyncerPortBase};
  m.to = Address{dst, kServerPort};
  m.layer = 0;
  m.worker = src;
  m.iter = 0;
  m.codec = WireCodec::kRawFloat;
  Payload payload = Payload::Allocate(floats);
  for (int64_t i = 0; i < payload.size(); ++i) {
    payload.data()[i] = 1.0f;
  }
  m.chunks.push_back({0, payload.View()});
  return m;
}

TEST(LinkStatsDeltaTest, WindowsCoverOnlyNewTraffic) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  bus.EnableLinkStats();

  ASSERT_TRUE(bus.Send(ChunkMessage(0, 1, 256)).ok());
  ASSERT_TRUE(mailbox->Pop().has_value());

  ObservedLinkStats first = bus.SnapshotLinkStatsDelta();
  const LinkStat* link = first.Find(0, 1);
  ASSERT_NE(link, nullptr);
  EXPECT_GT(link->bytes, 0);
  EXPECT_EQ(link->messages, 1);

  // Nothing new moved: the next window must be empty, while the cumulative
  // snapshot still remembers everything.
  ObservedLinkStats second = bus.SnapshotLinkStatsDelta();
  EXPECT_EQ(second.Find(0, 1), nullptr);
  EXPECT_NE(bus.SnapshotLinkStats().Find(0, 1), nullptr);

  // New traffic lands in the third window, delta-sized.
  ASSERT_TRUE(bus.Send(ChunkMessage(0, 1, 256)).ok());
  ASSERT_TRUE(bus.Send(ChunkMessage(0, 1, 256)).ok());
  ASSERT_TRUE(mailbox->Pop().has_value());
  ASSERT_TRUE(mailbox->Pop().has_value());
  ObservedLinkStats third = bus.SnapshotLinkStatsDelta();
  link = third.Find(0, 1);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->messages, 2);

  bus.CloseAll();
}

// -------------------------------------------------------------- replanner --

ObservedLinkStats SyntheticWindow(double window_s, int64_t bytes_from_node0) {
  ObservedLinkStats window;
  window.window_s = window_s;
  LinkStat link;
  link.src = 0;
  link.dst = 1;
  link.bytes = bytes_from_node0;
  link.messages = 1;
  window.links.push_back(link);
  return window;
}

// bytes over 1 s whose busiest-node egress equals `gbps`.
int64_t BytesForGbps(double gbps) { return static_cast<int64_t>(gbps * 1e9 / 8.0); }

TEST(ReplannerTest, StaysPutInsideHysteresisAndReplansOutside) {
  const ModelSpec model = ModelByName("vgg19").value();
  PlanCache cache;
  ReplanOptions options;
  options.hysteresis = 0.3;
  Replanner replanner(JointAutoRequest(model, 8, /*nic_gbps=*/10.0, 8), options, &cache);

  // 20% off: inside hysteresis, no replan.
  ReplanDecision decision = replanner.Observe(SyntheticWindow(1.0, BytesForGbps(12.0)));
  EXPECT_FALSE(decision.replan);
  EXPECT_NEAR(decision.observed_gbps, 12.0, 1e-9);
  EXPECT_EQ(replanner.reference_gbps(), 10.0);

  // 4x slower: replan at the observed bandwidth.
  decision = replanner.Observe(SyntheticWindow(1.0, BytesForGbps(2.5)));
  ASSERT_TRUE(decision.replan);
  ASSERT_NE(decision.plan, nullptr);
  EXPECT_NEAR(decision.plan->planned_gbps, 2.5, 1e-9);
  EXPECT_NEAR(replanner.reference_gbps(), 2.5, 1e-9);

  // The same bandwidth again: the reference moved, so no further replan.
  decision = replanner.Observe(SyntheticWindow(1.0, BytesForGbps(2.5)));
  EXPECT_FALSE(decision.replan);
}

TEST(ReplannerTest, ByteBasisPlanCalibratesOnFirstLiveWindow) {
  const ModelSpec model = ModelByName("googlenet").value();
  PlanCache cache;
  Replanner replanner(JointAutoRequest(model, 4, /*nic_gbps=*/0.0, 8), ReplanOptions{},
                      &cache);
  const ReplanDecision first = replanner.Observe(SyntheticWindow(1.0, BytesForGbps(5.0)));
  EXPECT_FALSE(first.replan) << "calibration must not replan";
  EXPECT_NEAR(replanner.reference_gbps(), 5.0, 1e-9);

  const ReplanDecision second =
      replanner.Observe(SyntheticWindow(1.0, BytesForGbps(20.0)));
  EXPECT_TRUE(second.replan);
}

TEST(ReplannerTest, IdleAndDegenerateWindowsAreIgnored) {
  const ModelSpec model = ModelByName("vgg19").value();
  PlanCache cache;
  Replanner replanner(JointAutoRequest(model, 8, 10.0, 8), ReplanOptions{}, &cache);
  EXPECT_FALSE(replanner.Observe(ObservedLinkStats{}).replan);
  // A window shorter than min_window_s is a clock tick, not evidence.
  EXPECT_FALSE(replanner.Observe(SyntheticWindow(1e-9, BytesForGbps(100.0))).replan);
  EXPECT_EQ(replanner.reference_gbps(), 10.0);
}

TEST(ReplannerTest, DeterministicGivenTheSameWindowSequence) {
  const ModelSpec model = ModelByName("vgg19").value();
  const std::vector<double> schedule = {10.0, 9.0, 3.0, 3.1, 40.0, 39.0};
  auto run = [&] {
    PlanCache cache;
    Replanner replanner(JointAutoRequest(model, 8, 10.0, 8), ReplanOptions{}, &cache);
    std::vector<uint64_t> hashes;
    for (double gbps : schedule) {
      const ReplanDecision d = replanner.Observe(SyntheticWindow(1.0, BytesForGbps(gbps)));
      hashes.push_back(d.replan ? d.plan->hash : 0);
    }
    return hashes;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace poseidon

#include "src/poseidon/client_library.h"

#include "src/common/logging.h"

namespace poseidon {

ClientLibrary::ClientLibrary(int worker, const Coordinator& coordinator,
                             const std::vector<RuntimeScheme>& schemes, Network* net,
                             MessageBus* bus, const SgdConfig& sgd, int num_threads,
                             const std::vector<GradCompression>& compression,
                             double topk_density)
    : worker_(worker), schemes_(schemes), local_optimizer_(sgd), pool_(num_threads) {
  CHECK_NOTNULL(net);
  CHECK_EQ(static_cast<int>(schemes.size()), net->num_layers());
  CHECK(compression.empty() || compression.size() == schemes.size());
  syncers_.reserve(schemes.size());
  for (int l = 0; l < net->num_layers(); ++l) {
    const GradCompression layer_compression =
        compression.empty() ? GradCompression::kNone
                            : compression[static_cast<size_t>(l)];
    syncers_.push_back(std::make_unique<Syncer>(worker, l, schemes[static_cast<size_t>(l)],
                                                coordinator, bus, &net->layer(l),
                                                &local_optimizer_, layer_compression,
                                                topk_density));
    if (schemes[static_cast<size_t>(l)] != RuntimeScheme::kNone) {
      ++num_sync_layers_;
    }
  }
  completion_.assign(schemes.size(), false);
}

void ClientLibrary::StartIteration(int64_t iter) {
  std::lock_guard<std::mutex> lock(mutex_);
  CHECK_EQ(completed_, 0) << "previous iteration still in flight";
  std::fill(completion_.begin(), completion_.end(), false);
  iter_ = iter;
}

void ClientLibrary::ScheduleSync(int l) {
  if (schemes_[static_cast<size_t>(l)] == RuntimeScheme::kNone) {
    return;
  }
  const int64_t iter = iter_;
  pool_.Schedule([this, l, iter] {
    Syncer& syncer = *syncers_[static_cast<size_t>(l)];
    syncer.MoveOut();      // Move(GPU2CPU)
    syncer.Send(iter);     // non-blocking push
    syncer.Receive(iter);  // blocks; includes Move(CPU2GPU) / local apply
    {
      std::lock_guard<std::mutex> lock(mutex_);
      CHECK(!completion_[static_cast<size_t>(l)]) << "layer synced twice in one iteration";
      completion_[static_cast<size_t>(l)] = true;
      ++completed_;
      if (completed_ == num_sync_layers_) {
        done_cv_.notify_all();
      }
    }
  });
}

void ClientLibrary::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return completed_ == num_sync_layers_; });
  completed_ = 0;
}

}  // namespace poseidon

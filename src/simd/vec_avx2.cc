// AVX2 backend: fixed 8-lane blocks, scalar tails, no FMA anywhere (vector
// code composes explicit mul/add intrinsics; AVX2 does not imply FMA, and
// this TU is additionally compiled with -ffp-contract=off), so every result
// is bit-identical to the scalar reference in vec_scalar.cc.
//
// Functions carry __attribute__((target("avx2"))) instead of the TU being
// built with -mavx2: the rest of the file (dispatch glue, tails) stays
// baseline-ISA, and the binary runs on non-AVX2 machines as long as dispatch
// never selects this backend.
#include "src/simd/vec.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "src/simd/bitpack.h"

namespace poseidon {
namespace simd {
namespace {

#define POSEIDON_AVX2 __attribute__((target("avx2")))

POSEIDON_AVX2 void Avx2ReduceAdd(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_loadu_ps(dst + i);
    const __m256 s = _mm256_loadu_ps(src + i);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(d, s));
  }
  ScalarKernels()->reduce_add(dst + i, src + i, n - i);
}

POSEIDON_AVX2 void Avx2Scale(float* dst, float alpha, int64_t n) {
  const __m256 a = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), a));
  }
  ScalarKernels()->scale(dst + i, alpha, n - i);
}

POSEIDON_AVX2 void Avx2Axpy(float* y, float alpha, const float* x, int64_t n) {
  const __m256 a = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 ax = _mm256_mul_ps(a, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), ax));
  }
  ScalarKernels()->axpy(y + i, alpha, x + i, n - i);
}

POSEIDON_AVX2 void Avx2SgdStep(float* v, float* value, const float* grad, float lr,
                               float mu, float wd, int64_t n) {
  const __m256 vmu = _mm256_set1_ps(mu);
  const __m256 vwd = _mm256_set1_ps(wd);
  const __m256 vlr = _mm256_set1_ps(lr);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vel = _mm256_loadu_ps(v + i);
    const __m256 val = _mm256_loadu_ps(value + i);
    const __m256 g = _mm256_loadu_ps(grad + i);
    // (mu * v + g) + wd * value — the scalar expression's association.
    const __m256 nv = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(vmu, vel), g),
                                    _mm256_mul_ps(vwd, val));
    _mm256_storeu_ps(v + i, nv);
    _mm256_storeu_ps(value + i, _mm256_sub_ps(val, _mm256_mul_ps(vlr, nv)));
  }
  ScalarKernels()->sgd_step(v + i, value + i, grad + i, lr, mu, wd, n - i);
}

// Widens the low/high 4 float lanes of `mask` (all-ones or all-zeros per
// lane) to 4 all-ones/all-zeros double lanes.
POSEIDON_AVX2 inline __m256d MaskLoPd(__m256 mask) {
  return _mm256_castsi256_pd(
      _mm256_cvtepi32_epi64(_mm_castps_si128(_mm256_castps256_ps128(mask))));
}
POSEIDON_AVX2 inline __m256d MaskHiPd(__m256 mask) {
  return _mm256_castsi256_pd(
      _mm256_cvtepi32_epi64(_mm_castps_si128(_mm256_extractf128_ps(mask, 1))));
}

POSEIDON_AVX2 void Avx2OneBitEncodeStats(const float* grad, const float* residual,
                                         int64_t rows, int64_t cols, uint32_t* bits,
                                         double* pos_sum, double* neg_sum,
                                         int32_t* pos_count, int32_t* neg_count) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256i ones = _mm256_set1_epi32(-1);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const __m256 q = _mm256_add_ps(_mm256_loadu_ps(grad + flat),
                                     _mm256_loadu_ps(residual + flat));
      // Movemask-style sign extraction: lane compare q >= 0 (ordered, so a
      // NaN classifies negative exactly like the scalar `q >= 0.0f`).
      const __m256 mask = _mm256_cmp_ps(q, zero, _CMP_GE_OQ);
      const uint32_t m8 = static_cast<uint32_t>(_mm256_movemask_ps(mask));
      internal::OrBits8(bits, flat, m8);

      // Per-column double accumulation: masked lanes contribute +0.0, which
      // is bit-exact on these sums (see the scalar reference).
      const __m256d qlo = _mm256_cvtps_pd(_mm256_castps256_ps128(q));
      const __m256d qhi = _mm256_cvtps_pd(_mm256_extractf128_ps(q, 1));
      const __m256d mlo = MaskLoPd(mask);
      const __m256d mhi = MaskHiPd(mask);
      _mm256_storeu_pd(pos_sum + c,
                       _mm256_add_pd(_mm256_loadu_pd(pos_sum + c),
                                     _mm256_and_pd(qlo, mlo)));
      _mm256_storeu_pd(pos_sum + c + 4,
                       _mm256_add_pd(_mm256_loadu_pd(pos_sum + c + 4),
                                     _mm256_and_pd(qhi, mhi)));
      _mm256_storeu_pd(neg_sum + c,
                       _mm256_add_pd(_mm256_loadu_pd(neg_sum + c),
                                     _mm256_andnot_pd(mlo, qlo)));
      _mm256_storeu_pd(neg_sum + c + 4,
                       _mm256_add_pd(_mm256_loadu_pd(neg_sum + c + 4),
                                     _mm256_andnot_pd(mhi, qhi)));

      // Counts: a set mask lane is integer -1, so subtracting the mask
      // increments; the complement increments the negative count.
      const __m256i maski = _mm256_castps_si256(mask);
      __m256i* pc = reinterpret_cast<__m256i*>(pos_count + c);
      __m256i* nc = reinterpret_cast<__m256i*>(neg_count + c);
      _mm256_storeu_si256(
          pc, _mm256_sub_epi32(_mm256_loadu_si256(pc), maski));
      _mm256_storeu_si256(
          nc, _mm256_sub_epi32(_mm256_loadu_si256(nc),
                               _mm256_andnot_si256(maski, ones)));
    }
    // Scalar tail for the row's trailing columns (same expressions as the
    // scalar reference; no multiplies, so contraction cannot differ).
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = q >= 0.0f;
      if (positive) {
        bits[flat >> 5] |= 1u << (flat & 31);
      }
      pos_sum[c] += positive ? static_cast<double>(q) : 0.0;
      neg_sum[c] += positive ? 0.0 : static_cast<double>(q);
      pos_count[c] += positive ? 1 : 0;
      neg_count[c] += positive ? 0 : 1;
    }
  }
}

// Expands the low 8 bits of m8 into an 8-lane all-ones/all-zeros mask.
POSEIDON_AVX2 inline __m256 Mask8ToLanes(uint32_t m8) {
  const __m256i lane_bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i v = _mm256_set1_epi32(static_cast<int>(m8));
  return _mm256_castsi256_ps(
      _mm256_cmpeq_epi32(_mm256_and_si256(v, lane_bit), lane_bit));
}

POSEIDON_AVX2 void Avx2OneBitResidualUpdate(const float* grad, int64_t rows,
                                            int64_t cols, const uint32_t* bits,
                                            const float* pos_level,
                                            const float* neg_level, float* residual) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const __m256 q = _mm256_add_ps(_mm256_loadu_ps(grad + flat),
                                     _mm256_loadu_ps(residual + flat));
      const __m256 mask = Mask8ToLanes(internal::LoadBits8(bits, flat));
      const __m256 level = _mm256_blendv_ps(_mm256_loadu_ps(neg_level + c),
                                            _mm256_loadu_ps(pos_level + c), mask);
      _mm256_storeu_ps(residual + flat, _mm256_sub_ps(q, level));
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const float q = grad[flat] + residual[flat];
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      residual[flat] = q - (positive ? pos_level[c] : neg_level[c]);
    }
  }
}

POSEIDON_AVX2 void Avx2OneBitDecode(const uint32_t* bits, const float* pos_level,
                                    const float* neg_level, int64_t rows,
                                    int64_t cols, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t base = r * cols;
    int64_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const int64_t flat = base + c;
      const __m256 mask = Mask8ToLanes(internal::LoadBits8(bits, flat));
      _mm256_storeu_ps(out + flat,
                       _mm256_blendv_ps(_mm256_loadu_ps(neg_level + c),
                                        _mm256_loadu_ps(pos_level + c), mask));
    }
    for (; c < cols; ++c) {
      const int64_t flat = base + c;
      const bool positive = (bits[flat >> 5] >> (flat & 31)) & 1u;
      out[flat] = positive ? pos_level[c] : neg_level[c];
    }
  }
}

#undef POSEIDON_AVX2

const Kernels kAvx2Kernels = {
    Level::kAvx2,           Avx2ReduceAdd,
    Avx2Scale,              Avx2Axpy,
    Avx2SgdStep,            Avx2OneBitEncodeStats,
    Avx2OneBitResidualUpdate, Avx2OneBitDecode,
};

}  // namespace

const Kernels* Avx2Kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

}  // namespace simd
}  // namespace poseidon

#else  // !x86

namespace poseidon {
namespace simd {
const Kernels* Avx2Kernels() { return nullptr; }
}  // namespace simd
}  // namespace poseidon

#endif

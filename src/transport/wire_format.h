/// \file
/// Byte-exact serialization of wire messages: the docs/WIRE_FORMAT.md frames
/// become real bytes here, and the socket transport ships them verbatim.
///
/// Layout invariant: an encoded message frame is exactly
/// `Message::WireBytes()` bytes (32-byte frame header + per chunk a 16-byte
/// chunk header + 4 bytes per payload word), and an encoded batch frame is
/// exactly `kWireFrameBytes + sum(kBatchEntryHeaderBytes +
/// entry.PayloadBytes())` bytes — the traffic accounting the bus, the cost
/// model and the benches have always charged is the truth on the wire, not an
/// approximation. tests/wire_conformance_test.cc pins the exact bytes with a
/// committed golden fixture.
///
/// Message frame header (32 bytes, little-endian):
///   [0]  u8  type          MessageType
///   [1]  u8  codec         WireCodec
///   [2]  u16 num_chunks
///   [4]  i16 from_node
///   [6]  i16 to_node
///   [8]  i32 from_port
///   [12] i32 to_port
///   [16] i16 layer
///   [18] i16 worker
///   [20] i16 step
///   [22] u16 flags         (reserved, 0)
///   [24] i32 iter
///   [28] i32 seq           (-1 = unsequenced)
/// Chunk header (16 bytes): i64 float offset, i64 length in words; followed
/// by length*4 payload bytes (float words copied bit-exactly, so bit-cast
/// codec headers and 1-bit sign words survive).
///
/// Batch frame: the same 32-byte header with type = kWireBatchType (0xFF),
/// from/to ports zero, num_chunks = entry count, iter shared; then per entry
/// a packed 12-byte header (three u32 words — port spaces, type, codec,
/// chunk count, layer, worker, step, seq; see PackedEntry in wire_format.cc)
/// followed by the entry's chunk headers and payload words. The packed
/// header is why a batched logical message costs kBatchEntryHeaderBytes = 12
/// instead of a full frame header; its field ranges (layer <= 1021,
/// worker <= 61, step <= 125, 1023 chunks, seq <= 2^25 - 2) are CHECKed at
/// encode.
///
/// `Message::send_ns` never crosses the wire: it is a per-process
/// steady-clock stamp, meaningless on another machine. The receiving bus
/// restamps it on ingress so delivery latency is measured entirely on the
/// receiver's clock (see MessageBus::DeliverWire).
///
/// Below the frame layer the socket stream carries 8-byte records
/// ([u32 body length][u8 version][u8 kind][u16 src process]); that record
/// header is transport overhead, excluded from the accounted wire bytes the
/// same way an Ethernet preamble would be (see docs/TRANSPORT.md).
#ifndef POSEIDON_SRC_TRANSPORT_WIRE_FORMAT_H_
#define POSEIDON_SRC_TRANSPORT_WIRE_FORMAT_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/transport/message.h"

namespace poseidon {

/// On-wire `type` byte marking a batched frame (plain messages use their
/// MessageType value, all of which are < 0x80).
inline constexpr uint8_t kWireBatchType = 0xFF;

/// Serializes one message into an exact docs/WIRE_FORMAT.md frame. The
/// result has size `message.WireBytes()`. CHECKs that header fields fit
/// their wire widths (node/layer/worker/step in 16 bits, iter/seq in 32).
std::vector<uint8_t> EncodeMessageFrame(const Message& message);

/// Serializes a batch of same-(from node, to node, iter) messages into one
/// batched frame: shared 32-byte header + per entry a packed 12-byte entry
/// header + chunk headers + payload words. CHECKs the shared-field
/// invariant and the packed-field ranges.
std::vector<uint8_t> EncodeBatchFrame(const std::vector<Message>& entries);

/// Decodes one frame (message or batch) into logical messages, in entry
/// order. Payload words land in one fresh slab per frame; every chunk view
/// aliases it (zero-copy fan-out on the receive side). Returns
/// InvalidArgument/OutOfRange on truncated or malformed input — wire bytes
/// must never crash a receiver.
Status DecodeWireFrame(const uint8_t* data, int64_t size,
                       std::vector<Message>* out);

/// True when the frame bytes are a batched frame (size >= 1 and the type
/// byte is kWireBatchType).
bool IsBatchFrame(const uint8_t* data, int64_t size);

}  // namespace poseidon

#endif  // POSEIDON_SRC_TRANSPORT_WIRE_FORMAT_H_

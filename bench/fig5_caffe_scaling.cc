// Regenerates Figure 5: throughput speedup vs number of nodes when training
// GoogLeNet, VGG19 and VGG19-22K with the Caffe engine at 40 GbE, comparing
// Caffe+PS (sequential sync), Caffe+WFBP (overlapped) and full Poseidon
// (WFBP + HybComm). Single-node unmodified Caffe is the baseline.
//
// Expected shape (paper): WFBP alone reaches near-linear scaling for
// GoogLeNet/VGG19; on VGG19-22K (91% FC parameters) WFBP saturates around
// ~21x at 32 nodes and HybComm recovers ~30x.
#include <cstdio>

#include "src/common/cli.h"
#include "src/models/zoo.h"
#include "src/stats/report.h"

namespace poseidon {
namespace {

void Run(const BenchArgs& args) {
  const std::vector<int> nodes = args.NodesOr({1, 2, 4, 8, 16, 32});
  const std::vector<SystemConfig> systems = {CaffePlusPs(), CaffePlusWfbp(),
                                             PoseidonSystem()};
  for (const char* name : {"googlenet", "vgg19", "vgg19-22k"}) {
    const ModelSpec model = ModelByName(name).value();
    for (double gbps : args.GbpsOr({40.0})) {
      const auto results = RunScalingSweep(model, systems, nodes, gbps, Engine::kCaffe);
      char title[128];
      std::snprintf(title, sizeof(title), "Fig 5: %s (Caffe engine, %.0f GbE)",
                    model.name.c_str(), gbps);
      std::printf("%s\n", FormatSpeedupTable(title, results).c_str());
    }
  }
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

// Extension experiment: sharded parameter server with bounded staleness.
//
// Part 1 extends Table 1 with the multi-shard PS rows and self-verifies
// every printed value against the closed-form expressions (to 1e-6):
//   per-shard server endpoint: 2*P1*M*N/(P2*S) floats,
//   colocated worker + busiest endpoint: 2*M*N*(P1 + P2*S - 2)/(P2*S).
// Expected shape: the colocated row falls toward the pure-worker 2MN floor
// as S grows — sharding relieves the serve-path serialization, not the NIC —
// so BestPsShardCount saturates at the cap for P1 > 2 and stays at 1 for
// P1 <= 2 where no served share exists to spread.
//
// Part 2 sweeps the protocol simulator over shard count x staleness x
// bandwidth on VGG19 (PS-heavy FC layers). Expected shape: more shards
// shorten the server apply tail (small effect at high bandwidth, visible at
// low); staleness converts the per-layer sync barrier into a bounded
// pipeline and mostly pays off when iterations are communication-dominated.
//
// Part 3 injects a persistent 1.5x straggler: BSP pays the slowdown every
// iteration, SSP absorbs it up to the bound and re-synchronizes, landing
// between BSP and the straggler-free run.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/models/comm_cost.h"
#include "src/models/zoo.h"
#include "src/stats/bench_record.h"
#include "src/stats/report.h"
#include "src/transport/socket_bench.h"

namespace poseidon {
namespace {

// Closed-form multi-shard rows, kept deliberately separate from the
// implementation in comm_cost.cc so the table is cross-checked, not
// self-checked.
double AnalyticShardedServerFloats(double mn, int p1, int p2, int s) {
  return 2.0 * p1 * mn / (static_cast<double>(p2) * s);
}

double AnalyticShardedColocatedFloats(double mn, int p1, int p2, int s) {
  const double endpoints = static_cast<double>(p2) * s;
  return 2.0 * mn * (p1 + endpoints - 2.0) / endpoints;
}

void CheckClose(double got, double want, const char* what) {
  const double scale = std::max(1.0, std::abs(want));
  CHECK_LT(std::abs(got - want) / scale, 1e-6)
      << what << ": got " << got << ", want " << want;
}

struct CostRow {
  const char* label;
  LayerSpec layer;
  int64_t batch_k;
};

void CostTablePart(const std::vector<int>& workers, const std::vector<int>& shards) {
  std::printf("Multi-shard PS rows: per-endpoint floats (millions) per iteration,\n");
  std::printf("P colocated worker+server nodes, S key-range shards per server.\n");
  std::printf("S* = BestPsShardCount cap 8; best = three-way HybComm choice at S.\n\n");

  const std::vector<CostRow> rows = {
      {"fc 4096x4096", FcLayer("fc7", 4096, 4096), 32},
      {"fc 4096x25088", FcLayer("fc6", 4096, 25088), 32},
      {"conv 2.36M", ConvLayer("res5", 512, 512, 3, 7), 32},
  };

  TextTable table(
      {"layer", "K", "P", "S", "PS.srv/S", "PS.both/S", "S*", "best@S"});
  for (const CostRow& row : rows) {
    for (int p : workers) {
      if (p < 2) {
        continue;  // a 1-node world has nothing to shard against
      }
      for (int s : shards) {
        CommCostQuery q;
        q.m = row.layer.type == LayerType::kFC ? row.layer.fc_m : row.layer.params;
        q.n = row.layer.type == LayerType::kFC ? row.layer.fc_n : 1;
        q.batch_k = row.batch_k;
        q.num_workers = p;
        q.num_servers = p;
        q.num_shards = s;

        const double mn = static_cast<double>(q.m) * static_cast<double>(q.n);
        const double srv = PsShardedServerFloats(q);
        const double both = PsShardedColocatedFloats(q);
        CheckClose(srv, AnalyticShardedServerFloats(mn, p, p, s), "sharded server row");
        CheckClose(both, AnalyticShardedColocatedFloats(mn, p, p, s),
                   "sharded colocated row");
        // At one shard the rows must collapse onto the paper's Table 1.
        CommCostQuery q1 = q;
        q1.num_shards = 1;
        CheckClose(PsShardedServerFloats(q1), PsServerFloats(q1), "S=1 server row");
        CheckClose(PsShardedColocatedFloats(q1), PsColocatedFloats(q1),
                   "S=1 colocated row");

        const int best_s = BestPsShardCount(q, /*max_shards=*/8);
        const CommScheme best = BestSchemeExtended(row.layer, row.batch_k, p, p, s);
        table.AddRow({row.label, std::to_string(row.batch_k), std::to_string(p),
                      std::to_string(s), TextTable::Num(srv / 1e6, 2),
                      TextTable::Num(both / 1e6, 2), std::to_string(best_s),
                      CommSchemeName(best)});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SimSweepPart(const BenchArgs& args, const std::vector<int>& nodes,
                  const std::vector<double>& bandwidths, const std::vector<int>& shards,
                  const std::vector<int>& staleness, bool batch_egress) {
  std::vector<SystemConfig> systems;
  for (int s : shards) {
    systems.push_back(ShardedPsSystem(s, /*staleness=*/0));
  }
  for (int stale : staleness) {
    if (stale > 0) {
      systems.push_back(ShardedPsSystem(shards.back(), stale));
    }
  }
  systems.push_back(PoseidonSystem());
  for (SystemConfig& system : systems) {
    system.batch_egress = batch_egress;
    if (batch_egress) {
      system.name += "-be";
    }
  }

  const ModelSpec model = ModelByName("vgg19").value();
  for (double gbps : bandwidths) {
    // --plan=auto|fixed: the planner's shard/staleness/codec choice replaces
    // the hand-enumerated shard x staleness grid above.
    const auto results =
        RunPlannedScalingSweep(args, model, systems, nodes, gbps, Engine::kCaffe);
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Sharded PS / SSP extension: %s @ %.0f GbE (Caffe engine)",
                  model.name.c_str(), gbps);
    std::printf("%s\n", FormatSpeedupTable(title, results).c_str());
  }
  const std::string plan_summary =
      FormatPlanSummary(args, model, nodes.back(), bandwidths.front());
  if (!plan_summary.empty()) {
    std::printf("%s\n", plan_summary.c_str());
  }
  if (batch_egress) {
    std::printf("%s\n", FormatBatchAblation("Egress-batcher ablation: sharded PS", model,
                                            ShardedPsSystem(shards.back(), 0), nodes,
                                            bandwidths.front(), Engine::kCaffe)
                            .c_str());
  }
}

void StragglerPart(const std::vector<int>& nodes, double gbps,
                   const std::vector<int>& staleness) {
  const int p = *std::max_element(nodes.begin(), nodes.end());
  if (p < 2) {
    return;
  }
  const ModelSpec model = ModelByName("vgg19").value();
  ClusterSpec cluster;
  cluster.num_nodes = p;
  cluster.nic_gbps = gbps;

  TextTable table({"system", "straggler", "iter_ms", "vs clean"});
  const SimResult clean =
      RunProtocolSimulation(model, ShardedPsSystem(1, 0), cluster, Engine::kCaffe);
  cluster.straggler_node = 0;
  cluster.straggler_slowdown = 1.5;
  for (int stale : staleness) {
    const SimResult result =
        RunProtocolSimulation(model, ShardedPsSystem(1, stale), cluster, Engine::kCaffe);
    table.AddRow({result.system, "1.5x", TextTable::Num(result.iter_time_s * 1e3, 2),
                  TextTable::Num(result.iter_time_s / clean.iter_time_s, 3)});
  }
  std::printf("Persistent straggler, %d nodes @ %.0f GbE; clean BSP iter %.2f ms\n",
              p, gbps, clean.iter_time_s * 1e3);
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  const std::vector<int> nodes = args.NodesOr({4, 8, 16});
  const std::vector<int> shards = args.ShardsOr({1, 2, 4, 8});
  const std::vector<int> staleness = args.fast ? std::vector<int>{0, 1}
                                               : std::vector<int>{0, 1, 3};
  poseidon::InitBenchTelemetry(args);
  poseidon::BenchRecord record("ext_shards");
  // --transport=tcp|unix: the live socket probe's payload Gb/s joins the
  // sharded-PS sweep, so the shard/staleness tables include the bandwidth
  // this machine's sockets actually deliver.
  const double measured_gbps = poseidon::MeasureTransportForBench(args, &record);
  std::vector<double> bandwidths = args.GbpsOr({10.0, 40.0});
  if (measured_gbps > 0.0) {
    bandwidths.push_back(measured_gbps);
  }
  poseidon::CostTablePart(nodes, shards);
  poseidon::SimSweepPart(args, nodes, bandwidths, shards, staleness, args.batch_egress);
  poseidon::StragglerPart(nodes, bandwidths.front(), staleness);
  poseidon::FinishBenchTelemetry(args, &record);
  return 0;
}

/// \file
/// Logical topologies for the collective-communication subsystem: the
/// bidirectional-bandwidth-optimal ring and the latency-optimal binary tree.
///
/// Ranks are worker ids 0..world-1. The ring orders ranks naturally
/// (successor r+1 mod world); the tree is the implicit binary heap layout
/// (parent (r-1)/2, children 2r+1 / 2r+2), which keeps every helper O(1) and
/// makes reduction order deterministic without any negotiated state.
#ifndef POSEIDON_SRC_COLLECTIVE_TOPOLOGY_H_
#define POSEIDON_SRC_COLLECTIVE_TOPOLOGY_H_

#include <cstdint>
#include <vector>

namespace poseidon {

/// A contiguous slice [offset, offset + length) of a flat float buffer.
struct ChunkRange {
  int64_t offset = 0;
  int64_t length = 0;
};

/// Partition of `total` elements into `world` near-equal chunks: the first
/// total % world chunks get one extra element, so every legal index (even for
/// total < world, where trailing chunks are empty) maps to a valid range.
ChunkRange CollectiveChunk(int64_t total, int world, int index);

/// Ring neighbours.
int RingNext(int rank, int world);
int RingPrev(int rank, int world);

/// Binary (heap-layout) tree. TreeParent(0) is -1; children beyond world are
/// omitted.
int TreeParent(int rank);
std::vector<int> TreeChildren(int rank, int world);
/// Number of reduce/broadcast levels: ceil(log2(world)) with TreeDepth(1)==0.
int TreeDepth(int world);

/// Per-node, per-direction float traffic of one allreduce of `elems`
/// elements — the egress volume, which equals the ingress volume and is the
/// quantity a full-duplex NIC bounds. Used by both the analytic cost model
/// and the traffic tests.
/// Ring: every rank sends 2*elems*(world-1)/world (reduce-scatter sends
/// (world-1)/world of the tensor, all-gather the same).
double RingAllreduceNodeFloats(int64_t elems, int world);
/// Tree: rank-dependent — a node sends elems to its parent (unless root) and
/// elems to each child. Returns rank `rank`'s egress.
double TreeAllreduceNodeFloats(int64_t elems, int world, int rank);
/// The bottleneck (max over ranks) tree traffic, the Table-1-style "max"
/// row: 3*elems at an internal node with two children once world >= 5.
double TreeAllreduceMaxNodeFloats(int64_t elems, int world);

}  // namespace poseidon

#endif  // POSEIDON_SRC_COLLECTIVE_TOPOLOGY_H_

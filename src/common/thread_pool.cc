#include "src/common/thread_pool.h"

#include "src/common/logging.h"

namespace poseidon {

ThreadPool::ThreadPool(int num_threads) {
  CHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CHECK(!shutdown_) << "Schedule() after Shutdown()";
    ++pending_;
  }
  const bool pushed = queue_.Push(std::move(task));
  CHECK(pushed);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  queue_.Close();
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::optional<std::function<void()>> task = queue_.Pop();
    if (!task.has_value()) {
      return;  // closed and drained
    }
    (*task)();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace poseidon

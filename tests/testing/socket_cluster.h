/// \file
/// In-process socket clusters for the conformance and chaos suites: every
/// "process" of a multi-process cluster runs as a thread of the test binary
/// (one ClusterNode each), but all traffic still crosses real TCP or Unix
/// sockets through the full wire-format encode/decode path. This gives the
/// backend-parameterized property tests a socket backend they can drive
/// under plain ctest — no subprocess spawning, same framing, same sequencing
/// — while tests/multiprocess_trajectory_test.cc covers the true
/// fork/exec cluster through tools/poseidon_launch.
#ifndef POSEIDON_TESTS_TESTING_SOCKET_CLUSTER_H_
#define POSEIDON_TESTS_TESTING_SOCKET_CLUSTER_H_

#include "src/poseidon/cluster_node.h"
#include "tests/testing/harness.h"

namespace poseidon {
namespace testing {

struct SocketClusterOptions {
  int workers = 2;
  int servers = 2;
  int shards = 2;
  int staleness = 0;
  FcSyncPolicy policy = FcSyncPolicy::kDense;
  int iterations = 6;
  int hidden_layers = 2;
  /// AF_UNIX instead of TCP loopback.
  bool unix_sockets = false;
  /// Host worker w and server w on the same bus node (server_node_base 0)
  /// instead of giving every role its own node/process.
  bool colocate = false;
  bool batch_egress = false;
  /// Record-level socket weather, applied on every member's egress.
  FaultPlan shim;
};

/// What a socket cluster run observed, shaped for comparison against the
/// in-process CaptureTrajectory oracle.
struct SocketClusterRun {
  Trajectory trajectory;           ///< mean losses + worker 0 final params
  FaultCountersSnapshot shim;      ///< weather injected, summed over members
  FaultCountersSnapshot wire;      ///< ingress sequencing stats, summed
};

/// Runs the full cluster (controller + node members as threads), captures
/// the trajectory from the run directory, and aggregates the counters.
/// CHECK-fails if any member fails — these tests want a stack, not a skip.
SocketClusterRun RunSocketCluster(const SocketClusterOptions& options);

}  // namespace testing
}  // namespace poseidon

#endif  // POSEIDON_TESTS_TESTING_SOCKET_CLUSTER_H_

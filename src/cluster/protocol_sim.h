// Discrete-event simulation of one distributed training run.
//
// ProtocolSimulation instantiates P symmetric nodes (each a worker plus a
// colocated KV-store server hosting `shards_per_server` key-range shard
// endpoints), a network fabric, and per-node GPU / copy-engine / CPU
// timelines, then executes `warmup + measure` iterations of the chosen
// SystemConfig under its consistency model (BSP, or SSP when
// `staleness > 0`). It reports steady-state iteration time, throughput
// speedup vs the single-node compute-only baseline, the GPU busy/stall
// breakdown (Fig 7) and per-node traffic (Fig 10).
//
// Execution model per node and iteration (paper §3):
//   C_t = [f_1..f_L, b_L..b_1] on the GPU timeline, strictly in order;
//   f_l of iteration t+1 additionally waits for sync_done(l, t - staleness)
//   — BSP's sync_done(l, t) at the default staleness of 0.
// Synchronization pipelines per layer (launched per the overlap mode):
//   PS    d2h -> push shard to every server -> server applies when all P
//         pushes arrived -> broadcast pulls -> h2d -> done
//   SFB   d2h -> broadcast own SFs to P-1 peers; on receiving each peer's
//         SFs h2d it; when all arrived, reconstruct (GPU streams) -> done
//   Adam  d2h SFs -> send to owning server -> server reconstructs when all P
//         arrived -> sends dense matrices to every worker -> h2d -> done
//   1-bit quantize (CPU) -> push compressed -> server dequant/apply/requant
//         -> pull compressed -> dequant -> h2d -> done
#ifndef POSEIDON_SRC_CLUSTER_PROTOCOL_SIM_H_
#define POSEIDON_SRC_CLUSTER_PROTOCOL_SIM_H_

#include <map>
#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/compute_model.h"
#include "src/cluster/system_config.h"
#include "src/models/comm_cost.h"
#include "src/models/model_spec.h"

namespace poseidon {

struct SimOptions {
  int warmup_iters = 2;
  int measure_iters = 5;
};

struct SimResult {
  std::string system;
  std::string model;
  int num_nodes = 1;
  double nic_gbps = 0.0;

  double iter_time_s = 0.0;        // steady-state, per iteration
  double images_per_sec = 0.0;     // cluster-aggregate throughput
  double single_node_iter_s = 0.0; // compute-only baseline iteration time
  double speedup = 0.0;            // throughput vs 1-node unmodified engine
  double gpu_busy_frac = 0.0;      // averaged over nodes, measured window

  // Per-node traffic during the measured window, gigabits per iteration
  // (framing overhead included, mirroring src/transport/message.h).
  std::vector<double> tx_gbits_per_iter;
  std::vector<double> rx_gbits_per_iter;

  // Per-node wire frames per iteration. With SystemConfig::batch_egress a
  // node's same-destination messages within one iteration share a frame, so
  // wire_msgs < logical_msgs; without batching the two are equal.
  std::vector<double> wire_msgs_per_iter;
  std::vector<double> logical_msgs_per_iter;

  // layer name -> scheme actually used ("PS", "SFB", "SF->PS" for Adam,
  // "1bit").
  std::map<std::string, std::string> layer_schemes;

  // ---- fault model outputs (SystemConfig loss/recovery knobs).
  // Expected wire transmissions per message, 1/(1 - loss_rate).
  double expected_transmissions = 1.0;
  // Cluster-visible stall of one crash-recovery episode: detect + restart +
  // one in-flight-iteration replay, minus what the SSP bound absorbs
  // (survivors run up to `staleness` clocks before blocking on the dead
  // worker). Zero when no failure model is configured.
  double recovery_stall_s = 0.0;
};

// Runs one configuration to completion. Deterministic.
SimResult RunProtocolSimulation(const ModelSpec& model, const SystemConfig& system,
                                const ClusterSpec& cluster, Engine engine, int batch_per_node,
                                const SimOptions& options = SimOptions());

// Convenience: default batch from the model spec.
SimResult RunProtocolSimulation(const ModelSpec& model, const SystemConfig& system,
                                const ClusterSpec& cluster, Engine engine);

}  // namespace poseidon

#endif  // POSEIDON_SRC_CLUSTER_PROTOCOL_SIM_H_

// Unit tests for the dense tensor and its BLAS-like kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace poseidon {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.size(), 120);
  EXPECT_EQ(t.ndim(), 4);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.ShapeString(), "[2,3,4,5]");
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::Full({3, 3}, 2.5f);
  EXPECT_EQ(t.At(1, 2), 2.5f);
  t.SetZero();
  EXPECT_EQ(t.At(2, 2), 0.0f);
}

TEST(TensorTest, At4Indexing) {
  Tensor t({2, 3, 4, 4});
  t.At4(1, 2, 3, 3) = 7.0f;
  // Flat index: ((1*3+2)*4+3)*4+3 = 95.
  EXPECT_EQ(t[95], 7.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.At(2, 1), 6.0f);
  EXPECT_EQ(r.At(0, 1), 2.0f);
}

TEST(TensorTest, HeInitStatistics) {
  Rng rng(7);
  const int64_t fan_in = 256;
  Tensor t = Tensor::RandomHe({64, fan_in}, fan_in, rng);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum_sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / t.size();
  const double var = sum_sq / t.size() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 2.0 / fan_in, 2.0 / fan_in * 0.2);
}

TEST(OpsTest, GemmMatchesManual) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c({2, 2});
  Gemm(a, b, &c);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(OpsTest, GemmVariantsAgree) {
  Rng rng(11);
  Tensor a = Tensor::RandomUniform({17, 23}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::RandomUniform({23, 9}, -1.0f, 1.0f, rng);
  Tensor c({17, 9});
  Gemm(a, b, &c);

  // a^T laid out as [23,17]: GemmTransA(a_t, b) must equal Gemm(a, b).
  Tensor a_t({23, 17});
  for (int64_t i = 0; i < 17; ++i) {
    for (int64_t j = 0; j < 23; ++j) {
      a_t.At(j, i) = a.At(i, j);
    }
  }
  Tensor c2({17, 9});
  GemmTransA(a_t, b, &c2);
  EXPECT_LT(MaxAbsDiff(c, c2), 1e-5);

  // b^T laid out as [9,23]: GemmTransB(a, b_t) must equal Gemm(a, b).
  Tensor b_t({9, 23});
  for (int64_t i = 0; i < 23; ++i) {
    for (int64_t j = 0; j < 9; ++j) {
      b_t.At(j, i) = b.At(i, j);
    }
  }
  Tensor c3({17, 9});
  GemmTransB(a, b_t, &c3);
  EXPECT_LT(MaxAbsDiff(c, c3), 1e-5);
}

TEST(OpsTest, AxpyAndScale) {
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  Tensor y = Tensor::FromVector({3}, {10, 20, 30});
  Axpy(2.0f, x, &y);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
  Scale(0.5f, &y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
}

TEST(OpsTest, Reductions) {
  Tensor x = Tensor::FromVector({4}, {1, -2, 2, 0});
  EXPECT_DOUBLE_EQ(SumSquares(x), 9.0);
  EXPECT_DOUBLE_EQ(Norm(x), 3.0);
  Tensor y = Tensor::FromVector({4}, {1, -2, 2, 5});
  EXPECT_DOUBLE_EQ(MaxAbsDiff(x, y), 5.0);
}

TEST(OpsTest, RowVectorOps) {
  Tensor m = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor v = Tensor::FromVector({3}, {10, 20, 30});
  AddRowVector(v, &m);
  EXPECT_FLOAT_EQ(m.At(1, 2), 36.0f);
  Tensor sums({3});
  SumRows(m, &sums);
  EXPECT_FLOAT_EQ(sums[0], 25.0f);  // (1+10) + (4+10)
  EXPECT_FLOAT_EQ(sums[2], 69.0f);  // (3+30) + (6+30)
}

class GemmSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(GemmSizeTest, BlockedKernelMatchesNaive) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  Tensor a = Tensor::RandomUniform({n, n + 3}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::RandomUniform({n + 3, n + 1}, -1.0f, 1.0f, rng);
  Tensor c({n, n + 1});
  Gemm(a, b, &c);
  // Naive reference.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n + 1; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < n + 3; ++p) {
        acc += static_cast<double>(a.At(i, p)) * b.At(p, j);
      }
      ASSERT_NEAR(c.At(i, j), acc, 1e-4) << "at " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSizeTest, ::testing::Values(1, 2, 7, 16, 64, 65, 130));

}  // namespace
}  // namespace poseidon

// Extension experiment (paper §5.1 "Multi-GPU Settings"): scaling with
// multiple GPUs per node, where Poseidon aggregates gradients on a leader
// GPU over device-to-device copies before touching the NIC. Reproduces the
// reported AWS p2.8xlarge result: ~32x / ~28x speedup for GoogLeNet / VGG19
// on 4 nodes x 8 GPUs.
#include <cstdio>

#include "src/cluster/protocol_sim.h"
#include "src/common/table.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

void Run() {
  std::printf("Multi-GPU extension: speedup vs single GPU (Poseidon, 40 GbE)\n\n");
  TextTable table({"model", "nodes", "gpus/node", "total gpus", "speedup"});
  for (const char* name : {"googlenet", "vgg19"}) {
    const ModelSpec model = ModelByName(name).value();
    for (int gpus : {1, 2, 4, 8}) {
      ClusterSpec cluster;
      cluster.num_nodes = 4;
      cluster.nic_gbps = 40.0;
      cluster.gpus_per_node = gpus;
      const SimResult result =
          RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe);
      table.AddRow({model.name, "4", std::to_string(gpus), std::to_string(4 * gpus),
                    TextTable::Num(result.speedup, 1)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace poseidon

int main() {
  poseidon::Run();
  return 0;
}

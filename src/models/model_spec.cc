#include "src/models/model_spec.h"

#include <sstream>

#include "src/common/logging.h"

namespace poseidon {

const char* LayerTypeName(LayerType type) {
  switch (type) {
    case LayerType::kConv:
      return "CONV";
    case LayerType::kFC:
      return "FC";
  }
  return "?";
}

int64_t ModelSpec::total_params() const {
  int64_t total = 0;
  for (const auto& layer : layers) {
    total += layer.params;
  }
  return total;
}

double ModelSpec::total_fwd_flops() const {
  double total = 0.0;
  for (const auto& layer : layers) {
    total += layer.fwd_flops;
  }
  return total;
}

double ModelSpec::fc_param_fraction() const {
  int64_t fc = 0;
  for (const auto& layer : layers) {
    if (layer.type == LayerType::kFC) {
      fc += layer.params;
    }
  }
  const int64_t total = total_params();
  return total == 0 ? 0.0 : static_cast<double>(fc) / static_cast<double>(total);
}

std::string ModelSpec::Summary() const {
  std::ostringstream out;
  out << name << ": " << num_layers() << " layers, " << total_params() << " params ("
      << static_cast<double>(total_params()) / 1e6 << "M), " << total_fwd_flops() / 1e9
      << " GFLOP/img fwd, FC fraction " << fc_param_fraction();
  return out.str();
}

LayerSpec ConvLayer(std::string name, int64_t in_c, int64_t out_c, int64_t kernel,
                    int64_t out_hw) {
  return ConvLayerRect(std::move(name), in_c, out_c, kernel, kernel, out_hw);
}

LayerSpec ConvLayerRect(std::string name, int64_t in_c, int64_t out_c, int64_t kh, int64_t kw,
                        int64_t out_hw) {
  CHECK_GT(in_c, 0);
  CHECK_GT(out_c, 0);
  CHECK_GT(kh, 0);
  CHECK_GT(kw, 0);
  CHECK_GT(out_hw, 0);
  LayerSpec layer;
  layer.name = std::move(name);
  layer.type = LayerType::kConv;
  layer.params = in_c * out_c * kh * kw + out_c;
  layer.fwd_flops =
      2.0 * static_cast<double>(out_hw * out_hw) * static_cast<double>(out_c) *
      static_cast<double>(in_c) * static_cast<double>(kh * kw);
  return layer;
}

LayerSpec FcLayer(std::string name, int64_t m, int64_t n) {
  CHECK_GT(m, 0);
  CHECK_GT(n, 0);
  LayerSpec layer;
  layer.name = std::move(name);
  layer.type = LayerType::kFC;
  layer.fc_m = m;
  layer.fc_n = n;
  layer.params = m * n + m;
  layer.fwd_flops = 2.0 * static_cast<double>(m) * static_cast<double>(n);
  return layer;
}

}  // namespace poseidon

// Behavioural tests for the cluster protocol simulator: single-node
// overheads, scaling shapes, WFBP's overlap benefit, HybComm's bandwidth
// savings, and the per-node traffic properties of Adam vs Poseidon.
#include <gtest/gtest.h>

#include "src/cluster/protocol_sim.h"
#include "src/cluster/system_config.h"
#include "src/models/zoo.h"

namespace poseidon {
namespace {

ClusterSpec Cluster(int nodes, double gbps) {
  ClusterSpec cluster;
  cluster.num_nodes = nodes;
  cluster.nic_gbps = gbps;
  return cluster;
}

TEST(ProtocolSimTest, SingleNodePoseidonHasLittleOverhead) {
  const ModelSpec model = MakeVgg19();
  const SimResult result = RunProtocolSimulation(model, PoseidonSystem(), Cluster(1, 40.0),
                                                 Engine::kCaffe);
  EXPECT_NEAR(result.speedup, 1.0, 0.05);
}

TEST(ProtocolSimTest, SingleNodeVanillaPsPaysMemcpyOverhead) {
  const ModelSpec model = MakeVgg19();
  const SimResult result =
      RunProtocolSimulation(model, CaffePlusPs(), Cluster(1, 40.0), Engine::kCaffe);
  // Caffe+PS on one node is measurably slower than unmodified Caffe
  // (paper: 21.3 vs 35.5 img/s); our memcpy model reproduces the direction.
  EXPECT_LT(result.speedup, 0.9);
}

TEST(ProtocolSimTest, PoseidonScalesNearLinearlyAt40GbE) {
  const ModelSpec model = MakeVgg19();
  const SimResult result = RunProtocolSimulation(model, PoseidonSystem(), Cluster(16, 40.0),
                                                 Engine::kCaffe);
  EXPECT_GT(result.speedup, 14.0);
  EXPECT_LE(result.speedup, 16.05);
}

TEST(ProtocolSimTest, WfbpBeatsSequentialPs) {
  const ModelSpec model = MakeVgg19();
  const SimResult ps =
      RunProtocolSimulation(model, CaffePlusPs(), Cluster(8, 40.0), Engine::kCaffe);
  const SimResult wfbp =
      RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(8, 40.0), Engine::kCaffe);
  EXPECT_GT(wfbp.speedup, ps.speedup * 1.1);
}

TEST(ProtocolSimTest, HybCommHelpsUnderLimitedBandwidth) {
  const ModelSpec model = MakeVgg19();
  const SimResult wfbp =
      RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(16, 10.0), Engine::kCaffe);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(16, 10.0), Engine::kCaffe);
  EXPECT_GT(poseidon.speedup, wfbp.speedup * 1.3);
  EXPECT_GT(poseidon.speedup, 13.0);  // paper: near-linear at 10 GbE
}

TEST(ProtocolSimTest, PoseidonNeverWorseThanPurePs) {
  // HybComm falls back to PS whenever SFB would cost more, so Poseidon's
  // speedup must dominate Caffe+WFBP across node counts (within noise).
  const ModelSpec model = MakeGoogLeNet();
  for (int nodes : {2, 4, 8, 16}) {
    const SimResult wfbp =
        RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(nodes, 10.0), Engine::kCaffe);
    const SimResult poseidon =
        RunProtocolSimulation(model, PoseidonSystem(), Cluster(nodes, 10.0), Engine::kCaffe);
    EXPECT_GE(poseidon.speedup, wfbp.speedup * 0.999) << "nodes=" << nodes;
  }
}

TEST(ProtocolSimTest, GoogLeNetAt16NodesReducesToPs) {
  // Paper §5.2: large batch (128) and a thin FC layer make SFB lose at 16
  // nodes, so Poseidon chooses PS for the classifier.
  const ModelSpec model = MakeGoogLeNet();
  const SimResult result = RunProtocolSimulation(model, PoseidonSystem(), Cluster(16, 10.0),
                                                 Engine::kCaffe);
  EXPECT_EQ(result.layer_schemes.at("loss3_classifier"), "PS");
}

TEST(ProtocolSimTest, Vgg19FcLayersUseSfb) {
  const ModelSpec model = MakeVgg19();
  const SimResult result =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 40.0), Engine::kCaffe);
  EXPECT_EQ(result.layer_schemes.at("fc6"), "SFB");
  EXPECT_EQ(result.layer_schemes.at("fc7"), "SFB");
  EXPECT_EQ(result.layer_schemes.at("conv5_4"), "PS");
}

TEST(ProtocolSimTest, TfNativeStallsMoreThanPoseidon) {
  const ModelSpec model = MakeVgg19();
  const SimResult tf =
      RunProtocolSimulation(model, TfNative(), Cluster(8, 40.0), Engine::kTensorFlow);
  const SimResult tf_wfbp =
      RunProtocolSimulation(model, TfPlusWfbp(), Cluster(8, 40.0), Engine::kTensorFlow);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 40.0), Engine::kTensorFlow);
  EXPECT_LT(tf.gpu_busy_frac, tf_wfbp.gpu_busy_frac);
  EXPECT_LT(tf_wfbp.gpu_busy_frac, poseidon.gpu_busy_frac + 1e-9);
  EXPECT_GT(poseidon.gpu_busy_frac, 0.85);
}

TEST(ProtocolSimTest, TfNegativeScalingOnVgg22K) {
  // Paper §1/§5.1: distributed TF on VGG19-22K can be slower than a single
  // machine because the 21841-way FC tensor pins one PS shard.
  const ModelSpec model = MakeVgg19_22K();
  const SimResult tf =
      RunProtocolSimulation(model, TfNative(), Cluster(32, 40.0), Engine::kTensorFlow);
  EXPECT_LT(tf.speedup, 8.0);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(32, 40.0), Engine::kTensorFlow);
  EXPECT_GT(poseidon.speedup, 25.0);
}

TEST(ProtocolSimTest, AdamTrafficIsImbalanced) {
  const ModelSpec model = MakeVgg19();
  const SimResult adam =
      RunProtocolSimulation(model, AdamSystem(), Cluster(8, 40.0), Engine::kTensorFlow);
  const SimResult poseidon =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 40.0), Engine::kTensorFlow);
  auto imbalance = [](const std::vector<double>& tx) {
    const double max = *std::max_element(tx.begin(), tx.end());
    const double min = *std::min_element(tx.begin(), tx.end());
    return max / std::max(min, 1e-9);
  };
  EXPECT_GT(imbalance(adam.tx_gbits_per_iter), 3.0);
  EXPECT_LT(imbalance(poseidon.tx_gbits_per_iter), 1.3);
  EXPECT_LT(poseidon.iter_time_s, adam.iter_time_s);
}

TEST(ProtocolSimTest, DeterministicAcrossRuns) {
  const ModelSpec model = MakeVgg19();
  const SimResult a =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 10.0), Engine::kCaffe);
  const SimResult b =
      RunProtocolSimulation(model, PoseidonSystem(), Cluster(8, 10.0), Engine::kCaffe);
  EXPECT_DOUBLE_EQ(a.iter_time_s, b.iter_time_s);
  EXPECT_EQ(a.tx_gbits_per_iter, b.tx_gbits_per_iter);
}

TEST(ProtocolSimTest, SpeedupMonotonicInBandwidthForPs) {
  const ModelSpec model = MakeVgg19();
  double prev = 0.0;
  for (double gbps : {10.0, 20.0, 30.0, 40.0}) {
    const SimResult result =
        RunProtocolSimulation(model, CaffePlusWfbp(), Cluster(16, gbps), Engine::kCaffe);
    EXPECT_GE(result.speedup, prev - 1e-9) << "gbps=" << gbps;
    prev = result.speedup;
  }
}

TEST(ProtocolSimTest, MultiGpuNodeAggregatesLocally) {
  ClusterSpec cluster = Cluster(4, 40.0);
  cluster.gpus_per_node = 8;
  const ModelSpec model = MakeGoogLeNet();
  const SimResult result =
      RunProtocolSimulation(model, PoseidonSystem(), cluster, Engine::kCaffe);
  // Paper: 32x on 4 x p2.8xlarge (32 GPUs) for GoogLeNet; allow a generous
  // band around linear scaling.
  EXPECT_GT(result.speedup, 24.0);
  EXPECT_LE(result.speedup, 32.5);
}

}  // namespace
}  // namespace poseidon

// Tests for the in-process message bus, egress batcher and rate limiter.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/transport/bus.h"
#include "src/transport/rate_limiter.h"

namespace poseidon {
namespace {

Message MakeChunkMessage(int src, int dst, int port, int floats, int64_t iter = 0) {
  Message m;
  m.type = MessageType::kGradPush;
  m.from = Address{src, kSyncerPortBase};
  m.to = Address{dst, port};
  m.layer = 0;
  m.worker = src;
  m.iter = iter;
  m.codec = WireCodec::kRawFloat;
  Payload payload = Payload::Allocate(floats);
  for (int64_t i = 0; i < payload.size(); ++i) {
    payload.data()[i] = 1.0f;
  }
  m.chunks.push_back({0, payload.View()});
  return m;
}

TEST(PayloadTest, AllocatedSlabsAre64ByteAligned) {
  // The SIMD wire kernels (src/simd) stream 8-lane blocks out of payload
  // slabs; Payload::kAlignment guarantees block 0 never straddles a cache
  // line. Odd sizes must not disturb the base alignment.
  for (int64_t floats : {1, 7, 8, 9, 31, 32, 33, 1000, 4096}) {
    Payload payload = Payload::Allocate(floats);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(payload.data()) %
                  static_cast<uintptr_t>(Payload::kAlignment),
              0u)
        << "slab of " << floats << " floats is misaligned";
  }
}

TEST(PayloadTest, FromVectorSlabsAre64ByteAligned) {
  std::vector<float> values(37, 1.5f);
  Payload payload = Payload::FromVector(values);
  ASSERT_EQ(payload.size(), 37);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(payload.data()) %
                static_cast<uintptr_t>(Payload::kAlignment),
            0u);
  for (int64_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(payload.data()[i], 1.5f);
  }
}

TEST(BusTest, DeliversToRegisteredMailbox) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 4)).ok());
  auto received = mailbox->Pop();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->worker, 0);
  EXPECT_EQ(received->chunks[0].view.size(), 4);
}

TEST(BusTest, UnknownDestinationIsNotFound) {
  MessageBus bus(2);
  const Status status = bus.Send(MakeChunkMessage(0, 1, 999, 4));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(BusTest, TrafficAccountingSkipsLocal) {
  MessageBus bus(2);
  bus.Register(Address{0, kServerPort});
  bus.Register(Address{1, kServerPort});
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 0, kServerPort, 100)).ok());  // local
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 100)).ok());  // remote
  EXPECT_EQ(bus.TxBytes(1), 0);
  const int64_t remote = bus.TxBytes(0);
  EXPECT_GT(remote, 400);  // 100 floats + headers
  EXPECT_EQ(bus.TxMessages(0), 1);
  EXPECT_EQ(bus.TxEntries(0), 1);
  bus.ResetTraffic();
  EXPECT_EQ(bus.TxBytes(0), 0);
  EXPECT_EQ(bus.TxMessages(0), 0);
}

TEST(BusTest, RegisterIsIdempotent) {
  MessageBus bus(1);
  auto a = bus.Register(Address{0, 5});
  auto b = bus.Register(Address{0, 5});
  EXPECT_EQ(a.get(), b.get());
}

TEST(BusTest, CloseAllWakesReceivers) {
  MessageBus bus(1);
  auto mailbox = bus.Register(Address{0, kServerPort});
  std::thread waiter([&] { EXPECT_FALSE(mailbox->Pop().has_value()); });
  bus.CloseAll();
  waiter.join();
}

TEST(BusTest, SharedPayloadNotCopiedPerReceiver) {
  MessageBus bus(3);
  auto m1 = bus.Register(Address{1, kServerPort});
  auto m2 = bus.Register(Address{2, kServerPort});
  Message base = MakeChunkMessage(0, 1, kServerPort, 8);
  Message copy = base;
  copy.to = Address{2, kServerPort};
  EXPECT_TRUE(bus.Send(base).ok());
  EXPECT_TRUE(bus.Send(copy).ok());
  auto r1 = m1->Pop();
  auto r2 = m2->Pop();
  // Both receivers' views alias the same slab: a broadcast is zero-copy.
  EXPECT_EQ(r1->chunks[0].view.slab_id(), r2->chunks[0].view.slab_id());
}

TEST(MessageTest, WireBytesCountsPayloads) {
  Message m = MakeChunkMessage(0, 1, kServerPort, 100);
  EXPECT_GE(m.WireBytes(), 400);
  EXPECT_LT(m.WireBytes(), 500);
  EXPECT_EQ(m.WireBytes(), kWireFrameBytes + m.PayloadBytes());
}

TEST(RateLimiterTest, ThrottlesToConfiguredRate) {
  RateLimiter limiter(1e6, /*burst_bytes=*/1e4);  // 1 MB/s
  const auto start = std::chrono::steady_clock::now();
  limiter.Acquire(50000);  // ~50 ms at 1 MB/s (minus the initial burst)
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(elapsed, 0.025);
  EXPECT_LT(elapsed, 0.5);
}

TEST(RateLimiterTest, SmallSendsWithinBurstAreFree) {
  RateLimiter limiter(1e6, /*burst_bytes=*/1e5);
  const auto start = std::chrono::steady_clock::now();
  limiter.Acquire(1000);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed, 0.01);
}

TEST(BusTest, EgressLimitSlowsRemoteSends) {
  MessageBus bus(2);
  bus.Register(Address{1, kServerPort});
  bus.SetEgressLimit(0, 1e6);  // 1 MB/s
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 100000)).ok());  // ~400 KB
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(elapsed, 0.1);
}

// Regression: one node's blocked egress (rate limiter wait) must not stall
// sends from other nodes — the limiter wait may not hold the bus-wide lock.
TEST(BusTest, ThrottledSenderDoesNotBlockOtherNodes) {
  MessageBus bus(3);
  bus.Register(Address{2, kServerPort});
  bus.SetEgressLimit(0, 1e6);  // ~0.8 s for the big message below

  std::thread throttled([&] {
    // ~800 KB through a 1 MB/s limiter: blocks well past the probe below.
    EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 2, kServerPort, 200000)).ok());
  });
  // Wait (condition variable, not a sleep) until the throttled sender is
  // actually inside its limiter wait.
  ASSERT_TRUE(bus.egress_limiter(0)->WaitUntilBlocked(1));

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(bus.Send(MakeChunkMessage(1, 2, kServerPort, 100)).ok());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed, 0.5) << "node 1's send stalled behind node 0's throttled egress";
  throttled.join();
}

// SetEgressLimit while a send is waiting on the old limiter must be safe
// (limiters are shared_ptr snapshots, not raw pointers into the bus).
TEST(BusTest, ResetLimitDuringBlockedSendIsSafe) {
  MessageBus bus(2);
  bus.Register(Address{1, kServerPort});
  bus.SetEgressLimit(0, 2e5);
  // Snapshot the limiter before dropping it so the wait below has something
  // to observe (the bus forgets it on reset, by design).
  auto limiter = bus.egress_limiter(0);
  std::thread sender([&] {
    EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 100000)).ok());
  });
  ASSERT_TRUE(limiter->WaitUntilBlocked(1));
  bus.SetEgressLimit(0, 0.0);  // drop the limiter under the blocked sender
  sender.join();
}

// ------------------------------------------------------------- batching ----

TEST(BatchingTest, CoalescesSameDestinationSameIter) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  EgressBatchOptions options;
  options.max_batch_messages = 4;
  options.flush_interval_us = 200000;  // count threshold is the trigger
  bus.EnableBatching(options);

  for (int i = 0; i < 4; ++i) {
    Message m = MakeChunkMessage(0, 1, kServerPort, 16, /*iter=*/7);
    m.layer = i;
    EXPECT_TRUE(bus.Send(std::move(m)).ok());
  }
  bus.FlushEgress();
  EXPECT_EQ(bus.TxMessages(0), 1) << "4 same-(dst, iter) messages should be one frame";
  EXPECT_EQ(bus.TxEntries(0), 4);
  // All four delivered, in send order.
  for (int i = 0; i < 4; ++i) {
    auto received = mailbox->Pop();
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(received->layer, i);
  }
}

TEST(BatchingTest, BatchedFrameIsCheaperThanUnbatched) {
  // Framing arithmetic: a batch pays kWireFrameBytes once plus a small
  // per-entry header, vs a full frame per message unbatched.
  MessageBus unbatched(2);
  unbatched.Register(Address{1, kServerPort});
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(unbatched.Send(MakeChunkMessage(0, 1, kServerPort, 16)).ok());
  }

  MessageBus batched(2);
  batched.Register(Address{1, kServerPort});
  EgressBatchOptions options;
  options.max_batch_messages = 8;
  batched.EnableBatching(options);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(batched.Send(MakeChunkMessage(0, 1, kServerPort, 16)).ok());
  }
  batched.FlushEgress();

  EXPECT_EQ(unbatched.TxMessages(0), 8);
  EXPECT_EQ(batched.TxMessages(0), 1);
  EXPECT_LT(batched.TxBytes(0), unbatched.TxBytes(0));
  EXPECT_EQ(batched.TxEntries(0), unbatched.TxEntries(0));
}

TEST(BatchingTest, IterationBoundaryCutsBatch) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  EgressBatchOptions options;
  options.max_batch_messages = 100;
  bus.EnableBatching(options);

  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 4, /*iter=*/0)).ok());
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 4, /*iter=*/0)).ok());
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 4, /*iter=*/1)).ok());
  bus.FlushEgress();
  EXPECT_EQ(bus.TxMessages(0), 2);  // one frame per iteration
  // FIFO across the boundary.
  EXPECT_EQ(mailbox->Pop()->iter, 0);
  EXPECT_EQ(mailbox->Pop()->iter, 0);
  EXPECT_EQ(mailbox->Pop()->iter, 1);
}

TEST(BatchingTest, TimerFlushGuaranteesProgress) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  EgressBatchOptions options;
  options.max_batch_messages = 1000;  // never reached
  options.flush_interval_us = 2000;
  bus.EnableBatching(options);

  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 4)).ok());
  // No explicit flush: the flusher must deliver within the interval.
  auto received = mailbox->Pop();
  ASSERT_TRUE(received.has_value());
}

TEST(BatchingTest, ShutdownForcesFlush) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{1, kServerPort});
  EgressBatchOptions options;
  options.max_batch_messages = 1000;
  options.flush_interval_us = 60000000;  // effectively never
  bus.EnableBatching(options);

  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 1, kServerPort, 4, /*iter=*/3)).ok());
  Message shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.from = Address{0, kSyncerPortBase};
  shutdown.to = Address{1, kServerPort};
  shutdown.iter = 3;
  EXPECT_TRUE(bus.Send(std::move(shutdown)).ok());

  // The push must arrive before the shutdown (per-destination FIFO).
  auto first = mailbox->Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MessageType::kGradPush);
  auto second = mailbox->Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MessageType::kShutdown);
}

TEST(BatchingTest, LocalTrafficBypassesBatcher) {
  MessageBus bus(2);
  auto mailbox = bus.Register(Address{0, kServerPort});
  EgressBatchOptions options;
  options.max_batch_messages = 1000;
  options.flush_interval_us = 60000000;
  bus.EnableBatching(options);
  EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 0, kServerPort, 4)).ok());
  EXPECT_TRUE(mailbox->TryPop().has_value()) << "local send should deliver inline";
  EXPECT_EQ(bus.TxBytes(0), 0);
}

// One node's throttled egress must not delay another node's batched sends:
// each node has its own flusher.
TEST(BatchingTest, ThrottledNodeDoesNotStallOtherNodesBatches) {
  MessageBus bus(3);
  auto mailbox = bus.Register(Address{2, kServerPort});
  EgressBatchOptions options;
  options.max_batch_messages = 2;
  bus.EnableBatching(options);
  bus.SetEgressLimit(0, 1e6);  // node 0 crawls (~0.4 s for its batch)

  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(bus.Send(MakeChunkMessage(0, 2, kServerPort, 50000)).ok());  // slow batch
  }
  // Flusher 0 is blocked once it enters the limiter wait for its batch.
  ASSERT_TRUE(bus.egress_limiter(0)->WaitUntilBlocked(1));

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(bus.Send(MakeChunkMessage(1, 2, kServerPort, 16)).ok());
  }
  // Node 1's two-message batch must arrive promptly.
  int node1_seen = 0;
  while (node1_seen < 2) {
    auto received = mailbox->Pop();
    ASSERT_TRUE(received.has_value());
    if (received->from.node == 1) {
      ++node1_seen;
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(elapsed, 0.5) << "node 1's batch stalled behind node 0's throttled flusher";
}

}  // namespace
}  // namespace poseidon

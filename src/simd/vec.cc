#include "src/simd/vec.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "src/common/logging.h"

namespace poseidon {
namespace simd {
namespace {

// The active kernel table. Null until first use; resolved lazily so the
// POSEIDON_SIMD environment override applies no matter how early a kernel
// runs. Kernel calls load it with one relaxed read.
std::atomic<const Kernels*> g_active{nullptr};
std::once_flag g_init_once;

const Kernels* ResolveInitial() {
  const char* env = std::getenv("POSEIDON_SIMD");
  if (env != nullptr && *env != '\0') {
    if (!SetLevelFromString(env)) {
      LOG(Warning) << "POSEIDON_SIMD='" << env
                   << "' is not auto|avx2|neon|scalar; using auto";
      SetLevel(BestLevel());
    }
  } else {
    SetLevel(BestLevel());
  }
  return g_active.load(std::memory_order_acquire);
}

const Kernels* Active() {
  const Kernels* kernels = g_active.load(std::memory_order_acquire);
  if (kernels == nullptr) {
    std::call_once(g_init_once, [] { ResolveInitial(); });
    kernels = g_active.load(std::memory_order_acquire);
  }
  return kernels;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "?";
}

const Kernels* KernelsFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return ScalarKernels();
    case Level::kAvx2:
      return Avx2Kernels();
    case Level::kNeon:
      return NeonKernels();
  }
  return nullptr;
}

bool Supported(Level level) { return KernelsFor(level) != nullptr; }

Level BestLevel() {
  if (Avx2Kernels() != nullptr) {
    return Level::kAvx2;
  }
  if (NeonKernels() != nullptr) {
    return Level::kNeon;
  }
  return Level::kScalar;
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels = {Level::kScalar};
  for (Level level : {Level::kAvx2, Level::kNeon}) {
    if (Supported(level)) {
      levels.push_back(level);
    }
  }
  return levels;
}

Level ActiveLevel() { return Active()->level; }

void SetLevel(Level level) {
  const Kernels* kernels = KernelsFor(level);
  if (kernels == nullptr) {
    LOG(Warning) << "simd level '" << LevelName(level)
                 << "' is not supported on this CPU; falling back to scalar";
    kernels = ScalarKernels();
  }
  g_active.store(kernels, std::memory_order_release);
}

bool SetLevelFromString(const std::string& name) {
  if (name == "auto") {
    SetLevel(BestLevel());
  } else if (name == "scalar") {
    SetLevel(Level::kScalar);
  } else if (name == "avx2") {
    SetLevel(Level::kAvx2);
  } else if (name == "neon") {
    SetLevel(Level::kNeon);
  } else {
    return false;
  }
  return true;
}

void ReduceAdd(float* dst, const float* src, int64_t n) {
  Active()->reduce_add(dst, src, n);
}

void Scale(float* dst, float alpha, int64_t n) { Active()->scale(dst, alpha, n); }

void Axpy(float* y, float alpha, const float* x, int64_t n) {
  Active()->axpy(y, alpha, x, n);
}

void SgdStep(float* v, float* value, const float* grad, float lr, float mu,
             float wd, int64_t n) {
  Active()->sgd_step(v, value, grad, lr, mu, wd, n);
}

void OneBitEncodeStats(const float* grad, const float* residual, int64_t rows,
                       int64_t cols, uint32_t* bits, double* pos_sum,
                       double* neg_sum, int32_t* pos_count, int32_t* neg_count) {
  Active()->onebit_encode_stats(grad, residual, rows, cols, bits, pos_sum, neg_sum,
                                pos_count, neg_count);
}

void OneBitResidualUpdate(const float* grad, int64_t rows, int64_t cols,
                          const uint32_t* bits, const float* pos_level,
                          const float* neg_level, float* residual) {
  Active()->onebit_residual_update(grad, rows, cols, bits, pos_level, neg_level,
                                   residual);
}

void OneBitDecode(const uint32_t* bits, const float* pos_level,
                  const float* neg_level, int64_t rows, int64_t cols, float* out) {
  Active()->onebit_decode(bits, pos_level, neg_level, rows, cols, out);
}

void Fp16EncodeSr(const float* src, int64_t n, uint32_t seed, int64_t base_index,
                  uint16_t* out) {
  Active()->fp16_encode_sr(src, n, seed, base_index, out);
}

void Fp16EncodeRn(const float* src, int64_t n, uint16_t* out) {
  Active()->fp16_encode_rn(src, n, out);
}

void Fp16Decode(const uint16_t* src, int64_t n, float* out) {
  Active()->fp16_decode(src, n, out);
}

void Int8EncodeSr(const float* src, int64_t n, float inv_scale, uint32_t seed,
                  int64_t base_index, int8_t* out) {
  Active()->int8_encode_sr(src, n, inv_scale, seed, base_index, out);
}

void Int8Decode(const int8_t* src, int64_t n, float scale, float* out) {
  Active()->int8_decode(src, n, scale, out);
}

float MaxAbs(const float* src, int64_t n) { return Active()->max_abs(src, n); }

int64_t CountAbsGreater(const float* src, int64_t n, float threshold) {
  return Active()->count_abs_greater(src, n, threshold);
}

}  // namespace simd
}  // namespace poseidon

#include "src/transport/codec.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "src/common/logging.h"
#include "src/simd/vec.h"
#include "src/stats/trace.h"

namespace poseidon {
namespace {

// Per-dimension sanity bound for wire input: any frame claiming a single
// dimension beyond this is corrupt, not large (the biggest paper layer
// dimension is 25088). Keeping every dimension below 2^27 also makes all
// downstream size products overflow-free in int64.
constexpr int64_t kMaxWireDim = int64_t{1} << 27;

// Integers are carried in float words bit-cast with memcpy; the words are
// never read as floats, so the bit patterns (which may be NaNs) are inert.
void StoreWord(float* dst, uint32_t value) { std::memcpy(dst, &value, sizeof(value)); }

uint32_t LoadWord(const float* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

Status Truncated(const char* codec, int64_t want, int64_t got) {
  return OutOfRangeError(std::string(codec) + " frame truncated: need " +
                         std::to_string(want) + " words, have " + std::to_string(got));
}

Status BadDim(const char* codec, int64_t value) {
  return InvalidArgumentError(std::string(codec) + " frame has invalid dimension " +
                              std::to_string(value));
}

// Reads a header word as a non-negative bounded int64, or fails.
StatusOr<int64_t> HeaderDim(const char* codec, const PayloadView& frame, int64_t word) {
  if (word >= frame.size()) {
    return Truncated(codec, word + 1, frame.size());
  }
  const int64_t value = static_cast<int64_t>(static_cast<int32_t>(LoadWord(frame.data() + word)));
  if (value < 0 || value > kMaxWireDim) {
    return BadDim(codec, value);
  }
  return value;
}

}  // namespace

const char* WireCodecName(WireCodec id) {
  switch (id) {
    case WireCodec::kRawFloat:
      return "raw_float";
    case WireCodec::kOneBit:
      return "onebit";
    case WireCodec::kSufficientFactor:
      return "sufficient_factor";
  }
  return "?";
}

// ----------------------------------------------------------------- raw float

StatusOr<int64_t> RawFloatCodec::Validate(const PayloadView& frame) const {
  if (!frame.valid() && frame.size() != 0) {
    return InvalidArgumentError("raw_float frame is invalid");
  }
  return frame.size();
}

Status RawFloatCodec::Decode(const PayloadView& frame, Tensor* dense,
                             std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<int64_t> floats = Validate(frame);
  if (!floats.ok()) {
    return floats.status();
  }
  if (*floats == 0) {
    *dense = Tensor();
  } else {
    *dense = Tensor({*floats});
    std::copy(frame.data(), frame.data() + *floats, dense->data());
    WireCopyStats::Add(*floats);
  }
  if (bias != nullptr) {
    bias->clear();
  }
  return Status::Ok();
}

Payload RawFloatCodec::Encode(const float* src, int64_t floats) {
  TraceSpan span("codec.encode.raw", "codec", floats);
  Payload payload = Payload::Allocate(floats);
  if (floats > 0) {
    CHECK_NOTNULL(src);
    std::copy(src, src + floats, payload.data());
    WireCopyStats::Add(floats);
  }
  return payload;
}

// --------------------------------------------------------------------- 1-bit

namespace {
constexpr int64_t kOneBitHeaderWords = 3;

int64_t OneBitSignWords(int64_t rows, int64_t cols) { return (rows * cols + 31) / 32; }
}  // namespace

uint32_t OneBitCodec::Frame::word(int64_t i) const {
  CHECK_GE(i, 0);
  CHECK_LT(i, words.size());
  return LoadWord(words.data() + i);
}

StatusOr<OneBitCodec::Frame> OneBitCodec::Parse(const PayloadView& frame) {
  StatusOr<int64_t> rows = HeaderDim("onebit", frame, 0);
  if (!rows.ok()) return rows.status();
  StatusOr<int64_t> cols = HeaderDim("onebit", frame, 1);
  if (!cols.ok()) return cols.status();
  StatusOr<int64_t> bias_len = HeaderDim("onebit", frame, 2);
  if (!bias_len.ok()) return bias_len.status();
  // A tensor dimension of zero is never produced by an encoder; reject it
  // so decode targets always have constructible shapes. The per-dimension
  // bound in HeaderDim keeps rows * cols overflow-free.
  if (*rows < 1) return BadDim("onebit", *rows);
  if (*cols < 1) return BadDim("onebit", *cols);
  const int64_t sign_words = OneBitSignWords(*rows, *cols);
  const int64_t want = kOneBitHeaderWords + sign_words + 2 * *cols + *bias_len;
  if (frame.size() != want) {
    return want > frame.size() ? Truncated("onebit", want, frame.size())
                               : InvalidArgumentError(
                                     "onebit frame has " + std::to_string(frame.size()) +
                                     " words, expected " + std::to_string(want));
  }
  Frame parsed;
  parsed.rows = *rows;
  parsed.cols = *cols;
  parsed.bias_len = *bias_len;
  int64_t cursor = kOneBitHeaderWords;
  parsed.words = frame.Sub(cursor, sign_words);
  cursor += sign_words;
  parsed.positive_level = frame.Sub(cursor, *cols);
  cursor += *cols;
  parsed.negative_level = frame.Sub(cursor, *cols);
  cursor += *cols;
  parsed.bias = frame.Sub(cursor, *bias_len);
  return parsed;
}

StatusOr<int64_t> OneBitCodec::Validate(const PayloadView& frame) const {
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->rows * parsed->cols;
}

Status OneBitCodec::DecodeDense(const PayloadView& frame, Tensor* out) {
  TraceSpan span("codec.decode.onebit", "codec");
  CHECK_NOTNULL(out);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Frame& f = *parsed;
  // Stage the packed sign words out of the slab once (compressed size, 1/32
  // of dense), then reconstruct exactly as OneBitQuantizer::Decode does.
  std::vector<uint32_t> bits(static_cast<size_t>(f.words.size()));
  if (!bits.empty()) {
    std::memcpy(bits.data(), f.words.data(), bits.size() * sizeof(uint32_t));
    WireCopyStats::Add(f.words.size());
  }
  *out = Tensor({f.rows, f.cols});
  simd::OneBitDecode(bits.data(), f.positive_level.data(), f.negative_level.data(),
                     f.rows, f.cols, out->data());
  return Status::Ok();
}

Status OneBitCodec::Decode(const PayloadView& frame, Tensor* dense,
                           std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Status status = DecodeDense(frame, dense);
  if (!status.ok()) {
    return status;
  }
  if (bias != nullptr) {
    bias->assign(parsed->bias.size() > 0 ? parsed->bias.data() : nullptr,
                 parsed->bias.size() > 0 ? parsed->bias.data() + parsed->bias.size()
                                         : nullptr);
  }
  return Status::Ok();
}

Payload OneBitCodec::Encode(const Tensor& gradient, OneBitQuantizer* quantizer,
                            const float* bias, int64_t bias_len) {
  TraceSpan span("codec.encode.onebit", "codec");
  CHECK_NOTNULL(quantizer);
  CHECK_GE(bias_len, 0);
  const OneBitEncoded encoded = quantizer->Encode(gradient);
  const int64_t sign_words = static_cast<int64_t>(encoded.bits.size());
  CHECK_EQ(sign_words, OneBitSignWords(encoded.rows, encoded.cols));
  const int64_t total =
      kOneBitHeaderWords + sign_words + 2 * encoded.cols + bias_len;
  Payload payload = Payload::Allocate(total);
  float* words = payload.data();
  StoreWord(words + 0, static_cast<uint32_t>(encoded.rows));
  StoreWord(words + 1, static_cast<uint32_t>(encoded.cols));
  StoreWord(words + 2, static_cast<uint32_t>(bias_len));
  int64_t cursor = kOneBitHeaderWords;
  if (sign_words > 0) {
    std::memcpy(words + cursor, encoded.bits.data(),
                static_cast<size_t>(sign_words) * sizeof(uint32_t));
  }
  cursor += sign_words;
  std::copy(encoded.positive_level.begin(), encoded.positive_level.end(), words + cursor);
  cursor += encoded.cols;
  std::copy(encoded.negative_level.begin(), encoded.negative_level.end(), words + cursor);
  cursor += encoded.cols;
  if (bias_len > 0) {
    CHECK_NOTNULL(bias);
    std::copy(bias, bias + bias_len, words + cursor);
  }
  WireCopyStats::Add(sign_words + 2 * encoded.cols + bias_len);
  return payload;
}

// --------------------------------------------------------- sufficient factor

namespace {
constexpr int64_t kSfHeaderWords = 4;
}  // namespace

StatusOr<SufficientFactorCodec::Frame> SufficientFactorCodec::Parse(
    const PayloadView& frame) {
  StatusOr<int64_t> m = HeaderDim("sufficient_factor", frame, 0);
  if (!m.ok()) return m.status();
  StatusOr<int64_t> n = HeaderDim("sufficient_factor", frame, 1);
  if (!n.ok()) return n.status();
  StatusOr<int64_t> k = HeaderDim("sufficient_factor", frame, 2);
  if (!k.ok()) return k.status();
  StatusOr<int64_t> bias_len = HeaderDim("sufficient_factor", frame, 3);
  if (!bias_len.ok()) return bias_len.status();
  if (*m < 1) return BadDim("sufficient_factor", *m);
  if (*n < 1) return BadDim("sufficient_factor", *n);
  if (*k < 1) return BadDim("sufficient_factor", *k);
  const int64_t want = kSfHeaderWords + (*m + *n) * *k + *bias_len;
  if (frame.size() != want) {
    return want > frame.size()
               ? Truncated("sufficient_factor", want, frame.size())
               : InvalidArgumentError("sufficient_factor frame has " +
                                      std::to_string(frame.size()) + " words, expected " +
                                      std::to_string(want));
  }
  Frame parsed;
  parsed.m = *m;
  parsed.n = *n;
  parsed.k = *k;
  parsed.bias_len = *bias_len;
  int64_t cursor = kSfHeaderWords;
  parsed.u = frame.Sub(cursor, *m * *k);
  cursor += *m * *k;
  parsed.v = frame.Sub(cursor, *n * *k);
  cursor += *n * *k;
  parsed.bias = frame.Sub(cursor, *bias_len);
  return parsed;
}

StatusOr<int64_t> SufficientFactorCodec::Validate(const PayloadView& frame) const {
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->m * parsed->n;
}

Status SufficientFactorCodec::DecodeReconstruct(const PayloadView& frame, Tensor* out) {
  TraceSpan span("codec.decode.sf", "codec");
  CHECK_NOTNULL(out);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const Frame& f = *parsed;
  if (out->ndim() != 2 || out->dim(0) != f.m || out->dim(1) != f.n) {
    return InvalidArgumentError("sufficient_factor reconstruction target is " +
                                out->ShapeString() + ", frame is " + std::to_string(f.m) +
                                "x" + std::to_string(f.n));
  }
  // U V^T with GemmTransB's exact loop order, reading straight from the
  // slab: bitwise identical to ReconstructGradient on unserialized factors.
  const float* u = f.u.size() > 0 ? f.u.data() : nullptr;
  const float* v = f.v.size() > 0 ? f.v.data() : nullptr;
  float* od = out->data();
  for (int64_t i = 0; i < f.m; ++i) {
    const float* u_row = u + i * f.k;
    float* o_row = od + i * f.n;
    for (int64_t j = 0; j < f.n; ++j) {
      const float* v_row = v + j * f.k;
      float acc = 0.0f;
      for (int64_t p = 0; p < f.k; ++p) {
        acc += u_row[p] * v_row[p];
      }
      o_row[j] = acc;
    }
  }
  return Status::Ok();
}

Status SufficientFactorCodec::Decode(const PayloadView& frame, Tensor* dense,
                                     std::vector<float>* bias) const {
  CHECK_NOTNULL(dense);
  StatusOr<Frame> parsed = Parse(frame);
  if (!parsed.ok()) {
    return parsed.status();
  }
  *dense = Tensor({parsed->m, parsed->n});
  const Status status = DecodeReconstruct(frame, dense);
  if (!status.ok()) {
    return status;
  }
  if (bias != nullptr) {
    bias->assign(parsed->bias.size() > 0 ? parsed->bias.data() : nullptr,
                 parsed->bias.size() > 0 ? parsed->bias.data() + parsed->bias.size()
                                         : nullptr);
  }
  return Status::Ok();
}

Payload SufficientFactorCodec::Encode(const SufficientFactors& factors, const float* bias,
                                      int64_t bias_len) {
  TraceSpan span("codec.encode.sf", "codec");
  CHECK_GE(bias_len, 0);
  const int64_t m = factors.rows();
  const int64_t n = factors.cols();
  const int64_t k = factors.rank();
  const int64_t total = kSfHeaderWords + (m + n) * k + bias_len;
  Payload payload = Payload::Allocate(total);
  float* words = payload.data();
  StoreWord(words + 0, static_cast<uint32_t>(m));
  StoreWord(words + 1, static_cast<uint32_t>(n));
  StoreWord(words + 2, static_cast<uint32_t>(k));
  StoreWord(words + 3, static_cast<uint32_t>(bias_len));
  int64_t cursor = kSfHeaderWords;
  std::copy(factors.u.data(), factors.u.data() + m * k, words + cursor);
  cursor += m * k;
  std::copy(factors.v.data(), factors.v.data() + n * k, words + cursor);
  cursor += n * k;
  if (bias_len > 0) {
    CHECK_NOTNULL(bias);
    std::copy(bias, bias + bias_len, words + cursor);
  }
  WireCopyStats::Add((m + n) * k + bias_len);
  return payload;
}

// ------------------------------------------------------------------ registry

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<uint8_t, std::unique_ptr<Codec>>& RegistryMap() {
  static std::map<uint8_t, std::unique_ptr<Codec>>* map = [] {
    auto* m = new std::map<uint8_t, std::unique_ptr<Codec>>();
    (*m)[static_cast<uint8_t>(WireCodec::kRawFloat)] = std::make_unique<RawFloatCodec>();
    (*m)[static_cast<uint8_t>(WireCodec::kOneBit)] = std::make_unique<OneBitCodec>();
    (*m)[static_cast<uint8_t>(WireCodec::kSufficientFactor)] =
        std::make_unique<SufficientFactorCodec>();
    return m;
  }();
  return *map;
}

}  // namespace

const Codec& CodecRegistry::Get(WireCodec id) {
  const Codec* codec = Find(id);
  CHECK_NOTNULL(codec) << "unregistered codec id " << static_cast<int>(id);
  return *codec;
}

const Codec* CodecRegistry::Find(WireCodec id) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& map = RegistryMap();
  auto it = map.find(static_cast<uint8_t>(id));
  return it == map.end() ? nullptr : it->second.get();
}

void CodecRegistry::Register(std::unique_ptr<Codec> codec) {
  CHECK_NOTNULL(codec.get());
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& map = RegistryMap();
  const uint8_t id = static_cast<uint8_t>(codec->id());
  CHECK(map.find(id) == map.end()) << "codec id " << static_cast<int>(id)
                                   << " already registered";
  map[id] = std::move(codec);
}

std::vector<WireCodec> CodecRegistry::Ids() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<WireCodec> ids;
  for (const auto& [id, codec] : RegistryMap()) {
    ids.push_back(static_cast<WireCodec>(id));
  }
  return ids;
}

}  // namespace poseidon

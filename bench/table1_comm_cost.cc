// Regenerates Table 1: estimated communication cost (floats per node per
// iteration) of PS, SFB and Adam for synchronizing an M x N FC layer on a
// cluster with P1 workers and P2 servers, batch size K — including the
// paper's §3.2 worked example (M=N=4096, K=32, P1=P2=8) and sweeps showing
// where the crossover sits.
#include <cstdio>

#include "src/common/cli.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/models/comm_cost.h"
#include "src/models/model_spec.h"
#include "src/planner/comm_plan.h"
#include "src/planner/comm_planner.h"
#include "src/planner/plan_cache.h"
#include "src/transport/bus.h"

namespace poseidon {
namespace {

// PS columns are costed at the configured shard count (--shards, default 1
// = the paper's single-endpoint servers); at 1 the sharded rows collapse
// onto the published Table 1 exactly.
void PrintCostRow(TextTable* table, const CommCostQuery& q) {
  table->AddRow({
      std::to_string(q.m) + "x" + std::to_string(q.n),
      std::to_string(q.batch_k),
      std::to_string(q.num_workers),
      TextTable::Num(PsWorkerFloats(q) / 1e6, 2),
      TextTable::Num(PsShardedServerFloats(q) / 1e6, 2),
      TextTable::Num(PsShardedColocatedFloats(q) / 1e6, 2),
      TextTable::Num(SfbWorkerFloats(q) / 1e6, 2),
      TextTable::Num(AdamServerMaxFloats(q) / 1e6, 2),
      TextTable::Num(AdamWorkerFloats(q) / 1e6, 2),
      TextTable::Num(AdamColocatedMaxFloats(q) / 1e6, 2),
      // Algorithm 1's comparison, against the PS row as actually sharded.
      CommSchemeName(SfbWins(q) ? CommScheme::kSFB : CommScheme::kPS),
  });
}

// --plan companion to the float-cost table. Under auto, each of the table's
// (layer, K, P) shapes runs through the CommPlanner's joint search as a
// one-layer model (byte basis, memoized in the process plan cache) and the
// planner's scheme+codec+shards pick is printed next to Algorithm 1's
// float-basis "best" column. Under fixed:<path>, the dumped plan's per-layer
// table is printed instead — the table then documents what a planned run
// would actually put on the wire.
void PlanPart(const BenchArgs& args, const std::vector<int>& workers) {
  if (args.FixedPlan()) {
    StatusOr<CommPlan> loaded = CommPlan::LoadFromFile(args.FixedPlanPath());
    CHECK(loaded.ok()) << "--plan=" << args.plan << ": " << loaded.status().ToString();
    std::printf("Fixed plan %s:\n%s\n", args.FixedPlanPath().c_str(),
                loaded.value().Summary().c_str());
    return;
  }
  if (!args.AutoPlan()) {
    return;
  }
  struct Shape {
    int64_t m, n, k;
  };
  const std::vector<Shape> shapes = {
      {4096, 4096, 32}, {4096, 25088, 32}, {21841, 4096, 32}, {1000, 1024, 128}};
  std::printf("CommPlanner joint choices (byte basis, shard cap 8):\n");
  TextTable table({"layer", "K", "P", "plan", "shards", "MB/iter"});
  for (const Shape& shape : shapes) {
    for (int p : workers) {
      if (p < 2) {
        continue;
      }
      ModelSpec model;
      model.name = "fc" + std::to_string(shape.m) + "x" + std::to_string(shape.n);
      model.default_batch = static_cast<int>(shape.k);
      model.layers = {FcLayer("fc", shape.m, shape.n)};
      const auto plan = PlanCache::Global().GetOrPlan(
          JointAutoRequest(model, p, /*nic_gbps=*/0.0, /*max_shards=*/8));
      const PlanLayerChoice& choice = plan->layers.front();
      std::string label = PlannedSchemeName(choice.scheme);
      if (choice.compression != GradCompression::kNone) {
        label += std::string("+") + GradCompressionName(choice.compression);
      }
      table.AddRow({std::to_string(shape.m) + "x" + std::to_string(shape.n),
                    std::to_string(shape.k), std::to_string(p), label,
                    std::to_string(plan->ps_shards),
                    TextTable::Num(plan->predicted_wire_bytes / 1e6, 2)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run(const BenchArgs& args) {
  const int shards = args.FirstShardOr(1);
  std::printf("Table 1: communication cost model (millions of floats per iteration),\n");
  std::printf("PS rows at %d shard endpoint(s) per server.\n", shards);
  std::printf("Worked example from paper 3.2: 4096x4096 FC, K=32, P1=P2=8 -> PS worker 33.6M,\n");
  std::printf("server&worker 58.7M, SFB 3.7M (at 1 shard).\n\n");

  TextTable table({"layer", "K", "P", "PS.wrk", "PS.srv", "PS.both", "SFB.wrk", "Adam.srv",
                   "Adam.wrk", "Adam.both", "best"});
  // The worked example.
  PrintCostRow(&table, {4096, 4096, 32, 8, 8, shards});
  // Scale in P at fixed layer/batch.
  for (int p : args.NodesOr({2, 4, 16, 32})) {
    PrintCostRow(&table, {4096, 4096, 32, p, p, shards});
  }
  // The paper's real layers: VGG19 fc6, VGG19-22K fc8, GoogLeNet classifier.
  PrintCostRow(&table, {4096, 25088, 32, 8, 8, shards});
  PrintCostRow(&table, {21841, 4096, 32, 32, 32, shards});
  PrintCostRow(&table, {1000, 1024, 128, 4, 4, shards});
  PrintCostRow(&table, {1000, 1024, 128, 16, 16, shards});
  std::printf("%s\n", table.ToString().c_str());

  PlanPart(args, args.NodesOr({2, 4, 16, 32}));

  if (args.batch_egress) {
    // Wire-message companion to the float-cost table: per iteration a
    // worker's PS path sends one push per (layer, shard endpoint). The
    // egress batcher keys frames on the destination *node* — all of a
    // server's shard endpoints share frames — and cuts a frame every
    // max_batch_messages (default 16) entries, so the per-worker egress
    // drops from L*P2*S messages to P2 * ceil(L*S / max_batch_messages).
    // (Assumes pushes small enough that the byte cut does not bite; huge
    // layers cut frames earlier and land between the two columns.)
    const int kMaxBatchMessages = EgressBatchOptions{}.max_batch_messages;
    std::printf("Egress batching (modeled): per-worker PS push messages per iteration\n");
    TextTable msgs({"layers", "servers", "shards", "msgs", "msgs(batched)", "reduction"});
    for (int layers : {8, 20, 50}) {
      for (int servers : {8, 16}) {
        const int plain = layers * servers * shards;
        const int batched =
            servers * ((layers * shards + kMaxBatchMessages - 1) / kMaxBatchMessages);
        msgs.AddRow({std::to_string(layers), std::to_string(servers),
                     std::to_string(shards), std::to_string(plain),
                     std::to_string(batched),
                     TextTable::Num(static_cast<double>(plain) / batched, 1) + "x"});
      }
    }
    std::printf("%s\n", msgs.ToString().c_str());
  }
}

}  // namespace
}  // namespace poseidon

int main(int argc, char** argv) {
  const poseidon::BenchArgs args = poseidon::ParseBenchArgs(argc, argv);
  poseidon::InitBenchTelemetry(args);
  poseidon::Run(args);
  poseidon::FinishBenchTelemetry(args);
  return 0;
}

// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in the library (datasets, initializers, workload
// generators) draws from an explicitly seeded Rng so that experiments and
// tests are bit-reproducible across runs and platforms. The core generator is
// SplitMix64 feeding xoshiro256**, both public-domain algorithms.
#ifndef POSEIDON_SRC_COMMON_RNG_H_
#define POSEIDON_SRC_COMMON_RNG_H_

#include <cstdint>

namespace poseidon {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound), bound > 0. Uses rejection to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);

  // Standard normal via Box-Muller (cached second value).
  float NextGaussian();

  // Derives an independent child stream; children with distinct salts are
  // decorrelated from the parent and from each other.
  Rng Split(uint64_t salt) const;

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_COMMON_RNG_H_

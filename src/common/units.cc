#include "src/common/units.h"

#include <cstdio>

namespace poseidon {

std::string FormatBytes(double bytes) {
  char buffer[64];
  if (bytes >= kGiB) {
    std::snprintf(buffer, sizeof(buffer), "%.2f GiB", bytes / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MiB", bytes / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buffer, sizeof(buffer), "%.2f KiB", bytes / kKiB);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f B", bytes);
  }
  return buffer;
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  }
  return buffer;
}

}  // namespace poseidon

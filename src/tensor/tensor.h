// Dense float32 tensor with value semantics.
//
// This is the numeric substrate for the NN training library and for the
// communication codecs (sufficient factors, 1-bit quantization). It is
// deliberately small: contiguous row-major storage, up to 4 dimensions, no
// views or broadcasting. Shapes are checked with CHECK (shape mismatches are
// programming errors, not runtime conditions).
#ifndef POSEIDON_SRC_TENSOR_TENSOR_H_
#define POSEIDON_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace poseidon {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape) : Tensor(std::vector<int64_t>(shape)) {}

  // Named constructors.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // He/Kaiming-style init: N(0, sqrt(2/fan_in)). Standard for ReLU networks.
  static Tensor RandomHe(std::vector<int64_t> shape, int64_t fan_in, Rng& rng);
  static Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi, Rng& rng);
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const {
    CHECK_GE(i, 0);
    CHECK_LT(static_cast<size_t>(i), shape_.size());
    return shape_[i];
  }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    CHECK_GE(i, 0);
    CHECK_LT(i, size());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, size());
    return data_[static_cast<size_t>(i)];
  }

  // 2-D accessors (rows x cols).
  float& At(int64_t r, int64_t c) {
    CHECK_EQ(ndim(), 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float At(int64_t r, int64_t c) const {
    CHECK_EQ(ndim(), 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  // 4-D accessors (n, c, h, w) for conv feature maps.
  float& At4(int64_t n, int64_t c, int64_t h, int64_t w) {
    CHECK_EQ(ndim(), 4);
    return data_[static_cast<size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float At4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    CHECK_EQ(ndim(), 4);
    return data_[static_cast<size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // Reinterprets the buffer with a new shape of identical element count.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace poseidon

#endif  // POSEIDON_SRC_TENSOR_TENSOR_H_

// Sufficient factors (SFs) for fully-connected layers (paper §2.1).
//
// For an FC layer computing y = W x (W is MxN, x the N-vector input, with
// back-propagated error e the M-vector), the per-sample gradient is the
// rank-1 outer product dW = e x^T. A batch of K samples therefore yields a
// rank-K gradient fully described by the factor pair (U, V), U = [e_1..e_K]
// (MxK) and V = [x_1..x_K] (NxK). SFB transmits (U, V) — 2K(M+N) floats —
// instead of the MN-float dense matrix, and every receiver reconstructs
// dW = U V^T locally. The reconstruction is *exact*: unlike 1-bit
// quantization, SFB never changes the update the algorithm applies.
#ifndef POSEIDON_SRC_TENSOR_SUFFICIENT_FACTOR_H_
#define POSEIDON_SRC_TENSOR_SUFFICIENT_FACTOR_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace poseidon {

struct SufficientFactors {
  Tensor u;  // [M, K]
  Tensor v;  // [N, K]

  int64_t rows() const { return u.dim(0); }
  int64_t cols() const { return v.dim(0); }
  int64_t rank() const { return u.dim(1); }

  // Bytes on the wire: 2K(M+N) floats plus the three dimensions.
  int64_t WireBytes() const;

  // Dense wire size of the matrix this pair factorizes, for comparison.
  int64_t DenseWireBytes() const { return rows() * cols() * 4; }
};

// Builds the factor pair from per-sample errors (KxM) and inputs (KxN), the
// layout the FC backward pass produces naturally.
SufficientFactors MakeSufficientFactors(const Tensor& errors_km, const Tensor& inputs_kn);

// Reconstructs the dense gradient U V^T into `out` ([M, N], overwritten).
void ReconstructGradient(const SufficientFactors& factors, Tensor* out);

// Accumulates U V^T into `out` without zeroing, for aggregating factors
// received from multiple peers.
void AccumulateGradient(const SufficientFactors& factors, Tensor* out);

}  // namespace poseidon

#endif  // POSEIDON_SRC_TENSOR_SUFFICIENT_FACTOR_H_
